(* Fixpoint effect inference over the whole-program call graph.

   The lattice is four independent booleans joined pointwise — small on
   purpose, so the fixpoint is a plain iterate-until-stable loop:

     nondet          reaches a wall clock, the global Random state, or an
                     environment lookup — anything two replicas disagree on
     io              reaches the OS (files, channels, processes)
     mutates_global  writes a top-level ref / mutable field / imperative
                     container (Hashtbl, Bytes, array, ...)
     unbounded_raise reaches [raise]/[failwith]/[invalid_arg]/[assert]
                     outside any analyzed handler

   Seeds come from the same ident tables the syntactic pass uses
   ([Syntactic.classify_ident]), an io/raise overlay for Stdlib, and
   [external] declarations (C stubs are ⊤; [%...] compiler intrinsics are
   pure). Effects propagate along *references*, not just saturated call
   sites: passing [f] to [List.iter] charges [f]'s effects to whoever
   supplied it, which is what makes calls through function parameters and
   record fields (the [Service] vtable) sound without widening every
   higher-order call to ⊤. The remaining gaps — closures smuggled through
   top-level mutable state, functor bodies — are documented in DESIGN.md.

   Unknown *named* callees (a persistent unit we have no table for and no
   cmt of) do widen to ⊤: being honest about code we cannot see beats
   silently assuming purity. *)

type eff = { nondet : bool; io : bool; mutates : bool; raises : bool }

let bot = { nondet = false; io = false; mutates = false; raises = false }
let top = { nondet = true; io = true; mutates = true; raises = true }

let join a b =
  {
    nondet = a.nondet || b.nondet;
    io = a.io || b.io;
    mutates = a.mutates || b.mutates;
    raises = a.raises || b.raises;
  }

let eq a b =
  Bool.equal a.nondet b.nondet && Bool.equal a.io b.io && Bool.equal a.mutates b.mutates
  && Bool.equal a.raises b.raises

let to_string e =
  let tags =
    List.filter_map
      (fun (b, t) -> if b then Some t else None)
      [
        (e.nondet, "nondet");
        (e.io, "io");
        (e.mutates, "mutates_global");
        (e.raises, "unbounded_raise");
      ]
  in
  if tags = [] then "pure" else String.concat "+" tags

(* --- external classification ---------------------------------------- *)

(* Normalize typedtree paths to the source-level shape the syntactic
   tables use: "Stdlib.Random.float" / "Stdlib__Random.float" both become
   ["Random"; "float"]. *)
let strip_stdlib comps =
  match comps with
  | "Stdlib" :: (_ :: _ as rest) -> rest
  | head :: rest when String.starts_with ~prefix:"Stdlib__" head ->
      String.sub head 8 (String.length head - 8) :: rest
  | comps -> comps

type classification = Seed of eff * string | Benign | Unknown of string

let effect_of_rule rule =
  if String.equal rule Rule.unix then Some ({ bot with nondet = true; io = true }, "Unix (wall clock / OS)")
  else if String.equal rule Rule.time then Some ({ bot with nondet = true }, "Sys.time (wall clock)")
  else if String.equal rule Rule.getenv then
    Some ({ bot with nondet = true }, "Sys.getenv (environment lookup)")
  else if String.equal rule Rule.random then Some ({ bot with nondet = true }, "Random (global PRNG state)")
  else None

(* Stdlib singletons with effects; everything else bare is pure. *)
let singleton_effect name =
  match name with
  | "raise" | "raise_notrace" | "failwith" | "invalid_arg" ->
      Some ({ bot with raises = true }, name)
  | "exit" | "at_exit" | "print_string" | "print_bytes" | "print_endline" | "print_newline"
  | "print_char" | "print_int" | "print_float" | "prerr_string" | "prerr_bytes"
  | "prerr_endline" | "prerr_newline" | "prerr_char" | "prerr_int" | "prerr_float"
  | "read_line" | "read_int" | "read_int_opt" | "read_float" | "read_float_opt" | "open_in"
  | "open_in_bin" | "open_in_gen" | "open_out" | "open_out_bin" | "open_out_gen" | "close_in"
  | "close_in_noerr" | "close_out" | "close_out_noerr" | "flush" | "flush_all"
  | "really_input_string" | "input_line" | "input_value" | "output_string" | "output_bytes"
  | "output_value" | "input" | "output" | "input_char" | "output_char" | "input_byte"
  | "output_byte" | "in_channel_length" | "out_channel_length" | "set_binary_mode_in"
  | "set_binary_mode_out" | "seek_in" | "seek_out" | "pos_in" | "pos_out" ->
      Some ({ bot with io = true }, name)
  | _ -> None

(* Module heads we model as effect-free: the pure stdlib containers, the
   repo's CLI/test/log dependencies (io at worst, and no rule consumes io
   from them), and the compiler-libs modules bft_lint itself links. The
   Domain/Atomic/Mutex/Condition *placement* discipline is enforced
   separately by the syntactic [domain-containment] rule. *)
let benign_heads =
  [
    "List"; "ListLabels"; "Array"; "ArrayLabels"; "String"; "StringLabels"; "Bytes";
    "BytesLabels"; "Buffer"; "Hashtbl"; "Map"; "Set"; "Queue"; "Stack"; "Option"; "Result";
    "Either"; "Bool"; "Char"; "Uchar"; "Int"; "Int32"; "Int64"; "Nativeint"; "Float"; "Fun";
    "Lazy"; "Seq"; "Printexc"; "Printf"; "Format"; "Complex"; "Obj"; "Ephemeron"; "Weak";
    "Bigarray"; "Domain";
    "Atomic"; "Mutex"; "Condition"; "Semaphore"; "Arg"; "Digest"; "StdLabels"; "MoreLabels";
    "Dynarray"; "Fmt"; "Logs"; "Cmdliner"; "Alcotest"; "QCheck"; "QCheck2"; "QCheck_base_runner";
    "Qcheck_alcotest"; "QCheck_alcotest"; "Parse"; "Location"; "Lexing"; "Parsing"; "Longident";
    "Path"; "Ident"; "Types"; "Predef"; "Env"; "Ctype"; "Cmt_format"; "Cmi_format"; "Typemod";
    "Compmisc"; "Warnings"; "Ast_iterator"; "Tast_iterator"; "Parsetree"; "Typedtree";
    "Asttypes"; "Misc"; "Clflags"; "Load_path"; "Unit_info"; "Builtin_attributes";
  ]

let classify_external comps =
  let stripped = strip_stdlib comps in
  let was_stdlib = stripped != comps in
  match Syntactic.classify_ident stripped with
  | Some (rule, _) when Option.is_some (effect_of_rule rule) ->
      let eff, desc = Option.get (effect_of_rule rule) in
      Seed (eff, desc)
  | _ -> (
      match stripped with
      | [ name ] when was_stdlib || not (String.equal (String.capitalize_ascii name) name) -> (
          match singleton_effect name with Some (e, d) -> Seed (e, d) | None -> Benign)
      | [ ("Printf" | "Format"); f ]
        when String.starts_with ~prefix:"printf" f
             || String.starts_with ~prefix:"eprintf" f
             || String.equal f "print_string" || String.equal f "print_newline" ->
          Seed ({ bot with io = true }, String.concat "." stripped)
      | ("Scanf" | "In_channel" | "Out_channel") :: _ ->
          Seed ({ bot with io = true }, String.concat "." stripped)
      | [ "Sys"; "readdir" ] ->
          Seed
            ( { bot with io = true; nondet = true },
              "Sys.readdir (directory order is not deterministic)" )
      | [ "Sys"; ("argv" | "executable_name" | "interactive" | "os_type" | "backend_type"
                 | "unix" | "win32" | "cygwin" | "word_size" | "int_size" | "big_endian"
                 | "max_string_length" | "max_array_length" | "ocaml_version" | "opaque_identity") ]
        ->
          Benign
      | "Sys" :: _ -> Seed ({ bot with io = true }, String.concat "." stripped)
      | [ "Filename"; ("temp_file" | "open_temp_file" | "temp_dir" | "get_temp_dir_name") ] ->
          Seed ({ bot with io = true; nondet = true }, String.concat "." stripped)
      | [ "Filename"; _ ] -> Benign
      | "Gc" :: _ ->
          Seed ({ bot with nondet = true }, "Gc (heap statistics are not replica-deterministic)")
      | head :: _ when List.exists (String.equal head) benign_heads -> Benign
      | _ -> Unknown (String.concat "." comps))

(* Imperative-structure operations whose *target* argument decides
   whether the write is global. [Map.add]/[Set.add] are pure and
   deliberately absent. *)
let is_mutator comps =
  match strip_stdlib comps with
  | [ (":=" | "incr" | "decr") ] -> true
  | [ "Hashtbl"; ("add" | "replace" | "remove" | "reset" | "clear" | "filter_map_inplace") ]
  | [ "Array";
      ( "set" | "fill" | "blit" | "sort" | "stable_sort" | "fast_sort" | "unsafe_set"
      | "unsafe_fill" | "unsafe_blit" ) ]
  | [ "Bytes"; ("set" | "fill" | "blit" | "blit_string" | "unsafe_set" | "unsafe_fill" | "unsafe_blit") ]
  | [ "Buffer";
      ( "add_string" | "add_bytes" | "add_char" | "add_substring" | "add_subbytes"
      | "add_buffer" | "add_channel" | "clear" | "reset" | "truncate" ) ]
  | [ "Queue"; ("add" | "push" | "pop" | "take" | "clear" | "transfer" | "drop") ]
  | [ "Stack"; ("push" | "pop" | "clear" | "drop") ]
  | [ "Atomic"; ("set" | "incr" | "decr" | "exchange" | "compare_and_set" | "fetch_and_add") ] ->
      true
  | _ -> false

(* --- per-definition summaries and the fixpoint ----------------------- *)

type summary = {
  mutable s_eff : eff;
  s_seeds : (eff * string * Location.t) list;  (** direct seeds, source order *)
  s_edges : (string * Location.t) list;  (** references to other defs, source order *)
}

(* Scan one definition body: references become edges (internal) or seeds
   (classified externals / unknown ⊤); writes whose target resolves to a
   top-level mutable binding become [mutates] seeds. *)
let scan_body (cg : Callgraph.t) ~unit_name body =
  let seeds = ref [] and edges = ref [] in
  let target_is_global_mutable (arg : Typedtree.expression) =
    match arg.exp_desc with
    | Typedtree.Texp_ident (p, _, _) -> (
        match Callgraph.resolve cg ~unit_name p with
        | Callgraph.Def d when Callgraph.is_mutable_type arg.exp_env arg.exp_type -> Some d
        | _ -> None)
    | _ -> None
  in
  let expr (it : Tast_iterator.iterator) (e : Typedtree.expression) =
    (match e.exp_desc with
    | Typedtree.Texp_ident (p, { loc; _ }, _) -> (
        match Callgraph.resolve cg ~unit_name p with
        | Callgraph.Def d -> edges := (d.Callgraph.d_key, loc) :: !edges
        | Callgraph.Local -> ()
        | Callgraph.External comps -> (
            match classify_external comps with
            | Benign -> ()
            | Seed (eff, desc) -> seeds := (eff, desc, loc) :: !seeds
            | Unknown name ->
                seeds := (top, "unknown external " ^ name ^ " (widened to top)", loc) :: !seeds))
    | Typedtree.Texp_apply ({ exp_desc = Typedtree.Texp_ident (p, { loc; _ }, _); _ }, args) ->
        (match Callgraph.resolve cg ~unit_name p with
        | Callgraph.External comps when is_mutator comps ->
            List.iter
              (fun (_, argo) ->
                match Option.map target_is_global_mutable argo with
                | Some (Some d) ->
                    seeds :=
                      ( { bot with mutates = true },
                        "writes global " ^ d.Callgraph.d_disp,
                        loc )
                      :: !seeds
                | _ -> ())
              args
        | _ -> ())
    | Typedtree.Texp_setfield (r, { loc; _ }, _, _) -> (
        match r.exp_desc with
        | Typedtree.Texp_ident (p, _, _) -> (
            match Callgraph.resolve cg ~unit_name p with
            | Callgraph.Def d ->
                seeds :=
                  ({ bot with mutates = true }, "writes global " ^ d.Callgraph.d_disp, loc)
                  :: !seeds
            | _ -> ())
        | _ -> ())
    | Typedtree.Texp_assert (_, loc) ->
        seeds := ({ bot with raises = true }, "assert", loc) :: !seeds
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it body;
  (List.rev !seeds, List.rev !edges)

let summarize cg (d : Callgraph.def) =
  match d.Callgraph.d_body with
  | Some body ->
      let s_seeds, s_edges = scan_body cg ~unit_name:d.Callgraph.d_unit body in
      { s_eff = bot; s_seeds; s_edges }
  | None ->
      (* [external]: compiler intrinsics are pure; C stubs are opaque, so ⊤. *)
      let intrinsic = List.for_all (fun p -> String.starts_with ~prefix:"%" p) d.Callgraph.d_prim in
      if intrinsic then { s_eff = bot; s_seeds = []; s_edges = [] }
      else
        {
          s_eff = bot;
          s_seeds = [ (top, "external C stub " ^ d.Callgraph.d_disp, d.Callgraph.d_loc) ];
          s_edges = [];
        }

let infer (cg : Callgraph.t) =
  let summaries = Hashtbl.create 256 in
  List.iter
    (fun key -> Hashtbl.replace summaries key (summarize cg (Hashtbl.find cg.Callgraph.defs key)))
    cg.Callgraph.order;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun key ->
        let s = Hashtbl.find summaries key in
        let e =
          List.fold_left
            (fun acc (k, _) ->
              match Hashtbl.find_opt summaries k with
              | Some s' -> join acc s'.s_eff
              | None -> acc)
            (List.fold_left (fun acc (e, _, _) -> join acc e) s.s_eff s.s_seeds)
            s.s_edges
        in
        if not (eq e s.s_eff) then begin
          s.s_eff <- e;
          changed := true
        end)
      cg.Callgraph.order
  done;
  summaries

(* --- witnesses ------------------------------------------------------- *)

let hop_of_def (d : Callgraph.def) =
  Printf.sprintf "%s (%s:%d)" d.Callgraph.d_disp d.Callgraph.d_file
    d.Callgraph.d_loc.Location.loc_start.Lexing.pos_lnum

let hop_of_seed (desc, (loc : Location.t)) =
  Printf.sprintf "%s (%s:%d)" desc loc.Location.loc_start.Lexing.pos_fname
    loc.Location.loc_start.Lexing.pos_lnum

(* Shortest call path (BFS over references) from [key] to a definition
   carrying a direct seed satisfying [pred]; the last hop names the seed
   itself. Deterministic: edges keep source order, visits are guarded. *)
let witness (cg : Callgraph.t) summaries ~pred key =
  let seed_of k =
    match Hashtbl.find_opt summaries k with
    | Some s -> List.find_opt (fun (e, _, _) -> pred e) s.s_seeds
    | None -> None
  in
  let visited = Hashtbl.create 16 in
  let q = Queue.create () in
  Hashtbl.replace visited key ();
  Queue.add (key, [ key ]) q;
  let rec bfs () =
    if Queue.is_empty q then None
    else
      let k, path = Queue.take q in
      match seed_of k with
      | Some (_, desc, loc) ->
          let hops =
            List.rev_map (fun k -> hop_of_def (Hashtbl.find cg.Callgraph.defs k)) path
          in
          Some (hops @ [ hop_of_seed (desc, loc) ])
      | None ->
          (match Hashtbl.find_opt summaries k with
          | Some s ->
              List.iter
                (fun (k', _) ->
                  if not (Hashtbl.mem visited k') then begin
                    match Hashtbl.find_opt summaries k' with
                    | Some s' when pred s'.s_eff ->
                        Hashtbl.replace visited k' ();
                        Queue.add (k', k' :: path) q
                    | _ -> ()
                  end)
                s.s_edges
          | None -> ());
          bfs ()
  in
  bfs ()

(* --- the transitive-nondet rule -------------------------------------- *)

(* Roots: the code whose determinism the PBFT safety argument needs —
   replica/client protocol handlers, anything encoder-shaped (same name
   heuristic as the hashtbl-order rule), and service execution. *)
let is_root (d : Callgraph.def) =
  let base = Callgraph.unit_base d.Callgraph.d_unit in
  let leaf =
    match List.rev (String.split_on_char '.' d.Callgraph.d_disp) with
    | leaf :: _ -> String.lowercase_ascii leaf
    | [] -> ""
  in
  (match base with
  | "Replica" | "Client" | "Service" | "Fs" -> true
  | _ -> String.ends_with ~suffix:"_service" (String.lowercase_ascii base))
  || Syntactic.encoder_name leaf
  || String.starts_with ~prefix:"handle" leaf
  || String.starts_with ~prefix:"on_" leaf
  || String.equal leaf "execute" || String.equal leaf "apply"

let nondet e = e.nondet

let findings (cg : Callgraph.t) summaries =
  List.filter_map
    (fun key ->
      let d = Hashtbl.find cg.Callgraph.defs key in
      let s = Hashtbl.find summaries key in
      let directly_seeded = List.exists (fun (e, _, _) -> e.nondet) s.s_seeds in
      if
        is_root d && s.s_eff.nondet && (not directly_seeded)
        && not (List.exists (String.equal Rule.transitive_nondet) d.Callgraph.d_allows)
      then
        let w = Option.value (witness cg summaries ~pred:nondet key) ~default:[] in
        let seed_desc =
          match List.rev w with last :: _ -> last | [] -> "a nondeterministic seed"
        in
        Some
          (Finding.v ~witness:w ~rule:Rule.transitive_nondet ~loc:d.Callgraph.d_loc
             (Printf.sprintf
                "%s is protocol-reachable but transitively reaches %s; replicas executing the \
                 same schedule would diverge (bftlint --why prints the call path)"
                d.Callgraph.d_disp seed_desc))
      else None)
    cg.Callgraph.order

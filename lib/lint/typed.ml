(* Typedtree-level (type-aware) rules, run over the [.cmt] files dune
   emits (bin_annot is on by default): [ignore] of a [result]-typed
   expression, and polymorphic comparison instantiated at digest/string
   type. Both need the inferred types, which the parsetree cannot give. *)

open Typedtree

type ctx = { mutable findings : Finding.t list; mutable allows : string list }

let report ctx ~loc ~rule msg =
  if not (List.exists (String.equal rule) ctx.allows) then
    ctx.findings <- Finding.v ~rule ~loc msg :: ctx.findings

(* Digest, key and wire material are all [string] (or the [digest] =
   string alias from Message) in this codebase. *)
let is_digest_material ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) ->
      Path.same p Predef.path_string || Path.same p Predef.path_bytes
      || String.equal (Path.last p) "digest"
  | _ -> false

let poly_compare_names = [ "Stdlib.="; "Stdlib.<>"; "Stdlib.=="; "Stdlib.!="; "Stdlib.compare" ]

(* [Engine.handle] is a record holding the scheduled callback closure:
   structural compare on one raises [Invalid_argument] at runtime the
   moment both sides are [Some], so [t.timer = None]-style tests are
   landmines that pass every test until a handle is actually present.
   Matches the [handle] type constructor directly and through [option]
   (the shape timer slots take). *)
let rec is_engine_handle ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, args, _) -> (
      match Path.last p with
      | "handle" -> true
      | "option" -> ( match args with [ a ] -> is_engine_handle a | _ -> false)
      | _ -> false)
  | _ -> false

let is_result_ty ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> String.equal (Path.last p) "result"
  | _ -> false

let expr ctx (it : Tast_iterator.iterator) e =
  let saved = ctx.allows in
  ctx.allows <- Syntactic.attr_allows e.exp_attributes @ ctx.allows;
  (match e.exp_desc with
  | Texp_ident (p, { loc; _ }, _)
    when List.exists (String.equal (Path.name p)) poly_compare_names -> (
      (* The use site instantiates the comparator's type scheme; flag it
         when the operands are digest/key strings. *)
      match Types.get_desc e.exp_type with
      | Types.Tarrow (_, arg, _, _) when is_engine_handle arg ->
          report ctx ~loc ~rule:Rule.engine_handle_compare
            (Printf.sprintf
               "polymorphic %s on Engine.handle (holds closures); use Option.is_none / \
                Option.is_some on the timer slot"
               (Path.last p))
      | Types.Tarrow (_, arg, _, _) when is_digest_material arg ->
          report ctx ~loc ~rule:Rule.digest_compare
            (Printf.sprintf
               "polymorphic %s at digest/string type; use String.equal or String.compare"
               (Path.last p))
      | _ -> ())
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, [ (_, Some arg) ])
    when String.equal (Path.name p) "Stdlib.ignore" && is_result_ty arg.exp_type ->
      report ctx ~loc:e.exp_loc ~rule:Rule.ignored_result
        "ignore of a result-typed expression drops the Error case; match on it"
  | _ -> ());
  Tast_iterator.default_iterator.expr it e;
  ctx.allows <- saved

let value_binding ctx (it : Tast_iterator.iterator) vb =
  let saved = ctx.allows in
  ctx.allows <- Syntactic.attr_allows vb.vb_attributes @ ctx.allows;
  Tast_iterator.default_iterator.value_binding it vb;
  ctx.allows <- saved

let structure ctx (it : Tast_iterator.iterator) (str : structure) =
  let saved = ctx.allows in
  List.iter
    (fun item ->
      (match item.str_desc with
      | Tstr_attribute a -> ctx.allows <- Syntactic.attr_allows [ a ] @ ctx.allows
      | _ -> ());
      it.structure_item it item)
    str.str_items;
  ctx.allows <- saved

let lint (str : structure) : Finding.t list =
  let ctx = { findings = []; allows = [] } in
  let it =
    {
      Tast_iterator.default_iterator with
      expr = expr ctx;
      value_binding = value_binding ctx;
      structure = structure ctx;
    }
  in
  it.structure it str;
  List.rev ctx.findings

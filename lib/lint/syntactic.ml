(* Parsetree-level rules: determinism bans, catch-all [try] handlers,
   unsafe-op containment, and Hashtbl iteration feeding encoders. These
   need no type information, so they run on a plain [Parse.implementation]
   of each source file. *)

open Parsetree

type ctx = {
  mutable findings : Finding.t list;
  mutable allows : string list;  (* active [@lint.allow] ids, innermost first *)
  mutable bindings : string list;  (* enclosing let-binding names, innermost first *)
  mutable sorted : bool;  (* true inside an argument of List.sort* *)
}

let attr_allows (attrs : attributes) =
  List.concat_map
    (fun a ->
      if String.equal a.attr_name.txt "lint.allow" then
        match a.attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
                _;
              };
            ] ->
            List.filter (fun id -> String.length id > 0) (String.split_on_char ' ' s)
        | _ -> []
      else [])
    attrs

let report ctx ~loc ~rule msg =
  if not (List.exists (String.equal rule) ctx.allows) then
    ctx.findings <- Finding.v ~rule ~loc msg :: ctx.findings

let is_unsafe_access m f =
  (String.equal m "Bytes" || String.equal m "Array" || String.equal m "String")
  && String.starts_with ~prefix:"unsafe_" f

(* Compiler primitives like "%caml_string_get16u" (trailing 'u' = unchecked). *)
let is_unsafe_prim p =
  (String.length p > 0 && String.ends_with ~suffix:"u" p && String.starts_with ~prefix:"%caml_" p)
  || Bft_util.Strutil.contains_sub p "unsafe"

let classify_ident flat =
  match flat with
  | "Unix" :: _ -> Some (Rule.unix, "Unix call in lib/; use the simulated clock and network")
  | [ "Sys"; ("time" | "cpu_time") ] ->
      Some (Rule.time, "wall-clock time in lib/; use Engine's virtual clock")
  | [ "Sys"; ("getenv" | "getenv_opt") ] ->
      Some (Rule.getenv, "environment lookup in lib/; thread settings through Config")
  | "Marshal" :: _ ->
      Some (Rule.marshal, "Marshal output is not a stable wire format; use Wire codecs")
  | [ "Hashtbl"; ("hash" | "seeded_hash" | "hash_param") ] ->
      Some (Rule.hashtbl_hash, "Hashtbl.hash is not a stable digest; use Sha256/Adhash")
  | [ "Random"; "self_init" ] | [ "Random"; "State"; "make_self_init" ] ->
      Some (Rule.random, "self-seeded randomness is unreplayable; seed Bft_util.Rng explicitly")
  | "Random" :: f :: _ when not (String.equal f "State") ->
      Some (Rule.random, "global Random state is shared and unseeded; use Bft_util.Rng")
  | ("Domain" | "Atomic" | "Mutex" | "Condition") :: _ ->
      Some
        ( Rule.domain_containment,
          "domain primitive outside the Vpool allowlist; parallelism must stay behind the \
           verification pool's deterministic-merge boundary" )
  | [ "Obj"; "magic" ] -> Some (Rule.unsafe_op, "Obj.magic defeats the type system")
  | [ m; f ] when is_unsafe_access m f ->
      Some (Rule.unsafe_op, "bounds-unchecked access outside the crypto/Paged_image allowlist")
  | _ -> None

(* [open Unix], [module U = Unix], [open Random] ... *)
let classify_module flat =
  match flat with
  | "Unix" :: _ -> Some (Rule.unix, "Unix brought into scope in lib/")
  | "Marshal" :: _ -> Some (Rule.marshal, "Marshal brought into scope in lib/")
  | [ "Random" ] -> Some (Rule.random, "global Random brought into scope in lib/")
  | ("Domain" | "Atomic" | "Mutex" | "Condition") :: _ ->
      Some
        ( Rule.domain_containment,
          "domain primitives brought into scope outside the Vpool allowlist" )
  | _ -> None

(* Binding names under which Hashtbl iteration order can reach persisted
   or transmitted bytes. *)
let encoder_name n =
  let has sub = Bft_util.Strutil.contains_sub n sub in
  has "encode" || has "snapshot" || has "digest" || has "wire" || has "serial"

let in_encoder ctx = List.exists encoder_name ctx.bindings

let ident_flat e =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some (Longident.flatten txt) | _ -> None

let is_sortish e =
  let sort_name = function
    | [ "List"; ("sort" | "stable_sort" | "fast_sort" | "sort_uniq") ] -> true
    | _ -> false
  in
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> sort_name (Longident.flatten txt)
  | Pexp_apply (f, _) -> ( match ident_flat f with Some l -> sort_name l | None -> false)
  | _ -> false

let expr ctx (it : Ast_iterator.iterator) e =
  let saved_allows = ctx.allows in
  ctx.allows <- attr_allows e.pexp_attributes @ ctx.allows;
  (match e.pexp_desc with
  | Pexp_ident { txt; loc } -> (
      match classify_ident (Longident.flatten txt) with
      | Some (rule, msg) -> report ctx ~loc ~rule msg
      | None -> ())
  | Pexp_try (_, cases) ->
      List.iter
        (fun c ->
          match c.pc_lhs.ppat_desc with
          | Ppat_any ->
              report ctx ~loc:c.pc_lhs.ppat_loc ~rule:Rule.swallowed_exception
                "catch-all try handler swallows every failure (including bugs); match specific \
                 exceptions or return a result"
          | _ -> ())
        cases
  | _ -> ());
  (match e.pexp_desc with
  | Pexp_apply (fn, args) ->
      (match ident_flat fn with
      | Some [ "Hashtbl"; ("iter" | "fold") ] when in_encoder ctx && not ctx.sorted ->
          report ctx ~loc:fn.pexp_loc ~rule:Rule.hashtbl_order
            "Hashtbl iteration order reaches encoded bytes; sort the elements first or iterate \
             a canonically ordered structure"
      | _ -> ());
      (* Which argument positions are fed into a List.sort, and therefore
         order-insensitive? *)
      let sorted_arg =
        match ident_flat fn with
        | Some [ "List"; ("sort" | "stable_sort" | "fast_sort" | "sort_uniq") ] -> fun _ -> true
        | Some [ "|>" ] -> (
            match args with [ _; (_, rhs) ] when is_sortish rhs -> fun i -> i = 0 | _ -> fun _ -> false)
        | Some [ "@@" ] -> (
            match args with [ (_, lhs); _ ] when is_sortish lhs -> fun i -> i = 1 | _ -> fun _ -> false)
        | _ -> fun _ -> false
      in
      it.expr it fn;
      List.iteri
        (fun i (_, a) ->
          let saved = ctx.sorted in
          if sorted_arg i then ctx.sorted <- true;
          it.expr it a;
          ctx.sorted <- saved)
        args
  | _ -> Ast_iterator.default_iterator.expr it e);
  ctx.allows <- saved_allows

let value_binding ctx (it : Ast_iterator.iterator) vb =
  let saved_allows = ctx.allows and saved_bindings = ctx.bindings in
  ctx.allows <- attr_allows vb.pvb_attributes @ ctx.allows;
  (match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt; _ } -> ctx.bindings <- String.lowercase_ascii txt :: ctx.bindings
  | _ -> ());
  Ast_iterator.default_iterator.value_binding it vb;
  ctx.allows <- saved_allows;
  ctx.bindings <- saved_bindings

let module_expr ctx (it : Ast_iterator.iterator) me =
  (match me.pmod_desc with
  | Pmod_ident { txt; loc } -> (
      match classify_module (Longident.flatten txt) with
      | Some (rule, msg) -> report ctx ~loc ~rule msg
      | None -> ())
  | _ -> ());
  Ast_iterator.default_iterator.module_expr it me

let structure_item ctx (it : Ast_iterator.iterator) item =
  (match item.pstr_desc with
  | Pstr_primitive vd when List.exists is_unsafe_prim vd.pval_prim ->
      report ctx ~loc:item.pstr_loc ~rule:Rule.unsafe_op
        "external bound to an unchecked primitive outside the crypto/Paged_image allowlist"
  | _ -> ());
  Ast_iterator.default_iterator.structure_item it item

(* A file-level [@@@lint.allow "..."] applies to the rest of the structure. *)
let structure ctx (it : Ast_iterator.iterator) items =
  let saved = ctx.allows in
  List.iter
    (fun item ->
      (match item.pstr_desc with
      | Pstr_attribute a -> ctx.allows <- attr_allows [ a ] @ ctx.allows
      | _ -> ());
      it.structure_item it item)
    items;
  ctx.allows <- saved

let lint (str : structure) : Finding.t list =
  let ctx = { findings = []; allows = []; bindings = []; sorted = false } in
  let it =
    {
      Ast_iterator.default_iterator with
      expr = expr ctx;
      value_binding = value_binding ctx;
      module_expr = module_expr ctx;
      structure_item = structure_item ctx;
      structure = structure ctx;
    }
  in
  it.structure it str;
  List.rev ctx.findings

(* A single static-analysis finding, anchored to a source location. *)

type t = {
  rule : string;  (** rule id, e.g. ["determinism-unix"] *)
  file : string;
  line : int;
  col : int;
  msg : string;
}

let v ~rule ~loc msg =
  let p = loc.Location.loc_start in
  {
    rule;
    file = p.Lexing.pos_fname;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    msg;
  }

let compare_pos a b =
  match String.compare a.file b.file with
  | 0 -> ( match Int.compare a.line b.line with 0 -> Int.compare a.col b.col | c -> c)
  | c -> c

let to_string f = Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.msg

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf "{\"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \"%s\", \"message\": \"%s\"}"
    (json_escape f.file) f.line f.col (json_escape f.rule) (json_escape f.msg)

let list_to_json fs =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"findings\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (to_json f))
    fs;
  Buffer.add_string b (Printf.sprintf "], \"count\": %d}" (List.length fs));
  Buffer.contents b

(* A single static-analysis finding, anchored to a source location.
   Interprocedural findings additionally carry a [witness]: the call path
   from the flagged root to the effect seed, printed by [bftlint --why]. *)

type t = {
  rule : string;  (** rule id, e.g. ["determinism-unix"] *)
  file : string;
  line : int;
  col : int;
  msg : string;
  witness : string list;
      (** call-path witness, outermost first; [[]] for intraprocedural rules *)
}

let v ?(witness = []) ~rule ~loc msg =
  let p = loc.Location.loc_start in
  {
    rule;
    file = p.Lexing.pos_fname;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    msg;
    witness;
  }

let compare_pos a b =
  match String.compare a.file b.file with
  | 0 -> ( match Int.compare a.line b.line with 0 -> Int.compare a.col b.col | c -> c)
  | c -> c

let to_string f = Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.msg

(* The --why rendering: the finding line followed by one indented line
   per call-path hop, outermost (the flagged root) first. *)
let why_lines f =
  match f.witness with
  | [] -> []
  | first :: rest -> ("  why: " ^ first) :: List.map (fun w -> "    -> " ^ w) rest

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_string_list ws =
  "[" ^ String.concat ", " (List.map (fun w -> Printf.sprintf "\"%s\"" (json_escape w)) ws) ^ "]"

let to_json f =
  Printf.sprintf
    "{\"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \"%s\", \"message\": \"%s\", \
     \"witness\": %s}"
    (json_escape f.file) f.line f.col (json_escape f.rule) (json_escape f.msg)
    (json_string_list f.witness)

let list_to_json fs =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"findings\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (to_json f))
    fs;
  Buffer.add_string b (Printf.sprintf "], \"count\": %d}" (List.length fs));
  Buffer.contents b

(* SARIF 2.1.0, the minimal subset GitHub code scanning ingests: one run,
   one driver, one result per finding with a physical location; the
   call-path witness rides along in the result's property bag. Columns
   are 1-based in SARIF, 0-based in [t]. *)
let list_to_sarif ~rules fs =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "{\"version\": \"2.1.0\", \
     \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\", \"runs\": [{\"tool\": \
     {\"driver\": {\"name\": \"bftlint\", \"informationUri\": \
     \"https://github.com/bft/bft\", \"rules\": [";
  List.iteri
    (fun i (id, _, rationale) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf
           "{\"id\": \"%s\", \"shortDescription\": {\"text\": \"%s\"}}"
           (json_escape id) (json_escape rationale)))
    rules;
  Buffer.add_string b "]}}, \"results\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf
           "{\"ruleId\": \"%s\", \"level\": \"error\", \"message\": {\"text\": \"%s\"}, \
            \"locations\": [{\"physicalLocation\": {\"artifactLocation\": {\"uri\": \"%s\"}, \
            \"region\": {\"startLine\": %d, \"startColumn\": %d}}}], \"properties\": \
            {\"witness\": %s}}"
           (json_escape f.rule) (json_escape f.msg) (json_escape f.file) f.line (f.col + 1)
           (json_string_list f.witness)))
    fs;
  Buffer.add_string b "]}]}";
  Buffer.contents b

(* Static race detection for the PR-7 deterministic-merge boundary.

   The verification pool's soundness argument is that parallelism is
   wall-clock only: jobs crossing into worker domains read immutable
   data and results merge in submission order. Two rules keep that
   auditable:

   - [pool-escape]: a closure passed across the boundary ([Vpool.run],
     [Vpool.run_inline], [Vpool.submit], or a raw [Domain.spawn])
     captures a mutable value — a ref, an array/[Bytes], a record with
     mutable fields, or an imperative container. Captured names
     containing "scratch" or "arena" are exempt: those are the
     documented read-only scratch buffers (written only before
     submission).

   - [mutable-global]: the closure (or a function it references,
     transitively through the effect fixpoint) writes top-level mutable
     state — a data race with the submitting domain even if the closure
     itself captures nothing.

   Soundness caveats (documented in DESIGN.md): closures reaching the
   boundary through a function parameter or stored in mutable state are
   not tracked; reads of global mutable state referenced *indirectly*
   (through a called function rather than a captured ident) are only
   caught when some function in the chain writes. *)

let submit_names = [ "run"; "run_inline"; "submit"; "spawn" ]

let is_pool_boundary (cg : Callgraph.t) ~unit_name p =
  match Callgraph.resolve cg ~unit_name p with
  | Callgraph.Def d -> (
      match List.rev (String.split_on_char '.' d.Callgraph.d_disp) with
      | leaf :: mods when List.exists (String.equal leaf) submit_names ->
          let owner =
            match mods with m :: _ -> m | [] -> Callgraph.unit_base d.Callgraph.d_unit
          in
          String.equal owner "Vpool"
      | _ -> false)
  | Callgraph.External comps -> (
      match List.rev comps with
      | [ "spawn"; "Domain" ] | [ "spawn"; "Domain"; "Stdlib" ] -> true
      | leaf :: owner :: _ ->
          List.exists (String.equal leaf) submit_names && String.equal owner "Vpool"
      | _ -> false)
  | Callgraph.Local -> false

let scratch_allowed name =
  Bft_util.Strutil.contains_sub name "scratch" || Bft_util.Strutil.contains_sub name "arena"

(* Idents bound anywhere inside [e] (params, lets, match cases, for
   loops): references to anything else are captures. *)
let bound_idents (e : Typedtree.expression) =
  let bound = Hashtbl.create 16 in
  let add id = Hashtbl.replace bound (Ident.unique_name id) () in
  let pat (type k) (it : Tast_iterator.iterator) (p : k Typedtree.general_pattern) =
    (match p.Typedtree.pat_desc with
    | Typedtree.Tpat_var (id, _) -> add id
    | Typedtree.Tpat_alias (_, id, _) -> add id
    | _ -> ());
    Tast_iterator.default_iterator.pat it p
  in
  let expr (it : Tast_iterator.iterator) (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_function { param; _ } -> add param
    | Typedtree.Texp_for (id, _, _, _, _, _) -> add id
    | Typedtree.Texp_letop { param; _ } -> add param
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with pat = (fun it p -> pat it p); expr } in
  it.expr it e;
  bound

type ctx = {
  cg : Callgraph.t;
  summaries : (string, Effects.summary) Hashtbl.t;
  mutable findings : Finding.t list;
  mutable seen : (string * string * int * int) list;  (* (rule, file, line, col) dedup *)
}

let report ctx ~(def : Callgraph.def) ~rule ~loc ?(witness = []) msg =
  if not (List.exists (String.equal rule) def.Callgraph.d_allows) then begin
    let f = Finding.v ~witness ~rule ~loc msg in
    let k = (f.Finding.rule, f.Finding.file, f.Finding.line, f.Finding.col) in
    if not (List.mem k ctx.seen) then begin
      ctx.seen <- k :: ctx.seen;
      ctx.findings <- f :: ctx.findings
    end
  end

(* A referenced definition whose inferred effect writes global state:
   flag it with the call-path witness to the actual write. *)
let check_mutating_def ctx ~def ~loc (d' : Callgraph.def) =
  match Hashtbl.find_opt ctx.summaries d'.Callgraph.d_key with
  | Some s when s.Effects.s_eff.Effects.mutates ->
      let witness =
        Option.value
          (Effects.witness ctx.cg ctx.summaries
             ~pred:(fun e -> e.Effects.mutates)
             d'.Callgraph.d_key)
          ~default:[]
      in
      report ctx ~def ~rule:Rule.mutable_global ~loc ~witness
        (Printf.sprintf
           "closure crossing the Vpool boundary calls %s, whose inferred effect writes \
            top-level mutable state — a data race across the deterministic-merge boundary \
            (bftlint --why prints the call path)"
           d'.Callgraph.d_disp)
  | _ -> ()

(* Analyze one closure expression crossing the boundary. *)
let check_closure ctx ~(def : Callgraph.def) (fn_e : Typedtree.expression) =
  let bound = bound_idents fn_e in
  let expr (it : Tast_iterator.iterator) (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_ident (p, { loc; _ }, _) -> (
        match p with
        | Path.Pident id when Hashtbl.mem bound (Ident.unique_name id) -> ()
        | _ -> (
            match Callgraph.resolve ctx.cg ~unit_name:def.Callgraph.d_unit p with
            | Callgraph.Def d' ->
                check_mutating_def ctx ~def ~loc d';
                if
                  Callgraph.is_mutable_type e.Typedtree.exp_env e.Typedtree.exp_type
                  && not (scratch_allowed d'.Callgraph.d_disp)
                then
                  report ctx ~def ~rule:Rule.pool_escape ~loc
                    (Printf.sprintf
                       "closure crossing the Vpool boundary captures top-level mutable value \
                        %s; parallel jobs must only read immutable data"
                       d'.Callgraph.d_disp)
            | Callgraph.Local ->
                let name = Path.last p in
                if
                  Callgraph.is_mutable_type e.Typedtree.exp_env e.Typedtree.exp_type
                  && not (scratch_allowed name)
                then
                  report ctx ~def ~rule:Rule.pool_escape ~loc
                    (Printf.sprintf
                       "closure crossing the Vpool boundary captures mutable local '%s'; \
                        parallel jobs must only read immutable data (rename it *scratch* / \
                        *arena* if it is a pre-submission read-only buffer)"
                       name)
            | Callgraph.External _ -> ()))
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it fn_e

(* An argument crossing the boundary: literal closures get the full
   capture analysis; named functions and partial applications get the
   transitive mutates_global check. *)
let check_arg ctx ~(def : Callgraph.def) (a : Typedtree.expression) =
  match a.Typedtree.exp_desc with
  | Typedtree.Texp_function _ -> check_closure ctx ~def a
  | _ when Callgraph.is_arrow_type a.Typedtree.exp_env a.Typedtree.exp_type -> (
      match a.Typedtree.exp_desc with
      | Typedtree.Texp_ident (p, { loc; _ }, _) -> (
          match Callgraph.resolve ctx.cg ~unit_name:def.Callgraph.d_unit p with
          | Callgraph.Def d' -> check_mutating_def ctx ~def ~loc d'
          | _ -> ())
      | _ ->
          (* partial application etc.: every referenced def is checked *)
          let expr (it : Tast_iterator.iterator) (e : Typedtree.expression) =
            (match e.Typedtree.exp_desc with
            | Typedtree.Texp_ident (p, { loc; _ }, _) -> (
                match Callgraph.resolve ctx.cg ~unit_name:def.Callgraph.d_unit p with
                | Callgraph.Def d' -> check_mutating_def ctx ~def ~loc d'
                | _ -> ())
            | _ -> ());
            Tast_iterator.default_iterator.expr it e
          in
          let it = { Tast_iterator.default_iterator with expr } in
          it.expr it a)
  | _ -> ()  (* data arguments (job arrays, strings) are the merge boundary's job *)

let findings (cg : Callgraph.t) summaries =
  let ctx = { cg; summaries; findings = []; seen = [] } in
  List.iter
    (fun key ->
      let def = Hashtbl.find cg.Callgraph.defs key in
      match def.Callgraph.d_body with
      | None -> ()
      | Some body ->
          let expr (it : Tast_iterator.iterator) (e : Typedtree.expression) =
            (match e.Typedtree.exp_desc with
            | Typedtree.Texp_apply ({ exp_desc = Typedtree.Texp_ident (p, _, _); _ }, args)
              when is_pool_boundary cg ~unit_name:def.Callgraph.d_unit p ->
                List.iter (fun (_, argo) -> Option.iter (check_arg ctx ~def) argo) args
            | _ -> ());
            Tast_iterator.default_iterator.expr it e
          in
          let it = { Tast_iterator.default_iterator with expr } in
          it.expr it body)
    cg.Callgraph.order;
  List.rev ctx.findings

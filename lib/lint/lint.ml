(* Driver: run the syntactic rules over [.ml] sources, the type-aware
   rules over the [.cmt] files dune leaves under [.objs/byte], then the
   whole-program pass (call graph -> effect fixpoint -> Vpool escape)
   over every loaded typedtree at once; apply the per-directory
   allowlist and report sorted findings. *)

(* Built-in per-directory allowlist: unchecked accesses are the point of
   the crypto kernels and the arenas; domain primitives are fenced into
   the verification pool (and the domain-local digest scratch in Sha256)
   so the determinism guarantee — parallelism is wall-clock only, merged
   in submission order — stays auditable at a glance. The pool's own
   worker closure necessarily captures the (mutable) pool record: that
   file IS the trust boundary the pool-escape rule defends, so it is the
   one place allowed to cross it.

   bench/ and bin/ are drivers: wall-clock timing and environment
   lookups are their job (the simulator itself never sees them), so the
   determinism fence stops at lib/ + the protocol-reachable roots. *)
let default_allowlist =
  [
    ("lib/crypto/", Rule.unsafe_op);
    ("lib/statemachine/paged_image.ml", Rule.unsafe_op);
    ("lib/net/wire_arena.ml", Rule.unsafe_op);
    ("lib/crypto/vpool", Rule.domain_containment);
    ("lib/crypto/sha256.ml", Rule.domain_containment);
    ("lib/crypto/vpool", Rule.pool_escape);
  ]

let contains_sub = Bft_util.Strutil.contains_sub

let allowed_by allowlist (f : Finding.t) =
  List.exists
    (fun (prefix, rule) -> String.equal rule f.Finding.rule && contains_sub f.Finding.file prefix)
    allowlist

(* --allow PREFIX:RULE specs: a malformed spec is a hard usage error
   (empty prefix, empty/unknown rule id) — silently dropping one would
   run the gate with different rules than the caller asked for. *)
let parse_allow spec =
  match String.index_opt spec ':' with
  | None -> Error (Printf.sprintf "malformed --allow %S (want PREFIX:RULE)" spec)
  | Some i ->
      let prefix = String.sub spec 0 i
      and rule = String.sub spec (i + 1) (String.length spec - i - 1) in
      if String.length prefix = 0 || String.length rule = 0 then
        Error (Printf.sprintf "malformed --allow %S (want PREFIX:RULE)" spec)
      else if not (List.exists (String.equal rule) Rule.ids) then
        Error (Printf.sprintf "unknown rule %S in --allow %S" rule spec)
      else Ok (prefix, rule)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_impl ~filename src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf filename;
  Parse.implementation lexbuf

(* Lint one [.ml] source file (syntactic rules only). [filename] is the
   path recorded in findings; [path], when given, is where to read it. *)
let lint_ml_file ?path filename =
  let src = read_file (Option.value path ~default:filename) in
  Syntactic.lint (parse_impl ~filename src)

(* Load one [.cmt] file. Findings carry the source path recorded at
   compile time, e.g. "lib/core/replica.ml". *)
let load_cmt path =
  let cmt = Cmt_format.read_cmt path in
  match cmt.Cmt_format.cmt_annots with
  | Cmt_format.Implementation tstr ->
      Some
        {
          Callgraph.u_name = cmt.Cmt_format.cmt_modname;
          u_file = Option.value cmt.Cmt_format.cmt_sourcefile ~default:path;
          u_str = tstr;
        }
  | _ -> None

(* The whole-program pass: build the cross-module call graph, run the
   effect fixpoint, then the transitive-nondet and Vpool escape rules. *)
let interprocedural units =
  let cg = Callgraph.build units in
  let summaries = Effects.infer cg in
  Effects.findings cg summaries @ Escape.findings cg summaries

(* Typecheck a standalone snippet against the initial environment so the
   fixture corpus can exercise the type-aware rules without dune in the
   loop. Returns [Error] when the snippet does not typecheck (fixtures
   for the determinism rules reference Unix etc., which is not on the
   load path — their typed findings are necessarily empty). *)
let initial_env =
  lazy
    (Compmisc.init_path ();
     (* fixtures are deliberately scruffy; keep the typechecker from
        printing warnings while linting them *)
     let (_ : Warnings.alert option) = Warnings.parse_options false "-a" in
     Compmisc.initial_env ())

let typecheck str =
  match Typemod.type_structure (Lazy.force initial_env) str with
  | tstr, _, _, _, _ -> Ok tstr
  | exception exn -> Error (Printexc.to_string exn)

let modname_of_filename filename =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename filename))

(* Lint a source string with every rule set (the whole-program pass runs
   on the single unit, so intra-file module laundering is visible). The
   second component tells the caller whether the typed passes ran. *)
let lint_source ~filename src =
  let str = parse_impl ~filename src in
  let syntactic = Syntactic.lint str in
  match typecheck str with
  | Ok tstr ->
      let unit =
        { Callgraph.u_name = modname_of_filename filename; u_file = filename; u_str = tstr }
      in
      ( List.sort Finding.compare_pos (syntactic @ Typed.lint tstr @ interprocedural [ unit ]),
        Ok () )
  | Error e -> (List.sort Finding.compare_pos syntactic, Error e)

(* Walk [root/path] collecting sources and cmt artifacts. Sources are
   reported relative to [root]; directory order is sorted so runs are
   deterministic. [.cmti] files (interfaces) carry no expressions worth
   checking; wrapper/alias cmts are harmless to scan. Paths matching
   [exclude] (substring) are skipped — the lint-fixture corpus violates
   the rules on purpose. *)
let default_exclude = [ "lint_fixtures" ]

let gather ?(exclude = default_exclude) ~root paths =
  let excluded rel = List.exists (fun e -> contains_sub rel e) exclude in
  let mls = ref [] and cmts = ref [] in
  let rec walk rel =
    let full = Filename.concat root rel in
    if excluded rel then ()
    else if Sys.is_directory full then
      Array.iter
        (fun name -> walk (Filename.concat rel name))
        (let names = Sys.readdir full in
         Array.sort String.compare names;
         names)
    else if String.ends_with ~suffix:".ml" rel then mls := rel :: !mls
    else if String.ends_with ~suffix:".cmt" rel then cmts := rel :: !cmts
  in
  List.iter (fun p -> if Sys.file_exists (Filename.concat root p) then walk p) paths;
  (List.rev !mls, List.rev !cmts)

type run = {
  findings : Finding.t list;
  errors : string list;  (* files that failed to parse/load *)
  files_scanned : int;
  cmts_scanned : int;
}

(* Lint a tree: syntactic rules over every [.ml], typed rules over every
   [.cmt], the whole-program pass over all loaded units together, and
   the allowlist applied to everything. [allow] extends the built-in
   per-directory allowlist with (path-prefix, rule-id) pairs. *)
let lint_tree ?(allow = []) ?exclude ~root paths =
  let allowlist = allow @ default_allowlist in
  let mls, cmts = gather ?exclude ~root paths in
  let errors = ref [] in
  let of_ml rel =
    match lint_ml_file ~path:(Filename.concat root rel) rel with
    | fs -> fs
    | exception exn ->
        errors := Printf.sprintf "%s: %s" rel (Printexc.to_string exn) :: !errors;
        []
  in
  let units = ref [] in
  let of_cmt rel =
    match load_cmt (Filename.concat root rel) with
    | Some u ->
        units := u :: !units;
        Typed.lint u.Callgraph.u_str
    | None -> []
    | exception exn ->
        errors := Printf.sprintf "%s: %s" rel (Printexc.to_string exn) :: !errors;
        []
  in
  let raw = List.concat_map of_ml mls @ List.concat_map of_cmt cmts in
  let raw = raw @ interprocedural (List.rev !units) in
  let findings =
    List.sort Finding.compare_pos (List.filter (fun f -> not (allowed_by allowlist f)) raw)
  in
  {
    findings;
    errors = List.rev !errors;
    files_scanned = List.length mls;
    cmts_scanned = List.length cmts;
  }

(* Driver: run the syntactic rules over [.ml] sources and the type-aware
   rules over the [.cmt] files dune leaves under [.objs/byte], apply the
   per-directory allowlist, and report sorted findings. *)

(* Built-in per-directory allowlist: unchecked accesses are the point of
   the crypto kernels and the arenas; everywhere else they are a bug.
   Domain primitives are fenced into the verification pool (and the
   domain-local digest scratch in Sha256) so the determinism guarantee —
   parallelism is wall-clock only, merged in submission order — stays
   auditable at a glance. *)
let default_allowlist =
  [
    ("lib/crypto/", Rule.unsafe_op);
    ("lib/statemachine/paged_image.ml", Rule.unsafe_op);
    ("lib/net/wire_arena.ml", Rule.unsafe_op);
    ("lib/crypto/vpool", Rule.domain_containment);
    ("lib/crypto/sha256.ml", Rule.domain_containment);
  ]

let contains_sub hay sub =
  let lh = String.length hay and ls = String.length sub in
  let rec go i = i + ls <= lh && (String.equal (String.sub hay i ls) sub || go (i + 1)) in
  go 0

let allowed_by allowlist (f : Finding.t) =
  List.exists
    (fun (prefix, rule) -> String.equal rule f.Finding.rule && contains_sub f.Finding.file prefix)
    allowlist

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_impl ~filename src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf filename;
  Parse.implementation lexbuf

(* Lint one [.ml] source file (syntactic rules only). [filename] is the
   path recorded in findings; [path], when given, is where to read it. *)
let lint_ml_file ?path filename =
  let src = read_file (Option.value path ~default:filename) in
  Syntactic.lint (parse_impl ~filename src)

(* Lint one [.cmt] file (type-aware rules only). Findings carry the
   source path recorded at compile time, e.g. "lib/core/replica.ml". *)
let lint_cmt_file path =
  match (Cmt_format.read_cmt path).Cmt_format.cmt_annots with
  | Cmt_format.Implementation tstr -> Typed.lint tstr
  | _ -> []

(* Typecheck a standalone snippet against the initial environment so the
   fixture corpus can exercise the type-aware rules without dune in the
   loop. Returns [Error] when the snippet does not typecheck (fixtures
   for the determinism rules reference Unix etc., which is not on the
   load path — their typed findings are necessarily empty). *)
let initial_env =
  lazy
    (Compmisc.init_path ();
     (* fixtures are deliberately scruffy; keep the typechecker from
        printing warnings while linting them *)
     let (_ : Warnings.alert option) = Warnings.parse_options false "-a" in
     Compmisc.initial_env ())

let typecheck str =
  match Typemod.type_structure (Lazy.force initial_env) str with
  | tstr, _, _, _, _ -> Ok tstr
  | exception exn -> Error (Printexc.to_string exn)

(* Lint a source string with both rule sets. The second component tells
   the caller whether the typed pass ran. *)
let lint_source ~filename src =
  let str = parse_impl ~filename src in
  let syntactic = Syntactic.lint str in
  match typecheck str with
  | Ok tstr -> (List.sort Finding.compare_pos (syntactic @ Typed.lint tstr), Ok ())
  | Error e -> (List.sort Finding.compare_pos syntactic, Error e)

(* Walk [root/path] collecting sources and cmt artifacts. Sources are
   reported relative to [root]; directory order is sorted so runs are
   deterministic. [.cmti] files (interfaces) carry no expressions worth
   checking; wrapper/alias cmts are harmless to scan. *)
let gather ~root paths =
  let mls = ref [] and cmts = ref [] in
  let rec walk rel =
    let full = Filename.concat root rel in
    if Sys.is_directory full then
      Array.iter
        (fun name -> walk (Filename.concat rel name))
        (let names = Sys.readdir full in
         Array.sort String.compare names;
         names)
    else if String.ends_with ~suffix:".ml" rel then mls := rel :: !mls
    else if String.ends_with ~suffix:".cmt" rel then cmts := rel :: !cmts
  in
  List.iter (fun p -> if Sys.file_exists (Filename.concat root p) then walk p) paths;
  (List.rev !mls, List.rev !cmts)

type run = {
  findings : Finding.t list;
  errors : string list;  (* files that failed to parse/load *)
  files_scanned : int;
  cmts_scanned : int;
}

(* Lint a tree: syntactic rules over every [.ml], typed rules over every
   [.cmt], allowlist applied to both. [allow] extends the built-in
   per-directory allowlist with (path-prefix, rule-id) pairs. *)
let lint_tree ?(allow = []) ~root paths =
  let allowlist = allow @ default_allowlist in
  let mls, cmts = gather ~root paths in
  let errors = ref [] in
  let of_ml rel =
    match lint_ml_file ~path:(Filename.concat root rel) rel with
    | fs -> fs
    | exception exn ->
        errors := Printf.sprintf "%s: %s" rel (Printexc.to_string exn) :: !errors;
        []
  in
  let of_cmt rel =
    match lint_cmt_file (Filename.concat root rel) with
    | fs -> fs
    | exception exn ->
        errors := Printf.sprintf "%s: %s" rel (Printexc.to_string exn) :: !errors;
        []
  in
  let raw = List.concat_map of_ml mls @ List.concat_map of_cmt cmts in
  let findings =
    List.sort Finding.compare_pos (List.filter (fun f -> not (allowed_by allowlist f)) raw)
  in
  {
    findings;
    errors = List.rev !errors;
    files_scanned = List.length mls;
    cmts_scanned = List.length cmts;
  }

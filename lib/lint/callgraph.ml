(* Whole-program call graph over the [.cmt] typedtrees dune emits.

   Nodes are top-level value bindings (including bindings inside plain
   [module X = struct ... end] nesting and [external] declarations),
   keyed by "<compilation unit>.<inner path>", e.g.
   "Bft_core__Replica.on_request" or "Bad_pool_escape.Vpool.submit".
   Reference resolution handles the three path shapes dune's module
   layout produces:

   - same-unit references: [Pident] with the binder's own stamp, matched
     exactly with [Ident.same] semantics (so local shadowing can never
     alias a top-level binding), and [Pdot] into sibling nested modules;
   - wrapped-library aliases: [Bft_core.Message.encode] and
     [Bft_core__.Message.encode] both normalize to the real unit
     [Bft_core__Message.encode];
   - everything else is [External] (classified by the effect tables) when
     the path head is a persistent (compilation-unit) ident, or [Local]
     (a function parameter, let-bound closure, or functor innard — the
     documented soundness caveats) otherwise.

   Functors and module applications are out of scope: their bodies are
   not collected, and references through [Papply] resolve to [Local]. *)

open Typedtree

type unit_info = {
  u_name : string;  (** compilation-unit module name, e.g. ["Bft_core__Replica"] *)
  u_file : string;  (** source path recorded in findings *)
  u_str : structure;
}

type def = {
  d_key : string;  (** "<unit>.<inner path>" *)
  d_unit : string;
  d_disp : string;  (** display name: inner path, e.g. ["Jitter.next"] *)
  d_loc : Location.t;
  d_file : string;
  d_allows : string list;  (** [@lint.allow] ids in scope at the binding *)
  d_body : expression option;  (** [None] for [external] declarations *)
  d_prim : string list;  (** primitive names for [external], [[]] otherwise *)
}

type t = {
  defs : (string, def) Hashtbl.t;
  mutable order : string list;  (** def keys, collection (= source) order *)
  by_ident : (string, string) Hashtbl.t;  (** "<unit>/<stamped ident>" -> key *)
}

let ident_key ~unit_name id = unit_name ^ "/" ^ Ident.unique_name id

let add_def t ~(u : unit_info) ~prefix ~id ~name ~loc ~allows ~body ~prim =
  let disp = prefix ^ name in
  let key = u.u_name ^ "." ^ disp in
  let d =
    {
      d_key = key;
      d_unit = u.u_name;
      d_disp = disp;
      d_loc = loc;
      d_file = u.u_file;
      d_allows = allows;
      d_body = body;
      d_prim = prim;
    }
  in
  if not (Hashtbl.mem t.defs key) then begin
    Hashtbl.replace t.defs key d;
    t.order <- key :: t.order
  end;
  Hashtbl.replace t.by_ident (ident_key ~unit_name:u.u_name id) key

let collect_unit t (u : unit_info) =
  (* [@@@lint.allow] floating attributes accumulate over the rest of the
     structure, mirroring the syntactic pass. *)
  let file_allows = ref [] in
  let rec item ~prefix (si : structure_item) =
    match si.str_desc with
    | Tstr_value (_, vbs) -> List.iter (vb ~prefix) vbs
    | Tstr_module mb -> module_binding ~prefix mb
    | Tstr_recmodule mbs -> List.iter (module_binding ~prefix) mbs
    | Tstr_primitive vd ->
        add_def t ~u ~prefix ~id:vd.val_id ~name:vd.val_name.txt ~loc:vd.val_loc
          ~allows:(Syntactic.attr_allows vd.val_attributes @ !file_allows)
          ~body:None ~prim:vd.val_prim
    | Tstr_attribute a -> file_allows := Syntactic.attr_allows [ a ] @ !file_allows
    | _ -> ()
  and module_binding ~prefix mb =
    match mb.mb_name.txt with
    | Some name -> mod_expr ~prefix:(prefix ^ name ^ ".") mb.mb_expr
    | None -> ()
  and mod_expr ~prefix me =
    match me.mod_desc with
    | Tmod_structure s -> List.iter (item ~prefix) s.str_items
    | Tmod_constraint (me', _, _, _) -> mod_expr ~prefix me'
    | _ -> ()  (* functors / applications: out of scope *)
  and vb ~prefix b =
    match b.vb_pat.pat_desc with
    | Tpat_var (id, _) ->
        add_def t ~u ~prefix ~id ~name:(Ident.name id) ~loc:b.vb_loc
          ~allows:(Syntactic.attr_allows b.vb_attributes @ !file_allows)
          ~body:(Some b.vb_expr) ~prim:[]
    | _ -> ()
  in
  List.iter (item ~prefix:"") u.u_str.str_items

let build units =
  let t = { defs = Hashtbl.create 256; order = []; by_ident = Hashtbl.create 256 } in
  List.iter (collect_unit t) units;
  t.order <- List.rev t.order;
  t

(* --- reference resolution ------------------------------------------- *)

type target =
  | Def of def
  | External of string list  (** flattened path components, head first *)
  | Local  (** parameter / let-bound local / functor-dependent *)

(* "Bft_core" + "Message" and "Bft_core__" + "Message" both mean the real
   unit "Bft_core__Message". *)
let join_units a b = if String.ends_with ~suffix:"__" a then a ^ b else a ^ "__" ^ b

let resolve t ~unit_name path =
  match path with
  | Path.Pident id -> (
      match Hashtbl.find_opt t.by_ident (ident_key ~unit_name id) with
      | Some key -> Def (Hashtbl.find t.defs key)
      | None -> if Ident.persistent id then External [ Ident.name id ] else Local)
  | _ -> (
      match Path.flatten path with
      | `Contains_apply -> Local
      | `Ok (head_id, rest) -> (
          let head = Ident.name head_id in
          let comps = head :: rest in
          let candidates =
            (* same-unit nested module first, then the literal unit path,
               then the wrapped-library alias normalization *)
            (unit_name ^ "." ^ String.concat "." comps)
            :: String.concat "." comps
            ::
            (match rest with
            | second :: more -> [ String.concat "." (join_units head second :: more) ]
            | [] -> [])
          in
          match List.find_map (Hashtbl.find_opt t.defs) candidates with
          | Some d -> Def d
          | None -> if Ident.persistent head_id then External comps else Local))

(* --- shared type queries -------------------------------------------- *)

(* The unit name a wrapped library exposes, e.g. "Replica" for
   "Bft_core__Replica" and "Bftctl" for "Dune__exe__Bftctl". *)
let unit_base u =
  match Bft_util.Strutil.contains_sub u "__" with
  | false -> u
  | true ->
      let n = String.length u in
      let rec last_sep i best =
        if i + 2 > n then best
        else if Char.equal u.[i] '_' && Char.equal u.[i + 1] '_' then last_sep (i + 1) (i + 2)
        else last_sep (i + 1) best
      in
      let s = last_sep 0 0 in
      if s >= n then u else String.sub u s (n - s)

(* Is [ty] a mutable container: ref, array, bytes, a record with a
   mutable field, or one of the stdlib imperative structures? Abstract
   types (Hashtbl.t & friends) are matched by name because their
   declarations are opaque here. *)
let mutable_by_name comps =
  let norm c =
    if String.starts_with ~prefix:"Stdlib__" c then
      String.sub c 8 (String.length c - 8)
    else c
  in
  match List.rev comps with
  | _ :: mods ->
      List.exists
        (fun m ->
          match norm m with
          | "Hashtbl" | "Buffer" | "Queue" | "Stack" | "Atomic" | "Dynarray" | "Weak" -> true
          | _ -> false)
        mods
  | [] -> false

let rec path_components p =
  match p with
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (p, s) -> path_components p @ [ s ]
  | Path.Papply _ | Path.Pextra_ty _ -> []

(* [Ctype.expand_head] raises (compiler-version-dependent exceptions) on
   types it cannot expand against this env; any failure just means "use
   the unexpanded type". *)
let expand_head env ty =
  (try Ctype.expand_head env ty with _ -> ty) [@lint.allow "swallowed-exception"]

let is_mutable_type env ty =
  let ty = expand_head env ty in
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> (
      Path.same p Predef.path_array || Path.same p Predef.path_bytes
      || String.equal (Path.last p) "ref"
      || mutable_by_name (path_components p)
      ||
      match Env.find_type p env with
      | { Types.type_kind = Types.Type_record (lbls, _); _ } ->
          List.exists (fun l -> l.Types.ld_mutable = Asttypes.Mutable) lbls
      | _ -> false
      | exception Not_found -> false)
  | _ -> false

let is_arrow_type env ty =
  match Types.get_desc (expand_head env ty) with Types.Tarrow _ -> true | _ -> false

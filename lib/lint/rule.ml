(* The rule catalogue. Every finding carries one of these ids, and
   [@lint.allow "<id>"] / per-directory allowlists suppress by id. *)

let unix = "determinism-unix"
let time = "determinism-time"
let getenv = "determinism-getenv"
let random = "determinism-random"
let marshal = "determinism-marshal"
let hashtbl_hash = "determinism-hashtbl-hash"
let hashtbl_order = "hashtbl-order"
let swallowed_exception = "swallowed-exception"
let ignored_result = "ignored-result"
let digest_compare = "digest-compare"
let engine_handle_compare = "engine-handle-compare"
let unsafe_op = "unsafe-op"
let domain_containment = "domain-containment"
let transitive_nondet = "transitive-nondet"
let pool_escape = "pool-escape"
let mutable_global = "mutable-global"

(* id, type-aware?, one-line rationale (the DESIGN.md catalogue mirrors
   this list; test_lint checks every id here has a fixture). *)
let all =
  [
    (unix, false, "Unix is wall-clock/OS-dependent; lib/ must stay deterministic");
    (time, false, "Sys.time reads the wall clock; use the simulator's virtual clock");
    (getenv, false, "environment lookups make replicas diverge; thread settings through Config");
    (random, false, "unseeded/global randomness breaks replayable schedules; use Bft_util.Rng");
    (marshal, false, "Marshal bytes are not a stable wire format; use Wire codecs");
    (hashtbl_hash, false, "Hashtbl.hash is not a stable digest; use Sha256/Adhash");
    (hashtbl_order, false, "Hashtbl iteration order must not reach wire/digest/snapshot bytes");
    (swallowed_exception, false, "catch-all try handlers hide faults; match specific exceptions");
    (ignored_result, true, "ignoring a result value silently drops the Error case");
    (digest_compare, true, "polymorphic compare on digest/key strings; use String.equal/compare");
    ( engine_handle_compare,
      true,
      "polymorphic compare on Engine.handle values (they hold closures); use \
       Option.is_none/is_some on timer slots" );
    (unsafe_op, false, "unchecked accesses only in the crypto / Paged_image allowlist");
    ( domain_containment,
      false,
      "Domain/Atomic/Mutex/Condition only under the Vpool allowlist; parallelism must stay \
       behind the deterministic-merge boundary" );
    ( transitive_nondet,
      true,
      "protocol handler / encoder / service execution transitively reaches a nondeterministic \
       seed (wall clock, global Random, getenv) through the call graph; bftlint --why prints \
       the call-path witness" );
    ( pool_escape,
      true,
      "closure crossing the Vpool/Domain.spawn boundary captures a mutable value (ref, mutable \
       record, Bytes/array outside the read-only scratch allowlist); parallel jobs must only \
       read immutable data" );
    ( mutable_global,
      true,
      "closure crossing the Vpool/Domain.spawn boundary calls code whose inferred effect \
       writes top-level mutable state; a data race across the deterministic-merge boundary" );
  ]

let ids = List.map (fun (id, _, _) -> id) all

(** Bounded exhaustive schedule explorer over the deterministic simulator.

    Enumerates every interleaving of message deliveries and timer firings
    for a small configuration by closing the network's delivery gate
    ({!Bft_net.Network.set_gate}) and choosing, at each state, which held
    message to release next — or whether to let virtual time advance to
    the next armed timer instead. Paths are represented as ordinary fault
    schedules (a [Hold_all] prefix plus timed [Release] actions), so every
    state is (re)built by replaying its schedule through
    {!Bft_check.Runner.prepare} — the exact machinery [bftctl fuzz
    --schedule] uses. Counterexamples therefore replay, and shrink,
    through the existing fuzzer tooling unchanged.

    Soundness caveats (see DESIGN.md, "Exhaustive exploration"):
    - Timer firings are not permuted among themselves: a tick advances
      time to the next armed deadline, so timers fire in deadline order.
      Delivery/timer interleavings are exhaustive; timer/timer ones are
      not.
    - With [fifo_links] (default), messages on one (src, dst) link are
      delivered in send order; only cross-link interleavings are
      enumerated. Disable it for full reordering (rarely exhaustible).
    - State hashing abstracts absolute virtual time (it keeps the firing
      {e order} of pending events, not their deadlines), so two states
      that differ only in how close they sit to the tick horizon may be
      identified, under-approximating coverage near the horizon.
    - With [stop_at_completion] (default), paths are cut as soon as the
      workload commits; states reachable only by post-completion faults
      are not visited. *)

type strategy = Bfs | Dfs

type config = {
  seed : int;
  f : int;
  clients : int;
  ops_per_client : int;
  view_bound : int;
      (** liveness: flag executions whose view passes this bound without
          the workload completing *)
  vc_timeout_us : float;
  checkpoint_interval : int;
  tick_horizon_us : float;
      (** virtual-time bound: no tick advances past this, cutting infinite
          timer chains (retransmission backoff). Paths cut here are probed
          for liveness rather than called terminal. *)
  probe_drain_us : float;
      (** virtual time the liveness probe grants after releasing all held
          messages ({!Bft_check.Runner.params.drain_us} of the probe) *)
  max_depth : int;  (** per-path bound on choices (releases + ticks) *)
  max_states : int;  (** total states built (budget) *)
  max_wall_s : float;  (** wall-clock budget, seconds *)
  strategy : strategy;
  por : bool;  (** sleep-set partial-order reduction *)
  fifo_links : bool;
      (** restrict delivery choices to the oldest held message per
          (src, dst) link — per-link FIFO order, the reduction that makes
          small configs exhaustible (the fuzzer still covers arbitrary
          reordering); [false] explores full reordering *)
  stop_at_completion : bool;
  stop_on_violation : bool;
  suppress_vc_timer : bool;
      (** inject {!Bft_core.Config.debug_no_vc_timer} (validation that the
          liveness oracles catch a real stall) *)
  prefix : Bft_check.Schedule.t;
      (** fault events injected before exploration (e.g. mute a replica);
          exploration releases are slotted after the delivery gate closes
          at time 0 *)
}

val default_config : seed:int -> config
(** n=4 ([f]=1), one client, one op, view bound 2, BFS, POR on, 250ms tick
    horizon — the pinned exhaustive configuration. *)

type stats = {
  mutable states_built : int;
      (** states materialized by schedule replay (budgeted by
          [max_states]) *)
  mutable states_visited : int;  (** distinct states (post hash-dedup) *)
  mutable states_expanded : int;
  mutable transitions : int;  (** children enqueued *)
  mutable por_pruned : int;  (** delivery choices skipped by sleep sets *)
  mutable hash_pruned : int;  (** revisits pruned by canonical hashing *)
  mutable terminals : int;
      (** distinct maximal states (workload done or stuck) — like
          [states_visited], invariant across search order and POR *)
  mutable cuts : int;  (** distinct states cut by horizon or depth budget *)
  mutable probes : int;  (** liveness probes run at cuts *)
  mutable slot_skipped : int;
      (** deliveries unschedulable for lack of a release slot (< 2ns gap) *)
  mutable max_depth_seen : int;
}

type violation = {
  v_kind : [ `Safety | `Liveness ];
  v_failures : string list;  (** oracle failures, ["name: reason"] *)
  v_depth : int;
  v_schedule : Bft_check.Schedule.t;
      (** full replayable schedule: gate prefix + releases (+ probe tail
          for liveness violations) *)
  v_params : Bft_check.Runner.params;
      (** parameters under which [v_schedule] reproduces [v_failures] *)
  v_replay : string;  (** [Runner.replay_line v_params v_schedule] *)
}

type outcome = {
  o_config : config;
  o_stats : stats;
  o_violations : violation list;
  o_exhausted : bool;
      (** the frontier drained with no budget hit: every reachable state
          (modulo the documented abstractions) was visited *)
}

val build_params : config -> Bft_check.Runner.params
(** The runner parameters exploration builds states with: free costs, no
    quiesce, gate-friendly status interval, safety oracles only. Exposed
    so tests can replay explorer schedules under identical conditions. *)

val run : ?log:(string -> unit) -> config -> outcome
(** Explore. [log] receives occasional one-line progress notes. *)

val pp_stats : Format.formatter -> stats -> unit
val stats_json : stats -> string
(** Single-line JSON object (stable key order) for the CI artifact. *)

module Engine = Bft_sim.Engine
module Network = Bft_net.Network
module Schedule = Bft_check.Schedule
module Runner = Bft_check.Runner
open Bft_core

type strategy = Bfs | Dfs

type config = {
  seed : int;
  f : int;
  clients : int;
  ops_per_client : int;
  view_bound : int;
  vc_timeout_us : float;
  checkpoint_interval : int;
  tick_horizon_us : float;
  probe_drain_us : float;
  max_depth : int;
  max_states : int;
  max_wall_s : float;
  strategy : strategy;
  por : bool;
  fifo_links : bool;
  stop_at_completion : bool;
  stop_on_violation : bool;
  suppress_vc_timer : bool;
  prefix : Schedule.t;
}

let default_config ~seed =
  {
    seed;
    f = 1;
    clients = 1;
    ops_per_client = 1;
    view_bound = 2;
    vc_timeout_us = 30_000.0;
    checkpoint_interval = 8;
    tick_horizon_us = 250_000.0;
    probe_drain_us = 10_000_000.0;
    max_depth = 60;
    max_states = 50_000;
    max_wall_s = 300.0;
    strategy = Bfs;
    por = true;
    fifo_links = true;
    stop_at_completion = true;
    stop_on_violation = true;
    suppress_vc_timer = false;
    prefix = [];
  }

type stats = {
  mutable states_built : int;
  mutable states_visited : int;
  mutable states_expanded : int;
  mutable transitions : int;
  mutable por_pruned : int;
  mutable hash_pruned : int;
  mutable terminals : int;
  mutable cuts : int;
  mutable probes : int;
  mutable slot_skipped : int;
  mutable max_depth_seen : int;
}

type violation = {
  v_kind : [ `Safety | `Liveness ];
  v_failures : string list;
  v_depth : int;
  v_schedule : Schedule.t;
  v_params : Runner.params;
  v_replay : string;
}

type outcome = {
  o_config : config;
  o_stats : stats;
  o_violations : violation list;
  o_exhausted : bool;
}

(* ------------------------------------------------------------------ *)
(* Building states by schedule replay                                  *)
(* ------------------------------------------------------------------ *)

let build_params c =
  let p = Runner.default_params ~seed:c.seed ~f:c.f in
  {
    p with
    Runner.clients = c.clients;
    ops_per_client = c.ops_per_client;
    horizon_us = c.tick_horizon_us;
    drain_us = c.probe_drain_us;
    checkpoint_interval = c.checkpoint_interval;
    vc_timeout_us = c.vc_timeout_us;
    (* status retransmission would flood the gate with periodic traffic;
       push it far past the tick horizon so the explored window contains
       only protocol-driven events *)
    status_interval_us = 3_600_000_000.0;
    free_costs = true;
    quiesce = false;
    suppress_vc_timer = c.suppress_vc_timer;
  }

let base_schedule c = { Schedule.at_us = 0.0; action = Schedule.Hold_all } :: c.prefix

(* A path is its appended release actions; a node is a path plus how far
   virtual time has been advanced (ticks move time without releasing). *)
type node = {
  n_trace : Schedule.event list;  (* chronological, strictly increasing at_us *)
  n_time : Engine.time;
  n_depth : int;
  n_sleep : choice list;
  n_parent : (int * int) array option;  (* parent's (view, low water mark) *)
}

and choice =
  | Deliver of Schedule.msg_class * int * int * int  (* class, src, dst, nth *)
  | Tick

let build c node =
  let lv =
    Runner.prepare ~monotonic_probes:false (build_params c)
      (base_schedule c @ node.n_trace)
  in
  Engine.run ~until:node.n_time (Cluster.engine lv.Runner.lv_cluster);
  lv

(* ------------------------------------------------------------------ *)
(* Enabled choices                                                     *)
(* ------------------------------------------------------------------ *)

let specific_classes =
  [
    Schedule.Pre_prepares;
    Schedule.Prepares;
    Schedule.Commits;
    Schedule.Checkpoints;
    Schedule.View_changes;
    Schedule.New_views;
    Schedule.Replies;
    Schedule.Requests;
  ]

let class_of body =
  match List.find_opt (fun c -> Schedule.matches c body) specific_classes with
  | Some c -> c
  | None -> Schedule.Any

let held_key src dst msg =
  Printf.sprintf "%d>%d:%s" src dst
    (Bft_crypto.Sha256.hexdigest (Wire.envelope_bytes msg))

(* Without [fifo_links]: one choice per distinct held payload — releasing
   either of two identical duplicates leaves the same residual multiset,
   so only the first is offered. [nth] counts prior held messages matching
   the same replay predicate — exactly how [Release] resolves it.

   With [fifo_links] (default): only the oldest held message of each
   (src, dst) link is releasable, so per-link delivery order matches send
   order. This is the reduction that makes small configs exhaustible; the
   randomized fuzzer still covers arbitrary reordering. The link-oldest
   message is by construction the first match of its own class on that
   link, so [nth] is always 0. *)
let deliveries ~fifo lv =
  let net = Cluster.network lv.Runner.lv_cluster in
  let held = Array.of_list (Network.held net) in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  Array.iteri
    (fun i (src, dst, msg) ->
      let key =
        if fifo then Printf.sprintf "%d>%d" src dst else held_key src dst msg
      in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        let cls = class_of msg.Message.body in
        let nth = ref 0 in
        for j = 0 to i - 1 do
          let s', d', m' = held.(j) in
          if s' = src && d' = dst && Schedule.matches cls m'.Message.body then incr nth
        done;
        out := Deliver (cls, src, dst, !nth) :: !out
      end)
    held;
  List.rev !out

let tick_target lv horizon_ns =
  match Engine.next_live_time (Cluster.engine lv.Runner.lv_cluster) with
  | Some t when Int64.compare t horizon_ns <= 0 -> Some t
  | _ -> None

(* Two deliveries to distinct destinations commute: each mutates only its
   destination node (new sends are held, not delivered), and both the
   residual held multiset and the canonical state are order-insensitive.
   Everything else — same-destination deliveries, and ticks, which fire
   arbitrary timers — is treated as dependent. *)
let independent a b =
  match (a, b) with
  | Deliver (_, _, d1, _), Deliver (_, _, d2, _) -> d1 <> d2
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Release-slot computation (nanosecond domain)                        *)
(* ------------------------------------------------------------------ *)

(* A release must land strictly inside (cur, next-live-event): replay
   schedules it as a fresh event, so landing on [cur] would fire it before
   events that already fired during this build, and landing on the next
   deadline would race the timer it is supposed to precede. Schedule times
   are float microseconds; [of_us_float] truncates, so nudge until the
   encoding round-trips to the exact nanosecond. *)
let slot_for ~cur ~next =
  let cap =
    match next with Some nx -> Int64.sub nx 1L | None -> Int64.add cur 1_000L
  in
  if Int64.compare cap cur <= 0 then None
  else begin
    let step =
      let s = Int64.div (Int64.sub cap cur) 2L in
      let s = if Int64.compare s 1_000L > 0 then 1_000L else s in
      if Int64.compare s 1L < 0 then 1L else s
    in
    let rec fit cand tries =
      if tries > 8 || Int64.compare cand cap > 0 then None
      else
        let us = Int64.to_float cand /. 1000.0 in
        if Int64.equal (Engine.of_us_float us) cand then Some (us, cand)
        else fit (Int64.add cand 1L) (tries + 1)
    in
    match fit (Int64.add cur step) 0 with
    | Some r -> Some r
    | None -> fit (Int64.add cur 1L) 0
  end

(* ------------------------------------------------------------------ *)
(* Canonical state fingerprint                                         *)
(* ------------------------------------------------------------------ *)

(* Time-abstract: replica and client fingerprints exclude clocks and
   deadlines; pending engine events contribute their labels in firing
   order (which timer fires next matters; how far away it is does not);
   the held multiset is sorted. See DESIGN.md for the caveats. *)
let state_of lv horizon_ns =
  let cluster = lv.Runner.lv_cluster in
  let cfg = Cluster.config cluster in
  let b = Buffer.create 4096 in
  for i = 0 to cfg.Config.n - 1 do
    Buffer.add_string b (Replica.state_digest (Cluster.replica cluster i));
    Buffer.add_char b '|'
  done;
  for k = 0 to Cluster.num_clients cluster - 1 do
    Buffer.add_string b (Client.state_digest (Cluster.client cluster k));
    Buffer.add_char b '|'
  done;
  (* canonical across links, send-order within a link: per-link order is
     observable under fifo_links, and finer-than-multiset is still sound
     when links are unordered *)
  let held_keys =
    List.stable_sort
      (fun (s1, d1, _) (s2, d2, _) -> compare (s1, d1) (s2, d2))
      (List.map
         (fun (src, dst, msg) -> (src, dst, held_key src dst msg))
         (Network.held (Cluster.network cluster)))
  in
  List.iter
    (fun (_, _, k) ->
      Buffer.add_string b k;
      Buffer.add_char b ';')
    held_keys;
  Buffer.add_char b '|';
  List.iter
    (fun (t, lbl) ->
      if Int64.compare t horizon_ns <= 0 then begin
        Buffer.add_string b (Option.value ~default:"?" lbl);
        Buffer.add_char b ';'
      end)
    (Engine.live_events (Cluster.engine cluster));
  Bft_crypto.Sha256.hexdigest (Buffer.contents b)

let views_of lv =
  let cluster = lv.Runner.lv_cluster in
  Array.init
    (Cluster.config cluster).Config.n
    (fun i ->
      let r = Cluster.replica cluster i in
      (Replica.view r, Replica.low_water_mark r))

(* ------------------------------------------------------------------ *)
(* Violations                                                          *)
(* ------------------------------------------------------------------ *)

let is_liveness_failure f = String.length f >= 9 && String.equal (String.sub f 0 9) "liveness-"

let mk_violation ~kind ~depth ~failures ~params ~sched =
  {
    v_kind = kind;
    v_failures = failures;
    v_depth = depth;
    v_schedule = sched;
    v_params = params;
    v_replay = Runner.replay_line params sched;
  }

let liveness_params c =
  { (build_params c) with Runner.check_liveness = true; view_bound = Some c.view_bound }

(* Liveness probe at a cut: replay the path, then open the gate just past
   the frontier — the network turns timely while replica faults (the
   prefix's, and any injected bug) persist, modelling the paper's
   weak-synchrony liveness condition. A run that still cannot commit the
   workload within the drain is a genuine livelock, not an artifact of the
   explorer withholding messages. *)
let probe c node =
  let release_us = Engine.to_us node.n_time +. 1.0 in
  let sched =
    base_schedule c @ node.n_trace
    @ [ { Schedule.at_us = release_us; action = Schedule.Release_all } ]
  in
  let params = liveness_params c in
  let r = Runner.run_schedule params sched in
  if Runner.failed r then
    let kind =
      if List.exists (fun f -> not (is_liveness_failure f)) r.Runner.failures then `Safety
      else `Liveness
    in
    Some
      (mk_violation ~kind ~depth:node.n_depth ~failures:r.Runner.failures ~params ~sched)
  else None

(* ------------------------------------------------------------------ *)
(* Exploration                                                         *)
(* ------------------------------------------------------------------ *)

let zero_stats () =
  {
    states_built = 0;
    states_visited = 0;
    states_expanded = 0;
    transitions = 0;
    por_pruned = 0;
    hash_pruned = 0;
    terminals = 0;
    cuts = 0;
    probes = 0;
    slot_skipped = 0;
    max_depth_seen = 0;
  }

let run ?(log = fun _ -> ()) c =
  let stats = zero_stats () in
  let horizon_ns = Engine.of_us_float c.tick_horizon_us in
  let visited : (string, choice list list) Hashtbl.t = Hashtbl.create 4096 in
  let violations = ref [] in
  let truncated = ref false in
  let stop = ref false in
  let wall0 = (Sys.time () [@lint.allow "determinism-time"]) in
  let elapsed () = (Sys.time () [@lint.allow "determinism-time"]) -. wall0 in
  (* BFS = FIFO via front/back lists, DFS = stack on front *)
  let front = ref [ { n_trace = []; n_time = 0L; n_depth = 0; n_sleep = []; n_parent = None } ]
  and back = ref [] in
  let push n = match c.strategy with Dfs -> front := n :: !front | Bfs -> back := n :: !back in
  let pop () =
    match !front with
    | n :: rest ->
        front := rest;
        Some n
    | [] -> (
        match List.rev !back with
        | [] -> None
        | n :: rest ->
            front := rest;
            back := [];
            Some n)
  in
  let record v =
    violations := v :: !violations;
    if c.stop_on_violation then stop := true
  in
  let subset s1 s2 = List.for_all (fun x -> List.mem x s2) s1 in
  let check_safety node lv =
    let r = Runner.finish lv in
    if Runner.failed r then
      record
        (mk_violation ~kind:`Safety ~depth:node.n_depth ~failures:r.Runner.failures
           ~params:(build_params c) ~sched:(base_schedule c @ node.n_trace))
  in
  let process node =
    let lv = build c node in
    stats.states_built <- stats.states_built + 1;
    if node.n_depth > stats.max_depth_seen then stats.max_depth_seen <- node.n_depth;
    if stats.states_built mod 2000 = 0 then
      log
        (Printf.sprintf "built %d states (%d distinct, %d frontier) depth<=%d"
           stats.states_built stats.states_visited
           (List.length !front + List.length !back)
           stats.max_depth_seen);
    let dg = state_of lv horizon_ns in
    let prior = Option.value ~default:[] (Hashtbl.find_opt visited dg) in
    if List.exists (fun s -> subset s node.n_sleep) prior then
      stats.hash_pruned <- stats.hash_pruned + 1
    else begin
      (* A state already visited under an incomparable sleep set must be
         re-expanded (its pruned branches may differ), but it is not a new
         distinct state: count it — and run its terminal-state checks —
         only on first visit, so [states_visited] and [terminals] are
         search-order- and POR-invariant distinct-digest counts. *)
      let first_visit = prior = [] in
      Hashtbl.replace visited dg (node.n_sleep :: prior);
      if first_visit then stats.states_visited <- stats.states_visited + 1;
      let cluster = lv.Runner.lv_cluster in
      (* monotonicity, parent against child (probes are disabled) *)
      (match node.n_parent with
      | None -> ()
      | Some pv ->
          List.iter
            (fun i ->
              let r = Cluster.replica cluster i in
              let v = Replica.view r and h = Replica.low_water_mark r in
              let pv_, ph = pv.(i) in
              if v < pv_ || h < ph then
                record
                  (mk_violation ~kind:`Safety ~depth:node.n_depth
                     ~failures:
                       [
                         Printf.sprintf
                           "monotonic-counters: replica %d regressed (view %d->%d, h %d->%d)"
                           i pv_ v ph h;
                       ]
                     ~params:(build_params c)
                     ~sched:(base_schedule c @ node.n_trace)))
            !(Cluster.correct_replicas cluster));
      let completed = !(lv.Runner.lv_n_completed) >= lv.Runner.lv_total_ops in
      let dels = deliveries ~fifo:c.fifo_links lv in
      let tick = tick_target lv horizon_ns in
      if completed && c.stop_at_completion then begin
        if first_visit then begin
          stats.terminals <- stats.terminals + 1;
          check_safety node lv
        end
      end
      else if dels = [] && tick = None then begin
        if first_visit then check_safety node lv;
        match Engine.next_live_time (Cluster.engine cluster) with
        | None ->
            (* truly stuck: no held message, no timer will ever fire *)
            if first_visit then stats.terminals <- stats.terminals + 1;
            if first_visit && not completed then
              record
                (mk_violation ~kind:`Liveness ~depth:node.n_depth
                   ~failures:
                     [
                       Printf.sprintf "liveness-progress: only %d of %d issued operations committed"
                         !(lv.Runner.lv_n_completed) lv.Runner.lv_total_ops;
                     ]
                   ~params:(liveness_params c)
                   ~sched:(base_schedule c @ node.n_trace))
        | Some _ ->
            (* only events beyond the tick horizon remain: a cut, not a
               maximal execution — ask the liveness probe *)
            if first_visit then begin
              stats.cuts <- stats.cuts + 1;
              if not completed then begin
                stats.probes <- stats.probes + 1;
                match probe c node with Some v -> record v | None -> ()
              end
            end
      end
      else if node.n_depth >= c.max_depth then begin
        truncated := true;
        if first_visit then begin
          stats.cuts <- stats.cuts + 1;
          check_safety node lv;
          if not completed then begin
            stats.probes <- stats.probes + 1;
            match probe c node with Some v -> record v | None -> ()
          end
        end
      end
      else begin
        stats.states_expanded <- stats.states_expanded + 1;
        let cur_views = views_of lv in
        let next = Engine.next_live_time (Cluster.engine cluster) in
        let choices = dels @ (match tick with Some _ -> [ Tick ] | None -> []) in
        let explored = ref [] in
        List.iter
          (fun ch ->
            if c.por && List.mem ch node.n_sleep then
              stats.por_pruned <- stats.por_pruned + 1
            else begin
              let child_sleep =
                if c.por then
                  List.filter (fun o -> independent ch o) (node.n_sleep @ !explored)
                else []
              in
              let child =
                match ch with
                | Tick -> (
                    match tick with
                    | Some t ->
                        Some
                          {
                            n_trace = node.n_trace;
                            n_time = t;
                            n_depth = node.n_depth + 1;
                            n_sleep = child_sleep;
                            n_parent = Some cur_views;
                          }
                    | None -> None)
                | Deliver (cls, src, dst, nth) -> (
                    match slot_for ~cur:node.n_time ~next with
                    | None -> None
                    | Some (at_us, at_ns) ->
                        Some
                          {
                            n_trace =
                              node.n_trace
                              @ [
                                  {
                                    Schedule.at_us;
                                    action = Schedule.Release (cls, Some src, Some dst, nth);
                                  };
                                ];
                            n_time = at_ns;
                            n_depth = node.n_depth + 1;
                            n_sleep = child_sleep;
                            n_parent = Some cur_views;
                          })
              in
              (match child with
              | Some ch' ->
                  push ch';
                  stats.transitions <- stats.transitions + 1
              | None -> stats.slot_skipped <- stats.slot_skipped + 1);
              explored := !explored @ [ ch ]
            end)
          choices
      end
    end
  in
  while not !stop do
    match pop () with
    | None -> stop := true
    | Some node ->
        if stats.states_built >= c.max_states || elapsed () > c.max_wall_s then begin
          truncated := true;
          stop := true
        end
        else process node
  done;
  {
    o_config = c;
    o_stats = stats;
    o_violations = List.rev !violations;
    o_exhausted = (!front = [] && !back = [] && not !truncated);
  }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let stats_pairs s =
  [
    ("states_built", s.states_built);
    ("states_visited", s.states_visited);
    ("states_expanded", s.states_expanded);
    ("transitions", s.transitions);
    ("por_pruned", s.por_pruned);
    ("hash_pruned", s.hash_pruned);
    ("terminals", s.terminals);
    ("cuts", s.cuts);
    ("probes", s.probes);
    ("slot_skipped", s.slot_skipped);
    ("max_depth", s.max_depth_seen);
  ]

let pp_stats ppf s =
  Format.fprintf ppf "@[<v>";
  List.iter (fun (k, v) -> Format.fprintf ppf "%-16s %d@," k v) (stats_pairs s);
  Format.fprintf ppf "@]"

let stats_json s =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "%S:%d" k v) (stats_pairs s))
  ^ "}"

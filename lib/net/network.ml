module Engine = Bft_sim.Engine

type stat = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable bytes_sent : int;
}

type 'msg node = {
  mutable handler : 'msg -> unit;
  mutable busy_until : Engine.time;
  mutable crashed : bool;
  (* messages that arrived while the CPU was busy, FIFO *)
  backlog : (int * 'msg) Queue.t;
  mutable draining : bool;
  mutable backlog_hwm : int; (* deepest backlog ever observed *)
  (* multiplier on every CPU charge at this node; 1.0 is a correct node,
     > 1.0 models a slow-but-correct node (adversary profiles) *)
  mutable cpu_factor : float;
  (* set when this record backs a whole id range ({!add_node_range}): one
     shared CPU/backlog stands in for k virtual nodes, and delivery passes
     the concrete destination id to the handler *)
  range_handler : (int -> 'msg -> unit) option;
}

type 'msg t = {
  engine : Engine.t;
  costs : Costs.t;
  rng : Bft_util.Rng.t;
  nodes : (int, 'msg node) Hashtbl.t;
  stat : stat;
  mutable loss_rate : float;
  mutable dup_rate : float;
  mutable jitter_us : float;
  mutable partition : (int list * int list) option;
  (* directional per-link loss rates, layered on top of the global rate *)
  link_loss : (int * int, float) Hashtbl.t;
  mutable adversary :
    (src:int -> dst:int -> 'msg -> [ `Pass | `Drop | `Delay of float ]) option;
  (* delivery gate: while set, messages that survive the adversary and loss
     are appended here (FIFO) instead of being put on the wire; the
     explorer releases them one at a time to enumerate delivery orders *)
  mutable gate : bool;
  mutable held : (int * int * int * 'msg) list; (* (src, dst, size, msg), oldest first *)
  (* id ranges backed by a single shared node record, consulted when an id
     misses [nodes]; kept short (one entry per cohort) *)
  mutable ranges : (int * int * 'msg node) list;
}

let create ~engine ~costs ~rng () =
  {
    engine;
    costs;
    rng;
    nodes = Hashtbl.create 32;
    stat = { sent = 0; delivered = 0; dropped = 0; duplicated = 0; bytes_sent = 0 };
    loss_rate = 0.0;
    dup_rate = 0.0;
    jitter_us = costs.Costs.jitter_us;
    partition = None;
    link_loss = Hashtbl.create 8;
    adversary = None;
    gate = false;
    held = [];
    ranges = [];
  }

let engine t = t.engine
let costs t = t.costs
let stats t = t.stat

let node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None ->
      let rec scan = function
        | [] -> invalid_arg (Printf.sprintf "Network: unknown node %d" id)
        | (first, last, n) :: rest -> if id >= first && id <= last then n else scan rest
      in
      scan t.ranges

let add_node t ~id ~handler =
  if Hashtbl.mem t.nodes id then
    invalid_arg (Printf.sprintf "Network.add_node: duplicate id %d" id);
  Hashtbl.replace t.nodes id
    {
      handler;
      busy_until = 0L;
      crashed = false;
      backlog = Queue.create ();
      draining = false;
      backlog_hwm = 0;
      cpu_factor = 1.0;
      range_handler = None;
    }

let add_node_range t ~first ~last ~handler =
  if first > last then invalid_arg "Network.add_node_range: empty range";
  if
    List.exists (fun (f, l, _) -> first <= l && last >= f) t.ranges
    || Hashtbl.fold (fun id _ hit -> hit || (id >= first && id <= last)) t.nodes false
  then invalid_arg "Network.add_node_range: overlapping ids";
  let n =
    {
      handler = ignore;
      busy_until = 0L;
      crashed = false;
      backlog = Queue.create ();
      draining = false;
      backlog_hwm = 0;
      cpu_factor = 1.0;
      range_handler = Some handler;
    }
  in
  t.ranges <- (first, last, n) :: t.ranges

let set_handler t ~id ~handler = (node t id).handler <- handler

let charge t ~id us =
  let n = node t id in
  let now = Engine.now t.engine in
  let base = if Int64.compare n.busy_until now > 0 then n.busy_until else now in
  n.busy_until <- Int64.add base (Engine.of_us_float (us *. n.cpu_factor))

let set_cpu_factor t ~id f =
  if f <= 0.0 then invalid_arg "Network.set_cpu_factor: factor must be positive";
  (node t id).cpu_factor <- f

let cpu_factor t ~id = (node t id).cpu_factor

let busy_until t ~id = (node t id).busy_until
let backlog t ~id = Queue.length (node t id).backlog
let backlog_hwm t ~id = (node t id).backlog_hwm

let partitioned t a b =
  match t.partition with
  | None -> false
  | Some (g1, g2) ->
      (List.mem a g1 && List.mem b g2) || (List.mem a g2 && List.mem b g1)

(* Deliver [msg] to [dst]: wait for the wire, then for the destination CPU
   to be free, charge receive cost, and invoke the handler. Arrivals while
   the CPU is busy enter a FIFO backlog drained by a single scheduled event
   (a single-server queue with O(1) events per message). *)
let process t ~dst n ~size msg =
  let now = Engine.now t.engine in
  let cost = Costs.recv_cpu_us t.costs size *. n.cpu_factor in
  n.busy_until <- Int64.add now (Engine.of_us_float cost);
  t.stat.delivered <- t.stat.delivered + 1;
  match n.range_handler with Some h -> h dst msg | None -> n.handler msg

let rec drain t ~dst =
  let n = node t dst in
  if n.crashed then begin
    Queue.clear n.backlog;
    n.draining <- false
  end
  else begin
    let now = Engine.now t.engine in
    if Int64.compare n.busy_until now > 0 then
      ignore
        (Engine.schedule_at t.engine
           ~label:(Printf.sprintf "drain%d" dst)
           n.busy_until
           (fun () -> drain t ~dst))
    else
      match Queue.take_opt n.backlog with
      | None -> n.draining <- false
      | Some (size, msg) ->
          process t ~dst n ~size msg;
          if Queue.is_empty n.backlog then n.draining <- false
          else if Int64.compare n.busy_until now > 0 then
            ignore
              (Engine.schedule_at t.engine
                 ~label:(Printf.sprintf "drain%d" dst)
                 n.busy_until
                 (fun () -> drain t ~dst))
          else
            ignore
              (Engine.schedule_at t.engine
                 ~label:(Printf.sprintf "drain%d" dst)
                 now
                 (fun () -> drain t ~dst))
  end

let deliver t ~dst ~size msg =
  let n = node t dst in
  if not n.crashed then begin
    let now = Engine.now t.engine in
    if n.draining || Int64.compare n.busy_until now > 0 then begin
      Queue.add (size, msg) n.backlog;
      let depth = Queue.length n.backlog in
      if depth > n.backlog_hwm then n.backlog_hwm <- depth;
      if not n.draining then begin
        n.draining <- true;
        ignore
          (Engine.schedule_at t.engine
             ~label:(Printf.sprintf "drain%d" dst)
             n.busy_until
             (fun () -> drain t ~dst))
      end
    end
    else process t ~dst n ~size msg
  end

let transmit t ~src ~dst ~size ~depart msg =
  let n_dst = node t dst in
  if n_dst.crashed || partitioned t src dst then t.stat.dropped <- t.stat.dropped + 1
  else begin
    let verdict =
      match t.adversary with
      | None -> `Pass
      | Some f -> f ~src ~dst msg
    in
    match verdict with
    | `Drop -> t.stat.dropped <- t.stat.dropped + 1
    | (`Pass | `Delay _) as v ->
        let link_rate =
          Option.value ~default:0.0 (Hashtbl.find_opt t.link_loss (src, dst))
        in
        if
          Bft_util.Rng.bernoulli t.rng t.loss_rate
          || (link_rate > 0.0 && Bft_util.Rng.bernoulli t.rng link_rate)
        then t.stat.dropped <- t.stat.dropped + 1
        else begin
          let extra = match v with `Delay us -> us | `Pass -> 0.0 in
          let jitter =
            if t.jitter_us > 0.0 then Bft_util.Rng.float t.rng t.jitter_us else 0.0
          in
          let wire = Costs.wire_us t.costs size +. jitter +. extra in
          let arrival = Int64.add depart (Engine.of_us_float wire) in
          if t.gate then t.held <- t.held @ [ (src, dst, size, msg) ]
          else
            ignore
              (Engine.schedule_at t.engine
                 ~label:(Printf.sprintf "wire%d>%d" src dst)
                 arrival
                 (fun () -> deliver t ~dst ~size msg));
          if Bft_util.Rng.bernoulli t.rng t.dup_rate then begin
            t.stat.duplicated <- t.stat.duplicated + 1;
            let extra_delay = Bft_util.Rng.float t.rng (2.0 *. t.costs.Costs.wire_latency_us) in
            let arrival2 = Int64.add arrival (Engine.of_us_float extra_delay) in
            if t.gate then t.held <- t.held @ [ (src, dst, size, msg) ]
            else
              ignore
                (Engine.schedule_at t.engine
                   ~label:(Printf.sprintf "wire%d>%d" src dst)
                   arrival2
                   (fun () -> deliver t ~dst ~size msg))
          end
        end
  end

let departure t ~src ~size =
  let n = node t src in
  let now = Engine.now t.engine in
  let base = if Int64.compare n.busy_until now > 0 then n.busy_until else now in
  let depart =
    Int64.add base (Engine.of_us_float (Costs.send_cpu_us t.costs size *. n.cpu_factor))
  in
  n.busy_until <- depart;
  depart

let send t ~src ~dst ~size msg =
  let n_src = node t src in
  if not n_src.crashed then begin
    t.stat.sent <- t.stat.sent + 1;
    t.stat.bytes_sent <- t.stat.bytes_sent + size;
    let depart = departure t ~src ~size in
    transmit t ~src ~dst ~size ~depart msg
  end

let multicast t ~src ~dsts ~size msg =
  let n_src = node t src in
  if not n_src.crashed then begin
    t.stat.sent <- t.stat.sent + 1;
    t.stat.bytes_sent <- t.stat.bytes_sent + size;
    let depart = departure t ~src ~size in
    List.iter
      (fun dst ->
        if dst = src then
          (* loopback: no wire, deliver as soon as the CPU is free *)
          ignore
            (Engine.schedule_at t.engine
               ~label:(Printf.sprintf "loop%d" dst)
               depart
               (fun () -> deliver t ~dst ~size msg))
        else transmit t ~src ~dst ~size ~depart msg)
      dsts
  end

let set_loss_rate t p = t.loss_rate <- p
let set_dup_rate t p = t.dup_rate <- p
let set_jitter_us t j = t.jitter_us <- j
let partition t g1 g2 = t.partition <- Some (g1, g2)
let heal t = t.partition <- None

let crash t ~id = (node t id).crashed <- true

let restart t ~id =
  let n = node t id in
  n.crashed <- false;
  Queue.clear n.backlog;
  n.draining <- false;
  n.busy_until <- Engine.now t.engine

let is_crashed t ~id = (node t id).crashed
let set_link_loss t ~src ~dst p =
  if p <= 0.0 then Hashtbl.remove t.link_loss (src, dst)
  else Hashtbl.replace t.link_loss (src, dst) p

let clear_link_loss t = Hashtbl.reset t.link_loss
let set_adversary t f = t.adversary <- Some f
let clear_adversary t = t.adversary <- None

(* --- delivery gate (exhaustive exploration, PR 6) --- *)

let set_gate t on = t.gate <- on
let gate_on t = t.gate
let held t = List.map (fun (src, dst, _, msg) -> (src, dst, msg)) t.held

let release_held t ~nth ~pred =
  let rec go seen acc = function
    | [] -> None
    | ((src, dst, size, msg) as h) :: rest ->
        if pred ~src ~dst msg then
          if seen = nth then Some ((dst, size, msg), List.rev_append acc rest)
          else go (seen + 1) (h :: acc) rest
        else go seen (h :: acc) rest
  in
  match go 0 [] t.held with
  | None -> false
  | Some ((dst, size, msg), rest) ->
      t.held <- rest;
      deliver t ~dst ~size msg;
      true

let release_all_held t =
  t.gate <- false;
  (* delivering can trigger sends; with the gate now open they flow
     normally, so the loop below only walks the snapshot taken here *)
  let rec drain_held () =
    match t.held with
    | [] -> ()
    | (_, dst, size, msg) :: rest ->
        t.held <- rest;
        deliver t ~dst ~size msg;
        drain_held ()
  in
  drain_held ()

let reset_faults t =
  t.loss_rate <- 0.0;
  t.dup_rate <- 0.0;
  t.jitter_us <- t.costs.Costs.jitter_us;
  t.partition <- None;
  t.adversary <- None;
  Hashtbl.reset t.link_loss;
  Hashtbl.iter
    (fun id n ->
      n.cpu_factor <- 1.0;
      if n.crashed then restart t ~id)
    t.nodes;
  List.iter
    (fun (first, _, n) ->
      n.cpu_factor <- 1.0;
      if n.crashed then restart t ~id:first)
    t.ranges;
  if t.gate || t.held <> [] then release_all_held t

(** Allocate-once bump buffer for the encode-once wire pipeline.

    One arena per node (plus module-scratch fallbacks): [reset] rewinds
    the bump pointer without shrinking the backing buffer, the wire
    encoders write bytes directly into it, and the encode finishes with
    either one [contents] copy (when an immutable string must escape, e.g.
    an envelope's cached bytes) or none at all — [digest] hashes the
    backing bytes in place and [length] answers sizing questions, so
    digest-only and size-only encodes allocate nothing but the 32-byte
    result.

    Single-writer, non-reentrant: finish one encode before starting the
    next on the same arena. *)

type t

val create : ?size:int -> unit -> t
(** Fresh arena with [size] (default 256) bytes of initial capacity. *)

val reset : t -> unit
(** Rewind to empty; capacity is retained (the allocate-once discipline). *)

val length : t -> int

val add_char : t -> char -> unit
val add_int64_le : t -> int64 -> unit
val add_string : t -> string -> unit

val contents : t -> string
(** The bytes written since the last [reset], as one fresh string. *)

val digest : t -> string
(** SHA-256 of the bytes written since the last [reset], computed straight
    off the backing buffer (no intermediate string). *)

(** {2 Counters} (for observability) *)

val high_water : t -> int
(** Largest encode since creation. *)

val grow_count : t -> int
(** Backing-buffer reallocations since creation (0 once warmed up). *)

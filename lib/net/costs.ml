type t = {
  digest_fixed_us : float;
  digest_per_byte_us : float;
  mac_us : float;
  sig_gen_us : float;
  sig_verify_us : float;
  send_fixed_us : float;
  recv_fixed_us : float;
  cpu_per_byte_us : float;
  wire_latency_us : float;
  wire_per_byte_us : float;
  jitter_us : float;
  exec_null_us : float;
}

let default =
  {
    digest_fixed_us = 1.0;
    digest_per_byte_us = 0.004; (* ~250 MB/s, MD5-class *)
    mac_us = 0.7; (* UMAC32 over a 40-64 byte header *)
    sig_gen_us = 5_000.0; (* Rabin-Williams 1024-bit generation *)
    sig_verify_us = 100.0; (* Rabin verification is much cheaper *)
    send_fixed_us = 20.0;
    recv_fixed_us = 20.0;
    cpu_per_byte_us = 0.002;
    wire_latency_us = 40.0; (* switched LAN one-way *)
    wire_per_byte_us = 0.08; (* 100 Mb/s serialization *)
    jitter_us = 5.0;
    exec_null_us = 2.0;
  }

let free =
  {
    digest_fixed_us = 0.0;
    digest_per_byte_us = 0.0;
    mac_us = 0.0;
    sig_gen_us = 0.0;
    sig_verify_us = 0.0;
    send_fixed_us = 0.0;
    recv_fixed_us = 0.0;
    cpu_per_byte_us = 0.0;
    wire_latency_us = 1.0; (* keep a strictly positive hop so causality holds *)
    wire_per_byte_us = 0.0;
    jitter_us = 0.0;
    exec_null_us = 0.0;
  }

let digest_us t l = t.digest_fixed_us +. (float_of_int l *. t.digest_per_byte_us)
let auth_gen_us t n = float_of_int n *. t.mac_us

(* Modeled wall cost of verifying [n] MAC items through a [domains]-wide
   verification pool: the per-item work spreads across the domains (the
   caller drains alongside the spawned workers) on top of one mac_us of
   serial flush/merge overhead. Analytic-model and bench use only —
   replicas charge virtual time per item ([mac_us] each, in submission
   order), so committed-history digests never depend on the pool width. *)
let verify_batch_us t ~domains n =
  if n <= 0 then 0.0
  else t.mac_us +. (float_of_int n *. t.mac_us /. float_of_int (max 1 domains))
let wire_us t l = t.wire_latency_us +. (float_of_int l *. t.wire_per_byte_us)
let send_cpu_us t l = t.send_fixed_us +. (float_of_int l *. t.cpu_per_byte_us)
let recv_cpu_us t l = t.recv_fixed_us +. (float_of_int l *. t.cpu_per_byte_us)

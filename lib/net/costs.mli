(** Component cost model (paper Section 7.1 / 8.2).

    The simulator charges virtual CPU time for cryptographic operations and
    virtual wire time for communication, using the affine models of the
    paper's analytic performance model:

    - digest of an l-byte message:   [digest_fixed + l * digest_per_byte]
    - one MAC over a fixed header:   [mac_fixed]
    - authenticator for n replicas:  [n * mac_fixed] to generate, one
      [mac_fixed] to verify (receivers check only their own entry)
    - signature:                     [sig_gen] / [sig_verify]
    - send/receive CPU:              [send_fixed + l * cpu_per_byte]
    - wire:                          [wire_latency + l * wire_per_byte]

    Default values are calibrated so the relative magnitudes match the
    paper's measurements (MD5 ~ hundreds of MB/s; UMAC tags under a
    microsecond; public-key signatures three orders of magnitude more
    expensive than MACs; switched 100 Mb/s Ethernet). All times are in
    microseconds of virtual time. *)

type t = {
  digest_fixed_us : float;
  digest_per_byte_us : float;
  mac_us : float;  (** generate or verify one MAC over a fixed-size header *)
  sig_gen_us : float;
  sig_verify_us : float;
  send_fixed_us : float;  (** per-message send CPU (UDP stack traversal) *)
  recv_fixed_us : float;  (** per-message receive CPU *)
  cpu_per_byte_us : float;  (** copy cost per byte sent or received *)
  wire_latency_us : float;  (** propagation + switch latency *)
  wire_per_byte_us : float;  (** link serialization per byte *)
  jitter_us : float;  (** max uniform extra wire delay (causes reordering) *)
  exec_null_us : float;  (** executing a null/trivial operation upcall *)
}

val default : t
(** Calibration used by all benchmarks unless a sweep overrides fields. *)

val free : t
(** All-zero cost model: logical time only. Used by correctness tests so
    that traces are easy to reason about. *)

val digest_us : t -> int -> float
(** Cost of digesting [l] bytes. *)

val auth_gen_us : t -> int -> float
(** Cost of generating an authenticator with [n] entries. *)

val verify_batch_us : t -> domains:int -> int -> float
(** Modeled wall cost of verifying [n] MAC items through a [domains]-wide
    verification pool: one [mac_us] of serial flush/merge overhead plus
    the per-item work spread across the domains. Analytic-model/bench use
    only — replica virtual-time charging stays per item in submission
    order, independent of pool width. *)

val wire_us : t -> int -> float
(** Wire time (excluding jitter) for an [l]-byte message. *)

val send_cpu_us : t -> int -> float
val recv_cpu_us : t -> int -> float

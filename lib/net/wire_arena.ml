(* Growable bump buffer for the encode-once wire pipeline — the
   [Paged_image] arena discipline applied to message encoding.

   A [Buffer.t] per encode costs an allocation, amortized doubling copies,
   and a final [Buffer.contents] copy. An arena is allocated once per node
   and reused for every encode: [reset] rewinds the bump pointer without
   shrinking, writes go straight into the backing bytes, and the encoder
   finishes with either a single [contents] copy (when an immutable string
   must escape, e.g. the envelope's [enc_bytes]) or no copy at all
   ([digest] feeds the backing bytes to SHA-256 directly and [length]
   answers sizing questions) — so digest-only and size-only paths touch no
   intermediate string or Bytes allocation whatsoever.

   Single-writer: an arena belongs to one node (or one scratch site) and
   encoding is not reentrant — callers must fully finish one encode before
   starting the next on the same arena. *)

type t = {
  mutable buf : Bytes.t;
  mutable len : int;
  mutable hwm : int;  (* largest encode since creation *)
  mutable grows : int;  (* backing-buffer reallocations *)
}

let create ?(size = 256) () =
  { buf = Bytes.create (max 16 size); len = 0; hwm = 0; grows = 0 }

let length t = t.len
let high_water t = t.hwm
let grow_count t = t.grows

let reset t = t.len <- 0

let grow t needed =
  let cap = ref (Bytes.length t.buf) in
  while !cap < needed do
    cap := !cap * 2
  done;
  let fresh = Bytes.create !cap in
  Bytes.blit t.buf 0 fresh 0 t.len;
  t.buf <- fresh;
  t.grows <- t.grows + 1

let ensure t extra =
  let needed = t.len + extra in
  if needed > Bytes.length t.buf then grow t needed;
  if needed > t.hwm then t.hwm <- needed

let add_char t c =
  ensure t 1;
  Bytes.unsafe_set t.buf t.len c;
  t.len <- t.len + 1

let add_int64_le t v =
  ensure t 8;
  Bytes.set_int64_le t.buf t.len v;
  t.len <- t.len + 8

let add_string t s =
  let n = String.length s in
  ensure t n;
  Bytes.blit_string s 0 t.buf t.len n;
  t.len <- t.len + n

let contents t = Bytes.sub_string t.buf 0 t.len

(* Digest straight off the backing bytes on the one-shot scratch path:
   zero allocation beyond the 32-byte result. *)
let digest t = Bft_crypto.Sha256.digest_bytes t.buf 0 t.len

(** Simulated unreliable datagram network with per-node CPU accounting.

    Matches the paper's system model (Section 2.1): the network may fail to
    deliver messages, delay them, duplicate them, or deliver them out of
    order; it provides point-to-point sends and multicast to arbitrary
    destination sets; it does not authenticate senders. An adversary hook
    can additionally drop, delay or replay specific messages.

    Each node owns a single virtual CPU. Receive processing and any crypto
    work charged by the protocol layer ({!charge}) serialize on that CPU, so
    overload produces queueing exactly as a real single-threaded replica
    (the paper's replicas are single-threaded, Section 6.1). *)

type 'msg t

type stat = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable bytes_sent : int;
}

val create :
  engine:Bft_sim.Engine.t -> costs:Costs.t -> rng:Bft_util.Rng.t -> unit -> 'msg t

val engine : 'msg t -> Bft_sim.Engine.t
val costs : 'msg t -> Costs.t
val stats : 'msg t -> stat

val add_node : 'msg t -> id:int -> handler:('msg -> unit) -> unit
(** Register a node. Raises [Invalid_argument] on duplicate ids. *)

val set_handler : 'msg t -> id:int -> handler:('msg -> unit) -> unit
(** Replace a node's handler (used when a replica reboots on recovery). *)

val add_node_range : 'msg t -> first:int -> last:int -> handler:(int -> 'msg -> unit) -> unit
(** Register the contiguous id range [first..last] (inclusive) backed by
    ONE shared node record — one CPU, one backlog, one crash flag for the
    whole range. The handler receives the concrete destination id along
    with the message. This is the million-client cohort's network
    footprint: O(1) state for k virtual clients. The cohort models the
    aggregate CPU of its clients by scaling the shared node's
    {!set_cpu_factor} (any range id addresses the shared record). Raises
    [Invalid_argument] if the range is empty or overlaps an existing node
    or range. *)

val charge : 'msg t -> id:int -> float -> unit
(** [charge t ~id us] consumes [us] microseconds of node [id]'s CPU,
    pushing back every subsequent delivery to and send from that node. *)

val busy_until : 'msg t -> id:int -> Bft_sim.Engine.time

val set_cpu_factor : 'msg t -> id:int -> float -> unit
(** Multiplier applied to every CPU charge at the node (receive processing,
    send processing, and protocol-layer {!charge}). [1.0] is the default
    correct-node speed; factors above [1.0] model a slow-but-correct node —
    the [slow_primary] adversary profile. Raises [Invalid_argument] on
    non-positive factors. Reset to [1.0] by {!reset_faults}. *)

val cpu_factor : 'msg t -> id:int -> float

val backlog : 'msg t -> id:int -> int
(** Number of messages waiting for the node's CPU. Periodic work in the
    protocol layer consults this to yield under overload, like a real
    single-threaded replica would. *)

val backlog_hwm : 'msg t -> id:int -> int
(** Deepest CPU backlog the node has ever reached — the queueing
    high-water mark reported by the metrics layer. *)

val send : 'msg t -> src:int -> dst:int -> size:int -> 'msg -> unit
(** Point-to-point datagram of [size] wire bytes. *)

val multicast : 'msg t -> src:int -> dsts:int list -> size:int -> 'msg -> unit
(** One send-CPU charge at the source (IP-multicast style), independent
    per-link wire delays and faults. Self-delivery is permitted when [src]
    is listed in [dsts]. *)

(** {2 Fault injection} *)

val set_loss_rate : 'msg t -> float -> unit
(** Probability each link-level delivery is silently dropped. *)

val set_dup_rate : 'msg t -> float -> unit
(** Probability a delivered message is also delivered a second time after a
    random extra delay. *)

val set_jitter_us : 'msg t -> float -> unit
(** Override the cost model's jitter (0 gives in-order links). *)

val partition : 'msg t -> int list -> int list -> unit
(** Drop all traffic between the two groups until {!heal}. *)

val heal : 'msg t -> unit

val crash : 'msg t -> id:int -> unit
(** Stop delivering to the node and stop accepting its sends. *)

val restart : 'msg t -> id:int -> unit

val is_crashed : 'msg t -> id:int -> bool

val set_link_loss : 'msg t -> src:int -> dst:int -> float -> unit
(** Directional per-link loss rate, applied on top of the global rate
    (asymmetric lossy links; [0.0] clears the entry). *)

val clear_link_loss : 'msg t -> unit

val set_adversary :
  'msg t -> (src:int -> dst:int -> 'msg -> [ `Pass | `Drop | `Delay of float ]) -> unit
(** Per-message adversary decision, consulted before normal loss; [`Delay]
    adds the given microseconds of extra wire delay. *)

val clear_adversary : 'msg t -> unit

(** {2 Delivery gate}

    While the gate is set, every message that survives the adversary and
    loss is appended to a FIFO of held messages instead of being scheduled
    for delivery. The exhaustive explorer releases held messages one at a
    time to enumerate delivery interleavings; the same mechanism replays
    through fault schedules ([Hold_all] / [Release] / [Release_all]).
    Multicast self-delivery (loopback) bypasses the gate: a replica's
    messages to itself are internal transitions, not network events. *)

val set_gate : 'msg t -> bool -> unit
val gate_on : 'msg t -> bool

val held : 'msg t -> (int * int * 'msg) list
(** Held messages as [(src, dst, msg)], oldest first. *)

val release_held :
  'msg t -> nth:int -> pred:(src:int -> dst:int -> 'msg -> bool) -> bool
(** Remove the [nth] (0-based) held message satisfying [pred] and deliver
    it now (subject to the destination being up). Returns [false] when
    fewer than [nth+1] held messages match. *)

val release_all_held : 'msg t -> unit
(** Open the gate and deliver every held message in hold order. *)

val reset_faults : 'msg t -> unit
(** Return the network to a fault-free state in one call: zero loss and
    duplication, default jitter, no partition, no per-link loss, no
    adversary, every CPU factor back to [1.0], and every crashed node
    restarted. Used by the fuzzer to quiesce after the fault-injection
    window. *)

let attr_to_string (a : Fs.attr) =
  Printf.sprintf "ino=%d kind=%s size=%d mtime=%Ld" a.Fs.a_ino
    (match a.Fs.a_kind with `File -> "f" | `Dir -> "d")
    a.Fs.a_size a.Fs.a_mtime

let result_of = function Ok s -> s | Error e -> Fs.error_to_string e

let map_attr r = result_of (Result.map attr_to_string r)
let map_unit r = result_of (Result.map (fun () -> "ok") r)

let is_read_only op =
  match String.split_on_char ' ' op with
  | verb :: _ -> List.mem verb [ "getattr"; "lookup"; "readdir"; "read" ]
  | [] -> false

let exec_cost_us op = 1.0 +. (0.002 *. float_of_int (String.length op))

let mtime_of_nondet nondet =
  match Int64.of_string_opt nondet with Some t -> t | None -> 0L

let create ?(obs = Bft_obs.Obs.null) ?paged () =
  let fs = Fs.create ?paged () in
  let execute ~client:_ ~op ~nondet =
    let mtime = mtime_of_nondet nondet in
    let int_arg s = int_of_string_opt s in
    match String.split_on_char ' ' op with
    | [ "getattr"; ino ] -> (
        match int_arg ino with
        | Some ino -> map_attr (Fs.getattr fs ~ino)
        | None -> Bft_sm.Service.invalid)
    | [ "lookup"; dir; name ] -> (
        match int_arg dir with
        | Some dir -> map_attr (Fs.lookup fs ~dir ~name)
        | None -> Bft_sm.Service.invalid)
    | [ "readdir"; dir ] -> (
        match int_arg dir with
        | Some dir ->
            result_of (Result.map (fun names -> String.concat "," names) (Fs.readdir fs ~dir))
        | None -> Bft_sm.Service.invalid)
    | [ "read"; ino; off; len ] -> (
        match (int_arg ino, int_arg off, int_arg len) with
        | Some ino, Some off, Some len ->
            result_of (Result.map Bft_util.Hex.encode (Fs.read fs ~ino ~off ~len))
        | _ -> Bft_sm.Service.invalid)
    | [ "mkdir"; dir; name ] -> (
        match int_arg dir with
        | Some dir -> map_attr (Fs.mkdir fs ~dir ~name ~mtime)
        | None -> Bft_sm.Service.invalid)
    | [ "create"; dir; name ] -> (
        match int_arg dir with
        | Some dir -> map_attr (Fs.create_file fs ~dir ~name ~mtime)
        | None -> Bft_sm.Service.invalid)
    | [ "remove"; dir; name ] -> (
        match int_arg dir with
        | Some dir -> map_unit (Fs.remove fs ~dir ~name)
        | None -> Bft_sm.Service.invalid)
    | [ "rmdir"; dir; name ] -> (
        match int_arg dir with
        | Some dir -> map_unit (Fs.rmdir fs ~dir ~name)
        | None -> Bft_sm.Service.invalid)
    | [ "rename"; sdir; sname; ddir; dname ] -> (
        match (int_arg sdir, int_arg ddir) with
        | Some src_dir, Some dst_dir ->
            map_unit (Fs.rename fs ~src_dir ~src_name:sname ~dst_dir ~dst_name:dname)
        | _ -> Bft_sm.Service.invalid)
    | [ "write"; ino; off; hexdata ] -> (
        match (int_arg ino, int_arg off) with
        | Some ino, Some off -> (
            match Bft_util.Hex.decode hexdata with
            | data ->
                result_of (Result.map string_of_int (Fs.write fs ~ino ~off ~data ~mtime))
            | exception Invalid_argument _ -> Bft_sm.Service.invalid)
        | _ -> Bft_sm.Service.invalid)
    | [ "truncate"; ino; size ] -> (
        match (int_arg ino, int_arg size) with
        | Some ino, Some size -> map_unit (Fs.truncate fs ~ino ~size ~mtime)
        | _ -> Bft_sm.Service.invalid)
    | [ "touch"; ino ] -> (
        match int_arg ino with
        | Some ino -> map_unit (Fs.set_mtime fs ~ino ~mtime)
        | None -> Bft_sm.Service.invalid)
    | _ -> Bft_sm.Service.invalid
  in
  {
    Bft_sm.Service.name = "bfs";
    execute;
    is_read_only;
    has_access = (fun ~client:_ _ -> true);
    exec_cost_us;
    snapshot = (fun () -> Fs.snapshot fs);
    restore =
      (fun s ->
        match Fs.restore fs s with
        | Ok () -> ()
        | Error reason -> Bft_obs.Obs.snapshot_rejected obs ~reason);
    paged = Option.map Bft_sm.Service.paged_of_image (Fs.paged_image fs);
  }

let op_write ~ino ~off data =
  Printf.sprintf "write %d %d %s" ino off (Bft_util.Hex.encode data)

let op_read ~ino ~off ~len = Printf.sprintf "read %d %d %d" ino off len

let parse_attr_ino result =
  match String.split_on_char ' ' result with
  | first :: _ when String.length first > 4 && String.equal (String.sub first 0 4) "ino=" ->
      int_of_string_opt (String.sub first 4 (String.length first - 4))
  | _ -> None

let decode_read_result = Bft_util.Hex.decode

(** BFS: the file system exposed as a BFT state-machine service
    (Section 6.3).

    Operations are space-separated commands over {!Fs}; file data is
    hex-encoded so operations are unambiguous byte strings:

    - ["getattr <ino>"]                        (read-only)
    - ["lookup <dir> <name>"]                  (read-only)
    - ["readdir <dir>"]                        (read-only)
    - ["read <ino> <off> <len>"]               (read-only, hex result)
    - ["mkdir <dir> <name>"]
    - ["create <dir> <name>"]
    - ["remove <dir> <name>"], ["rmdir <dir> <name>"]
    - ["rename <sdir> <sname> <ddir> <dname>"]
    - ["write <ino> <off> <hexdata>"]
    - ["truncate <ino> <size>"]
    - ["touch <ino>"]

    Mutating operations stamp mtime from the protocol's agreed
    non-deterministic value (Section 5.4), so replicas never diverge on
    time-last-modified — the paper's canonical non-determinism example.

    Successful results are ["ok"], an attribute rendering
    ["ino=<i> kind=<f|d> size=<s> mtime=<m>"], hex data, or a directory
    listing; errors are NFS-style codes. *)

val create : ?obs:Bft_obs.Obs.t -> ?paged:int -> unit -> Bft_sm.Service.t
(** [obs] (default: the disabled sink) counts snapshots rejected by
    {!Fs.restore} — a restore handed a malformed snapshot leaves the
    image untouched and bumps the [snapshot_rejected] metric. [paged]
    (page size) opts the underlying {!Fs} into the dirty-aware paged
    snapshot image (see {!Fs.create}). *)

val op_write : ino:int -> off:int -> string -> string
(** Build a write op from raw (unencoded) data. *)

val op_read : ino:int -> off:int -> len:int -> string
val parse_attr_ino : string -> int option
(** Extract the inode number from an attribute result. *)

val decode_read_result : string -> string
(** Hex-decode a read result. *)

type phase = Mkdir | Copy | Stat | Read | Make

let phase_name = function
  | Mkdir -> "mkdir"
  | Copy -> "copy"
  | Stat -> "stat"
  | Read -> "read"
  | Make -> "make"

let phases = [ Mkdir; Copy; Stat; Read; Make ]

type step = { phase : phase; op : string; read_only : bool }

(* The script runs the same operations against a local shadow Fs so it can
   predict the inode numbers the replicated service will assign (inode
   allocation is deterministic). *)
let script ?(scale = 1) ?(file_size = 1024) ?(seed = 7L) () =
  let rng = Bft_util.Rng.create seed in
  let shadow = Fs.create () in
  let steps = ref [] in
  let emit phase op read_only = steps := { phase; op; read_only } :: !steps in
  let ndirs = 5 * scale and files_per_dir = 2 in
  (* phase 1: mkdir *)
  let dirs =
    List.init ndirs (fun i ->
        let name = Printf.sprintf "dir%d" i in
        emit Mkdir (Printf.sprintf "mkdir %d %s" Fs.root name) false;
        match Fs.mkdir shadow ~dir:Fs.root ~name ~mtime:0L with
        | Ok a -> a.Fs.a_ino
        | Error _ -> assert false)
  in
  (* phase 2: copy — create and write source files *)
  let files =
    List.concat_map
      (fun dir ->
        List.init files_per_dir (fun j ->
            let name = Printf.sprintf "src%d.c" j in
            emit Copy (Printf.sprintf "create %d %s" dir name) false;
            let ino =
              match Fs.create_file shadow ~dir ~name ~mtime:0L with
              | Ok a -> a.Fs.a_ino
              | Error _ -> assert false
            in
            (* write in 512-byte chunks like an NFS client *)
            let remaining = ref file_size and off = ref 0 in
            while !remaining > 0 do
              let len = min 512 !remaining in
              let data = Bft_util.Rng.bytes rng len in
              emit Copy (Bfs_service.op_write ~ino ~off:!off data) false;
              (match Fs.write shadow ~ino ~off:!off ~data ~mtime:0L with
              | Ok _ -> ()
              | Error _ -> assert false);
              off := !off + len;
              remaining := !remaining - len
            done;
            ino))
      dirs
  in
  (* phase 3: stat every file and directory *)
  List.iter (fun d -> emit Stat (Printf.sprintf "getattr %d" d) true) dirs;
  List.iter (fun f -> emit Stat (Printf.sprintf "getattr %d" f) true) files;
  (* phase 4: read every file in full *)
  List.iter
    (fun f -> emit Read (Bfs_service.op_read ~ino:f ~off:0 ~len:file_size) true)
    files;
  (* phase 5: make — read all sources, write one object per source dir *)
  List.iter
    (fun f -> emit Make (Bfs_service.op_read ~ino:f ~off:0 ~len:file_size) true)
    files;
  List.iter
    (fun dir ->
      let name = "prog.o" in
      emit Make (Printf.sprintf "create %d %s" dir name) false;
      match Fs.create_file shadow ~dir ~name ~mtime:0L with
      | Ok a ->
          let data = Bft_util.Rng.bytes rng (file_size / 2) in
          emit Make (Bfs_service.op_write ~ino:a.Fs.a_ino ~off:0 data) false;
          (match Fs.write shadow ~ino:a.Fs.a_ino ~off:0 ~data ~mtime:0L with
          | Ok _ -> ()
          | Error _ -> assert false)
      | Error _ -> assert false)
    dirs;
  List.rev !steps

let ops_per_phase steps =
  List.map
    (fun p -> (p, List.length (List.filter (fun s -> s.phase = p) steps)))
    phases

module Img = Bft_sm.Paged_image

type file = { mutable content : string; mutable f_mtime : int64 }
type dir = { entries : (string, int) Hashtbl.t; mutable d_mtime : int64 }
type node = File of file | Dir of dir

type t = {
  inodes : (int, node) Hashtbl.t;
  mutable next_ino : int;
  arena : Img.t option; (* paged snapshot image, when opted in *)
}

type attr = {
  a_ino : int;
  a_kind : [ `File | `Dir ];
  a_size : int;
  a_mtime : int64;
}

type error = [ `Noent | `Exist | `Notdir | `Isdir | `Notempty | `Inval ]

let error_to_string = function
  | `Noent -> "ENOENT"
  | `Exist -> "EEXIST"
  | `Notdir -> "ENOTDIR"
  | `Isdir -> "EISDIR"
  | `Notempty -> "ENOTEMPTY"
  | `Inval -> "EINVAL"

let root = 1

(* Arena-record layout for the paged image: inode [ino] lives under key
   "i<ino>" with payload "f <mtime> <raw content>" or
   "d <mtime> <name=ino,...>" (entries sorted), and the allocation counter
   under key "n". *)

let inode_key ino = "i" ^ string_of_int ino

let encode_inode = function
  | File f -> "f " ^ Int64.to_string f.f_mtime ^ " " ^ f.content
  | Dir d ->
      let entries =
        Hashtbl.fold (fun name i acc -> (name, i) :: acc) d.entries []
        |> List.sort compare
        |> List.map (fun (name, i) -> name ^ "=" ^ string_of_int i)
      in
      "d " ^ Int64.to_string d.d_mtime ^ " " ^ String.concat "," entries

let sync_inode t ino =
  match t.arena with
  | None -> ()
  | Some a -> (
      match Hashtbl.find_opt t.inodes ino with
      | Some n -> Img.set a ~key:(inode_key ino) ~value:(encode_inode n)
      | None -> ignore (Img.remove a ~key:(inode_key ino)))

let sync_next t =
  match t.arena with
  | None -> ()
  | Some a -> Img.set a ~key:"n" ~value:(string_of_int t.next_ino)

let create ?paged () =
  let arena = Option.map (fun page_size -> Img.create ~page_size ()) paged in
  let t = { inodes = Hashtbl.create 64; next_ino = 2; arena } in
  Hashtbl.replace t.inodes root (Dir { entries = Hashtbl.create 8; d_mtime = 0L });
  sync_next t;
  sync_inode t root;
  t

let paged_image t = t.arena

let node t ino = Hashtbl.find_opt t.inodes ino

let dir_of t ino =
  match node t ino with
  | None -> Error `Noent
  | Some (File _) -> Error `Notdir
  | Some (Dir d) -> Ok d

let attr_of t ino =
  match node t ino with
  | None -> Error `Noent
  | Some (File f) ->
      Ok { a_ino = ino; a_kind = `File; a_size = String.length f.content; a_mtime = f.f_mtime }
  | Some (Dir d) ->
      Ok { a_ino = ino; a_kind = `Dir; a_size = Hashtbl.length d.entries; a_mtime = d.d_mtime }

let getattr t ~ino = attr_of t ino

let lookup t ~dir ~name =
  match dir_of t dir with
  | Error e -> Error e
  | Ok d -> (
      match Hashtbl.find_opt d.entries name with
      | None -> Error `Noent
      | Some ino -> attr_of t ino)

let readdir t ~dir =
  match dir_of t dir with
  | Error e -> Error e
  | Ok d -> Ok (Hashtbl.fold (fun name _ acc -> name :: acc) d.entries [] |> List.sort String.compare)

let valid_name name =
  (not (String.equal name "")) && (not (String.equal name ".")) && (not (String.equal name ".."))
  && not (String.contains name '/')

let add_entry t ~dir ~name ~mtime make_node =
  if not (valid_name name) then Error `Inval
  else
    match dir_of t dir with
    | Error e -> Error e
    | Ok d ->
        if Hashtbl.mem d.entries name then Error `Exist
        else begin
          let ino = t.next_ino in
          t.next_ino <- ino + 1;
          Hashtbl.replace t.inodes ino (make_node ());
          Hashtbl.replace d.entries name ino;
          d.d_mtime <- mtime;
          sync_inode t ino;
          sync_inode t dir;
          sync_next t;
          attr_of t ino
        end

let mkdir t ~dir ~name ~mtime =
  add_entry t ~dir ~name ~mtime (fun () -> Dir { entries = Hashtbl.create 8; d_mtime = mtime })

let create_file t ~dir ~name ~mtime =
  add_entry t ~dir ~name ~mtime (fun () -> File { content = ""; f_mtime = mtime })

let remove t ~dir ~name =
  match dir_of t dir with
  | Error e -> Error e
  | Ok d -> (
      match Hashtbl.find_opt d.entries name with
      | None -> Error `Noent
      | Some ino -> (
          match node t ino with
          | Some (Dir _) -> Error `Isdir
          | Some (File _) | None ->
              Hashtbl.remove d.entries name;
              Hashtbl.remove t.inodes ino;
              sync_inode t ino;
              sync_inode t dir;
              Ok ()))

let rmdir t ~dir ~name =
  match dir_of t dir with
  | Error e -> Error e
  | Ok d -> (
      match Hashtbl.find_opt d.entries name with
      | None -> Error `Noent
      | Some ino -> (
          match node t ino with
          | Some (File _) | None -> Error `Notdir
          | Some (Dir sub) ->
              if Hashtbl.length sub.entries > 0 then Error `Notempty
              else begin
                Hashtbl.remove d.entries name;
                Hashtbl.remove t.inodes ino;
                sync_inode t ino;
                sync_inode t dir;
                Ok ()
              end))

let rename t ~src_dir ~src_name ~dst_dir ~dst_name =
  if not (valid_name dst_name) then Error `Inval
  else
    match (dir_of t src_dir, dir_of t dst_dir) with
    | Error e, _ | _, Error e -> Error e
    | Ok sd, Ok dd -> (
        match Hashtbl.find_opt sd.entries src_name with
        | None -> Error `Noent
        | Some ino ->
            if Hashtbl.mem dd.entries dst_name then Error `Exist
            else begin
              Hashtbl.remove sd.entries src_name;
              Hashtbl.replace dd.entries dst_name ino;
              sync_inode t src_dir;
              sync_inode t dst_dir;
              Ok ()
            end)

let read t ~ino ~off ~len =
  match node t ino with
  | None -> Error `Noent
  | Some (Dir _) -> Error `Isdir
  | Some (File f) ->
      if off < 0 || len < 0 then Error `Inval
      else
        let size = String.length f.content in
        if off >= size then Ok ""
        else Ok (String.sub f.content off (min len (size - off)))

let write t ~ino ~off ~data ~mtime =
  match node t ino with
  | None -> Error `Noent
  | Some (Dir _) -> Error `Isdir
  | Some (File f) ->
      if off < 0 then Error `Inval
      else begin
        let old = f.content in
        let old_len = String.length old in
        let data_len = String.length data in
        let new_len = max old_len (off + data_len) in
        let b = Bytes.make new_len '\x00' in
        Bytes.blit_string old 0 b 0 old_len;
        Bytes.blit_string data 0 b off data_len;
        (* freeze idiom: [b] is never written again after this point *)
        f.content <- (Bytes.unsafe_to_string b [@lint.allow "unsafe-op"]);
        f.f_mtime <- mtime;
        sync_inode t ino;
        Ok data_len
      end

let truncate t ~ino ~size ~mtime =
  match node t ino with
  | None -> Error `Noent
  | Some (Dir _) -> Error `Isdir
  | Some (File f) ->
      if size < 0 then Error `Inval
      else begin
        let old_len = String.length f.content in
        (if size <= old_len then f.content <- String.sub f.content 0 size
         else f.content <- f.content ^ String.make (size - old_len) '\x00');
        f.f_mtime <- mtime;
        sync_inode t ino;
        Ok ()
      end

let set_mtime t ~ino ~mtime =
  match node t ino with
  | None -> Error `Noent
  | Some (File f) ->
      f.f_mtime <- mtime;
      sync_inode t ino;
      Ok ()
  | Some (Dir d) ->
      d.d_mtime <- mtime;
      sync_inode t ino;
      Ok ()

let num_inodes t = Hashtbl.length t.inodes

let total_bytes t =
  Hashtbl.fold
    (fun _ n acc -> match n with File f -> acc + String.length f.content | Dir _ -> acc)
    t.inodes 0

(* Flat snapshot format: one line per inode, sorted by number, with
   hex-encoded file contents so the encoding is unambiguous. *)
let flat_snapshot t =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "next %d\n" t.next_ino);
  let inos = Hashtbl.fold (fun ino _ acc -> ino :: acc) t.inodes [] |> List.sort compare in
  List.iter
    (fun ino ->
      match Hashtbl.find t.inodes ino with
      | File f ->
          Buffer.add_string b
            (Printf.sprintf "f %d %Ld %s\n" ino f.f_mtime (Bft_util.Hex.encode f.content))
      | Dir d ->
          let entries =
            Hashtbl.fold (fun name i acc -> (name, i) :: acc) d.entries []
            |> List.sort compare
            |> List.map (fun (name, i) -> Printf.sprintf "%s=%d" name i)
          in
          Buffer.add_string b
            (Printf.sprintf "d %d %Ld %s\n" ino d.d_mtime (String.concat "," entries)))
    inos;
  Buffer.contents b

let snapshot t =
  match t.arena with None -> flat_snapshot t | Some a -> Img.image a

(* Rebuild the arena from the inode tables in a canonical order, so the
   image layout after a flat-format restore is a pure function of the
   logical state. *)
let rebuild_arena t =
  match t.arena with
  | None -> ()
  | Some a ->
      Img.reset a;
      sync_next t;
      Hashtbl.fold (fun ino _ acc -> ino :: acc) t.inodes []
      |> List.sort compare
      |> List.iter (fun ino -> sync_inode t ino)

let decode_inode_payload p =
  let len = String.length p in
  if len < 2 || p.[1] <> ' ' then None
  else
    match String.index_from_opt p 2 ' ' with
    | None -> None
    | Some sp -> (
        let mtime = Int64.of_string_opt (String.sub p 2 (sp - 2)) in
        let rest = String.sub p (sp + 1) (len - sp - 1) in
        match (p.[0], mtime) with
        | 'f', Some mtime -> Some (File { content = rest; f_mtime = mtime })
        | 'd', Some mtime ->
            let tbl = Hashtbl.create 8 in
            let ok = ref true in
            if not (String.equal rest "") then
              List.iter
                (fun kv ->
                  match String.rindex_opt kv '=' with
                  | Some i -> (
                      match
                        int_of_string_opt (String.sub kv (i + 1) (String.length kv - i - 1))
                      with
                      | Some ino -> Hashtbl.replace tbl (String.sub kv 0 i) ino
                      | None -> ok := false)
                  | None -> ok := false)
                (String.split_on_char ',' rest);
            if !ok then Some (Dir { entries = tbl; d_mtime = mtime }) else None
        | _ -> None)

(* Arena-image restore: validate every record into fresh tables, then
   commit arena and tables together. *)
let restore_arena t a s =
  match Img.decode ~page_size:(Img.page_size a) s with
  | Error e -> Error ("Fs.restore: " ^ e)
  | Ok records -> (
      let inodes = Hashtbl.create 64 in
      let next = ref None in
      let bad = ref None in
      List.iter
        (fun (k, v) ->
          if !bad = None then
            if String.equal k "n" then
              match int_of_string_opt v with
              | Some n -> next := Some n
              | None -> bad := Some "bad allocation counter"
            else if String.length k > 1 && k.[0] = 'i' then
              match (int_of_string_opt (String.sub k 1 (String.length k - 1)),
                     decode_inode_payload v)
              with
              | Some ino, Some node -> Hashtbl.replace inodes ino node
              | _ -> bad := Some "bad inode record"
            else bad := Some "unknown record key")
        records;
      match (!bad, !next) with
      | Some m, _ -> Error ("Fs.restore: " ^ m)
      | None, None -> Error "Fs.restore: missing allocation counter"
      | None, Some next -> (
          match Img.restore a s with
          | Error e -> Error ("Fs.restore: " ^ e)
          | Ok _ ->
              Hashtbl.reset t.inodes;
              Hashtbl.iter (Hashtbl.replace t.inodes) inodes;
              t.next_ino <- next;
              Ok ()))

(* Parse into fresh tables first and commit only on success, so a
   malformed snapshot leaves the current image untouched. *)
let restore_flat t s =
  let inodes = Hashtbl.create 64 in
  let next_ino = ref t.next_ino in
  let lines = String.split_on_char '\n' s in
  match
    List.iter
      (fun line ->
        if not (String.equal line "") then
          match String.split_on_char ' ' line with
          | [ "next"; n ] -> next_ino := int_of_string n
          | [ "f"; ino; mtime; hex ] ->
              Hashtbl.replace inodes (int_of_string ino)
                (File { content = Bft_util.Hex.decode hex; f_mtime = Int64.of_string mtime })
          | [ "d"; ino; mtime; ents ] ->
              let tbl = Hashtbl.create 8 in
              if not (String.equal ents "") then
                List.iter
                  (fun kv ->
                    match String.rindex_opt kv '=' with
                    | Some i ->
                        Hashtbl.replace tbl (String.sub kv 0 i)
                          (int_of_string (String.sub kv (i + 1) (String.length kv - i - 1)))
                    | None -> failwith "malformed directory entry")
                  (String.split_on_char ',' ents);
              Hashtbl.replace inodes (int_of_string ino)
                (Dir { entries = tbl; d_mtime = Int64.of_string mtime })
          | _ -> failwith "malformed line")
      lines
  with
  | () ->
      Hashtbl.reset t.inodes;
      Hashtbl.iter (Hashtbl.replace t.inodes) inodes;
      t.next_ino <- !next_ino;
      rebuild_arena t;
      Ok ()
  | exception Failure msg -> Error (Printf.sprintf "Fs.restore: %s" msg)
  | exception Invalid_argument msg -> Error (Printf.sprintf "Fs.restore: %s" msg)

let restore t s =
  match t.arena with
  | Some a when String.length s >= 6 && String.equal (String.sub s 0 6) "ARENA " ->
      restore_arena t a s
  | _ -> restore_flat t s

(** In-memory inode-based file system — the state behind BFS (Section 6.3).

    The paper's BFS implements the NFS V2 protocol on top of the BFT
    library; the service state is a file-system image (inodes, directories,
    file blocks). This module is that image: a deterministic, snapshotable
    file system with NFS-style operations addressed by inode number.

    Inode 1 is the root directory. All operations are total: errors are
    returned as [Error] values, never exceptions. Timestamps come from the
    caller (the protocol's agreed non-deterministic choice, Section 5.4). *)

type t

type attr = {
  a_ino : int;
  a_kind : [ `File | `Dir ];
  a_size : int;
  a_mtime : int64;
}

type error = [ `Noent | `Exist | `Notdir | `Isdir | `Notempty | `Inval ]

val error_to_string : error -> string

val create : ?paged:int -> unit -> t
(** [paged] (a page size, >= 32) opts into a paged snapshot image: every
    mutation writes the affected inode records through a
    {!Bft_sm.Paged_image} arena, {!snapshot} returns the arena image, and
    {!paged_image} exposes it for dirty-aware checkpointing. Snapshots
    then use the arena format (all replicas must agree on the mode);
    {!restore} still accepts the flat format and rebuilds the arena
    canonically. *)

val root : int

val paged_image : t -> Bft_sm.Paged_image.t option

val getattr : t -> ino:int -> (attr, error) result
val lookup : t -> dir:int -> name:string -> (attr, error) result
val readdir : t -> dir:int -> (string list, error) result

val mkdir : t -> dir:int -> name:string -> mtime:int64 -> (attr, error) result
val create_file : t -> dir:int -> name:string -> mtime:int64 -> (attr, error) result
val remove : t -> dir:int -> name:string -> (unit, error) result
val rmdir : t -> dir:int -> name:string -> (unit, error) result
val rename :
  t -> src_dir:int -> src_name:string -> dst_dir:int -> dst_name:string -> (unit, error) result

val read : t -> ino:int -> off:int -> len:int -> (string, error) result
val write : t -> ino:int -> off:int -> data:string -> mtime:int64 -> (int, error) result
(** Returns the number of bytes written; extends the file with zero bytes
    when [off] is past the end (NFS semantics). *)

val truncate : t -> ino:int -> size:int -> mtime:int64 -> (unit, error) result
val set_mtime : t -> ino:int -> mtime:int64 -> (unit, error) result

val num_inodes : t -> int
val total_bytes : t -> int

val snapshot : t -> string
val restore : t -> string -> (unit, string) result
(** [Error] on a malformed snapshot, in which case the current image is
    left untouched (a snapshot produced by {!snapshot} always restores). *)

(** Client cohorts: one O(1)-memory object standing in for [k] simulated
    clients.

    Real {!Bft_core.Client.t} objects carry per-client state (session keys,
    retransmission timers, SRTT estimators, a network node each), which
    caps workload experiments at a few thousand clients. A cohort collapses
    the population: client identity and request timestamp are synthesized
    from an issue counter, session keys are derived on demand from one
    group secret (see {!Bft_crypto.Keychain.group}), and the whole client
    id range shares a single network node whose CPU is scaled to aggregate
    [k] client CPUs. Memory is O(1) in [k] plus O(in-flight operations) —
    Little's law bounds the latter by offered load, not population — which
    is what makes million-client workloads tractable.

    Two key modes:
    - {!Pairwise} drives the cluster's real clients with the classic
      driver discipline. At [k] = the cluster's client count it is
      event-for-event identical to the per-client driver it replaced — the
      pinned committed-history digests enforce byte-identical protocol
      traffic.
    - {!Derived} synthesizes requests over group-derived MAC keys;
      replicas verify them through the {!Bft_crypto.Keychain.set_group}
      fallback. Requires [Mac_auth].

    Arrival processes: closed-loop (fixed think time per stream),
    open-loop Poisson (rate independent of completions — exposes the
    saturation knee), and bursty/diurnal (sinusoidal rate modulation).
    Open-loop arrivals require {!Derived} keys, because a real client
    admits only one outstanding request.

    Caveat (documented, by design): under open-loop arrivals a later
    request of a synthesized client can execute before an earlier one;
    replicas deduplicate at execution by last-reply timestamp, so the
    earlier operation is dropped and never completes. Open-loop
    experiments therefore measure committed throughput and completed-op
    latency, not per-op completion. *)

type arrival =
  | Closed of { think_us : float; ops_per_client : int }
      (** each of the [k] streams re-issues [think_us] after completion *)
  | Open of { rate_per_sec : float; total_ops : int }
      (** Poisson arrivals at a fixed aggregate rate, round-robin over the
          [k] synthesized clients *)
  | Bursty of {
      base_per_sec : float;
      peak_per_sec : float;
      period_us : float;
      total_ops : int;
    }
      (** sinusoidal (diurnal) rate between [base] and [peak] with the
          given period *)

type keys = Pairwise | Derived

type spec = { k : int; arrival : arrival; keys : keys }

val default_closed : k:int -> ops_per_client:int -> spec
(** Pairwise closed-loop with the classic 100us think time — the spec the
    runner uses by default; byte-identical to the historical per-client
    driver. *)

val total_ops : spec -> int
(** Operations the cohort will issue in total. *)

val op_for : client_slot:int -> index:int -> string
(** The canonical workload operation string (pairwise mode and the default
    runner workload). *)

val parse_arrival : string -> (arrival, string) result
(** Command-line syntax: [closed:<think_us>:<ops_per_client>],
    [open:<rate_per_sec>:<total_ops>],
    [bursty:<base>:<peak>:<period_us>:<total_ops>]. *)

val arrival_to_string : arrival -> string

val parse_keys : string -> (keys, string) result
(** ["pairwise"] or ["derived"]. *)

val keys_to_string : keys -> string

type t

val drive :
  ?seed:int ->
  Bft_core.Cluster.t ->
  spec ->
  on_complete:(client:int -> op:string -> result:string -> unit) ->
  t
(** Install the cohort on the cluster and schedule its arrival process;
    run the cluster's engine to make progress. [seed] (default 1) feeds
    the group secret and the arrival RNG. [on_complete] fires once per
    completed operation with the synthesized client id.

    Raises [Invalid_argument] when the spec is unsatisfiable: pairwise
    with [k] exceeding the cluster's real clients, pairwise with open-loop
    arrivals, or derived keys under [Sig_auth]. *)

val completed : t -> int
val issued : t -> int

val latency_hist : t -> Bft_obs.Hist.t
(** Issue-to-reply-certificate latency of completed operations, in
    microseconds of virtual time (both key modes). *)

val base_id : t -> int
(** First synthesized client id (derived mode); the range is
    [base_id .. base_id + k - 1]. *)

val group_of : t -> Bft_crypto.Keychain.group option
(** The key group (derived mode only) — test observation helper. *)

val reset_cpu : t -> unit
(** Re-apply the cohort's aggregate CPU scaling after
    {!Bft_net.Network.reset_faults} (which resets per-node factors); no-op
    in pairwise mode. *)

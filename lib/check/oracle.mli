(** Safety oracles evaluated over a finished fuzzer run.

    Every check is a pure observation of the cluster's end state (plus
    facts the runner recorded during the run); none assumes liveness — an
    asynchronous schedule is free to starve progress, but it must never
    make correct replicas disagree (paper Section 2.4). All checks range
    over {!Bft_core.Cluster.correct_replicas} only: replicas the schedule
    made Byzantine, rebooted, or muted are excluded by the runner. *)

type observed = {
  completed : (int * string * string) list;
      (** [(client_id, op, result)] for every operation whose reply
          certificate the client accepted during the run. *)
  monotonic_violations : string list;
      (** View / low-water-mark regressions caught by the runner's
          periodic probes of correct replicas. *)
}

type outcome = { name : string; result : (unit, string) result }

type report = outcome list

val failures : report -> string list
(** ["name: reason"] for each failed oracle. *)

val evaluate :
  cluster:Bft_core.Cluster.t ->
  service:(unit -> Bft_sm.Service.t) ->
  observed:observed ->
  report
(** Runs, in order:
    - [histories-consistent]: no two correct replicas committed different
      batches at the same sequence number;
    - [linearizable]: sequential replay of the first correct replica's
      committed prefix reproduces every recorded result;
    - [at-most-once]: within each correct replica's committed prefix, each
      [(client, op)] pair executes at a single sequence number (the
      runner's workload issues each op string at most once);
    - [client-results-committed]: a result accepted by a client matches
      what every correct replica committed for that operation;
    - [checkpoint-agreement]: any checkpoint sequence number stabilized by
      two correct replicas has the same state digest at both;
    - [monotonic-counters]: no probe observed a correct replica's view or
      low water mark decreasing. *)

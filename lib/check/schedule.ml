module Rng = Bft_util.Rng
open Bft_core

type msg_class =
  | Pre_prepares
  | Prepares
  | Commits
  | Checkpoints
  | View_changes
  | New_views
  | Replies
  | Requests
  | Any

type action =
  | Set_loss of float
  | Set_dup of float
  | Set_jitter of float
  | Link_loss of int * int * float
  | Partition of int list * int list
  | Heal
  | Net_crash of int
  | Net_restart of int
  | Crash_reboot of int
  | Make_byzantine of int
  | Mute of int
  | Unmute of int
  | Drop_class of msg_class * int option * int option
  | Delay_class of msg_class * int option * int option * float
  | Clear_rules
  | Hold_all
  | Release of msg_class * int option * int option * int
  | Release_all
  | Cpu_scale of int * float
  | Flood of int * float
  | Flood_stop of int
  | Wrong_mac of int
  | Wrong_mac_off of int

type event = { at_us : float; action : action }
type t = event list

let matches cls (m : Message.t) =
  match (cls, m) with
  | Any, _ -> true
  | Pre_prepares, Message.Pre_prepare _ -> true
  | Prepares, Message.Prepare _ -> true
  | Commits, Message.Commit _ -> true
  | Checkpoints, Message.Checkpoint _ -> true
  | View_changes, (Message.View_change _ | Message.View_change_ack _) -> true
  | New_views, Message.New_view _ -> true
  | Replies, Message.Reply _ -> true
  | Requests, Message.Request _ -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

let all_classes =
  [|
    Pre_prepares; Prepares; Commits; Checkpoints; View_changes; New_views; Replies;
    Requests; Any;
  |]

let pick_weighted rng opts =
  let total = List.fold_left (fun a (w, _) -> a + w) 0 opts in
  let roll = Rng.int rng total in
  let rec go acc = function
    | [] -> assert false
    | (w, g) :: rest -> if roll < acc + w then g () else go (acc + w) rest
  in
  go 0 opts

let generate ~rng ~f ~n ~horizon_us =
  let horizon = max 1 (int_of_float horizon_us) in
  (* pick a victim set of at most f replicas; bias the first victim toward
     the initial primary so view changes are actually exercised *)
  let v_count =
    let k = Rng.int rng (f + 1) in
    if k = 0 && Rng.bool rng then min 1 f else k
  in
  let victims = ref [] in
  for _ = 1 to v_count do
    let cand =
      if !victims = [] && Rng.bernoulli rng 0.5 then 0 else Rng.int rng n
    in
    if not (List.mem cand !victims) then victims := cand :: !victims
  done;
  let victims = !victims in
  let n_events = 2 + Rng.int rng 9 in
  (* quadratic bias toward the start of the window: the workload begins at
     t=0, so late events tend to miss it *)
  let times =
    List.init n_events (fun _ ->
        let u = Rng.float rng 1.0 in
        Float.round (u *. u *. float_of_int horizon))
    |> List.sort compare
  in
  (* running state, so the schedule stays within the crash budget and only
     heals/unmutes/clears what an earlier event actually injected *)
  let net_crashed = ref [] and muted = ref [] in
  let partitioned = ref false and n_rules = ref 0 in
  let replica () = Rng.int rng n in
  let victim () = List.nth victims (Rng.int rng (List.length victims)) in
  let endpoint () = if Rng.bool rng then None else Some (replica ()) in
  let cls () = all_classes.(Rng.int rng (Array.length all_classes)) in
  let split () =
    let g1 = List.filter (fun _ -> Rng.bool rng) (List.init n Fun.id) in
    let g1 = if g1 = [] || List.length g1 = n then [ Rng.int rng n ] else g1 in
    let g2 = List.filter (fun i -> not (List.mem i g1)) (List.init n Fun.id) in
    (g1, g2)
  in
  let gen_action () =
    let opts =
      [
        (2, fun () -> Set_loss (Rng.float rng 0.25));
        (1, fun () -> Set_dup (Rng.float rng 0.3));
        (1, fun () -> Set_jitter (Rng.float rng 1500.0));
        ( 1,
          fun () ->
            let src = replica () in
            let dst = (src + 1 + Rng.int rng (n - 1)) mod n in
            Link_loss (src, dst, 0.2 +. Rng.float rng 0.6) );
        ( 2,
          fun () ->
            if !partitioned then begin
              partitioned := false;
              Heal
            end
            else begin
              partitioned := true;
              let g1, g2 = split () in
              Partition (g1, g2)
            end );
        ( 2,
          fun () ->
            if List.length !net_crashed < f then begin
              let id = replica () in
              if List.mem id !net_crashed then Set_loss (Rng.float rng 0.25)
              else begin
                net_crashed := id :: !net_crashed;
                Net_crash id
              end
            end
            else
              match !net_crashed with
              | id :: rest ->
                  net_crashed := rest;
                  Net_restart id
              | [] -> Set_loss (Rng.float rng 0.25) );
        ( 1,
          fun () ->
            match !net_crashed with
            | id :: rest ->
                net_crashed := rest;
                Net_restart id
            | [] -> Set_dup (Rng.float rng 0.3) );
        ( 2,
          fun () ->
            incr n_rules;
            Drop_class (cls (), endpoint (), endpoint ()) );
        ( 1,
          fun () ->
            incr n_rules;
            Delay_class (cls (), endpoint (), endpoint (), 200.0 +. Rng.float rng 4800.0) );
        ( 1,
          fun () ->
            if !n_rules > 0 then begin
              n_rules := 0;
              Clear_rules
            end
            else Set_jitter (Rng.float rng 1500.0) );
      ]
      @
      if victims = [] then []
      else
        [
          (2, fun () -> Make_byzantine (victim ()));
          (1, fun () -> Crash_reboot (victim ()));
          ( 1,
            fun () ->
              let v = victim () in
              if List.mem v !muted then Unmute v
              else begin
                muted := v :: !muted;
                Mute v
              end );
          ( 1,
            fun () ->
              match !muted with
              | v :: rest ->
                  muted := rest;
                  Unmute v
              | [] -> Make_byzantine (victim ()) );
        ]
    in
    pick_weighted rng opts
  in
  List.map (fun at_us -> { at_us; action = gen_action () }) times

let victims t =
  List.filter_map
    (fun e ->
      match e.action with
      | Crash_reboot i | Make_byzantine i | Mute i | Wrong_mac i -> Some i
      | _ -> None)
    t
  |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Adversary profiles                                                  *)
(* ------------------------------------------------------------------ *)

type profile = {
  pr_name : string;
  pr_doc : string;
  pr_events : f:int -> n:int -> horizon_us:float -> t;
}

(* The attack timelines mirror Chondros et al.'s "practicality" stress
   tests. slow_primary waits for a quarter of the horizon so correct-speed
   baseline latency exists before the primary degrades (the performance
   watchdog needs a baseline to compare against); the other two start at
   t=0 since they attack resource accounting, not relative timing. *)
let profiles =
  [
    {
      pr_name = "slow_primary";
      pr_doc =
        "initial primary keeps participating but its CPU runs 20x slower \
         from 25% of the horizon on (degradation, not silence)";
      pr_events =
        (fun ~f:_ ~n:_ ~horizon_us ->
          [ { at_us = Float.round (0.25 *. horizon_us); action = Cpu_scale (0, 20.0) } ]);
    };
    {
      pr_name = "client_flood";
      pr_doc =
        "two misbehaving clients send fresh authenticated requests open-loop \
         every 40us for the whole run";
      pr_events =
        (fun ~f:_ ~n:_ ~horizon_us:_ ->
          [
            { at_us = 0.0; action = Flood (0, 40.0) };
            { at_us = 0.0; action = Flood (1, 40.0) };
          ]);
    };
    {
      pr_name = "mac_storm";
      pr_doc =
        "f non-primary replicas corrupt their outgoing MACs/authenticators \
         and claim to be behind, forcing peers to retransmit";
      pr_events =
        (fun ~f ~n ~horizon_us:_ ->
          List.init f (fun k -> { at_us = 0.0; action = Wrong_mac ((k + 1) mod n) }));
    };
  ]

let find_profile name = List.find_opt (fun p -> String.equal p.pr_name name) profiles

let merge a b = List.stable_sort (fun x y -> compare x.at_us y.at_us) (a @ b)

(* ------------------------------------------------------------------ *)
(* Textual encoding                                                    *)
(* ------------------------------------------------------------------ *)

let class_code = function
  | Pre_prepares -> "pp"
  | Prepares -> "p"
  | Commits -> "c"
  | Checkpoints -> "ck"
  | View_changes -> "vc"
  | New_views -> "nv"
  | Replies -> "rep"
  | Requests -> "req"
  | Any -> "any"

let class_of_code = function
  | "pp" -> Some Pre_prepares
  | "p" -> Some Prepares
  | "c" -> Some Commits
  | "ck" -> Some Checkpoints
  | "vc" -> Some View_changes
  | "nv" -> Some New_views
  | "rep" -> Some Replies
  | "req" -> Some Requests
  | "any" -> Some Any
  | _ -> None

let endpoint_code = function None -> "*" | Some i -> string_of_int i
let ids_code ids = String.concat "," (List.map string_of_int ids)

let action_code = function
  | Set_loss p -> Printf.sprintf "loss:%g" p
  | Set_dup p -> Printf.sprintf "dup:%g" p
  | Set_jitter j -> Printf.sprintf "jit:%g" j
  | Link_loss (s, d, p) -> Printf.sprintf "lloss:%d:%d:%g" s d p
  | Partition (g1, g2) -> Printf.sprintf "part:%s|%s" (ids_code g1) (ids_code g2)
  | Heal -> "heal"
  | Net_crash i -> Printf.sprintf "crash:%d" i
  | Net_restart i -> Printf.sprintf "restart:%d" i
  | Crash_reboot i -> Printf.sprintf "reboot:%d" i
  | Make_byzantine i -> Printf.sprintf "byz:%d" i
  | Mute i -> Printf.sprintf "mute:%d" i
  | Unmute i -> Printf.sprintf "unmute:%d" i
  | Drop_class (c, s, d) ->
      Printf.sprintf "drop:%s:%s:%s" (class_code c) (endpoint_code s) (endpoint_code d)
  | Delay_class (c, s, d, us) ->
      Printf.sprintf "delay:%s:%s:%s:%g" (class_code c) (endpoint_code s)
        (endpoint_code d) us
  | Clear_rules -> "clear"
  | Hold_all -> "hold"
  | Release (c, s, d, nth) ->
      Printf.sprintf "rel:%s:%s:%s:%d" (class_code c) (endpoint_code s) (endpoint_code d)
        nth
  | Release_all -> "relall"
  | Cpu_scale (i, fac) -> Printf.sprintf "cpu:%d:%g" i fac
  | Flood (slot, iv) -> Printf.sprintf "flood:%d:%g" slot iv
  | Flood_stop slot -> Printf.sprintf "floodstop:%d" slot
  | Wrong_mac i -> Printf.sprintf "wmac:%d" i
  | Wrong_mac_off i -> Printf.sprintf "wmacoff:%d" i

(* Event times must survive to_string/of_string exactly: explorer-emitted
   schedules carry release instants that are neither small nor integral, and
   "%g" keeps only 6 significant digits. Integers (every generator-produced
   time) keep their historical compact form. *)
let time_code at_us =
  if Float.is_integer at_us && Float.abs at_us < 1e15 then Printf.sprintf "%.0f" at_us
  else Printf.sprintf "%.17g" at_us

let to_string t =
  String.concat ";"
    (List.map (fun e -> Printf.sprintf "%s@%s" (time_code e.at_us) (action_code e.action)) t)

let parse_error fmt = Printf.ksprintf (fun s -> Error s) fmt

let parse_endpoint s =
  if String.equal s "*" then Ok None
  else match int_of_string_opt s with Some i -> Ok (Some i) | None -> parse_error "bad endpoint %S" s

let parse_ids s =
  if String.equal s "" then Ok []
  else
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
          match int_of_string_opt p with
          | Some i -> go (i :: acc) rest
          | None -> parse_error "bad id %S" p)
    in
    go [] parts

let ( let* ) r f = Result.bind r f

let parse_action s =
  match String.split_on_char ':' s with
  | [ "heal" ] -> Ok Heal
  | [ "clear" ] -> Ok Clear_rules
  | [ "hold" ] -> Ok Hold_all
  | [ "relall" ] -> Ok Release_all
  | [ "rel"; c; src; dst; nth ] -> (
      match (class_of_code c, int_of_string_opt nth) with
      | Some c, Some nth when nth >= 0 ->
          let* src = parse_endpoint src in
          let* dst = parse_endpoint dst in
          Ok (Release (c, src, dst, nth))
      | _ -> parse_error "bad release %S" s)
  | [ "loss"; p ] -> (
      match float_of_string_opt p with
      | Some p -> Ok (Set_loss p)
      | None -> parse_error "bad loss %S" p)
  | [ "dup"; p ] -> (
      match float_of_string_opt p with
      | Some p -> Ok (Set_dup p)
      | None -> parse_error "bad dup %S" p)
  | [ "jit"; j ] -> (
      match float_of_string_opt j with
      | Some j -> Ok (Set_jitter j)
      | None -> parse_error "bad jitter %S" j)
  | [ "lloss"; s'; d; p ] -> (
      match (int_of_string_opt s', int_of_string_opt d, float_of_string_opt p) with
      | Some s', Some d, Some p -> Ok (Link_loss (s', d, p))
      | _ -> parse_error "bad link-loss %S" s)
  | [ "part"; groups ] -> (
      match String.split_on_char '|' groups with
      | [ a; b ] ->
          let* g1 = parse_ids a in
          let* g2 = parse_ids b in
          Ok (Partition (g1, g2))
      | _ -> parse_error "bad partition %S" groups)
  | [ ("crash" | "restart" | "reboot" | "byz" | "mute" | "unmute" | "floodstop"
      | "wmac" | "wmacoff") as verb; i;
    ] -> (
      match int_of_string_opt i with
      | None -> parse_error "bad replica id %S" i
      | Some i -> (
          match verb with
          | "crash" -> Ok (Net_crash i)
          | "restart" -> Ok (Net_restart i)
          | "reboot" -> Ok (Crash_reboot i)
          | "byz" -> Ok (Make_byzantine i)
          | "mute" -> Ok (Mute i)
          | "floodstop" -> Ok (Flood_stop i)
          | "wmac" -> Ok (Wrong_mac i)
          | "wmacoff" -> Ok (Wrong_mac_off i)
          | _ -> Ok (Unmute i)))
  | [ "cpu"; i; fac ] -> (
      match (int_of_string_opt i, float_of_string_opt fac) with
      | Some i, Some fac when fac > 0.0 -> Ok (Cpu_scale (i, fac))
      | _ -> parse_error "bad cpu-scale %S" s)
  | [ "flood"; slot; iv ] -> (
      match (int_of_string_opt slot, float_of_string_opt iv) with
      | Some slot, Some iv when slot >= 0 && iv > 0.0 -> Ok (Flood (slot, iv))
      | _ -> parse_error "bad flood %S" s)
  | [ "drop"; c; src; dst ] -> (
      match class_of_code c with
      | None -> parse_error "bad message class %S" c
      | Some c ->
          let* src = parse_endpoint src in
          let* dst = parse_endpoint dst in
          Ok (Drop_class (c, src, dst)))
  | [ "delay"; c; src; dst; us ] -> (
      match (class_of_code c, float_of_string_opt us) with
      | Some c, Some us ->
          let* src = parse_endpoint src in
          let* dst = parse_endpoint dst in
          Ok (Delay_class (c, src, dst, us))
      | _ -> parse_error "bad delay rule %S" s)
  | _ -> parse_error "unknown action %S" s

let parse_event s =
  match String.index_opt s '@' with
  | None -> parse_error "missing '@' in event %S" s
  | Some i -> (
      let time = String.sub s 0 i in
      let act = String.sub s (i + 1) (String.length s - i - 1) in
      match float_of_string_opt time with
      | None -> parse_error "bad event time %S" time
      | Some at_us ->
          let* action = parse_action act in
          Ok { at_us; action })

let of_string s =
  if String.equal (String.trim s) "" then Ok []
  else
    let rec go acc = function
      | [] -> Ok (List.sort (fun a b -> compare a.at_us b.at_us) (List.rev acc))
      | part :: rest ->
          let* e = parse_event (String.trim part) in
          go (e :: acc) rest
    in
    go [] (String.split_on_char ';' (String.trim s))

let pp fmt t =
  if t = [] then Format.fprintf fmt "(empty schedule)"
  else
    List.iteri
      (fun i e ->
        if i > 0 then Format.fprintf fmt "@\n";
        Format.fprintf fmt "t=%8.0fus  %s" e.at_us (action_code e.action))
      t

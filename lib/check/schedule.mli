(** Byzantine fault schedules: timed fault-injection timelines over a
    {!Bft_core.Cluster.t} run.

    A schedule is derived deterministically from a single RNG stream, so a
    [(seed, parameters)] pair fully determines a fuzzer run. Schedules have
    a canonical one-line textual encoding ({!to_string} / {!of_string})
    used to replay and to report shrunk counterexamples.

    Replica-fault actions ([Make_byzantine], [Crash_reboot], [Mute]) are
    restricted by the generator to a victim set of at most [f] replicas —
    the paper's fault assumption (Section 2.1). Network-level actions
    (loss, duplication, jitter, link loss, partitions, adversarial drops
    and delays, network crashes) model the asynchronous unreliable network
    and may target anyone: safety must hold under any such schedule. *)

(** Protocol message classes an adversary rule can target. *)
type msg_class =
  | Pre_prepares
  | Prepares
  | Commits
  | Checkpoints
  | View_changes
  | New_views
  | Replies
  | Requests
  | Any

type action =
  | Set_loss of float  (** global link-level loss probability *)
  | Set_dup of float  (** global duplication probability *)
  | Set_jitter of float  (** wire jitter bound, microseconds *)
  | Link_loss of int * int * float  (** directional per-link loss *)
  | Partition of int list * int list
  | Heal
  | Net_crash of int  (** network unreachability; replica state intact *)
  | Net_restart of int
  | Crash_reboot of int  (** victim: lose volatile state, rejoin *)
  | Make_byzantine of int  (** victim: equivocating primary *)
  | Mute of int  (** victim: fail-silent *)
  | Unmute of int
  | Drop_class of msg_class * int option * int option
      (** adversary rule: drop [class] messages from [src] to [dst]
          ([None] = any) *)
  | Delay_class of msg_class * int option * int option * float
      (** like [Drop_class] but adds the given microseconds of wire delay *)
  | Clear_rules  (** remove all installed adversary rules *)
  | Hold_all
      (** close the delivery gate: subsequent messages are held in a FIFO
          instead of being delivered (see {!Bft_net.Network.set_gate}) *)
  | Release of msg_class * int option * int option * int
      (** deliver the nth (0-based) held message matching
          [(class, src, dst)] ([None] = any endpoint); a no-op when fewer
          matches are held *)
  | Release_all  (** open the gate and deliver everything held, in order *)
  | Cpu_scale of int * float
      (** slow-but-correct node: multiply every CPU charge at the replica
          by the factor (the slow-primary attack); reset at quiesce *)
  | Flood of int * float
      (** misbehaving client: flood-client slot [k] (network id beyond the
          workload clients) starts sending fresh authenticated requests
          open-loop every [interval_us] microseconds *)
  | Flood_stop of int  (** stop the given flood-client slot *)
  | Wrong_mac of int
      (** victim: replica keeps participating but corrupts the MACs /
          authenticator entries it sends to half its peers and understates
          its protocol state, forcing retransmissions (the mac_storm
          attack); cleared at quiesce *)
  | Wrong_mac_off of int  (** return the replica to honest behaviour *)

type event = { at_us : float; action : action }

type t = event list
(** Sorted by [at_us], ascending. *)

val generate : rng:Bft_util.Rng.t -> f:int -> n:int -> horizon_us:float -> t
(** Derive a schedule of injected events over [0, horizon_us). The
    generator tracks its own net-crash budget (at most [f] simultaneously
    unreachable replicas) and emits heals/restarts so most runs stay live;
    the runner force-quiesces at the horizon regardless. *)

val victims : t -> int list
(** Replica ids subjected to replica-fault actions ([Crash_reboot],
    [Make_byzantine], [Mute], [Wrong_mac]) — the replicas a run's safety
    oracles must exclude. Sorted, deduplicated. [Cpu_scale] targets are
    slow but correct and stay in the oracle set. *)

(** {2 Adversary profiles}

    Named attack timelines after Chondros et al. ("On the Practicality of
    'Practical' BFT"): whole-system stress the paper's evaluation never
    exercised. A profile expands to ordinary schedule events, so shrunk
    counterexamples and [--schedule] replay lines round-trip without
    carrying the profile name. *)

type profile = {
  pr_name : string;
  pr_doc : string;
  pr_events : f:int -> n:int -> horizon_us:float -> t;
}

val profiles : profile list
(** [slow_primary], [client_flood], [mac_storm]. *)

val find_profile : string -> profile option

val merge : t -> t -> t
(** Merge two schedules, re-sorting by time (stable). *)

val matches : msg_class -> Bft_core.Message.t -> bool

val to_string : t -> string
(** Canonical compact encoding, e.g.
    ["120000@loss:0.12;340000@byz:0;500000@drop:pp:0:*"]. The empty
    schedule encodes as [""]. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable rendering. *)

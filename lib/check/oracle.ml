open Bft_core

type observed = {
  completed : (int * string * string) list;
  monotonic_violations : string list;
}

type outcome = { name : string; result : (unit, string) result }
type report = outcome list

let failures report =
  List.filter_map
    (fun o -> match o.result with Ok () -> None | Error e -> Some (o.name ^ ": " ^ e))
    report

(* final committed content of one replica as [(seq, client, op, result)]:
   last execution wave per sequence number (see Replica.executed_batches) *)
let committed_prefix r =
  let upto = Replica.committed_upto r in
  let tbl : (int, (int * string * string) list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (seq, recs) -> if seq <= upto then Hashtbl.replace tbl seq recs)
    (Replica.executed_batches r);
  Hashtbl.fold (fun seq recs acc -> (seq, recs) :: acc) tbl []
  |> List.sort compare
  |> List.concat_map (fun (seq, recs) ->
         List.map (fun (client, op, result) -> (seq, client, op, result)) recs)

let check_histories cluster =
  if Cluster.committed_histories_consistent cluster then Ok ()
  else Error "correct replicas committed conflicting batches"

let check_linearizable cluster ~service ~correct =
  match correct with
  | [] -> Ok ()
  | witness :: _ -> Cluster.check_linearizable ~replica:witness cluster ~service

let check_at_most_once cluster ~correct =
  let violation = ref None in
  List.iter
    (fun i ->
      let seen : (int * string, int) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun (seq, client, op, _) ->
          match Hashtbl.find_opt seen (client, op) with
          | Some seq' when seq' <> seq && !violation = None ->
              violation :=
                Some
                  (Printf.sprintf
                     "replica %d executed client %d op %S at both seq %d and seq %d" i
                     client op seq' seq)
          | Some _ -> ()
          | None -> Hashtbl.replace seen (client, op) seq)
        (committed_prefix (Cluster.replica cluster i)))
    correct;
  match !violation with Some e -> Error e | None -> Ok ()

let check_client_results cluster ~correct ~completed =
  let by_op : (int * string, string) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (client, op, result) -> Hashtbl.replace by_op (client, op) result) completed;
  let violation = ref None in
  List.iter
    (fun i ->
      List.iter
        (fun (seq, client, op, result) ->
          match Hashtbl.find_opt by_op (client, op) with
          | Some accepted when (not (String.equal accepted result)) && !violation = None ->
              violation :=
                Some
                  (Printf.sprintf
                     "client %d accepted %S for op %S but replica %d committed %S at seq %d"
                     client accepted op i result seq)
          | _ -> ())
        (committed_prefix (Cluster.replica cluster i)))
    correct;
  match !violation with Some e -> Error e | None -> Ok ()

let check_checkpoint_agreement cluster ~correct =
  (* stable checkpoints only: digests of tentative checkpoints can lag
     behind a rollback, but a stability certificate fixes the state *)
  let stable =
    List.concat_map
      (fun i ->
        let r = Cluster.replica cluster i in
        let s = Replica.stable_checkpoint r in
        List.filter_map
          (fun (seq, digest) -> if seq <= s then Some (i, seq, digest) else None)
          (Replica.checkpoints_held r))
      correct
  in
  let by_seq : (int, int * string) Hashtbl.t = Hashtbl.create 16 in
  let violation = ref None in
  List.iter
    (fun (i, seq, digest) ->
      match Hashtbl.find_opt by_seq seq with
      | Some (j, d) when (not (String.equal d digest)) && !violation = None ->
          violation :=
            Some
              (Printf.sprintf "replicas %d and %d disagree on the digest of checkpoint %d"
                 j i seq)
      | Some _ -> ()
      | None -> Hashtbl.replace by_seq seq (i, digest))
    stable;
  match !violation with Some e -> Error e | None -> Ok ()

let check_monotonic observed =
  match observed.monotonic_violations with
  | [] -> Ok ()
  | v :: _ -> Error v

let evaluate ~cluster ~service ~observed =
  let correct = !(Cluster.correct_replicas cluster) in
  [
    { name = "histories-consistent"; result = check_histories cluster };
    { name = "linearizable"; result = check_linearizable cluster ~service ~correct };
    { name = "at-most-once"; result = check_at_most_once cluster ~correct };
    {
      name = "client-results-committed";
      result = check_client_results cluster ~correct ~completed:observed.completed;
    };
    {
      name = "checkpoint-agreement";
      result = check_checkpoint_agreement cluster ~correct;
    };
    { name = "monotonic-counters"; result = check_monotonic observed };
  ]

module Engine = Bft_sim.Engine
module Network = Bft_net.Network
module Rng = Bft_util.Rng
open Bft_core

type params = {
  seed : int;
  f : int;
  clients : int;
  ops_per_client : int;
  horizon_us : float;
  drain_us : float;
  checkpoint_interval : int;
  vc_timeout_us : float;
  status_interval_us : float;
  expect_no_view_change : bool;
  check_liveness : bool;
  view_bound : int option;
  free_costs : bool;
  quiesce : bool;
  suppress_vc_timer : bool;
  profile : string option;  (* named adversary profile merged into the schedule *)
  client_quota : int option;  (* override Config.client_quota *)
  retransmit_budget : int option;  (* enable the per-peer retransmission budget *)
  perf_watchdog : bool;  (* enable the primary performance watchdog *)
  adaptive_batch : bool;  (* enable Config.adaptive_batch at the replicas *)
  cohort : Cohort.spec option;
      (* workload generator; None = pairwise closed-loop over
         [clients] x [ops_per_client], the classic driver *)
}

let default_params ~seed ~f =
  {
    seed;
    f;
    clients = 2;
    ops_per_client = 10;
    (* the workload spans a few tens of virtual milliseconds; the injection
       window must overlap it or the schedule degenerates to a no-op *)
    horizon_us = 60_000.0;
    drain_us = 60_000_000.0;
    checkpoint_interval = 8;
    vc_timeout_us = 30_000.0;
    status_interval_us = 10_000.0;
    expect_no_view_change = false;
    check_liveness = false;
    view_bound = None;
    free_costs = false;
    quiesce = true;
    suppress_vc_timer = false;
    profile = None;
    client_quota = None;
    retransmit_budget = None;
    perf_watchdog = false;
    adaptive_batch = false;
    cohort = None;
  }

type sim_counters = {
  sc_dropped : int;
  sc_duplicated : int;
  sc_backlog_hwm : (int * int) list;
  sc_events_fired : int;
  sc_max_heap : int;
}

type run_result = {
  schedule : Schedule.t;
  report : Oracle.report;
  failures : string list;
  completed_ops : int;
  total_ops : int;
  view_changes : int;
  max_view : int;
  history_digest : string;
  sim : sim_counters;
}

let failed r = r.failures <> []

let service () = Bft_sm.Kv_service.create ()

let schedule_rng seed = Rng.create (Int64.add (Int64.mul 1_000_003L (Int64.of_int seed)) 17L)

let profile_events params =
  match params.profile with
  | None -> []
  | Some name -> (
      match Schedule.find_profile name with
      | Some p ->
          let n = (3 * params.f) + 1 in
          p.Schedule.pr_events ~f:params.f ~n ~horizon_us:params.horizon_us
      | None -> invalid_arg (Printf.sprintf "unknown adversary profile %S" name))

let generate params =
  let n = (3 * params.f) + 1 in
  Schedule.merge
    (Schedule.generate ~rng:(schedule_rng params.seed) ~f:params.f ~n
       ~horizon_us:params.horizon_us)
    (profile_events params)

(* ------------------------------------------------------------------ *)
(* Prepared (in-flight) runs                                           *)
(* ------------------------------------------------------------------ *)

(* [prepare] builds the cluster and schedules everything — fault events,
   quiesce, probes, client drivers — but does not advance the engine, so a
   caller (the exhaustive explorer) can single-step deliveries itself and
   call [finish] whenever it wants the oracles evaluated.  [run_schedule]
   is exactly [prepare] + run-to-completion + [finish]. *)
type live = {
  lv_params : params;
  lv_sched : Schedule.t;
  lv_cluster : Cluster.t;
  lv_completed : (int * string * string) list ref;
  lv_n_completed : int ref;
  lv_total_ops : int;
  lv_monotonic : string list ref;
  lv_cohort : Cohort.t;
}

let prepare ?obs ?(monotonic_probes = true) params sched =
  let cfg =
    Config.make ~f:params.f ~checkpoint_interval:params.checkpoint_interval
      ~vc_timeout_us:params.vc_timeout_us ~status_interval_us:params.status_interval_us
      ~debug_no_vc_timer:params.suppress_vc_timer
      ?client_quota:params.client_quota ?retransmit_budget:params.retransmit_budget
      ~perf_watchdog:params.perf_watchdog ~adaptive_batch:params.adaptive_batch ()
  in
  (* flood-client slot [k] maps to cluster client index [params.clients + k]:
     flooders are extra clients beyond the workload set, created here so
     the full pairwise key establishment covers them (their requests
     authenticate — replicas must drop them by quota, not by MAC
     failure) *)
  let flood_slots =
    List.fold_left
      (fun acc e ->
        match e.Schedule.action with
        | Schedule.Flood (k, _) | Schedule.Flood_stop k -> max acc (k + 1)
        | _ -> acc)
      0 sched
  in
  (* Free costs must silence the service's execution-cost model too:
     otherwise executing a request leaves the replica CPU busy, a
     subsequent gated release lands in its backlog, and the pending drain
     event is extra hidden state the explorer's time-abstract hashing
     cannot see. *)
  let service =
    if params.free_costs then fun () ->
      { (service ()) with Bft_sm.Service.exec_cost_us = (fun _ -> 0.0) }
    else service
  in
  let cluster =
    Cluster.create ~seed:(Int64.of_int params.seed)
      ?costs:(if params.free_costs then Some Bft_net.Costs.free else None)
      ~service ~num_clients:(params.clients + flood_slots) ?obs cfg
  in
  let flood_client k = Cluster.client cluster (params.clients + k) in
  let engine = Cluster.engine cluster and net = Cluster.network cluster in
  let n = cfg.Config.n in
  let victims = Schedule.victims sched in
  Cluster.correct_replicas cluster :=
    List.filter (fun i -> not (List.mem i victims)) (Config.replica_ids cfg);
  (* adversary rules: the composed hook applies the first matching rule *)
  let rules = ref [] in
  let install () =
    match !rules with
    | [] -> Network.clear_adversary net
    | _ ->
        Network.set_adversary net (fun ~src ~dst msg ->
            let rec go = function
              | [] -> `Pass
              | (cls, s, d, act) :: rest ->
                  if
                    (match s with None -> true | Some x -> x = src)
                    && (match d with None -> true | Some x -> x = dst)
                    && Schedule.matches cls msg.Message.body
                  then act
                  else go rest
            in
            go !rules)
  in
  let apply = function
    | Schedule.Set_loss p -> Network.set_loss_rate net p
    | Schedule.Set_dup p -> Network.set_dup_rate net p
    | Schedule.Set_jitter j -> Network.set_jitter_us net j
    | Schedule.Link_loss (src, dst, p) -> Network.set_link_loss net ~src ~dst p
    | Schedule.Partition (g1, g2) -> Network.partition net g1 g2
    | Schedule.Heal -> Network.heal net
    | Schedule.Net_crash i -> Network.crash net ~id:i
    | Schedule.Net_restart i -> Network.restart net ~id:i
    | Schedule.Crash_reboot i -> Replica.crash_reboot (Cluster.replica cluster i)
    | Schedule.Make_byzantine i -> Replica.byzantine_equivocate (Cluster.replica cluster i) true
    | Schedule.Mute i -> Replica.mute (Cluster.replica cluster i) true
    | Schedule.Unmute i -> Replica.mute (Cluster.replica cluster i) false
    | Schedule.Drop_class (c, s, d) ->
        rules := !rules @ [ (c, s, d, `Drop) ];
        install ()
    | Schedule.Delay_class (c, s, d, us) ->
        rules := !rules @ [ (c, s, d, `Delay us) ];
        install ()
    | Schedule.Clear_rules ->
        rules := [];
        install ()
    | Schedule.Hold_all -> Network.set_gate net true
    | Schedule.Release (c, s, d, nth) ->
        ignore
          (Network.release_held net ~nth ~pred:(fun ~src ~dst msg ->
               (match s with None -> true | Some x -> x = src)
               && (match d with None -> true | Some x -> x = dst)
               && Schedule.matches c msg.Message.body))
    | Schedule.Release_all -> Network.release_all_held net
    | Schedule.Cpu_scale (i, factor) -> Network.set_cpu_factor net ~id:i factor
    | Schedule.Flood (k, interval_us) -> Client.flood (flood_client k) ~interval_us
    | Schedule.Flood_stop k -> Client.flood_stop (flood_client k)
    | Schedule.Wrong_mac i -> Replica.byzantine_wrong_mac (Cluster.replica cluster i) true
    | Schedule.Wrong_mac_off i ->
        Replica.byzantine_wrong_mac (Cluster.replica cluster i) false
  in
  List.iter
    (fun e ->
      ignore
        (Engine.schedule_at engine ~label:"sched"
           (Engine.of_us_float e.Schedule.at_us)
           (fun () -> apply e.Schedule.action)))
    sched;
  (* quiesce at the horizon: the network heals completely and faulty
     replicas are repaired (they stay excluded from the oracles), so a live
     run can finish its workload within the drain window.  Liveness-probe
     runs disable this: the question there is whether the system makes
     progress once the network turns timely, with replica faults intact. *)
  (* the cohort is created below (after the probes), but the quiesce hook
     must restore its aggregate CPU scaling — reset_faults wipes it *)
  let cohort_ref = ref None in
  if params.quiesce then
    ignore
      (Engine.schedule_at engine ~label:"quiesce"
         (Engine.of_us_float params.horizon_us)
         (fun () ->
           rules := [];
           (* reset_faults also restores every node's cpu factor to 1.0 *)
           Network.reset_faults net;
           (match !cohort_ref with Some c -> Cohort.reset_cpu c | None -> ());
           List.iter
             (fun i ->
               Replica.byzantine_equivocate (Cluster.replica cluster i) false;
               Replica.mute (Cluster.replica cluster i) false;
               Replica.byzantine_wrong_mac (Cluster.replica cluster i) false)
             victims;
           for k = 0 to flood_slots - 1 do
             Client.flood_stop (flood_client k)
           done));
  (* monotonicity probes on correct replicas every 20ms of virtual time.
     The explorer turns these off — probe events would pollute its timer
     enumeration — and checks monotonicity parent-against-child instead. *)
  let monotonic_violations = ref [] in
  if monotonic_probes then begin
    let prev = Array.init n (fun i ->
        let r = Cluster.replica cluster i in
        (Replica.view r, Replica.low_water_mark r))
    in
    let deadline = Engine.of_us_float (params.horizon_us +. params.drain_us) in
    let rec probe () =
      List.iter
        (fun i ->
          let r = Cluster.replica cluster i in
          let v = Replica.view r and h = Replica.low_water_mark r in
          let pv, ph = prev.(i) in
          if v < pv then
            monotonic_violations :=
              Printf.sprintf "replica %d view regressed from %d to %d" i pv v
              :: !monotonic_violations;
          if h < ph then
            monotonic_violations :=
              Printf.sprintf "replica %d low water mark regressed from %d to %d" i ph h
              :: !monotonic_violations;
          prev.(i) <- (max v pv, max h ph))
        !(Cluster.correct_replicas cluster);
      if Int64.compare (Engine.now engine) deadline < 0 then
        ignore (Engine.schedule engine ~label:"probe" ~delay:(Engine.ms 20) probe)
    in
    probe ()
  end;
  (* the workload cohort: the default spec reproduces the classic
     closed-loop clients issuing unique writes, event for event *)
  let spec =
    match params.cohort with
    | Some s -> s
    | None ->
        Cohort.default_closed ~k:params.clients ~ops_per_client:params.ops_per_client
  in
  let total_ops = Cohort.total_ops spec in
  let completed = ref [] and n_completed = ref 0 in
  let cohort =
    Cohort.drive ~seed:params.seed cluster spec ~on_complete:(fun ~client ~op ~result ->
        completed := (client, op, result) :: !completed;
        incr n_completed)
  in
  cohort_ref := Some cohort;
  {
    lv_params = params;
    lv_sched = sched;
    lv_cluster = cluster;
    lv_completed = completed;
    lv_n_completed = n_completed;
    lv_total_ops = total_ops;
    lv_monotonic = monotonic_violations;
    lv_cohort = cohort;
  }

let finish lv =
  let params = lv.lv_params in
  let cluster = lv.lv_cluster in
  let cfg = Cluster.config cluster in
  let engine = Cluster.engine cluster and net = Cluster.network cluster in
  let observed =
    {
      Oracle.completed = !(lv.lv_completed);
      monotonic_violations = List.rev !(lv.lv_monotonic);
    }
  in
  let report = Oracle.evaluate ~cluster ~service ~observed in
  let correct = !(Cluster.correct_replicas cluster) in
  let view_changes =
    List.fold_left
      (fun acc i -> acc + (Replica.counters (Cluster.replica cluster i)).Replica.n_view_changes)
      0 correct
  in
  let max_view =
    List.fold_left (fun acc i -> max acc (Replica.view (Cluster.replica cluster i))) 0 correct
  in
  let report =
    if params.expect_no_view_change && view_changes > 0 then
      report
      @ [
          {
            Oracle.name = "expect-no-view-change";
            result =
              Error
                (Printf.sprintf "correct replicas started %d view change(s)" view_changes);
          };
        ]
    else report
  in
  (* liveness oracles: only meaningful on runs that were given every chance
     to finish (a maximal execution in the explorer, or a drained fuzz run) *)
  let incomplete = !(lv.lv_n_completed) < lv.lv_total_ops in
  let report =
    if params.check_liveness && incomplete then
      report
      @ [
          {
            Oracle.name = "liveness-progress";
            result =
              Error
                (Printf.sprintf "only %d of %d issued operations committed"
                   !(lv.lv_n_completed) lv.lv_total_ops);
          };
        ]
    else report
  in
  let report =
    match params.view_bound with
    | Some bound when incomplete && max_view > bound ->
        report
        @ [
            {
              Oracle.name = "liveness-view-bound";
              result =
                Error
                  (Printf.sprintf
                     "view reached %d (bound %d) without committing the workload" max_view
                     bound);
            };
          ]
    | _ -> report
  in
  {
    schedule = lv.lv_sched;
    report;
    failures = Oracle.failures report;
    completed_ops = !(lv.lv_n_completed);
    total_ops = lv.lv_total_ops;
    view_changes;
    max_view;
    history_digest = Cluster.committed_history_digest cluster;
    sim =
      (let stats = Network.stats net in
       {
         sc_dropped = stats.Network.dropped;
         sc_duplicated = stats.Network.duplicated;
         sc_backlog_hwm =
           List.map (fun i -> (i, Network.backlog_hwm net ~id:i)) (Config.replica_ids cfg);
         sc_events_fired = Engine.events_fired engine;
         sc_max_heap = Engine.max_heap_size engine;
       });
  }

let run_schedule ?obs params sched =
  let lv = prepare ?obs params sched in
  ignore
    (Cluster.run_until
       ~timeout_us:(params.horizon_us +. params.drain_us)
       lv.lv_cluster
       (fun () -> !(lv.lv_n_completed) >= lv.lv_total_ops));
  finish lv

let run_seed params = run_schedule params (generate params)

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

let remove_slice l start len =
  List.filteri (fun i _ -> i < start || i >= start + len) l

let shrink ?(budget = 200) params sched =
  let best_run = run_schedule params sched in
  if not (failed best_run) then (sched, best_run)
  else begin
    let budget = ref (budget - 1) in
    let best = ref sched and best_result = ref best_run in
    let try_candidate cand =
      if !budget <= 0 || List.length cand >= List.length !best then false
      else begin
        decr budget;
        let r = run_schedule params cand in
        if failed r then begin
          best := cand;
          best_result := r;
          true
        end
        else false
      end
    in
    let chunk = ref (max 1 (List.length sched / 2)) in
    while !chunk >= 1 && !budget > 0 do
      let progressed = ref false in
      let start = ref 0 in
      while !start < List.length !best && !budget > 0 do
        if try_candidate (remove_slice !best !start !chunk) then progressed := true
          (* same start index now names the next chunk of the shorter list *)
        else start := !start + !chunk
      done;
      if not !progressed then chunk := !chunk / 2
    done;
    (!best, !best_result)
  end

let replay_line params sched =
  let d = default_params ~seed:params.seed ~f:params.f in
  let opt b s = if b then s else "" in
  (* no [--profile]: profile events were merged into [sched] at generation
     time, and floods are not idempotent — replay carries the expanded
     schedule only *)
  Printf.sprintf
    "bftctl fuzz --seed %d -f %d --clients %d --ops %d --horizon-us %.0f --schedule '%s'%s%s%s%s%s%s%s%s%s%s%s%s%s%s%s"
    params.seed params.f params.clients params.ops_per_client params.horizon_us
    (Schedule.to_string sched)
    (opt (params.drain_us <> d.drain_us) (Printf.sprintf " --drain-us %.0f" params.drain_us))
    (opt
       (params.checkpoint_interval <> d.checkpoint_interval)
       (Printf.sprintf " --checkpoint-interval %d" params.checkpoint_interval))
    (opt
       (params.vc_timeout_us <> d.vc_timeout_us)
       (Printf.sprintf " --vc-timeout-us %.0f" params.vc_timeout_us))
    (opt
       (params.status_interval_us <> d.status_interval_us)
       (Printf.sprintf " --status-us %.0f" params.status_interval_us))
    (opt params.expect_no_view_change " --expect-no-view-change")
    (opt params.check_liveness " --check-liveness")
    (match params.view_bound with
    | Some b -> Printf.sprintf " --view-bound %d" b
    | None -> "")
    (opt params.free_costs " --free-costs")
    (opt (not params.quiesce) " --no-quiesce")
    (opt params.suppress_vc_timer " --inject-no-vc-timer")
    (match params.client_quota with
    | Some q -> Printf.sprintf " --quota %d" q
    | None -> "")
    (match params.retransmit_budget with
    | Some b -> Printf.sprintf " --retx-budget %d" b
    | None -> "")
    (opt params.perf_watchdog " --perf-vc")
    (opt params.adaptive_batch " --adaptive-batch")
    (match params.cohort with
    | Some s ->
        Printf.sprintf " --cohort-k %d --arrival %s --cohort-keys %s" s.Cohort.k
          (Cohort.arrival_to_string s.Cohort.arrival)
          (Cohort.keys_to_string s.Cohort.keys)
    | None -> "")

(* ------------------------------------------------------------------ *)
(* Seed enumeration                                                    *)
(* ------------------------------------------------------------------ *)

type fuzz_outcome = {
  seeds_run : int;
  failing : (int * run_result) list;
  live_incomplete : int;
  total_view_changes : int;
  total_completed : int;
}

let fuzz ?progress params ~seeds =
  let failing = ref [] and live_incomplete = ref 0 in
  let total_view_changes = ref 0 and total_completed = ref 0 in
  for seed = params.seed to params.seed + seeds - 1 do
    let params = { params with seed } in
    let r = run_seed params in
    total_view_changes := !total_view_changes + r.view_changes;
    total_completed := !total_completed + r.completed_ops;
    if r.completed_ops < r.total_ops && not (failed r) then incr live_incomplete;
    if failed r then begin
      let _, shrunk = shrink params r.schedule in
      failing := (seed, shrunk) :: !failing
    end;
    match progress with Some f -> f ~seed r | None -> ()
  done;
  {
    seeds_run = seeds;
    failing = List.rev !failing;
    live_incomplete = !live_incomplete;
    total_view_changes = !total_view_changes;
    total_completed = !total_completed;
  }

module Engine = Bft_sim.Engine
module Network = Bft_net.Network
module Costs = Bft_net.Costs
module Keychain = Bft_crypto.Keychain
module Auth = Bft_crypto.Auth
module Hmac = Bft_crypto.Hmac
module Rng = Bft_util.Rng
module Hist = Bft_obs.Hist
open Bft_core

type arrival =
  | Closed of { think_us : float; ops_per_client : int }
  | Open of { rate_per_sec : float; total_ops : int }
  | Bursty of {
      base_per_sec : float;
      peak_per_sec : float;
      period_us : float;
      total_ops : int;
    }

type keys = Pairwise | Derived

type spec = { k : int; arrival : arrival; keys : keys }

let default_closed ~k ~ops_per_client =
  { k; arrival = Closed { think_us = 100.0; ops_per_client }; keys = Pairwise }

let total_ops spec =
  match spec.arrival with
  | Closed { ops_per_client; _ } -> spec.k * ops_per_client
  | Open { total_ops; _ } | Bursty { total_ops; _ } -> total_ops

let arrival_to_string = function
  | Closed { think_us; ops_per_client } ->
      Printf.sprintf "closed:%.0f:%d" think_us ops_per_client
  | Open { rate_per_sec; total_ops } -> Printf.sprintf "open:%.0f:%d" rate_per_sec total_ops
  | Bursty { base_per_sec; peak_per_sec; period_us; total_ops } ->
      Printf.sprintf "bursty:%.0f:%.0f:%.0f:%d" base_per_sec peak_per_sec period_us
        total_ops

let parse_arrival s =
  let num x = float_of_string_opt x and inum x = int_of_string_opt x in
  match String.split_on_char ':' s with
  | [ "closed"; think; ops ] -> (
      match (num think, inum ops) with
      | Some think_us, Some ops_per_client when think_us >= 0.0 && ops_per_client >= 0 ->
          Ok (Closed { think_us; ops_per_client })
      | _ -> Error "closed:<think_us>:<ops_per_client> expects non-negative numbers")
  | [ "open"; rate; ops ] -> (
      match (num rate, inum ops) with
      | Some rate_per_sec, Some total_ops when rate_per_sec > 0.0 && total_ops >= 0 ->
          Ok (Open { rate_per_sec; total_ops })
      | _ -> Error "open:<rate_per_sec>:<total_ops> expects a positive rate")
  | [ "bursty"; base; peak; period; ops ] -> (
      match (num base, num peak, num period, inum ops) with
      | Some base_per_sec, Some peak_per_sec, Some period_us, Some total_ops
        when base_per_sec > 0.0 && peak_per_sec >= base_per_sec && period_us > 0.0
             && total_ops >= 0 ->
          Ok (Bursty { base_per_sec; peak_per_sec; period_us; total_ops })
      | _ ->
          Error
            "bursty:<base_per_sec>:<peak_per_sec>:<period_us>:<total_ops> expects peak >= \
             base > 0")
  | _ -> Error (Printf.sprintf "unknown arrival process %S" s)

let keys_to_string = function Pairwise -> "pairwise" | Derived -> "derived"

let parse_keys = function
  | "pairwise" -> Ok Pairwise
  | "derived" -> Ok Derived
  | s -> Error (Printf.sprintf "unknown cohort key mode %S (pairwise|derived)" s)

(* Same string as the classic per-client driver used, byte for byte: the
   pairwise cohort at [k = clients] must produce identical protocol traffic
   (the pinned committed-history digests enforce it). *)
let op_for ~client_slot ~index = Printf.sprintf "put c%d.%d v%d" client_slot index index

(* Derived streams write a distinct key space so a derived cohort can
   coexist with real clients (flood slots) without KV-key collisions. *)
let op_for_derived ~stream ~index = Printf.sprintf "put d%d.%d v%d" stream index index

(* Per-replica reply record, as in [Client]. *)
type reply_info = { ri_tentative : bool; ri_digest : string; ri_full : string option }

type flight = {
  fl_client : int;
  fl_ts : int64;
  fl_stream : int;
  fl_index : int;
  fl_op : string;
  fl_issued : Engine.time;
  fl_replies : (int, reply_info) Hashtbl.t;
  mutable fl_timer : Engine.handle option;
  mutable fl_retries : int;
}

type t = {
  spec : spec;
  cluster : Cluster.t;
  engine : Engine.t;
  net : Message.envelope Network.t;
  cfg : Config.t;
  costs : Costs.t;
  on_complete : client:int -> op:string -> result:string -> unit;
  mutable completed : int;
  mutable issued : int;
  (* derived-mode state: one O(1) generator object standing in for [k]
     simulated clients. Memory is O(in-flight operations), independent of
     [k] — client identity and timestamp are synthesized from the issue
     counter, session keys are derived on demand from the group secret,
     and the whole id range shares one network node. *)
  group : Keychain.group option;
  base : int; (* first derived client id *)
  arena : Bft_net.Wire_arena.t;
  inflight : (int * int64, flight) Hashtbl.t; (* (client, timestamp) *)
  arrival_rng : Rng.t;
  mutable view_guess : int;
  mutable stream_done : stream:int -> index:int -> unit;
      (* continuation decided by the arrival process on completion *)
  lat : Hist.t; (* issue -> reply certificate, virtual us *)
}

let completed t = t.completed
let issued t = t.issued
let latency_hist t = t.lat
let group_of t = t.group
let base_id t = t.base

let replica_ids t = Config.replica_ids t.cfg
let primary t = Config.primary t.cfg ~view:t.view_guess

(* Aggregate client capacity: the shared range node stands in for [k]
   single-CPU clients, so each charge costs 1/k of a real client CPU. *)
let cpu_factor_of t = Float.max 1e-9 (1.0 /. float_of_int (max 1 t.spec.k))

let reset_cpu t =
  match t.spec.keys with
  | Pairwise -> ()
  | Derived -> Network.set_cpu_factor t.net ~id:t.base (cpu_factor_of t)

(* ------------------------------------------------------------------ *)
(* Pairwise mode: drive the cluster's real clients                     *)
(* ------------------------------------------------------------------ *)

(* The exact arrival discipline of the classic runner driver: stagger the
   slots 137us apart, back off 500us while the client is busy, think 100us
   (configurable) after each completion. At [k = params.clients] with the
   default think time this is event-for-event identical to the driver it
   replaced, so every pinned digest survives. *)
let drive_pairwise t ~think_us ~ops_per_client =
  let n = t.cfg.Config.n in
  let rec drive slot index =
    if index < ops_per_client then begin
      let cl = Cluster.client t.cluster slot in
      let label = Printf.sprintf "drive%d" slot in
      if Client.busy cl then
        ignore
          (Engine.schedule t.engine ~label ~delay:(Engine.us 500) (fun () ->
               drive slot index))
      else begin
        let op = op_for ~client_slot:slot ~index in
        t.issued <- t.issued + 1;
        Client.invoke cl ~op (fun ~result ~latency_us ->
            Hist.add t.lat latency_us;
            t.completed <- t.completed + 1;
            t.on_complete ~client:(n + slot) ~op ~result;
            ignore
              (Engine.schedule t.engine ~label ~delay:(Engine.of_us_float think_us)
                 (fun () -> drive slot (index + 1))))
      end
    end
  in
  for slot = 0 to t.spec.k - 1 do
    ignore
      (Engine.schedule t.engine
         ~label:(Printf.sprintf "drive%d" slot)
         ~delay:(Engine.us (137 * (slot + 1)))
         (fun () -> drive slot 0))
  done

(* ------------------------------------------------------------------ *)
(* Derived mode: synthesized requests over group keys                  *)
(* ------------------------------------------------------------------ *)

let send_flight t fl ~to_all =
  let g = Option.get t.group in
  let req =
    {
      Message.op = fl.fl_op;
      timestamp = fl.fl_ts;
      client = fl.fl_client;
      read_only = false;
      replier = fl.fl_client mod t.cfg.Config.n;
    }
  in
  let enc = Message.no_cache () in
  let bytes = Wire.cached_encode ~arena:t.arena enc (Message.Request req) in
  Network.charge t.net ~id:fl.fl_client (Costs.auth_gen_us t.costs t.cfg.Config.n);
  let auth =
    List.map
      (fun r ->
        let key, pre = Keychain.group_derive g ~src:fl.fl_client ~dst:r in
        ( r,
          {
            Auth.tag = Hmac.mac_truncated_precomputed pre Auth.tag_size bytes;
            epoch = key.Keychain.epoch;
          } ))
      (replica_ids t)
  in
  let env =
    { Message.sender = fl.fl_client; body = Request req; auth = Auth_vector auth; enc }
  in
  let size = Wire.envelope_size env in
  if to_all then Network.multicast t.net ~src:fl.fl_client ~dsts:(replica_ids t) ~size env
  else Network.send t.net ~src:fl.fl_client ~dst:(primary t) ~size env

let rec arm_timer t fl =
  let base = t.cfg.Config.client_retry_us in
  let expo = 2.0 ** float_of_int (min fl.fl_retries 30) in
  let delay = Float.min (base *. expo) t.cfg.Config.client_retry_max_us in
  fl.fl_timer <-
    Some
      (Engine.schedule t.engine ~label:"cohretx" ~delay:(Engine.of_us_float delay)
         (fun () ->
           fl.fl_timer <- None;
           if Hashtbl.mem t.inflight (fl.fl_client, fl.fl_ts) then begin
             fl.fl_retries <- fl.fl_retries + 1;
             send_flight t fl ~to_all:true;
             arm_timer t fl
           end))

let try_complete t fl =
  let groups = Hashtbl.create 4 in
  Hashtbl.iter
    (fun _replica ri ->
      let total, nontent, full =
        match Hashtbl.find_opt groups ri.ri_digest with
        | Some (a, b, f) -> (a, b, f)
        | None -> (0, 0, None)
      in
      let full = match (full, ri.ri_full) with Some f, _ -> Some f | None, f -> f in
      Hashtbl.replace groups ri.ri_digest
        (total + 1, (if ri.ri_tentative then nontent else nontent + 1), full))
    fl.fl_replies;
  let needed_weak = Config.weak t.cfg and needed_quorum = Config.quorum t.cfg in
  let winner = ref None in
  Hashtbl.iter
    (fun _d (total, nontent, full) ->
      match full with
      | Some result when nontent >= needed_weak || total >= needed_quorum ->
          winner := Some result
      | _ -> ())
    groups;
  match !winner with
  | Some result ->
      (match fl.fl_timer with Some h -> Engine.cancel h | None -> ());
      Hashtbl.remove t.inflight (fl.fl_client, fl.fl_ts);
      Hist.add t.lat
        (Engine.to_us (Engine.now t.engine) -. Engine.to_us fl.fl_issued);
      t.completed <- t.completed + 1;
      t.on_complete ~client:fl.fl_client ~op:fl.fl_op ~result;
      t.stream_done ~stream:fl.fl_stream ~index:fl.fl_index
  | None -> ()

let handle_reply t dst (env : Message.envelope) =
  match env.body with
  | Reply rp when rp.rp_client = dst -> (
      match Hashtbl.find_opt t.inflight (rp.rp_client, rp.rp_timestamp) with
      | None -> ()
      | Some fl ->
          let verified =
            match env.auth with
            | Auth_mac m ->
                Network.charge t.net ~id:dst t.costs.Costs.mac_us;
                let g = Option.get t.group in
                let key, pre = Keychain.group_derive g ~src:rp.rp_replica ~dst in
                key.Keychain.epoch = m.Auth.epoch
                && Hmac.verify_precomputed pre ~tag:m.Auth.tag (Wire.envelope_bytes env)
            | _ -> false
          in
          if verified then begin
            if rp.rp_view > t.view_guess then t.view_guess <- rp.rp_view;
            let info =
              match rp.rp_result with
              | Full s ->
                  Network.charge t.net ~id:dst (Costs.digest_us t.costs (String.length s));
                  {
                    ri_tentative = rp.rp_tentative;
                    ri_digest = Wire.result_digest s;
                    ri_full = Some s;
                  }
              | Result_digest d ->
                  { ri_tentative = rp.rp_tentative; ri_digest = d; ri_full = None }
            in
            Hashtbl.replace fl.fl_replies rp.rp_replica info;
            try_complete t fl
          end)
  | _ -> ()

(* Issue the operation for (stream, index): client id and timestamp are
   synthesized from the pair, so no per-client state exists anywhere. *)
let issue_derived t ~stream ~index =
  let client = t.base + stream in
  let ts = Int64.of_int (index + 1) in
  let fl =
    {
      fl_client = client;
      fl_ts = ts;
      fl_stream = stream;
      fl_index = index;
      fl_op = op_for_derived ~stream ~index;
      fl_issued = Engine.now t.engine;
      fl_replies = Hashtbl.create 8;
      fl_timer = None;
      fl_retries = 0;
    }
  in
  Hashtbl.replace t.inflight (client, ts) fl;
  t.issued <- t.issued + 1;
  send_flight t fl ~to_all:false;
  arm_timer t fl

(* Closed-loop derived: [k] streams, each re-issuing [think_us] after its
   previous operation completes. *)
let drive_derived_closed t ~think_us ~ops_per_client =
  t.stream_done <-
    (fun ~stream ~index ->
      if index + 1 < ops_per_client then
        ignore
          (Engine.schedule t.engine ~label:"cohthink"
             ~delay:(Engine.of_us_float think_us)
             (fun () -> issue_derived t ~stream ~index:(index + 1))));
  if ops_per_client > 0 then
    for stream = 0 to t.spec.k - 1 do
      ignore
        (Engine.schedule t.engine ~label:"cohstart"
           ~delay:(Engine.us (137 * (stream + 1)))
           (fun () -> issue_derived t ~stream ~index:0))
    done

(* Open-loop (Poisson) and bursty/diurnal arrivals: one recurring event
   draws the next interarrival gap; issue [i] maps to stream [i mod k],
   per-stream operation index [i / k] — timestamps stay strictly
   increasing per synthesized client. *)
let drive_derived_open t ~total_ops ~rate_at =
  let rec tick () =
    if t.issued < total_ops then begin
      let i = t.issued in
      issue_derived t ~stream:(i mod t.spec.k) ~index:(i / t.spec.k);
      if t.issued < total_ops then begin
        let rate = Float.max 1e-3 (rate_at (Engine.to_us (Engine.now t.engine))) in
        let gap_us = Rng.exponential t.arrival_rng (1_000_000.0 /. rate) in
        ignore
          (Engine.schedule t.engine ~label:"coharrive" ~delay:(Engine.of_us_float gap_us)
             tick)
      end
    end
  in
  if total_ops > 0 then begin
    let rate0 = Float.max 1e-3 (rate_at 0.0) in
    let gap_us = Rng.exponential t.arrival_rng (1_000_000.0 /. rate0) in
    ignore
      (Engine.schedule t.engine ~label:"coharrive" ~delay:(Engine.of_us_float gap_us) tick)
  end

(* ------------------------------------------------------------------ *)
(* Setup                                                               *)
(* ------------------------------------------------------------------ *)

let mix_seed seed = Int64.add (Int64.mul 2_000_033L (Int64.of_int seed)) 71L

let drive ?(seed = 1) cluster spec ~on_complete =
  if spec.k < 1 then invalid_arg "Cohort.drive: k must be >= 1";
  let cfg = Cluster.config cluster in
  let net = Cluster.network cluster in
  (match spec.keys with
  | Pairwise ->
      if spec.k > Cluster.num_clients cluster then
        invalid_arg "Cohort.drive: pairwise cohort needs k real clients";
      (match spec.arrival with
      | Closed _ -> ()
      | Open _ | Bursty _ ->
          invalid_arg
            "Cohort.drive: open-loop arrivals need derived keys (a real client admits \
             one outstanding request)")
  | Derived ->
      if cfg.Config.auth_mode <> Config.Mac_auth then
        invalid_arg "Cohort.drive: derived cohorts require Mac_auth");
  let base = cfg.Config.n + Cluster.num_clients cluster in
  let t =
    {
      spec;
      cluster;
      engine = Cluster.engine cluster;
      net;
      cfg;
      costs = Network.costs net;
      on_complete;
      completed = 0;
      issued = 0;
      group =
        (match spec.keys with
        | Pairwise -> None
        | Derived ->
            let grng = Rng.create (mix_seed seed) in
            Some
              (Keychain.group ~first:base ~last:(base + spec.k - 1)
                 ~secret:(Rng.bytes grng 32)));
      base;
      arena = Bft_net.Wire_arena.create ~size:256 ();
      inflight = Hashtbl.create 64;
      arrival_rng = Rng.create (Int64.add (mix_seed seed) 9176L);
      view_guess = 0;
      stream_done = (fun ~stream:_ ~index:_ -> ());
      lat = Hist.create ();
    }
  in
  (match t.group with
  | None -> ()
  | Some g ->
      (* replicas derive the cohort's session keys on demand; the whole id
         range shares one network node record and one scaled CPU *)
      Array.iter (fun r -> Keychain.set_group (Replica.keychain r) g) (Cluster.replicas cluster);
      Network.add_node_range net ~first:base ~last:(base + spec.k - 1)
        ~handler:(fun dst env -> handle_reply t dst env);
      Network.set_cpu_factor net ~id:base (cpu_factor_of t));
  (match spec.arrival with
  | Closed { think_us; ops_per_client } -> (
      match spec.keys with
      | Pairwise -> drive_pairwise t ~think_us ~ops_per_client
      | Derived -> drive_derived_closed t ~think_us ~ops_per_client)
  | Open { rate_per_sec; total_ops } ->
      drive_derived_open t ~total_ops ~rate_at:(fun _ -> rate_per_sec)
  | Bursty { base_per_sec; peak_per_sec; period_us; total_ops } ->
      (* diurnal sinusoid between base and peak over one period *)
      drive_derived_open t ~total_ops ~rate_at:(fun now_us ->
          base_per_sec
          +. (peak_per_sec -. base_per_sec)
             *. (1.0 -. Float.cos (2.0 *. Float.pi *. now_us /. period_us))
             /. 2.0));
  t

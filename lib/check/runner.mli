(** Fuzzer runner: executes fault schedules against a simulated cluster,
    evaluates the safety oracles, and shrinks failing schedules.

    A run is fully determined by [(params, schedule)]: the cluster seed
    fixes the simulator and network RNG streams, and the schedule is either
    derived deterministically from the seed ({!run_seed}) or supplied
    explicitly ({!run_schedule}, used for replay and shrinking). *)

type params = {
  seed : int;
  f : int;
  clients : int;
  ops_per_client : int;
  horizon_us : float;  (** fault-injection window (virtual time) *)
  drain_us : float;  (** post-quiesce time allowed for completion *)
  checkpoint_interval : int;
  vc_timeout_us : float;
  expect_no_view_change : bool;
      (** Debug pseudo-oracle: fail the run if any correct replica started
          a view change. Views changes are {e expected} under fault
          injection — this exists to plant a failure on demand and
          demonstrate that shrinking reports a minimal schedule. *)
}

val default_params : seed:int -> f:int -> params

type run_result = {
  schedule : Schedule.t;
  report : Oracle.report;
  failures : string list;  (** [Oracle.failures] of [report] *)
  completed_ops : int;  (** operations whose reply certificate arrived *)
  total_ops : int;
  view_changes : int;  (** view changes started by correct replicas *)
  max_view : int;  (** highest view reached by any correct replica *)
  history_digest : string;
      (** [Cluster.committed_history_digest] of the final cluster state:
          a determinism fingerprint — identical [(params, schedule)] must
          yield identical digests, across processes and code refactors
          that preserve protocol semantics. *)
}

val failed : run_result -> bool

val generate : params -> Schedule.t
(** The fault schedule derived deterministically from [params.seed]. *)

val run_schedule : params -> Schedule.t -> run_result
(** Build a cluster, inject the schedule's events at their virtual times,
    drive [clients] closed-loop clients through unique KV writes, quiesce
    all network faults at the horizon, and evaluate every oracle. *)

val run_seed : params -> run_result
(** [run_schedule] on the schedule generated from [params.seed]. *)

val shrink : ?budget:int -> params -> Schedule.t -> Schedule.t * run_result
(** Greedy delta-debugging: starting from a failing schedule, repeatedly
    remove event chunks (halving chunk sizes down to single events) while
    the failure reproduces, spending at most [budget] (default 200) runs.
    Returns the smallest failing schedule found with its run. If the input
    schedule does not fail, it is returned unchanged. *)

val replay_line : params -> Schedule.t -> string
(** A [bftctl fuzz] command line that reproduces the run exactly. *)

type fuzz_outcome = {
  seeds_run : int;
  failing : (int * run_result) list;  (** seed, shrunk failing run *)
  live_incomplete : int;
      (** runs that timed out before completing every op (not a safety
          failure: the schedule may simply starve progress) *)
  total_view_changes : int;
  total_completed : int;
}

val fuzz :
  ?progress:(seed:int -> run_result -> unit) -> params -> seeds:int -> fuzz_outcome
(** Run seeds [params.seed, params.seed + seeds); on each failure, shrink
    it before recording. [progress] is called after every seed. *)

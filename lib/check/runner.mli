(** Fuzzer runner: executes fault schedules against a simulated cluster,
    evaluates the safety oracles, and shrinks failing schedules.

    A run is fully determined by [(params, schedule)]: the cluster seed
    fixes the simulator and network RNG streams, and the schedule is either
    derived deterministically from the seed ({!run_seed}) or supplied
    explicitly ({!run_schedule}, used for replay and shrinking). *)

type params = {
  seed : int;
  f : int;
  clients : int;
  ops_per_client : int;
  horizon_us : float;  (** fault-injection window (virtual time) *)
  drain_us : float;  (** post-quiesce time allowed for completion *)
  checkpoint_interval : int;
  vc_timeout_us : float;
  expect_no_view_change : bool;
      (** Debug pseudo-oracle: fail the run if any correct replica started
          a view change. Views changes are {e expected} under fault
          injection — this exists to plant a failure on demand and
          demonstrate that shrinking reports a minimal schedule. *)
}

val default_params : seed:int -> f:int -> params

type sim_counters = {
  sc_dropped : int;  (** network-level message drops (faults + loss) *)
  sc_duplicated : int;
  sc_backlog_hwm : (int * int) list;
      (** per replica id: deepest CPU receive backlog reached *)
  sc_events_fired : int;  (** simulator events executed *)
  sc_max_heap : int;  (** peak event-heap size *)
}

type run_result = {
  schedule : Schedule.t;
  report : Oracle.report;
  failures : string list;  (** [Oracle.failures] of [report] *)
  completed_ops : int;  (** operations whose reply certificate arrived *)
  total_ops : int;
  view_changes : int;  (** view changes started by correct replicas *)
  max_view : int;  (** highest view reached by any correct replica *)
  history_digest : string;
      (** [Cluster.committed_history_digest] of the final cluster state:
          a determinism fingerprint — identical [(params, schedule)] must
          yield identical digests, across processes and code refactors
          that preserve protocol semantics. *)
  sim : sim_counters;
      (** network/engine counters joined in from [Bft_net] / [Bft_sim]
          at the end of the run (the metrics layer's system-level view). *)
}

val failed : run_result -> bool

val generate : params -> Schedule.t
(** The fault schedule derived deterministically from [params.seed]. *)

val run_schedule : ?obs:Bft_obs.Obs.registry -> params -> Schedule.t -> run_result
(** Build a cluster, inject the schedule's events at their virtual times,
    drive [clients] closed-loop clients through unique KV writes, quiesce
    all network faults at the horizon, and evaluate every oracle. [obs]
    attaches per-node tracing (used to dump traces when replaying a shrunk
    counterexample); runs without it are untraced and byte-identical to
    the pre-tracing behavior. *)

val run_seed : params -> run_result
(** [run_schedule] on the schedule generated from [params.seed]. *)

val shrink : ?budget:int -> params -> Schedule.t -> Schedule.t * run_result
(** Greedy delta-debugging: starting from a failing schedule, repeatedly
    remove event chunks (halving chunk sizes down to single events) while
    the failure reproduces, spending at most [budget] (default 200) runs.
    Returns the smallest failing schedule found with its run. If the input
    schedule does not fail, it is returned unchanged. *)

val replay_line : params -> Schedule.t -> string
(** A [bftctl fuzz] command line that reproduces the run exactly. *)

type fuzz_outcome = {
  seeds_run : int;
  failing : (int * run_result) list;  (** seed, shrunk failing run *)
  live_incomplete : int;
      (** runs that timed out before completing every op (not a safety
          failure: the schedule may simply starve progress) *)
  total_view_changes : int;
  total_completed : int;
}

val fuzz :
  ?progress:(seed:int -> run_result -> unit) -> params -> seeds:int -> fuzz_outcome
(** Run seeds [params.seed, params.seed + seeds); on each failure, shrink
    it before recording. [progress] is called after every seed. *)

(** Fuzzer runner: executes fault schedules against a simulated cluster,
    evaluates the safety oracles, and shrinks failing schedules.

    A run is fully determined by [(params, schedule)]: the cluster seed
    fixes the simulator and network RNG streams, and the schedule is either
    derived deterministically from the seed ({!run_seed}) or supplied
    explicitly ({!run_schedule}, used for replay and shrinking). *)

type params = {
  seed : int;
  f : int;
  clients : int;
  ops_per_client : int;
  horizon_us : float;  (** fault-injection window (virtual time) *)
  drain_us : float;  (** post-quiesce time allowed for completion *)
  checkpoint_interval : int;
  vc_timeout_us : float;
  status_interval_us : float;  (** replica status-retransmission period *)
  expect_no_view_change : bool;
      (** Debug pseudo-oracle: fail the run if any correct replica started
          a view change. Views changes are {e expected} under fault
          injection — this exists to plant a failure on demand and
          demonstrate that shrinking reports a minimal schedule. *)
  check_liveness : bool;
      (** Evaluate the liveness oracles at the end of the run: a maximal
          execution must commit every issued operation
          ([liveness-progress]), and if [view_bound] is set the view must
          not pass it without the workload completing
          ([liveness-view-bound]). Off by default: an adversarial fuzz
          schedule is free to starve progress without that being a bug. *)
  view_bound : int option;  (** bound for [liveness-view-bound] *)
  free_costs : bool;
      (** Run with {!Bft_net.Costs.free}: zero CPU costs and a constant
          1µs wire delay, so message processing is instantaneous at the
          delivery instant. The explorer requires this — it makes a
          released message's effects atomic with its release. *)
  quiesce : bool;
      (** Heal the network and repair faulty replicas at the horizon
          (default). Liveness probes disable this so replica faults
          persist: the probe asks whether the protocol recovers once the
          network alone turns timely (the paper's weak-synchrony liveness
          condition), not whether it recovers when the adversary vanishes. *)
  suppress_vc_timer : bool;
      (** Injected bug ({!Bft_core.Config.debug_no_vc_timer}): backups
          never arm the view-change timer. Used to validate that the
          explorer's liveness oracles catch a real stall. *)
  profile : string option;
      (** Named adversary profile ({!Schedule.profiles}) whose events are
          merged into the generated schedule. Flood actions allocate extra
          clients beyond the workload set: flood slot [k] is cluster
          client [clients + k]. Replay lines never carry the profile —
          the expanded events live in the schedule string. *)
  client_quota : int option;  (** override {!Bft_core.Config.client_quota} *)
  retransmit_budget : int option;
      (** enable the per-peer retransmission budget
          ({!Bft_core.Config.retransmit_budget}) *)
  perf_watchdog : bool;
      (** enable the primary performance watchdog
          ({!Bft_core.Config.perf_watchdog}) *)
  adaptive_batch : bool;
      (** enable the queue-depth-tracking batch sizer
          ({!Bft_core.Config.adaptive_batch}). Off by default: it changes
          batch boundaries and hence the pinned history digests. *)
  cohort : Cohort.spec option;
      (** Workload generator. [None] (default) drives [clients] pairwise
          closed-loop streams through [ops_per_client] unique writes each —
          the classic driver, now routed through {!Cohort.drive} with a
          byte-identical event sequence. A custom pairwise spec must keep
          [k <= clients]: flood slots occupy the client indices beyond
          [clients]. Derived-key specs synthesize clients outside the real
          range, so any [k] works. *)
}

val default_params : seed:int -> f:int -> params

type sim_counters = {
  sc_dropped : int;  (** network-level message drops (faults + loss) *)
  sc_duplicated : int;
  sc_backlog_hwm : (int * int) list;
      (** per replica id: deepest CPU receive backlog reached *)
  sc_events_fired : int;  (** simulator events executed *)
  sc_max_heap : int;  (** peak event-heap size *)
}

type run_result = {
  schedule : Schedule.t;
  report : Oracle.report;
  failures : string list;  (** [Oracle.failures] of [report] *)
  completed_ops : int;  (** operations whose reply certificate arrived *)
  total_ops : int;
  view_changes : int;  (** view changes started by correct replicas *)
  max_view : int;  (** highest view reached by any correct replica *)
  history_digest : string;
      (** [Cluster.committed_history_digest] of the final cluster state:
          a determinism fingerprint — identical [(params, schedule)] must
          yield identical digests, across processes and code refactors
          that preserve protocol semantics. *)
  sim : sim_counters;
      (** network/engine counters joined in from [Bft_net] / [Bft_sim]
          at the end of the run (the metrics layer's system-level view). *)
}

val failed : run_result -> bool

val generate : params -> Schedule.t
(** The fault schedule derived deterministically from [params.seed],
    merged with the events of [params.profile] (if any). *)

(** {2 Prepared runs}

    The exhaustive explorer needs to single-step the engine between
    deliveries instead of running to completion, while reusing — by
    construction, not by imitation — the exact cluster setup, schedule
    application, and client workload of a fuzz run. [prepare] does all the
    setup and scheduling without advancing the engine; [finish] evaluates
    the oracles over whatever state the caller drove the cluster to.
    [run_schedule] is [prepare] + run-to-completion + [finish]. *)

type live = {
  lv_params : params;
  lv_sched : Schedule.t;
  lv_cluster : Bft_core.Cluster.t;
  lv_completed : (int * string * string) list ref;
      (** [(client_id, op, result)] per accepted reply, most recent first *)
  lv_n_completed : int ref;
  lv_total_ops : int;
  lv_monotonic : string list ref;
  lv_cohort : Cohort.t;
      (** the workload generator — its {!Cohort.latency_hist} carries the
          per-op virtual-time latency of the run *)
}

val prepare :
  ?obs:Bft_obs.Obs.registry -> ?monotonic_probes:bool -> params -> Schedule.t -> live
(** Build the cluster, inject the schedule's events at their virtual
    times, arm the quiesce hook (unless [params.quiesce] is false), start
    the monotonicity probes (unless [monotonic_probes:false] — the
    explorer disables them because probe timers would pollute its event
    enumeration, and checks monotonicity parent-against-child instead),
    and start the closed-loop clients. The engine has not run: call
    {!Bft_core.Cluster.run_until} or step it manually, then {!finish}. *)

val finish : live -> run_result
(** Evaluate every oracle over the current cluster state. Pure
    observation: does not advance the engine, so the explorer may call it
    at any point along a path (it is only meaningful where the caller
    considers the execution terminal). *)

val run_schedule : ?obs:Bft_obs.Obs.registry -> params -> Schedule.t -> run_result
(** Build a cluster, inject the schedule's events at their virtual times,
    drive [clients] closed-loop clients through unique KV writes, quiesce
    all network faults at the horizon, and evaluate every oracle. [obs]
    attaches per-node tracing (used to dump traces when replaying a shrunk
    counterexample); runs without it are untraced and byte-identical to
    the pre-tracing behavior. *)

val run_seed : params -> run_result
(** [run_schedule] on the schedule generated from [params.seed]. *)

val shrink : ?budget:int -> params -> Schedule.t -> Schedule.t * run_result
(** Greedy delta-debugging: starting from a failing schedule, repeatedly
    remove event chunks (halving chunk sizes down to single events) while
    the failure reproduces, spending at most [budget] (default 200) runs.
    Returns the smallest failing schedule found with its run. If the input
    schedule does not fail, it is returned unchanged. *)

val replay_line : params -> Schedule.t -> string
(** A [bftctl fuzz] command line that reproduces the run exactly,
    including any non-default liveness/exploration flags. *)

type fuzz_outcome = {
  seeds_run : int;
  failing : (int * run_result) list;  (** seed, shrunk failing run *)
  live_incomplete : int;
      (** runs that timed out before completing every op (not a safety
          failure: the schedule may simply starve progress) *)
  total_view_changes : int;
  total_completed : int;
}

val fuzz :
  ?progress:(seed:int -> run_result -> unit) -> params -> seeds:int -> fuzz_outcome
(** Run seeds [params.seed, params.seed + seeds); on each failure, shrink
    it before recording. [progress] is called after every seed. *)

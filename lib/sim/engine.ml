type time = int64

(* The heap below is the simulator's hottest loop (PR 2, lifted again in
   PR 9): every index is kept in bounds by the size counter, so the
   unchecked array accesses are justified here. *)
[@@@lint.allow "unsafe-op"]

(* The event queue is a struct-of-arrays binary min-heap ordered by
   (fire time, scheduling sequence): the sequence number breaks ties so
   same-time events fire in FIFO scheduling order. Cancellation is lazy —
   a cancelled event stays in the heap and is discarded when it surfaces.
   To keep observable behavior identical to the boxed-record queue this
   replaces, a surfacing cancelled event still advances the clock and
   counts as a step (only its thunk is skipped); [pending_events] counts
   live events only, via a shared counter the handle can reach (a cancel
   has no engine in scope).

   Layout: fire times and sequence numbers live in plain [int array]s so
   the sift loops compare unboxed ints with no pointer chasing (virtual
   nanoseconds fit comfortably in 63 bits — ~146 years); the handle,
   label and thunk for each slot live in parallel payload arrays that are
   only touched when a slot actually moves. There is no per-event record
   at all — scheduling allocates exactly one [handle] — and vacated tail
   slots are scrubbed on pop so fired thunks and their closures are never
   retained by the heap. *)

type handle = {
  mutable state : [ `Pending | `Fired | `Cancelled ];
  live : int ref; (* the owning engine's live-event counter *)
}

type t = {
  mutable clock : int; (* virtual ns, unboxed *)
  (* boxed mirror of [clock], synced lazily by [now]: [step] advances the
     clock with a plain int store, and the box is (re)allocated at most
     once per observed clock change instead of once per event *)
  mutable clock_box : time;
  (* struct-of-arrays heap; slots [0, size) are the queue *)
  mutable at_a : int array;
  mutable seq_a : int array;
  mutable handle_a : handle array;
  mutable label_a : string option array;
  mutable thunk_a : (unit -> unit) array;
  mutable size : int;
  mutable seq : int;
  live : int ref;
  rng : Bft_util.Rng.t;
  mutable fired : int; (* live thunks actually run *)
  mutable max_size : int; (* heap occupancy high-water mark *)
}

let dummy_thunk = ignore
let dummy_handle = { state = `Fired; live = ref 0 }

let create ?(seed = 1L) () =
  {
    clock = 0;
    clock_box = 0L;
    at_a = [||];
    seq_a = [||];
    handle_a = [||];
    label_a = [||];
    thunk_a = [||];
    size = 0;
    seq = 0;
    live = ref 0;
    rng = Bft_util.Rng.create seed;
    fired = 0;
    max_size = 0;
  }

let now t =
  if Int64.to_int t.clock_box <> t.clock then t.clock_box <- Int64.of_int t.clock;
  t.clock_box

let rng t = t.rng

(* Hole-movement sift on the parallel arrays: comparisons touch only the
   int arrays; payload slots are written once per level moved. *)
let sift_up t i =
  let at_a = t.at_a
  and seq_a = t.seq_a
  and handle_a = t.handle_a
  and label_a = t.label_a
  and thunk_a = t.thunk_a in
  let at = Array.unsafe_get at_a i and sq = Array.unsafe_get seq_a i in
  (* fast path: a freshly pushed event that is not earlier than its parent
     (the common case — most schedules land in the future) stays put, with
     no payload rewrite *)
  if
    i = 0
    ||
    let parent = (i - 1) / 2 in
    let pat = Array.unsafe_get at_a parent in
    pat < at || (pat = at && Array.unsafe_get seq_a parent < sq)
  then ()
  else begin
  let h = Array.unsafe_get handle_a i
  and lb = Array.unsafe_get label_a i
  and th = Array.unsafe_get thunk_a i in
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pat = Array.unsafe_get at_a parent in
    if pat > at || (pat = at && Array.unsafe_get seq_a parent > sq) then begin
      Array.unsafe_set at_a !i pat;
      Array.unsafe_set seq_a !i (Array.unsafe_get seq_a parent);
      Array.unsafe_set handle_a !i (Array.unsafe_get handle_a parent);
      Array.unsafe_set label_a !i (Array.unsafe_get label_a parent);
      Array.unsafe_set thunk_a !i (Array.unsafe_get thunk_a parent);
      i := parent
    end
    else continue := false
  done;
    Array.unsafe_set at_a !i at;
    Array.unsafe_set seq_a !i sq;
    Array.unsafe_set handle_a !i h;
    Array.unsafe_set label_a !i lb;
    Array.unsafe_set thunk_a !i th
  end

let sift_down t size i =
  let at_a = t.at_a
  and seq_a = t.seq_a
  and handle_a = t.handle_a
  and label_a = t.label_a
  and thunk_a = t.thunk_a in
  let at = Array.unsafe_get at_a i and sq = Array.unsafe_get seq_a i in
  let h = Array.unsafe_get handle_a i
  and lb = Array.unsafe_get label_a i
  and th = Array.unsafe_get thunk_a i in
  let i = ref i in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= size then continue := false
    else begin
      let r = l + 1 in
      let child =
        if
          r < size
          &&
          let rat = Array.unsafe_get at_a r and lat = Array.unsafe_get at_a l in
          rat < lat || (rat = lat && Array.unsafe_get seq_a r < Array.unsafe_get seq_a l)
        then r
        else l
      in
      let cat = Array.unsafe_get at_a child in
      if cat < at || (cat = at && Array.unsafe_get seq_a child < sq) then begin
        Array.unsafe_set at_a !i cat;
        Array.unsafe_set seq_a !i (Array.unsafe_get seq_a child);
        Array.unsafe_set handle_a !i (Array.unsafe_get handle_a child);
        Array.unsafe_set label_a !i (Array.unsafe_get label_a child);
        Array.unsafe_set thunk_a !i (Array.unsafe_get thunk_a child);
        i := child
      end
      else continue := false
    end
  done;
  Array.unsafe_set at_a !i at;
  Array.unsafe_set seq_a !i sq;
  Array.unsafe_set handle_a !i h;
  Array.unsafe_set label_a !i lb;
  Array.unsafe_set thunk_a !i th

let grow t =
  let cap = max 64 (2 * Array.length t.at_a) in
  let at_a = Array.make cap 0
  and seq_a = Array.make cap 0
  and handle_a = Array.make cap dummy_handle
  and label_a = Array.make cap None
  and thunk_a = Array.make cap dummy_thunk in
  Array.blit t.at_a 0 at_a 0 t.size;
  Array.blit t.seq_a 0 seq_a 0 t.size;
  Array.blit t.handle_a 0 handle_a 0 t.size;
  Array.blit t.label_a 0 label_a 0 t.size;
  Array.blit t.thunk_a 0 thunk_a 0 t.size;
  t.at_a <- at_a;
  t.seq_a <- seq_a;
  t.handle_a <- handle_a;
  t.label_a <- label_a;
  t.thunk_a <- thunk_a

let push t ~at ~seq ~handle ~label ~thunk =
  if t.size = Array.length t.at_a then grow t;
  let i = t.size in
  Array.unsafe_set t.at_a i at;
  Array.unsafe_set t.seq_a i seq;
  Array.unsafe_set t.handle_a i handle;
  Array.unsafe_set t.label_a i label;
  Array.unsafe_set t.thunk_a i thunk;
  t.size <- i + 1;
  sift_up t i;
  if t.size > t.max_size then t.max_size <- t.size

let schedule_at_i ?label t at thunk =
  let at = if at < t.clock then t.clock else at in
  let seq = t.seq in
  t.seq <- t.seq + 1;
  let handle = { state = `Pending; live = t.live } in
  push t ~at ~seq ~handle ~label ~thunk;
  incr t.live;
  handle

let schedule_at ?label t at thunk = schedule_at_i ?label t (Int64.to_int at) thunk

let schedule ?label t ~delay thunk =
  if Int64.compare delay 0L < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at_i ?label t (t.clock + Int64.to_int delay) thunk

let cancel handle =
  if handle.state = `Pending then begin
    handle.state <- `Cancelled;
    decr handle.live
  end

let is_pending handle = handle.state = `Pending
let pending_events t = !(t.live)

let step t =
  if t.size = 0 then false
  else begin
    let at = Array.unsafe_get t.at_a 0 in
    let handle = Array.unsafe_get t.handle_a 0 in
    let thunk = Array.unsafe_get t.thunk_a 0 in
    let last = t.size - 1 in
    t.size <- last;
    if last > 0 then begin
      Array.unsafe_set t.at_a 0 (Array.unsafe_get t.at_a last);
      Array.unsafe_set t.seq_a 0 (Array.unsafe_get t.seq_a last);
      Array.unsafe_set t.handle_a 0 (Array.unsafe_get t.handle_a last);
      Array.unsafe_set t.label_a 0 (Array.unsafe_get t.label_a last);
      Array.unsafe_set t.thunk_a 0 (Array.unsafe_get t.thunk_a last)
    end;
    (* scrub the vacated tail slot so the heap never retains a fired
       event's closure or handle *)
    Array.unsafe_set t.handle_a last dummy_handle;
    Array.unsafe_set t.label_a last None;
    Array.unsafe_set t.thunk_a last dummy_thunk;
    if last > 1 then sift_down t last 0;
    if at <> t.clock then begin
      t.clock <- at;
      t.clock_box <- Int64.of_int at
    end;
    if handle.state = `Pending then begin
      handle.state <- `Fired;
      decr t.live;
      t.fired <- t.fired + 1;
      thunk ()
    end;
    true
  end

let events_fired t = t.fired
let max_heap_size t = t.max_size

(* Live-event introspection for the explorer: an O(size) scan of the heap
   arrays (slots [0, size) hold the queue in heap order, not sorted
   order), skipping lazily-cancelled entries. Builds one list per call —
   for the explorer's step loop, not the simulation hot path. *)
let live_events t =
  let acc = ref [] in
  for i = t.size - 1 downto 0 do
    if (Array.unsafe_get t.handle_a i).state = `Pending then
      acc :=
        (Array.unsafe_get t.at_a i, Array.unsafe_get t.seq_a i, Array.unsafe_get t.label_a i)
        :: !acc
  done;
  List.sort
    (fun (a, sa, _) (b, sb, _) ->
      match Int.compare a b with 0 -> Int.compare sa sb | c -> c)
    !acc
  |> List.map (fun (at, _, label) -> (Int64.of_int at, label))

(* Sentinel scan: a plain int minimum over the live slots, allocating only
   the final [Some] — nothing per candidate (the old option-accumulating
   scan allocated on every improvement). *)
let next_live_time t =
  let best = ref max_int in
  for i = 0 to t.size - 1 do
    let at = Array.unsafe_get t.at_a i in
    if at < !best && (Array.unsafe_get t.handle_a i).state = `Pending then best := at
  done;
  if !best = max_int then None else Some (Int64.of_int !best)

let default_max_events = 100_000_000

let run ?until ?(max_events = default_max_events) t =
  let until_i = match until with None -> max_int | Some u -> Int64.to_int u in
  let rec loop remaining =
    if remaining <= 0 then ()
    else if t.size = 0 then ()
    else if Array.unsafe_get t.at_a 0 > until_i then ()
    else if step t then loop (remaining - 1)
  in
  loop max_events

let run_while t ?until pred =
  let until_i = match until with None -> max_int | Some u -> Int64.to_int u in
  let rec loop () =
    if not (pred ()) then false
    else if t.size = 0 then true
    else if Array.unsafe_get t.at_a 0 > until_i then true
    else begin
      ignore (step t);
      loop ()
    end
  in
  loop ()

let ns n = Int64.of_int n
let us n = Int64.of_int (n * 1_000)
let ms n = Int64.of_int (n * 1_000_000)
let sec n = Int64.of_int (n * 1_000_000_000)
let of_us_float f = Int64.of_float (f *. 1_000.0)
let to_us t = Int64.to_float t /. 1_000.0
let to_ms t = Int64.to_float t /. 1_000_000.0

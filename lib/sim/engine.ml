type time = int64

(* The heap below is the simulator's hottest loop (PR 2): every index is
   kept in bounds by the size counter, so the unchecked array accesses
   are justified here. *)
[@@@lint.allow "unsafe-op"]

(* The event queue is an array-backed binary min-heap ordered by
   (fire time, scheduling sequence): the sequence number breaks ties so
   same-time events fire in FIFO scheduling order, exactly like the
   Map.Make queue this replaces. Cancellation is lazy — a cancelled event
   stays in the heap and is discarded when it surfaces. To keep observable
   behavior identical to the old queue, a surfacing cancelled event still
   advances the clock and counts as a step (only its thunk is skipped);
   [pending_events], however, counts live events only, via a shared counter
   the handle can reach (a cancel has no engine in scope). *)

type handle = {
  mutable state : [ `Pending | `Fired | `Cancelled ];
  live : int ref; (* the owning engine's live-event counter *)
}

type event = {
  at : time;
  seq : int;
  handle : handle;
  label : string option; (* introspection tag for the explorer; inert otherwise *)
  thunk : unit -> unit;
}

type t = {
  mutable clock : time;
  mutable heap : event array; (* slots [0, size) are the heap *)
  mutable size : int;
  mutable seq : int;
  live : int ref;
  rng : Bft_util.Rng.t;
  mutable fired : int; (* live thunks actually run *)
  mutable max_size : int; (* heap occupancy high-water mark *)
}

let create ?(seed = 1L) () =
  {
    clock = 0L;
    heap = [||];
    size = 0;
    seq = 0;
    live = ref 0;
    rng = Bft_util.Rng.create seed;
    fired = 0;
    max_size = 0;
  }

let now t = t.clock
let rng t = t.rng

let[@inline] earlier a b =
  match Int64.compare a.at b.at with 0 -> a.seq < b.seq | c -> c < 0

let sift_up heap i =
  let ev = Array.unsafe_get heap i in
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let p = Array.unsafe_get heap parent in
    if earlier ev p then begin
      Array.unsafe_set heap !i p;
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set heap !i ev

let sift_down heap size i =
  let ev = Array.unsafe_get heap i in
  let i = ref i in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= size then continue := false
    else begin
      let r = l + 1 in
      let child =
        if r < size && earlier (Array.unsafe_get heap r) (Array.unsafe_get heap l)
        then r
        else l
      in
      let c = Array.unsafe_get heap child in
      if earlier c ev then begin
        Array.unsafe_set heap !i c;
        i := child
      end
      else continue := false
    end
  done;
  Array.unsafe_set heap !i ev

let push t ev =
  if t.size = Array.length t.heap then begin
    let cap = max 64 (2 * Array.length t.heap) in
    let heap = Array.make cap ev in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end;
  Array.unsafe_set t.heap t.size ev;
  sift_up t.heap t.size;
  t.size <- t.size + 1;
  if t.size > t.max_size then t.max_size <- t.size

let pop t =
  let ev = Array.unsafe_get t.heap 0 in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    Array.unsafe_set t.heap 0 (Array.unsafe_get t.heap t.size);
    sift_down t.heap t.size 0
  end;
  ev

let schedule_at ?label t at thunk =
  let at = if Int64.compare at t.clock < 0 then t.clock else at in
  let seq = t.seq in
  t.seq <- t.seq + 1;
  let handle = { state = `Pending; live = t.live } in
  push t { at; seq; handle; label; thunk };
  incr t.live;
  handle

let schedule ?label t ~delay thunk =
  if Int64.compare delay 0L < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at ?label t (Int64.add t.clock delay) thunk

let cancel handle =
  if handle.state = `Pending then begin
    handle.state <- `Cancelled;
    decr handle.live
  end

let is_pending handle = handle.state = `Pending
let pending_events t = !(t.live)

let step t =
  if t.size = 0 then false
  else begin
    let ev = pop t in
    t.clock <- ev.at;
    if ev.handle.state = `Pending then begin
      ev.handle.state <- `Fired;
      decr t.live;
      t.fired <- t.fired + 1;
      ev.thunk ()
    end;
    true
  end

let events_fired t = t.fired
let max_heap_size t = t.max_size

(* Live-event introspection for the explorer: an O(size) scan of the heap
   array (slots [0, size) hold the queue in heap order, not sorted order),
   skipping lazily-cancelled entries. The scan allocates per call, so it is
   for the explorer's step loop, not the simulation hot path. *)
let live_events t =
  let acc = ref [] in
  for i = t.size - 1 downto 0 do
    let ev = Array.unsafe_get t.heap i in
    if ev.handle.state = `Pending then acc := (ev.at, ev.seq, ev.label) :: !acc
  done;
  List.sort
    (fun (a, sa, _) (b, sb, _) ->
      match Int64.compare a b with 0 -> Int.compare sa sb | c -> c)
    !acc
  |> List.map (fun (at, _, label) -> (at, label))

let next_live_time t =
  let best = ref None in
  for i = 0 to t.size - 1 do
    let ev = Array.unsafe_get t.heap i in
    if ev.handle.state = `Pending then
      match !best with
      | Some b when Int64.compare b ev.at <= 0 -> ()
      | _ -> best := Some ev.at
  done;
  !best

let default_max_events = 100_000_000

let next_time t = if t.size = 0 then None else Some (Array.unsafe_get t.heap 0).at

let run ?until ?(max_events = default_max_events) t =
  let rec loop remaining =
    if remaining <= 0 then ()
    else
      match next_time t with
      | None -> ()
      | Some at ->
          let past_deadline =
            match until with None -> false | Some u -> Int64.compare at u > 0
          in
          if past_deadline then ()
          else if step t then loop (remaining - 1)
  in
  loop max_events

let run_while t ?until pred =
  let rec loop () =
    if not (pred ()) then false
    else
      match next_time t with
      | None -> true
      | Some at ->
          let past_deadline =
            match until with None -> false | Some u -> Int64.compare at u > 0
          in
          if past_deadline then true
          else begin
            ignore (step t);
            loop ()
          end
  in
  loop ()

let ns n = Int64.of_int n
let us n = Int64.of_int (n * 1_000)
let ms n = Int64.of_int (n * 1_000_000)
let sec n = Int64.of_int (n * 1_000_000_000)
let of_us_float f = Int64.of_float (f *. 1_000.0)
let to_us t = Int64.to_float t /. 1_000.0
let to_ms t = Int64.to_float t /. 1_000_000.0

(** Deterministic discrete-event simulation engine.

    Virtual time is measured in integer nanoseconds. Events scheduled at the
    same instant fire in scheduling order (a monotonically increasing tie
    break), so a run is fully determined by the seed and the program. The
    engine replaces the asynchronous Internet of the paper's system model:
    no component ever relies on virtual-time bounds for safety; timers only
    drive retransmissions, view changes and watchdog recoveries.

    The engine and every callback run on a single domain. The one source
    of parallelism in the tree — [Bft_crypto.Vpool]'s verification
    workers — executes strictly inside a callback, behind the pool's
    deterministic-merge boundary, and never schedules, fires, cancels or
    observes events: virtual time and event order are independent of
    [BFT_DOMAINS]. *)

type t

type time = int64
(** Virtual nanoseconds since simulation start. *)

type handle
(** A scheduled event, cancellable. *)

val create : ?seed:int64 -> unit -> t
val now : t -> time
val rng : t -> Bft_util.Rng.t
(** The engine's root RNG; derive sub-streams with {!Bft_util.Rng.split}. *)

val schedule : ?label:string -> t -> delay:time -> (unit -> unit) -> handle
(** Run the thunk [delay] nanoseconds from now. [delay < 0] is an error.
    [label] tags the event for {!live_events}; it has no effect on
    execution. *)

val schedule_at : ?label:string -> t -> time -> (unit -> unit) -> handle
(** Run the thunk at an absolute time (clamped to [now]). *)

val cancel : handle -> unit
(** Cancelling an already-fired or cancelled event is a no-op. *)

val is_pending : handle -> bool

val pending_events : t -> int
(** Number of live (scheduled, not yet fired or cancelled) events.
    Cancelled events awaiting lazy removal from the queue are not
    counted. *)

val events_fired : t -> int
(** Total live events executed since creation (cancelled events that
    surface and are skipped are not counted). *)

val max_heap_size : t -> int
(** Deepest the event queue has ever been, including cancelled events
    awaiting lazy removal — the scheduler's memory high-water mark. *)

val live_events : t -> (time * string option) list
(** The enabled-event set: every live (pending) event as
    [(fire time, label)], sorted by (time, scheduling order). Cancelled
    events awaiting lazy removal are excluded. O(heap size) — intended for
    the exhaustive explorer's step loop, not the simulation hot path. *)

val next_live_time : t -> time option
(** Fire time of the earliest live event, if any. Unlike the heap root,
    this skips lazily-cancelled entries. *)

val step : t -> bool
(** Execute the next event. Returns [false] when the queue is empty.
    A cancelled event surfacing from the queue still advances the clock
    and returns [true]; only its thunk is skipped. *)

val run : ?until:time -> ?max_events:int -> t -> unit
(** Drain the event queue, stopping when it is empty, when virtual time
    would pass [until], or after [max_events] events (default 100 million,
    a runaway guard). *)

val run_while : t -> ?until:time -> (unit -> bool) -> bool
(** Run while the predicate is true; returns the final predicate value
    (so [false] means the condition was achieved, [true] means the queue
    emptied or the deadline passed first). *)

(** {2 Time helpers} *)

val ns : int -> time
val us : int -> time
val ms : int -> time
val sec : int -> time
val of_us_float : float -> time
val to_us : time -> float
val to_ms : time -> float

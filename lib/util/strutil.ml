let contains_sub hay sub =
  let lh = String.length hay and ls = String.length sub in
  let rec go i = i + ls <= lh && (String.equal (String.sub hay i ls) sub || go (i + 1)) in
  go 0

let hex_chars = "0123456789abcdef"

let encode s =
  let n = String.length s in
  let b = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code s.[i] in
    Bytes.set b (2 * i) hex_chars.[c lsr 4];
    Bytes.set b ((2 * i) + 1) hex_chars.[c land 0xf]
  done;
  (* freeze idiom: [b] is never written again after this point *)
  (Bytes.unsafe_to_string b [@lint.allow "unsafe-op"])

let nibble c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hex.decode: non-hex character"

let decode h =
  let n = String.length h in
  if n mod 2 <> 0 then invalid_arg "Hex.decode: odd length";
  String.init (n / 2) (fun i ->
      Char.chr ((nibble h.[2 * i] lsl 4) lor nibble h.[(2 * i) + 1]))

let short ?(len = 8) d =
  let h = encode d in
  if String.length h <= len then h else String.sub h 0 len

(** Small string helpers shared across the tree (the lint pass, tests and
    drivers all need naive substring search; one definition, one test). *)

val contains_sub : string -> string -> bool
(** [contains_sub hay sub] is [true] iff [sub] occurs contiguously in
    [hay]. [contains_sub s ""] is [true] for every [s]. *)

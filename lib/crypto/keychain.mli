(** Pairwise session keys between principals, with refresh epochs.

    Node identifiers are plain integers: the protocol layer assigns replicas
    ids [0..n-1] and clients larger ids. A directional session key
    [k(i -> j)] authenticates messages sent from [i] to [j]; it is generated
    by the {e receiver} [j] and distributed in new-key messages (Section
    4.3.1 of the paper). Each key carries the epoch in which it was created;
    BFT-PR rejects messages authenticated with keys from old epochs. *)

type t

type key = { secret : string; epoch : int }

val create : my_id:int -> t
(** Empty keychain for principal [my_id]. *)

val my_id : t -> int

val fresh_in_key : t -> Bft_util.Rng.t -> peer:int -> key
(** Generate a new key that [peer] must use to send to us, advance the
    local epoch for that direction, install it as the current in-key, and
    return it so that it can be shipped to [peer] in a new-key message. *)

val install_out_key : t -> peer:int -> key -> bool
(** Install the key we must use to send to [peer], as received from a
    new-key message. Returns [false] (and ignores the key) if its epoch is
    not newer than the currently installed one — stale new-key messages are
    rejected, preventing suppress-replay attacks. *)

val out_key : t -> peer:int -> key option
(** Current key for authenticating messages we send to [peer]. *)

val in_key : t -> peer:int -> key option
(** Current key [peer] should be using to send to us. *)

val out_key_pre : t -> peer:int -> (key * Hmac.precomputed) option
(** Like {!out_key}, paired with the cached HMAC key-block midstates for
    that key. The cache is invalidated automatically when a key with a
    newer epoch is installed. *)

val in_key_pre : t -> peer:int -> (key * Hmac.precomputed) option
(** Like {!in_key}, with cached midstates (see {!out_key_pre}). *)

val in_epoch : t -> peer:int -> int
(** Epoch of the current in-key for [peer]; 0 when none. Peers covered
    only by an installed {!group} report epoch 1 (derived keys are
    epoch-1 by construction). *)

(** {2 Group-derived keys}

    One shared secret standing in for the pairwise session keys of a
    contiguous range of principal ids — the million-client cohort setup,
    where materializing [k * n] pairwise keys (let alone their HMAC
    midstate caches) is out of the question. A directional key is derived
    on demand as [HMAC(group_secret, "key:src>dst")] at epoch 1, resuming
    the group secret's cached key-block midstates. Derived keys are not
    cached at the keychain: {!Auth.verify_batch}'s per-flush sender memo
    already shares one derivation (and its precompute) across a batch,
    which keeps replica-side memory O(1) in the range size. *)

type group

val group : first:int -> last:int -> secret:string -> group
(** Shared group over principal ids [first..last] (inclusive). Raises
    [Invalid_argument] on an empty range. *)

val group_first : group -> int
val group_last : group -> int
val group_mem : group -> int -> bool

val group_derive : group -> src:int -> dst:int -> key * Hmac.precomputed
(** The directional key [src -> dst] with its key-block midstates.
    Deterministic: every call for the same pair returns the same key. *)

val group_derivations : group -> int
(** Number of on-demand derivations performed through this group — lets
    tests assert that a batched flush derives each sender's key once. *)

val set_group : t -> group -> unit
(** Install the group as a fallback: {!in_key_pre} / {!out_key_pre} /
    {!in_epoch} derive on the fly for in-range peers that have no
    explicitly installed pairwise key (installed keys always win). *)

val group_of : t -> group option

val drop_all_in_keys : t -> unit
(** Forget every in-key (used on recovery: the old keys may be known to an
    attacker, so all peers are forced to obtain fresh keys). *)

val peers_with_out_keys : t -> int list

(* Hand-rolled verification pool (no Domainslib): persistent worker domains
   sleep on a condition variable; each flush publishes one batch record and
   bumps a generation counter to wake them.

   Determinism comes from the merge boundary: results land in a [bool
   array] at the submission index of their job, so the simulator consumes
   them in submission order regardless of completion order. Parallelism is
   wall-clock only — nothing here can perturb virtual time.

   Correctness notes (OCaml memory model):

   - The batch record (jobs, results, claim/pending atomics) is written by
     the submitter before it takes the mutex to bump [generation]; a worker
     reads [current] under the same mutex, so the record and its jobs are
     fully visible when the worker starts claiming.

   - Claim and completion counters live in the batch record, not the pool:
     a slow worker waking from batch N holds N's (exhausted) claim counter
     and can never steal an index from batch N+1. Fresh atomics per flush
     make stale workers harmless by construction.

   - A worker writes [results.(i)] and then [Atomic.decr pending]; the
     submitter spins until [pending = 0]. Each decrement reads the one
     before it, so observing zero happens-after every result write.

   - Jobs are pure reads of immutable strings and HMAC midstates; the
     SHA-256 one-shot scratch they share is domain-local (Domain.DLS in
     [Sha256]), so concurrent verification never aliases mutable state. *)

type job =
  | Verify_mac of { pre : Hmac.precomputed; tag : string; msg : string }
  | Check_digest of { expect : string; msg : string }

let exec = function
  | Verify_mac { pre; tag; msg } -> Hmac.verify_precomputed pre ~tag msg
  | Check_digest { expect; msg } -> String.equal expect (Sha256.digest msg)

type batch = {
  b_jobs : job array;
  b_results : bool array;
  b_next : int Atomic.t;  (* next unclaimed job index *)
  b_pending : int Atomic.t;  (* jobs not yet completed *)
}

type t = {
  n_domains : int;
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  cv : Condition.t;
  mutable generation : int;  (* bumped once per parallel flush *)
  mutable current : batch option;
  mutable stop : bool;
  (* counters, touched only by the submitting domain *)
  mutable c_batches : int;
  mutable c_parallel : int;
  mutable c_items : int;
  mutable c_helped : int;
  mutable c_hwm : int;
}

let domains t = t.n_domains

(* Claim and execute jobs until the batch is exhausted; returns how many
   this domain executed. *)
let drain b =
  let n = Array.length b.b_jobs in
  let rec claim k =
    let i = Atomic.fetch_and_add b.b_next 1 in
    if i < n then begin
      Array.unsafe_set b.b_results i (exec (Array.unsafe_get b.b_jobs i));
      Atomic.decr b.b_pending;
      claim (k + 1)
    end
    else k
  in
  claim 0

let rec worker_loop t my_gen =
  Mutex.lock t.m;
  while (not t.stop) && t.generation = my_gen do
    Condition.wait t.cv t.m
  done;
  let stop = t.stop and gen = t.generation and b = t.current in
  Mutex.unlock t.m;
  if not stop then begin
    (match b with Some b -> ignore (drain b : int) | None -> ());
    worker_loop t gen
  end

let max_domains = 16

let create ~domains =
  let n_domains = max 1 (min max_domains domains) in
  (* On hosts without real parallelism (recommended_domain_count < 2),
     worker domains cannot pay for their wake-up/spin overhead: the smoke
     baseline measured speedup_vs_1 of 0.60/0.68 at 2/4 domains on a
     1-core box. Spawn no workers there — [run]'s existing
     [Array.length t.workers = 0] check then routes every batch through
     the sequential path. [domains t] still reports the requested width,
     so pool identity and reconfiguration logic are unaffected. *)
  let spawn_workers = Domain.recommended_domain_count () >= 2 in
  let t =
    {
      n_domains;
      workers = [||];
      m = Mutex.create ();
      cv = Condition.create ();
      generation = 0;
      current = None;
      stop = false;
      c_batches = 0;
      c_parallel = 0;
      c_items = 0;
      c_helped = 0;
      c_hwm = 0;
    }
  in
  if spawn_workers then
    t.workers <- Array.init (n_domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t 0));
  t

let shutdown t =
  if Array.length t.workers > 0 then begin
    Mutex.lock t.m;
    t.stop <- true;
    Condition.broadcast t.cv;
    Mutex.unlock t.m;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let run_inline jobs =
  let n = Array.length jobs in
  let results = Array.make n false in
  for i = 0 to n - 1 do
    Array.unsafe_set results i (exec (Array.unsafe_get jobs i))
  done;
  results

let run t jobs =
  let n = Array.length jobs in
  t.c_batches <- t.c_batches + 1;
  t.c_items <- t.c_items + n;
  if n > t.c_hwm then t.c_hwm <- n;
  if n = 0 then [||]
  else if Array.length t.workers = 0 || n < 2 then begin
    t.c_helped <- t.c_helped + n;
    run_inline jobs
  end
  else begin
    let b =
      {
        b_jobs = jobs;
        b_results = Array.make n false;
        b_next = Atomic.make 0;
        b_pending = Atomic.make n;
      }
    in
    Mutex.lock t.m;
    t.current <- Some b;
    t.generation <- t.generation + 1;
    Condition.broadcast t.cv;
    Mutex.unlock t.m;
    (* the submitter always participates; on a saturated host it may end up
       verifying the whole batch while the workers never get scheduled *)
    let mine = drain b in
    while Atomic.get b.b_pending > 0 do
      Domain.cpu_relax ()
    done;
    t.c_parallel <- t.c_parallel + 1;
    t.c_helped <- t.c_helped + mine;
    b.b_results
  end

type stats = {
  st_domains : int;
  st_batches : int;
  st_parallel_batches : int;
  st_items : int;
  st_helped : int;
  st_merge_hwm : int;
}

let stats t =
  {
    st_domains = t.n_domains;
    st_batches = t.c_batches;
    st_parallel_batches = t.c_parallel;
    st_items = t.c_items;
    st_helped = t.c_helped;
    st_merge_hwm = t.c_hwm;
  }

let reset_stats t =
  t.c_batches <- 0;
  t.c_parallel <- 0;
  t.c_items <- 0;
  t.c_helped <- 0;
  t.c_hwm <- 0

let worker_fraction st =
  if st.st_items = 0 then 0.0
  else float_of_int (st.st_items - st.st_helped) /. float_of_int st.st_items

(* Default process-wide pool. Entry points (test runner, bench, bftctl)
   pick the domain count — e.g. from BFT_DOMAINS — and thread it in here;
   library code never reads the environment (lint: determinism-getenv). *)

let requested = ref 1
let global : t option ref = ref None
let cleanup_registered = ref false

let default_domains () = !requested

let set_default_domains n =
  let n = max 1 (min max_domains n) in
  requested := n;
  match !global with
  | Some p when p.n_domains <> n ->
      shutdown p;
      global := None
  | _ -> ()

let default () =
  match !global with
  | Some p -> p
  | None ->
      let p = create ~domains:!requested in
      global := Some p;
      if not !cleanup_registered then begin
        cleanup_registered := true;
        (* join workers before runtime teardown *)
        at_exit (fun () -> match !global with Some p -> shutdown p | None -> ())
      end;
      p

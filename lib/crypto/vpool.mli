(** Domain-based crypto verification pool with a deterministic merge
    boundary.

    Receivers batch independent verification work — HMAC tag checks and
    SHA-256 digest checks — and flush it through {!run}. Jobs are verified
    by worker domains (plus the submitting domain, which always
    participates), and results come back as a [bool array] indexed by
    submission order: [results.(i)] answers [jobs.(i)] no matter which
    domain computed it or in what order the workers finished. That merge
    boundary is what keeps the simulator byte-deterministic — virtual time,
    charge accounting and protocol decisions consume results in submission
    order, so [BFT_DOMAINS=1] and [BFT_DOMAINS=8] produce identical
    histories and the parallelism is wall-clock only.

    Jobs must be independent and pure: they read immutable strings and
    precomputed HMAC midstates, and touch no simulator state. The
    [domain-containment] lint rule keeps {!Domain}/{!Atomic}/{!Mutex}/
    {!Condition} usage fenced into this module (plus the domain-local
    scratch in {!Sha256}). *)

type job =
  | Verify_mac of { pre : Hmac.precomputed; tag : string; msg : string }
      (** Recompute the (truncated) HMAC of [msg] under the precomputed
          key blocks and compare against [tag] in constant time. *)
  | Check_digest of { expect : string; msg : string }
      (** SHA-256 [msg] and compare against [expect]. *)

type t

val create : domains:int -> t
(** Pool that verifies with [domains] domains in total: the submitting
    domain plus [domains - 1] spawned workers (clamped to [1, 16]).
    [domains = 1] spawns nothing and {!run} executes inline. *)

val domains : t -> int

val run : t -> job array -> bool array
(** Verify every job, in parallel when the pool has workers and the batch
    has at least two jobs. [results.(i)] is the verdict for [jobs.(i)]
    (the deterministic merge). The caller must not mutate [jobs] during
    the call. Not reentrant: one batch at a time per pool. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent; {!run} after shutdown
    executes inline. *)

(** {2 Counters}

    Cumulative since creation (or the last {!reset_stats}), maintained
    only by the submitting domain — reading them never races workers. *)

type stats = {
  st_domains : int;  (** configured verifying domains *)
  st_batches : int;  (** batches flushed through {!run} *)
  st_parallel_batches : int;  (** batches that fanned out to workers *)
  st_items : int;  (** total jobs verified *)
  st_helped : int;  (** jobs executed by the submitting domain *)
  st_merge_hwm : int;  (** largest single batch merged (high-water mark) *)
}

val stats : t -> stats
val reset_stats : t -> unit

val worker_fraction : stats -> float
(** Fraction of items verified by spawned workers rather than the
    submitting domain: [(st_items - st_helped) / st_items], [0.] when no
    items. Clock-free proxy for worker utilisation. *)

(** {2 Default pool}

    Process-wide pool used by call sites that are not handed one
    explicitly. The domain count is configured by the entry point (test
    runner, bench, bftctl) — library code never reads the environment. *)

val set_default_domains : int -> unit
(** Request [n] total domains for the default pool (clamped to [1, 16]).
    If a default pool already exists with a different count it is shut
    down and lazily recreated on the next {!default}. *)

val default_domains : unit -> int
(** Currently requested default domain count (initially 1). *)

val default : unit -> t
(** The process-wide pool, created on first use with
    {!default_domains} domains. *)

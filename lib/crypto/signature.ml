type signer = { id : int; pre : Hmac.precomputed }

(* id -> (secret, key-block midstates). The midstates are computed once at
   registration and resumed for every verification, so the per-signature
   key-block hashing (2 SHA-256 blocks) is paid per key, not per message —
   the same resumable-midstate discipline as [Keychain.in_key_pre]. Tags
   are byte-identical to the one-shot path by construction:
   [Hmac.mac ~key msg = Hmac.mac_precomputed (Hmac.precompute ~key) msg]. *)
type registry = (int, string * Hmac.precomputed) Hashtbl.t

type t = { signer_id : int; tag : string }

let create_registry () : registry = Hashtbl.create 16

let register registry rng id =
  let secret = Bft_util.Rng.bytes rng 32 in
  let pre = Hmac.precompute ~key:secret in
  Hashtbl.replace registry id (secret, pre);
  { id; pre }

let sign signer msg = { signer_id = signer.id; tag = Hmac.mac_precomputed signer.pre msg }
let signer_id signer = signer.id

let verify registry t msg =
  match Hashtbl.find_opt registry t.signer_id with
  | None -> false
  | Some (_, pre) -> Hmac.verify_precomputed pre ~tag:t.tag msg

let forge ~signer_id = { signer_id; tag = String.make 32 '\x00' }

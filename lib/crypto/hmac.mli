(** HMAC-SHA256 (RFC 2104). *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte HMAC-SHA256 tag. *)

val mac_truncated : key:string -> int -> string -> string
(** [mac_truncated ~key n msg] is the first [n] bytes of the tag. The BFT
    library uses 8-byte tags (UMAC32-sized) in authenticators. *)

val verify : key:string -> tag:string -> string -> bool
(** Constant-time comparison of [tag] against the recomputed (possibly
    truncated) tag of the message. *)

(** {2 Key-block precomputation}

    HMAC absorbs two fixed 64-byte key pads per MAC. [precompute] hashes
    them once and snapshots the SHA-256 midstates; MACs over short messages
    then cost roughly half the compressions. Tags are bit-identical to the
    one-shot functions above. *)

type precomputed

val precompute : key:string -> precomputed
val mac_precomputed : precomputed -> string -> string
val mac_truncated_precomputed : precomputed -> int -> string -> string
val verify_precomputed : precomputed -> tag:string -> string -> bool

let tag_size = 8

type mac = { tag : string; epoch : int }
type authenticator = (int * mac) list

let compute_mac keychain ~peer msg =
  match Keychain.out_key_pre keychain ~peer with
  | None -> None
  | Some (key, pre) ->
      Some { tag = Hmac.mac_truncated_precomputed pre tag_size msg; epoch = key.epoch }

let verify_mac keychain ~peer mac msg =
  match Keychain.in_key_pre keychain ~peer with
  | None -> false
  | Some (key, pre) ->
      key.epoch = mac.epoch && Hmac.verify_precomputed pre ~tag:mac.tag msg

let compute_authenticator keychain ~receivers msg =
  List.filter_map
    (fun peer ->
      if peer = Keychain.my_id keychain then None
      else
        match compute_mac keychain ~peer msg with
        | None -> None
        | Some mac -> Some (peer, mac))
    receivers

let verify_authenticator keychain ~peer auth msg =
  match List.assoc_opt (Keychain.my_id keychain) auth with
  | None -> false
  | Some mac -> verify_mac keychain ~peer mac msg

(* Batched verification keyed by sender: one in-key lookup (and hence one
   cached HMAC key-block precompute) per sender per flush, with the actual
   tag/digest recomputation fanned out through the verification pool.
   [results.(i)] answers [items.(i)] — the pool's deterministic merge —
   and is exactly what the sequential [verify_mac]/[verify_authenticator]
   path would have returned for that item. Items whose key is missing,
   whose epoch is stale, or whose authenticator has no entry for us are
   decided false up front without a pool job. *)

type batch_item =
  | Item_mac of { peer : int; mac : mac; msg : string }
  | Item_auth of { peer : int; auth : authenticator; msg : string }
  | Item_digest of { expect : string; msg : string }

let verify_batch ?pool keychain items =
  let n = Array.length items in
  let results = Array.make n false in
  if n > 0 then begin
    (* the single-token case (every envelope verify) skips the per-sender
       memo: one direct key lookup, no Hashtbl *)
    let key_for =
      if n = 1 then fun peer -> Keychain.in_key_pre keychain ~peer
      else begin
        let keys = Hashtbl.create 8 in
        fun peer ->
          match Hashtbl.find_opt keys peer with
          | Some k -> k
          | None ->
              let k = Keychain.in_key_pre keychain ~peer in
              Hashtbl.add keys peer k;
              k
      end
    in
    let my = Keychain.my_id keychain in
    let jobs = ref [] and slots = ref [] and n_jobs = ref 0 in
    let submit i job =
      jobs := job :: !jobs;
      slots := i :: !slots;
      incr n_jobs
    in
    for i = 0 to n - 1 do
      let mac_item peer (mac : mac) msg =
        match key_for peer with
        | Some (key, pre) when key.Keychain.epoch = mac.epoch ->
            submit i (Vpool.Verify_mac { pre; tag = mac.tag; msg })
        | _ -> () (* no session key or stale epoch: decided false *)
      in
      match items.(i) with
      | Item_mac { peer; mac; msg } -> mac_item peer mac msg
      | Item_auth { peer; auth; msg } -> (
          match List.assoc_opt my auth with
          | None -> () (* no entry for us: decided false *)
          | Some mac -> mac_item peer mac msg)
      | Item_digest { expect; msg } -> submit i (Vpool.Check_digest { expect; msg })
    done;
    if !n_jobs > 0 then begin
      let pool = match pool with Some p -> p | None -> Vpool.default () in
      let job_arr = Array.of_list (List.rev !jobs) in
      let verdicts = Vpool.run pool job_arr in
      List.iteri (fun k i -> results.(i) <- verdicts.(k)) (List.rev !slots)
    end
  end;
  results

let corrupt_entry auth receiver =
  List.map
    (fun (peer, mac) ->
      if peer = receiver then
        (peer, { mac with tag = String.map (fun c -> Char.chr (Char.code c lxor 0xff)) mac.tag })
      else (peer, mac))
    auth

let size auth = 8 + (tag_size * List.length auth)

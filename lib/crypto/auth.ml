let tag_size = 8

type mac = { tag : string; epoch : int }
type authenticator = (int * mac) list

let compute_mac keychain ~peer msg =
  match Keychain.out_key_pre keychain ~peer with
  | None -> None
  | Some (key, pre) ->
      Some { tag = Hmac.mac_truncated_precomputed pre tag_size msg; epoch = key.epoch }

let verify_mac keychain ~peer mac msg =
  match Keychain.in_key_pre keychain ~peer with
  | None -> false
  | Some (key, pre) ->
      key.epoch = mac.epoch && Hmac.verify_precomputed pre ~tag:mac.tag msg

let compute_authenticator keychain ~receivers msg =
  List.filter_map
    (fun peer ->
      if peer = Keychain.my_id keychain then None
      else
        match compute_mac keychain ~peer msg with
        | None -> None
        | Some mac -> Some (peer, mac))
    receivers

let verify_authenticator keychain ~peer auth msg =
  match List.assoc_opt (Keychain.my_id keychain) auth with
  | None -> false
  | Some mac -> verify_mac keychain ~peer mac msg

let corrupt_entry auth receiver =
  List.map
    (fun (peer, mac) ->
      if peer = receiver then
        (peer, { mac with tag = String.map (fun c -> Char.chr (Char.code c lxor 0xff)) mac.tag })
      else (peer, mac))
    auth

let size auth = 8 + (tag_size * List.length auth)

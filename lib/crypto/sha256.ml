(* SHA-256 over 32-bit words represented as OCaml ints (63-bit native ints on
   64-bit platforms).

   Hot-path notes: this hash runs under every MAC and digest in the
   simulator, and the build has no flambda, so nothing here relies on the
   inliner; the compression function is fully unrolled -- rounds, message
   schedule and word loads alike -- with round constants and indices written
   out literally (no helper calls, no module-field loads, no loop
   arithmetic).

   Message words load two bytes at a time through the unboxed
   [%caml_string_get16u] / [%bswap16] primitives (a tagged-int [lsr] costs
   three machine ops, so fewer/wider loads beat composing four chars).

   Rotations use bit replication: for a masked 32-bit word [x], the double
   word [y = x lor (x lsl 32)] turns every rotate-right into a single
   [y lsr n] (the wrap-around bits arrive from the replicated copy), so the
   three sigma rotations cost one replication plus three shifts instead of
   twelve shift/or/mask ops. The top replicated bit (bit 31 -> 63) falls off
   the 63-bit int, which is harmless because no shift here reaches past bit
   56. Masking is deferred: t1/t2 stay unmasked (sums of 32-bit values fit
   easily in 63 bits) and only values that feed a later replication are
   masked back to 32 bits.

   The a..h working state is in SSA form: each unrolled round binds just the
   two words it changes under fresh names and later rounds refer to the
   renamed variables, so the textbook "rotate the eight variables" step
   costs zero instructions. Choice and majority use the 3/4-op forms
   [ch = g lxor (e land (f lxor g))] and
   [maj = (a land b) lor (c land (a lor b))].

   Full 64-byte blocks compress directly from the source string instead of
   being staged through the context buffer, and the one-shot [digest]
   bypasses the streaming context entirely, hashing into domain-local
   scratch state (sound because [digest] never re-enters itself within a
   domain, and the Vpool worker domains each get their own scratch via
   Domain.DLS; the streaming [ctx] API stays allocation-per-use and safe). *)

let digest_size = 32

external unsafe_get16 : string -> int -> int = "%caml_string_get16u"
external bswap16 : int -> int = "%bswap16"

(* Compress one 64-byte block of [s] at [off] into state [h8] using
   schedule scratch [w]. Callers guarantee [off + 64 <= String.length s]. *)
let compress_block (h8 : int array) (w : int array) (s : string) off =
  for t = 0 to 15 do
    let o = off + (4 * t) in
    Array.unsafe_set w t
      ((bswap16 (unsafe_get16 s o) lsl 16) lor bswap16 (unsafe_get16 s (o + 2)))
  done;
  for t = 16 to 63 do
    let w15 = Array.unsafe_get w (t - 15) and w2 = Array.unsafe_get w (t - 2) in
    let y15 = w15 lor (w15 lsl 32) and y2 = w2 lor (w2 lsl 32) in
    let s0 = ((y15 lsr 7) lxor (y15 lsr 18) lxor (w15 lsr 3)) land 0xFFFFFFFF in
    let s1 = ((y2 lsr 17) lxor (y2 lsr 19) lxor (w2 lsr 10)) land 0xFFFFFFFF in
    Array.unsafe_set w t
      ((Array.unsafe_get w (t - 16) + s0 + Array.unsafe_get w (t - 7) + s1) land 0xFFFFFFFF)
  done;
  let a = Array.unsafe_get h8 0 and b = Array.unsafe_get h8 1 in
  let c = Array.unsafe_get h8 2 and d = Array.unsafe_get h8 3 in
  let e = Array.unsafe_get h8 4 and f = Array.unsafe_get h8 5 in
  let g = Array.unsafe_get h8 6 and h = Array.unsafe_get h8 7 in
  let ee = e lor (e lsl 32) in
  let t1 = h + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (g lxor (e land (f lxor g))) + 0x428a2f98 + Array.unsafe_get w 0 in
  let aa = a lor (a lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a land b) lor (c land (a lor b))) in
  let e0 = (d + t1) land 0xFFFFFFFF in
  let a0 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e0 lor (e0 lsl 32) in
  let t1 = g + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (f lxor (e0 land (e lxor f))) + 0x71374491 + Array.unsafe_get w 1 in
  let aa = a0 lor (a0 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a0 land a) lor (b land (a0 lor a))) in
  let e1 = (c + t1) land 0xFFFFFFFF in
  let a1 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e1 lor (e1 lsl 32) in
  let t1 = f + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e lxor (e1 land (e0 lxor e))) + 0xb5c0fbcf + Array.unsafe_get w 2 in
  let aa = a1 lor (a1 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a1 land a0) lor (a land (a1 lor a0))) in
  let e2 = (b + t1) land 0xFFFFFFFF in
  let a2 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e2 lor (e2 lsl 32) in
  let t1 = e + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e0 lxor (e2 land (e1 lxor e0))) + 0xe9b5dba5 + Array.unsafe_get w 3 in
  let aa = a2 lor (a2 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a2 land a1) lor (a0 land (a2 lor a1))) in
  let e3 = (a + t1) land 0xFFFFFFFF in
  let a3 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e3 lor (e3 lsl 32) in
  let t1 = e0 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e1 lxor (e3 land (e2 lxor e1))) + 0x3956c25b + Array.unsafe_get w 4 in
  let aa = a3 lor (a3 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a3 land a2) lor (a1 land (a3 lor a2))) in
  let e4 = (a0 + t1) land 0xFFFFFFFF in
  let a4 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e4 lor (e4 lsl 32) in
  let t1 = e1 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e2 lxor (e4 land (e3 lxor e2))) + 0x59f111f1 + Array.unsafe_get w 5 in
  let aa = a4 lor (a4 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a4 land a3) lor (a2 land (a4 lor a3))) in
  let e5 = (a1 + t1) land 0xFFFFFFFF in
  let a5 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e5 lor (e5 lsl 32) in
  let t1 = e2 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e3 lxor (e5 land (e4 lxor e3))) + 0x923f82a4 + Array.unsafe_get w 6 in
  let aa = a5 lor (a5 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a5 land a4) lor (a3 land (a5 lor a4))) in
  let e6 = (a2 + t1) land 0xFFFFFFFF in
  let a6 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e6 lor (e6 lsl 32) in
  let t1 = e3 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e4 lxor (e6 land (e5 lxor e4))) + 0xab1c5ed5 + Array.unsafe_get w 7 in
  let aa = a6 lor (a6 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a6 land a5) lor (a4 land (a6 lor a5))) in
  let e7 = (a3 + t1) land 0xFFFFFFFF in
  let a7 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e7 lor (e7 lsl 32) in
  let t1 = e4 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e5 lxor (e7 land (e6 lxor e5))) + 0xd807aa98 + Array.unsafe_get w 8 in
  let aa = a7 lor (a7 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a7 land a6) lor (a5 land (a7 lor a6))) in
  let e8 = (a4 + t1) land 0xFFFFFFFF in
  let a8 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e8 lor (e8 lsl 32) in
  let t1 = e5 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e6 lxor (e8 land (e7 lxor e6))) + 0x12835b01 + Array.unsafe_get w 9 in
  let aa = a8 lor (a8 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a8 land a7) lor (a6 land (a8 lor a7))) in
  let e9 = (a5 + t1) land 0xFFFFFFFF in
  let a9 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e9 lor (e9 lsl 32) in
  let t1 = e6 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e7 lxor (e9 land (e8 lxor e7))) + 0x243185be + Array.unsafe_get w 10 in
  let aa = a9 lor (a9 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a9 land a8) lor (a7 land (a9 lor a8))) in
  let e10 = (a6 + t1) land 0xFFFFFFFF in
  let a10 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e10 lor (e10 lsl 32) in
  let t1 = e7 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e8 lxor (e10 land (e9 lxor e8))) + 0x550c7dc3 + Array.unsafe_get w 11 in
  let aa = a10 lor (a10 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a10 land a9) lor (a8 land (a10 lor a9))) in
  let e11 = (a7 + t1) land 0xFFFFFFFF in
  let a11 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e11 lor (e11 lsl 32) in
  let t1 = e8 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e9 lxor (e11 land (e10 lxor e9))) + 0x72be5d74 + Array.unsafe_get w 12 in
  let aa = a11 lor (a11 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a11 land a10) lor (a9 land (a11 lor a10))) in
  let e12 = (a8 + t1) land 0xFFFFFFFF in
  let a12 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e12 lor (e12 lsl 32) in
  let t1 = e9 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e10 lxor (e12 land (e11 lxor e10))) + 0x80deb1fe + Array.unsafe_get w 13 in
  let aa = a12 lor (a12 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a12 land a11) lor (a10 land (a12 lor a11))) in
  let e13 = (a9 + t1) land 0xFFFFFFFF in
  let a13 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e13 lor (e13 lsl 32) in
  let t1 = e10 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e11 lxor (e13 land (e12 lxor e11))) + 0x9bdc06a7 + Array.unsafe_get w 14 in
  let aa = a13 lor (a13 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a13 land a12) lor (a11 land (a13 lor a12))) in
  let e14 = (a10 + t1) land 0xFFFFFFFF in
  let a14 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e14 lor (e14 lsl 32) in
  let t1 = e11 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e12 lxor (e14 land (e13 lxor e12))) + 0xc19bf174 + Array.unsafe_get w 15 in
  let aa = a14 lor (a14 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a14 land a13) lor (a12 land (a14 lor a13))) in
  let e15 = (a11 + t1) land 0xFFFFFFFF in
  let a15 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e15 lor (e15 lsl 32) in
  let t1 = e12 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e13 lxor (e15 land (e14 lxor e13))) + 0xe49b69c1 + Array.unsafe_get w 16 in
  let aa = a15 lor (a15 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a15 land a14) lor (a13 land (a15 lor a14))) in
  let e16 = (a12 + t1) land 0xFFFFFFFF in
  let a16 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e16 lor (e16 lsl 32) in
  let t1 = e13 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e14 lxor (e16 land (e15 lxor e14))) + 0xefbe4786 + Array.unsafe_get w 17 in
  let aa = a16 lor (a16 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a16 land a15) lor (a14 land (a16 lor a15))) in
  let e17 = (a13 + t1) land 0xFFFFFFFF in
  let a17 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e17 lor (e17 lsl 32) in
  let t1 = e14 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e15 lxor (e17 land (e16 lxor e15))) + 0x0fc19dc6 + Array.unsafe_get w 18 in
  let aa = a17 lor (a17 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a17 land a16) lor (a15 land (a17 lor a16))) in
  let e18 = (a14 + t1) land 0xFFFFFFFF in
  let a18 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e18 lor (e18 lsl 32) in
  let t1 = e15 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e16 lxor (e18 land (e17 lxor e16))) + 0x240ca1cc + Array.unsafe_get w 19 in
  let aa = a18 lor (a18 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a18 land a17) lor (a16 land (a18 lor a17))) in
  let e19 = (a15 + t1) land 0xFFFFFFFF in
  let a19 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e19 lor (e19 lsl 32) in
  let t1 = e16 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e17 lxor (e19 land (e18 lxor e17))) + 0x2de92c6f + Array.unsafe_get w 20 in
  let aa = a19 lor (a19 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a19 land a18) lor (a17 land (a19 lor a18))) in
  let e20 = (a16 + t1) land 0xFFFFFFFF in
  let a20 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e20 lor (e20 lsl 32) in
  let t1 = e17 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e18 lxor (e20 land (e19 lxor e18))) + 0x4a7484aa + Array.unsafe_get w 21 in
  let aa = a20 lor (a20 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a20 land a19) lor (a18 land (a20 lor a19))) in
  let e21 = (a17 + t1) land 0xFFFFFFFF in
  let a21 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e21 lor (e21 lsl 32) in
  let t1 = e18 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e19 lxor (e21 land (e20 lxor e19))) + 0x5cb0a9dc + Array.unsafe_get w 22 in
  let aa = a21 lor (a21 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a21 land a20) lor (a19 land (a21 lor a20))) in
  let e22 = (a18 + t1) land 0xFFFFFFFF in
  let a22 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e22 lor (e22 lsl 32) in
  let t1 = e19 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e20 lxor (e22 land (e21 lxor e20))) + 0x76f988da + Array.unsafe_get w 23 in
  let aa = a22 lor (a22 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a22 land a21) lor (a20 land (a22 lor a21))) in
  let e23 = (a19 + t1) land 0xFFFFFFFF in
  let a23 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e23 lor (e23 lsl 32) in
  let t1 = e20 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e21 lxor (e23 land (e22 lxor e21))) + 0x983e5152 + Array.unsafe_get w 24 in
  let aa = a23 lor (a23 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a23 land a22) lor (a21 land (a23 lor a22))) in
  let e24 = (a20 + t1) land 0xFFFFFFFF in
  let a24 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e24 lor (e24 lsl 32) in
  let t1 = e21 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e22 lxor (e24 land (e23 lxor e22))) + 0xa831c66d + Array.unsafe_get w 25 in
  let aa = a24 lor (a24 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a24 land a23) lor (a22 land (a24 lor a23))) in
  let e25 = (a21 + t1) land 0xFFFFFFFF in
  let a25 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e25 lor (e25 lsl 32) in
  let t1 = e22 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e23 lxor (e25 land (e24 lxor e23))) + 0xb00327c8 + Array.unsafe_get w 26 in
  let aa = a25 lor (a25 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a25 land a24) lor (a23 land (a25 lor a24))) in
  let e26 = (a22 + t1) land 0xFFFFFFFF in
  let a26 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e26 lor (e26 lsl 32) in
  let t1 = e23 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e24 lxor (e26 land (e25 lxor e24))) + 0xbf597fc7 + Array.unsafe_get w 27 in
  let aa = a26 lor (a26 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a26 land a25) lor (a24 land (a26 lor a25))) in
  let e27 = (a23 + t1) land 0xFFFFFFFF in
  let a27 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e27 lor (e27 lsl 32) in
  let t1 = e24 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e25 lxor (e27 land (e26 lxor e25))) + 0xc6e00bf3 + Array.unsafe_get w 28 in
  let aa = a27 lor (a27 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a27 land a26) lor (a25 land (a27 lor a26))) in
  let e28 = (a24 + t1) land 0xFFFFFFFF in
  let a28 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e28 lor (e28 lsl 32) in
  let t1 = e25 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e26 lxor (e28 land (e27 lxor e26))) + 0xd5a79147 + Array.unsafe_get w 29 in
  let aa = a28 lor (a28 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a28 land a27) lor (a26 land (a28 lor a27))) in
  let e29 = (a25 + t1) land 0xFFFFFFFF in
  let a29 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e29 lor (e29 lsl 32) in
  let t1 = e26 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e27 lxor (e29 land (e28 lxor e27))) + 0x06ca6351 + Array.unsafe_get w 30 in
  let aa = a29 lor (a29 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a29 land a28) lor (a27 land (a29 lor a28))) in
  let e30 = (a26 + t1) land 0xFFFFFFFF in
  let a30 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e30 lor (e30 lsl 32) in
  let t1 = e27 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e28 lxor (e30 land (e29 lxor e28))) + 0x14292967 + Array.unsafe_get w 31 in
  let aa = a30 lor (a30 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a30 land a29) lor (a28 land (a30 lor a29))) in
  let e31 = (a27 + t1) land 0xFFFFFFFF in
  let a31 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e31 lor (e31 lsl 32) in
  let t1 = e28 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e29 lxor (e31 land (e30 lxor e29))) + 0x27b70a85 + Array.unsafe_get w 32 in
  let aa = a31 lor (a31 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a31 land a30) lor (a29 land (a31 lor a30))) in
  let e32 = (a28 + t1) land 0xFFFFFFFF in
  let a32 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e32 lor (e32 lsl 32) in
  let t1 = e29 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e30 lxor (e32 land (e31 lxor e30))) + 0x2e1b2138 + Array.unsafe_get w 33 in
  let aa = a32 lor (a32 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a32 land a31) lor (a30 land (a32 lor a31))) in
  let e33 = (a29 + t1) land 0xFFFFFFFF in
  let a33 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e33 lor (e33 lsl 32) in
  let t1 = e30 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e31 lxor (e33 land (e32 lxor e31))) + 0x4d2c6dfc + Array.unsafe_get w 34 in
  let aa = a33 lor (a33 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a33 land a32) lor (a31 land (a33 lor a32))) in
  let e34 = (a30 + t1) land 0xFFFFFFFF in
  let a34 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e34 lor (e34 lsl 32) in
  let t1 = e31 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e32 lxor (e34 land (e33 lxor e32))) + 0x53380d13 + Array.unsafe_get w 35 in
  let aa = a34 lor (a34 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a34 land a33) lor (a32 land (a34 lor a33))) in
  let e35 = (a31 + t1) land 0xFFFFFFFF in
  let a35 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e35 lor (e35 lsl 32) in
  let t1 = e32 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e33 lxor (e35 land (e34 lxor e33))) + 0x650a7354 + Array.unsafe_get w 36 in
  let aa = a35 lor (a35 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a35 land a34) lor (a33 land (a35 lor a34))) in
  let e36 = (a32 + t1) land 0xFFFFFFFF in
  let a36 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e36 lor (e36 lsl 32) in
  let t1 = e33 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e34 lxor (e36 land (e35 lxor e34))) + 0x766a0abb + Array.unsafe_get w 37 in
  let aa = a36 lor (a36 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a36 land a35) lor (a34 land (a36 lor a35))) in
  let e37 = (a33 + t1) land 0xFFFFFFFF in
  let a37 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e37 lor (e37 lsl 32) in
  let t1 = e34 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e35 lxor (e37 land (e36 lxor e35))) + 0x81c2c92e + Array.unsafe_get w 38 in
  let aa = a37 lor (a37 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a37 land a36) lor (a35 land (a37 lor a36))) in
  let e38 = (a34 + t1) land 0xFFFFFFFF in
  let a38 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e38 lor (e38 lsl 32) in
  let t1 = e35 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e36 lxor (e38 land (e37 lxor e36))) + 0x92722c85 + Array.unsafe_get w 39 in
  let aa = a38 lor (a38 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a38 land a37) lor (a36 land (a38 lor a37))) in
  let e39 = (a35 + t1) land 0xFFFFFFFF in
  let a39 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e39 lor (e39 lsl 32) in
  let t1 = e36 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e37 lxor (e39 land (e38 lxor e37))) + 0xa2bfe8a1 + Array.unsafe_get w 40 in
  let aa = a39 lor (a39 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a39 land a38) lor (a37 land (a39 lor a38))) in
  let e40 = (a36 + t1) land 0xFFFFFFFF in
  let a40 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e40 lor (e40 lsl 32) in
  let t1 = e37 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e38 lxor (e40 land (e39 lxor e38))) + 0xa81a664b + Array.unsafe_get w 41 in
  let aa = a40 lor (a40 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a40 land a39) lor (a38 land (a40 lor a39))) in
  let e41 = (a37 + t1) land 0xFFFFFFFF in
  let a41 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e41 lor (e41 lsl 32) in
  let t1 = e38 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e39 lxor (e41 land (e40 lxor e39))) + 0xc24b8b70 + Array.unsafe_get w 42 in
  let aa = a41 lor (a41 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a41 land a40) lor (a39 land (a41 lor a40))) in
  let e42 = (a38 + t1) land 0xFFFFFFFF in
  let a42 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e42 lor (e42 lsl 32) in
  let t1 = e39 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e40 lxor (e42 land (e41 lxor e40))) + 0xc76c51a3 + Array.unsafe_get w 43 in
  let aa = a42 lor (a42 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a42 land a41) lor (a40 land (a42 lor a41))) in
  let e43 = (a39 + t1) land 0xFFFFFFFF in
  let a43 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e43 lor (e43 lsl 32) in
  let t1 = e40 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e41 lxor (e43 land (e42 lxor e41))) + 0xd192e819 + Array.unsafe_get w 44 in
  let aa = a43 lor (a43 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a43 land a42) lor (a41 land (a43 lor a42))) in
  let e44 = (a40 + t1) land 0xFFFFFFFF in
  let a44 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e44 lor (e44 lsl 32) in
  let t1 = e41 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e42 lxor (e44 land (e43 lxor e42))) + 0xd6990624 + Array.unsafe_get w 45 in
  let aa = a44 lor (a44 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a44 land a43) lor (a42 land (a44 lor a43))) in
  let e45 = (a41 + t1) land 0xFFFFFFFF in
  let a45 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e45 lor (e45 lsl 32) in
  let t1 = e42 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e43 lxor (e45 land (e44 lxor e43))) + 0xf40e3585 + Array.unsafe_get w 46 in
  let aa = a45 lor (a45 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a45 land a44) lor (a43 land (a45 lor a44))) in
  let e46 = (a42 + t1) land 0xFFFFFFFF in
  let a46 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e46 lor (e46 lsl 32) in
  let t1 = e43 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e44 lxor (e46 land (e45 lxor e44))) + 0x106aa070 + Array.unsafe_get w 47 in
  let aa = a46 lor (a46 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a46 land a45) lor (a44 land (a46 lor a45))) in
  let e47 = (a43 + t1) land 0xFFFFFFFF in
  let a47 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e47 lor (e47 lsl 32) in
  let t1 = e44 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e45 lxor (e47 land (e46 lxor e45))) + 0x19a4c116 + Array.unsafe_get w 48 in
  let aa = a47 lor (a47 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a47 land a46) lor (a45 land (a47 lor a46))) in
  let e48 = (a44 + t1) land 0xFFFFFFFF in
  let a48 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e48 lor (e48 lsl 32) in
  let t1 = e45 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e46 lxor (e48 land (e47 lxor e46))) + 0x1e376c08 + Array.unsafe_get w 49 in
  let aa = a48 lor (a48 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a48 land a47) lor (a46 land (a48 lor a47))) in
  let e49 = (a45 + t1) land 0xFFFFFFFF in
  let a49 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e49 lor (e49 lsl 32) in
  let t1 = e46 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e47 lxor (e49 land (e48 lxor e47))) + 0x2748774c + Array.unsafe_get w 50 in
  let aa = a49 lor (a49 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a49 land a48) lor (a47 land (a49 lor a48))) in
  let e50 = (a46 + t1) land 0xFFFFFFFF in
  let a50 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e50 lor (e50 lsl 32) in
  let t1 = e47 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e48 lxor (e50 land (e49 lxor e48))) + 0x34b0bcb5 + Array.unsafe_get w 51 in
  let aa = a50 lor (a50 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a50 land a49) lor (a48 land (a50 lor a49))) in
  let e51 = (a47 + t1) land 0xFFFFFFFF in
  let a51 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e51 lor (e51 lsl 32) in
  let t1 = e48 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e49 lxor (e51 land (e50 lxor e49))) + 0x391c0cb3 + Array.unsafe_get w 52 in
  let aa = a51 lor (a51 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a51 land a50) lor (a49 land (a51 lor a50))) in
  let e52 = (a48 + t1) land 0xFFFFFFFF in
  let a52 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e52 lor (e52 lsl 32) in
  let t1 = e49 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e50 lxor (e52 land (e51 lxor e50))) + 0x4ed8aa4a + Array.unsafe_get w 53 in
  let aa = a52 lor (a52 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a52 land a51) lor (a50 land (a52 lor a51))) in
  let e53 = (a49 + t1) land 0xFFFFFFFF in
  let a53 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e53 lor (e53 lsl 32) in
  let t1 = e50 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e51 lxor (e53 land (e52 lxor e51))) + 0x5b9cca4f + Array.unsafe_get w 54 in
  let aa = a53 lor (a53 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a53 land a52) lor (a51 land (a53 lor a52))) in
  let e54 = (a50 + t1) land 0xFFFFFFFF in
  let a54 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e54 lor (e54 lsl 32) in
  let t1 = e51 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e52 lxor (e54 land (e53 lxor e52))) + 0x682e6ff3 + Array.unsafe_get w 55 in
  let aa = a54 lor (a54 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a54 land a53) lor (a52 land (a54 lor a53))) in
  let e55 = (a51 + t1) land 0xFFFFFFFF in
  let a55 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e55 lor (e55 lsl 32) in
  let t1 = e52 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e53 lxor (e55 land (e54 lxor e53))) + 0x748f82ee + Array.unsafe_get w 56 in
  let aa = a55 lor (a55 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a55 land a54) lor (a53 land (a55 lor a54))) in
  let e56 = (a52 + t1) land 0xFFFFFFFF in
  let a56 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e56 lor (e56 lsl 32) in
  let t1 = e53 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e54 lxor (e56 land (e55 lxor e54))) + 0x78a5636f + Array.unsafe_get w 57 in
  let aa = a56 lor (a56 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a56 land a55) lor (a54 land (a56 lor a55))) in
  let e57 = (a53 + t1) land 0xFFFFFFFF in
  let a57 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e57 lor (e57 lsl 32) in
  let t1 = e54 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e55 lxor (e57 land (e56 lxor e55))) + 0x84c87814 + Array.unsafe_get w 58 in
  let aa = a57 lor (a57 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a57 land a56) lor (a55 land (a57 lor a56))) in
  let e58 = (a54 + t1) land 0xFFFFFFFF in
  let a58 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e58 lor (e58 lsl 32) in
  let t1 = e55 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e56 lxor (e58 land (e57 lxor e56))) + 0x8cc70208 + Array.unsafe_get w 59 in
  let aa = a58 lor (a58 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a58 land a57) lor (a56 land (a58 lor a57))) in
  let e59 = (a55 + t1) land 0xFFFFFFFF in
  let a59 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e59 lor (e59 lsl 32) in
  let t1 = e56 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e57 lxor (e59 land (e58 lxor e57))) + 0x90befffa + Array.unsafe_get w 60 in
  let aa = a59 lor (a59 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a59 land a58) lor (a57 land (a59 lor a58))) in
  let e60 = (a56 + t1) land 0xFFFFFFFF in
  let a60 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e60 lor (e60 lsl 32) in
  let t1 = e57 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e58 lxor (e60 land (e59 lxor e58))) + 0xa4506ceb + Array.unsafe_get w 61 in
  let aa = a60 lor (a60 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a60 land a59) lor (a58 land (a60 lor a59))) in
  let e61 = (a57 + t1) land 0xFFFFFFFF in
  let a61 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e61 lor (e61 lsl 32) in
  let t1 = e58 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e59 lxor (e61 land (e60 lxor e59))) + 0xbef9a3f7 + Array.unsafe_get w 62 in
  let aa = a61 lor (a61 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a61 land a60) lor (a59 land (a61 lor a60))) in
  let e62 = (a58 + t1) land 0xFFFFFFFF in
  let a62 = (t1 + t2) land 0xFFFFFFFF in
  let ee = e62 lor (e62 lsl 32) in
  let t1 = e59 + (((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land 0xFFFFFFFF) + (e60 lxor (e62 land (e61 lxor e60))) + 0xc67178f2 + Array.unsafe_get w 63 in
  let aa = a62 lor (a62 lsl 32) in
  let t2 = (((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land 0xFFFFFFFF) + ((a62 land a61) lor (a60 land (a62 lor a61))) in
  let e63 = (a59 + t1) land 0xFFFFFFFF in
  let a63 = (t1 + t2) land 0xFFFFFFFF in
  Array.unsafe_set h8 0 ((Array.unsafe_get h8 0 + a63) land 0xFFFFFFFF);
  Array.unsafe_set h8 1 ((Array.unsafe_get h8 1 + a62) land 0xFFFFFFFF);
  Array.unsafe_set h8 2 ((Array.unsafe_get h8 2 + a61) land 0xFFFFFFFF);
  Array.unsafe_set h8 3 ((Array.unsafe_get h8 3 + a60) land 0xFFFFFFFF);
  Array.unsafe_set h8 4 ((Array.unsafe_get h8 4 + e63) land 0xFFFFFFFF);
  Array.unsafe_set h8 5 ((Array.unsafe_get h8 5 + e62) land 0xFFFFFFFF);
  Array.unsafe_set h8 6 ((Array.unsafe_get h8 6 + e61) land 0xFFFFFFFF);
  Array.unsafe_set h8 7 ((Array.unsafe_get h8 7 + e60) land 0xFFFFFFFF)

let iv () =
  [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f; 0x9b05688c;
     0x1f83d9ab; 0x5be0cd19 |]

type ctx = {
  h : int array; (* 8 working hash words *)
  buf : Bytes.t; (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int64; (* total bytes fed *)
  w : int array; (* message schedule scratch *)
}

let init () = { h = iv (); buf = Bytes.create 64; buf_len = 0; total = 0L; w = Array.make 64 0 }

(* Snapshot a midstate (HMAC key-block precomputation): the copy owns fresh
   buffers so feeding it never mutates the original. *)
let copy ctx =
  {
    h = Array.copy ctx.h;
    buf = Bytes.copy ctx.buf;
    buf_len = ctx.buf_len;
    total = ctx.total;
    w = Array.make 64 0;
  }

let feed_sub ctx s pos len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Sha256.feed_sub";
  ctx.total <- Int64.add ctx.total (Int64.of_int len);
  let pos = ref pos and remaining = ref len in
  (* top up a partial block first *)
  if ctx.buf_len > 0 then begin
    let need = 64 - ctx.buf_len in
    let take = min need !remaining in
    Bytes.blit_string s !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.buf_len = 64 then begin
      compress_block ctx.h ctx.w (Bytes.unsafe_to_string ctx.buf) 0;
      ctx.buf_len <- 0
    end
  end;
  (* aligned full blocks compress straight from the source, no copy *)
  while !remaining >= 64 do
    compress_block ctx.h ctx.w s !pos;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit_string s !pos ctx.buf 0 !remaining;
    ctx.buf_len <- !remaining
  end

let feed ctx s = feed_sub ctx s 0 (String.length s)

(* Zero-copy feed from a byte buffer (e.g. a Buffer's backing store): the
   bytes are only read within this call, so the unsafe view is sound even
   if the caller mutates the buffer afterwards. *)
let feed_bytes ctx b pos len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Sha256.feed_bytes";
  feed_sub ctx (Bytes.unsafe_to_string b) pos len

let output_digest h8 =
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    Bytes.set_int32_be out (4 * i) (Int32.of_int (Array.unsafe_get h8 i))
  done;
  Bytes.unsafe_to_string out

let finalize ctx =
  let bit_len = Int64.mul ctx.total 8L in
  (* padding: 0x80, zeros, 64-bit big-endian length *)
  let pad_len =
    let rem = (ctx.buf_len + 1 + 8) mod 64 in
    if rem = 0 then 1 else 1 + (64 - rem)
  in
  let pad = Bytes.make (pad_len + 8) '\x00' in
  Bytes.set pad 0 '\x80';
  Bytes.set_int64_be pad pad_len bit_len;
  feed ctx (Bytes.unsafe_to_string pad);
  (* total fed is now a multiple of 64 and buffer is empty *)
  assert (ctx.buf_len = 0);
  output_digest ctx.h

(* One-shot digest: no streaming context, no staging copies, no per-call
   allocation beyond the result -- full blocks compress straight from [s],
   the padded tail is built in per-domain scratch, and the working state
   lives in per-domain scratch arrays. [digest] never re-enters itself, so
   within one domain sharing the scratch is sound; the verification pool
   (Vpool) runs this concurrently from worker domains, hence the scratch is
   keyed by Domain.DLS rather than being a plain module global. Callers
   needing reentrancy use the streaming [ctx] API. *)
type scratch = { sc_h : int array; sc_w : int array; sc_tail : Bytes.t }

let scratch_key =
  Domain.DLS.new_key (fun () ->
      { sc_h = Array.make 8 0; sc_w = Array.make 64 0; sc_tail = Bytes.make 128 '\x00' })

let digest_sub s pos len =
  let sc = Domain.DLS.get scratch_key in
  let h8 = sc.sc_h and w = sc.sc_w in
  h8.(0) <- 0x6a09e667; h8.(1) <- 0xbb67ae85;
  h8.(2) <- 0x3c6ef372; h8.(3) <- 0xa54ff53a;
  h8.(4) <- 0x510e527f; h8.(5) <- 0x9b05688c;
  h8.(6) <- 0x1f83d9ab; h8.(7) <- 0x5be0cd19;
  let blocks = len / 64 in
  for i = 0 to blocks - 1 do
    compress_block h8 w s (pos + (i * 64))
  done;
  let rem = len - (blocks * 64) in
  let tail_len = if rem < 56 then 64 else 128 in
  let tail = sc.sc_tail in
  Bytes.fill tail 0 tail_len '\x00';
  Bytes.blit_string s (pos + (blocks * 64)) tail 0 rem;
  Bytes.set tail rem '\x80';
  Bytes.set_int64_be tail (tail_len - 8) (Int64.of_int (len * 8));
  let tail = Bytes.unsafe_to_string tail in
  compress_block h8 w tail 0;
  if tail_len = 128 then compress_block h8 w tail 64;
  output_digest h8

let digest s = digest_sub s 0 (String.length s)

(* One-shot digest of a byte-buffer prefix (e.g. a Wire_arena's backing
   store): the bytes are only read within this call, so the unsafe view is
   sound even if the caller mutates the buffer afterwards. *)
let digest_bytes b pos len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Sha256.digest_bytes";
  digest_sub (Bytes.unsafe_to_string b) pos len

(* Resumable midstates (HMAC key-block precomputation): a snapshot of the
   eight hash words at a block boundary. [digest_from_midstate] finishes a
   hash from such a snapshot with the same scratch-state fast path as
   [digest] -- no context, no staging, no per-call allocation beyond the
   result. *)

type midstate = { mh : int array; m_fed : int (* bytes absorbed, multiple of 64 *) }

let midstate ctx =
  if ctx.buf_len <> 0 then invalid_arg "Sha256.midstate: stream not block-aligned";
  { mh = Array.copy ctx.h; m_fed = Int64.to_int ctx.total }

let digest_from_midstate m s =
  let sc = Domain.DLS.get scratch_key in
  let h8 = sc.sc_h and w = sc.sc_w in
  Array.blit m.mh 0 h8 0 8;
  let len = String.length s in
  let blocks = len / 64 in
  for i = 0 to blocks - 1 do
    compress_block h8 w s (i * 64)
  done;
  let rem = len - (blocks * 64) in
  let tail_len = if rem < 56 then 64 else 128 in
  let tail = sc.sc_tail in
  Bytes.fill tail 0 tail_len '\x00';
  Bytes.blit_string s (blocks * 64) tail 0 rem;
  Bytes.set tail rem '\x80';
  Bytes.set_int64_be tail (tail_len - 8) (Int64.of_int ((m.m_fed + len) * 8));
  let tail = Bytes.unsafe_to_string tail in
  compress_block h8 w tail 0;
  if tail_len = 128 then compress_block h8 w tail 64;
  output_digest h8

let hexdigest s = Bft_util.Hex.encode (digest s)

let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  if String.length key = block_size then key
  else key ^ String.make (block_size - String.length key) '\x00'

let xor_pad key byte =
  String.map (fun c -> Char.chr (Char.code c lxor byte)) key

(* Key-block precomputation: the SHA-256 midstates after absorbing the ipad
   and opad blocks. A MAC over a short message then costs ~2 compressions
   instead of 4 — the pad blocks are paid once per key, not per message —
   and each of those runs on the allocation-free midstate path instead of
   copying a streaming context. *)
type precomputed = { p_inner : Sha256.midstate; p_outer : Sha256.midstate }

let precompute ~key =
  let key = normalize_key key in
  let inner = Sha256.init () in
  Sha256.feed inner (xor_pad key 0x36);
  let outer = Sha256.init () in
  Sha256.feed outer (xor_pad key 0x5c);
  { p_inner = Sha256.midstate inner; p_outer = Sha256.midstate outer }

let mac_precomputed pre msg =
  let inner_digest = Sha256.digest_from_midstate pre.p_inner msg in
  Sha256.digest_from_midstate pre.p_outer inner_digest

let mac_truncated_precomputed pre n msg =
  let t = mac_precomputed pre msg in
  if n >= String.length t then t else String.sub t 0 n

let mac ~key msg = mac_precomputed (precompute ~key) msg

let mac_truncated ~key n msg =
  let t = mac ~key msg in
  if n >= String.length t then t else String.sub t 0 n

let constant_time_eq a b =
  String.length a = String.length b
  && begin
       let acc = ref 0 in
       String.iteri (fun i c -> acc := !acc lor (Char.code c lxor Char.code b.[i])) a;
       !acc = 0
     end

let verify ~key ~tag msg =
  let n = String.length tag in
  constant_time_eq tag (mac_truncated ~key n msg)

let verify_precomputed pre ~tag msg =
  constant_time_eq tag (mac_truncated_precomputed pre (String.length tag) msg)

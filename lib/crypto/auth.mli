(** Message authentication: single MACs and authenticators.

    An authenticator is a vector of MACs, one per receiving replica, each
    computed with the pairwise session key for that receiver (Section 3.2.1
    of the paper). The receiver verifies only its own entry. Tags carry the
    key epoch they were generated under so that receivers can enforce
    authentication freshness (Section 4.3.1). *)

val tag_size : int
(** 8 bytes, matching the UMAC32 tags of the paper's implementation. *)

type mac = { tag : string; epoch : int }

type authenticator = (int * mac) list
(** Association list from receiver id to its MAC entry. *)

val compute_mac : Keychain.t -> peer:int -> string -> mac option
(** MAC over the message with the current out-key for [peer]. [None] when no
    session key is established yet. *)

val verify_mac : Keychain.t -> peer:int -> mac -> string -> bool
(** Verify a MAC from [peer] against our current in-key for them. Fails if
    the epoch is stale (key was refreshed since) or the tag is wrong. *)

val compute_authenticator :
  Keychain.t -> receivers:int list -> string -> authenticator
(** One MAC per receiver (skipping self and receivers without keys). *)

val verify_authenticator :
  Keychain.t -> peer:int -> authenticator -> string -> bool
(** Verify our own entry in an authenticator sent by [peer]. *)

(** {2 Batched verification}

    Receivers accumulate independent verification work and flush it in one
    call: key lookups (and the cached HMAC key-block precomputes behind
    them) are resolved once per sender per flush, and the tag/digest
    recomputations fan out across the {!Vpool} worker domains. Results are
    merged deterministically — [results.(i)] answers [items.(i)] and is
    identical to what the sequential {!verify_mac} /
    {!verify_authenticator} path returns for that item, at any domain
    count. *)

type batch_item =
  | Item_mac of { peer : int; mac : mac; msg : string }
      (** Same question as [verify_mac ~peer mac msg]. *)
  | Item_auth of { peer : int; auth : authenticator; msg : string }
      (** Same question as [verify_authenticator ~peer auth msg]. *)
  | Item_digest of { expect : string; msg : string }
      (** Does [msg] hash to [expect]? *)

val verify_batch : ?pool:Vpool.t -> Keychain.t -> batch_item array -> bool array
(** Verify every item ([pool] defaults to {!Vpool.default}). *)

val corrupt_entry : authenticator -> int -> authenticator
(** Testing/fault-injection helper: flip bits in the MAC destined for the
    given receiver, leaving other entries intact (models the faulty-client
    partial-authenticator attacks of Section 3.2.2). *)

val size : authenticator -> int
(** Wire size contribution: 8 bytes of nonce plus [tag_size] per entry,
    matching the paper's 8n-byte authenticators. *)

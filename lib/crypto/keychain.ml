type key = { secret : string; epoch : int }

type t = {
  my_id : int;
  in_keys : (int, key) Hashtbl.t; (* peer -> key peer uses to send to us *)
  out_keys : (int, key) Hashtbl.t; (* peer -> key we use to send to peer *)
  (* highest epoch ever issued per peer; survives drop_all_in_keys so that
     post-recovery refreshed keys supersede the dropped ones *)
  issued_epochs : (int, int) Hashtbl.t;
  (* HMAC key-block midstates, cached per peer and validated against the
     installed key's epoch. Keys themselves stay plain records (they are
     wire-serialized inside new-key messages); the midstates live only
     here, beside the keychain that uses them. *)
  in_pre : (int, int * Hmac.precomputed) Hashtbl.t;
  out_pre : (int, int * Hmac.precomputed) Hashtbl.t;
}

let create ~my_id =
  {
    my_id;
    in_keys = Hashtbl.create 16;
    out_keys = Hashtbl.create 16;
    issued_epochs = Hashtbl.create 16;
    in_pre = Hashtbl.create 16;
    out_pre = Hashtbl.create 16;
  }
let my_id t = t.my_id

let fresh_in_key t rng ~peer =
  let epoch =
    (match Hashtbl.find_opt t.issued_epochs peer with Some e -> e | None -> 0) + 1
  in
  Hashtbl.replace t.issued_epochs peer epoch;
  let key = { secret = Bft_util.Rng.bytes rng 16; epoch } in
  Hashtbl.replace t.in_keys peer key;
  key

let install_out_key t ~peer key =
  let current_epoch =
    match Hashtbl.find_opt t.out_keys peer with Some k -> k.epoch | None -> 0
  in
  if key.epoch > current_epoch then begin
    Hashtbl.replace t.out_keys peer key;
    true
  end
  else false

let out_key t ~peer = Hashtbl.find_opt t.out_keys peer
let in_key t ~peer = Hashtbl.find_opt t.in_keys peer

let precomputed cache keys ~peer =
  match Hashtbl.find_opt keys peer with
  | None -> None
  | Some key ->
      let pre =
        match Hashtbl.find_opt cache peer with
        | Some (epoch, pre) when epoch = key.epoch -> pre
        | _ ->
            let pre = Hmac.precompute ~key:key.secret in
            Hashtbl.replace cache peer (key.epoch, pre);
            pre
      in
      Some (key, pre)

let out_key_pre t ~peer = precomputed t.out_pre t.out_keys ~peer
let in_key_pre t ~peer = precomputed t.in_pre t.in_keys ~peer

let in_epoch t ~peer =
  match Hashtbl.find_opt t.in_keys peer with Some k -> k.epoch | None -> 0

let drop_all_in_keys t =
  Hashtbl.reset t.in_keys;
  Hashtbl.reset t.in_pre

let peers_with_out_keys t =
  Hashtbl.fold (fun peer _ acc -> peer :: acc) t.out_keys []
  |> List.sort_uniq compare

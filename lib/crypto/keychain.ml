type key = { secret : string; epoch : int }

(* Group-derived session keys: one shared secret stands in for the
   pairwise keys of a contiguous range of principal ids (the million-client
   cohorts). A directional key is derived on demand as
   [HMAC(group_secret, "key:src>dst")] at epoch 1, resuming the group
   secret's cached key-block midstates for every derivation. Derived keys
   are deliberately NOT cached: at 10^6 clients a per-peer cache at each
   replica would cost gigabytes, while [Auth.verify_batch]'s per-flush
   sender memo already shares each derivation (and its precompute) across
   a whole batch. *)
type group = {
  g_first : int;
  g_last : int;
  g_pre : Hmac.precomputed;
  mutable g_derivations : int; (* observability: one per on-demand derive *)
}

let group ~first ~last ~secret =
  if first > last then invalid_arg "Keychain.group: empty range";
  { g_first = first; g_last = last; g_pre = Hmac.precompute ~key:secret; g_derivations = 0 }

let group_first g = g.g_first
let group_last g = g.g_last
let group_derivations g = g.g_derivations
let group_mem g id = id >= g.g_first && id <= g.g_last

let group_derive g ~src ~dst =
  g.g_derivations <- g.g_derivations + 1;
  let secret = Hmac.mac_precomputed g.g_pre (Printf.sprintf "key:%d>%d" src dst) in
  let key = { secret; epoch = 1 } in
  (key, Hmac.precompute ~key:secret)

type t = {
  my_id : int;
  in_keys : (int, key) Hashtbl.t; (* peer -> key peer uses to send to us *)
  out_keys : (int, key) Hashtbl.t; (* peer -> key we use to send to peer *)
  (* highest epoch ever issued per peer; survives drop_all_in_keys so that
     post-recovery refreshed keys supersede the dropped ones *)
  issued_epochs : (int, int) Hashtbl.t;
  (* HMAC key-block midstates, cached per peer and validated against the
     installed key's epoch. Keys themselves stay plain records (they are
     wire-serialized inside new-key messages); the midstates live only
     here, beside the keychain that uses them. *)
  in_pre : (int, int * Hmac.precomputed) Hashtbl.t;
  out_pre : (int, int * Hmac.precomputed) Hashtbl.t;
  (* fallback for peers in the group's id range when no pairwise key is
     installed; explicitly installed keys always win *)
  mutable group : group option;
}

let create ~my_id =
  {
    my_id;
    in_keys = Hashtbl.create 16;
    out_keys = Hashtbl.create 16;
    issued_epochs = Hashtbl.create 16;
    in_pre = Hashtbl.create 16;
    out_pre = Hashtbl.create 16;
    group = None;
  }
let my_id t = t.my_id

let fresh_in_key t rng ~peer =
  let epoch =
    (match Hashtbl.find_opt t.issued_epochs peer with Some e -> e | None -> 0) + 1
  in
  Hashtbl.replace t.issued_epochs peer epoch;
  let key = { secret = Bft_util.Rng.bytes rng 16; epoch } in
  Hashtbl.replace t.in_keys peer key;
  key

let install_out_key t ~peer key =
  let current_epoch =
    match Hashtbl.find_opt t.out_keys peer with Some k -> k.epoch | None -> 0
  in
  if key.epoch > current_epoch then begin
    Hashtbl.replace t.out_keys peer key;
    true
  end
  else false

let out_key t ~peer = Hashtbl.find_opt t.out_keys peer
let in_key t ~peer = Hashtbl.find_opt t.in_keys peer

let precomputed cache keys ~peer =
  match Hashtbl.find_opt keys peer with
  | None -> None
  | Some key ->
      let pre =
        match Hashtbl.find_opt cache peer with
        | Some (epoch, pre) when epoch = key.epoch -> pre
        | _ ->
            let pre = Hmac.precompute ~key:key.secret in
            Hashtbl.replace cache peer (key.epoch, pre);
            pre
      in
      Some (key, pre)

let set_group t g = t.group <- Some g
let group_of t = t.group

(* [dir]: [`In] keys authenticate peer -> us, [`Out] keys us -> peer. *)
let group_fallback t ~peer dir =
  match t.group with
  | Some g when group_mem g peer ->
      let src, dst = match dir with `In -> (peer, t.my_id) | `Out -> (t.my_id, peer) in
      Some (group_derive g ~src ~dst)
  | _ -> None

let out_key_pre t ~peer =
  match precomputed t.out_pre t.out_keys ~peer with
  | Some _ as r -> r
  | None -> group_fallback t ~peer `Out

let in_key_pre t ~peer =
  match precomputed t.in_pre t.in_keys ~peer with
  | Some _ as r -> r
  | None -> group_fallback t ~peer `In

let in_epoch t ~peer =
  match Hashtbl.find_opt t.in_keys peer with
  | Some k -> k.epoch
  | None -> (
      match t.group with Some g when group_mem g peer -> 1 | _ -> 0)

let drop_all_in_keys t =
  Hashtbl.reset t.in_keys;
  Hashtbl.reset t.in_pre

let peers_with_out_keys t =
  Hashtbl.fold (fun peer _ acc -> peer :: acc) t.out_keys []
  |> List.sort_uniq compare

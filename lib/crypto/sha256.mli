(** SHA-256 (FIPS 180-4), implemented from scratch.

    The paper uses MD5 for message and state digests; we substitute SHA-256
    (see DESIGN.md). Digest cost is charged separately by the network cost
    model, so the choice of hash does not affect reproduced performance
    shapes. *)

type ctx

val digest_size : int
(** 32 bytes. *)

val init : unit -> ctx
val feed : ctx -> string -> unit
val feed_sub : ctx -> string -> int -> int -> unit

val feed_bytes : ctx -> Bytes.t -> int -> int -> unit
(** Zero-copy feed from a byte buffer: no intermediate string is
    allocated. The bytes are only read during the call. *)

val copy : ctx -> ctx
(** Independent snapshot of a running context. Feeding or finalizing the
    copy never affects the original — this is the midstate primitive
    behind HMAC key-block precomputation. *)

val finalize : ctx -> string
(** Returns the 32-byte digest. The context must not be reused. *)

val digest : string -> string
(** One-shot digest of a full string. Runs on per-domain scratch state
    (Domain.DLS), so it is safe to call concurrently from Vpool worker
    domains. *)

val digest_bytes : Bytes.t -> int -> int -> string
(** [digest_bytes b pos len]: one-shot digest of a byte-buffer range with
    no intermediate string allocation (the arena-backed encode pipeline
    digests wire bytes in place). The bytes are only read during the
    call. *)

type midstate
(** Immutable snapshot of the hash state at a block boundary. *)

val midstate : ctx -> midstate
(** Capture the state of [ctx]. Raises [Invalid_argument] unless the bytes
    fed so far are a multiple of the 64-byte block size (always true after
    absorbing an HMAC key block). *)

val digest_from_midstate : midstate -> string -> string
(** [digest_from_midstate m s] equals what [finalize] would return after
    feeding [s] to the context [m] was captured from — but runs on the
    allocation-free one-shot path. The midstate is not consumed. *)

val hexdigest : string -> string

(** Latency histogram with exponential (power-of-two) buckets.

    Values are virtual-time latencies in microseconds. Bucket [i] covers
    [[2^(i-1), 2^i)] microseconds ([i = 0] covers everything below 1us),
    and the last bucket is open-ended, so the full range from sub-
    microsecond to hours fits in a fixed 40-slot array with no allocation
    per sample. Percentiles are approximate: the reported value is the
    upper bound of the bucket where the cumulative count crosses the
    requested quantile (at most 2x the true value, which is plenty for
    per-phase breakdowns). *)

type t

val num_buckets : int

val create : unit -> t

val add : t -> float -> unit
(** Record one latency in microseconds. Negative values clamp to 0. *)

val count : t -> int
val sum_us : t -> float
val mean_us : t -> float
(** 0 when empty. *)

val max_us : t -> float
(** Largest recorded value (exact, not bucketed); 0 when empty. *)

val bucket_index : float -> int
(** The bucket a value falls into (exposed for tests). *)

val bucket_upper_us : int -> float
(** Inclusive upper bound of bucket [i] in microseconds; [infinity] for
    the last bucket. *)

val bucket_count : t -> int -> int

val percentile_us : t -> float -> float
(** [percentile_us t 0.99]: upper bound of the bucket holding the p-th
    quantile; 0 when empty. For the open-ended last bucket the exact
    maximum is returned instead of infinity. *)

val merge_into : t -> t -> unit
(** [merge_into dst src] adds [src]'s samples into [dst]. *)

type 'a t = {
  slots : 'a option array;
  mutable next : int; (* slot the next push writes *)
  mutable total : int;
}

let create cap =
  if cap < 1 then invalid_arg "Ring.create: capacity must be >= 1";
  { slots = Array.make cap None; next = 0; total = 0 }

let capacity t = Array.length t.slots
let length t = min t.total (Array.length t.slots)
let total t = t.total

let push t x =
  t.slots.(t.next) <- Some x;
  t.next <- (t.next + 1) mod Array.length t.slots;
  t.total <- t.total + 1

let to_list t =
  let cap = Array.length t.slots in
  let n = length t in
  (* oldest element sits at [next] once the ring has wrapped, at 0 before *)
  let start = if t.total > cap then t.next else 0 in
  List.init n (fun i ->
      match t.slots.((start + i) mod cap) with
      | Some x -> x
      | None -> assert false)

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.next <- 0;
  t.total <- 0

let num_buckets = 40

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable max : float;
}

let create () = { buckets = Array.make num_buckets 0; count = 0; sum = 0.0; max = 0.0 }

(* bucket 0: v < 1us; bucket i: 2^(i-1) <= v < 2^i; last bucket open-ended *)
let bucket_index v =
  if v < 1.0 then 0
  else begin
    let i = ref 0 and x = ref 1.0 in
    while !i < num_buckets - 1 && v >= !x do
      incr i;
      x := !x *. 2.0
    done;
    !i
  end

let bucket_upper_us i =
  if i >= num_buckets - 1 then infinity else 2.0 ** float_of_int i

let add t v =
  let v = if v < 0.0 then 0.0 else v in
  t.buckets.(bucket_index v) <- t.buckets.(bucket_index v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v > t.max then t.max <- v

let count t = t.count
let sum_us t = t.sum
let mean_us t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
let max_us t = t.max
let bucket_count t i = t.buckets.(i)

let percentile_us t p =
  if t.count = 0 then 0.0
  else begin
    let target = p *. float_of_int t.count in
    let acc = ref 0 and found = ref (num_buckets - 1) in
    (try
       for i = 0 to num_buckets - 1 do
         acc := !acc + t.buckets.(i);
         if float_of_int !acc >= target then begin
           found := i;
           raise Exit
         end
       done
     with Exit -> ());
    let u = bucket_upper_us !found in
    if u = infinity || u > t.max then t.max else u
  end

let merge_into dst src =
  Array.iteri (fun i n -> dst.buckets.(i) <- dst.buckets.(i) + n) src.buckets;
  dst.count <- dst.count + src.count;
  dst.sum <- dst.sum +. src.sum;
  if src.max > dst.max then dst.max <- src.max

(** Structured tracing and metrics for the protocol stack.

    One [t] per principal (replica or client). The default sink {!null} is
    disabled: every recording function returns immediately after one field
    read, and call sites guard any argument computation that would
    allocate behind {!enabled}, so a disabled trace is provably inert —
    it touches no RNG, no clock, no CPU cost accounting, and the pinned
    fuzz-seed committed-history digests are byte-identical with tracing
    on or off (enforced by [test_obs.ml]).

    When enabled, each node keeps:
    - a fixed-capacity {!Ring} of timestamped protocol events (virtual
      nanoseconds), so the recent history survives to be dumped when an
      oracle fails or a run wedges;
    - per-phase latency {!Hist}s along the request pipeline
      (request -> pre-prepared -> prepared -> committed -> executed ->
      replied) plus end-to-end request->reply;
    - counters for retransmissions, timeouts, and rejected snapshots.

    Network-level counters (drops, duplicates, CPU backlog high-water
    marks) live in [Bft_net.Network] / [Bft_sim.Engine] and are joined in
    at dump time by the callers. *)

type phase = Preprepared | Prepared | Committed | Executed | Replied

val phase_index : phase -> int
(** 0..4 in pipeline order. *)

val phase_name : int -> string
(** Name of the interval ending at phase [i], e.g. ["req->preprep"]. *)

type event =
  | Request_arrival of { client : int; digest : string }
  | Phase_transition of { phase : phase; view : int; seq : int }
  | Reply_sent of { client : int; seq : int; tentative : bool }
  | Client_retransmit of { timestamp : int64; retries : int; delay_us : float }
  | Client_complete of { timestamp : int64; latency_us : float }
  | View_change_start of { from_view : int; to_view : int }
  | New_view_entered of { view : int }
  | Checkpoint_stable of { seq : int }
  | Transfer_start of { target : int }
  | Transfer_fetch of { level : int; index : int }
  | Transfer_done of { target : int }
  | Recovery_phase of { phase : string }
  | Snapshot_rejected of { reason : string }
  | Invoke_timeout of { op : string }
  | Checkpoint_taken of { seq : int; bytes : int; dirty : int; clean : int }
  | Admission_drop of { client : int }
      (** A request beyond the client's in-flight quota was dropped. *)
  | Retransmit_suppressed of { peer : int }
      (** A retransmission to [peer] was withheld by the per-peer budget. *)
  | Slowness_view_change of { view : int; ewma_us : float; baseline_us : float }
      (** The primary performance watchdog demanded a view change. *)

type entry = { at : int64; ev : event }
(** [at] is virtual nanoseconds; [-1L] for events recorded outside the
    simulation clock (e.g. a snapshot rejected inside the service). *)

type t

val null : t
(** The shared disabled sink: every record call is a no-op. *)

val enabled : t -> bool
val node : t -> int

(** {2 Recording} — all no-ops on a disabled [t].

    Callers pass the current virtual time explicitly ([now], nanoseconds)
    so this library needs no dependency on the simulation engine. *)

val request_arrival : t -> now:int64 -> client:int -> digest:string -> unit

val batch_assigned : t -> now:int64 -> seq:int -> digests:string list -> unit
(** Feed the request->preprepared histogram from the arrival times of the
    requests just pre-prepared at [seq] (digests without a recorded
    arrival are skipped — e.g. a backup that never saw the request). *)

val phase : t -> now:int64 -> phase -> view:int -> seq:int -> unit
(** Record a phase transition for [seq]. Only the first transition per
    (seq, phase) counts; the latency since the previous recorded phase of
    the same sequence number feeds that interval's histogram. *)

val reply_sent :
  t -> now:int64 -> client:int -> seq:int -> digest:string -> tentative:bool -> unit
(** Also closes the end-to-end histogram for [digest] if its arrival was
    seen, and releases the arrival entry. *)

val client_retransmit : t -> now:int64 -> timestamp:int64 -> retries:int -> delay_us:float -> unit
val client_complete : t -> now:int64 -> timestamp:int64 -> latency_us:float -> unit
val view_change_start : t -> now:int64 -> from_view:int -> to_view:int -> unit
val new_view_entered : t -> now:int64 -> view:int -> unit

val checkpoint_stable : t -> now:int64 -> seq:int -> unit
(** Also prunes per-sequence phase marks at or below [seq] (bounded
    memory across long runs). *)

val transfer_start : t -> now:int64 -> target:int -> unit
val transfer_fetch : t -> now:int64 -> level:int -> index:int -> unit
val transfer_done : t -> now:int64 -> target:int -> unit
val recovery_phase : t -> now:int64 -> string -> unit
val snapshot_rejected : t -> reason:string -> unit
val invoke_timeout : t -> now:int64 -> op:string -> unit

val admission_drop : t -> now:int64 -> client:int -> unit
val retransmit_suppress : t -> now:int64 -> peer:int -> unit

val slowness_view_change :
  t -> now:int64 -> view:int -> ewma_us:float -> baseline_us:float -> unit

val checkpoint_taken :
  t -> now:int64 -> seq:int -> bytes:int -> dirty:int -> clean:int -> unit
(** One checkpoint build: [bytes] actually digested, [dirty] pages
    re-hashed vs [clean] pages reused from the previous tree — the
    incremental-checkpointing effectiveness metric (Section 5.3). *)

val batch_formed : t -> len:int -> unit
(** One batch formed by the primary carrying [len] requests — feeds the
    batch-occupancy histogram behind the adaptive batch sizer. *)

val vpool_submit : t -> items:int -> unit
(** One verification-pool flush by this node carrying [items] jobs. The
    pool's own global counters (merge high-water mark, worker share) live
    in [Bft_crypto.Vpool.stats] and are joined in at dump time. *)

(** {2 Reading} *)

val events : ?last:int -> t -> entry list
(** Most recent events, oldest first; [last] trims to the final [n]. *)

val entry_to_string : entry -> string

val phase_hist : t -> int -> Hist.t
(** Histogram of pipeline interval [i] (see {!phase_name}), 0..4. *)

val e2e_hist : t -> Hist.t

val checkpoint_bytes_hist : t -> Hist.t
(** Bytes digested per checkpoint. The histogram machinery is shared with
    the latency histograms, so the [_us] accessors on it read as plain
    bytes. *)

val batch_occupancy_hist : t -> Hist.t
(** Requests per batch formed at the primary (values are counts, not us). *)

val retransmissions : t -> int
val snapshot_rejections : t -> int
val timeouts : t -> int

val checkpoint_dirty_pages : t -> int
val checkpoint_clean_pages : t -> int
(** Cumulative page counts across all checkpoints taken. *)

val vpool_batches : t -> int
val vpool_items : t -> int
(** Cumulative verification-pool flushes / jobs submitted by this node. *)

val admission_dropped : t -> int
val retransmit_suppressed : t -> int
val slowness_view_changes : t -> int
(** Attack-defense counters (admission control, retransmission budget,
    primary performance watchdog). *)

val summary_lines : t -> string list
(** Human-readable per-node metrics block (phase table + counters). *)

val to_json : t -> string

(** {2 Registry} — one [t] per node id, created on demand. *)

type registry

val registry : ?capacity:int -> unit -> registry
(** An enabled registry; [capacity] is the per-node ring size
    (default 1024). *)

val for_node : registry -> int -> t
val nodes : registry -> (int * t) list
(** Sorted by node id. *)

val registry_to_json : registry -> string

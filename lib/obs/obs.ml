type phase = Preprepared | Prepared | Committed | Executed | Replied

let phase_index = function
  | Preprepared -> 0
  | Prepared -> 1
  | Committed -> 2
  | Executed -> 3
  | Replied -> 4

let phase_label = function
  | Preprepared -> "preprepared"
  | Prepared -> "prepared"
  | Committed -> "committed"
  | Executed -> "executed"
  | Replied -> "replied"

(* interval i ends at phase i *)
let phase_name = function
  | 0 -> "req->preprep"
  | 1 -> "preprep->prepared"
  | 2 -> "prepared->committed"
  | 3 -> "committed->executed"
  | 4 -> "executed->replied"
  | _ -> invalid_arg "Obs.phase_name"

type event =
  | Request_arrival of { client : int; digest : string }
  | Phase_transition of { phase : phase; view : int; seq : int }
  | Reply_sent of { client : int; seq : int; tentative : bool }
  | Client_retransmit of { timestamp : int64; retries : int; delay_us : float }
  | Client_complete of { timestamp : int64; latency_us : float }
  | View_change_start of { from_view : int; to_view : int }
  | New_view_entered of { view : int }
  | Checkpoint_stable of { seq : int }
  | Transfer_start of { target : int }
  | Transfer_fetch of { level : int; index : int }
  | Transfer_done of { target : int }
  | Recovery_phase of { phase : string }
  | Snapshot_rejected of { reason : string }
  | Invoke_timeout of { op : string }
  | Checkpoint_taken of { seq : int; bytes : int; dirty : int; clean : int }
  | Admission_drop of { client : int }
  | Retransmit_suppressed of { peer : int }
  | Slowness_view_change of { view : int; ewma_us : float; baseline_us : float }

type entry = { at : int64; ev : event }

let num_phases = 5
let unmarked = Int64.min_int

type t = {
  t_enabled : bool;
  t_node : int;
  ring : entry Ring.t;
  (* interval histograms: phase_hists.(i) holds the latency of the
     interval ending at phase i (phase_name i) *)
  phase_hists : Hist.t array;
  e2e : Hist.t;
  ckpt_bytes : Hist.t; (* bytes digested per checkpoint (values are bytes, not us) *)
  batch_occ : Hist.t; (* requests per formed batch (values are counts, not us) *)
  arrivals : (string, int64) Hashtbl.t; (* request digest -> arrival time *)
  marks : (int, int64 array) Hashtbl.t; (* seq -> per-phase first-transition times *)
  mutable n_retransmissions : int;
  mutable n_snapshot_rejected : int;
  mutable n_timeouts : int;
  mutable n_ckpt_dirty_pages : int;
  mutable n_ckpt_clean_pages : int;
  (* verification-pool submissions by this node: batches flushed and items
     carried (the pool's own global stats — merge hwm, worker share — live
     in Bft_crypto.Vpool and are joined by the tools at dump time) *)
  mutable n_vpool_batches : int;
  mutable n_vpool_items : int;
  (* defenses against Chondros-style "practicality" attacks *)
  mutable n_admission_dropped : int;
  mutable n_retransmit_suppressed : int;
  mutable n_slowness_vc : int;
}

let make ~enabled ~node ~capacity =
  {
    t_enabled = enabled;
    t_node = node;
    ring = Ring.create capacity;
    phase_hists = Array.init num_phases (fun _ -> Hist.create ());
    e2e = Hist.create ();
    ckpt_bytes = Hist.create ();
    batch_occ = Hist.create ();
    arrivals = Hashtbl.create (if enabled then 64 else 1);
    marks = Hashtbl.create (if enabled then 64 else 1);
    n_retransmissions = 0;
    n_snapshot_rejected = 0;
    n_timeouts = 0;
    n_ckpt_dirty_pages = 0;
    n_ckpt_clean_pages = 0;
    n_vpool_batches = 0;
    n_vpool_items = 0;
    n_admission_dropped = 0;
    n_retransmit_suppressed = 0;
    n_slowness_vc = 0;
  }

let null = make ~enabled:false ~node:(-1) ~capacity:1
let enabled t = t.t_enabled
let node t = t.t_node

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let record t ~at ev = Ring.push t.ring { at; ev }

let request_arrival t ~now ~client ~digest =
  if t.t_enabled then begin
    if not (Hashtbl.mem t.arrivals digest) then Hashtbl.replace t.arrivals digest now;
    record t ~at:now (Request_arrival { client; digest })
  end

let marks_for t seq =
  match Hashtbl.find_opt t.marks seq with
  | Some a -> a
  | None ->
      let a = Array.make num_phases unmarked in
      Hashtbl.replace t.marks seq a;
      a

let batch_assigned t ~now ~seq ~digests =
  if t.t_enabled then begin
    ignore seq;
    List.iter
      (fun d ->
        match Hashtbl.find_opt t.arrivals d with
        | Some at ->
            Hist.add t.phase_hists.(0) (Int64.to_float (Int64.sub now at) /. 1_000.0)
        | None -> ())
      digests
  end

let phase t ~now ph ~view ~seq =
  if t.t_enabled then begin
    let i = phase_index ph in
    let m = marks_for t seq in
    if Int64.equal m.(i) unmarked then begin
      m.(i) <- now;
      (* latency from the nearest earlier recorded phase of this seq *)
      if i > 0 then begin
        let j = ref (i - 1) in
        while !j > 0 && Int64.equal m.(!j) unmarked do decr j done;
        if not (Int64.equal m.(!j) unmarked) then
          Hist.add t.phase_hists.(i) (Int64.to_float (Int64.sub now m.(!j)) /. 1_000.0)
      end;
      record t ~at:now (Phase_transition { phase = ph; view; seq })
    end
  end

let reply_sent t ~now ~client ~seq ~digest ~tentative =
  if t.t_enabled then begin
    phase t ~now Replied ~view:0 ~seq;
    (match Hashtbl.find_opt t.arrivals digest with
    | Some at ->
        Hist.add t.e2e (Int64.to_float (Int64.sub now at) /. 1_000.0);
        Hashtbl.remove t.arrivals digest
    | None -> ());
    record t ~at:now (Reply_sent { client; seq; tentative })
  end

let client_retransmit t ~now ~timestamp ~retries ~delay_us =
  if t.t_enabled then begin
    t.n_retransmissions <- t.n_retransmissions + 1;
    record t ~at:now (Client_retransmit { timestamp; retries; delay_us })
  end

let client_complete t ~now ~timestamp ~latency_us =
  if t.t_enabled then begin
    Hist.add t.e2e latency_us;
    record t ~at:now (Client_complete { timestamp; latency_us })
  end

let view_change_start t ~now ~from_view ~to_view =
  if t.t_enabled then record t ~at:now (View_change_start { from_view; to_view })

let new_view_entered t ~now ~view =
  if t.t_enabled then record t ~at:now (New_view_entered { view })

let checkpoint_stable t ~now ~seq =
  if t.t_enabled then begin
    Hashtbl.iter
      (fun s _ -> if s <= seq then Hashtbl.remove t.marks s)
      (Hashtbl.copy t.marks);
    record t ~at:now (Checkpoint_stable { seq })
  end

let transfer_start t ~now ~target =
  if t.t_enabled then record t ~at:now (Transfer_start { target })

let transfer_fetch t ~now ~level ~index =
  if t.t_enabled then record t ~at:now (Transfer_fetch { level; index })

let transfer_done t ~now ~target =
  if t.t_enabled then record t ~at:now (Transfer_done { target })

let recovery_phase t ~now phase =
  if t.t_enabled then record t ~at:now (Recovery_phase { phase })

let snapshot_rejected t ~reason =
  if t.t_enabled then begin
    t.n_snapshot_rejected <- t.n_snapshot_rejected + 1;
    (* the service has no simulation clock in scope *)
    record t ~at:(-1L) (Snapshot_rejected { reason })
  end

let checkpoint_taken t ~now ~seq ~bytes ~dirty ~clean =
  if t.t_enabled then begin
    Hist.add t.ckpt_bytes (float_of_int bytes);
    t.n_ckpt_dirty_pages <- t.n_ckpt_dirty_pages + dirty;
    t.n_ckpt_clean_pages <- t.n_ckpt_clean_pages + clean;
    record t ~at:now (Checkpoint_taken { seq; bytes; dirty; clean })
  end

let batch_formed t ~len = if t.t_enabled then Hist.add t.batch_occ (float_of_int len)

let vpool_submit t ~items =
  if t.t_enabled then begin
    t.n_vpool_batches <- t.n_vpool_batches + 1;
    t.n_vpool_items <- t.n_vpool_items + items
  end

let admission_drop t ~now ~client =
  if t.t_enabled then begin
    t.n_admission_dropped <- t.n_admission_dropped + 1;
    record t ~at:now (Admission_drop { client })
  end

let retransmit_suppress t ~now ~peer =
  if t.t_enabled then begin
    t.n_retransmit_suppressed <- t.n_retransmit_suppressed + 1;
    record t ~at:now (Retransmit_suppressed { peer })
  end

let slowness_view_change t ~now ~view ~ewma_us ~baseline_us =
  if t.t_enabled then begin
    t.n_slowness_vc <- t.n_slowness_vc + 1;
    record t ~at:now (Slowness_view_change { view; ewma_us; baseline_us })
  end

let invoke_timeout t ~now ~op =
  if t.t_enabled then begin
    t.n_timeouts <- t.n_timeouts + 1;
    record t ~at:now (Invoke_timeout { op })
  end

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let events ?last t =
  let l = Ring.to_list t.ring in
  match last with
  | None -> l
  | Some n ->
      let len = List.length l in
      if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

(* digests are raw hash bytes; show a short hex prefix *)
let short_digest d =
  let n = min 4 (String.length d) in
  let b = Buffer.create (n * 2) in
  for i = 0 to n - 1 do
    Buffer.add_string b (Printf.sprintf "%02x" (Char.code d.[i]))
  done;
  Buffer.contents b

let event_to_string = function
  | Request_arrival { client; digest } ->
      Printf.sprintf "request-arrival client=%d req=%s" client (short_digest digest)
  | Phase_transition { phase = Replied; view = _; seq } ->
      (* the reply path records this mark without a meaningful view *)
      Printf.sprintf "replied n=%d" seq
  | Phase_transition { phase; view; seq } ->
      Printf.sprintf "%s v=%d n=%d" (phase_label phase) view seq
  | Reply_sent { client; seq; tentative } ->
      Printf.sprintf "reply-sent client=%d n=%d%s" client seq
        (if tentative then " tentative" else "")
  | Client_retransmit { timestamp; retries; delay_us } ->
      Printf.sprintf "client-retransmit t=%Ld retries=%d after=%.0fus" timestamp retries
        delay_us
  | Client_complete { timestamp; latency_us } ->
      Printf.sprintf "client-complete t=%Ld latency=%.1fus" timestamp latency_us
  | View_change_start { from_view; to_view } ->
      Printf.sprintf "view-change-start %d->%d" from_view to_view
  | New_view_entered { view } -> Printf.sprintf "new-view v=%d" view
  | Checkpoint_stable { seq } -> Printf.sprintf "checkpoint-stable n=%d" seq
  | Transfer_start { target } -> Printf.sprintf "state-transfer-start target=%d" target
  | Transfer_fetch { level; index } ->
      Printf.sprintf "state-transfer-fetch level=%d index=%d" level index
  | Transfer_done { target } -> Printf.sprintf "state-transfer-done target=%d" target
  | Recovery_phase { phase } -> Printf.sprintf "recovery %s" phase
  | Snapshot_rejected { reason } -> Printf.sprintf "snapshot-rejected: %s" reason
  | Invoke_timeout { op } -> Printf.sprintf "invoke-timeout op=%S" op
  | Checkpoint_taken { seq; bytes; dirty; clean } ->
      Printf.sprintf "checkpoint-taken n=%d digested=%dB dirty=%d clean=%d" seq bytes dirty
        clean
  | Admission_drop { client } -> Printf.sprintf "admission-drop client=%d" client
  | Retransmit_suppressed { peer } -> Printf.sprintf "retransmit-suppressed peer=%d" peer
  | Slowness_view_change { view; ewma_us; baseline_us } ->
      Printf.sprintf "slowness-view-change v=%d ewma=%.1fus baseline=%.1fus" view ewma_us
        baseline_us

let entry_to_string e =
  if Int64.equal e.at (-1L) then Printf.sprintf "[        --] %s" (event_to_string e.ev)
  else Printf.sprintf "[%10.1fus] %s" (Int64.to_float e.at /. 1_000.0) (event_to_string e.ev)

let phase_hist t i = t.phase_hists.(i)
let e2e_hist t = t.e2e
let checkpoint_bytes_hist t = t.ckpt_bytes
let batch_occupancy_hist t = t.batch_occ
let retransmissions t = t.n_retransmissions
let snapshot_rejections t = t.n_snapshot_rejected
let timeouts t = t.n_timeouts
let checkpoint_dirty_pages t = t.n_ckpt_dirty_pages
let checkpoint_clean_pages t = t.n_ckpt_clean_pages
let vpool_batches t = t.n_vpool_batches
let vpool_items t = t.n_vpool_items
let admission_dropped t = t.n_admission_dropped
let retransmit_suppressed t = t.n_retransmit_suppressed
let slowness_view_changes t = t.n_slowness_vc

let hist_line name h =
  Printf.sprintf "  %-20s count=%-6d mean=%8.1fus p50=%8.1fus p99=%8.1fus max=%8.1fus"
    name (Hist.count h) (Hist.mean_us h) (Hist.percentile_us h 0.5)
    (Hist.percentile_us h 0.99) (Hist.max_us h)

let summary_lines t =
  let phases =
    List.init num_phases (fun i -> hist_line (phase_name i) t.phase_hists.(i))
  in
  phases
  @ [ hist_line "request->reply" t.e2e ]
  @ [
      Printf.sprintf
        "  %-20s count=%-6d mean=%8.0fB  p99=%8.0fB  max=%8.0fB  dirty=%d clean=%d"
        "checkpoint-digest"
        (Hist.count t.ckpt_bytes) (Hist.mean_us t.ckpt_bytes)
        (Hist.percentile_us t.ckpt_bytes 0.99) (Hist.max_us t.ckpt_bytes)
        t.n_ckpt_dirty_pages t.n_ckpt_clean_pages;
    ]
  @ [
      Printf.sprintf
        "  %-20s count=%-6d mean=%8.1f   p50=%8.0f   p99=%8.0f   max=%8.0f  (reqs/batch)"
        "batch-occupancy" (Hist.count t.batch_occ) (Hist.mean_us t.batch_occ)
        (Hist.percentile_us t.batch_occ 0.5) (Hist.percentile_us t.batch_occ 0.99)
        (Hist.max_us t.batch_occ);
    ]
  @ [
      Printf.sprintf "  retransmissions=%d timeouts=%d snapshot_rejected=%d events=%d"
        t.n_retransmissions t.n_timeouts t.n_snapshot_rejected (Ring.total t.ring);
      Printf.sprintf "  vpool: batches=%d items=%d" t.n_vpool_batches t.n_vpool_items;
      Printf.sprintf
        "  admission_dropped=%d retransmit_suppressed=%d slowness_view_changes=%d"
        t.n_admission_dropped t.n_retransmit_suppressed t.n_slowness_vc;
    ]

let hist_json h =
  Printf.sprintf
    "{ \"count\": %d, \"mean_us\": %.1f, \"p50_us\": %.1f, \"p99_us\": %.1f, \"max_us\": \
     %.1f }"
    (Hist.count h) (Hist.mean_us h) (Hist.percentile_us h 0.5) (Hist.percentile_us h 0.99)
    (Hist.max_us h)

let to_json t =
  let b = Buffer.create 512 in
  Buffer.add_string b "{ \"phases\": {";
  for i = 0 to num_phases - 1 do
    Buffer.add_string b
      (Printf.sprintf "%s \"%s\": %s" (if i = 0 then "" else ",") (phase_name i)
         (hist_json t.phase_hists.(i)))
  done;
  Buffer.add_string b (Printf.sprintf " }, \"e2e\": %s" (hist_json t.e2e));
  Buffer.add_string b
    (Printf.sprintf
       ", \"checkpoint\": { \"count\": %d, \"mean_bytes\": %.0f, \"p99_bytes\": %.0f, \
        \"max_bytes\": %.0f, \"dirty_pages\": %d, \"clean_pages\": %d }"
       (Hist.count t.ckpt_bytes) (Hist.mean_us t.ckpt_bytes)
       (Hist.percentile_us t.ckpt_bytes 0.99) (Hist.max_us t.ckpt_bytes)
       t.n_ckpt_dirty_pages t.n_ckpt_clean_pages);
  Buffer.add_string b
    (Printf.sprintf
       ", \"batch_occupancy\": { \"count\": %d, \"mean\": %.1f, \"p50\": %.0f, \"p99\": \
        %.0f, \"max\": %.0f }"
       (Hist.count t.batch_occ) (Hist.mean_us t.batch_occ)
       (Hist.percentile_us t.batch_occ 0.5)
       (Hist.percentile_us t.batch_occ 0.99) (Hist.max_us t.batch_occ));
  Buffer.add_string b
    (Printf.sprintf ", \"vpool\": { \"batches\": %d, \"items\": %d }" t.n_vpool_batches
       t.n_vpool_items);
  Buffer.add_string b
    (Printf.sprintf
       ", \"admission_dropped\": %d, \"retransmit_suppressed\": %d, \
        \"slowness_view_changes\": %d"
       t.n_admission_dropped t.n_retransmit_suppressed t.n_slowness_vc);
  Buffer.add_string b
    (Printf.sprintf
       ", \"retransmissions\": %d, \"timeouts\": %d, \"snapshot_rejected\": %d, \
        \"events\": %d }"
       t.n_retransmissions t.n_timeouts t.n_snapshot_rejected (Ring.total t.ring));
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

type registry = { cap : int; tbl : (int, t) Hashtbl.t }

let registry ?(capacity = 1024) () = { cap = capacity; tbl = Hashtbl.create 16 }

let for_node r id =
  match Hashtbl.find_opt r.tbl id with
  | Some t -> t
  | None ->
      let t = make ~enabled:true ~node:id ~capacity:r.cap in
      Hashtbl.replace r.tbl id t;
      t

let nodes r =
  Hashtbl.fold (fun id t acc -> (id, t) :: acc) r.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let registry_to_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  let ns = nodes r in
  List.iteri
    (fun i (id, t) ->
      Buffer.add_string b
        (Printf.sprintf "  \"node%d\": %s%s\n" id (to_json t)
           (if i = List.length ns - 1 then "" else ",")))
    ns;
  Buffer.add_string b "}\n";
  Buffer.contents b

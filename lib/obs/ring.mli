(** Fixed-capacity ring buffer for trace events.

    [push] overwrites the oldest element once the buffer is full, so a
    replica's trace always holds the most recent [capacity] events at O(1)
    cost per event and bounded memory — a run of any length can be traced
    and the tail dumped after the fact. *)

type 'a t

val create : int -> 'a t
(** [create cap] is an empty ring of capacity [cap] (at least 1). *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Elements currently held, at most [capacity]. *)

val total : 'a t -> int
(** Elements ever pushed, including the overwritten ones. *)

val push : 'a t -> 'a -> unit

val to_list : 'a t -> 'a list
(** Held elements, oldest first. *)

val clear : 'a t -> unit

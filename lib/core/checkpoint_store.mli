(** Checkpoint snapshots and their stability proofs (Sections 2.3.4, 3.2.3).

    A replica keeps one partition tree per checkpoint it still holds: the
    last stable checkpoint plus any later (possibly tentative) ones. A
    checkpoint becomes {e stable} once a certificate of matching CHECKPOINT
    messages is assembled — a quorum certificate (2f+1) under MAC
    authentication (Section 3.2.3), a weak certificate (f+1) under
    signatures (Section 2.3.4) — and the replica holds the matching tree.
    Earlier trees and log entries are then discarded. *)

type t

val create : Config.t -> page_size:int -> branching:int -> t

val take : t -> seq:int -> snapshot:string -> Partition_tree.t
(** Build (incrementally from the latest tree) and retain the checkpoint
    tree for [seq]. Returns it so the caller can charge digest costs. *)

val take_pages :
  t -> seq:int -> pages:string array -> dirty:int list -> Partition_tree.t
(** Like {!take}, but from an already-paged image with a dirty-page set
    (see [Partition_tree.update]): only dirty pages are re-digested and
    only their ancestors recomputed when the latest tree matches; falls
    back to a full copy-on-write build otherwise. [dirty] must
    over-approximate the pages that changed since the {e latest} held
    tree. *)

val install : t -> Partition_tree.t -> unit
(** Adopt a tree obtained through state transfer. *)

val tree_at : t -> int -> Partition_tree.t option
val latest : t -> Partition_tree.t option
val stable_seq : t -> int
val stable_tree : t -> Partition_tree.t option

val held : t -> (int * string) list
(** [(seq, digest)] of every retained checkpoint, ascending — the C
    component of a view-change message. *)

val add_message : t -> Message.checkpoint -> unit
(** Record a CHECKPOINT message (sender deduplicated per sequence). *)

val proof_count : t -> seq:int -> digest:string -> int

val try_stabilize : t -> (int * Partition_tree.t) option
(** If some held checkpoint newer than the current stable one has a full
    stability certificate, promote the newest such: prune older trees and
    old certificate messages, and return [(seq, tree)]. *)

val certified_digest : t -> threshold:int -> (int * string) option
(** The newest [(seq, digest)] pair vouched for by at least [threshold]
    distinct replicas' CHECKPOINT messages, regardless of whether we hold
    the tree — used to detect that we are missing state and must initiate a
    state transfer (Section 5.3.2). *)

val drop_above : t -> int -> unit
(** Discard trees with sequence numbers above the bound (recovery
    estimation, Section 4.3.2). *)

val votes_canonical : t -> (int * (int * string) list) list
(** Every retained CHECKPOINT vote as [(seq, [(replica, digest); ...])],
    both levels sorted ascending — a canonical view of the certificate
    state for the explorer's state fingerprint. *)

(** Canonical wire encoding of protocol messages.

    The encoding serves three purposes:
    - the byte string over which MACs, authenticators and signatures are
      computed (injective per message type, so authenticating the encoding
      authenticates the message);
    - the basis for message digests (request digests, batch digests,
      view-change digests);
    - the size model: the simulated network charges wire and CPU time per
      encoded byte, plus the authentication token's own size.

    Integers are 8-byte little-endian; variable-size fields are
    length-prefixed; every message starts with a distinct tag byte. *)

val encode : Message.t -> string

val decode : string -> (Message.t, string) result
(** Inverse of {!encode}: a message encodes/decodes to itself exactly
    (authentication tokens inside inline batch elements are not part of the
    wire image and decode as [Auth_none]). Malformed input yields a
    human-readable [Error]. *)

val size : Message.t -> int
(** [size m = String.length (encode m)], memoized per distinct message so
    the per-byte cost model does not pay a fresh serialization on every
    charge. *)

val auth_size : Message.auth_token -> int

(** {2 Encode-once envelopes}

    An envelope carries a {!Message.enc_cache}; these helpers fill it at
    most once. The sender encodes the body to authenticate it, and since
    the simulated network delivers the same physical envelope, receivers
    verify against the identical string — one serialization per message
    lifetime, shared by sign/MAC, [envelope_size], transmission and
    verification. *)

val cached_encode :
  ?arena:Bft_net.Wire_arena.t -> Message.enc_cache -> Message.t -> string
(** Canonical encoding of the body, memoized in the cache. [arena] routes
    the encode through a caller-owned allocate-once buffer (each node keeps
    its own); the default is a module-scratch arena. The bytes produced are
    identical either way. *)

val envelope_bytes : Message.envelope -> string
(** [cached_encode e.enc e.body]. *)

val envelope_digest : Message.envelope -> Message.digest
(** Digest of {!envelope_bytes}, also memoized. *)

val envelope_size : Message.envelope -> int
(** Header + cached body bytes + authentication token size; O(1) after the
    first call on a given envelope. *)

val clear_memos : unit -> unit
(** Drop every digest/size memo table (tests use this to compare cached
    against freshly computed values; never needed for correctness). *)

val request_digest : Message.request -> Message.digest
(** Digest identifying a request: covers client, timestamp, operation and
    flags. *)

val batch_digest : Message.batch_elem list -> string -> Message.digest
(** [batch_digest batch nondet] identifies the ordered content of a
    pre-prepare independently of its view/sequence assignment, so a
    re-proposal in a later view keeps the same digest. Inline requests
    contribute their request digest. *)

val null_batch_digest : Message.digest
(** Digest of the null request batch chosen for gaps in new views. *)

val view_change_digest : Message.view_change -> Message.digest
val checkpoint_value_digest : string -> Message.digest
val result_digest : string -> Message.digest

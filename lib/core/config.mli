(** Static configuration of a replica group.

    [n = 3f + 1] replicas with ids [0 .. n-1]; clients use ids [>= n].
    The primary of view [v] is replica [v mod n] (Section 2.3). *)

type auth_mode =
  | Mac_auth  (** BFT: authenticators / MACs everywhere (Chapter 3) *)
  | Sig_auth  (** BFT-PK: public-key signatures on all messages (Chapter 2) *)

type t = {
  f : int;  (** maximum simultaneous faults tolerated *)
  n : int;  (** number of replicas, 3f+1 *)
  auth_mode : auth_mode;
  checkpoint_interval : int;  (** K: checkpoint every K sequence numbers *)
  log_size : int;  (** L: high water mark is [h + L]; typically 2K *)
  max_batch : int;  (** max requests batched in one pre-prepare *)
  batching : bool;  (** Section 5.1.4; off = one request per instance *)
  adaptive_batch : bool;
      (** Queue-depth-tracking batch sizer at the primary: the batch target
          doubles while the request queue keeps up with it (congestion) and
          decays toward the observed depth when it does not, within
          [1 .. max_batch]. Deterministic — the target depends only on the
          sequence of queue depths at batch-formation points. Off by
          default: enabling it changes batch boundaries and hence the
          pinned committed-history digests. *)
  window : int;
      (** sliding window of concurrent protocol instances beyond the last
          executed batch; once full, arriving requests queue at the primary
          and are batched (Section 5.1.4) *)
  tentative_execution : bool;  (** Section 5.1.2 *)
  read_only_opt : bool;  (** Section 5.1.3 *)
  digest_replies : bool;  (** Section 5.1.1 *)
  digest_replies_threshold : int;  (** results below this are sent in full *)
  separate_tx_threshold : int;
      (** requests above this size are multicast by the client and carried
          by digest in pre-prepares (Section 5.1.5) *)
  client_retry_us : float;  (** client retransmission timeout (base) *)
  client_retry_max_us : float;
      (** cap on the exponentially backed-off retransmission delay *)
  vc_timeout_us : float;  (** initial view-change timeout T (doubles) *)
  status_interval_us : float;  (** periodic status message interval *)
  recovery : bool;  (** BFT-PR proactive recovery (Chapter 4) *)
  watchdog_period_us : float;
  key_refresh_us : float;  (** session-key refresh period *)
  null_exec_cost_us : float;
  debug_no_vc_timer : bool;
      (** Injected bug for explorer/fuzzer validation: backups never arm
          the view-change timer, so a faulty primary is never displaced —
          the liveness oracles must catch the resulting stall. Never set
          outside tests. *)
  client_quota : int;
      (** Admission control: maximum distinct requests a single client may
          have in flight at a replica (queued, assigned to a batch, or
          awaited from the primary). Requests beyond the quota are dropped
          and counted, bounding the damage a flooding client can do to
          others (Chondros et al.'s client-flood attack). Correct clients
          run closed-loop with one outstanding request, so the default of
          64 never fires outside an attack. *)
  retransmit_budget : int option;
      (** Per-peer retransmission budget: when [Some b], at most [b]
          retransmitted protocol messages are sent to a given replica per
          status interval, with exponential backoff on the refill period
          while the peer keeps exhausting its budget. Defends against
          wrong-MAC peers whose status messages always claim to be behind
          (the mac_storm retransmission amplification). [None] (default)
          preserves the paper's unbounded retransmission behaviour. *)
  perf_watchdog : bool;
      (** Primary performance monitoring: backups track the latency from
          accepting a request to executing it and trigger a view change
          when the smoothed latency degrades beyond [perf_factor] times
          the best baseline observed, even though the primary is not
          silent (the slow-primary attack). Off by default. *)
  perf_factor : float;
      (** Slowness threshold multiplier over the observed baseline. *)
  perf_min_samples : int;
      (** Executions observed before the watchdog baseline is trusted. *)
}

val make :
  ?auth_mode:auth_mode ->
  ?checkpoint_interval:int ->
  ?log_size:int ->
  ?max_batch:int ->
  ?batching:bool ->
  ?adaptive_batch:bool ->
  ?window:int ->
  ?tentative_execution:bool ->
  ?read_only_opt:bool ->
  ?digest_replies:bool ->
  ?digest_replies_threshold:int ->
  ?separate_tx_threshold:int ->
  ?client_retry_us:float ->
  ?client_retry_max_us:float ->
  ?vc_timeout_us:float ->
  ?status_interval_us:float ->
  ?recovery:bool ->
  ?watchdog_period_us:float ->
  ?key_refresh_us:float ->
  ?debug_no_vc_timer:bool ->
  ?client_quota:int ->
  ?retransmit_budget:int ->
  ?perf_watchdog:bool ->
  ?perf_factor:float ->
  ?perf_min_samples:int ->
  f:int ->
  unit ->
  t

val primary : t -> view:int -> int
val is_primary : t -> view:int -> id:int -> bool
val quorum : t -> int
(** 2f+1: quorum certificate size. *)

val weak : t -> int
(** f+1: weak certificate size. *)

val replica_ids : t -> int list
val in_window : t -> h:int -> int -> bool
(** [in_window t ~h n] iff [h < n <= h + L]. *)

(** Static configuration of a replica group.

    [n = 3f + 1] replicas with ids [0 .. n-1]; clients use ids [>= n].
    The primary of view [v] is replica [v mod n] (Section 2.3). *)

type auth_mode =
  | Mac_auth  (** BFT: authenticators / MACs everywhere (Chapter 3) *)
  | Sig_auth  (** BFT-PK: public-key signatures on all messages (Chapter 2) *)

type t = {
  f : int;  (** maximum simultaneous faults tolerated *)
  n : int;  (** number of replicas, 3f+1 *)
  auth_mode : auth_mode;
  checkpoint_interval : int;  (** K: checkpoint every K sequence numbers *)
  log_size : int;  (** L: high water mark is [h + L]; typically 2K *)
  max_batch : int;  (** max requests batched in one pre-prepare *)
  batching : bool;  (** Section 5.1.4; off = one request per instance *)
  window : int;
      (** sliding window of concurrent protocol instances beyond the last
          executed batch; once full, arriving requests queue at the primary
          and are batched (Section 5.1.4) *)
  tentative_execution : bool;  (** Section 5.1.2 *)
  read_only_opt : bool;  (** Section 5.1.3 *)
  digest_replies : bool;  (** Section 5.1.1 *)
  digest_replies_threshold : int;  (** results below this are sent in full *)
  separate_tx_threshold : int;
      (** requests above this size are multicast by the client and carried
          by digest in pre-prepares (Section 5.1.5) *)
  client_retry_us : float;  (** client retransmission timeout (base) *)
  client_retry_max_us : float;
      (** cap on the exponentially backed-off retransmission delay *)
  vc_timeout_us : float;  (** initial view-change timeout T (doubles) *)
  status_interval_us : float;  (** periodic status message interval *)
  recovery : bool;  (** BFT-PR proactive recovery (Chapter 4) *)
  watchdog_period_us : float;
  key_refresh_us : float;  (** session-key refresh period *)
  null_exec_cost_us : float;
  debug_no_vc_timer : bool;
      (** Injected bug for explorer/fuzzer validation: backups never arm
          the view-change timer, so a faulty primary is never displaced —
          the liveness oracles must catch the resulting stall. Never set
          outside tests. *)
}

val make :
  ?auth_mode:auth_mode ->
  ?checkpoint_interval:int ->
  ?log_size:int ->
  ?max_batch:int ->
  ?batching:bool ->
  ?window:int ->
  ?tentative_execution:bool ->
  ?read_only_opt:bool ->
  ?digest_replies:bool ->
  ?digest_replies_threshold:int ->
  ?separate_tx_threshold:int ->
  ?client_retry_us:float ->
  ?client_retry_max_us:float ->
  ?vc_timeout_us:float ->
  ?status_interval_us:float ->
  ?recovery:bool ->
  ?watchdog_period_us:float ->
  ?key_refresh_us:float ->
  ?debug_no_vc_timer:bool ->
  f:int ->
  unit ->
  t

val primary : t -> view:int -> int
val is_primary : t -> view:int -> id:int -> bool
val quorum : t -> int
(** 2f+1: quorum certificate size. *)

val weak : t -> int
(** f+1: weak certificate size. *)

val replica_ids : t -> int list
val in_window : t -> h:int -> int -> bool
(** [in_window t ~h n] iff [h < n <= h + L]. *)

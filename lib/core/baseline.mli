(** Unreplicated baseline: one server, plain request/reply.

    The paper compares BFS against unreplicated NFS implementations
    (Section 8.6); this module is the equivalent baseline for any service —
    the same service code and the same simulated network and crypto cost
    model (one MAC each way), minus the replication protocol. The latency
    and throughput deltas against {!Cluster} therefore isolate exactly the
    BFT protocol overhead. *)

type t

val create :
  ?seed:int64 ->
  ?costs:Bft_net.Costs.t ->
  ?service:(unit -> Bft_sm.Service.t) ->
  ?num_clients:int ->
  unit ->
  t

val engine : t -> Bft_sim.Engine.t

val invoke : t -> client:int -> string -> (result:string -> latency_us:float -> unit) -> unit

val try_invoke_sync :
  ?timeout_us:float -> t -> client:int -> string -> (string * float, string) result
(** [Error] on timeout instead of raising. *)

val invoke_sync : ?timeout_us:float -> t -> client:int -> string -> string * float
(** Raising wrapper over {!try_invoke_sync}. *)

val run_until : ?timeout_us:float -> t -> (unit -> bool) -> bool
val client_completed : t -> int -> int

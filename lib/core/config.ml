type auth_mode = Mac_auth | Sig_auth

type t = {
  f : int;
  n : int;
  auth_mode : auth_mode;
  checkpoint_interval : int;
  log_size : int;
  max_batch : int;
  batching : bool;
  adaptive_batch : bool;
  window : int;
  tentative_execution : bool;
  read_only_opt : bool;
  digest_replies : bool;
  digest_replies_threshold : int;
  separate_tx_threshold : int;
  client_retry_us : float;
  client_retry_max_us : float;
  vc_timeout_us : float;
  status_interval_us : float;
  recovery : bool;
  watchdog_period_us : float;
  key_refresh_us : float;
  null_exec_cost_us : float;
  debug_no_vc_timer : bool;
  client_quota : int;
  retransmit_budget : int option;
  perf_watchdog : bool;
  perf_factor : float;
  perf_min_samples : int;
}

let make ?(auth_mode = Mac_auth) ?(checkpoint_interval = 128) ?log_size ?(max_batch = 16)
    ?(batching = true) ?(adaptive_batch = false) ?(window = 16)
    ?(tentative_execution = true) ?(read_only_opt = true)
    ?(digest_replies = true) ?(digest_replies_threshold = 32) ?(separate_tx_threshold = 255)
    ?(client_retry_us = 20_000.0) ?(client_retry_max_us = 60_000_000.0)
    ?(vc_timeout_us = 50_000.0)
    ?(status_interval_us = 10_000.0) ?(recovery = false)
    ?(watchdog_period_us = 2_000_000.0) ?(key_refresh_us = 500_000.0)
    ?(debug_no_vc_timer = false) ?(client_quota = 64) ?retransmit_budget
    ?(perf_watchdog = false) ?(perf_factor = 6.0) ?(perf_min_samples = 8) ~f () =
  if f < 1 then invalid_arg "Config.make: f must be >= 1";
  if client_quota < 1 then invalid_arg "Config.make: client_quota must be >= 1";
  (match retransmit_budget with
  | Some b when b < 1 -> invalid_arg "Config.make: retransmit_budget must be >= 1"
  | _ -> ());
  if perf_factor <= 1.0 then invalid_arg "Config.make: perf_factor must be > 1";
  let log_size = match log_size with Some l -> l | None -> 2 * checkpoint_interval in
  if log_size < checkpoint_interval then
    invalid_arg "Config.make: log_size must be >= checkpoint_interval";
  {
    f;
    n = (3 * f) + 1;
    auth_mode;
    checkpoint_interval;
    log_size;
    max_batch;
    batching;
    adaptive_batch;
    window;
    tentative_execution;
    read_only_opt;
    digest_replies;
    digest_replies_threshold;
    separate_tx_threshold;
    client_retry_us;
    client_retry_max_us;
    vc_timeout_us;
    status_interval_us;
    recovery;
    watchdog_period_us;
    key_refresh_us;
    null_exec_cost_us = 2.0;
    debug_no_vc_timer;
    client_quota;
    retransmit_budget;
    perf_watchdog;
    perf_factor;
    perf_min_samples;
  }

let primary t ~view = view mod t.n
let is_primary t ~view ~id = primary t ~view = id
let quorum t = (2 * t.f) + 1
let weak t = t.f + 1
let replica_ids t = List.init t.n Fun.id
let in_window t ~h n = n > h && n <= h + t.log_size

module Engine = Bft_sim.Engine
module Network = Bft_net.Network
module Costs = Bft_net.Costs
module Obs = Bft_obs.Obs
open Message

let src = Logs.Src.create "bft.replica" ~doc:"BFT replica"

module L = (val Logs.src_log src : Logs.LOG)

type deps = {
  cfg : Config.t;
  net : Message.envelope Network.t;
  registry : Bft_crypto.Signature.registry;
  keychain : Bft_crypto.Keychain.t;
  signer : Bft_crypto.Signature.signer;
  service : Bft_sm.Service.t;
  rng : Bft_util.Rng.t;
  page_size : int;
  branching : int;
}

type counters = {
  mutable n_executed : int;
  mutable n_batches : int;
  mutable n_view_changes : int;
  mutable n_checkpoints : int;
  mutable n_state_transfers : int;
  mutable n_recoveries : int;
  mutable bytes_fetched : int;
  mutable n_admission_dropped : int;
  mutable n_retransmit_suppressed : int;
  mutable n_slowness_vc : int;
}

type stored_request = {
  sr_req : request;
  sr_token : auth_token;
  sr_verified : bool; (* we checked our MAC / the signature directly *)
}

(* One in-flight state transfer (Section 5.3.2). *)
type transfer = {
  tx_target : int; (* checkpoint sequence number being fetched *)
  tx_root_digest : string;
  (* (level, index) -> expected (lm, digest), discovered walking down *)
  tx_expected : (int * int, int * string) Hashtbl.t;
  tx_pending : (int * int, unit) Hashtbl.t; (* partitions fetched but unanswered *)
  tx_pages : (int, Partition_tree.page) Hashtbl.t; (* verified fetched pages *)
  mutable tx_page_level : int; (* depth of the remote tree, learnt from metas *)
  mutable tx_num_pages : int;
  tx_ok_pages : (int, unit) Hashtbl.t; (* local pages proven up-to-date *)
  mutable tx_replier : int;
  mutable tx_timer : Engine.handle option;
}

(* Per-peer retransmission token bucket (active only when
   [Config.retransmit_budget = Some b]): [b] retransmissions per refill
   window, windows stretched exponentially while the peer keeps draining
   its bucket dry — a wrong-MAC peer whose status always claims to be
   behind gets geometrically less amplification out of us. *)
type retx_state = {
  mutable rx_tokens : int;
  mutable rx_window_start : Engine.time;
  mutable rx_backoff : float; (* multiplier on the status interval *)
  mutable rx_exhausted : bool; (* bucket ran dry within this window *)
}

(* Recovery (Chapter 4) progress. *)
type recovery = {
  mutable rc_phase : [ `Estimating | `Waiting_recovery_reply | `Fetching ];
  mutable rc_request : request option; (* the signed recovery request, for retransmission *)
  rc_nonce : int64;
  (* replica -> (min c, max p) collected by the estimation protocol *)
  rc_est : (int, int * int) Hashtbl.t;
  mutable rc_est_hm : int; (* H_M once estimated *)
  mutable rc_recovery_point : int; (* H_R *)
  rc_replies : (int, int) Hashtbl.t; (* replica -> seqno in recovery reply *)
}

type t = {
  d : deps;
  id : int;
  obs : Obs.t;
  engine : Engine.t;
  costs : Costs.t;
  rng : Bft_util.Rng.t;
  counters : counters;
  (* allocate-once wire buffer for this node's outgoing encodes: broadcast
     and send_to reuse it instead of the module-wide scratch, so a node's
     encode working set stays one warm buffer *)
  arena : Bft_net.Wire_arena.t;
  (* protocol state *)
  mutable view : int;
  mutable seqno : int; (* last sequence number assigned (primary) *)
  mutable last_exec : int;
  mutable committed_upto : int;
  log : Log.t;
  ckpts : Checkpoint_store.t;
  batches : (string, batch_elem list * string) Hashtbl.t; (* digest -> batch, nondet *)
  requests : (string, stored_request) Hashtbl.t; (* request digest -> body *)
  (* primary FIFO of requests awaiting assignment: two-list queue so that
     enqueue is O(1) — the plain-list [q @ [r]] append cost O(n) per arrival
     and O(n^2) across a deep open-loop backlog. [queue_back] is reversed;
     FIFO order is [queue_front @ List.rev queue_back]. *)
  mutable queue_front : request list;
  mutable queue_back : request list;
  mutable queue_len : int;
  (* adaptive batch sizer target (Config.adaptive_batch); depends only on
     the queue depths observed at batch-formation points, so it is as
     deterministic as the queue itself *)
  mutable batch_target : int;
  queued : (string, unit) Hashtbl.t; (* digests present in the queue *)
  (* digests assigned to a batch but not yet executed: retransmissions of
     an in-flight request must not be assigned a second sequence number *)
  assigned : (string, unit) Hashtbl.t;
  last_reply : (int, int64 * string * int) Hashtbl.t; (* client -> t, result, view *)
  (* client ids present in [last_reply], kept sorted ascending so snapshot
     encoding streams the cache without a per-checkpoint sort *)
  mutable reply_clients : int list;
  (* sequence number of the tree in [ckpts] that the paged service's dirty
     set is relative to; [None] (or a mismatch with the latest tree) forces
     the next paged checkpoint to byte-compare every page *)
  mutable paged_sync : int option;
  mutable deferred_pps : pre_prepare list;
  mutable pending_ro : request list;
  (* checkpoints whose CHECKPOINT message is deferred until commit *)
  mutable pending_ckpt_announce : int list;
  (* view change state *)
  mutable active : bool;
  pset : (int, pset_entry) Hashtbl.t;
  qset : (int, (string * int) list) Hashtbl.t;
  my_vcs : (int, view_change) Hashtbl.t; (* view -> our view-change *)
  vcs : (int * int, view_change * bool) Hashtbl.t; (* (view, sender) -> vc, verified *)
  acks : (int * int, (int, string) Hashtbl.t) Hashtbl.t;
      (* (view, origin) -> acker -> digest *)
  my_acks : (int, view_change_ack list) Hashtbl.t; (* view -> acks we sent *)
  mutable new_views : (int, new_view) Hashtbl.t; (* view -> accepted/sent new-view *)
  mutable vc_timer : Engine.handle option;
  mutable vc_timeout_us : float;
  mutable deferred_nv : new_view option; (* waiting for vcs or batches *)
  (* client-request waiting set: request digest -> arrival time; drives
     the vc timer. The arrival time feeds the primary performance
     watchdog only — state digests serialize the keys alone, so the
     clock values never leak into explorer state identity. *)
  waiting : (string, Engine.time) Hashtbl.t;
  (* per-peer retransmission budget state (see [retx_state]) *)
  retx : (int, retx_state) Hashtbl.t;
  (* primary performance watchdog (Config.perf_watchdog): smoothed
     accept->execute latency vs the best smoothed latency ever seen *)
  mutable perf_ewma_us : float;
  mutable perf_samples : int;
  mutable perf_baseline_us : float; (* 0.0 = not yet established *)
  mutable perf_fired_view : int; (* last view the watchdog fired in *)
  mutable perf_view_start : Engine.time;
      (* when the current view was entered: requests that arrived earlier
         waited under the previous primary and must not feed the EWMA *)
  (* state transfer *)
  mutable transfer : transfer option;
  (* recovery *)
  mutable recovering : recovery option;
  mutable hm_bound : int; (* don't send protocol messages above this while recovering *)
  mutable coproc_counter : int64;
  mutable last_recovery_reply : (int, int64) Hashtbl.t; (* replica -> counter seen *)
  (* execution history for linearizability checks *)
  mutable history : (int * int * string * string) list; (* newest first *)
  (* per-batch execution journal, newest first: every call to
     [execute_batch] appends one record (empty list for null batches), so
     after a view-change rollback the *last* record per sequence number is
     the content that stands — rollback-proof committed history *)
  mutable batch_journal : (int * (int * string * string) list) list;
  (* fault injection *)
  mutable byzantine : bool;
  mutable muted : bool;
  (* keep participating but corrupt MACs/authenticator entries toward odd
     peers and understate protocol state in status messages (mac_storm) *)
  mutable wrong_mac : bool;
  (* primary fills with null batches until this checkpoint is stable, so a
     recovering replica's recovery point can be reached (Section 4.3.2) *)
  mutable null_fill_until : int;
  (* timers *)
  mutable status_timer : Engine.handle option;
  mutable watchdog_timer : Engine.handle option;
  mutable key_timer : Engine.handle option;
}

let id t = t.id
let view t = t.view
let keychain t = t.d.keychain
let is_active t = t.active
let last_executed t = t.last_exec
let committed_upto t = t.committed_upto
let stable_checkpoint t = Checkpoint_store.stable_seq t.ckpts
let low_water_mark t = Log.low_mark t.log
let checkpoints_held t = Checkpoint_store.held t.ckpts
let is_recovering t = t.recovering <> None
let counters t = t.counters
let service_state t = t.d.service.Bft_sm.Service.snapshot ()
let executed_ops t = List.rev t.history
let executed_batches t = List.rev t.batch_journal
let primary_of t v = Config.primary t.d.cfg ~view:v
let primary t = primary_of t t.view
let is_primary t = primary t = t.id
let quorum t = Config.quorum t.d.cfg
let weak t = Config.weak t.d.cfg
let replica_ids t = Config.replica_ids t.d.cfg
let charge t us = Network.charge t.d.net ~id:t.id us
let now t = Engine.now t.engine

(* ------------------------------------------------------------------ *)
(* Authentication                                                      *)
(* ------------------------------------------------------------------ *)

(* Authentication operates on the body's wire bytes. Each helper takes the
   envelope's encoding cache so the serialization happens exactly once:
   the auth token, [envelope_size], and every receiver's verification all
   reuse the same string. *)

let sign_bytes t bytes =
  charge t t.costs.Costs.sig_gen_us;
  Auth_sig (Bft_crypto.Signature.sign t.d.signer bytes)

let mac_bytes t ~dst bytes =
  charge t t.costs.Costs.mac_us;
  match Bft_crypto.Auth.compute_mac t.d.keychain ~peer:dst bytes with
  | Some m -> Auth_mac m
  | None -> Auth_none

let vector_bytes t ~dsts bytes =
  charge t (Costs.auth_gen_us t.costs (List.length dsts));
  Auth_vector (Bft_crypto.Auth.compute_authenticator t.d.keychain ~receivers:dsts bytes)

(* mac_storm fault injection (the paper's Section 3.2.2 partial
   authenticators, mounted by a replica): corrupt the authentication
   material destined for odd-id peers. Half the group keeps verifying us,
   so we stay live and inside the protocol; the other half silently drops
   everything we send and keeps retransmitting its window to us. *)
let wrong_mac_target t dst = t.wrong_mac && dst <> t.id && dst mod 2 = 1

let corrupt_mac_tag (m : Bft_crypto.Auth.mac) =
  let tag = Bytes.of_string m.Bft_crypto.Auth.tag in
  if Bytes.length tag > 0 then
    Bytes.set tag 0 (Char.chr (Char.code (Bytes.get tag 0) lxor 0xff));
  { m with Bft_crypto.Auth.tag = Bytes.to_string tag }

let corrupt_auth t auth ~dsts =
  match auth with
  | Auth_vector a ->
      Auth_vector
        (List.fold_left
           (fun a dst ->
             if wrong_mac_target t dst then Bft_crypto.Auth.corrupt_entry a dst else a)
           a dsts)
  | Auth_mac m when List.exists (wrong_mac_target t) dsts -> Auth_mac (corrupt_mac_tag m)
  | auth -> auth

(* Multicast to all replicas (including self: the paper's replicas process
   their own protocol messages through the log). The body is encoded once;
   the single precomputed [envelope_size] covers every destination. *)
let broadcast t body =
  if not t.muted then begin
    let enc = Message.no_cache () in
    let bytes = Wire.cached_encode ~arena:t.arena enc body in
    let auth =
      match (t.d.cfg.Config.auth_mode, body) with
      | _, New_key _ -> sign_bytes t bytes
      | Config.Sig_auth, _ -> sign_bytes t bytes
      | Config.Mac_auth, _ -> vector_bytes t ~dsts:(replica_ids t) bytes
    in
    let auth = if t.wrong_mac then corrupt_auth t auth ~dsts:(replica_ids t) else auth in
    let env = { sender = t.id; body; auth; enc } in
    Network.multicast t.d.net ~src:t.id ~dsts:(replica_ids t)
      ~size:(Wire.envelope_size env) env
  end

let send_to t ~dst body =
  if not t.muted then begin
    let enc = Message.no_cache () in
    let bytes = Wire.cached_encode ~arena:t.arena enc body in
    let auth =
      match t.d.cfg.Config.auth_mode with
      | Config.Sig_auth -> sign_bytes t bytes
      | Config.Mac_auth -> mac_bytes t ~dst bytes
    in
    let auth = if t.wrong_mac then corrupt_auth t auth ~dsts:[ dst ] else auth in
    let env = { sender = t.id; body; auth; enc } in
    Network.send t.d.net ~src:t.id ~dst ~size:(Wire.envelope_size env) env
  end

(* Per-peer retransmission budget (see [retx_state]): inert when
   [Config.retransmit_budget] is [None]. *)
let retx_allow t peer =
  match t.d.cfg.Config.retransmit_budget with
  | None -> true
  | Some b ->
      let st =
        match Hashtbl.find_opt t.retx peer with
        | Some st -> st
        | None ->
            let st =
              {
                rx_tokens = b;
                rx_window_start = now t;
                rx_backoff = 1.0;
                rx_exhausted = false;
              }
            in
            Hashtbl.replace t.retx peer st;
            st
      in
      let window =
        Engine.of_us_float (st.rx_backoff *. t.d.cfg.Config.status_interval_us)
      in
      if Int64.compare (Int64.sub (now t) st.rx_window_start) window >= 0 then begin
        (* refill; a peer that drained the previous window dry waits
           geometrically longer for the next one (capped) *)
        st.rx_backoff <-
          (if st.rx_exhausted then Float.min 16.0 (st.rx_backoff *. 2.0) else 1.0);
        st.rx_tokens <- b;
        st.rx_window_start <- now t;
        st.rx_exhausted <- false
      end;
      if st.rx_tokens > 0 then begin
        st.rx_tokens <- st.rx_tokens - 1;
        true
      end
      else begin
        st.rx_exhausted <- true;
        t.counters.n_retransmit_suppressed <- t.counters.n_retransmit_suppressed + 1;
        if Obs.enabled t.obs then Obs.retransmit_suppress t.obs ~now:(now t) ~peer;
        false
      end

(* Retransmission-class point-to-point send, counted against the
   destination's budget. *)
let send_retx t ~dst body = if retx_allow t dst then send_to t ~dst body

(* Send with no authentication (DATA replies are verified by digest,
   Section 5.3.2). *)
let send_plain t ~dst body =
  if not t.muted then begin
    let env = Message.envelope ~sender:t.id ~auth:Auth_none body in
    Network.send t.d.net ~src:t.id ~dst ~size:(Wire.envelope_size env) env
  end

(* MAC verification crosses the verification pool as a one-item batch:
   [Vpool.run] executes sub-parallel batches inline on the caller, so the
   verdict and the virtual-time charge are exactly the sequential path's —
   the pool only changes who does the HMAC arithmetic, never the result
   order. Signatures stay on the caller (cheap to model, nothing to
   batch). *)
let pool_verify t item =
  if Obs.enabled t.obs then Obs.vpool_submit t.obs ~items:1;
  (Bft_crypto.Auth.verify_batch t.d.keychain [| item |]).(0)

let verify_token_bytes t ~claimed bytes token =
  match token with
  | Auth_none -> false
  | Auth_sig s ->
      charge t t.costs.Costs.sig_verify_us;
      s.Bft_crypto.Signature.signer_id = claimed
      && Bft_crypto.Signature.verify t.d.registry s bytes
  | Auth_mac m ->
      charge t t.costs.Costs.mac_us;
      pool_verify t (Bft_crypto.Auth.Item_mac { peer = claimed; mac = m; msg = bytes })
  | Auth_vector a ->
      charge t t.costs.Costs.mac_us;
      pool_verify t (Bft_crypto.Auth.Item_auth { peer = claimed; auth = a; msg = bytes })

let verify_token t ~claimed body token =
  verify_token_bytes t ~claimed (Wire.encode body) token

(* ------------------------------------------------------------------ *)
(* State snapshots: service state + reply cache (the paper's checkpoints
   snapshot val, last-rep and last-rep-t together, Section 2.4.4).       *)
(* ------------------------------------------------------------------ *)

(* Record the reply for a client, keeping [reply_clients] sorted. *)
let set_last_reply t client entry =
  if not (Hashtbl.mem t.last_reply client) then begin
    let rec ins = function
      | c :: tl when c < client -> c :: ins tl
      | l -> client :: l
    in
    t.reply_clients <- ins t.reply_clients
  end;
  Hashtbl.replace t.last_reply client entry

(* Stream the reply cache into [b] in ascending client order: one
   "client ts view len\nresult" record per client, written directly
   (no per-entry [Printf.sprintf], no per-checkpoint sort). *)
let encode_reply_cache t b =
  List.iter
    (fun c ->
      match Hashtbl.find_opt t.last_reply c with
      | None -> ()
      | Some (ts, res, v) ->
          Buffer.add_string b (string_of_int c);
          Buffer.add_char b ' ';
          Buffer.add_string b (Int64.to_string ts);
          Buffer.add_char b ' ';
          Buffer.add_string b (string_of_int v);
          Buffer.add_char b ' ';
          Buffer.add_string b (string_of_int (String.length res));
          Buffer.add_char b '\n';
          Buffer.add_string b res)
    t.reply_clients

let full_snapshot t =
  let b = Buffer.create 256 in
  let svc = t.d.service.Bft_sm.Service.snapshot () in
  Buffer.add_string b (string_of_int (String.length svc));
  Buffer.add_char b '\n';
  Buffer.add_string b svc;
  encode_reply_cache t b;
  Buffer.contents b

(* Parse the reply-cache region [s.(pos..len-1)]; every record is validated
   before any replica state is touched. *)
let parse_reply_cache s ~pos ~len =
  let rec go pos acc =
    if pos >= len then Ok (List.rev acc)
    else
      match String.index_from_opt s pos '\n' with
      | None -> Error "unterminated reply-cache header"
      | Some nl -> (
          match String.split_on_char ' ' (String.sub s pos (nl - pos)) with
          | [ c; ts; v; rlen ] -> (
              match
                ( int_of_string_opt c,
                  Int64.of_string_opt ts,
                  int_of_string_opt v,
                  int_of_string_opt rlen )
              with
              | Some c, Some ts, Some v, Some rlen when rlen >= 0 && nl + 1 + rlen <= len ->
                  let res = String.sub s (nl + 1) rlen in
                  go (nl + 1 + rlen) ((c, (ts, res, v)) :: acc)
              | _ -> Error "truncated or malformed reply-cache record")
          | _ -> Error "malformed reply-cache header")
  in
  go pos []

let paged_magic = "PAGED "

(* Split a snapshot string into (service region, reply-cache parse span).
   Flat layout: "<svc_len>\n<svc><reply records>". Paged layout (produced
   by paged checkpoints, page-aligned): one header page
   "PAGED <svc_len> <reply_len>\n" zero-padded to [page_size], then the
   service pages, then the reply records. *)
let split_snapshot t s =
  let len = String.length s in
  let flat () =
    match String.index_opt s '\n' with
    | None -> Error "missing snapshot header"
    | Some nl -> (
        match int_of_string_opt (String.sub s 0 nl) with
        | Some svc_len when svc_len >= 0 && nl + 1 + svc_len <= len ->
            Ok (String.sub s (nl + 1) svc_len, nl + 1 + svc_len)
        | _ -> Error "bad service length in snapshot header")
  in
  if not (String.length s >= String.length paged_magic
          && String.equal (String.sub s 0 (String.length paged_magic)) paged_magic)
  then flat ()
  else
    let p = t.d.page_size in
    if len < p then Error "bad paged snapshot header"
    else
    match String.index_opt s '\n' with
    | Some nl when nl < p -> (
        let ok_pad = ref true in
        for i = nl + 1 to p - 1 do
          if s.[i] <> '\000' then ok_pad := false
        done;
        match
          String.split_on_char ' '
            (String.sub s (String.length paged_magic) (nl - String.length paged_magic))
        with
        | [ svc_len; reply_len ] -> (
            match (int_of_string_opt svc_len, int_of_string_opt reply_len) with
            | Some svc_len, Some reply_len
              when !ok_pad && svc_len >= 0 && reply_len >= 0
                   && p + svc_len + reply_len = len ->
                Ok (String.sub s p svc_len, p + svc_len)
            | _ -> Error "bad paged snapshot header")
        | _ -> Error "bad paged snapshot header")
    | _ -> Error "bad paged snapshot header"

(* Install a snapshot. All parsing and validation happens before any state
   is mutated: a malformed snapshot returns [Error] and leaves the service,
   the reply cache and [paged_sync] untouched. *)
let restore_snapshot t s =
  let reject reason =
    if Obs.enabled t.obs then Obs.snapshot_rejected t.obs ~reason;
    L.debug (fun m -> m "replica %d: snapshot rejected: %s" t.id reason);
    Error reason
  in
  match split_snapshot t s with
  | Error reason -> reject reason
  | Ok (svc, reply_pos) -> (
      match parse_reply_cache s ~pos:reply_pos ~len:(String.length s) with
      | Error reason -> reject reason
      | Ok entries -> (
          match t.d.service.Bft_sm.Service.restore svc with
          | () ->
              Hashtbl.reset t.last_reply;
              List.iter (fun (c, e) -> Hashtbl.replace t.last_reply c e) entries;
              t.reply_clients <- List.sort_uniq compare (List.map fst entries);
              t.paged_sync <- None;
              Ok ()
          | exception _ -> reject "service refused snapshot"))

(* ------------------------------------------------------------------ *)
(* Requests and batches                                                *)
(* ------------------------------------------------------------------ *)

let store_request t req token verified =
  let d = Wire.request_digest req in
  (match Hashtbl.find_opt t.requests d with
  | Some sr when sr.sr_verified -> ()
  | _ -> Hashtbl.replace t.requests d { sr_req = req; sr_token = token; sr_verified = verified });
  d

let resolve_elem t elem =
  match elem with
  | Inline (r, _) -> Some r
  | By_digest d -> (
      match Hashtbl.find_opt t.requests d with
      | Some sr -> Some sr.sr_req
      | None -> None)

let have_batch_bodies t digest =
  match Hashtbl.find_opt t.batches digest with
  | None -> String.equal digest Wire.null_batch_digest
  | Some (batch, _) -> List.for_all (fun e -> resolve_elem t e <> None) batch

let store_batch t pp =
  let d = Wire.batch_digest pp.pp_batch pp.pp_nondet in
  Hashtbl.replace t.batches d (pp.pp_batch, pp.pp_nondet);
  List.iter
    (fun e ->
      match e with
      | Inline (r, tok) -> ignore (store_request t r tok false)
      | By_digest _ -> ())
    pp.pp_batch;
  d

(* ------------------------------------------------------------------ *)
(* Forward declarations through references (the handler graph is
   mutually recursive across protocol sub-modules).                    *)
(* ------------------------------------------------------------------ *)

let noop_t (_ : t) = ()
let try_execute_ref : (t -> unit) ref = ref noop_t
let process_queue_ref : (t -> unit) ref = ref noop_t
let start_view_change_ref : (t -> int -> unit) ref = ref (fun _ _ -> ())
let try_new_view_ref : (t -> unit) ref = ref noop_t
let process_new_view_ref : (t -> unit) ref = ref noop_t
let check_transfer_done_ref : (t -> unit) ref = ref noop_t
let recovery_step_ref : (t -> unit) ref = ref noop_t
let retry_deferred_pps_ref : (t -> unit) ref = ref noop_t

(* ------------------------------------------------------------------ *)
(* Timers: view-change timer driven by the waiting-request set          *)
(* ------------------------------------------------------------------ *)

let stop_vc_timer t =
  match t.vc_timer with
  | Some h ->
      Engine.cancel h;
      t.vc_timer <- None
  | None -> ()

(* Before demanding a view change over requests the primary failed to
   order, re-relay them to the *next* primary: admission control makes
   accept/drop decisions replica-locally, so a backup can hold a request
   (and arm the vc timer for it) that the primary dropped at its quota.
   Without the relay the cluster rotates views until every holder has
   been primary once — one view change per divergently-accepted request.
   With it, the incoming primary receives the union of the backups'
   waiting sets and drains them in its first batches. Only active with
   [Config.retransmit_budget] set, and spent against the destination's
   budget: an unbounded relay-on-timeout would itself be an
   amplification channel for the very floods the quota bounds. *)
let relay_waiting t =
  if Option.is_some t.d.cfg.Config.retransmit_budget && not t.muted then begin
    let dst = primary_of t (t.view + 1) in
    if dst <> t.id then
      List.iter
        (fun d ->
          match Hashtbl.find_opt t.requests d with
          | Some sr when retx_allow t dst ->
              let env =
                Message.envelope ~sender:t.id ~auth:sr.sr_token (Request sr.sr_req)
              in
              Network.send t.d.net ~src:t.id ~dst ~size:(Wire.envelope_size env) env
          | _ -> ())
        (List.sort String.compare (Hashtbl.fold (fun d _ acc -> d :: acc) t.waiting []))
  end

let start_vc_timer t =
  (* [Option.is_none], not [= None]: Engine.handle values must never meet
     the polymorphic comparator (enforced by bftlint's
     engine-handle-compare rule) *)
  if Option.is_none t.vc_timer && not t.d.cfg.Config.debug_no_vc_timer then
    t.vc_timer <-
      Some
        (Engine.schedule t.engine
           ~label:(Printf.sprintf "vc%d" t.id)
           ~delay:(Engine.of_us_float t.vc_timeout_us)
           (fun () ->
             t.vc_timer <- None;
             if t.active then begin
               relay_waiting t;
               !start_view_change_ref t (t.view + 1)
             end))

let note_waiting t digest =
  if not (Hashtbl.mem t.waiting digest) then begin
    Hashtbl.replace t.waiting digest (now t);
    if t.active then start_vc_timer t
  end

(* Primary performance watchdog (the slow-primary attack of Chondros et
   al.): a primary that keeps answering timers but orders requests ever
   more slowly never trips the silence-based vc timer. Backups smooth
   the accept->execute latency of each request (EWMA) and keep the best
   smoothed value ever observed as a baseline; when the current EWMA
   degrades beyond [perf_factor] times that baseline the backup demands
   a view change — once per view, from a zero-delay event so the view
   change never reenters [execute_batch]. *)
let perf_note_sample t arrival =
  let cfg = t.d.cfg in
  if
    cfg.Config.perf_watchdog && (not (is_primary t))
    && Int64.compare arrival t.perf_view_start >= 0
  then begin
    let sample = Int64.to_float (Int64.sub (now t) arrival) /. 1_000.0 in
    t.perf_ewma_us <-
      (if t.perf_samples = 0 then sample
       else (0.8 *. t.perf_ewma_us) +. (0.2 *. sample));
    t.perf_samples <- t.perf_samples + 1;
    if t.perf_samples >= cfg.Config.perf_min_samples then
      if t.perf_baseline_us = 0.0 || t.perf_ewma_us < t.perf_baseline_us then
        t.perf_baseline_us <- t.perf_ewma_us
      else if
        t.active && t.perf_fired_view < t.view
        && t.perf_ewma_us > cfg.Config.perf_factor *. t.perf_baseline_us
      then begin
        t.perf_fired_view <- t.view;
        t.counters.n_slowness_vc <- t.counters.n_slowness_vc + 1;
        if Obs.enabled t.obs then
          Obs.slowness_view_change t.obs ~now:(now t) ~view:t.view
            ~ewma_us:t.perf_ewma_us ~baseline_us:t.perf_baseline_us;
        L.debug (fun m ->
            m "replica %d: slow primary of view %d (ewma %.1fus baseline %.1fus)"
              t.id t.view t.perf_ewma_us t.perf_baseline_us);
        let v = t.view in
        ignore
          (Engine.schedule t.engine
             ~label:(Printf.sprintf "perfvc%d" t.id)
             ~delay:0L
             (fun () ->
               if t.active && t.view = v then !start_view_change_ref t (v + 1)))
      end
  end

let clear_waiting t digest =
  match Hashtbl.find_opt t.waiting digest with
  | None -> ()
  | Some arrival ->
      Hashtbl.remove t.waiting digest;
      perf_note_sample t arrival;
      if Hashtbl.length t.waiting = 0 then stop_vc_timer t
      else if t.active then begin
        (* restart for the next waiting request (FIFO fairness, 2.3.5) *)
        stop_vc_timer t;
        start_vc_timer t
      end

(* A client's execution advancing to timestamp [ts] supersedes every
   waiting request it sent with an earlier timestamp: exactly-once
   execution (the [last_reply] guard above) will never run them, so their
   claim on the vc timer is dead. Without this purge, an open-loop
   client whose requests were admission-dropped at the primary but
   accepted here leaves permanent waiting entries that demand a view
   change every timeout, forever — views rotate long after the flood
   stops. Closed-loop clients never supersede (one outstanding request),
   so the purge finds nothing in clean runs. Not routed through
   [clear_waiting]: a request that never executed must not feed the
   performance watchdog's latency EWMA. *)
let purge_superseded t ~client ~ts =
  let dead =
    Hashtbl.fold
      (fun d (_ : Engine.time) acc ->
        match Hashtbl.find_opt t.requests d with
        | Some sr
          when sr.sr_req.client = client && Int64.compare sr.sr_req.timestamp ts <= 0
          -> d :: acc
        | _ -> acc)
      t.waiting []
  in
  if dead <> [] then begin
    List.iter (Hashtbl.remove t.waiting) dead;
    if Hashtbl.length t.waiting = 0 then stop_vc_timer t
    else if t.active then begin
      stop_vc_timer t;
      start_vc_timer t
    end
  end

(* ------------------------------------------------------------------ *)
(* Checkpoints and garbage collection                                   *)
(* ------------------------------------------------------------------ *)

(* Checkpoint from the paged service image: header page + service pages +
   reply-cache pages, re-digesting only pages the service reported dirty
   (plus the always-churning header and reply region). Only safe when the
   drained dirty set is relative to the latest held tree ([paged_sync]);
   otherwise every page is passed as dirty, which degrades to the
   byte-comparing copy-on-write build. *)
let take_checkpoint_paged t seq (pg : Bft_sm.Service.paged) =
  let p = t.d.page_size in
  let svc_pages = pg.Bft_sm.Service.pg_pages () in
  let svc_dirty = pg.Bft_sm.Service.pg_drain_dirty () in
  let n_svc = Array.length svc_pages in
  let rb = Buffer.create 256 in
  encode_reply_cache t rb;
  let reply = Buffer.contents rb in
  let reply_len = String.length reply in
  let header_line = Printf.sprintf "PAGED %d %d\n" (n_svc * p) reply_len in
  let header = header_line ^ String.make (p - String.length header_line) '\000' in
  let n_reply = (reply_len + p - 1) / p in
  let pages = Array.make (1 + n_svc + n_reply) header in
  Array.blit svc_pages 0 pages 1 n_svc;
  for i = 0 to n_reply - 1 do
    let off = i * p in
    pages.(1 + n_svc + i) <- String.sub reply off (min p (reply_len - off))
  done;
  let in_sync =
    match (t.paged_sync, Checkpoint_store.latest t.ckpts) with
    | Some s, Some prev -> Partition_tree.seq prev = s
    | _ -> false
  in
  let dirty =
    if not in_sync then List.init (Array.length pages) Fun.id
    else
      0
      :: (List.map (fun i -> i + 1) svc_dirty
          @ List.init n_reply (fun i -> 1 + n_svc + i))
  in
  charge t (Costs.digest_us t.costs 0);
  let tree = Checkpoint_store.take_pages t.ckpts ~seq ~pages ~dirty in
  charge t (Costs.digest_us t.costs (Partition_tree.digested_bytes tree));
  t.paged_sync <- Some seq;
  tree

let take_checkpoint t seq =
  let tree =
    match t.d.service.Bft_sm.Service.paged with
    | Some pg
      when pg.Bft_sm.Service.pg_page_size = t.d.page_size
           && String.length (Printf.sprintf "PAGED %d %d\n" max_int max_int)
              <= t.d.page_size ->
        take_checkpoint_paged t seq pg
    | _ ->
        let snap = full_snapshot t in
        charge t (Costs.digest_us t.costs 0);
        let tree = Checkpoint_store.take t.ckpts ~seq ~snapshot:snap in
        charge t (Costs.digest_us t.costs (Partition_tree.digested_bytes tree));
        tree
  in
  t.counters.n_checkpoints <- t.counters.n_checkpoints + 1;
  if Obs.enabled t.obs then begin
    let dirty = Partition_tree.pages_modified_at tree ~seq in
    Obs.checkpoint_taken t.obs ~now:(now t) ~seq
      ~bytes:(Partition_tree.digested_bytes tree)
      ~dirty ~clean:(Partition_tree.num_pages tree - dirty)
  end;
  tree

let announce_checkpoint t seq =
  match Checkpoint_store.tree_at t.ckpts seq with
  | None -> ()
  | Some tree ->
      let msg =
        Checkpoint
          { ck_seq = seq; ck_digest = Partition_tree.root_digest tree; ck_replica = t.id }
      in
      Checkpoint_store.add_message t.ckpts
        { ck_seq = seq; ck_digest = Partition_tree.root_digest tree; ck_replica = t.id };
      broadcast t msg

let try_stabilize t =
  match Checkpoint_store.try_stabilize t.ckpts with
  | None -> ()
  | Some (seq, _tree) ->
      Log.truncate t.log seq;
      (* drop PSet/QSet information at or below the new low mark *)
      Hashtbl.iter
        (fun n _ -> if n <= seq then Hashtbl.remove t.pset n)
        (Hashtbl.copy t.pset);
      Hashtbl.iter
        (fun n _ -> if n <= seq then Hashtbl.remove t.qset n)
        (Hashtbl.copy t.qset);
      L.debug (fun m -> m "replica %d: checkpoint %d stable" t.id seq);
      if Obs.enabled t.obs then Obs.checkpoint_stable t.obs ~now:(now t) ~seq;
      (* recovery completes when the checkpoint at the recovery point is
         stable (Section 4.3.2) *)
      (match t.recovering with
      | Some rc
        when rc.rc_phase = `Fetching && seq >= rc.rc_recovery_point ->
          t.recovering <- None;
          t.hm_bound <- max_int;
          t.counters.n_recoveries <- t.counters.n_recoveries + 1;
          if Obs.enabled t.obs then Obs.recovery_phase t.obs ~now:(now t) "complete";
          L.info (fun m -> m "replica %d: recovery complete at %d" t.id seq)
      | _ -> ());
      !process_queue_ref t

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let allowed_seq t n = n <= t.hm_bound

(* Execute one batch at sequence [n]; [tentative] per Section 5.1.2. *)
let execute_batch t n ~tentative =
  let e = Log.find t.log n in
  match (e.Log.pp, e.Log.pp_digest) with
  | Some pp, Some d ->
      let is_null = String.equal d Wire.null_batch_digest in
      let elems = if is_null then [] else pp.pp_batch in
      if Obs.enabled t.obs then
        Obs.phase t.obs ~now:(now t) Obs.Executed ~view:t.view ~seq:n;
      let wave = ref [] in
      List.iter
        (fun elem ->
          match resolve_elem t elem with
          | None -> () (* cannot happen: execution gated on have_batch_bodies *)
          | Some req ->
              Hashtbl.remove t.assigned (Wire.request_digest req);
              let last_t =
                match Hashtbl.find_opt t.last_reply req.client with
                | Some (ts, _, _) -> ts
                | None -> -1L
              in
              if Int64.compare req.timestamp last_t > 0 then begin
                let result =
                  if String.length req.op >= 9 && String.equal (String.sub req.op 0 9) "\x00RECOVERY"
                  then begin
                    (* recovery request (Section 4.3.2): refresh our keys and
                       reply with the sequence number it executed at *)
                    let k = t.d.cfg.Config.checkpoint_interval in
                    t.null_fill_until <-
                      max t.null_fill_until (((n + k - 1) / k * k) + t.d.cfg.Config.log_size);
                    if req.client <> t.id then begin
                      t.coproc_counter <- Int64.add t.coproc_counter 1L;
                      let keys =
                        List.filter_map
                          (fun peer ->
                            if peer = t.id then None
                            else
                              Some
                                (peer, Bft_crypto.Keychain.fresh_in_key t.d.keychain t.rng ~peer))
                          (replica_ids t)
                      in
                      broadcast t
                        (New_key { nk_replica = t.id; nk_keys = keys; nk_counter = t.coproc_counter })
                    end;
                    string_of_int n
                  end
                  else if not (t.d.service.Bft_sm.Service.has_access ~client:req.client req.op)
                  then Bft_sm.Service.denied
                  else begin
                    charge t (t.d.service.Bft_sm.Service.exec_cost_us req.op);
                    t.d.service.Bft_sm.Service.execute ~client:req.client ~op:req.op
                      ~nondet:pp.pp_nondet
                  end
                in
                t.counters.n_executed <- t.counters.n_executed + 1;
                t.history <- (n, req.client, req.op, result) :: t.history;
                wave := (req.client, req.op, result) :: !wave;
                set_last_reply t req.client (req.timestamp, result, t.view);
                clear_waiting t (Wire.request_digest req);
                purge_superseded t ~client:req.client ~ts:req.timestamp;
                (* reply: full result from the designated replier or for small
                   results; digest otherwise (Section 5.1.1) *)
                let payload =
                  if
                    (not t.d.cfg.Config.digest_replies)
                    || req.replier = t.id
                    || String.length result <= t.d.cfg.Config.digest_replies_threshold
                  then Full result
                  else begin
                    charge t (Costs.digest_us t.costs (String.length result));
                    Result_digest (Wire.result_digest result)
                  end
                in
                if Obs.enabled t.obs then
                  Obs.reply_sent t.obs ~now:(now t) ~client:req.client ~seq:n
                    ~digest:(Wire.request_digest req) ~tentative;
                send_to t ~dst:req.client
                  (Reply
                     {
                       rp_view = t.view;
                       rp_timestamp = req.timestamp;
                       rp_client = req.client;
                       rp_replica = t.id;
                       rp_tentative = tentative;
                       rp_result = payload;
                     })
              end
              else begin
                (* duplicate or superseded assignment: the client is no
                   longer waiting for this request *)
                clear_waiting t (Wire.request_digest req);
                if Int64.compare req.timestamp last_t = 0 then
                match Hashtbl.find_opt t.last_reply req.client with
                | Some (ts, result, _) ->
                    send_to t ~dst:req.client
                      (Reply
                         {
                           rp_view = t.view;
                           rp_timestamp = ts;
                           rp_client = req.client;
                           rp_replica = t.id;
                           rp_tentative = tentative;
                           rp_result = Full result;
                         })
                | None -> ()
              end)
        elems;
      t.batch_journal <- (n, List.rev !wave) :: t.batch_journal;
      t.counters.n_batches <- t.counters.n_batches + 1;
      (* executing a request proves the view is live: reset the view-change
         timeout to its initial value (liveness rule, Section 2.3.5) *)
      t.vc_timeout_us <- t.d.cfg.Config.vc_timeout_us;
      e.Log.executed <- true;
      e.Log.exec_tentative <- tentative;
      t.last_exec <- n;
      if n mod t.d.cfg.Config.checkpoint_interval = 0 then begin
        ignore (take_checkpoint t n);
        if tentative then t.pending_ckpt_announce <- n :: t.pending_ckpt_announce
        else announce_checkpoint t n
      end
  | _ -> ()

(* Pending read-only requests execute once the state reflects only
   committed requests (Section 5.1.3). *)
let flush_read_only t =
  if t.pending_ro <> [] && t.committed_upto >= t.last_exec then begin
    let ros = List.rev t.pending_ro in
    t.pending_ro <- [];
    List.iter
      (fun req ->
        charge t (t.d.service.Bft_sm.Service.exec_cost_us req.op);
        let result =
          if not (t.d.service.Bft_sm.Service.has_access ~client:req.client req.op) then
            Bft_sm.Service.denied
          else if not (t.d.service.Bft_sm.Service.is_read_only req.op) then
            Bft_sm.Service.invalid
          else t.d.service.Bft_sm.Service.execute ~client:req.client ~op:req.op ~nondet:""
        in
        let payload =
          if
            (not t.d.cfg.Config.digest_replies)
            || req.replier = t.id
            || String.length result <= t.d.cfg.Config.digest_replies_threshold
          then Full result
          else Result_digest (Wire.result_digest result)
        in
        send_to t ~dst:req.client
          (Reply
             {
               rp_view = t.view;
               rp_timestamp = req.timestamp;
               rp_client = req.client;
               rp_replica = t.id;
               rp_tentative = true;
               rp_result = payload;
             }))
      ros
  end

let update_committed_upto t =
  let continue = ref true in
  while !continue do
    let n = t.committed_upto + 1 in
    if Log.committed t.log ~view:t.view ~seq:n then begin
      t.committed_upto <- n;
      if Obs.enabled t.obs then
        Obs.phase t.obs ~now:(now t) Obs.Committed ~view:t.view ~seq:n
    end
    else continue := false
  done

let try_execute t =
  update_committed_upto t;
  (* announce checkpoints whose batches have now committed *)
  let announce, keep =
    List.partition (fun n -> n <= t.committed_upto) t.pending_ckpt_announce
  in
  t.pending_ckpt_announce <- keep;
  List.iter (fun n -> announce_checkpoint t n) (List.sort compare announce);
  let progress = ref true in
  while !progress do
    progress := false;
    let n = t.last_exec + 1 in
    if Log.in_window t.log n || n <= Log.low_mark t.log then begin
      match Log.entry t.log n with
      | Some e when e.Log.pp_digest <> None && not e.Log.executed ->
          let d = Option.get e.Log.pp_digest in
          if have_batch_bodies t d then begin
            if Log.committed t.log ~view:t.view ~seq:n then begin
              execute_batch t n ~tentative:false;
              update_committed_upto t;
              progress := true
            end
            else if
              t.d.cfg.Config.tentative_execution
              && t.active
              && Log.prepared t.log ~view:t.view ~seq:n
              && t.committed_upto = n - 1
            then begin
              execute_batch t n ~tentative:true;
              progress := true
            end
          end
      | _ -> ()
    end
  done;
  update_committed_upto t;
  (* newly committed tentative executions can trigger checkpoint
     announcements *)
  let announce, keep =
    List.partition (fun n -> n <= t.committed_upto) t.pending_ckpt_announce
  in
  t.pending_ckpt_announce <- keep;
  List.iter (fun n -> announce_checkpoint t n) (List.sort compare announce);
  try_stabilize t;
  flush_read_only t;
  (* execution slides the primary's window forward *)
  !process_queue_ref t

let () = try_execute_ref := try_execute

(* ------------------------------------------------------------------ *)
(* Normal case: primary                                                 *)
(* ------------------------------------------------------------------ *)

(* Primary request FIFO (two-list queue; see the field comments). *)
let queue_push t r =
  t.queue_back <- r :: t.queue_back;
  t.queue_len <- t.queue_len + 1

let queue_to_list t = t.queue_front @ List.rev t.queue_back

let queue_clear t =
  t.queue_front <- [];
  t.queue_back <- [];
  t.queue_len <- 0

(* Up to [k] requests in FIFO order, removed from the queue. *)
let queue_take t k =
  let rec go k acc =
    if k <= 0 then List.rev acc
    else
      match t.queue_front with
      | r :: tl ->
          t.queue_front <- tl;
          t.queue_len <- t.queue_len - 1;
          go (k - 1) (r :: acc)
      | [] ->
          if t.queue_back = [] then List.rev acc
          else begin
            t.queue_front <- List.rev t.queue_back;
            t.queue_back <- [];
            go k acc
          end
  in
  go k []

(* Sliding-window bound on concurrent protocol instances (Section 5.1.4):
   the primary may run at most [window] instances beyond the last executed
   batch, and never outside the log's water marks. *)
let in_send_window t n =
  n > Log.low_mark t.log
  && n <= t.last_exec + t.d.cfg.Config.window
  && Log.in_window t.log n

let send_pre_prepare t batch nondet =
  let n = t.seqno + 1 in
  t.seqno <- n;
  let pp = { pp_view = t.view; pp_seq = n; pp_batch = batch; pp_nondet = nondet } in
  let d = store_batch t pp in
  charge t (Costs.digest_us t.costs (Wire.size (Pre_prepare pp)));
  ignore (Log.accept_pre_prepare t.log ~view:t.view pp d);
  (Log.find t.log n).Log.self_preprepared <- true;
  if Obs.enabled t.obs then begin
    Obs.phase t.obs ~now:(now t) Obs.Preprepared ~view:t.view ~seq:n;
    let digests =
      List.map
        (function Inline (r, _) -> Wire.request_digest r | By_digest dd -> dd)
        batch
    in
    Obs.batch_assigned t.obs ~now:(now t) ~seq:n ~digests
  end;
  if t.byzantine then begin
    (* equivocation: a conflicting assignment for the same sequence number
       is sent to half the backups *)
    let batch2 = [] and nondet2 = nondet ^ "evil" in
    let pp2 = { pp with pp_batch = batch2; pp_nondet = nondet2 } in
    ignore (store_batch t pp2);
    let others = List.filter (fun i -> i <> t.id) (replica_ids t) in
    let g1 = List.filteri (fun i _ -> i mod 2 = 0) others in
    let g2 = List.filteri (fun i _ -> i mod 2 = 1) others in
    List.iter (fun dst -> send_to t ~dst (Pre_prepare pp)) g1;
    List.iter (fun dst -> send_to t ~dst (Pre_prepare pp2)) g2
  end
  else broadcast t (Pre_prepare pp);
  try_execute t

let process_queue t =
  if is_primary t && t.active && not (is_recovering t && t.seqno >= t.hm_bound) then begin
    let continue = ref true in
    while !continue && t.queue_len > 0 && in_send_window t (t.seqno + 1) && allowed_seq t (t.seqno + 1) do
      let cfg = t.d.cfg in
      let take =
        if cfg.Config.adaptive_batch then begin
          (* queue-depth-tracking sizer: while arrivals keep the queue at
             or above the current target the target doubles (throughput
             mode — amortize protocol overhead over bigger batches); when
             the queue falls short the target decays toward the observed
             depth (latency mode — do not hold requests back waiting for
             a big batch that is not coming) *)
          let depth = t.queue_len in
          if depth >= t.batch_target then
            t.batch_target <- min cfg.Config.max_batch (t.batch_target * 2)
          else t.batch_target <- max 1 ((t.batch_target + depth + 1) / 2);
          t.batch_target
        end
        else if cfg.Config.batching then cfg.Config.max_batch
        else 1
      in
      let chosen = queue_take t take in
      List.iter
        (fun r ->
          let d = Wire.request_digest r in
          Hashtbl.remove t.queued d;
          Hashtbl.replace t.assigned d ())
        chosen;
      if chosen = [] then continue := false
      else begin
        if Obs.enabled t.obs then Obs.batch_formed t.obs ~len:(List.length chosen);
        let elems =
          List.map
            (fun r ->
              let d = Wire.request_digest r in
              if String.length r.op > cfg.Config.separate_tx_threshold then By_digest d
              else
                let tok =
                  match Hashtbl.find_opt t.requests d with
                  | Some sr -> sr.sr_token
                  | None -> Auth_none
                in
                Inline (r, tok))
            chosen
        in
        (* non-deterministic choice for the batch: virtual wall clock
           (Section 5.4) *)
        let nondet = Int64.to_string (now t) in
        send_pre_prepare t elems nondet
      end
    done;
    (* null-request filler during recoveries *)
    while
      t.queue_len = 0
      && Checkpoint_store.stable_seq t.ckpts < t.null_fill_until
      && t.seqno < t.null_fill_until
      && in_send_window t (t.seqno + 1)
      && allowed_seq t (t.seqno + 1)
    do
      send_pre_prepare t [] (Int64.to_string (now t))
    done
  end

let () = process_queue_ref := process_queue

(* Admission control (the client-flood attack of Chondros et al.): the
   number of distinct requests a client currently has in the ordering
   pipeline at this replica — queued, assigned to a batch, or awaited
   from the primary. Computed from the live tables rather than a shadow
   counter so it can never leak and permanently starve a client; the
   tables are quota-bounded per client, so the scan stays small. *)
let client_inflight t client =
  let seen = Hashtbl.create 16 in
  let note d =
    if not (Hashtbl.mem seen d) then
      match Hashtbl.find_opt t.requests d with
      | Some sr when sr.sr_req.client = client -> Hashtbl.replace seen d ()
      | _ -> ()
  in
  Hashtbl.iter (fun d () -> note d) t.queued;
  Hashtbl.iter (fun d () -> note d) t.assigned;
  Hashtbl.iter (fun d (_ : Engine.time) -> note d) t.waiting;
  Hashtbl.length seen

(* Accept and queue a client request (primary) or relay it (backup). *)
let handle_request t (req : request) token ~verified ~relayed =
  let d = Wire.request_digest req in
  charge t (Costs.digest_us t.costs (Wire.size (Request req)));
  let last_t =
    match Hashtbl.find_opt t.last_reply req.client with Some (ts, _, _) -> ts | None -> -1L
  in
  if Int64.compare req.timestamp last_t < 0 then ()
  else if Int64.compare req.timestamp last_t = 0 then begin
    (* already executed: retransmit cached reply *)
    match Hashtbl.find_opt t.last_reply req.client with
    | Some (ts, result, _) ->
        send_to t ~dst:req.client
          (Reply
             {
               rp_view = t.view;
               rp_timestamp = ts;
               rp_client = req.client;
               rp_replica = t.id;
               rp_tentative = false;
               rp_result = Full result;
             })
    | None -> ()
  end
  else if
    (* Per-client in-flight quota: a new request (retransmissions of a
       request already in the pipeline always pass) beyond the quota is
       dropped and counted, so a flooding client saturates its own slice
       of the pipeline instead of everyone's. Correct clients run
       closed-loop with one outstanding request and never get near the
       default quota. The read-only fast path below bypasses the
       ordering pipeline and is exempt. *)
    (not (Hashtbl.mem t.queued d))
    && (not (Hashtbl.mem t.assigned d))
    && (not (Hashtbl.mem t.waiting d))
    && (not (req.read_only && t.d.cfg.Config.read_only_opt && verified))
    && client_inflight t req.client >= t.d.cfg.Config.client_quota
  then begin
    t.counters.n_admission_dropped <- t.counters.n_admission_dropped + 1;
    if Obs.enabled t.obs then Obs.admission_drop t.obs ~now:(now t) ~client:req.client;
    L.debug (fun m -> m "replica %d: admission drop client=%d" t.id req.client)
  end
  else begin
    ignore (store_request t req token verified);
    if Obs.enabled t.obs then
      Obs.request_arrival t.obs ~now:(now t) ~client:req.client ~digest:d;
    !retry_deferred_pps_ref t;
    if req.read_only && t.d.cfg.Config.read_only_opt && verified then begin
      t.pending_ro <- req :: t.pending_ro;
      flush_read_only t
    end
    else if is_primary t then begin
      if verified && not (Hashtbl.mem t.queued d) && not (Hashtbl.mem t.assigned d) then begin
        queue_push t req;
        Hashtbl.replace t.queued d ();
        process_queue t
      end
    end
    else begin
      note_waiting t d;
      if not relayed then
        (* relay to the primary with the client's token intact *)
        if not t.muted then begin
          let env = Message.envelope ~sender:t.id ~auth:token (Request req) in
          Network.send t.d.net ~src:t.id ~dst:(primary t)
            ~size:(Wire.envelope_size env) env
        end
    end
  end

(* ------------------------------------------------------------------ *)
(* Normal case: backups                                                 *)
(* ------------------------------------------------------------------ *)

(* condition 2: f prepares carrying the batch digest vouch for it *)
let batch_vouched t batch_digest =
  let count = ref 0 in
  Log.iter_window t.log (fun e ->
      Hashtbl.iter
        (fun _ (_, d') -> if String.equal d' batch_digest then incr count)
        e.Log.prepares);
  !count >= t.d.cfg.Config.f

(* A batch element is authentic if (1) our MAC entry in the client's token
   verifies, (2) f prepares vouch for the batch digest, or (3) we already
   verified the stored request body. Evaluated in three passes so the MAC
   arithmetic fans out through the verification pool without disturbing
   virtual time: pass 1 resolves the charge-free conditions and classifies
   the rest, pass 2 flushes every MAC/authenticator token as one pool
   batch, and pass 3 consumes the verdicts in element order, charging each
   element exactly where the sequential path would and short-circuiting at
   the first failure — elements past it were pool-verified for nothing
   (wall-clock only) but are never charged, so the committed-history
   digests are byte-identical to the sequential evaluation. *)
let batch_authentic t elems batch_digest =
  let vouched = lazy (batch_vouched t batch_digest) in
  let items = ref [] and n_items = ref 0 in
  let statuses =
    List.map
      (fun elem ->
        match elem with
        | By_digest d -> (
            match Hashtbl.find_opt t.requests d with
            | Some sr -> `Done sr.sr_verified
            | None -> `Done false)
        | Inline (r, tok) -> (
            match Hashtbl.find_opt t.requests (Wire.request_digest r) with
            | Some sr when sr.sr_verified -> `Done true (* condition 3 *)
            | _ -> (
                match tok with
                | Auth_mac m ->
                    let k = !n_items in
                    incr n_items;
                    items :=
                      Bft_crypto.Auth.Item_mac
                        { peer = r.client; mac = m; msg = Wire.encode (Request r) }
                      :: !items;
                    `Pool k
                | Auth_vector a ->
                    let k = !n_items in
                    incr n_items;
                    items :=
                      Bft_crypto.Auth.Item_auth
                        { peer = r.client; auth = a; msg = Wire.encode (Request r) }
                      :: !items;
                    `Pool k
                | Auth_none | Auth_sig _ -> `Seq (r, tok))))
      elems
  in
  let verdicts =
    if !n_items = 0 then [||]
    else begin
      if Obs.enabled t.obs then Obs.vpool_submit t.obs ~items:!n_items;
      Bft_crypto.Auth.verify_batch t.d.keychain (Array.of_list (List.rev !items))
    end
  in
  List.for_all
    (fun st ->
      match st with
      | `Done b -> b
      | `Pool k ->
          charge t t.costs.Costs.mac_us;
          verdicts.(k) || Lazy.force vouched
      | `Seq (r, tok) ->
          (* condition 1, sequential: signatures (and tokenless elements) *)
          verify_token t ~claimed:r.client (Request r) tok || Lazy.force vouched)
    statuses

let send_prepare t ~view ~seq digest =
  if allowed_seq t seq then begin
    let p = { pr_view = view; pr_seq = seq; pr_digest = digest; pr_replica = t.id } in
    Log.add_prepare t.log p;
    (Log.find t.log seq).Log.self_preprepared <- true;
    broadcast t (Prepare p)
  end

let send_commit t ~view ~seq digest =
  if allowed_seq t seq then begin
    let c = { cm_view = view; cm_seq = seq; cm_digest = digest; cm_replica = t.id } in
    Log.add_commit t.log c;
    broadcast t (Commit c)
  end

let check_prepared_to_commit t ~seq =
  match Log.entry t.log seq with
  | Some e when e.Log.pp_digest <> None ->
      let d = Option.get e.Log.pp_digest in
      if
        Log.prepared t.log ~view:t.view ~seq
        && not (Hashtbl.mem e.Log.commits t.id)
      then begin
        if Obs.enabled t.obs then
          Obs.phase t.obs ~now:(now t) Obs.Prepared ~view:t.view ~seq;
        send_commit t ~view:t.view ~seq d
      end;
      try_execute t
  | _ -> ()

let has_new_view t v = v = 0 || Hashtbl.mem t.new_views v

let accept_pre_prepare t (pp : pre_prepare) =
  let v = pp.pp_view and n = pp.pp_seq in
  if
    t.active && v = t.view
    && (not (is_primary t))
    && Log.in_window t.log n
    && has_new_view t v
    && not t.byzantine
  then begin
    let d = Wire.batch_digest pp.pp_batch pp.pp_nondet in
    charge t (Costs.digest_us t.costs (Wire.size (Pre_prepare pp)));
    (* backups vet the primary's non-deterministic choice (Section 5.4):
       here, the virtual timestamp must not be in the future *)
    let nondet_ok =
      match Int64.of_string_opt pp.pp_nondet with
      | Some ts -> Int64.compare ts (Int64.add (now t) 1_000_000_000L) <= 0
      | None -> String.equal d Wire.null_batch_digest
    in
    let already =
      match Log.entry t.log n with
      | Some e -> e.Log.pp_view = v && e.Log.pp_digest <> None && not (String.equal (Option.get e.Log.pp_digest) d)
      | None -> false
    in
    if nondet_ok && not already then begin
      let authentic = batch_authentic t pp.pp_batch d in
      let have_bodies =
        List.for_all
          (fun e -> match e with By_digest dd -> Hashtbl.mem t.requests dd | Inline _ -> true)
          pp.pp_batch
      in
      if authentic && have_bodies then begin
        ignore (store_batch t pp);
        if Log.accept_pre_prepare t.log ~view:v pp d then begin
          if Obs.enabled t.obs then begin
            Obs.phase t.obs ~now:(now t) Obs.Preprepared ~view:v ~seq:n;
            let digests =
              List.map
                (function Inline (r, _) -> Wire.request_digest r | By_digest dd -> dd)
                pp.pp_batch
            in
            Obs.batch_assigned t.obs ~now:(now t) ~seq:n ~digests
          end;
          List.iter
            (fun e ->
              match resolve_elem t e with
              | Some r ->
                  let last =
                    match Hashtbl.find_opt t.last_reply r.client with
                    | Some (ts, _, _) -> ts
                    | None -> -1L
                  in
                  if Int64.compare r.timestamp last > 0 then
                    note_waiting t (Wire.request_digest r)
              | None -> ())
            pp.pp_batch;
          send_prepare t ~view:v ~seq:n d;
          check_prepared_to_commit t ~seq:n
        end
      end
      else begin
        (* cannot authenticate yet: defer and fetch missing bodies
           (Sections 3.2.2 and 5.1.5) *)
        t.deferred_pps <- pp :: t.deferred_pps;
        List.iter
          (fun e ->
            match e with
            | By_digest dd when not (Hashtbl.mem t.requests dd) ->
                broadcast t (Fetch_request { fr_digest = dd; fr_replica = t.id })
            | _ -> ())
          pp.pp_batch
      end
    end
  end

let retry_deferred_pps t =
  let pps = t.deferred_pps in
  t.deferred_pps <- [];
  List.iter (fun pp -> accept_pre_prepare t pp) pps

let () = retry_deferred_pps_ref := retry_deferred_pps

let handle_prepare t (p : prepare) =
  if p.pr_view = t.view && Log.in_window t.log p.pr_seq && p.pr_replica <> primary_of t p.pr_view
  then begin
    Log.add_prepare t.log p;
    retry_deferred_pps t;
    check_prepared_to_commit t ~seq:p.pr_seq
  end

let handle_commit t (c : commit) =
  if c.cm_view <= t.view && Log.in_window t.log c.cm_seq then begin
    Log.add_commit t.log c;
    try_execute t
  end

(* ------------------------------------------------------------------ *)
(* View changes (Section 3.2.4)                                         *)
(* ------------------------------------------------------------------ *)

(* Compute the P and Q sets from the log and the previous sets (Fig 3-2). *)
let compute_pq t =
  let h = Log.low_mark t.log in
  let pset' = Hashtbl.create 16 and qset' = Hashtbl.create 16 in
  for n = h + 1 to h + t.d.cfg.Config.log_size do
    let log_prepared, log_preprepared, digest_view =
      match Log.entry t.log n with
      | Some e when e.Log.pp_digest <> None ->
          let d = Option.get e.Log.pp_digest in
          let v = e.Log.pp_view in
          ( Log.prepared t.log ~view:v ~seq:n || Log.committed t.log ~view:v ~seq:n,
            e.Log.self_preprepared,
            Some (d, v) )
      | _ -> (false, false, None)
    in
    (match (log_prepared, digest_view) with
    | true, Some (d, v) ->
        Hashtbl.replace pset' n { pe_seq = n; pe_digest = d; pe_view = v }
    | _ -> (
        match Hashtbl.find_opt t.pset n with
        | Some e -> Hashtbl.replace pset' n e
        | None -> ()));
    match (log_preprepared, digest_view) with
    | true, Some (d, v) ->
        let prev = match Hashtbl.find_opt t.qset n with Some l -> l | None -> [] in
        let others = List.filter (fun (d', _) -> not (String.equal d' d)) prev in
        Hashtbl.replace qset' n ((d, v) :: others)
    | _ -> (
        match Hashtbl.find_opt t.qset n with
        | Some l -> Hashtbl.replace qset' n l
        | None -> ())
  done;
  (pset', qset')

let start_view_change t new_view =
  if new_view > t.view then begin
    t.counters.n_view_changes <- t.counters.n_view_changes + 1;
    L.debug (fun m -> m "replica %d: view change %d -> %d" t.id t.view new_view);
    if Obs.enabled t.obs then
      Obs.view_change_start t.obs ~now:(now t) ~from_view:t.view ~to_view:new_view;
    t.view <- new_view;
    t.active <- false;
    stop_vc_timer t;
    let pset', qset' = compute_pq t in
    Hashtbl.reset t.pset;
    Hashtbl.iter (Hashtbl.replace t.pset) pset';
    Hashtbl.reset t.qset;
    Hashtbl.iter (Hashtbl.replace t.qset) qset';
    let pset_list =
      Hashtbl.fold (fun _ e acc -> e :: acc) t.pset []
      |> List.sort (fun a b -> compare a.pe_seq b.pe_seq)
    in
    let qset_list =
      Hashtbl.fold (fun n l acc -> { qe_seq = n; qe_entries = l } :: acc) t.qset []
      |> List.sort (fun a b -> compare a.qe_seq b.qe_seq)
    in
    let vc =
      {
        vc_view = new_view;
        vc_h = Checkpoint_store.stable_seq t.ckpts;
        vc_cset = Checkpoint_store.held t.ckpts;
        vc_pset = pset_list;
        vc_qset = qset_list;
        vc_replica = t.id;
      }
    in
    Hashtbl.replace t.my_vcs new_view vc;
    Hashtbl.replace t.vcs (new_view, t.id) (vc, true);
    Log.clear_entries t.log;
    Hashtbl.reset t.assigned;
    t.pending_ckpt_announce <- [];
    (* roll back any tentative executions: they may be replaced by null
       requests in the new view (Section 5.1.2) *)
    if t.last_exec > t.committed_upto then begin
      let candidates =
        List.filter (fun (s, _) -> s <= t.committed_upto) (Checkpoint_store.held t.ckpts)
      in
      match List.rev candidates with
      | (s, _) :: _ -> (
          match Checkpoint_store.tree_at t.ckpts s with
          | Some tree -> (
              match restore_snapshot t (Partition_tree.snapshot tree) with
              | Ok () ->
                  t.last_exec <- s;
                  t.committed_upto <- min t.committed_upto s
              | Error _ -> ())
          | None -> ())
      | [] -> ()
    end;
    broadcast t (View_change vc);
    (* view-change retry timer: if the new view does not activate in time,
       move to the next one with a doubled timeout (liveness, 2.3.5) *)
    t.vc_timeout_us <- t.vc_timeout_us *. 2.0;
    t.vc_timer <-
      Some
        (Engine.schedule t.engine
           ~label:(Printf.sprintf "vc%d" t.id)
           ~delay:(Engine.of_us_float t.vc_timeout_us)
           (fun () ->
             t.vc_timer <- None;
             if not t.active then !start_view_change_ref t (t.view + 1)));
    !try_new_view_ref t
  end

let () = start_view_change_ref := start_view_change

let ack_table t ~view ~origin =
  match Hashtbl.find_opt t.acks (view, origin) with
  | Some h -> h
  | None ->
      let h = Hashtbl.create 8 in
      Hashtbl.replace t.acks (view, origin) h;
      h

let handle_view_change t (vc : view_change) ~verified =
  let v = vc.vc_view in
  if v >= t.view && vc.vc_replica <> t.id then begin
    (* reject messages whose P/Q components contain tuples for this or a
       later view (Section 3.2.4) *)
    let tuples_ok =
      List.for_all (fun e -> e.pe_view < v) vc.vc_pset
      && List.for_all
           (fun q -> List.for_all (fun (_, qv) -> qv < v) q.qe_entries)
           vc.vc_qset
    in
    if tuples_ok then begin
      (match Hashtbl.find_opt t.vcs (v, vc.vc_replica) with
      | Some (_, true) -> ()
      | _ -> Hashtbl.replace t.vcs (v, vc.vc_replica) (vc, verified));
      if verified then begin
        (* acknowledge to the new primary (Section 3.2.4) *)
        let d = Wire.view_change_digest vc in
        let ack =
          { va_view = v; va_replica = t.id; va_origin = vc.vc_replica; va_digest = d }
        in
        let prev = match Hashtbl.find_opt t.my_acks v with Some l -> l | None -> [] in
        if not (List.exists (fun a -> a.va_origin = vc.vc_replica) prev) then begin
          Hashtbl.replace t.my_acks v (ack :: prev);
          send_to t ~dst:(primary_of t v) (View_change_ack ack)
        end
      end;
      (* liveness rule: f+1 view-changes for views above ours force us to
         join the smallest such view *)
      if v > t.view then begin
        let views =
          Hashtbl.fold
            (fun (v', sender) _ acc -> if v' > t.view && sender <> t.id then v' :: acc else acc)
            t.vcs []
        in
        let senders v' =
          Hashtbl.fold
            (fun (v'', sender) _ acc -> if v'' = v' && sender <> t.id then sender :: acc else acc)
            t.vcs []
          |> List.sort_uniq compare
        in
        let candidate = List.sort_uniq compare views in
        match List.find_opt (fun v' -> List.length (senders v') >= weak t) candidate with
        | Some v' -> start_view_change t v'
        | None -> ()
      end;
      !try_new_view_ref t;
      !process_new_view_ref t
    end
  end

let handle_view_change_ack t (a : view_change_ack) =
  if a.va_view >= t.view && primary_of t a.va_view = t.id then begin
    Hashtbl.replace (ack_table t ~view:a.va_view ~origin:a.va_origin) a.va_replica a.va_digest;
    !try_new_view_ref t
  end

(* The new primary assembles S from acknowledged view-changes and tries to
   decide (Fig 3-3). *)
let try_new_view t =
  let v = t.view in
  if
    (not t.active) && primary_of t v = t.id
    && (not (Hashtbl.mem t.new_views v))
    && not t.muted
  then begin
    (* S: our own view-change plus every view-change with 2f-1 acks *)
    let s =
      Hashtbl.fold
        (fun (v', sender) (vc, _verified) acc ->
          if v' <> v then acc
          else if sender = t.id then (sender, vc) :: acc
          else
            let acks = ack_table t ~view:v ~origin:sender in
            let d = Wire.view_change_digest vc in
            let matching =
              Hashtbl.fold
                (fun acker d' n -> if acker <> sender && String.equal d d' then n + 1 else n)
                acks 0
            in
            if matching >= (2 * t.d.cfg.Config.f) - 1 then (sender, vc) :: acc else acc)
        t.vcs []
    in
    if List.length s >= quorum t then begin
      match Nv_decision.decide t.d.cfg s ~has_batch:(fun d -> have_batch_bodies t d) with
      | Nv_decision.Wait ->
          (* fetch batch bodies that block decisions *)
          List.iter
            (fun (_, vc) ->
              List.iter
                (fun e ->
                  if not (have_batch_bodies t e.pe_digest) then
                    broadcast t (Fetch_batch { fb_digest = e.pe_digest; fb_replica = t.id }))
                vc.vc_pset)
            s
      | Nv_decision.Decision { start; start_digest; chosen } ->
          let nv =
            {
              nv_view = v;
              nv_vcs = List.map (fun (sender, vc) -> (sender, Wire.view_change_digest vc)) s;
              nv_start = start;
              nv_start_digest = start_digest;
              nv_chosen = chosen;
            }
          in
          Hashtbl.replace t.new_views v nv;
          broadcast t (New_view nv);
          t.deferred_nv <- Some nv;
          !process_new_view_ref t
    end
  end

let () = try_new_view_ref := try_new_view

(* ------------------------------------------------------------------ *)
(* State transfer (Section 5.3.2)                                       *)
(* ------------------------------------------------------------------ *)

let pick_replier t =
  let others = List.filter (fun i -> i <> t.id) (replica_ids t) in
  List.nth others (Bft_util.Rng.int t.rng (List.length others))

let send_fetch t ~level ~index =
  match t.transfer with
  | None -> ()
  | Some tx ->
      Hashtbl.replace tx.tx_pending (level, index) ();
      if Obs.enabled t.obs then Obs.transfer_fetch t.obs ~now:(now t) ~level ~index;
      broadcast t
        (Fetch
           {
             ft_level = level;
             ft_index = index;
             ft_lc = Checkpoint_store.stable_seq t.ckpts;
             ft_rc = tx.tx_target;
             ft_replier = tx.tx_replier;
             ft_replica = t.id;
           })

let rec transfer_retry t =
  match t.transfer with
  | None -> ()
  | Some tx ->
      tx.tx_replier <- pick_replier t;
      Hashtbl.iter (fun (level, index) () -> send_fetch t ~level ~index)
        (Hashtbl.copy tx.tx_pending);
      tx.tx_timer <-
        Some
          (Engine.schedule t.engine
             ~label:(Printf.sprintf "tx%d" t.id)
             ~delay:(Engine.of_us_float 30_000.0) (fun () ->
               transfer_retry t))

let start_transfer t ~target ~root_digest =
  match t.transfer with
  | Some tx when tx.tx_target >= target -> ()
  | _ ->
      (match t.transfer with
      | Some tx -> ( match tx.tx_timer with Some h -> Engine.cancel h | None -> ())
      | None -> ());
      t.counters.n_state_transfers <- t.counters.n_state_transfers + 1;
      L.debug (fun m -> m "replica %d: state transfer to %d" t.id target);
      if Obs.enabled t.obs then Obs.transfer_start t.obs ~now:(now t) ~target;
      let tx =
        {
          tx_target = target;
          tx_root_digest = root_digest;
          tx_expected = Hashtbl.create 32;
          tx_pending = Hashtbl.create 8;
          tx_pages = Hashtbl.create 32;
          tx_page_level = -1;
          tx_num_pages = 0;
          tx_ok_pages = Hashtbl.create 32;
          tx_replier = pick_replier t;
          tx_timer = None;
        }
      in
      Hashtbl.replace tx.tx_expected (0, 0) (target, root_digest);
      t.transfer <- Some tx;
      send_fetch t ~level:0 ~index:0;
      tx.tx_timer <-
        Some
          (Engine.schedule t.engine
             ~label:(Printf.sprintf "tx%d" t.id)
             ~delay:(Engine.of_us_float 30_000.0) (fun () ->
               transfer_retry t))

let local_tree t = Checkpoint_store.latest t.ckpts

let handle_fetch t (f : fetch) =
  if f.ft_replica <> t.id then begin
    let reply_from_tree tree =
      let page_level = Partition_tree.depth tree - 1 in
      if f.ft_level >= page_level then begin
        if f.ft_index < Partition_tree.num_pages tree && f.ft_replier = t.id then begin
          let p = Partition_tree.page tree f.ft_index in
          send_plain t ~dst:f.ft_replica
            (Data { dt_index = f.ft_index; dt_lm = p.Partition_tree.lm; dt_page = p.Partition_tree.data })
        end
      end
      else if f.ft_replier = t.id || Partition_tree.seq tree > max f.ft_lc f.ft_rc then begin
        let width =
          if f.ft_level = 0 then 1
          else
            (* interior width is derivable from children of parents; accept
               index if within the level *)
            max_int
        in
        ignore width;
        match Partition_tree.children tree ~level:f.ft_level ~index:f.ft_index with
        | children ->
            send_to t ~dst:f.ft_replica
              (Meta_data
                 {
                   md_checkpoint = Partition_tree.seq tree;
                   md_level = f.ft_level;
                   md_index = f.ft_index;
                   md_subparts = children;
                   md_replica = t.id;
                 })
        | exception Invalid_argument _ -> ()
      end
    in
    match Checkpoint_store.tree_at t.ckpts f.ft_rc with
    | Some tree -> reply_from_tree tree
    | None -> (
        (* help with a newer stable checkpoint when the requested one is
           gone (Section 5.3.2) *)
        match Checkpoint_store.stable_tree t.ckpts with
        | Some tree when Partition_tree.seq tree > max f.ft_lc f.ft_rc -> reply_from_tree tree
        | _ -> ())
  end

(* Does the local current state already match the expected page digest? *)
let local_page_matches t ~index ~lm ~digest =
  match local_tree t with
  | None -> false
  | Some tree ->
      index < Partition_tree.num_pages tree
      &&
      let p = Partition_tree.page tree index in
      p.Partition_tree.lm = lm && String.equal p.Partition_tree.digest digest

let check_transfer_done t =
  match t.transfer with
  | None -> ()
  | Some tx ->
      if Hashtbl.length tx.tx_pending = 0 && tx.tx_num_pages > 0 then begin
        (* assemble the page records: fetched pages where we fetched, local
           pages where they were proven current — each keeps its own lm, so
           the rebuilt tree reproduces the sender's digests even when clean
           pages predate the target checkpoint *)
        let ok = ref true in
        let acc = ref [] in
        for i = 0 to tx.tx_num_pages - 1 do
          match Hashtbl.find_opt tx.tx_pages i with
          | Some p -> acc := p :: !acc
          | None ->
              if Hashtbl.mem tx.tx_ok_pages i then begin
                match local_tree t with
                | Some tree -> acc := Partition_tree.page tree i :: !acc
                | None -> ok := false
              end
              else ok := false
        done;
        if !ok then begin
          let pages = Array.of_list (List.rev !acc) in
          match
            Partition_tree.of_pages ~seq:tx.tx_target ~page_size:t.d.page_size
              ~branching:t.d.branching pages
          with
          | exception Invalid_argument _ ->
              (* fetched pages do not form a valid image: start over *)
              t.transfer <- None;
              start_transfer t ~target:tx.tx_target ~root_digest:tx.tx_root_digest
          | tree ->
          charge t (Costs.digest_us t.costs (Partition_tree.digested_bytes tree));
          if String.equal (Partition_tree.root_digest tree) tx.tx_root_digest then begin
            let snapshot = Partition_tree.snapshot tree in
            (match tx.tx_timer with Some h -> Engine.cancel h | None -> ());
            t.transfer <- None;
            Checkpoint_store.install t.ckpts tree;
            (match restore_snapshot t snapshot with
            | Ok () -> ()
            | Error _ ->
                (* quorum-certified bytes our own decoder rejects: the local
                   state stays behind, but the installed tree is valid and
                   the protocol continues; recovery will retry *)
                ());
            t.last_exec <- tx.tx_target;
            t.committed_upto <- max t.committed_upto tx.tx_target;
            t.seqno <- max t.seqno tx.tx_target;
            Checkpoint_store.add_message t.ckpts
              { ck_seq = tx.tx_target; ck_digest = tx.tx_root_digest; ck_replica = t.id };
            announce_checkpoint t tx.tx_target;
            try_stabilize t;
            Log.truncate t.log tx.tx_target;
            if Obs.enabled t.obs then
              Obs.transfer_done t.obs ~now:(now t) ~target:tx.tx_target;
            L.debug (fun m -> m "replica %d: state transfer to %d complete" t.id tx.tx_target);
            try_execute t;
            !recovery_step_ref t
          end
          else begin
            (* root mismatch: restart the transfer from scratch *)
            t.transfer <- None;
            start_transfer t ~target:tx.tx_target ~root_digest:tx.tx_root_digest
          end
        end
      end

let () = check_transfer_done_ref := check_transfer_done

let handle_meta_data t (m : meta_data) =
  match t.transfer with
  | None -> ()
  | Some tx when m.md_checkpoint = tx.tx_target -> (
      match Hashtbl.find_opt tx.tx_expected (m.md_level, m.md_index) with
      | None -> ()
      | Some (exp_lm, exp_digest) ->
          (* verify: recompute the parent digest from the children *)
          let lm = List.fold_left (fun acc (_, lm, _) -> max acc lm) 0 m.md_subparts in
          let child_digests = List.map (fun (_, _, d) -> d) m.md_subparts in
          let recomputed =
            (* same construction as Partition_tree's interior digest *)
            let acc =
              List.fold_left
                (fun acc d -> Bft_crypto.Adhash.add acc (Bft_crypto.Adhash.of_digest d))
                Bft_crypto.Adhash.zero child_digests
            in
            let b = Buffer.create 64 in
            Buffer.add_string b "META";
            Buffer.add_string b (string_of_int m.md_level);
            Buffer.add_char b ':';
            Buffer.add_string b (string_of_int m.md_index);
            Buffer.add_char b ':';
            Buffer.add_string b (string_of_int lm);
            Buffer.add_char b ':';
            Buffer.add_string b (Bft_crypto.Adhash.to_string acc);
            Bft_crypto.Sha256.digest (Buffer.contents b)
          in
          charge t (Costs.digest_us t.costs (32 * List.length child_digests));
          if lm = exp_lm && String.equal recomputed exp_digest then begin
            Hashtbl.remove tx.tx_pending (m.md_level, m.md_index);
            t.counters.bytes_fetched <-
              t.counters.bytes_fetched + Wire.size (Meta_data m);
            (* determine whether children are pages: replies at level
               [depth-2] describe pages; we learn depth when a child has no
               further fan-out. Heuristic: ask for each mismatching child;
               if the child turns out to be a page the replier answers DATA
               (we request pages at [tx_page_level]). To keep the walk
               simple we learn the remote depth from the local tree when
               geometries match, else assume children of the lowest meta
               level are pages. *)
            let remote_page_level =
              match local_tree t with
              | Some tree -> Partition_tree.depth tree - 1
              | None -> m.md_level + 1
            in
            if m.md_level + 1 >= remote_page_level then begin
              tx.tx_page_level <- m.md_level + 1;
              List.iter
                (fun (idx, clm, cd) ->
                  tx.tx_num_pages <- max tx.tx_num_pages (idx + 1);
                  if local_page_matches t ~index:idx ~lm:clm ~digest:cd then
                    Hashtbl.replace tx.tx_ok_pages idx ()
                  else begin
                    Hashtbl.replace tx.tx_expected (m.md_level + 1, idx) (clm, cd);
                    send_fetch t ~level:(m.md_level + 1) ~index:idx
                  end)
                m.md_subparts
            end
            else
              List.iter
                (fun (idx, clm, cd) ->
                  let local_match =
                    match local_tree t with
                    | Some tree -> (
                        match Partition_tree.node_info tree ~level:(m.md_level + 1) ~index:idx with
                        | llm, ld -> llm = clm && String.equal ld cd
                        | exception Invalid_argument _ -> false)
                    | None -> false
                  in
                  if local_match then begin
                    (* whole subtree is current: mark its pages ok *)
                    match local_tree t with
                    | Some tree ->
                        let rec mark level index =
                          let page_level = Partition_tree.depth tree - 1 in
                          if level = page_level then begin
                            tx.tx_num_pages <- max tx.tx_num_pages (index + 1);
                            Hashtbl.replace tx.tx_ok_pages index ()
                          end
                          else
                            let first, last = Partition_tree.child_range tree ~level ~index in
                            for c = first to last do
                              mark (level + 1) c
                            done
                        in
                        mark (m.md_level + 1) idx
                    | None -> ()
                  end
                  else begin
                    Hashtbl.replace tx.tx_expected (m.md_level + 1, idx) (clm, cd);
                    send_fetch t ~level:(m.md_level + 1) ~index:idx
                  end)
                m.md_subparts;
            check_transfer_done t
          end)
  | Some _ -> ()

let handle_data t (dmsg : data) =
  match t.transfer with
  | None -> ()
  | Some tx -> (
      match Hashtbl.find_opt tx.tx_expected (tx.tx_page_level, dmsg.dt_index) with
      | None -> ()
      | Some (exp_lm, exp_digest) ->
          let page =
            Partition_tree.rebuild_page ~index:dmsg.dt_index ~lm:dmsg.dt_lm ~data:dmsg.dt_page
          in
          charge t (Costs.digest_us t.costs (String.length dmsg.dt_page));
          if dmsg.dt_lm = exp_lm && String.equal page.Partition_tree.digest exp_digest then begin
            Hashtbl.replace tx.tx_pages dmsg.dt_index page;
            Hashtbl.remove tx.tx_pending (tx.tx_page_level, dmsg.dt_index);
            t.counters.bytes_fetched <- t.counters.bytes_fetched + String.length dmsg.dt_page;
            check_transfer_done t
          end)

(* ------------------------------------------------------------------ *)
(* New-view processing (primary and backups)                            *)
(* ------------------------------------------------------------------ *)

let vc_available t v (sender, digest) =
  match Hashtbl.find_opt t.vcs (v, sender) with
  | Some (vc, verified) ->
      if not (String.equal (Wire.view_change_digest vc) digest) then None
      else if verified then Some vc
      else begin
        (* accept an unverified view-change when f acks from other replicas
           match the digest in the new-view (Section 3.2.4) *)
        let acks = ack_table t ~view:v ~origin:sender in
        let matching =
          Hashtbl.fold
            (fun acker d n ->
              if acker <> sender && acker <> t.id && String.equal d digest then n + 1 else n)
            acks 0
        in
        if matching >= t.d.cfg.Config.f then Some vc else None
      end
  | None -> None

let enter_new_view t (nv : new_view) =
  let v = nv.nv_view in
  L.debug (fun m -> m "replica %d: entering view %d (start=%d)" t.id v nv.nv_start);
  if Obs.enabled t.obs then Obs.new_view_entered t.obs ~now:(now t) ~view:v;
  t.view <- v;
  t.active <- true;
  t.deferred_nv <- None;
  (* new watchdog epoch: the smoothed latency of the old primary (and of
     the view-change gap itself) says nothing about the new primary *)
  t.perf_view_start <- now t;
  t.perf_ewma_us <- 0.0;
  t.perf_samples <- 0;
  stop_vc_timer t;
  (* prune view-change state for views before this one *)
  let prune_tbl tbl keep =
    Hashtbl.iter (fun k _ -> if not (keep k) then Hashtbl.remove tbl k) (Hashtbl.copy tbl)
  in
  prune_tbl t.vcs (fun (v', _) -> v' >= v);
  prune_tbl t.acks (fun (v', _) -> v' >= v);
  prune_tbl t.my_acks (fun v' -> v' >= v);
  prune_tbl t.my_vcs (fun v' -> v' >= v);
  prune_tbl t.new_views (fun v' -> v' >= v);
  (* align our state with the chosen start checkpoint *)
  let have_start = Checkpoint_store.tree_at t.ckpts nv.nv_start <> None in
  if t.last_exec > t.committed_upto then begin
    (* discard tentative executions *)
    let candidates =
      List.filter
        (fun (s, _) -> s <= t.committed_upto && s >= nv.nv_start)
        (Checkpoint_store.held t.ckpts)
    in
    match List.rev candidates with
    | (s, _) :: _ -> (
        match Checkpoint_store.tree_at t.ckpts s with
        | Some tree -> (
            match restore_snapshot t (Partition_tree.snapshot tree) with
            | Ok () ->
                t.last_exec <- s;
                t.committed_upto <- s
            | Error _ -> ())
        | None -> ())
    | [] ->
        if have_start then begin
          match Checkpoint_store.tree_at t.ckpts nv.nv_start with
          | Some tree -> (
              match restore_snapshot t (Partition_tree.snapshot tree) with
              | Ok () ->
                  t.last_exec <- nv.nv_start;
                  t.committed_upto <- nv.nv_start
              | Error _ -> ())
          | None -> ()
        end
  end;
  if (not have_start) && t.last_exec < nv.nv_start then
    start_transfer t ~target:nv.nv_start ~root_digest:nv.nv_start_digest;
  if t.last_exec < nv.nv_start && have_start then begin
    (match Checkpoint_store.tree_at t.ckpts nv.nv_start with
    | Some tree -> (
        match restore_snapshot t (Partition_tree.snapshot tree) with
        | Ok () ->
            t.last_exec <- nv.nv_start;
            t.committed_upto <- max t.committed_upto nv.nv_start
        | Error _ -> ())
    | None -> ())
  end;
  if Log.low_mark t.log < nv.nv_start then Log.truncate t.log nv.nv_start;
  (* install the chosen pre-prepares and (as a backup) send prepares *)
  let am_primary = primary_of t v = t.id in
  List.iter
    (fun c ->
      let n = c.nc_seq in
      if Log.in_window t.log n then begin
        let batch, nondet =
          if String.equal c.nc_digest Wire.null_batch_digest then ([], "null")
          else
            match Hashtbl.find_opt t.batches c.nc_digest with
            | Some (b, nd) -> (b, nd)
            | None -> ([], "null")
        in
        let pp = { pp_view = v; pp_seq = n; pp_batch = batch; pp_nondet = nondet } in
        ignore (Log.accept_pre_prepare t.log ~view:v pp c.nc_digest);
        (Log.find t.log n).Log.self_preprepared <- true;
        if not am_primary then send_prepare t ~view:v ~seq:n c.nc_digest
      end)
    nv.nv_chosen;
  if am_primary then
    t.seqno <- List.fold_left (fun acc c -> max acc c.nc_seq) nv.nv_start nv.nv_chosen
  else t.seqno <- 0;
  (* redo the protocol; executions <= last_exec are skipped automatically *)
  List.iter (fun c -> check_prepared_to_commit t ~seq:c.nc_seq) nv.nv_chosen;
  try_execute t;
  if Hashtbl.length t.waiting > 0 then start_vc_timer t;
  process_queue t

(* Validate and adopt a deferred new-view once all its view-changes (and
   the chosen batches) are locally available. *)
let process_new_view t =
  match t.deferred_nv with
  | None -> ()
  | Some nv when nv.nv_view < t.view -> t.deferred_nv <- None
  | Some nv ->
      let v = nv.nv_view in
      if primary_of t v = t.id then begin
        (* the primary already validated its own decision *)
        if Hashtbl.mem t.new_views v then begin
          let missing =
            List.filter (fun c -> not (have_batch_bodies t c.nc_digest)) nv.nv_chosen
          in
          if missing = [] then enter_new_view t nv
          else
            List.iter
              (fun c -> broadcast t (Fetch_batch { fb_digest = c.nc_digest; fb_replica = t.id }))
              missing
        end
      end
      else begin
        let vcs = List.filter_map (fun p -> vc_available t v p |> Option.map (fun vc -> (fst p, vc))) nv.nv_vcs in
        if List.length vcs = List.length nv.nv_vcs && List.length vcs >= quorum t then begin
          match Nv_decision.decide t.d.cfg vcs ~has_batch:(fun _ -> true) with
          | Nv_decision.Decision { start; start_digest; chosen }
            when start = nv.nv_start
                 && String.equal start_digest nv.nv_start_digest
                 && List.length chosen = List.length nv.nv_chosen
                 && List.for_all2
                      (fun a b -> a.nc_seq = b.nc_seq && String.equal a.nc_digest b.nc_digest)
                      chosen nv.nv_chosen ->
              let missing =
                List.filter (fun c -> not (have_batch_bodies t c.nc_digest)) nv.nv_chosen
              in
              if missing = [] then begin
                Hashtbl.replace t.new_views v nv;
                enter_new_view t nv
              end
              else
                List.iter
                  (fun c ->
                    broadcast t (Fetch_batch { fb_digest = c.nc_digest; fb_replica = t.id }))
                  missing
          | Nv_decision.Decision _ | Nv_decision.Wait ->
              (* invalid or undecidable: move to the next view *)
              start_view_change t (v + 1)
        end
      end

let () = process_new_view_ref := process_new_view

let handle_new_view t (nv : new_view) =
  if nv.nv_view >= t.view && primary_of t nv.nv_view <> t.id && nv.nv_view > 0 then begin
    if nv.nv_view > t.view then start_view_change t nv.nv_view;
    (match t.deferred_nv with
    | Some old when old.nv_view >= nv.nv_view -> ()
    | _ -> t.deferred_nv <- Some nv);
    process_new_view t
  end

(* ------------------------------------------------------------------ *)
(* Status and retransmission (Section 5.2)                              *)
(* ------------------------------------------------------------------ *)

let send_status t =
  (* a saturated single-threaded replica gets to its periodic work late;
     skip the beat instead of accumulating unbounded CPU debt *)
  let backlogged =
    Network.backlog t.d.net ~id:t.id > 8
    || Int64.compare (Network.busy_until t.d.net ~id:t.id)
         (Int64.add (now t) (Engine.of_us_float t.d.cfg.Config.status_interval_us))
       > 0
  in
  if backlogged then ()
  else if t.active && t.wrong_mac then
    (* mac_storm: understate our protocol state — claim an empty window
       and nothing executed — so every peer re-sends its whole window to
       us at each status beat (the amplification the per-peer
       retransmission budget bounds) *)
    broadcast t
      (Status_active
         {
           sa_replica = t.id;
           sa_view = t.view;
           sa_h = Log.low_mark t.log;
           sa_last_exec = Log.low_mark t.log;
           sa_prepared = [];
           sa_committed = [];
         })
  else if t.active then begin
    (* sa_prepared: prepared but not committed; sa_committed: committed *)
    let prepared = ref [] and committed = ref [] in
    Log.iter_window t.log (fun e ->
        match e.Log.pp_digest with
        | Some _ when Log.committed t.log ~view:t.view ~seq:e.Log.seq ->
            committed := e.Log.seq :: !committed
        | Some _ when Log.prepared t.log ~view:t.view ~seq:e.Log.seq ->
            prepared := e.Log.seq :: !prepared
        | _ -> ());
    broadcast t
      (Status_active
         {
           sa_replica = t.id;
           sa_view = t.view;
           sa_h = Log.low_mark t.log;
           sa_last_exec = t.last_exec;
           sa_prepared = !prepared;
           sa_committed = !committed;
         })
  end
  else begin
    let seen =
      Hashtbl.fold
        (fun (v, sender) _ acc -> if v = t.view then sender :: acc else acc)
        t.vcs []
    in
    broadcast t
      (Status_pending
         {
           sp_replica = t.id;
           sp_view = t.view;
           sp_h = Log.low_mark t.log;
           sp_last_exec = t.last_exec;
           sp_has_new_view = has_new_view t t.view;
           sp_vcs_seen = seen;
         })
  end

let handle_status_active t (s : status_active) =
  let r = s.sa_replica in
  if r <> t.id then begin
    if s.sa_view < t.view then begin
      (* bring the replica to our view *)
      match Hashtbl.find_opt t.my_vcs t.view with
      | Some vc -> send_retx t ~dst:r (View_change vc)
      | None -> ()
    end
    else if s.sa_view = t.view && t.active then begin
      (* retransmit our own protocol messages the peer is missing *)
      Log.iter_window t.log (fun e ->
          let n = e.Log.seq in
          if n > s.sa_h then begin
            match e.Log.pp_digest with
            | Some _ ->
                let peer_prepared = List.mem n s.sa_prepared || List.mem n s.sa_committed in
                if not peer_prepared then begin
                  (match e.Log.pp with
                  | Some pp when primary_of t e.Log.pp_view = t.id && e.Log.pp_view = t.view ->
                      send_retx t ~dst:r (Pre_prepare pp)
                  | _ -> ());
                  match Hashtbl.find_opt e.Log.prepares t.id with
                  | Some (v, d') when v = t.view ->
                      send_retx t ~dst:r
                        (Prepare { pr_view = v; pr_seq = n; pr_digest = d'; pr_replica = t.id })
                  | _ -> ()
                end;
                if not (List.mem n s.sa_committed) then begin
                  match Hashtbl.find_opt e.Log.commits t.id with
                  | Some (v, d') ->
                      send_retx t ~dst:r
                        (Commit { cm_view = v; cm_seq = n; cm_digest = d'; cm_replica = t.id })
                  | _ -> ()
                end
            | None -> ()
          end)
    end;
    (* peer behind on checkpoints: retransmit our checkpoint message *)
    let stable = Checkpoint_store.stable_seq t.ckpts in
    if s.sa_h < stable then begin
      match Checkpoint_store.stable_tree t.ckpts with
      | Some tree ->
          send_retx t ~dst:r
            (Checkpoint
               {
                 ck_seq = stable;
                 ck_digest = Partition_tree.root_digest tree;
                 ck_replica = t.id;
               })
      | None -> ()
    end
  end

let handle_status_pending t (s : status_pending) =
  let r = s.sp_replica in
  if r <> t.id then begin
    if s.sp_view <= t.view then begin
      (* our view-change for the peer's pending view (or ours, to pull it
         forward) *)
      (match Hashtbl.find_opt t.my_vcs (max s.sp_view t.view) with
      | Some vc -> if not (List.mem t.id s.sp_vcs_seen) || s.sp_view < t.view then send_retx t ~dst:r (View_change vc)
      | None -> ());
      (* retransmit acks for view-changes the peer lacks *)
      (match Hashtbl.find_opt t.my_acks s.sp_view with
      | Some acks ->
          List.iter
            (fun a -> if not (List.mem a.va_origin s.sp_vcs_seen) then send_retx t ~dst:r (View_change_ack a))
            acks
      | None -> ());
      (* the primary retransmits the new-view *)
      (match Hashtbl.find_opt t.new_views s.sp_view with
      | Some nv when primary_of t s.sp_view = t.id && not s.sp_has_new_view ->
          send_retx t ~dst:r (New_view nv)
      | _ -> ());
      (* and the view-change messages backing it *)
      if not s.sp_has_new_view then
        Hashtbl.iter
          (fun (v, sender) (vc, _) ->
            if v = s.sp_view && not (List.mem sender s.sp_vcs_seen) then
              send_retx t ~dst:r (View_change vc))
          t.vcs
    end
    else begin
      (* the peer is ahead: catch up by joining its view change *)
      handle_view_change t
        {
          vc_view = s.sp_view;
          vc_h = s.sp_h;
          vc_cset = [];
          vc_pset = [];
          vc_qset = [];
          vc_replica = r;
        }
        ~verified:false
    end
  end

(* ------------------------------------------------------------------ *)
(* Proactive recovery (Chapter 4)                                       *)
(* ------------------------------------------------------------------ *)

(* Periodic key refresh (Section 4.3.1): replace the keys other replicas
   use to send to us. Client-shared keys are refreshed by clients; they are
   only discarded on recovery, when the attacker may know them. *)
let send_new_key ?(drop_clients = false) t =
  if drop_clients then Bft_crypto.Keychain.drop_all_in_keys t.d.keychain;
  t.coproc_counter <- Int64.add t.coproc_counter 1L;
  let keys =
    List.filter_map
      (fun peer ->
        if peer = t.id then None
        else Some (peer, Bft_crypto.Keychain.fresh_in_key t.d.keychain t.rng ~peer))
      (replica_ids t)
  in
  broadcast t (New_key { nk_replica = t.id; nk_keys = keys; nk_counter = t.coproc_counter });
  if drop_clients then begin
    (* re-key every client we have served: each gets a fresh key to reach
       us, in a signed point-to-point new-key message *)
    let clients =
      Hashtbl.fold (fun c _ acc -> if c >= t.d.cfg.Config.n then c :: acc else acc) t.last_reply []
      |> List.sort_uniq compare
    in
    List.iter
      (fun client ->
        t.coproc_counter <- Int64.add t.coproc_counter 1L;
        let key = Bft_crypto.Keychain.fresh_in_key t.d.keychain t.rng ~peer:client in
        let body =
          New_key { nk_replica = t.id; nk_keys = [ (client, key) ]; nk_counter = t.coproc_counter }
        in
        if not t.muted then begin
          let enc = Message.no_cache () in
          let auth = sign_bytes t (Wire.cached_encode enc body) in
          let env = { sender = t.id; body; auth; enc } in
          Network.send t.d.net ~src:t.id ~dst:client ~size:(Wire.envelope_size env) env
        end)
      clients
  end

let handle_new_key t (nk : new_key) =
  if nk.nk_replica <> t.id then begin
    match List.assoc_opt t.id nk.nk_keys with
    | Some key -> ignore (Bft_crypto.Keychain.install_out_key t.d.keychain ~peer:nk.nk_replica key)
    | None -> ()
  end

let handle_query_stable t (q : query_stable) =
  if q.qs_replica <> t.id then begin
    let prepared_max = ref 0 in
    Log.iter_window t.log (fun e ->
        if Log.prepared t.log ~view:t.view ~seq:e.Log.seq then
          prepared_max := max !prepared_max e.Log.seq);
    send_to t ~dst:q.qs_replica
      (Reply_stable
         {
           rs_checkpoint = Checkpoint_store.stable_seq t.ckpts;
           rs_prepared = max !prepared_max t.committed_upto;
           rs_replica = t.id;
           rs_nonce = q.qs_nonce;
         })
  end

(* Estimation (Section 4.3.2): find c_M such that 2f other replicas report
   c <= c_M and f other replicas report p >= c_M; H_M = L + c_M. *)
let try_finish_estimation t =
  match t.recovering with
  | Some rc when rc.rc_phase = `Estimating ->
      let entries = Hashtbl.fold (fun r cp acc -> (r, cp) :: acc) rc.rc_est [] in
      let candidates = List.map (fun (_, (c, _)) -> c) entries |> List.sort_uniq compare in
      let viable c_m =
        let others = List.filter (fun (r, _) -> r <> t.id) entries in
        List.length (List.filter (fun (_, (c, _)) -> c <= c_m) others) >= 2 * t.d.cfg.Config.f
        && List.length (List.filter (fun (_, (_, p)) -> p >= c_m) others) >= t.d.cfg.Config.f
      in
      (match List.rev (List.filter viable candidates) with
      | c_m :: _ ->
          let hm = c_m + t.d.cfg.Config.log_size in
          rc.rc_est_hm <- hm;
          t.hm_bound <- hm;
          Checkpoint_store.drop_above t.ckpts hm;
          rc.rc_phase <- `Waiting_recovery_reply;
          if Obs.enabled t.obs then
            Obs.recovery_phase t.obs ~now:(now t) "recovery-request";
          (* recovery request through the normal protocol, signed by the
             co-processor *)
          t.coproc_counter <- Int64.add t.coproc_counter 1L;
          let req =
            {
              op = "\x00RECOVERY:" ^ Int64.to_string t.coproc_counter;
              timestamp = t.coproc_counter;
              client = t.id;
              read_only = false;
              replier = t.id;
            }
          in
          let enc = Message.no_cache () in
          let token =
            Auth_sig
              (Bft_crypto.Signature.sign t.d.signer (Wire.cached_encode enc (Request req)))
          in
          charge t t.costs.Costs.sig_gen_us;
          ignore (store_request t req token true);
          rc.rc_request <- Some req;
          if not t.muted then begin
            let env = { sender = t.id; body = Request req; auth = token; enc } in
            Network.multicast t.d.net ~src:t.id ~dsts:(replica_ids t)
              ~size:(Wire.envelope_size env) env
          end
      | [] -> ())
  | _ -> ()

(* Recovery pacing: retransmit the current phase's message until it gets a
   response (the paper's replica "keeps retransmitting the query message",
   Section 4.3.2). *)
let rec recovery_tick t =
  match t.recovering with
  | None -> ()
  | Some rc ->
      (match rc.rc_phase with
      | `Estimating -> broadcast t (Query_stable { qs_replica = t.id; qs_nonce = rc.rc_nonce })
      | `Waiting_recovery_reply -> (
          match rc.rc_request with
          | Some req -> (
              match Hashtbl.find_opt t.requests (Wire.request_digest req) with
              | Some sr when not t.muted ->
                  let env = Message.envelope ~sender:t.id ~auth:sr.sr_token (Request req) in
                  Network.multicast t.d.net ~src:t.id ~dsts:(replica_ids t)
                    ~size:(Wire.envelope_size env) env
              | _ -> ())
          | None -> ())
      | `Fetching -> !recovery_step_ref t);
      ignore
        (Engine.schedule t.engine
           ~label:(Printf.sprintf "rec%d" t.id)
           ~delay:(Engine.of_us_float 50_000.0) (fun () ->
             recovery_tick t))

let handle_reply_stable t (r : reply_stable) =
  match t.recovering with
  | Some rc when rc.rc_phase = `Estimating && Int64.equal r.rs_nonce rc.rc_nonce ->
      let c, p =
        match Hashtbl.find_opt rc.rc_est r.rs_replica with
        | Some (c0, p0) -> (min c0 r.rs_checkpoint, max p0 r.rs_prepared)
        | None -> (r.rs_checkpoint, r.rs_prepared)
      in
      Hashtbl.replace rc.rc_est r.rs_replica (c, p);
      try_finish_estimation t
  | _ -> ()

(* After the recovery request commits, other replicas' replies tell us the
   sequence number it executed at; recovery point H_R follows. *)
let handle_recovery_reply t (rp : reply) =
  match t.recovering with
  | Some rc when rc.rc_phase = `Waiting_recovery_reply -> (
      match rp.rp_result with
      | Full s -> (
          match int_of_string_opt s with
          | Some seq ->
              Hashtbl.replace rc.rc_replies rp.rp_replica seq;
              if Hashtbl.length rc.rc_replies >= quorum t then begin
                let seqs = Hashtbl.fold (fun _ s acc -> s :: acc) rc.rc_replies [] in
                let l_r = List.fold_left max 0 seqs in
                let k = t.d.cfg.Config.checkpoint_interval in
                let h_r =
                  max rc.rc_est_hm (((l_r + k - 1) / k * k) + t.d.cfg.Config.log_size)
                in
                rc.rc_recovery_point <- h_r;
                rc.rc_phase <- `Fetching;
                t.hm_bound <- h_r;
                if Obs.enabled t.obs then
                  Obs.recovery_phase t.obs ~now:(now t) "fetching";
                !recovery_step_ref t
              end
          | None -> ())
      | Result_digest _ -> ())
  | _ -> ()

(* Check and fetch state: rebuild our partition tree from the (possibly
   corrupt) current state and compare against a certified checkpoint. *)
let recovery_step t =
  match t.recovering with
  | Some rc when rc.rc_phase = `Fetching -> (
      (* find a certified recent checkpoint to check against *)
      match
        Checkpoint_store.certified_digest t.ckpts ~threshold:(weak t)
      with
      | Some (seq, digest) when seq > Checkpoint_store.stable_seq t.ckpts || t.transfer = None ->
          let local =
            match Checkpoint_store.tree_at t.ckpts seq with
            | Some tree -> String.equal (Partition_tree.root_digest tree) digest
            | None -> false
          in
          if not local then start_transfer t ~target:seq ~root_digest:digest
      | _ -> ())
  | _ -> ()

let () = recovery_step_ref := recovery_step

let begin_recovery t =
  if t.recovering = None then begin
    L.info (fun m -> m "replica %d: proactive recovery begins" t.id);
    if Obs.enabled t.obs then Obs.recovery_phase t.obs ~now:(now t) "estimating";
    (* a recovering primary abdicates first (Section 4.3.2) *)
    if is_primary t && t.active then broadcast t (View_change
      { vc_view = t.view + 1; vc_h = Checkpoint_store.stable_seq t.ckpts;
        vc_cset = []; vc_pset = []; vc_qset = []; vc_replica = t.id });
    (* reboot: rebuild the partition tree from saved (possibly corrupt)
       state so corruption is detectable *)
    send_new_key ~drop_clients:true t;
    let nonce = Bft_util.Rng.int64 t.rng in
    t.recovering <-
      Some
        {
          rc_phase = `Estimating;
          rc_request = None;
          rc_nonce = nonce;
          rc_est = Hashtbl.create 8;
          rc_est_hm = max_int;
          rc_recovery_point = max_int;
          rc_replies = Hashtbl.create 8;
        };
    broadcast t (Query_stable { qs_replica = t.id; qs_nonce = nonce });
    ignore
      (Engine.schedule t.engine
         ~label:(Printf.sprintf "rec%d" t.id)
         ~delay:(Engine.of_us_float 50_000.0) (fun () ->
           recovery_tick t))
  end

(* ------------------------------------------------------------------ *)
(* Fetch helpers for batches / requests                                 *)
(* ------------------------------------------------------------------ *)

let handle_fetch_batch t (f : fetch_batch) =
  if f.fb_replica <> t.id then
    match Hashtbl.find_opt t.batches f.fb_digest with
    | Some (batch, nondet) ->
        send_retx t ~dst:f.fb_replica
          (Batch_data { bd_digest = f.fb_digest; bd_batch = batch; bd_nondet = nondet })
    | None -> ()

let handle_batch_data t (bd : batch_data) =
  let d = Wire.batch_digest bd.bd_batch bd.bd_nondet in
  charge t (Costs.digest_us t.costs (Wire.size (Batch_data bd)));
  if String.equal d bd.bd_digest then begin
    Hashtbl.replace t.batches d (bd.bd_batch, bd.bd_nondet);
    List.iter
      (fun e ->
        match e with
        | Inline (r, tok) -> ignore (store_request t r tok false)
        | By_digest _ -> ())
      bd.bd_batch;
    !retry_deferred_pps_ref t;
    !try_new_view_ref t;
    process_new_view t;
    try_execute t
  end

let handle_fetch_request t (f : fetch_request) =
  if f.fr_replica <> t.id then
    match Hashtbl.find_opt t.requests f.fr_digest with
    | Some sr ->
        if (not t.muted) && retx_allow t f.fr_replica then begin
          let env = Message.envelope ~sender:t.id ~auth:sr.sr_token (Request sr.sr_req) in
          Network.send t.d.net ~src:t.id ~dst:f.fr_replica ~size:(Wire.envelope_size env) env
        end
    | None -> ()

(* ------------------------------------------------------------------ *)
(* Checkpoint message handling                                          *)
(* ------------------------------------------------------------------ *)

let handle_checkpoint_msg t (c : checkpoint) =
  if c.ck_seq > Checkpoint_store.stable_seq t.ckpts then begin
    Checkpoint_store.add_message t.ckpts c;
    try_stabilize t;
    (* if a certified checkpoint is beyond our window, we are out of date:
       fetch it (Section 5.3.2) *)
    (match Checkpoint_store.certified_digest t.ckpts ~threshold:(weak t) with
    | Some (seq, digest) when seq >= t.last_exec + t.d.cfg.Config.checkpoint_interval ->
        start_transfer t ~target:seq ~root_digest:digest
    | _ -> ());
    recovery_step t
  end

(* ------------------------------------------------------------------ *)
(* Dispatcher                                                           *)
(* ------------------------------------------------------------------ *)

(* Verification reuses the envelope's cached bytes: the sender filled the
   cache when authenticating, and the simulator delivers the same physical
   envelope, so no receiver ever re-serializes the body. *)
let verify_envelope t (env : envelope) =
  match env.body with
  | Request r -> verify_token_bytes t ~claimed:r.client (Wire.envelope_bytes env) env.auth
  | Data _ -> true (* verified against digests, Section 5.3.2 *)
  | New_key nk -> (
      match env.auth with
      | Auth_sig s ->
          charge t t.costs.Costs.sig_verify_us;
          s.Bft_crypto.Signature.signer_id = nk.nk_replica
          && Bft_crypto.Signature.verify t.d.registry s (Wire.envelope_bytes env)
      | _ -> false)
  | _ -> verify_token_bytes t ~claimed:env.sender (Wire.envelope_bytes env) env.auth

let handle t (env : envelope) =
  let verified = verify_envelope t env in
  match env.body with
  | Request r ->
      let relayed = env.sender <> r.client in
      if verified || is_primary t then handle_request t r env.auth ~verified ~relayed
  | Reply rp -> if verified && rp.rp_client = t.id then handle_recovery_reply t rp
  | Pre_prepare pp ->
      if verified && env.sender = primary_of t pp.pp_view then accept_pre_prepare t pp
  | Prepare p -> if verified && env.sender = p.pr_replica then handle_prepare t p
  | Commit c -> if verified && env.sender = c.cm_replica then handle_commit t c
  | Checkpoint c -> if verified && env.sender = c.ck_replica then handle_checkpoint_msg t c
  | View_change vc ->
      if env.sender = vc.vc_replica then handle_view_change t vc ~verified
  | View_change_ack a -> if verified && env.sender = a.va_replica then handle_view_change_ack t a
  | New_view nv -> if verified && env.sender = primary_of t nv.nv_view then handle_new_view t nv
  | Fetch f -> if verified && env.sender = f.ft_replica then handle_fetch t f
  | Meta_data m -> if verified && env.sender = m.md_replica then handle_meta_data t m
  | Data d -> handle_data t d
  | Status_active s -> if verified && env.sender = s.sa_replica then handle_status_active t s
  | Status_pending s -> if verified && env.sender = s.sp_replica then handle_status_pending t s
  | New_key nk -> if verified then handle_new_key t nk
  | Query_stable q -> if verified && env.sender = q.qs_replica then handle_query_stable t q
  | Reply_stable r -> if verified && env.sender = r.rs_replica then handle_reply_stable t r
  | Fetch_batch f -> if verified && env.sender = f.fb_replica then handle_fetch_batch t f
  | Batch_data bd -> if verified then handle_batch_data t bd
  | Fetch_request f -> if verified && env.sender = f.fr_replica then handle_fetch_request t f

(* ------------------------------------------------------------------ *)
(* Construction                                                         *)
(* ------------------------------------------------------------------ *)

let create ?(obs = Obs.null) d ~id =
  let engine = Network.engine d.net in
  let t =
    {
      d;
      id;
      obs;
      engine;
      costs = Network.costs d.net;
      rng = Bft_util.Rng.split d.rng;
      arena = Bft_net.Wire_arena.create ~size:1024 ();
      counters =
        {
          n_executed = 0;
          n_batches = 0;
          n_view_changes = 0;
          n_checkpoints = 0;
          n_state_transfers = 0;
          n_recoveries = 0;
          bytes_fetched = 0;
          n_admission_dropped = 0;
          n_retransmit_suppressed = 0;
          n_slowness_vc = 0;
        };
      view = 0;
      seqno = 0;
      last_exec = 0;
      committed_upto = 0;
      log = Log.create d.cfg;
      ckpts = Checkpoint_store.create d.cfg ~page_size:d.page_size ~branching:d.branching;
      batches = Hashtbl.create 64;
      requests = Hashtbl.create 64;
      queue_front = [];
      queue_back = [];
      queue_len = 0;
      batch_target = 1;
      queued = Hashtbl.create 16;
      assigned = Hashtbl.create 16;
      last_reply = Hashtbl.create 16;
      reply_clients = [];
      paged_sync = None;
      deferred_pps = [];
      pending_ro = [];
      pending_ckpt_announce = [];
      active = true;
      pset = Hashtbl.create 16;
      qset = Hashtbl.create 16;
      my_vcs = Hashtbl.create 4;
      vcs = Hashtbl.create 16;
      acks = Hashtbl.create 16;
      my_acks = Hashtbl.create 4;
      new_views = Hashtbl.create 4;
      vc_timer = None;
      vc_timeout_us = d.cfg.Config.vc_timeout_us;
      deferred_nv = None;
      waiting = Hashtbl.create 16;
      retx = Hashtbl.create 8;
      perf_ewma_us = 0.0;
      perf_samples = 0;
      perf_baseline_us = 0.0;
      perf_view_start = 0L;
      perf_fired_view = -1;
      transfer = None;
      recovering = None;
      hm_bound = max_int;
      coproc_counter = 0L;
      last_recovery_reply = Hashtbl.create 4;
      history = [];
      batch_journal = [];
      byzantine = false;
      muted = false;
      wrong_mac = false;
      null_fill_until = 0;
      status_timer = None;
      watchdog_timer = None;
      key_timer = None;
    }
  in
  Network.add_node d.net ~id ~handler:(fun env -> handle t env);
  (* checkpoint 0: the genesis state, considered stable by construction *)
  ignore (take_checkpoint t 0);
  t

let rec schedule_status t =
  t.status_timer <-
    Some
      (Engine.schedule t.engine
         ~label:(Printf.sprintf "status%d" t.id)
         ~delay:(Engine.of_us_float t.d.cfg.Config.status_interval_us)
         (fun () ->
           send_status t;
           schedule_status t))

let rec schedule_watchdog t delay_us =
  t.watchdog_timer <-
    Some
      (Engine.schedule t.engine
         ~label:(Printf.sprintf "wd%d" t.id)
         ~delay:(Engine.of_us_float delay_us) (fun () ->
           begin_recovery t;
           schedule_watchdog t t.d.cfg.Config.watchdog_period_us))

let rec schedule_key_refresh t =
  t.key_timer <-
    Some
      (Engine.schedule t.engine
         ~label:(Printf.sprintf "key%d" t.id)
         ~delay:(Engine.of_us_float t.d.cfg.Config.key_refresh_us)
         (fun () ->
           send_new_key t;
           schedule_key_refresh t))

let start t =
  schedule_status t;
  if t.d.cfg.Config.recovery then begin
    (* stagger watchdogs so at most f replicas recover at once (4.3.3) *)
    let offset =
      t.d.cfg.Config.watchdog_period_us
      *. (float_of_int (t.id + 1) /. float_of_int t.d.cfg.Config.n)
    in
    schedule_watchdog t (t.d.cfg.Config.watchdog_period_us +. offset);
    schedule_key_refresh t
  end

(* ------------------------------------------------------------------ *)
(* Fault injection                                                      *)
(* ------------------------------------------------------------------ *)

let debug_dump t =
  Printf.sprintf
    "r%d v=%d act=%b le=%d cu=%d seqno=%d stable=%d q=%d wait=%d defpp=%d nv=%b rec=%b hm=%d fill=%d"
    t.id t.view t.active t.last_exec t.committed_upto t.seqno
    (Checkpoint_store.stable_seq t.ckpts) t.queue_len (Hashtbl.length t.waiting)
    (List.length t.deferred_pps)
    (t.deferred_nv <> None) (t.recovering <> None)
    (if t.hm_bound = max_int then -1 else t.hm_bound)
    t.null_fill_until

let byzantine_equivocate t b = t.byzantine <- b
let mute t b = t.muted <- b
let byzantine_wrong_mac t b = t.wrong_mac <- b

let corrupt_state t =
  (* trash the service state behind the protocol's back *)
  let s = full_snapshot t in
  let s' =
    if String.length s = 0 then "CORRUPT"
    else String.init (String.length s) (fun i -> if i mod 7 = 0 then '\xff' else s.[i])
  in
  (* Route the trashed image through the hardened restore path: a validating
     service refuses it, and the refusal is counted ([snapshot_rejected])
     and logged instead of being silently swallowed. *)
  (match restore_snapshot t s' with
  | Ok () -> ()
  | Error _ ->
      (* rejection recorded by [restore_snapshot]; the digests installed
         below still diverge, so recovery exercises state transfer *)
      ());
  (* also corrupt retained checkpoint trees by rebuilding them from the
     corrupted snapshot (the attacker controls the whole node); building
     from the corrupted bytes directly makes the node's checkpoint digests
     diverge even when the service refused the image *)
  let stable = Checkpoint_store.stable_seq t.ckpts in
  let tree =
    Partition_tree.build ~seq:stable ~page_size:t.d.page_size ~branching:t.d.branching s'
  in
  Checkpoint_store.install t.ckpts tree;
  (* the installed tree no longer matches the service's dirty accounting *)
  t.paged_sync <- None

let force_recovery t = begin_recovery t

let crash_reboot t =
  (* lose volatile state; keep identity and keys; rejoin via state transfer *)
  Log.clear_entries t.log;
  Hashtbl.reset t.batches;
  Hashtbl.reset t.requests;
  queue_clear t;
  t.batch_target <- 1;
  Hashtbl.reset t.queued;
  t.deferred_pps <- [];
  t.pending_ro <- [];
  t.deferred_nv <- None;
  Hashtbl.reset t.waiting;
  Hashtbl.reset t.retx;
  t.perf_ewma_us <- 0.0;
  t.perf_samples <- 0;
  t.perf_baseline_us <- 0.0;
  t.perf_fired_view <- -1;
  t.perf_view_start <- now t;
  stop_vc_timer t;
  t.active <- true;
  send_status t

(* ------------------------------------------------------------------ *)
(* Canonical state fingerprint (exhaustive exploration)                 *)
(* ------------------------------------------------------------------ *)

(* Sorted views of Hashtbl contents so iteration order never reaches the
   fingerprint. *)
let hexd = Bft_util.Hex.encode
let hstr s = Bft_crypto.Sha256.hexdigest s

let sorted_int_keys h = List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) h [])

let sorted_string_keys h =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) h [])

let sorted_pair_keys h =
  List.sort
    (fun (a, b) (c, d) -> match Int.compare a c with 0 -> Int.compare b d | x -> x)
    (Hashtbl.fold (fun k _ acc -> k :: acc) h [])

(* Time-abstract digest of the full protocol state: everything that can
   influence future behavior or an oracle verdict, nothing derived from the
   virtual clock (no deadlines, no latencies). Two explorer states with
   equal digests must be behaviorally equivalent, so every unordered
   container is serialized in sorted order; ordered structures (FIFOs,
   deferred lists) keep their order because the protocol consumes them in
   order. *)
let state_digest t =
  let b = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "r%d v=%d act=%b seqno=%d le=%d cu=%d lw=%d byz=%b muted=%b wmac=%b fill=%d hmb=%d vct=%h vcarm=%b|"
    t.id t.view t.active t.seqno t.last_exec t.committed_upto (Log.low_mark t.log)
    t.byzantine t.muted t.wrong_mac t.null_fill_until
    (if t.hm_bound = max_int then -1 else t.hm_bound)
    t.vc_timeout_us
    (match t.vc_timer with Some h -> Engine.is_pending h | None -> false);
  (* message log, ascending sequence *)
  Log.iter_window t.log (fun e ->
      add "L%d pv=%d self=%b ex=%b tent=%b d=%s(" e.Log.seq e.Log.pp_view
        e.Log.self_preprepared e.Log.executed e.Log.exec_tentative
        (match e.Log.pp_digest with Some d -> hexd d | None -> "-");
      List.iter
        (fun k ->
          match Hashtbl.find_opt e.Log.prepares k with
          | Some (v, d) -> add "p%d:%d:%s;" k v (hexd d)
          | None -> ())
        (sorted_int_keys e.Log.prepares);
      List.iter
        (fun k ->
          match Hashtbl.find_opt e.Log.commits k with
          | Some (v, d) -> add "c%d:%d:%s;" k v (hexd d)
          | None -> ())
        (sorted_int_keys e.Log.commits);
      add ")");
  add "|ck:";
  List.iter (fun (s, d) -> add "%d:%s;" s (hexd d)) (checkpoints_held t);
  add "stable=%d votes:" (Checkpoint_store.stable_seq t.ckpts);
  List.iter
    (fun (seq, vs) ->
      add "%d(" seq;
      List.iter (fun (r, d) -> add "%d:%s;" r (hexd d)) vs;
      add ")")
    (Checkpoint_store.votes_canonical t.ckpts);
  add "|req:";
  List.iter
    (fun d ->
      match Hashtbl.find_opt t.requests d with
      | Some sr -> add "%s:%b;" (hexd d) sr.sr_verified
      | None -> ())
    (sorted_string_keys t.requests);
  add "|bat:";
  List.iter (fun d -> add "%s;" (hexd d)) (sorted_string_keys t.batches);
  add "|queue:";
  List.iter (fun r -> add "%s;" (hexd (Wire.request_digest r))) (queue_to_list t);
  add "|assigned:";
  List.iter (fun d -> add "%s;" (hexd d)) (sorted_string_keys t.assigned);
  add "|waiting:";
  List.iter (fun d -> add "%s;" (hexd d)) (sorted_string_keys t.waiting);
  add "|defpp:";
  List.iter
    (fun pp -> add "%s;" (hstr (Wire.encode (Pre_prepare pp))))
    t.deferred_pps;
  add "|ro:";
  List.iter (fun r -> add "%s;" (hexd (Wire.request_digest r))) t.pending_ro;
  add "|ckann:";
  List.iter (fun s -> add "%d;" s) t.pending_ckpt_announce;
  add "|psync=%s" (match t.paged_sync with Some s -> string_of_int s | None -> "-");
  (* view-change state *)
  add "|pset:";
  List.iter
    (fun k ->
      match Hashtbl.find_opt t.pset k with
      | Some pe ->
          add "%d:%d:%d:%s;" k pe.pe_seq pe.pe_view (hexd pe.pe_digest)
      | None -> ())
    (sorted_int_keys t.pset);
  add "|qset:";
  List.iter
    (fun k ->
      match Hashtbl.find_opt t.qset k with
      | Some l ->
          add "%d(" k;
          List.iter (fun (d, v) -> add "%s:%d;" (hexd d) v) l;
          add ")"
      | None -> ())
    (sorted_int_keys t.qset);
  add "|myvc:";
  List.iter
    (fun v ->
      match Hashtbl.find_opt t.my_vcs v with
      | Some vc -> add "%d:%s;" v (hexd (Wire.view_change_digest vc))
      | None -> ())
    (sorted_int_keys t.my_vcs);
  add "|vcs:";
  List.iter
    (fun ((v, s) as k) ->
      match Hashtbl.find_opt t.vcs k with
      | Some (vc, verified) ->
          add "%d:%d:%s:%b;" v s (hexd (Wire.view_change_digest vc)) verified
      | None -> ())
    (sorted_pair_keys t.vcs);
  add "|acks:";
  List.iter
    (fun ((v, o) as k) ->
      match Hashtbl.find_opt t.acks k with
      | Some inner ->
          add "%d:%d(" v o;
          List.iter
            (fun a ->
              match Hashtbl.find_opt inner a with
              | Some d -> add "%d:%s;" a (hexd d)
              | None -> ())
            (sorted_int_keys inner);
          add ")"
      | None -> ())
    (sorted_pair_keys t.acks);
  add "|myacks:";
  List.iter
    (fun v ->
      match Hashtbl.find_opt t.my_acks v with
      | Some l -> add "%d:%d;" v (List.length l)
      | None -> ())
    (sorted_int_keys t.my_acks);
  add "|nv:";
  List.iter
    (fun v ->
      match Hashtbl.find_opt t.new_views v with
      | Some nv -> add "%d:%s;" v (hstr (Wire.encode (New_view nv)))
      | None -> ())
    (sorted_int_keys t.new_views);
  add "|defnv=%s"
    (match t.deferred_nv with
    | Some nv -> hstr (Wire.encode (New_view nv))
    | None -> "-");
  (* state transfer / recovery, coarse but canonical *)
  (match t.transfer with
  | None -> add "|tx=-"
  | Some tx ->
      add "|tx=%d:%d:%d:%d:pend%d:pages%d:ok%d" tx.tx_target tx.tx_replier tx.tx_page_level
        tx.tx_num_pages (Hashtbl.length tx.tx_pending) (Hashtbl.length tx.tx_pages)
        (Hashtbl.length tx.tx_ok_pages));
  (match t.recovering with
  | None -> add "|rec=-"
  | Some rc ->
      add "|rec=%s:%d:%d:est%d:rep%d"
        (match rc.rc_phase with
        | `Estimating -> "est"
        | `Waiting_recovery_reply -> "wait"
        | `Fetching -> "fetch")
        rc.rc_est_hm rc.rc_recovery_point (Hashtbl.length rc.rc_est)
        (Hashtbl.length rc.rc_replies));
  (* execution journal: rollback-proof committed content, newest first *)
  add "|journal:";
  List.iter
    (fun (seq, recs) ->
      add "%d(" seq;
      List.iter (fun (c, op, res) -> add "%d:%s:%s;" c op (hstr res)) recs;
      add ")")
    t.batch_journal;
  (* service state + reply cache *)
  add "|snap:%s" (hstr (full_snapshot t));
  Bft_crypto.Sha256.hexdigest (Buffer.contents b)

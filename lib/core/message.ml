(** Protocol message types (Chapters 2-5 of the paper).

    Digests are 32-byte strings ({!Bft_crypto.Sha256}). A batch is the unit
    ordered by the three-phase protocol (Section 5.1.4); prepares and
    commits carry the batch digest. *)

type digest = string

(** Client request (Section 2.3.2). [replier] designates the replica that
    returns the full result under the digest-replies optimization. *)
type request = {
  op : string;
  timestamp : int64;
  client : int;
  read_only : bool;
  replier : int;
}

(** Authentication token attached to a message on the wire. Defined early
    because inline requests carry the client's own token inside
    pre-prepares: backups verify request authenticity independently of the
    primary (Section 3.2.2). *)
type auth_token =
  | Auth_none
  | Auth_mac of Bft_crypto.Auth.mac  (** point-to-point MAC *)
  | Auth_vector of Bft_crypto.Auth.authenticator  (** multicast authenticator *)
  | Auth_sig of Bft_crypto.Signature.t

(** Batch element: small requests are inlined in the pre-prepare (together
    with the client's authentication token); large ones travel separately
    and are referenced by digest (Section 5.1.5). *)
type batch_elem = Inline of request * auth_token | By_digest of digest

type pre_prepare = {
  pp_view : int;
  pp_seq : int;
  pp_batch : batch_elem list;
  pp_nondet : string;
}

type prepare = { pr_view : int; pr_seq : int; pr_digest : digest; pr_replica : int }
type commit = { cm_view : int; cm_seq : int; cm_digest : digest; cm_replica : int }

type checkpoint = { ck_seq : int; ck_digest : digest; ck_replica : int }

type result_payload = Full of string | Result_digest of digest

type reply = {
  rp_view : int;
  rp_timestamp : int64;
  rp_client : int;
  rp_replica : int;
  rp_tentative : bool;
  rp_result : result_payload;
}

(** View-change PSet entry: a batch prepared at the sender with this
    sequence number, digest, and view (Section 3.2.4). *)
type pset_entry = { pe_seq : int; pe_digest : digest; pe_view : int }

(** View-change QSet entry: for one sequence number, the batches that
    pre-prepared at the sender, with the latest view for each digest. *)
type qset_entry = { qe_seq : int; qe_entries : (digest * int) list }

type view_change = {
  vc_view : int;  (** the view being moved to *)
  vc_h : int;  (** sequence number of the sender's last stable checkpoint *)
  vc_cset : (int * digest) list;  (** stored checkpoints: seq, digest *)
  vc_pset : pset_entry list;
  vc_qset : qset_entry list;
  vc_replica : int;
}

type view_change_ack = {
  va_view : int;
  va_replica : int;  (** sender of the ack *)
  va_origin : int;  (** replica whose view-change is acknowledged *)
  va_digest : digest;  (** digest of that view-change message *)
}

(** Per-sequence decision in a new-view: the digest of the batch to
    re-propose, or the null batch. *)
type nv_choice = { nc_seq : int; nc_digest : digest }

type new_view = {
  nv_view : int;
  nv_vcs : (int * digest) list;  (** new-view certificate: sender, vc digest *)
  nv_start : int;  (** chosen checkpoint sequence number *)
  nv_start_digest : digest;
  nv_chosen : nv_choice list;
}

(** State-transfer fetch (Section 5.3.2): request partition [(level,index)]
    newer than checkpoint [lc]; [rc >= 0] asks the designated [replier] for
    the value at exactly checkpoint [rc]. *)
type fetch = {
  ft_level : int;
  ft_index : int;
  ft_lc : int;
  ft_rc : int;
  ft_replier : int;
  ft_replica : int;
}

type meta_data = {
  md_checkpoint : int;  (** checkpoint the metadata describes *)
  md_level : int;
  md_index : int;
  md_subparts : (int * int * digest) list;  (** index, last-mod seq, digest *)
  md_replica : int;
}

type data = { dt_index : int; dt_lm : int; dt_page : string }

(** Status messages (Section 5.2), used as negative acknowledgments. *)
type status_active = {
  sa_replica : int;
  sa_view : int;
  sa_h : int;
  sa_last_exec : int;
  sa_prepared : int list;  (** seqnos prepared but not committed *)
  sa_committed : int list;  (** seqnos committed but not executed *)
}

type status_pending = {
  sp_replica : int;
  sp_view : int;
  sp_h : int;
  sp_last_exec : int;
  sp_has_new_view : bool;
  sp_vcs_seen : int list;  (** senders whose view-changes we hold for sp_view *)
}

(** Key refresh (Section 4.3.1): the keys each peer must use to send to
    [nk_replica]; [nk_counter] is the secure co-processor counter. *)
type new_key = {
  nk_replica : int;
  nk_keys : (int * Bft_crypto.Keychain.key) list;
  nk_counter : int64;
}

(** Recovery estimation protocol (Section 4.3.2). *)
type query_stable = { qs_replica : int; qs_nonce : int64 }

type reply_stable = {
  rs_checkpoint : int;  (** c: last stable checkpoint at the sender *)
  rs_prepared : int;  (** p: last sequence prepared at the sender *)
  rs_replica : int;
  rs_nonce : int64;
}

(** Retransmission of missing bodies: a batch referenced by a new-view
    choice, or a separately-transmitted request referenced by digest in a
    batch (Sections 5.1.5 and 5.2). *)
type fetch_batch = { fb_digest : digest; fb_replica : int }
type batch_data = { bd_digest : digest; bd_batch : batch_elem list; bd_nondet : string }
type fetch_request = { fr_digest : digest; fr_replica : int }

type t =
  | Request of request
  | Reply of reply
  | Pre_prepare of pre_prepare
  | Prepare of prepare
  | Commit of commit
  | Checkpoint of checkpoint
  | View_change of view_change
  | View_change_ack of view_change_ack
  | New_view of new_view
  | Fetch of fetch
  | Meta_data of meta_data
  | Data of data
  | Status_active of status_active
  | Status_pending of status_pending
  | New_key of new_key
  | Query_stable of query_stable
  | Reply_stable of reply_stable
  | Fetch_batch of fetch_batch
  | Batch_data of batch_data
  | Fetch_request of fetch_request

let tag = function
  | Request _ -> "request"
  | Reply _ -> "reply"
  | Pre_prepare _ -> "pre-prepare"
  | Prepare _ -> "prepare"
  | Commit _ -> "commit"
  | Checkpoint _ -> "checkpoint"
  | View_change _ -> "view-change"
  | View_change_ack _ -> "view-change-ack"
  | New_view _ -> "new-view"
  | Fetch _ -> "fetch"
  | Meta_data _ -> "meta-data"
  | Data _ -> "data"
  | Status_active _ -> "status-active"
  | Status_pending _ -> "status-pending"
  | New_key _ -> "new-key"
  | Query_stable _ -> "query-stable"
  | Reply_stable _ -> "reply-stable"
  | Fetch_batch _ -> "fetch-batch"
  | Batch_data _ -> "batch-data"
  | Fetch_request _ -> "fetch-request"

(** Lazily filled encoding cache: the canonical wire bytes of a message
    body and their digest, computed at most once per envelope lifetime.
    Plain mutable options (not a [Wire] abstraction) so that [Message]
    stays free of codec dependencies; [Wire] owns the fill logic. *)
type enc_cache = {
  mutable enc_bytes : string option;
  mutable enc_digest : digest option;
}

let no_cache () = { enc_bytes = None; enc_digest = None }

(** What actually travels on the simulated network. For [Request] and
    [Request_data] the token belongs to the request's client (requests may
    be relayed by backups with the client token intact). [enc] memoizes the
    body's wire encoding: the sender fills it when authenticating, and —
    because the same physical envelope is what the simulated network
    delivers — every receiver's verification reuses the same bytes, so a
    message is serialized exactly once per lifetime. *)
type envelope = { sender : int; body : t; auth : auth_token; enc : enc_cache }

let envelope ~sender ~auth body = { sender; body; auth; enc = no_cache () }

(** Client proxy (Section 2.3.2 and the proxy automaton of Section 2.4.4).

    [invoke] sends a request to the primary (or multicasts it when the
    operation is large or read-only), collects replies, and fires the
    callback once a correct result is certain:
    - f+1 matching non-tentative replies (weak certificate), or
    - 2f+1 matching replies when any are tentative (Section 5.1.2) or the
      request was read-only (Section 5.1.3).

    Under the digest-replies optimization only the designated replier
    returns the full result; the client matches the rest by digest. On
    timeout the request is retransmitted to all replicas with exponential
    backoff capped at [Config.client_retry_max_us]; replies already
    collected for the same timestamp are kept across retransmissions. A
    read-only request that cannot assemble a quorum is retried as a
    regular read-write request (promotion), which voids the read-only
    replies collected so far. *)

type t

type deps = {
  cfg : Config.t;
  net : Message.envelope Bft_net.Network.t;
  registry : Bft_crypto.Signature.registry;
  keychain : Bft_crypto.Keychain.t;
  signer : Bft_crypto.Signature.signer;
  rng : Bft_util.Rng.t;
}

val create : ?obs:Bft_obs.Obs.t -> deps -> id:int -> t
(** Registers the client's network handler. One outstanding request at a
    time (the paper's well-formedness condition). [obs] defaults to the
    disabled sink. *)

val id : t -> int

val invoke :
  t -> ?read_only:bool -> op:string -> (result:string -> latency_us:float -> unit) -> unit
(** Raises [Invalid_argument] if a request is already outstanding. *)

val busy : t -> bool

val completed : t -> int
(** Number of operations completed since creation. *)

val retransmissions : t -> int

val srtt_us : t -> float
(** Smoothed measured response time driving the adaptive retransmission
    timeout (Section 5.2). Exposed for tests and metrics. *)

val pending_retries : t -> int option
(** Retransmission count of the in-flight request, if any (tests). *)

(** {2 Fault injection} *)

val byzantine_partial_auth : t -> bool -> unit
(** Corrupt part of the request authenticator (some replicas can verify it,
    others cannot) — the faulty-client scenario of Section 3.2.2. *)

val flood : t -> interval_us:float -> unit
(** Misbehaving-client attack: send a fresh authenticated request to all
    replicas every [interval_us] microseconds, open-loop, ignoring replies.
    Idempotent while already flooding. Raises [Invalid_argument] on a
    non-positive interval. *)

val flood_stop : t -> unit
(** Stop flooding; a no-op when not flooding. *)

val state_digest : t -> string
(** Canonical, time-abstract fingerprint of the client-proxy state for the
    exhaustive explorer (in-flight request, collected replies sorted by
    replica, completion count; no clock-derived values). *)

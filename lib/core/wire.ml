open Message

(* Encoders write directly into a Wire_arena: an allocate-once bump buffer
   that replaces the per-encode Buffer (allocation + doubling copies +
   final contents copy). Digest- and size-only paths finish straight off
   the arena's backing bytes with no string allocation at all; only
   encodes whose bytes must escape (the envelope's [enc_bytes]) pay one
   [A.contents] copy. *)
module A = Bft_net.Wire_arena

let add_int64 b (v : int64) = A.add_int64_le b v
let add_int b v = add_int64 b (Int64.of_int v)

let add_string b s =
  add_int b (String.length s);
  A.add_string b s

let add_bool b v = A.add_char b (if v then '\x01' else '\x00')

let add_list b f l =
  add_int b (List.length l);
  List.iter (f b) l

let encode_request b r =
  add_int b r.client;
  add_int64 b r.timestamp;
  add_bool b r.read_only;
  add_int b r.replier;
  add_string b r.op

(* ------------------------------------------------------------------ *)
(* Digest memoization                                                  *)
(*                                                                     *)
(* Request, batch and view-change digests are pure functions of message *)
(* structure, recomputed at many call sites (a request is digested on   *)
(* receipt, at batching, at execution, in replies...). Bounded          *)
(* structural Hashtbls make each digest a one-time cost per distinct    *)
(* value; memoizing a pure function cannot perturb determinism. Tables  *)
(* are reset wholesale at a size cap rather than evicted — simulator    *)
(* working sets are small and the reset path is effectively cold.       *)
(* ------------------------------------------------------------------ *)

let memo_cap = 8192

let memoize tbl key compute =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
      if Hashtbl.length tbl >= memo_cap then Hashtbl.reset tbl;
      let v = compute key in
      Hashtbl.add tbl key v;
      v

let request_memo : (request, digest) Hashtbl.t = Hashtbl.create 256
let batch_memo : (batch_elem list * string, digest) Hashtbl.t = Hashtbl.create 256
let vc_memo : (view_change, digest) Hashtbl.t = Hashtbl.create 64
let size_memo : (Message.t, int) Hashtbl.t = Hashtbl.create 256

let clear_memos () =
  Hashtbl.reset request_memo;
  Hashtbl.reset batch_memo;
  Hashtbl.reset vc_memo;
  Hashtbl.reset size_memo

(* Module-scratch arena for context-free encodes (digest/size memo
   compute, [Wire.encode]); per-node encode-once paths pass their own
   arena to [cached_encode]. Encoding happens only on the simulator
   domain — Vpool workers verify, they never encode — and no encoder
   re-enters another mid-write ([batch_digest] hoists its nested request
   digests before touching the arena). *)
let scratch = A.create ~size:1024 ()

let request_digest r =
  memoize request_memo r (fun r ->
      let b = scratch in
      A.reset b;
      A.add_char b 'R';
      encode_request b r;
      A.digest b)

let encode_batch_elem b = function
  | Inline (r, _tok) ->
      A.add_char b 'I';
      encode_request b r
  | By_digest d ->
      A.add_char b 'D';
      add_string b d

(* the memo key includes inline auth tokens (they are part of the
   structure) even though the digest ignores them: token variants of the
   same batch land in separate entries with identical values, which is
   harmless *)
let batch_digest batch nondet =
  memoize batch_memo (batch, nondet) (fun (batch, nondet) ->
      (* hoisted: [request_digest] shares the scratch arena, so resolve
         every element digest before starting this encode *)
      let ds =
        List.map
          (fun elem ->
            match elem with Inline (r, _) -> request_digest r | By_digest d -> d)
          batch
      in
      let b = scratch in
      A.reset b;
      A.add_char b 'B';
      add_int b (List.length batch);
      List.iter (A.add_string b) ds;
      add_string b nondet;
      A.digest b)

let null_batch_digest = Bft_crypto.Sha256.digest "NULL-BATCH"

let encode_pset b (e : pset_entry) =
  add_int b e.pe_seq;
  add_string b e.pe_digest;
  add_int b e.pe_view

let encode_qset b (e : qset_entry) =
  add_int b e.qe_seq;
  add_list b
    (fun b (d, v) ->
      add_string b d;
      add_int b v)
    e.qe_entries

let encode_int_digest b (n, d) =
  add_int b n;
  add_string b d

let encode_body b = function
  | Request r ->
      A.add_char b '\x01';
      encode_request b r
  | Reply r ->
      A.add_char b '\x02';
      add_int b r.rp_view;
      add_int64 b r.rp_timestamp;
      add_int b r.rp_client;
      add_int b r.rp_replica;
      add_bool b r.rp_tentative;
      (match r.rp_result with
      | Full s ->
          A.add_char b 'F';
          add_string b s
      | Result_digest d ->
          A.add_char b 'D';
          add_string b d)
  | Pre_prepare p ->
      A.add_char b '\x03';
      add_int b p.pp_view;
      add_int b p.pp_seq;
      add_list b encode_batch_elem p.pp_batch;
      add_string b p.pp_nondet
  | Prepare p ->
      A.add_char b '\x04';
      add_int b p.pr_view;
      add_int b p.pr_seq;
      add_string b p.pr_digest;
      add_int b p.pr_replica
  | Commit c ->
      A.add_char b '\x05';
      add_int b c.cm_view;
      add_int b c.cm_seq;
      add_string b c.cm_digest;
      add_int b c.cm_replica
  | Checkpoint c ->
      A.add_char b '\x06';
      add_int b c.ck_seq;
      add_string b c.ck_digest;
      add_int b c.ck_replica
  | View_change v ->
      A.add_char b '\x07';
      add_int b v.vc_view;
      add_int b v.vc_h;
      add_list b encode_int_digest v.vc_cset;
      add_list b encode_pset v.vc_pset;
      add_list b encode_qset v.vc_qset;
      add_int b v.vc_replica
  | View_change_ack a ->
      A.add_char b '\x08';
      add_int b a.va_view;
      add_int b a.va_replica;
      add_int b a.va_origin;
      add_string b a.va_digest
  | New_view n ->
      A.add_char b '\x09';
      add_int b n.nv_view;
      add_list b encode_int_digest n.nv_vcs;
      add_int b n.nv_start;
      add_string b n.nv_start_digest;
      add_list b
        (fun b c ->
          add_int b c.nc_seq;
          add_string b c.nc_digest)
        n.nv_chosen
  | Fetch f ->
      A.add_char b '\x0a';
      add_int b f.ft_level;
      add_int b f.ft_index;
      add_int b f.ft_lc;
      add_int b f.ft_rc;
      add_int b f.ft_replier;
      add_int b f.ft_replica
  | Meta_data m ->
      A.add_char b '\x0b';
      add_int b m.md_checkpoint;
      add_int b m.md_level;
      add_int b m.md_index;
      add_list b
        (fun b (i, lm, d) ->
          add_int b i;
          add_int b lm;
          add_string b d)
        m.md_subparts;
      add_int b m.md_replica
  | Data d ->
      A.add_char b '\x0c';
      add_int b d.dt_index;
      add_int b d.dt_lm;
      add_string b d.dt_page
  | Status_active s ->
      A.add_char b '\x0d';
      add_int b s.sa_replica;
      add_int b s.sa_view;
      add_int b s.sa_h;
      add_int b s.sa_last_exec;
      add_list b (fun b n -> add_int b n) s.sa_prepared;
      add_list b (fun b n -> add_int b n) s.sa_committed
  | Status_pending s ->
      A.add_char b '\x0e';
      add_int b s.sp_replica;
      add_int b s.sp_view;
      add_int b s.sp_h;
      add_int b s.sp_last_exec;
      add_bool b s.sp_has_new_view;
      add_list b (fun b n -> add_int b n) s.sp_vcs_seen
  | New_key k ->
      A.add_char b '\x0f';
      add_int b k.nk_replica;
      add_list b
        (fun b (peer, (key : Bft_crypto.Keychain.key)) ->
          add_int b peer;
          add_string b key.secret;
          add_int b key.epoch)
        k.nk_keys;
      add_int64 b k.nk_counter
  | Query_stable q ->
      A.add_char b '\x10';
      add_int b q.qs_replica;
      add_int64 b q.qs_nonce
  | Reply_stable r ->
      A.add_char b '\x11';
      add_int b r.rs_checkpoint;
      add_int b r.rs_prepared;
      add_int b r.rs_replica;
      add_int64 b r.rs_nonce
  | Fetch_batch f ->
      A.add_char b '\x12';
      add_string b f.fb_digest;
      add_int b f.fb_replica
  | Batch_data d ->
      A.add_char b '\x13';
      add_string b d.bd_digest;
      add_list b encode_batch_elem d.bd_batch;
      add_string b d.bd_nondet
  | Fetch_request f ->
      A.add_char b '\x14';
      add_string b f.fr_digest;
      add_int b f.fr_replica

let encode m =
  A.reset scratch;
  encode_body scratch m;
  A.contents scratch

(* memoized: the size model charges per encoded byte at several hot call
   sites (request receipt, pre-prepare accept, state transfer), and the
   charged size of a given message never changes. Sizing never leaves the
   arena: no string is allocated. *)
let size m =
  memoize size_memo m (fun m ->
      A.reset scratch;
      encode_body scratch m;
      A.length scratch)

let auth_size = function
  | Auth_none -> 0
  | Auth_mac _ -> 8 + Bft_crypto.Auth.tag_size
  | Auth_vector a -> Bft_crypto.Auth.size a
  | Auth_sig _ -> 128 (* 1024-bit signature *)

(* ------------------------------------------------------------------ *)
(* Encode-once envelopes                                               *)
(* ------------------------------------------------------------------ *)

(* Fill (or reuse) a cache with the body's canonical encoding. The sender
   calls this before authenticating; [envelope_size] and every receiver's
   verification then reuse the same physical string. [arena] lets a node
   encode through its own allocate-once buffer (the per-node Wire_arena);
   the bytes written are identical either way. *)
let cached_encode ?arena (cache : enc_cache) body =
  match cache.enc_bytes with
  | Some s -> s
  | None ->
      let a = match arena with Some a -> a | None -> scratch in
      A.reset a;
      encode_body a body;
      let s = A.contents a in
      cache.enc_bytes <- Some s;
      s

let envelope_bytes (e : envelope) = cached_encode e.enc e.body

let envelope_digest (e : envelope) =
  match e.enc.enc_digest with
  | Some d -> d
  | None ->
      let d = Bft_crypto.Sha256.digest (envelope_bytes e) in
      e.enc.enc_digest <- Some d;
      d

let envelope_size e =
  8 (* header *) + String.length (envelope_bytes e) + auth_size e.auth

let view_change_digest v =
  memoize vc_memo v (fun v ->
      A.reset scratch;
      encode_body scratch (View_change v);
      A.digest scratch)

(* domain-tagged digests, built in the arena to skip the "TAG" ^ s
   concatenation (the bytes hashed are identical) *)
let tagged_digest tag s =
  A.reset scratch;
  A.add_string scratch tag;
  A.add_string scratch s;
  A.digest scratch

let checkpoint_value_digest s = tagged_digest "CKPT" s
let result_digest s = tagged_digest "RES" s

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

exception Malformed of string

type cursor = { buf : string; mutable pos : int }

let need c n =
  if c.pos + n > String.length c.buf then raise (Malformed "truncated input")

let get_byte c =
  need c 1;
  let b = c.buf.[c.pos] in
  c.pos <- c.pos + 1;
  b

let get_int64 c =
  need c 8;
  let v = String.get_int64_le c.buf c.pos in
  c.pos <- c.pos + 8;
  v

let get_int c =
  let v = get_int64 c in
  let i = Int64.to_int v in
  if Int64.of_int i <> v then raise (Malformed "integer out of range");
  i

let get_string c =
  let len = get_int c in
  if len < 0 then raise (Malformed "negative length");
  need c len;
  let s = String.sub c.buf c.pos len in
  c.pos <- c.pos + len;
  s

let get_bool c =
  match get_byte c with
  | '\x00' -> false
  | '\x01' -> true
  | _ -> raise (Malformed "bad boolean")

let get_list c f =
  let n = get_int c in
  if n < 0 then raise (Malformed "negative list length");
  List.init n (fun _ -> f c)

let get_request c =
  let client = get_int c in
  let timestamp = get_int64 c in
  let read_only = get_bool c in
  let replier = get_int c in
  let op = get_string c in
  { client; timestamp; read_only; replier; op }

let get_batch_elem c =
  match get_byte c with
  | 'I' -> Inline (get_request c, Auth_none)
  | 'D' -> By_digest (get_string c)
  | _ -> raise (Malformed "bad batch element tag")

let get_pset c =
  let pe_seq = get_int c in
  let pe_digest = get_string c in
  let pe_view = get_int c in
  { pe_seq; pe_digest; pe_view }

let get_qset c =
  let qe_seq = get_int c in
  let qe_entries =
    get_list c (fun c ->
        let d = get_string c in
        let v = get_int c in
        (d, v))
  in
  { qe_seq; qe_entries }

let get_int_digest c =
  let n = get_int c in
  let d = get_string c in
  (n, d)

let decode_body c =
  match get_byte c with
  | '\x01' -> Request (get_request c)
  | '\x02' ->
      let rp_view = get_int c in
      let rp_timestamp = get_int64 c in
      let rp_client = get_int c in
      let rp_replica = get_int c in
      let rp_tentative = get_bool c in
      let rp_result =
        match get_byte c with
        | 'F' -> Full (get_string c)
        | 'D' -> Result_digest (get_string c)
        | _ -> raise (Malformed "bad result tag")
      in
      Reply { rp_view; rp_timestamp; rp_client; rp_replica; rp_tentative; rp_result }
  | '\x03' ->
      let pp_view = get_int c in
      let pp_seq = get_int c in
      let pp_batch = get_list c get_batch_elem in
      let pp_nondet = get_string c in
      Pre_prepare { pp_view; pp_seq; pp_batch; pp_nondet }
  | '\x04' ->
      let pr_view = get_int c in
      let pr_seq = get_int c in
      let pr_digest = get_string c in
      let pr_replica = get_int c in
      Prepare { pr_view; pr_seq; pr_digest; pr_replica }
  | '\x05' ->
      let cm_view = get_int c in
      let cm_seq = get_int c in
      let cm_digest = get_string c in
      let cm_replica = get_int c in
      Commit { cm_view; cm_seq; cm_digest; cm_replica }
  | '\x06' ->
      let ck_seq = get_int c in
      let ck_digest = get_string c in
      let ck_replica = get_int c in
      Checkpoint { ck_seq; ck_digest; ck_replica }
  | '\x07' ->
      let vc_view = get_int c in
      let vc_h = get_int c in
      let vc_cset = get_list c get_int_digest in
      let vc_pset = get_list c get_pset in
      let vc_qset = get_list c get_qset in
      let vc_replica = get_int c in
      View_change { vc_view; vc_h; vc_cset; vc_pset; vc_qset; vc_replica }
  | '\x08' ->
      let va_view = get_int c in
      let va_replica = get_int c in
      let va_origin = get_int c in
      let va_digest = get_string c in
      View_change_ack { va_view; va_replica; va_origin; va_digest }
  | '\x09' ->
      let nv_view = get_int c in
      let nv_vcs = get_list c get_int_digest in
      let nv_start = get_int c in
      let nv_start_digest = get_string c in
      let nv_chosen =
        get_list c (fun c ->
            let nc_seq = get_int c in
            let nc_digest = get_string c in
            { nc_seq; nc_digest })
      in
      New_view { nv_view; nv_vcs; nv_start; nv_start_digest; nv_chosen }
  | '\x0a' ->
      let ft_level = get_int c in
      let ft_index = get_int c in
      let ft_lc = get_int c in
      let ft_rc = get_int c in
      let ft_replier = get_int c in
      let ft_replica = get_int c in
      Fetch { ft_level; ft_index; ft_lc; ft_rc; ft_replier; ft_replica }
  | '\x0b' ->
      let md_checkpoint = get_int c in
      let md_level = get_int c in
      let md_index = get_int c in
      let md_subparts =
        get_list c (fun c ->
            let i = get_int c in
            let lm = get_int c in
            let d = get_string c in
            (i, lm, d))
      in
      let md_replica = get_int c in
      Meta_data { md_checkpoint; md_level; md_index; md_subparts; md_replica }
  | '\x0c' ->
      let dt_index = get_int c in
      let dt_lm = get_int c in
      let dt_page = get_string c in
      Data { dt_index; dt_lm; dt_page }
  | '\x0d' ->
      let sa_replica = get_int c in
      let sa_view = get_int c in
      let sa_h = get_int c in
      let sa_last_exec = get_int c in
      let sa_prepared = get_list c get_int in
      let sa_committed = get_list c get_int in
      Status_active { sa_replica; sa_view; sa_h; sa_last_exec; sa_prepared; sa_committed }
  | '\x0e' ->
      let sp_replica = get_int c in
      let sp_view = get_int c in
      let sp_h = get_int c in
      let sp_last_exec = get_int c in
      let sp_has_new_view = get_bool c in
      let sp_vcs_seen = get_list c get_int in
      Status_pending { sp_replica; sp_view; sp_h; sp_last_exec; sp_has_new_view; sp_vcs_seen }
  | '\x0f' ->
      let nk_replica = get_int c in
      let nk_keys =
        get_list c (fun c ->
            let peer = get_int c in
            let secret = get_string c in
            let epoch = get_int c in
            (peer, { Bft_crypto.Keychain.secret; epoch }))
      in
      let nk_counter = get_int64 c in
      New_key { nk_replica; nk_keys; nk_counter }
  | '\x10' ->
      let qs_replica = get_int c in
      let qs_nonce = get_int64 c in
      Query_stable { qs_replica; qs_nonce }
  | '\x11' ->
      let rs_checkpoint = get_int c in
      let rs_prepared = get_int c in
      let rs_replica = get_int c in
      let rs_nonce = get_int64 c in
      Reply_stable { rs_checkpoint; rs_prepared; rs_replica; rs_nonce }
  | '\x12' ->
      let fb_digest = get_string c in
      let fb_replica = get_int c in
      Fetch_batch { fb_digest; fb_replica }
  | '\x13' ->
      let bd_digest = get_string c in
      let bd_batch = get_list c get_batch_elem in
      let bd_nondet = get_string c in
      Batch_data { bd_digest; bd_batch; bd_nondet }
  | '\x14' ->
      let fr_digest = get_string c in
      let fr_replica = get_int c in
      Fetch_request { fr_digest; fr_replica }
  | _ -> raise (Malformed "unknown message tag")

let decode s =
  let c = { buf = s; pos = 0 } in
  match decode_body c with
  | m ->
      if c.pos <> String.length s then Error "trailing bytes"
      else Ok m
  | exception Malformed why -> Error why

(** Test/benchmark harness: builds a complete replicated system — engine,
    network, n replicas, clients — with all pairwise session keys
    established, and provides run helpers and whole-system checks. *)

type t

val create :
  ?seed:int64 ->
  ?costs:Bft_net.Costs.t ->
  ?service:(unit -> Bft_sm.Service.t) ->
  ?page_size:int ->
  ?branching:int ->
  ?num_clients:int ->
  ?obs:Bft_obs.Obs.registry ->
  Config.t ->
  t
(** Service factory defaults to {!Bft_sm.Null_service.create}; each replica
    gets its own instance. Client ids are [n, n+1, ...]. When [obs] is
    given, every replica and client records traces and metrics into its
    per-node sink; without it, tracing is fully disabled. *)

val engine : t -> Bft_sim.Engine.t
val network : t -> Message.envelope Bft_net.Network.t
val config : t -> Config.t
val replica : t -> int -> Replica.t
val replicas : t -> Replica.t array
val client : t -> int -> Client.t
(** [client t k] is the k-th client (0-based). *)

val num_clients : t -> int

val observations : t -> Bft_obs.Obs.registry option
(** The registry passed at creation, if any. *)

val run : ?timeout_us:float -> t -> unit
(** Drain events up to the (virtual-time) deadline; default 10 seconds. *)

val run_until : ?timeout_us:float -> t -> (unit -> bool) -> bool
(** Returns [true] when the condition was reached before the deadline. *)

val try_invoke_sync :
  ?timeout_us:float ->
  t ->
  client:int ->
  ?read_only:bool ->
  string ->
  (string * float, string) result
(** Issue one operation from the given client and run the simulation until
    it completes; returns the result and client-observed latency (us of
    virtual time), or [Error] describing the timeout. Timeouts are counted
    in the client's metrics when an observation registry is attached. *)

val invoke_sync : ?timeout_us:float -> t -> client:int -> ?read_only:bool -> string -> string
(** Issue one operation from the given client and run the simulation until
    it completes; returns the result. Raises [Failure] on timeout
    (thin wrapper over {!try_invoke_sync}). *)

val invoke_sync_latency :
  ?timeout_us:float -> t -> client:int -> ?read_only:bool -> string -> string * float
(** Like {!invoke_sync} but also returns the client-observed latency in
    microseconds of virtual time. *)

(** {2 Whole-system checks (for tests)} *)

val committed_histories_consistent : t -> bool
(** Every pair of replicas agrees on the operations executed at each
    sequence number within their common committed prefix — the safety
    property (no two correct replicas commit different requests with the
    same sequence number). *)

val committed_history_digest : t -> string
(** Hex SHA-256 fingerprint of the committed histories of every correct
    replica (surviving execution record per sequence number, in replica
    then sequence order). Pinned-seed runs must reproduce this digest
    byte-for-byte across refactors that do not change protocol semantics. *)

val correct_replicas : t -> int list ref
(** Mutable list of replica ids considered correct by checks; faults
    injected by tests should remove the faulty ids. Defaults to all. *)

val check_linearizable :
  ?replica:int -> t -> service:(unit -> Bft_sm.Service.t) -> (unit, string) result
(** Replay the committed prefix of [replica]'s (default 0) execution history, in
    sequence order, against a fresh instance of the service, and check that
    every recorded result matches — the observable half of the paper's
    modified-linearizability condition (Section 2.4.3): committed
    operations behave as if executed atomically one at a time, in sequence
    order, with exactly-once semantics. Limitations: only usable with
    services whose results ignore the agreed non-deterministic input (the
    replay cannot reproduce it), and it validates the totally-ordered
    history rather than searching alternative linearizations (the order is
    fixed by the protocol, so there is exactly one candidate). *)

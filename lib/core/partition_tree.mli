(** Hierarchical state partitions for checkpoint management (Section 5.3.1).

    The service state (a snapshot byte string) is split into fixed-size
    pages, the leaves of a tree in which each interior partition has up to
    [branching] children. Each node stores the last checkpoint sequence
    number at which it was modified ([lm]) and a digest; page digests hash
    (index, lm, value) and interior digests combine child digests with
    AdHash, so the digests of a new checkpoint are computed incrementally
    from the previous one: only modified pages are re-hashed. The root
    digest is the checkpoint digest carried by CHECKPOINT messages, and it
    commits the values of all sub-partitions, which is what lets state
    transfer verify fetched partitions top-down without certificates
    (Section 5.3.2). *)

type digest = string

type page = { data : string; lm : int; digest : digest }

type t

val build : ?prev:t -> seq:int -> page_size:int -> branching:int -> string -> t
(** [build ?prev ~seq ~page_size ~branching snapshot] constructs the tree
    for the checkpoint with sequence number [seq]. When [prev] is given and
    has the same geometry, unchanged pages share their records (and their
    [lm] and digests) with [prev] — the copy-on-write of the paper. Cost is
    O(total state): every page is byte-compared, every interior node
    recomputed. *)

val build_pages :
  ?prev:t -> seq:int -> page_size:int -> branching:int -> string array -> t
(** Like {!build}, but from an already-paged image: every page except the
    last must be exactly [page_size] bytes and the last non-empty (unless
    it is the only page), i.e. exactly what splitting the concatenation
    would produce — the invariant state transfer relies on when it re-splits
    a reassembled snapshot. Raises [Invalid_argument] otherwise. *)

val of_pages : seq:int -> page_size:int -> branching:int -> page array -> t
(** Reassemble a tree from verified page records, keeping each page's own
    [lm] and digest and recomputing only the interior nodes. State transfer
    uses this to rebuild the target checkpoint from fetched/locally-current
    pages: their [lm]s generally differ (only pages written since earlier
    checkpoints carry the target sequence number), so a from-scratch
    {!build} — which stamps every page with [seq] — would not reproduce the
    sender's root digest. [digested_bytes] of the result is the total page
    bytes (the caller verified a digest over every byte). Page shape rules
    as in {!build_pages}. *)

val update : t -> seq:int -> pages:string array -> dirty:int list -> t
(** [update prev ~seq ~pages ~dirty] builds the checkpoint tree for [seq]
    assuming [pages] differs from [prev] only at the indices listed in
    [dirty] (callers must over-approximate: a page not listed is trusted to
    be unchanged and is not compared). Dirty pages whose bytes did in fact
    not change keep their previous record and [lm]. Only dirty pages are
    re-digested and only their ancestor interior nodes recomputed, each by
    AdHash subtract-old/add-new on the affected child digests — no fold
    over clean siblings — so cost is O(|dirty| * depth), not O(state).
    Untouched page records, node records and the result's digests are
    structurally shared with [prev] and byte-identical to a from-scratch
    {!build} of the same image. Falls back to [build_pages ~prev] when the
    page count changed or [seq <= seq prev]. Page shape rules and
    out-of-range dirty indices raise [Invalid_argument] as in
    {!build_pages}. *)

val seq : t -> int
val root_digest : t -> digest
val num_pages : t -> int
val depth : t -> int
(** Number of levels; level 0 is the root, level [depth - 1] the pages. *)

val page : t -> int -> page
(** Raises [Invalid_argument] on out-of-range index. *)

val node_info : t -> level:int -> index:int -> int * digest
(** [(lm, digest)] of an interior node or page. *)

val level_width : t -> int -> int
(** Number of nodes at a level (pages for the deepest level). *)

val children : t -> level:int -> index:int -> (int * int * digest) list
(** [(child_index, lm, digest)] list for an interior partition — the
    contents of a META-DATA reply. [level] must be an interior level. *)

val child_range : t -> level:int -> index:int -> int * int
(** Child index range [(first, last)] of an interior node. *)

val snapshot : t -> string
(** Reassemble the full state string. *)

val digested_bytes : t -> int
(** Bytes actually re-hashed when this tree was built (for CPU-cost
    accounting: unchanged pages cost nothing). *)

val pages_modified_at : t -> seq:int -> int
(** Number of pages whose [lm] equals [seq] — the write set of the
    checkpoint taken at [seq] (metrics only; O(pages)). *)

val page_size : t -> int
val branching : t -> int

val rebuild_page : index:int -> lm:int -> data:string -> page
(** Recompute a page record (used by the fetching side of state transfer to
    verify received DATA messages against known digests). *)

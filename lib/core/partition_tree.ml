type digest = string
type page = { data : string; lm : int; digest : digest }

(* Interior nodes carry the AdHash accumulator (sum of child digests
   modulo 2^256) alongside the tagged digest derived from it, so an
   incremental update can subtract the old child digest and add the new
   one without touching the siblings. *)
type node = { n_lm : int; n_digest : digest; n_acc : Bft_crypto.Adhash.t }

type t = {
  seq : int;
  page_size : int;
  branching : int;
  pages : page array;
  interior : node array array; (* interior.(l) for levels 0 .. depth-2 *)
  digested_bytes : int;
}

let page_digest ~index ~lm ~data =
  let b = Buffer.create (String.length data + 24) in
  Buffer.add_string b "PAGE";
  Buffer.add_string b (string_of_int index);
  Buffer.add_char b ':';
  Buffer.add_string b (string_of_int lm);
  Buffer.add_char b ':';
  Buffer.add_string b data;
  Bft_crypto.Sha256.digest (Buffer.contents b)

let rebuild_page ~index ~lm ~data = { data; lm; digest = page_digest ~index ~lm ~data }

let split_pages page_size s =
  let len = String.length s in
  let n = max 1 ((len + page_size - 1) / page_size) in
  Array.init n (fun i ->
      let off = i * page_size in
      let l = min page_size (len - off) in
      if l <= 0 then "" else String.sub s off l)

let interior_digest_of_acc ~level ~index ~lm acc =
  let b = Buffer.create 64 in
  Buffer.add_string b "META";
  Buffer.add_string b (string_of_int level);
  Buffer.add_char b ':';
  Buffer.add_string b (string_of_int index);
  Buffer.add_char b ':';
  Buffer.add_string b (string_of_int lm);
  Buffer.add_char b ':';
  Buffer.add_string b (Bft_crypto.Adhash.to_string acc);
  Bft_crypto.Sha256.digest (Buffer.contents b)

let num_interior_levels ~branching ~num_pages =
  (* levels above the page level, at least 1 (the root) *)
  let rec go width acc = if width <= 1 then acc else go ((width + branching - 1) / branching) (acc + 1) in
  max 1 (go num_pages 0)

(* All interior levels from scratch, bottom-up; level depth-2 groups pages. *)
let build_interior ~branching pages =
  let n_int = num_interior_levels ~branching ~num_pages:(Array.length pages) in
  let interior = Array.make n_int [||] in
  let lower_lm_digest = ref (Array.map (fun p -> (p.lm, p.digest)) pages) in
  for l = n_int - 1 downto 0 do
    let lower = !lower_lm_digest in
    let width = (Array.length lower + branching - 1) / branching in
    let width = max 1 width in
    let nodes =
      Array.init width (fun i ->
          let first = i * branching in
          let last = min ((i + 1) * branching) (Array.length lower) - 1 in
          let lm = ref 0 and acc = ref Bft_crypto.Adhash.zero in
          for c = first to last do
            let clm, cd = lower.(c) in
            if clm > !lm then lm := clm;
            acc := Bft_crypto.Adhash.add !acc (Bft_crypto.Adhash.of_digest cd)
          done;
          { n_lm = !lm;
            n_digest = interior_digest_of_acc ~level:l ~index:i ~lm:!lm !acc;
            n_acc = !acc })
    in
    interior.(l) <- nodes;
    lower_lm_digest := Array.map (fun n -> (n.n_lm, n.n_digest)) nodes
  done;
  assert (Array.length interior.(0) = 1);
  interior

let check_page_shape ~who ~page_size chunks =
  let n = Array.length chunks in
  if n = 0 then invalid_arg (who ^ ": empty page array");
  for i = 0 to n - 2 do
    if String.length chunks.(i) <> page_size then invalid_arg (who ^ ": short interior page")
  done;
  let last = String.length chunks.(n - 1) in
  if last > page_size || (last = 0 && n > 1) then invalid_arg (who ^ ": bad last page")

let build_pages ?prev ~seq ~page_size ~branching chunks =
  if page_size <= 0 then invalid_arg "Partition_tree.build_pages: page_size";
  if branching < 2 then invalid_arg "Partition_tree.build_pages: branching";
  check_page_shape ~who:"Partition_tree.build_pages" ~page_size chunks;
  let digested = ref 0 in
  let reuse =
    match prev with
    | Some p when p.page_size = page_size && p.branching = branching -> Some p
    | _ -> None
  in
  let pages =
    Array.mapi
      (fun i data ->
        match reuse with
        | Some p when i < Array.length p.pages && String.equal p.pages.(i).data data ->
            p.pages.(i)
        | _ ->
            digested := !digested + String.length data;
            { data; lm = seq; digest = page_digest ~index:i ~lm:seq ~data })
      chunks
  in
  let interior = build_interior ~branching pages in
  { seq; page_size; branching; pages; interior; digested_bytes = !digested }

let build ?prev ~seq ~page_size ~branching snapshot =
  if page_size <= 0 then invalid_arg "Partition_tree.build: page_size";
  if branching < 2 then invalid_arg "Partition_tree.build: branching";
  build_pages ?prev ~seq ~page_size ~branching (split_pages page_size snapshot)

let of_pages ~seq ~page_size ~branching pages =
  if page_size <= 0 then invalid_arg "Partition_tree.of_pages: page_size";
  if branching < 2 then invalid_arg "Partition_tree.of_pages: branching";
  check_page_shape ~who:"Partition_tree.of_pages" ~page_size
    (Array.map (fun p -> p.data) pages);
  let total = Array.fold_left (fun a p -> a + String.length p.data) 0 pages in
  let interior = build_interior ~branching pages in
  { seq; page_size; branching; pages = Array.copy pages; interior; digested_bytes = total }

let update prev ~seq ~pages:chunks ~dirty =
  let page_size = prev.page_size and branching = prev.branching in
  let n = Array.length chunks in
  if n <> Array.length prev.pages || seq <= prev.seq then
    (* Geometry change (or a re-take at an old sequence number): fall back
       to the copy-on-write full build; page records still shared. *)
    build_pages ~prev ~seq ~page_size ~branching chunks
  else begin
    check_page_shape ~who:"Partition_tree.update" ~page_size chunks;
    let digested = ref 0 in
    let pages = Array.copy prev.pages in
    (* (child index, old digest, new digest, child lm) of page-level changes *)
    let changed = ref [] in
    List.iter
      (fun i ->
        if i < 0 || i >= n then invalid_arg "Partition_tree.update: dirty index";
        let old_p = prev.pages.(i) in
        if pages.(i) == old_p then begin
          (* not yet replaced by a duplicate dirty entry *)
          let data = chunks.(i) in
          if not (String.equal old_p.data data) then begin
            digested := !digested + String.length data;
            let p = { data; lm = seq; digest = page_digest ~index:i ~lm:seq ~data } in
            pages.(i) <- p;
            changed := (i, old_p.digest, p.digest, seq) :: !changed
          end
        end)
      dirty;
    if !changed = [] then { prev with seq; pages = prev.pages; digested_bytes = 0 }
    else begin
      let interior = Array.map Array.copy prev.interior in
      let n_int = Array.length interior in
      let level_changes = ref !changed in
      for l = n_int - 1 downto 0 do
        (* Fold this level's child deltas into their parents: each parent's
           accumulator gets (new - old) per changed child; untouched
           siblings are never revisited. *)
        let deltas = Hashtbl.create 8 in
        List.iter
          (fun (ci, od, nd, clm) ->
            let parent = ci / branching in
            let acc, lm =
              match Hashtbl.find_opt deltas parent with
              | Some x -> x
              | None -> (Bft_crypto.Adhash.zero, 0)
            in
            let acc =
              Bft_crypto.Adhash.add
                (Bft_crypto.Adhash.sub acc (Bft_crypto.Adhash.of_digest od))
                (Bft_crypto.Adhash.of_digest nd)
            in
            Hashtbl.replace deltas parent (acc, max lm clm))
          !level_changes;
        let next = ref [] in
        Hashtbl.iter
          (fun parent (delta, clm) ->
            let old_node = interior.(l).(parent) in
            let acc = Bft_crypto.Adhash.add old_node.n_acc delta in
            let lm = max old_node.n_lm clm in
            let node =
              { n_lm = lm;
                n_digest = interior_digest_of_acc ~level:l ~index:parent ~lm acc;
                n_acc = acc }
            in
            interior.(l).(parent) <- node;
            next := (parent, old_node.n_digest, node.n_digest, lm) :: !next)
          deltas;
        level_changes := !next
      done;
      { seq; page_size; branching; pages; interior; digested_bytes = !digested }
    end
  end

let seq t = t.seq
let root_digest t = t.interior.(0).(0).n_digest
let num_pages t = Array.length t.pages
let depth t = Array.length t.interior + 1

let page t i =
  if i < 0 || i >= Array.length t.pages then invalid_arg "Partition_tree.page";
  t.pages.(i)

let node_info t ~level ~index =
  let page_level = Array.length t.interior in
  if level = page_level then begin
    let p = page t index in
    (p.lm, p.digest)
  end
  else begin
    if level < 0 || level > page_level then invalid_arg "Partition_tree.node_info";
    let n = t.interior.(level).(index) in
    (n.n_lm, n.n_digest)
  end

let level_width t level =
  let page_level = Array.length t.interior in
  if level = page_level then Array.length t.pages
  else if level >= 0 && level < page_level then Array.length t.interior.(level)
  else invalid_arg "Partition_tree.level_width"

let child_range t ~level ~index =
  let page_level = Array.length t.interior in
  if level >= page_level then invalid_arg "Partition_tree.child_range: page level";
  let lower_width =
    if level + 1 = page_level then Array.length t.pages
    else Array.length t.interior.(level + 1)
  in
  let first = index * t.branching in
  let last = min ((index + 1) * t.branching) lower_width - 1 in
  (first, last)

let children t ~level ~index =
  let first, last = child_range t ~level ~index in
  let infos = ref [] in
  for c = last downto first do
    let lm, d = node_info t ~level:(level + 1) ~index:c in
    infos := (c, lm, d) :: !infos
  done;
  !infos

let snapshot t =
  let b = Buffer.create (Array.length t.pages * t.page_size) in
  Array.iter (fun p -> Buffer.add_string b p.data) t.pages;
  Buffer.contents b

let digested_bytes t = t.digested_bytes
let page_size t = t.page_size
let branching t = t.branching

let pages_modified_at t ~seq =
  let c = ref 0 in
  Array.iter (fun p -> if p.lm = seq then incr c) t.pages;
  !c

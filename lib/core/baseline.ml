module Engine = Bft_sim.Engine
module Network = Bft_net.Network
module Costs = Bft_net.Costs
open Message

let server_id = 0

type client = {
  c_id : int;
  mutable c_timestamp : int64;
  mutable c_pending : (result:string -> latency_us:float -> unit) option;
  mutable c_started : Engine.time;
  mutable c_completed : int;
}

type t = {
  engine : Engine.t;
  net : envelope Network.t;
  costs : Costs.t;
  service : Bft_sm.Service.t;
  chains : (int, Bft_crypto.Keychain.t) Hashtbl.t;
  clients : client array;
}

let engine t = t.engine
let client_completed t k = t.clients.(k).c_completed

(* encode-once, as in the replicated stack: the MAC is computed over the
   envelope's cached bytes and the receiver verifies the same string *)
let mac t ~src ~dst bytes =
  let chain = Hashtbl.find t.chains src in
  Network.charge t.net ~id:src t.costs.Costs.mac_us;
  match Bft_crypto.Auth.compute_mac chain ~peer:dst bytes with
  | Some m -> Auth_mac m
  | None -> Auth_none

let verify t ~me ~peer (env : envelope) =
  let chain = Hashtbl.find t.chains me in
  Network.charge t.net ~id:me t.costs.Costs.mac_us;
  match env.auth with
  | Auth_mac m -> Bft_crypto.Auth.verify_mac chain ~peer m (Wire.envelope_bytes env)
  | Auth_none | Auth_vector _ | Auth_sig _ -> false

let server_handle t (env : envelope) =
  match env.body with
  | Request r when verify t ~me:server_id ~peer:r.client env ->
      Network.charge t.net ~id:server_id
        (Costs.digest_us t.costs (Wire.size env.body)
        +. t.service.Bft_sm.Service.exec_cost_us r.op);
      let result =
        t.service.Bft_sm.Service.execute ~client:r.client ~op:r.op
          ~nondet:(Int64.to_string (Engine.now t.engine))
      in
      let reply =
        Reply
          {
            rp_view = 0;
            rp_timestamp = r.timestamp;
            rp_client = r.client;
            rp_replica = server_id;
            rp_tentative = false;
            rp_result = Full result;
          }
      in
      let enc = Message.no_cache () in
      let auth = mac t ~src:server_id ~dst:r.client (Wire.cached_encode enc reply) in
      let env' = { sender = server_id; body = reply; auth; enc } in
      Network.send t.net ~src:server_id ~dst:r.client ~size:(Wire.envelope_size env') env'
  | _ -> ()

let client_handle t (c : client) (env : envelope) =
  match env.body with
  | Reply rp
    when rp.rp_client = c.c_id
         && Int64.equal rp.rp_timestamp c.c_timestamp
         && verify t ~me:c.c_id ~peer:server_id env -> (
      match (c.c_pending, rp.rp_result) with
      | Some k, Full result ->
          c.c_pending <- None;
          c.c_completed <- c.c_completed + 1;
          k ~result ~latency_us:(Engine.to_us (Int64.sub (Engine.now t.engine) c.c_started))
      | _ -> ())
  | _ -> ()

let create ?(seed = 42L) ?(costs = Costs.default) ?service ?(num_clients = 1) () =
  let engine = Engine.create ~seed () in
  let rng = Engine.rng engine in
  let net = Network.create ~engine ~costs ~rng:(Bft_util.Rng.split rng) () in
  let service =
    match service with Some f -> f () | None -> Bft_sm.Null_service.create ()
  in
  let chains = Hashtbl.create 8 in
  Hashtbl.replace chains server_id (Bft_crypto.Keychain.create ~my_id:server_id);
  let clients =
    Array.init num_clients (fun k ->
        let id = 1 + k in
        let chain = Bft_crypto.Keychain.create ~my_id:id in
        Hashtbl.replace chains id chain;
        let server_chain = Hashtbl.find chains server_id in
        let k1 = Bft_crypto.Keychain.fresh_in_key server_chain rng ~peer:id in
        ignore (Bft_crypto.Keychain.install_out_key chain ~peer:server_id k1);
        let k2 = Bft_crypto.Keychain.fresh_in_key chain rng ~peer:server_id in
        ignore (Bft_crypto.Keychain.install_out_key server_chain ~peer:id k2);
        { c_id = id; c_timestamp = 0L; c_pending = None; c_started = 0L; c_completed = 0 })
  in
  let t = { engine; net; costs; service; chains; clients } in
  Network.add_node net ~id:server_id ~handler:(fun env -> server_handle t env);
  Array.iter
    (fun c -> Network.add_node net ~id:c.c_id ~handler:(fun env -> client_handle t c env))
    clients;
  t

let invoke t ~client:k op callback =
  let c = t.clients.(k) in
  if c.c_pending <> None then invalid_arg "Baseline.invoke: request outstanding";
  c.c_timestamp <- Int64.add c.c_timestamp 1L;
  c.c_pending <- Some callback;
  c.c_started <- Engine.now t.engine;
  let req =
    Request
      { op; timestamp = c.c_timestamp; client = c.c_id; read_only = false; replier = 0 }
  in
  Network.charge t.net ~id:c.c_id (Costs.digest_us t.costs (Wire.size req));
  let enc = Message.no_cache () in
  let auth = mac t ~src:c.c_id ~dst:server_id (Wire.cached_encode enc req) in
  let env = { sender = c.c_id; body = req; auth; enc } in
  Network.send t.net ~src:c.c_id ~dst:server_id ~size:(Wire.envelope_size env) env

let run_until ?(timeout_us = 10_000_000.0) t cond =
  let deadline = Int64.add (Engine.now t.engine) (Engine.of_us_float timeout_us) in
  ignore (Engine.run_while t.engine ~until:deadline (fun () -> not (cond ())));
  cond ()

let try_invoke_sync ?timeout_us t ~client op =
  let result = ref None in
  invoke t ~client op (fun ~result:r ~latency_us -> result := Some (r, latency_us));
  if run_until ?timeout_us t (fun () -> !result <> None) then Ok (Option.get !result)
  else Error "Baseline.invoke_sync: timeout"

let invoke_sync ?timeout_us t ~client op =
  match try_invoke_sync ?timeout_us t ~client op with
  | Ok r -> r
  | Error msg -> failwith msg

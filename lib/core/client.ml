module Engine = Bft_sim.Engine
module Network = Bft_net.Network
module Costs = Bft_net.Costs
module Obs = Bft_obs.Obs
open Message

type deps = {
  cfg : Config.t;
  net : Message.envelope Network.t;
  registry : Bft_crypto.Signature.registry;
  keychain : Bft_crypto.Keychain.t;
  signer : Bft_crypto.Signature.signer;
  rng : Bft_util.Rng.t;
}

(* Per-replica reply record: tentative flag, result digest, full result if
   it carried one. *)
type reply_info = { ri_tentative : bool; ri_digest : string; ri_full : string option }

type pending = {
  p_req : request;
  p_started : Engine.time;
  p_replies : (int, reply_info) Hashtbl.t;
  p_callback : result:string -> latency_us:float -> unit;
  mutable p_timer : Engine.handle option;
  mutable p_retries : int;
  mutable p_broadcast : bool; (* already retransmitted to all replicas *)
  mutable p_promoted : bool; (* read-only retried as a regular request *)
}

type t = {
  d : deps;
  id : int;
  obs : Obs.t;
  engine : Engine.t;
  costs : Costs.t;
  (* allocate-once wire buffer for this client's outgoing request encodes *)
  arena : Bft_net.Wire_arena.t;
  mutable view_guess : int;
  mutable last_timestamp : int64;
  mutable pending : pending option;
  mutable next_replier : int;
  mutable completed : int;
  mutable retransmissions : int;
  mutable byz_partial : bool;
  (* smoothed response time for adaptive retransmission (Section 5.2) *)
  mutable srtt_us : float;
  (* open-loop flooding (misbehaving-client attack profile) *)
  mutable flood_timer : Engine.handle option;
}

let id t = t.id
let busy t = t.pending <> None
let completed t = t.completed
let retransmissions t = t.retransmissions
let srtt_us t = t.srtt_us

let pending_retries t =
  match t.pending with Some p -> Some p.p_retries | None -> None
let byzantine_partial_auth t b = t.byz_partial <- b
let charge t us = Network.charge t.d.net ~id:t.id us
let replica_ids t = Config.replica_ids t.d.cfg
let primary t = Config.primary t.d.cfg ~view:t.view_guess

(* encode once: the request bytes under the token are the same string the
   envelope carries and every replica verifies *)
let request_token t enc req =
  let bytes = Wire.cached_encode ~arena:t.arena enc (Request req) in
  match t.d.cfg.Config.auth_mode with
  | Config.Sig_auth ->
      charge t t.costs.Costs.sig_gen_us;
      Auth_sig (Bft_crypto.Signature.sign t.d.signer bytes)
  | Config.Mac_auth ->
      charge t (Costs.auth_gen_us t.costs t.d.cfg.Config.n);
      let auth =
        Bft_crypto.Auth.compute_authenticator t.d.keychain ~receivers:(replica_ids t) bytes
      in
      let auth =
        if t.byz_partial then
          (* corrupt the MACs for odd-numbered replicas *)
          List.fold_left
            (fun a peer -> if peer mod 2 = 1 then Bft_crypto.Auth.corrupt_entry a peer else a)
            auth (replica_ids t)
        else auth
      in
      Auth_vector auth

let send_request t req ~to_all =
  let enc = Message.no_cache () in
  let token = request_token t enc req in
  let env = { sender = t.id; body = Request req; auth = token; enc } in
  let size = Wire.envelope_size env in
  if to_all then Network.multicast t.d.net ~src:t.id ~dsts:(replica_ids t) ~size env
  else Network.send t.d.net ~src:t.id ~dst:(primary t) ~size env

let rec arm_timer t p =
  (* adaptive timeout: a multiple of the smoothed measured response time,
     floored by the configured minimum, with exponential backoff capped at
     [client_retry_max_us] (an uncapped 2^retries overflows to infinity and
     the client stops retrying forever) *)
  let base = Float.max t.d.cfg.Config.client_retry_us (3.0 *. t.srtt_us) in
  let expo = 2.0 ** float_of_int (min p.p_retries 30) in
  let delay = Float.min (base *. expo) t.d.cfg.Config.client_retry_max_us in
  p.p_timer <-
    Some
      (Engine.schedule t.engine
         ~label:(Printf.sprintf "cretx%d" t.id)
         ~delay:(Engine.of_us_float delay) (fun () ->
           p.p_timer <- None;
           if (match t.pending with Some p' -> p' == p | None -> false) then begin
             t.retransmissions <- t.retransmissions + 1;
             p.p_retries <- p.p_retries + 1;
             p.p_broadcast <- true;
             (* a read-only request that keeps failing is retried as a
                regular request (Section 5.1.3); replies to the read-only
                version are void at that point, but on an ordinary
                retransmission matching replies already collected for this
                timestamp stay valid and are kept *)
             if p.p_req.read_only && (not p.p_promoted) && p.p_retries >= 2 then begin
               p.p_promoted <- true;
               Hashtbl.reset p.p_replies
             end;
             let req =
               if p.p_promoted then { p.p_req with read_only = false } else p.p_req
             in
             if Obs.enabled t.obs then
               Obs.client_retransmit t.obs ~now:(Engine.now t.engine)
                 ~timestamp:p.p_req.timestamp ~retries:p.p_retries ~delay_us:delay;
             send_request t req ~to_all:true;
             arm_timer t p
           end))

let try_complete t p =
  (* group matching replies by result digest *)
  let groups = Hashtbl.create 4 in
  Hashtbl.iter
    (fun replica ri ->
      let total, nontent, full =
        match Hashtbl.find_opt groups ri.ri_digest with
        | Some (a, b, f) -> (a, b, f)
        | None -> (0, 0, None)
      in
      ignore replica;
      let full = match (full, ri.ri_full) with Some f, _ -> Some f | None, f -> f in
      Hashtbl.replace groups ri.ri_digest
        (total + 1, (if ri.ri_tentative then nontent else nontent + 1), full))
    p.p_replies;
  let cfg = t.d.cfg in
  let needed_weak = Config.weak cfg and needed_quorum = Config.quorum cfg in
  let winner = ref None in
  Hashtbl.iter
    (fun _d (total, nontent, full) ->
      match full with
      | Some result ->
          let ok =
            if p.p_req.read_only && not p.p_promoted then total >= needed_quorum
            else nontent >= needed_weak || total >= needed_quorum
          in
          if ok then winner := Some result
      | None -> ())
    groups;
  match !winner with
  | Some result ->
      (match p.p_timer with Some h -> Engine.cancel h | None -> ());
      t.pending <- None;
      t.completed <- t.completed + 1;
      let latency = Engine.to_us (Int64.sub (Engine.now t.engine) p.p_started) in
      (* clamp each sample to [srtt/4, 4*srtt]: one outlier reply (the
         first after a view change, or a locally-served read) must not
         collapse or blow up the smoothed RTT — a collapsed SRTT makes the
         adaptive timeout fire before genuine replies can arrive and the
         client thrashes with broadcast retransmissions *)
      let sample =
        if t.srtt_us > 0.0 then
          Float.min (4.0 *. t.srtt_us) (Float.max (0.25 *. t.srtt_us) latency)
        else latency
      in
      t.srtt_us <-
        (if t.srtt_us = 0.0 then sample else (0.8 *. t.srtt_us) +. (0.2 *. sample));
      if Obs.enabled t.obs then
        Obs.client_complete t.obs ~now:(Engine.now t.engine)
          ~timestamp:p.p_req.timestamp ~latency_us:latency;
      p.p_callback ~result ~latency_us:latency
  | None -> ()

(* A verified reply from a later view means a new primary is in charge:
   besides bumping the view guess, reset the in-flight retry exponent —
   the backoff measured the old primary, and carrying it into the new view
   leaves the client stuck at a near-maximal timeout against a primary it
   has never observed. *)
let note_view t view =
  if view > t.view_guess then begin
    t.view_guess <- view;
    match t.pending with Some p -> p.p_retries <- 0 | None -> ()
  end

let handle t (env : envelope) =
  match env.body with
  | New_key nk -> (
      (* a recovering replica re-keys us; verify its signature and install
         the fresh key for sending to it (Section 4.3.2) *)
      match env.auth with
      | Auth_sig s
        when s.Bft_crypto.Signature.signer_id = nk.nk_replica
             && (charge t t.costs.Costs.sig_verify_us;
                 Bft_crypto.Signature.verify t.d.registry s (Wire.envelope_bytes env)) -> (
          match List.assoc_opt t.id nk.nk_keys with
          | Some key ->
              ignore (Bft_crypto.Keychain.install_out_key t.d.keychain ~peer:nk.nk_replica key)
          | None -> ())
      | _ -> ())
  | Reply rp when rp.rp_client = t.id -> (
      match t.pending with
      | Some p when Int64.equal rp.rp_timestamp p.p_req.timestamp ->
          let verified =
            match (t.d.cfg.Config.auth_mode, env.auth) with
            | _, Auth_sig s ->
                charge t t.costs.Costs.sig_verify_us;
                s.Bft_crypto.Signature.signer_id = rp.rp_replica
                && Bft_crypto.Signature.verify t.d.registry s (Wire.envelope_bytes env)
            | _, Auth_mac m ->
                (* one-item pool batch: executed inline, verdict and charge
                   identical to the sequential [verify_mac] *)
                charge t t.costs.Costs.mac_us;
                if Obs.enabled t.obs then Obs.vpool_submit t.obs ~items:1;
                (Bft_crypto.Auth.verify_batch t.d.keychain
                   [|
                     Bft_crypto.Auth.Item_mac
                       { peer = rp.rp_replica; mac = m; msg = Wire.envelope_bytes env };
                   |]).(0)
            | _, (Auth_none | Auth_vector _) -> false
          in
          if verified then begin
            note_view t rp.rp_view;
            let info =
              match rp.rp_result with
              | Full s ->
                  charge t (Costs.digest_us t.costs (String.length s));
                  { ri_tentative = rp.rp_tentative; ri_digest = Wire.result_digest s; ri_full = Some s }
              | Result_digest d ->
                  { ri_tentative = rp.rp_tentative; ri_digest = d; ri_full = None }
            in
            Hashtbl.replace p.p_replies rp.rp_replica info;
            try_complete t p
          end
      | _ -> ())
  | _ -> ()

let create ?(obs = Obs.null) d ~id =
  let t =
    {
      d;
      id;
      obs;
      engine = Network.engine d.net;
      costs = Network.costs d.net;
      arena = Bft_net.Wire_arena.create ~size:256 ();
      view_guess = 0;
      last_timestamp = 0L;
      pending = None;
      next_replier = id mod d.cfg.Config.n;
      completed = 0;
      retransmissions = 0;
      byz_partial = false;
      srtt_us = 0.0;
      flood_timer = None;
    }
  in
  Network.add_node d.net ~id ~handler:(fun env -> handle t env);
  t

(* Open-loop flooding (the client_flood attack profile): send a fresh
   authenticated request to every replica each interval, never waiting for
   replies. The requests are well-formed and verify, so replicas cannot
   reject them cheaply — admission control must bound them. Ops carry the
   client id and a strictly increasing timestamp, so they are unique and
   keep the at-most-once / linearizability oracles valid. *)
let rec flood_tick t interval_us =
  t.flood_timer <-
    Some
      (Engine.schedule t.engine
         ~label:(Printf.sprintf "flood%d" t.id)
         ~delay:(Engine.of_us_float interval_us)
         (fun () ->
           match t.flood_timer with
           | None -> ()
           | Some _ ->
               t.last_timestamp <- Int64.add t.last_timestamp 1L;
               let req =
                 {
                   op = Printf.sprintf "flood c%d.%Ld" t.id t.last_timestamp;
                   timestamp = t.last_timestamp;
                   client = t.id;
                   read_only = false;
                   replier = t.id mod t.d.cfg.Config.n;
                 }
               in
               send_request t req ~to_all:true;
               flood_tick t interval_us))

let flood t ~interval_us =
  if interval_us <= 0.0 then invalid_arg "Client.flood: interval must be positive";
  match t.flood_timer with Some _ -> () | None -> flood_tick t interval_us

let flood_stop t =
  match t.flood_timer with
  | Some h ->
      Engine.cancel h;
      t.flood_timer <- None
  | None -> ()

let invoke t ?(read_only = false) ~op callback =
  if t.pending <> None then invalid_arg "Client.invoke: request already outstanding";
  t.last_timestamp <- Int64.add t.last_timestamp 1L;
  let replier = t.next_replier in
  t.next_replier <- (t.next_replier + 1) mod t.d.cfg.Config.n;
  let req =
    {
      op;
      timestamp = t.last_timestamp;
      client = t.id;
      read_only = read_only && t.d.cfg.Config.read_only_opt;
      replier;
    }
  in
  let p =
    {
      p_req = req;
      p_started = Engine.now t.engine;
      p_replies = Hashtbl.create 8;
      p_callback = callback;
      p_timer = None;
      p_retries = 0;
      p_broadcast = false;
      p_promoted = false;
    }
  in
  t.pending <- Some p;
  (* large requests and read-only requests go to all replicas directly
     (Sections 5.1.5 and 5.1.3) *)
  let to_all =
    req.read_only || String.length op > t.d.cfg.Config.separate_tx_threshold
  in
  send_request t req ~to_all;
  arm_timer t p

(* Canonical, time-abstract fingerprint for the exhaustive explorer: the
   request in flight, replies collected so far (sorted by replica), and the
   completion count. Clock-derived values (start time, smoothed RTT) and
   retry counters that only stretch future timeouts are excluded — the
   explorer abstracts timer durations away. *)
let state_digest t =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "c%d vg=%d ts=%Ld done=%d nr=%d|" t.id t.view_guess t.last_timestamp t.completed
    t.next_replier;
  (match t.pending with
  | None -> add "idle"
  | Some p ->
      add "req=%s ts=%Ld ro=%b repl=%d bcast=%b promo=%b timer=%b(" p.p_req.op
        p.p_req.timestamp p.p_req.read_only p.p_req.replier p.p_broadcast p.p_promoted
        (match p.p_timer with Some h -> Engine.is_pending h | None -> false);
      let replicas =
        List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) p.p_replies [])
      in
      List.iter
        (fun r ->
          match Hashtbl.find_opt p.p_replies r with
          | Some ri ->
              add "%d:%b:%s:%b;" r ri.ri_tentative (Bft_util.Hex.encode ri.ri_digest)
                (ri.ri_full <> None)
          | None -> ())
        replicas;
      add ")");
  Bft_crypto.Sha256.hexdigest (Buffer.contents b)

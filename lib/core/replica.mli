(** The BFT replica automaton.

    Implements the three algorithms of the paper over the simulated
    network:
    - normal-case three-phase atomic multicast (pre-prepare / prepare /
      commit) with request batching, tentative execution, read-only
      handling, digest replies and separate request transmission
      (Sections 2.3.3, 3.2.2, 5.1);
    - garbage collection through checkpoint certificates (2.3.4 / 3.2.3)
      with hierarchical partition-tree state digests (5.3);
    - the MAC-based view-change protocol with PSet/QSet reconstruction and
      view-change-acks (3.2.4), also used in signature mode where it is
      strictly stronger than the Chapter-2 protocol;
    - status-message retransmission (5.2);
    - hierarchical state transfer (5.3.2);
    - proactive recovery: watchdog reboots, key refresh, the estimation
      protocol, recovery requests and state checking (Chapter 4).

    All messages are authenticated per [cfg.auth_mode]; crypto and
    execution costs are charged to the replica's virtual CPU. *)

type t

type deps = {
  cfg : Config.t;
  net : Message.envelope Bft_net.Network.t;
  registry : Bft_crypto.Signature.registry;
  keychain : Bft_crypto.Keychain.t;
  signer : Bft_crypto.Signature.signer;
  service : Bft_sm.Service.t;
  rng : Bft_util.Rng.t;
  page_size : int;
  branching : int;
}

val create : ?obs:Bft_obs.Obs.t -> deps -> id:int -> t
(** Create the replica and register its handler with the network. Timers
    (status, key refresh, watchdog) start on {!start}. [obs] defaults to
    the disabled sink (zero-cost tracing). *)

val start : t -> unit

val id : t -> int
val view : t -> int

val keychain : t -> Bft_crypto.Keychain.t
(** The replica's session-key chain — the workload harness installs a
    {!Bft_crypto.Keychain.group} on it to stand in for the pairwise keys
    of cohort-simulated clients. *)

val is_active : t -> bool
(** Normal-case operation in the current view (not mid view-change). *)

val last_executed : t -> int
val committed_upto : t -> int
val stable_checkpoint : t -> int

val low_water_mark : t -> int
(** The log's low water mark h (Section 2.3.4). Monotonically
    non-decreasing at a correct replica — a fuzzer safety invariant. *)

val checkpoints_held : t -> (int * string) list
(** [(seq, digest)] of every retained checkpoint, ascending. Correct
    replicas must agree on the digest of any checkpoint sequence number
    they have both stabilized — the checkpoint-agreement oracle. *)

val is_recovering : t -> bool

val service_state : t -> string
(** Current service snapshot (test observation helper). *)

val full_snapshot : t -> string
(** The flat checkpoint image: service snapshot plus reply cache
    (Section 2.4.4). Paged checkpoints use a page-aligned layout of the
    same content; {!restore_snapshot} accepts both. *)

val restore_snapshot : t -> string -> (unit, string) result
(** Install a checkpoint image (service state + reply cache). All header
    and reply-cache records are validated before anything is mutated: a
    malformed snapshot returns [Error reason], counts as a rejected
    snapshot in the metrics, and leaves the replica state untouched. *)

val executed_ops : t -> (int * int * string * string) list
(** History of executed operations as [(seq, client, op, result)], oldest
    first — the observable commit order used by linearizability checks.
    Re-executions after a rollback are recorded again; consumers compare
    committed prefixes. *)

val executed_batches : t -> (int * (int * string * string) list) list
(** Per-batch execution journal, oldest first: one
    [(seq, [(client, op, result); ...])] record for every batch execution,
    including null batches (empty list). A view-change rollback re-executes
    from the restored checkpoint, appending fresh records, so the {e last}
    record for a sequence number is the content that stands — the
    rollback-proof basis for the whole-system safety checks. *)

(** {2 Fault injection (testing / benchmarks)} *)

val byzantine_equivocate : t -> bool -> unit
(** When enabled and this replica is primary, it assigns the same sequence
    number to different batches for different backups (the classic unsafe
    primary), and stops processing backup messages for ordering progress.
    Correct replicas must view-change it away without committing
    conflicting requests. *)

val mute : t -> bool -> unit
(** Stop sending any message (fail-silent primary / backup). *)

val byzantine_wrong_mac : t -> bool -> unit
(** Keep participating in the protocol, but corrupt the MACs and
    authenticator entries sent to odd-id peers and understate protocol
    state in status messages, so correct replicas keep retransmitting
    their window (the mac_storm attack; bounded by
    [Config.retransmit_budget]). *)

val corrupt_state : t -> unit
(** Overwrite part of the service state, simulating the attacker of
    Section 4.1; proactive recovery must detect and repair it. *)

val force_recovery : t -> unit
(** Trigger the watchdog immediately. *)

val crash_reboot : t -> unit
(** Lose all volatile state and rejoin via state transfer. *)

(** {2 Introspection counters} *)

type counters = {
  mutable n_executed : int;
  mutable n_batches : int;
  mutable n_view_changes : int;
  mutable n_checkpoints : int;
  mutable n_state_transfers : int;
  mutable n_recoveries : int;
  mutable bytes_fetched : int;
  mutable n_admission_dropped : int;
      (** requests dropped by per-client admission control *)
  mutable n_retransmit_suppressed : int;
      (** retransmissions withheld by the per-peer budget *)
  mutable n_slowness_vc : int;
      (** view changes demanded by the primary performance watchdog *)
}

val counters : t -> counters

val debug_dump : t -> string
(** One-line internal state rendering for debugging and tests. *)

val state_digest : t -> string
(** Canonical, time-abstract fingerprint of the replica's protocol state
    (log, certificates, view-change state, queues, journal, service
    snapshot, reply cache) for the exhaustive explorer. Every unordered
    container is serialized in sorted order, so two logically identical
    states reached through different message interleavings hash equal; no
    clock- or deadline-derived value is included. *)

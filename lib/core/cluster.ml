module Engine = Bft_sim.Engine
module Network = Bft_net.Network
module Costs = Bft_net.Costs
module Obs = Bft_obs.Obs

type t = {
  engine : Engine.t;
  net : Message.envelope Network.t;
  cfg : Config.t;
  replicas : Replica.t array;
  clients : Client.t array;
  correct : int list ref;
  obs : Obs.registry option;
}

let engine t = t.engine
let network t = t.net
let config t = t.cfg
let replica t i = t.replicas.(i)
let replicas t = t.replicas
let client t k = t.clients.(k)
let num_clients t = Array.length t.clients
let correct_replicas t = t.correct
let observations t = t.obs

(* Establish directional session keys between two principals, both ways,
   bypassing new-key messages (the initial key exchange of Section 4.3.1). *)
let establish_keys rng a_chain b_chain =
  let a = Bft_crypto.Keychain.my_id a_chain and b = Bft_crypto.Keychain.my_id b_chain in
  let k_ab = Bft_crypto.Keychain.fresh_in_key b_chain rng ~peer:a in
  ignore (Bft_crypto.Keychain.install_out_key a_chain ~peer:b k_ab);
  let k_ba = Bft_crypto.Keychain.fresh_in_key a_chain rng ~peer:b in
  ignore (Bft_crypto.Keychain.install_out_key b_chain ~peer:a k_ba)

let create ?(seed = 42L) ?(costs = Costs.default) ?service ?(page_size = 4096)
    ?(branching = 16) ?(num_clients = 1) ?obs cfg =
  let engine = Engine.create ~seed () in
  let rng = Engine.rng engine in
  let net = Network.create ~engine ~costs ~rng:(Bft_util.Rng.split rng) () in
  let registry = Bft_crypto.Signature.create_registry () in
  let service =
    match service with Some f -> f | None -> fun () -> Bft_sm.Null_service.create ()
  in
  let n = cfg.Config.n in
  let replica_chains = Array.init n (fun i -> Bft_crypto.Keychain.create ~my_id:i) in
  let client_chains =
    Array.init num_clients (fun k -> Bft_crypto.Keychain.create ~my_id:(n + k))
  in
  (* full pairwise key establishment: replica-replica and client-replica *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      establish_keys rng replica_chains.(i) replica_chains.(j)
    done
  done;
  Array.iter
    (fun cchain -> Array.iter (fun rchain -> establish_keys rng cchain rchain) replica_chains)
    client_chains;
  let replicas =
    Array.init n (fun i ->
        let deps =
          {
            Replica.cfg;
            net;
            registry;
            keychain = replica_chains.(i);
            signer = Bft_crypto.Signature.register registry rng i;
            service = service ();
            rng = Bft_util.Rng.split rng;
            page_size;
            branching;
          }
        in
        let node_obs = Option.map (fun reg -> Obs.for_node reg i) obs in
        Replica.create ?obs:node_obs deps ~id:i)
  in
  let clients =
    Array.init num_clients (fun k ->
        let deps =
          {
            Client.cfg;
            net;
            registry;
            keychain = client_chains.(k);
            signer = Bft_crypto.Signature.register registry rng (n + k);
            rng = Bft_util.Rng.split rng;
          }
        in
        let node_obs = Option.map (fun reg -> Obs.for_node reg (n + k)) obs in
        Client.create ?obs:node_obs deps ~id:(n + k))
  in
  Array.iter Replica.start replicas;
  { engine; net; cfg; replicas; clients; correct = ref (List.init n Fun.id); obs }

let run ?(timeout_us = 10_000_000.0) t =
  Engine.run ~until:(Engine.of_us_float timeout_us) t.engine

let run_until ?(timeout_us = 10_000_000.0) t cond =
  let deadline = Int64.add (Engine.now t.engine) (Engine.of_us_float timeout_us) in
  let exhausted = Engine.run_while t.engine ~until:deadline (fun () -> not (cond ())) in
  ignore exhausted;
  cond ()

let try_invoke_sync ?(timeout_us = 10_000_000.0) t ~client:k ?(read_only = false) op =
  let c = t.clients.(k) in
  let result = ref None in
  Client.invoke c ~read_only ~op (fun ~result:r ~latency_us -> result := Some (r, latency_us));
  if run_until ~timeout_us t (fun () -> !result <> None) then Ok (Option.get !result)
  else begin
    (match t.obs with
    | Some reg ->
        let o = Obs.for_node reg (Client.id c) in
        Obs.invoke_timeout o ~now:(Engine.now t.engine) ~op
    | None -> ());
    Error (Printf.sprintf "invoke_sync: timeout for op %S" op)
  end

let invoke_sync_latency ?timeout_us t ~client ?read_only op =
  match try_invoke_sync ?timeout_us t ~client ?read_only op with
  | Ok r -> r
  | Error msg -> failwith msg

let invoke_sync ?timeout_us t ~client ?read_only op =
  fst (invoke_sync_latency ?timeout_us t ~client ?read_only op)

(* Final execution per sequence number within the committed prefix: the
   batch journal records every execution wave (including null batches), and
   a view-change rollback re-executes from the restored checkpoint, so the
   last record per sequence number is the content that stands. *)
let committed_content r =
  let upto = Replica.committed_upto r in
  let tbl : (int, (int * string * string) list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (seq, recs) -> if seq <= upto then Hashtbl.replace tbl seq recs)
    (Replica.executed_batches r);
  tbl

let committed_histories_consistent t =
  let histories = List.map (fun i -> (i, committed_content t.replicas.(i))) !(t.correct) in
  let ops recs = List.map (fun (cl, op, _res) -> (cl, op)) recs in
  let ok = ref true in
  List.iter
    (fun (i, h1) ->
      List.iter
        (fun (j, h2) ->
          if i < j then
            Hashtbl.iter
              (fun seq recs1 ->
                match Hashtbl.find_opt h2 seq with
                | Some recs2 -> if ops recs1 <> ops recs2 then ok := false
                | None -> ())
              h1)
        histories)
    histories;
  !ok

(* Canonical fingerprint of the committed histories of every correct
   replica: the surviving execution record per sequence number within each
   committed prefix, in replica then sequence order. Pinned fuzz seeds must
   reproduce this digest across changes that do not touch protocol
   semantics (the encode-once / heap-engine work is validated this way). *)
let committed_history_digest t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun i ->
      let tbl = committed_content t.replicas.(i) in
      let seqs = Hashtbl.fold (fun s _ acc -> s :: acc) tbl [] |> List.sort compare in
      Buffer.add_string buf (Printf.sprintf "replica %d\n" i);
      List.iter
        (fun seq ->
          List.iter
            (fun (client, op, res) ->
              Buffer.add_string buf (Printf.sprintf "%d|%d|%S|%S\n" seq client op res))
            (Hashtbl.find tbl seq))
        seqs)
    (List.sort compare !(t.correct));
  Bft_crypto.Sha256.hexdigest (Buffer.contents buf)

let check_linearizable ?(replica = 0) t ~service =
  let by_seq = committed_content t.replicas.(replica) in
  let svc = service () in
  let seqs = Hashtbl.fold (fun s _ acc -> s :: acc) by_seq [] |> List.sort compare in
  let rec replay = function
    | [] -> Ok ()
    | seq :: rest ->
        let rec run = function
          | [] -> replay rest
          | (client, op, recorded) :: more ->
              let replayed = svc.Bft_sm.Service.execute ~client ~op ~nondet:"" in
              if String.equal replayed recorded then run more
              else
                Error
                  (Printf.sprintf
                     "seq %d client %d op %S: recorded %S but sequential replay gives %S"
                     seq client op recorded replayed)
        in
        run (Hashtbl.find by_seq seq)
  in
  replay seqs

type t = {
  cfg : Config.t;
  page_size : int;
  branching : int;
  mutable trees : Partition_tree.t list; (* ascending seq *)
  mutable stable : int;
  (* seq -> (replica -> digest) votes from CHECKPOINT messages *)
  votes : (int, (int, string) Hashtbl.t) Hashtbl.t;
}

let create cfg ~page_size ~branching =
  { cfg; page_size; branching; trees = []; stable = 0; votes = Hashtbl.create 16 }

let tree_at t seq = List.find_opt (fun tr -> Partition_tree.seq tr = seq) t.trees

let latest t =
  match List.rev t.trees with [] -> None | tr :: _ -> Some tr

let insert_tree t tr =
  let seq = Partition_tree.seq tr in
  let others = List.filter (fun x -> Partition_tree.seq x <> seq) t.trees in
  t.trees <- List.sort (fun a b -> compare (Partition_tree.seq a) (Partition_tree.seq b)) (tr :: others)

let take t ~seq ~snapshot =
  let prev = latest t in
  let tr = Partition_tree.build ?prev ~seq ~page_size:t.page_size ~branching:t.branching snapshot in
  insert_tree t tr;
  tr

let take_pages t ~seq ~pages ~dirty =
  let tr =
    match latest t with
    | Some prev
      when Partition_tree.page_size prev = t.page_size
           && Partition_tree.branching prev = t.branching
           && Partition_tree.seq prev < seq ->
        Partition_tree.update prev ~seq ~pages ~dirty
    | prev -> Partition_tree.build_pages ?prev ~seq ~page_size:t.page_size ~branching:t.branching pages
  in
  insert_tree t tr;
  tr

let install t tr = insert_tree t tr
let stable_seq t = t.stable
let stable_tree t = tree_at t t.stable

let held t =
  List.map (fun tr -> (Partition_tree.seq tr, Partition_tree.root_digest tr)) t.trees

let votes_for t seq =
  match Hashtbl.find_opt t.votes seq with
  | Some h -> h
  | None ->
      let h = Hashtbl.create 8 in
      Hashtbl.replace t.votes seq h;
      h

let add_message t (c : Message.checkpoint) =
  if c.ck_seq > t.stable then
    Hashtbl.replace (votes_for t c.ck_seq) c.ck_replica c.ck_digest

let proof_count t ~seq ~digest =
  match Hashtbl.find_opt t.votes seq with
  | None -> 0
  | Some h ->
      Hashtbl.fold (fun _ d acc -> if String.equal d digest then acc + 1 else acc) h 0

let threshold t =
  match t.cfg.Config.auth_mode with
  | Config.Mac_auth -> Config.quorum t.cfg
  | Config.Sig_auth -> Config.weak t.cfg

let try_stabilize t =
  let candidates =
    List.filter
      (fun tr ->
        let seq = Partition_tree.seq tr in
        seq > t.stable
        && proof_count t ~seq ~digest:(Partition_tree.root_digest tr) >= threshold t)
      t.trees
  in
  match List.rev candidates with
  | [] -> None
  | tr :: _ ->
      let seq = Partition_tree.seq tr in
      t.stable <- seq;
      t.trees <- List.filter (fun x -> Partition_tree.seq x >= seq) t.trees;
      Hashtbl.iter
        (fun s _ -> if s <= seq then Hashtbl.remove t.votes s)
        (Hashtbl.copy t.votes);
      Some (seq, tr)

let certified_digest t ~threshold =
  (* Scan votes in sorted order so the certified target is a pure function
     of the vote multiset: hash-iteration order must never pick the state
     transfer target (equivocating replicas can certify two digests at one
     seq; the lexicographically smallest wins the tie deterministically). *)
  let best = ref None in
  let seqs = List.sort Int.compare (Hashtbl.fold (fun s _ acc -> s :: acc) t.votes []) in
  List.iter
    (fun seq ->
      let votes = Hashtbl.find t.votes seq in
      let ds = List.sort String.compare (Hashtbl.fold (fun _ d acc -> d :: acc) votes []) in
      (* [ds] sorted: count each run of equal digests *)
      let rec scan = function
        | [] -> ()
        | d :: _ as l ->
            let rest = List.filter (fun x -> not (String.equal x d)) l in
            if List.length l - List.length rest >= threshold then
              best := Some (seq, d)
            else scan rest
      in
      scan ds)
    seqs;
  !best

let drop_above t bound =
  t.trees <- List.filter (fun tr -> Partition_tree.seq tr <= bound) t.trees

let votes_canonical t =
  Hashtbl.fold
    (fun seq h acc ->
      let vs =
        List.sort
          (fun (a, _) (b, _) -> Int.compare a b)
          (Hashtbl.fold (fun r d a -> (r, d) :: a) h [])
      in
      (seq, vs) :: acc)
    t.votes []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

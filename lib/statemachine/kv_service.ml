let admin_client = 0

type state = {
  table : (string, string) Hashtbl.t;
  mutable acl : int list option; (* None = open access *)
}

let encode_snapshot st =
  let b = Buffer.create 256 in
  (match st.acl with
  | None -> Buffer.add_string b "open\n"
  | Some l ->
      Buffer.add_string b
        ("acl " ^ String.concat "," (List.map string_of_int (List.sort compare l)) ^ "\n"));
  let bindings =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.table [] |> List.sort compare
  in
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%d %d %s%s\n" (String.length k) (String.length v) k v))
    bindings;
  Buffer.contents b

let decode_snapshot st s =
  Hashtbl.reset st.table;
  let lines = String.split_on_char '\n' s in
  (match lines with
  | first :: _ when String.equal first "open" -> st.acl <- None
  | first :: _ when String.length first > 4 && String.equal (String.sub first 0 4) "acl " ->
      let ids = String.sub first 4 (String.length first - 4) in
      st.acl <-
        Some
          (if String.equal ids "" then []
           else List.map int_of_string (String.split_on_char ',' ids))
  | _ -> st.acl <- None);
  List.iteri
    (fun i line ->
      if i > 0 && not (String.equal line "") then
        match String.index_opt line ' ' with
        | None -> ()
        | Some sp1 -> (
            let klen = int_of_string (String.sub line 0 sp1) in
            match String.index_from_opt line (sp1 + 1) ' ' with
            | None -> ()
            | Some sp2 ->
                let vlen = int_of_string (String.sub line (sp1 + 1) (sp2 - sp1 - 1)) in
                let k = String.sub line (sp2 + 1) klen in
                let v = String.sub line (sp2 + 1 + klen) vlen in
                Hashtbl.replace st.table k v))
    lines

let mutating op =
  match String.split_on_char ' ' op with
  | verb :: _ -> not (String.equal verb "get" || String.equal verb "size")
  | [] -> true

(* Paged-arena record layout: one record per binding under key "B"<k>,
   plus the ACL under "A" ("open", "acl", or "acl 1,2,..."). *)

let acl_payload = function
  | None -> "open"
  | Some [] -> "acl"
  | Some l -> "acl " ^ String.concat "," (List.map string_of_int (List.sort compare l))

let acl_of_payload s =
  if String.equal s "open" then Some None
  else if String.equal s "acl" then Some (Some [])
  else if String.length s > 4 && String.equal (String.sub s 0 4) "acl " then
    let parts = String.split_on_char ',' (String.sub s 4 (String.length s - 4)) in
    let ids = List.filter_map int_of_string_opt parts in
    if List.length ids = List.length parts then Some (Some ids) else None
  else None

let create ?restrict ?paged () =
  let st = { table = Hashtbl.create 64; acl = restrict } in
  let arena = Option.map (fun page_size -> Paged_image.create ~page_size ()) paged in
  let sync_acl () =
    Option.iter (fun a -> Paged_image.set a ~key:"A" ~value:(acl_payload st.acl)) arena
  in
  let sync_put k v = Option.iter (fun a -> Paged_image.set a ~key:("B" ^ k) ~value:v) arena in
  let sync_del k = Option.iter (fun a -> ignore (Paged_image.remove a ~key:("B" ^ k))) arena in
  sync_acl ();
  let has_access ~client op =
    if client = admin_client then true
    else if not (mutating op) then true
    else match st.acl with None -> true | Some allowed -> List.mem client allowed
  in
  let execute ~client ~op ~nondet =
    if not (has_access ~client op) then Service.denied
    else
      match String.split_on_char ' ' op with
      | [ "put"; k; v ] ->
          Hashtbl.replace st.table k v;
          sync_put k v;
          "ok"
      | [ "get"; k ] -> (
          match Hashtbl.find_opt st.table k with Some v -> v | None -> "ENOENT")
      | [ "del"; k ] ->
          if Hashtbl.mem st.table k then begin
            Hashtbl.remove st.table k;
            sync_del k;
            "ok"
          end
          else "ENOENT"
      | [ "cas"; k; old_v; new_v ] -> (
          match Hashtbl.find_opt st.table k with
          | None -> "ENOENT"
          | Some v when String.equal v old_v ->
              Hashtbl.replace st.table k new_v;
              sync_put k new_v;
              "ok"
          | Some _ -> "EAGAIN")
      | [ "touch"; k ] ->
          Hashtbl.replace st.table k nondet;
          sync_put k nondet;
          nondet
      | [ "grant"; c ] -> (
          if client <> admin_client then Service.denied
          else
            match int_of_string_opt c with
            | None -> Service.invalid
            | Some c ->
                (match st.acl with
                | None -> st.acl <- Some [ c ]
                | Some l -> if not (List.mem c l) then st.acl <- Some (c :: l));
                sync_acl ();
                "ok")
      | [ "revoke"; c ] -> (
          if client <> admin_client then Service.denied
          else
            match int_of_string_opt c with
            | None -> Service.invalid
            | Some c ->
                (match st.acl with
                | None -> st.acl <- Some []
                | Some l -> st.acl <- Some (List.filter (fun x -> x <> c) l));
                sync_acl ();
                "ok")
      | [ "size" ] -> string_of_int (Hashtbl.length st.table)
      | _ -> Service.invalid
  in
  (* Arena-image restore: validate every record before committing, so a
     malformed snapshot leaves both the arena and the table untouched. *)
  let restore_paged a s =
    match Paged_image.decode ~page_size:(Paged_image.page_size a) s with
    | Error _ -> ()
    | Ok records ->
        let valid =
          List.for_all
            (fun (k, v) ->
              if String.equal k "A" then acl_of_payload v <> None
              else String.length k > 1 && k.[0] = 'B')
            records
          && List.exists (fun (k, _) -> String.equal k "A") records
        in
        if valid then
          match Paged_image.restore a s with
          | Error _ -> ()
          | Ok records ->
              Hashtbl.reset st.table;
              List.iter
                (fun (k, v) ->
                  if String.equal k "A" then
                    st.acl <- Option.get (acl_of_payload v)
                  else Hashtbl.replace st.table (String.sub k 1 (String.length k - 1)) v)
                records
  in
  {
    Service.name = "kv";
    execute;
    is_read_only = (fun op -> not (mutating op));
    has_access;
    exec_cost_us = (fun op -> 1.0 +. (0.001 *. float_of_int (String.length op)));
    snapshot =
      (match arena with
      | None -> fun () -> encode_snapshot st
      | Some a -> fun () -> Paged_image.image a);
    restore =
      (match arena with
      | None -> fun s -> decode_snapshot st s
      | Some a -> fun s -> restore_paged a s);
    paged = Option.map Service.paged_of_image arena;
  }

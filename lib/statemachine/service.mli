(** Deterministic state-machine service instances (paper Definition 2.4.1
    and the library interface of Section 6.2).

    A service executes opaque operation byte strings. The transition
    function must be total and deterministic: the result and new state are
    completely determined by the current state, the operation bytes, the
    client identity, and the non-deterministic choice string agreed through
    the protocol (Section 5.4). Invalid operations must return an error
    result rather than raise.

    [snapshot]/[restore] capture the full service state for checkpointing
    and state transfer; they must satisfy [restore (snapshot ()) = identity]
    on observable behaviour. *)

type paged = {
  pg_page_size : int;
  pg_pages : unit -> string array;
      (** The snapshot image as pages: every page exactly [pg_page_size]
          bytes, and the concatenation equals [snapshot ()]. Unchanged
          pages must be returned as physically shared strings across
          calls. *)
  pg_drain_dirty : unit -> int list;
      (** Indices of pages that may have changed since the previous
          drain; clears the set. Must over-approximate (a missed dirty
          page silently corrupts checkpoint digests; a false positive
          merely costs a byte-compare). After [restore], every page is
          dirty. *)
}
(** Optional dirty-aware checkpoint interface (Section 5.3's
    copy-on-write dirty pages). A service that opts in lets the replica
    maintain checkpoint partition trees in O(modified pages); services
    that don't are checkpointed through the flat [snapshot] path. *)

type t = {
  name : string;
  execute : client:int -> op:string -> nondet:string -> string;
      (** Total transition function; never raises. *)
  is_read_only : string -> bool;
      (** Service-specific upcall used by the read-only optimization
          (Section 5.1.3): a faulty client may mark a mutating request
          read-only, so the service itself vets it. *)
  has_access : client:int -> string -> bool;
      (** Access control (Section 2.2): deny before execution. *)
  exec_cost_us : string -> float;
      (** Virtual CPU cost of executing the operation, charged by the
          simulator. *)
  snapshot : unit -> string;
  restore : string -> unit;
  paged : paged option;
      (** [None]: checkpointing uses the flat [snapshot] string. *)
}

val paged_of_image : Paged_image.t -> paged
(** The paged interface of a {!Paged_image} arena (the common
    implementation). *)

val denied : string
(** Canonical result returned when [has_access] fails. *)

val invalid : string
(** Canonical result for malformed operations. *)

type paged = {
  pg_page_size : int;
  pg_pages : unit -> string array;
  pg_drain_dirty : unit -> int list;
}

type t = {
  name : string;
  execute : client:int -> op:string -> nondet:string -> string;
  is_read_only : string -> bool;
  has_access : client:int -> string -> bool;
  exec_cost_us : string -> float;
  snapshot : unit -> string;
  restore : string -> unit;
  paged : paged option;
}

let denied = "EACCES"
let invalid = "EINVAL"

let paged_of_image img =
  {
    pg_page_size = Paged_image.page_size img;
    pg_pages = (fun () -> Paged_image.pages img);
    pg_drain_dirty = (fun () -> Paged_image.drain_dirty img);
  }

(* Deterministic paged record arena backing the dirty-aware snapshot
   interface. See the .mli for the determinism argument; the key
   constraints are: pure bump allocation (no free-list), freed regions
   zeroed in place, and the bump pointer persisted in a fixed-width
   header so a restored arena is byte-identical and continues to allocate
   at the same offsets. *)

type t = {
  page_size : int;
  mutable buf : Bytes.t; (* capacity is always a multiple of page_size *)
  mutable used : int; (* bump pointer, includes the header *)
  index : (string, int * int) Hashtbl.t; (* key -> (offset, record length) *)
  dirty : (int, unit) Hashtbl.t; (* pages touched since last drain *)
  stale : (int, unit) Hashtbl.t; (* pages whose cached string is outdated *)
  mutable cache : string array; (* one immutable string per page *)
}

let header_len = 19 (* "ARENA " ^ 12 digits ^ "\n" *)

let min_page_size = 32

let header_bytes used = Printf.sprintf "ARENA %012d\n" used

let num_pages t = Bytes.length t.buf / t.page_size
let page_size t = t.page_size
let used_bytes t = t.used

let touch t pg =
  Hashtbl.replace t.dirty pg ();
  Hashtbl.replace t.stale pg ()

let touch_range t off len =
  if len > 0 then
    for pg = off / t.page_size to (off + len - 1) / t.page_size do
      touch t pg
    done

let write_header t =
  Bytes.blit_string (header_bytes t.used) 0 t.buf 0 header_len;
  touch_range t 0 header_len

let create ?(initial_pages = 1) ~page_size () =
  if page_size < min_page_size then invalid_arg "Paged_image.create: page_size";
  if initial_pages < 1 then invalid_arg "Paged_image.create: initial_pages";
  let t =
    {
      page_size;
      buf = Bytes.make (initial_pages * page_size) '\x00';
      used = header_len;
      index = Hashtbl.create 64;
      dirty = Hashtbl.create 16;
      stale = Hashtbl.create 16;
      cache = Array.make initial_pages "";
    }
  in
  write_header t;
  t

let record_string key value =
  let b =
    Buffer.create (String.length key + String.length value + 16)
  in
  Buffer.add_string b "R ";
  Buffer.add_string b (string_of_int (String.length key));
  Buffer.add_char b ' ';
  Buffer.add_string b (string_of_int (String.length value));
  Buffer.add_char b '\n';
  Buffer.add_string b key;
  Buffer.add_string b value;
  Buffer.add_char b '\n';
  Buffer.contents b

let grow t needed =
  let cap = Bytes.length t.buf in
  let new_cap = ref (max cap t.page_size) in
  while !new_cap < needed do
    new_cap := !new_cap * 2
  done;
  (* round up to a page multiple (already one: cap and doubling keep it) *)
  if !new_cap > cap then begin
    let nb = Bytes.make !new_cap '\x00' in
    Bytes.blit t.buf 0 nb 0 cap;
    t.buf <- nb;
    let old_pages = Array.length t.cache in
    let pages = !new_cap / t.page_size in
    let nc = Array.make pages "" in
    Array.blit t.cache 0 nc 0 old_pages;
    t.cache <- nc;
    (* fresh pages enter the image: they count as dirty *)
    for pg = old_pages to pages - 1 do
      touch t pg
    done
  end

(* Overwrite [off, off+len) with [r], dirtying only pages whose bytes
   actually change. *)
let diff_write t off r =
  let len = String.length r in
  if len > 0 then begin
    let last = off + len - 1 in
    for pg = off / t.page_size to last / t.page_size do
      let seg_start = max off (pg * t.page_size) in
      let seg_end = min (off + len) ((pg + 1) * t.page_size) in
      let seg_len = seg_end - seg_start in
      let same =
        String.equal
          (Bytes.sub_string t.buf seg_start seg_len)
          (String.sub r (seg_start - off) seg_len)
      in
      if not same then begin
        Bytes.blit_string r (seg_start - off) t.buf seg_start seg_len;
        touch t pg
      end
    done
  end

let free_region t off len =
  Bytes.fill t.buf off len '\x00';
  touch_range t off len

let append t r =
  let len = String.length r in
  grow t (t.used + len);
  let off = t.used in
  Bytes.blit_string r 0 t.buf off len;
  touch_range t off len;
  t.used <- t.used + len;
  write_header t;
  off

let set t ~key ~value =
  let r = record_string key value in
  match Hashtbl.find_opt t.index key with
  | Some (off, len) when String.length r = len -> diff_write t off r
  | Some (off, len) ->
      free_region t off len;
      let off = append t r in
      Hashtbl.replace t.index key (off, String.length r)
  | None ->
      let off = append t r in
      Hashtbl.replace t.index key (off, String.length r)

let remove t ~key =
  match Hashtbl.find_opt t.index key with
  | None -> false
  | Some (off, len) ->
      free_region t off len;
      Hashtbl.remove t.index key;
      true

let find t ~key =
  match Hashtbl.find_opt t.index key with
  | None -> None
  | Some (off, len) ->
      (* re-parse lengths from the record header *)
      let sp1 = Bytes.index_from t.buf (off + 2) ' ' in
      let nl = Bytes.index_from t.buf (sp1 + 1) '\n' in
      let klen = int_of_string (Bytes.sub_string t.buf (off + 2) (sp1 - off - 2)) in
      let vlen = int_of_string (Bytes.sub_string t.buf (sp1 + 1) (nl - sp1 - 1)) in
      ignore len;
      Some (Bytes.sub_string t.buf (nl + 1 + klen) vlen)

let iter t f =
  Hashtbl.iter
    (fun key _ -> match find t ~key with Some v -> f key v | None -> ())
    t.index

let pages t =
  Hashtbl.iter
    (fun pg () ->
      t.cache.(pg) <- Bytes.sub_string t.buf (pg * t.page_size) t.page_size)
    t.stale;
  Hashtbl.reset t.stale;
  Array.copy t.cache

let drain_dirty t =
  let l = Hashtbl.fold (fun pg () acc -> pg :: acc) t.dirty [] in
  Hashtbl.reset t.dirty;
  List.sort compare l

let mark_all_dirty t =
  for pg = 0 to num_pages t - 1 do
    touch t pg
  done

let reset t =
  t.buf <- Bytes.make t.page_size '\x00';
  t.used <- header_len;
  Hashtbl.reset t.index;
  Hashtbl.reset t.dirty;
  Hashtbl.reset t.stale;
  t.cache <- Array.make 1 "";
  write_header t;
  touch t 0

let image t = Bytes.to_string t.buf

(* --- decoding ------------------------------------------------------- *)

let is_digits s lo hi =
  let ok = ref (hi > lo) in
  for i = lo to hi - 1 do
    match s.[i] with '0' .. '9' -> () | _ -> ok := false
  done;
  !ok

let decode_raw ~page_size s =
  let len = String.length s in
  let err fmt = Printf.ksprintf (fun m -> Error ("Paged_image: " ^ m)) fmt in
  if page_size < min_page_size then err "bad page size"
  else if len < page_size || len mod page_size <> 0 then err "image not page-aligned"
  else if len < header_len
          || (not (String.equal (String.sub s 0 6) "ARENA "))
          || s.[header_len - 1] <> '\n'
          || not (is_digits s 6 (header_len - 1))
  then err "bad arena header"
  else begin
    let used = int_of_string (String.sub s 6 12) in
    if used < header_len || used > len then err "bad bump pointer"
    else begin
      let records = ref [] in
      let seen = Hashtbl.create 64 in
      let pos = ref header_len in
      let bad = ref None in
      let fail m = if !bad = None then bad := Some m in
      while !bad = None && !pos < used do
        if s.[!pos] = '\x00' then incr pos
        else if s.[!pos] <> 'R' || !pos + 1 >= used || s.[!pos + 1] <> ' ' then
          fail "bad record tag"
        else begin
          match String.index_from_opt s (!pos + 2) ' ' with
          | None -> fail "truncated record header"
          | Some sp -> (
              match String.index_from_opt s (sp + 1) '\n' with
              | None -> fail "truncated record header"
              | Some nl ->
                  if
                    nl >= used || not (is_digits s (!pos + 2) sp)
                    || not (is_digits s (sp + 1) nl)
                  then fail "bad record lengths"
                  else begin
                    let klen = int_of_string (String.sub s (!pos + 2) (sp - !pos - 2)) in
                    let vlen = int_of_string (String.sub s (sp + 1) (nl - sp - 1)) in
                    let rec_end = nl + 1 + klen + vlen in
                    if rec_end >= used || s.[rec_end] <> '\n' then
                      fail "truncated record body"
                    else begin
                      let key = String.sub s (nl + 1) klen in
                      let value = String.sub s (nl + 1 + klen) vlen in
                      if Hashtbl.mem seen key then fail "duplicate key"
                      else begin
                        Hashtbl.replace seen key ();
                        records := (key, value, !pos, rec_end + 1 - !pos) :: !records;
                        pos := rec_end + 1
                      end
                    end
                  end)
        end
      done;
      (* the unallocated tail must be zero: it is part of the digested image *)
      if !bad = None then
        for i = used to len - 1 do
          if s.[i] <> '\x00' then fail "nonzero tail"
        done;
      match !bad with
      | Some m -> err "%s" m
      | None -> Ok (used, List.rev !records)
    end
  end

let decode ~page_size s =
  match decode_raw ~page_size s with
  | Error _ as e -> e
  | Ok (_, records) -> Ok (List.map (fun (k, v, _, _) -> (k, v)) records)

let restore t s =
  match decode_raw ~page_size:t.page_size s with
  | Error _ as e -> e
  | Ok (used, records) ->
      t.buf <- Bytes.of_string s;
      t.used <- used;
      Hashtbl.reset t.index;
      List.iter (fun (k, _, off, len) -> Hashtbl.replace t.index k (off, len)) records;
      t.cache <- Array.make (String.length s / t.page_size) "";
      Hashtbl.reset t.dirty;
      Hashtbl.reset t.stale;
      mark_all_dirty t;
      Ok (List.map (fun (k, v, _, _) -> (k, v)) records)

(** Deterministic paged record arena — the backing store for dirty-aware
    service snapshots (the copy-on-write memory of Section 5.3 recast for
    a byte-image world).

    A service keeps its state as (key, value) records inside a flat byte
    arena carved into fixed-size pages. Mutations write through the arena
    and mark only the pages whose bytes actually change, so a checkpoint
    can hand {!pages} and {!drain_dirty} straight to
    [Partition_tree.update] and pay O(modified pages) instead of
    re-encoding the world.

    Determinism is load-bearing: every replica must produce byte-identical
    arenas from the same operation sequence, including replicas that
    restored from a snapshot mid-history. Hence:
    - allocation is pure bump allocation — freed space is zeroed in place
      and never reused, so layout depends only on allocation order;
    - overwriting a record with one of equal encoded size happens in
      place (the common case: fixed-width values);
    - the bump pointer lives in a fixed-width header record at offset 0,
      so it survives a snapshot/restore round trip exactly.

    The arena leaks freed space by design (a size-changing update or
    delete abandons the old region); bounded-size services with
    fixed-width records — reply caches, counters, slab-like tables — never
    leak. This is the simulator-grade trade-off for exact reproducibility.

    Page 0 is dirtied by every allocation (the header's bump pointer
    changes); in-place overwrites dirty only the pages they touch. *)

type t

val create : ?initial_pages:int -> page_size:int -> unit -> t
(** [page_size] must be at least 32 bytes (the header must fit in page
    0). Capacity grows by doubling; fresh pages are zero and marked
    dirty. *)

val set : t -> key:string -> value:string -> unit
(** Insert or update a record. Keys and values are arbitrary byte
    strings (the encoding is length-prefixed). *)

val remove : t -> key:string -> bool
(** Zero the record's region; [false] if the key was absent. *)

val find : t -> key:string -> string option
val iter : t -> (string -> string -> unit) -> unit
(** Iteration order is unspecified — callers rebuild unordered native
    state from it. *)

val page_size : t -> int
val num_pages : t -> int
val used_bytes : t -> int

val pages : t -> string array
(** The current image as full pages, each exactly [page_size] bytes.
    Unchanged pages return the {e same} string as the previous call —
    structural sharing with retained partition trees comes for free. *)

val drain_dirty : t -> int list
(** Sorted indices of pages whose bytes changed since the previous drain
    (over-approximation: a page rewritten with identical bytes is not
    reported). Clears the set. *)

val mark_all_dirty : t -> unit

val reset : t -> unit
(** Empty the arena and shrink it back to one page — used when a service
    rebuilds its image from scratch in a canonical order (so capacity,
    layout and therefore digests do not depend on pre-reset history). *)

val image : t -> string
(** The raw arena bytes — equal to [String.concat "" (pages t)]. *)

val decode :
  page_size:int -> string -> ((string * string) list, string) result
(** Parse an arena image without touching any state: the records in
    offset order, or an error for a malformed image (bad header,
    truncated or overlapping records, nonzero unallocated tail). Lets a
    service validate payloads before committing with {!restore}. *)

val restore : t -> string -> ((string * string) list, string) result
(** Atomically replace the arena with a decoded image; on [Error] the
    arena is untouched. All pages become dirty. *)

let op ~read_only ~arg_size ~result_size =
  let tag = if read_only then "ro" else "rw" in
  let header = Printf.sprintf "%s:%d:" tag result_size in
  let pad = max 0 (arg_size - String.length header) in
  header ^ String.make pad 'x'

let parse op =
  match String.split_on_char ':' op with
  | tag :: size :: _ when String.equal tag "ro" || String.equal tag "rw" -> (
      match int_of_string_opt size with
      | Some r when r >= 0 -> Some (String.equal tag "ro", r)
      | _ -> None)
  | _ -> None

let create ?(exec_cost_us = 0.0) () =
  let count = ref 0 in
  let execute ~client:_ ~op ~nondet:_ =
    match parse op with
    | None -> Service.invalid
    | Some (read_only, r) ->
        if not read_only then incr count;
        String.make r '\x00'
  in
  {
    Service.name = "null";
    execute;
    is_read_only = (fun op -> match parse op with Some (ro, _) -> ro | None -> false);
    has_access = (fun ~client:_ _ -> true);
    exec_cost_us = (fun _ -> exec_cost_us);
    snapshot = (fun () -> string_of_int !count);
    restore = (fun s -> count := int_of_string s);
    paged = None;
  }

let create () =
  let v = ref 0 in
  let execute ~client:_ ~op ~nondet:_ =
    match String.split_on_char ' ' op with
    | [ "inc" ] ->
        incr v;
        string_of_int !v
    | [ "get" ] -> string_of_int !v
    | [ "add"; n ] -> (
        match int_of_string_opt n with
        | Some n ->
            v := !v + n;
            string_of_int !v
        | None -> Service.invalid)
    | [ "set"; n ] -> (
        match int_of_string_opt n with
        | Some n ->
            v := n;
            string_of_int !v
        | None -> Service.invalid)
    | _ -> Service.invalid
  in
  {
    Service.name = "counter";
    execute;
    is_read_only = (fun op -> String.equal op "get");
    has_access = (fun ~client:_ _ -> true);
    exec_cost_us = (fun _ -> 0.5);
    snapshot = (fun () -> string_of_int !v);
    restore = (fun s -> v := int_of_string s);
    paged = None;
  }

let value (s : Service.t) = int_of_string (s.execute ~client:(-1) ~op:"get" ~nondet:"")

(** A key-value store service with access control, invariant-preserving
    compound operations, and a non-deterministic timestamp operation.

    Operations (space-separated; keys and values must not contain spaces):
    - ["put <k> <v>"]     write, returns ["ok"]
    - ["get <k>"]         read-only, returns the value or ["ENOENT"]
    - ["del <k>"]         returns ["ok"] or ["ENOENT"]
    - ["cas <k> <old> <new>"] compare-and-swap, returns ["ok"] or ["EAGAIN"]
      or ["ENOENT"] — a complex operation that preserves invariants server
      side, the paper's defense against Byzantine clients (Section 2.2)
    - ["touch <k>"]       stores the agreed non-deterministic timestamp
      (Section 5.4) as the value, returns it
    - ["grant <c>"] / ["revoke <c>"] admin-only access-control updates
      (Section 2.2's revocation mechanism); admin is client 0
    - ["size"]            read-only, number of keys

    When an ACL has been installed with [restrict], only listed clients
    (plus the admin) may execute mutating operations; [get]/[size] are
    always allowed. *)

val create : ?restrict:int list -> ?paged:int -> unit -> Service.t
(** [paged] (a page size, >= 32) opts into the dirty-aware checkpoint
    interface: the store mirrors its bindings into a {!Paged_image} arena
    and snapshots become arena images (a different format from the flat
    default — all replicas of a cluster must agree on the mode). Without
    it the flat sorted-line snapshot format is byte-identical to previous
    releases. *)

val admin_client : int

(* BFS substrate: the inode file system, the service wrapper, the Andrew
   workload generator. *)

open Bft_bfs

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected %s" (Fs.error_to_string e)
let err name expected = function
  | Ok _ -> Alcotest.failf "%s: expected error" name
  | Error e -> Alcotest.(check string) name (Fs.error_to_string expected) (Fs.error_to_string e)

(* --- Fs --- *)

let test_fs_root () =
  let fs = Fs.create () in
  let a = ok (Fs.getattr fs ~ino:Fs.root) in
  Alcotest.(check bool) "root is dir" true (a.Fs.a_kind = `Dir);
  Alcotest.(check int) "empty" 0 a.Fs.a_size

let test_fs_create_lookup () =
  let fs = Fs.create () in
  let f = ok (Fs.create_file fs ~dir:Fs.root ~name:"a.txt" ~mtime:5L) in
  Alcotest.(check bool) "file kind" true (f.Fs.a_kind = `File);
  Alcotest.(check int) "mtime" 5 (Int64.to_int f.Fs.a_mtime);
  let l = ok (Fs.lookup fs ~dir:Fs.root ~name:"a.txt") in
  Alcotest.(check int) "lookup ino" f.Fs.a_ino l.Fs.a_ino;
  err "duplicate" `Exist (Fs.create_file fs ~dir:Fs.root ~name:"a.txt" ~mtime:6L);
  err "missing" `Noent (Fs.lookup fs ~dir:Fs.root ~name:"b.txt");
  err "bad name" `Inval (Fs.create_file fs ~dir:Fs.root ~name:"x/y" ~mtime:0L);
  err "dot" `Inval (Fs.create_file fs ~dir:Fs.root ~name:"." ~mtime:0L)

let test_fs_read_write () =
  let fs = Fs.create () in
  let f = ok (Fs.create_file fs ~dir:Fs.root ~name:"f" ~mtime:0L) in
  let ino = f.Fs.a_ino in
  Alcotest.(check int) "write 5" 5 (ok (Fs.write fs ~ino ~off:0 ~data:"hello" ~mtime:1L));
  Alcotest.(check string) "read" "hello" (ok (Fs.read fs ~ino ~off:0 ~len:100));
  Alcotest.(check string) "read middle" "ell" (ok (Fs.read fs ~ino ~off:1 ~len:3));
  Alcotest.(check string) "read past end" "" (ok (Fs.read fs ~ino ~off:50 ~len:4));
  (* sparse write extends with zeros (NFS semantics) *)
  ignore (ok (Fs.write fs ~ino ~off:8 ~data:"XY" ~mtime:2L));
  Alcotest.(check string) "hole zero-filled" "hello\x00\x00\x00XY" (ok (Fs.read fs ~ino ~off:0 ~len:100));
  err "read dir" `Isdir (Fs.read fs ~ino:Fs.root ~off:0 ~len:1);
  err "write dir" `Isdir (Fs.write fs ~ino:Fs.root ~off:0 ~data:"x" ~mtime:0L);
  err "negative" `Inval (Fs.read fs ~ino ~off:(-1) ~len:1)

let test_fs_truncate () =
  let fs = Fs.create () in
  let f = ok (Fs.create_file fs ~dir:Fs.root ~name:"f" ~mtime:0L) in
  let ino = f.Fs.a_ino in
  ignore (ok (Fs.write fs ~ino ~off:0 ~data:"abcdef" ~mtime:1L));
  ignore (ok (Fs.truncate fs ~ino ~size:3 ~mtime:2L));
  Alcotest.(check string) "shrunk" "abc" (ok (Fs.read fs ~ino ~off:0 ~len:10));
  ignore (ok (Fs.truncate fs ~ino ~size:5 ~mtime:3L));
  Alcotest.(check string) "grown with zeros" "abc\x00\x00" (ok (Fs.read fs ~ino ~off:0 ~len:10))

let test_fs_dirs () =
  let fs = Fs.create () in
  let d = ok (Fs.mkdir fs ~dir:Fs.root ~name:"sub" ~mtime:0L) in
  let sub = d.Fs.a_ino in
  ignore (ok (Fs.create_file fs ~dir:sub ~name:"x" ~mtime:0L));
  Alcotest.(check (list string)) "readdir" [ "x" ] (ok (Fs.readdir fs ~dir:sub));
  err "rmdir nonempty" `Notempty (Fs.rmdir fs ~dir:Fs.root ~name:"sub");
  err "remove a dir" `Isdir (Fs.remove fs ~dir:Fs.root ~name:"sub");
  err "rmdir a file" `Notdir (Fs.rmdir fs ~dir:sub ~name:"x");
  ignore (ok (Fs.remove fs ~dir:sub ~name:"x"));
  ignore (ok (Fs.rmdir fs ~dir:Fs.root ~name:"sub"));
  err "gone" `Noent (Fs.lookup fs ~dir:Fs.root ~name:"sub")

let test_fs_rename () =
  let fs = Fs.create () in
  let d1 = (ok (Fs.mkdir fs ~dir:Fs.root ~name:"d1" ~mtime:0L)).Fs.a_ino in
  let d2 = (ok (Fs.mkdir fs ~dir:Fs.root ~name:"d2" ~mtime:0L)).Fs.a_ino in
  let f = ok (Fs.create_file fs ~dir:d1 ~name:"f" ~mtime:0L) in
  ignore (ok (Fs.rename fs ~src_dir:d1 ~src_name:"f" ~dst_dir:d2 ~dst_name:"g"));
  err "source gone" `Noent (Fs.lookup fs ~dir:d1 ~name:"f");
  Alcotest.(check int) "same inode" f.Fs.a_ino (ok (Fs.lookup fs ~dir:d2 ~name:"g")).Fs.a_ino;
  ignore (ok (Fs.create_file fs ~dir:d1 ~name:"h" ~mtime:0L));
  err "destination exists" `Exist (Fs.rename fs ~src_dir:d2 ~src_name:"g" ~dst_dir:d1 ~dst_name:"h")

let test_fs_snapshot_roundtrip () =
  let fs = Fs.create () in
  let d = (ok (Fs.mkdir fs ~dir:Fs.root ~name:"dir" ~mtime:3L)).Fs.a_ino in
  let fino = (ok (Fs.create_file fs ~dir:d ~name:"file" ~mtime:4L)).Fs.a_ino in
  ignore (ok (Fs.write fs ~ino:fino ~off:0 ~data:"binary \x00\xff data" ~mtime:5L));
  let snap = Fs.snapshot fs in
  let fs2 = Fs.create () in
  Alcotest.(check bool) "restore ok" true (Result.is_ok (Fs.restore fs2 snap));
  Alcotest.(check string) "content preserved" "binary \x00\xff data"
    (ok (Fs.read fs2 ~ino:fino ~off:0 ~len:100));
  Alcotest.(check string) "stable snapshot" snap (Fs.snapshot fs2);
  (* inode allocation continues correctly after restore *)
  let g = ok (Fs.create_file fs2 ~dir:d ~name:"new" ~mtime:0L) in
  Alcotest.(check bool) "fresh inode" true (g.Fs.a_ino > fino)

let prop_fs_snapshot_roundtrip =
  let gen = QCheck.(list_of_size Gen.(0 -- 20) (pair (string_of_size Gen.(1 -- 6)) (string_of_size Gen.(0 -- 40)))) in
  QCheck.Test.make ~name:"fs snapshot roundtrip (random)" ~count:60 gen (fun files ->
      let fs = Fs.create () in
      List.iteri
        (fun i (_, content) ->
          let name = Printf.sprintf "f%d" i in
          match Fs.create_file fs ~dir:Fs.root ~name ~mtime:(Int64.of_int i) with
          | Ok a -> (
              match Fs.write fs ~ino:a.Fs.a_ino ~off:0 ~data:content ~mtime:0L with
              | Ok _ -> ()
              | Error _ -> Alcotest.failf "setup write to %s failed" name)
          | Error _ -> ())
        files;
      let snap = Fs.snapshot fs in
      let fs2 = Fs.create () in
      Result.is_ok (Fs.restore fs2 snap) && String.equal snap (Fs.snapshot fs2))

(* --- BFS service wrapper --- *)

let exec (s : Bft_sm.Service.t) ?(nondet = "7") op = s.Bft_sm.Service.execute ~client:9 ~op ~nondet

let test_bfs_service_flow () =
  let s = Bfs_service.create () in
  let dir_attr = exec s "mkdir 1 src" in
  let dir = Option.get (Bfs_service.parse_attr_ino dir_attr) in
  let file_attr = exec s (Printf.sprintf "create %d main.c" dir) in
  let file = Option.get (Bfs_service.parse_attr_ino file_attr) in
  Alcotest.(check string) "write" "5" (exec s (Bfs_service.op_write ~ino:file ~off:0 "12345"));
  Alcotest.(check string) "read" "12345"
    (Bfs_service.decode_read_result (exec s (Bfs_service.op_read ~ino:file ~off:0 ~len:10)));
  Alcotest.(check string) "readdir" "main.c" (exec s (Printf.sprintf "readdir %d" dir));
  Alcotest.(check string) "remove" "ok" (exec s (Printf.sprintf "remove %d main.c" dir));
  Alcotest.(check string) "enoent" "ENOENT" (exec s (Printf.sprintf "lookup %d main.c" dir))

let test_bfs_service_mtime_from_nondet () =
  let s = Bfs_service.create () in
  let attr = exec s ~nondet:"12345" "mkdir 1 d" in
  Alcotest.(check bool) "mtime from nondet" true
    (Astring_check.contains attr "mtime=12345")

let test_bfs_service_read_only () =
  let s = Bfs_service.create () in
  Alcotest.(check bool) "read ro" true (s.Bft_sm.Service.is_read_only "read 2 0 10");
  Alcotest.(check bool) "getattr ro" true (s.Bft_sm.Service.is_read_only "getattr 1");
  Alcotest.(check bool) "write rw" false (s.Bft_sm.Service.is_read_only "write 2 0 00");
  Alcotest.(check bool) "mkdir rw" false (s.Bft_sm.Service.is_read_only "mkdir 1 d")

let test_bfs_service_invalid () =
  let s = Bfs_service.create () in
  Alcotest.(check string) "garbage" Bft_sm.Service.invalid (exec s "nonsense");
  Alcotest.(check string) "bad int" Bft_sm.Service.invalid (exec s "getattr abc");
  Alcotest.(check string) "bad hex" Bft_sm.Service.invalid (exec s "write 2 0 zz")

let test_bfs_snapshot_roundtrip () =
  let s = Bfs_service.create () in
  ignore (exec s "mkdir 1 d");
  ignore (exec s "create 2 f");
  ignore (exec s (Bfs_service.op_write ~ino:3 ~off:0 "content"));
  let snap = s.Bft_sm.Service.snapshot () in
  let s2 = Bfs_service.create () in
  s2.Bft_sm.Service.restore snap;
  Alcotest.(check string) "snapshot stable" snap (s2.Bft_sm.Service.snapshot ())

(* --- Andrew workload --- *)

let test_andrew_phases () =
  let steps = Andrew.script ~scale:1 ~file_size:512 () in
  let counts = Andrew.ops_per_phase steps in
  Alcotest.(check int) "mkdir ops" 5 (List.assoc Andrew.Mkdir counts);
  Alcotest.(check int) "copy ops (create+write)" 20 (List.assoc Andrew.Copy counts);
  Alcotest.(check int) "stat ops" 15 (List.assoc Andrew.Stat counts);
  Alcotest.(check int) "read ops" 10 (List.assoc Andrew.Read counts);
  Alcotest.(check bool) "make ops" true (List.assoc Andrew.Make counts > 0);
  (* reads are flagged read-only, writes are not *)
  List.iter
    (fun (s : Andrew.step) ->
      let verb = List.hd (String.split_on_char ' ' s.Andrew.op) in
      let expect_ro = List.mem verb [ "getattr"; "read"; "readdir"; "lookup" ] in
      Alcotest.(check bool) ("ro flag for " ^ verb) expect_ro s.Andrew.read_only)
    steps

let test_andrew_scales () =
  let s1 = List.length (Andrew.script ~scale:1 ()) in
  let s3 = List.length (Andrew.script ~scale:3 ()) in
  Alcotest.(check bool) "scale grows script" true (s3 > 2 * s1)

let test_andrew_executes_cleanly () =
  (* every scripted op must succeed against a fresh service *)
  let s = Bfs_service.create () in
  List.iter
    (fun (st : Andrew.step) ->
      let r = exec s st.Andrew.op in
      if
        String.equal r Bft_sm.Service.invalid || String.equal r "ENOENT"
        || String.equal r "EEXIST"
      then
        Alcotest.failf "step %s failed: %s" st.Andrew.op r)
    (Andrew.script ~scale:1 ~file_size:256 ());
  Alcotest.(check bool) "done" true true

let test_andrew_deterministic () =
  let ops l = List.map (fun (s : Andrew.step) -> s.Andrew.op) l in
  Alcotest.(check (list string)) "same seed same script"
    (ops (Andrew.script ~seed:9L ()))
    (ops (Andrew.script ~seed:9L ()))

let suites =
  [
    ( "bfs.fs",
      [
        Alcotest.test_case "root" `Quick test_fs_root;
        Alcotest.test_case "create/lookup" `Quick test_fs_create_lookup;
        Alcotest.test_case "read/write" `Quick test_fs_read_write;
        Alcotest.test_case "truncate" `Quick test_fs_truncate;
        Alcotest.test_case "directories" `Quick test_fs_dirs;
        Alcotest.test_case "rename" `Quick test_fs_rename;
        Alcotest.test_case "snapshot roundtrip" `Quick test_fs_snapshot_roundtrip;
        QCheck_alcotest.to_alcotest prop_fs_snapshot_roundtrip;
      ] );
    ( "bfs.service",
      [
        Alcotest.test_case "flow" `Quick test_bfs_service_flow;
        Alcotest.test_case "mtime from nondet" `Quick test_bfs_service_mtime_from_nondet;
        Alcotest.test_case "read-only classes" `Quick test_bfs_service_read_only;
        Alcotest.test_case "invalid ops" `Quick test_bfs_service_invalid;
        Alcotest.test_case "snapshot roundtrip" `Quick test_bfs_snapshot_roundtrip;
      ] );
    ( "bfs.andrew",
      [
        Alcotest.test_case "phases" `Quick test_andrew_phases;
        Alcotest.test_case "scales" `Quick test_andrew_scales;
        Alcotest.test_case "executes cleanly" `Quick test_andrew_executes_cleanly;
        Alcotest.test_case "deterministic" `Quick test_andrew_deterministic;
      ] );
  ]

(* End-to-end protocol tests: normal case, optimizations, garbage
   collection, view changes, Byzantine behaviour, state transfer and
   proactive recovery — the correctness matrix of DESIGN.md experiment E14. *)

open Bft_core

let null_op ?(ro = false) ?(arg = 8) ?(res = 4) () =
  Bft_sm.Null_service.op ~read_only:ro ~arg_size:arg ~result_size:res

let counter () = Bft_sm.Counter_service.create ()
let kv () = Bft_sm.Kv_service.create ()

let make ?(f = 1) ?(seed = 42L) ?service ?(clients = 1) ?(k = 16) ?auth_mode
    ?(vc_timeout = 30_000.0) ?tentative ?read_only_opt ?digest_replies ?batching () =
  let cfg =
    Config.make ?auth_mode ?tentative_execution:tentative ?read_only_opt ?digest_replies
      ?batching ~checkpoint_interval:k ~vc_timeout_us:vc_timeout ~f ()
  in
  (cfg, Cluster.create ~seed ?service ~num_clients:clients cfg)

let all_equal_states c ids =
  match ids with
  | [] -> true
  | first :: rest ->
      let s0 = Replica.service_state (Cluster.replica c first) in
      List.for_all (fun i -> String.equal s0 (Replica.service_state (Cluster.replica c i))) rest

(* --- normal case --- *)

let test_single_request () =
  let _, c = make () in
  let r = Cluster.invoke_sync c ~client:0 (null_op ~res:10 ()) in
  Alcotest.(check int) "result size" 10 (String.length r);
  Alcotest.(check bool) "all executed" true
    (Array.for_all (fun r -> Replica.last_executed r = 1) (Cluster.replicas c))

let test_sequence_of_requests () =
  let _, c = make ~service:counter () in
  for i = 1 to 30 do
    Alcotest.(check string) "inc result" (string_of_int i) (Cluster.invoke_sync c ~client:0 "inc")
  done;
  Alcotest.(check bool) "consistent" true (Cluster.committed_histories_consistent c)

let test_multiple_clients_interleaved () =
  let _, c = make ~service:counter ~clients:4 () in
  let done_count = ref 0 in
  let results = ref [] in
  for k = 0 to 3 do
    for _ = 1 to 5 do
      ()
    done;
    ignore k
  done;
  (* issue 5 rounds of 4 concurrent increments *)
  for _round = 1 to 5 do
    for k = 0 to 3 do
      Client.invoke (Cluster.client c k) ~op:"inc" (fun ~result ~latency_us:_ ->
          incr done_count;
          results := int_of_string result :: !results)
    done;
    ignore
      (Cluster.run_until ~timeout_us:5_000_000.0 c (fun () -> !done_count mod 4 = 0 && !done_count > 0));
    done_count := 0
  done;
  ignore (Cluster.run_until ~timeout_us:5_000_000.0 c (fun () -> List.length !results >= 20));
  (* all 20 increments linearized: results are a permutation of 1..20 *)
  Alcotest.(check (list int)) "permutation of 1..20" (List.init 20 (fun i -> i + 1))
    (List.sort compare !results);
  Alcotest.(check bool) "consistent" true (Cluster.committed_histories_consistent c)

let test_exactly_once_under_duplication () =
  let _, c = make ~service:counter () in
  Bft_net.Network.set_dup_rate (Cluster.network c) 0.5;
  for i = 1 to 20 do
    Alcotest.(check string) "no double increment" (string_of_int i)
      (Cluster.invoke_sync ~timeout_us:20_000_000.0 c ~client:0 "inc")
  done

let test_exactly_once_under_loss () =
  let _, c = make ~service:counter () in
  Bft_net.Network.set_loss_rate (Cluster.network c) 0.15;
  Bft_net.Network.set_jitter_us (Cluster.network c) 300.0;
  for i = 1 to 20 do
    Alcotest.(check string) "retransmissions do not re-execute" (string_of_int i)
      (Cluster.invoke_sync ~timeout_us:30_000_000.0 c ~client:0 "inc")
  done;
  Alcotest.(check bool) "consistent" true (Cluster.committed_histories_consistent c)

let test_large_argument_separate_transmission () =
  let _, c = make () in
  (* an 8KB argument exceeds the 255-byte inlining threshold *)
  let r = Cluster.invoke_sync c ~client:0 (null_op ~arg:8192 ~res:4 ()) in
  Alcotest.(check int) "executed" 4 (String.length r);
  Alcotest.(check bool) "all replicas executed it" true
    (Array.for_all (fun r -> Replica.last_executed r >= 1) (Cluster.replicas c))

let test_large_result_digest_replies () =
  let _, c = make () in
  let r = Cluster.invoke_sync c ~client:0 (null_op ~res:8192 ()) in
  Alcotest.(check int) "full result recovered from designated replier" 8192 (String.length r)

let test_digest_replies_save_bytes () =
  let run digest_replies =
    let _, c = make ~digest_replies () in
    ignore (Cluster.invoke_sync c ~client:0 (null_op ~res:8192 ()));
    (Bft_net.Network.stats (Cluster.network c)).Bft_net.Network.bytes_sent
  in
  let with_opt = run true and without = run false in
  Alcotest.(check bool)
    (Printf.sprintf "digest replies send fewer bytes (%d < %d)" with_opt without)
    true (with_opt < without)

let test_read_only_sees_committed_writes () =
  let _, c = make ~service:kv () in
  ignore (Cluster.invoke_sync c ~client:0 "put color red");
  Alcotest.(check string) "ro read" "red"
    (Cluster.invoke_sync c ~client:0 ~read_only:true "get color")

let test_read_only_mutation_rejected () =
  (* a faulty client marks a mutating op read-only; the service upcall
     refuses it (Section 5.1.3) *)
  let _, c = make ~service:kv () in
  let r = Cluster.invoke_sync c ~client:0 ~read_only:true "put sneaky write" in
  Alcotest.(check string) "rejected" Bft_sm.Service.invalid r;
  Alcotest.(check string) "no effect" "ENOENT" (Cluster.invoke_sync c ~client:0 "get sneaky")

let test_access_control () =
  let service () = Bft_sm.Kv_service.create ~restrict:[] () in
  let _, c = make ~service ~clients:1 () in
  (* client id is n + 0 = 4; not in the ACL *)
  Alcotest.(check string) "denied" Bft_sm.Service.denied
    (Cluster.invoke_sync c ~client:0 "put x 1")

let test_access_revocation_consistent () =
  (* Section 2.2: access control is enforced inside the replicated service,
     so a client outside the ACL gets a consistent, committed denial from
     every replica — it cannot mutate state even with a correct protocol
     exchange. (Grant/revoke state transitions are covered by the service
     unit tests; end-to-end we verify the denial is serialized.) *)
  let service () = Bft_sm.Kv_service.create ~restrict:[] () in
  let _, c = make ~service ~clients:2 () in
  Alcotest.(check string) "client 0 denied" Bft_sm.Service.denied
    (Cluster.invoke_sync c ~client:0 "put a 1");
  Alcotest.(check string) "client 1 denied" Bft_sm.Service.denied
    (Cluster.invoke_sync c ~client:1 "put b 2");
  Alcotest.(check string) "reads still open" "0"
    (Cluster.invoke_sync c ~client:0 ~read_only:true "size");
  Alcotest.(check bool) "denials committed consistently" true
    (all_equal_states c [ 0; 1; 2; 3 ])

let test_nondeterminism_agreed () =
  (* touch stores the agreed timestamp: all replicas must store the same
     value even though each has its own clock reading *)
  let _, c = make ~service:kv () in
  let v = Cluster.invoke_sync c ~client:0 "touch stamp" in
  Alcotest.(check bool) "some timestamp" true (String.length v > 0);
  Alcotest.(check bool) "replicas agree on state" true
    (all_equal_states c [ 0; 1; 2; 3 ])

(* --- garbage collection / checkpoints --- *)

let test_checkpoint_stability_and_gc () =
  let _, c = make ~k:8 ~service:counter () in
  for _ = 1 to 20 do
    ignore (Cluster.invoke_sync c ~client:0 "inc")
  done;
  ignore (Cluster.run_until ~timeout_us:2_000_000.0 c (fun () ->
      Array.for_all (fun r -> Replica.stable_checkpoint r = 16) (Cluster.replicas c)));
  Array.iter
    (fun r ->
      Alcotest.(check int)
        (Printf.sprintf "replica %d stable" (Replica.id r))
        16 (Replica.stable_checkpoint r))
    (Cluster.replicas c)

let test_f2_cluster () =
  let _, c = make ~f:2 ~service:counter () in
  for i = 1 to 10 do
    Alcotest.(check string) "inc" (string_of_int i) (Cluster.invoke_sync c ~client:0 "inc")
  done;
  Alcotest.(check int) "7 replicas" 7 (Array.length (Cluster.replicas c))

let test_bft_pk_mode () =
  let _, c = make ~auth_mode:Config.Sig_auth ~service:counter () in
  for i = 1 to 3 do
    Alcotest.(check string) "inc under signatures" (string_of_int i)
      (Cluster.invoke_sync ~timeout_us:120_000_000.0 c ~client:0 "inc")
  done

let test_no_tentative_execution_mode () =
  let _, c = make ~tentative:false ~service:counter () in
  for i = 1 to 5 do
    Alcotest.(check string) "inc" (string_of_int i) (Cluster.invoke_sync c ~client:0 "inc")
  done

let test_no_batching_mode () =
  let _, c = make ~batching:false ~service:counter () in
  for i = 1 to 5 do
    Alcotest.(check string) "inc" (string_of_int i) (Cluster.invoke_sync c ~client:0 "inc")
  done

(* --- fail-stop faults --- *)

let test_tolerates_f_crashed_backups () =
  let _, c = make ~service:counter () in
  Bft_net.Network.crash (Cluster.network c) ~id:2;
  for i = 1 to 10 do
    Alcotest.(check string) "progress with 3/4" (string_of_int i)
      (Cluster.invoke_sync ~timeout_us:20_000_000.0 c ~client:0 "inc")
  done

let test_view_change_on_crashed_primary () =
  let _, c = make ~service:counter () in
  ignore (Cluster.invoke_sync c ~client:0 "inc");
  Bft_net.Network.crash (Cluster.network c) ~id:0;
  Alcotest.(check string) "completes in new view" "2"
    (Cluster.invoke_sync ~timeout_us:30_000_000.0 c ~client:0 "inc");
  Alcotest.(check bool) "view advanced" true (Replica.view (Cluster.replica c 1) >= 1);
  Cluster.correct_replicas c := [ 1; 2; 3 ];
  Alcotest.(check bool) "consistent" true (Cluster.committed_histories_consistent c)

let test_view_change_muted_primary () =
  let _, c = make ~service:counter () in
  for _ = 1 to 3 do
    ignore (Cluster.invoke_sync c ~client:0 "inc")
  done;
  Replica.mute (Cluster.replica c 0) true;
  Alcotest.(check string) "progress after mute" "4"
    (Cluster.invoke_sync ~timeout_us:30_000_000.0 c ~client:0 "inc");
  (* un-mute: the old primary rejoins as a backup in the new view *)
  Replica.mute (Cluster.replica c 0) false;
  Alcotest.(check string) "old primary back" "5"
    (Cluster.invoke_sync ~timeout_us:30_000_000.0 c ~client:0 "inc");
  ignore (Cluster.run_until ~timeout_us:5_000_000.0 c (fun () ->
      Replica.last_executed (Cluster.replica c 0) >= 5));
  Alcotest.(check bool) "ex-primary caught up" true
    (Replica.last_executed (Cluster.replica c 0) >= 5)

let test_successive_view_changes () =
  (* kill the primaries of views 0 and 1 in turn (reviving the first, so a
     quorum always exists): the system must reach view 2 *)
  let _, c = make ~service:counter () in
  ignore (Cluster.invoke_sync c ~client:0 "inc");
  Bft_net.Network.crash (Cluster.network c) ~id:0;
  ignore (Cluster.invoke_sync ~timeout_us:30_000_000.0 c ~client:0 "inc");
  Bft_net.Network.restart (Cluster.network c) ~id:0;
  Replica.crash_reboot (Cluster.replica c 0);
  ignore
    (Cluster.run_until ~timeout_us:10_000_000.0 c (fun () ->
         Replica.last_executed (Cluster.replica c 0) >= 2));
  Bft_net.Network.crash (Cluster.network c) ~id:1;
  Alcotest.(check string) "view 2 serves" "3"
    (Cluster.invoke_sync ~timeout_us:60_000_000.0 c ~client:0 "inc");
  Alcotest.(check bool) "view >= 2" true (Replica.view (Cluster.replica c 2) >= 2)

let test_view_change_preserves_committed () =
  let _, c = make ~service:kv () in
  ignore (Cluster.invoke_sync c ~client:0 "put survived yes");
  Replica.mute (Cluster.replica c 0) true;
  ignore (Cluster.invoke_sync ~timeout_us:30_000_000.0 c ~client:0 "put extra 1");
  Alcotest.(check string) "committed data preserved across views" "yes"
    (Cluster.invoke_sync ~timeout_us:30_000_000.0 c ~client:0 "get survived")

(* --- Byzantine faults --- *)

let test_byzantine_primary_safety () =
  let _, c = make ~service:counter () in
  Replica.byzantine_equivocate (Cluster.replica c 0) true;
  Cluster.correct_replicas c := [ 1; 2; 3 ];
  (* 20 ops cross a checkpoint boundary (K = 16), so the backup that was
     fed conflicting assignments can repair itself via state transfer *)
  for i = 1 to 20 do
    Alcotest.(check string) "progress despite equivocation" (string_of_int i)
      (Cluster.invoke_sync ~timeout_us:60_000_000.0 c ~client:0 "inc")
  done;
  Alcotest.(check bool) "no conflicting commits" true
    (Cluster.committed_histories_consistent c);
  ignore
    (Cluster.run_until ~timeout_us:30_000_000.0 c (fun () ->
         List.for_all
           (fun i -> Replica.last_executed (Cluster.replica c i) >= 16)
           [ 1; 2; 3 ]));
  Alcotest.(check bool) "victim backup repaired via state transfer" true
    (Replica.last_executed (Cluster.replica c 2) >= 16)

let test_byzantine_primary_view_change_linearizable () =
  (* a primary that turns byzantine mid-run first equivocates, then falls
     silent — both within the fault model's "arbitrary behaviour". The
     cluster must complete the resulting view change and the correct
     replicas' committed history must remain linearizable (checked against
     replica 1, since replica 0 is the faulty one) *)
  let _, c = make ~service:kv ~clients:2 () in
  for i = 1 to 4 do
    ignore (Cluster.invoke_sync c ~client:0 (Printf.sprintf "put k%d v%d" i i))
  done;
  let primary = Cluster.replica c 0 in
  Replica.byzantine_equivocate primary true;
  Cluster.correct_replicas c := [ 1; 2; 3 ];
  for i = 5 to 8 do
    ignore
      (Cluster.invoke_sync ~timeout_us:60_000_000.0 c ~client:0 (Printf.sprintf "put k%d v%d" i i))
  done;
  Replica.mute primary true;
  for i = 9 to 12 do
    ignore
      (Cluster.invoke_sync ~timeout_us:60_000_000.0 c ~client:1 (Printf.sprintf "put k%d v%d" i i))
  done;
  Alcotest.(check bool) "view advanced" true (Replica.view (Cluster.replica c 1) >= 1);
  Alcotest.(check bool) "histories consistent" true (Cluster.committed_histories_consistent c);
  match Cluster.check_linearizable ~replica:1 c ~service:kv with
  | Ok () -> ()
  | Error e -> Alcotest.failf "linearizability after byzantine primary: %s" e

let test_byzantine_client_partial_auth () =
  let _, c = make ~service:kv ~clients:2 () in
  Client.byzantine_partial_auth (Cluster.client c 1) true;
  Alcotest.(check string) "request with partial MACs still serialized" "ok"
    (Cluster.invoke_sync ~timeout_us:30_000_000.0 c ~client:1 "put from byz-client");
  Alcotest.(check bool) "replicas agree" true (all_equal_states c [ 0; 1; 2; 3 ])

let test_forged_signature_rejected () =
  (* a request signed with a forged signature must never execute *)
  let cfg, c = make ~auth_mode:Config.Sig_auth ~service:counter () in
  let net = Cluster.network c in
  let req =
    {
      Message.op = "inc";
      timestamp = 99L;
      client = cfg.Config.n; (* impersonate client 0 *)
      read_only = false;
      replier = 0;
    }
  in
  let env =
    Message.envelope ~sender:cfg.Config.n
      ~auth:(Message.Auth_sig (Bft_crypto.Signature.forge ~signer_id:cfg.Config.n))
      (Message.Request req)
  in
  Bft_net.Network.multicast net ~src:cfg.Config.n
    ~dsts:(Config.replica_ids cfg)
    ~size:(Wire.envelope_size env) env;
  Cluster.run ~timeout_us:500_000.0 c;
  Alcotest.(check bool) "forged request not executed" true
    (Array.for_all (fun r -> Replica.last_executed r = 0) (Cluster.replicas c))

(* --- partitions --- *)

let test_partition_blocks_then_heals () =
  let _, c = make ~service:counter () in
  ignore (Cluster.invoke_sync c ~client:0 "inc");
  (* no quorum on either side: 2-2 split (client with group A) *)
  let cfg = Cluster.config c in
  Bft_net.Network.partition (Cluster.network c) [ 0; 1; cfg.Config.n ] [ 2; 3 ];
  let got = ref None in
  Client.invoke (Cluster.client c 0) ~op:"inc" (fun ~result ~latency_us:_ -> got := Some result);
  Cluster.run ~timeout_us:300_000.0 c;
  Alcotest.(check bool) "no progress under partition (safety > liveness)" true (!got = None);
  Bft_net.Network.heal (Cluster.network c);
  ignore (Cluster.run_until ~timeout_us:60_000_000.0 c (fun () -> !got <> None));
  Alcotest.(check (option string)) "completes after heal" (Some "2") !got

(* --- state transfer and recovery --- *)

let test_lagging_replica_state_transfer () =
  let _, c = make ~k:8 ~service:kv () in
  Bft_net.Network.crash (Cluster.network c) ~id:3;
  for i = 1 to 30 do
    ignore (Cluster.invoke_sync c ~client:0 (Printf.sprintf "put k%d v%d" i i))
  done;
  Bft_net.Network.restart (Cluster.network c) ~id:3;
  Replica.crash_reboot (Cluster.replica c 3);
  let caught =
    Cluster.run_until ~timeout_us:20_000_000.0 c (fun () ->
        Replica.last_executed (Cluster.replica c 3)
        >= Replica.stable_checkpoint (Cluster.replica c 0))
  in
  Alcotest.(check bool) "caught up" true caught;
  Alcotest.(check bool) "used state transfer" true
    ((Replica.counters (Cluster.replica c 3)).Replica.n_state_transfers >= 1)

let test_recovery_of_corrupt_replica () =
  let _, c = make ~k:8 ~service:kv () in
  for i = 1 to 20 do
    ignore (Cluster.invoke_sync c ~client:0 (Printf.sprintf "put k%d v%d" i i))
  done;
  Replica.corrupt_state (Cluster.replica c 2);
  Replica.force_recovery (Cluster.replica c 2);
  (* sustain load so the recovery request is ordered and checkpoints advance *)
  let i = ref 20 in
  let recovered =
    Cluster.run_until ~timeout_us:60_000_000.0 c (fun () ->
        if not (Client.busy (Cluster.client c 0)) then begin
          incr i;
          Client.invoke (Cluster.client c 0)
            ~op:(Printf.sprintf "put k%d v%d" !i !i)
            (fun ~result:_ ~latency_us:_ -> ())
        end;
        not (Replica.is_recovering (Cluster.replica c 2)))
  in
  Alcotest.(check bool) "recovery completed" true recovered;
  Alcotest.(check int) "counted" 1 (Replica.counters (Cluster.replica c 2)).Replica.n_recoveries;
  (* drain and verify the repaired replica converges with the others *)
  ignore (Cluster.run_until ~timeout_us:5_000_000.0 c (fun () -> not (Client.busy (Cluster.client c 0))));
  ignore (Cluster.invoke_sync ~timeout_us:30_000_000.0 c ~client:0 "put last one");
  ignore (Cluster.run_until ~timeout_us:10_000_000.0 c (fun () ->
      Replica.last_executed (Cluster.replica c 2) >= Replica.committed_upto (Cluster.replica c 0)));
  Alcotest.(check bool) "state repaired" true (all_equal_states c [ 0; 2 ])

let test_corrupt_state_rejected_loudly () =
  (* regression: [Replica.corrupt_state] used to swallow a validating
     service's restore failure ([try ... with _ -> ()]); it now routes the
     trashed image through the hardened restore path so the rejection is
     counted ([snapshot_rejected]) instead of silently ignored, and recovery
     still repairs the node via state transfer *)
  let cfg = Config.make ~checkpoint_interval:8 ~f:1 () in
  let reg = Bft_obs.Obs.registry () in
  let c =
    Cluster.create ~seed:42L
      ~service:(fun () -> Bft_sm.Kv_service.create ~paged:64 ())
      ~num_clients:1 ~obs:reg cfg
  in
  for i = 1 to 20 do
    ignore (Cluster.invoke_sync c ~client:0 (Printf.sprintf "put k%d v%d" i i))
  done;
  let rejections () = Bft_obs.Obs.snapshot_rejections (Bft_obs.Obs.for_node reg 2) in
  Alcotest.(check int) "no rejection before corruption" 0 (rejections ());
  Replica.corrupt_state (Cluster.replica c 2);
  Alcotest.(check bool) "rejection counted" true (rejections () >= 1);
  Replica.force_recovery (Cluster.replica c 2);
  let i = ref 20 in
  let recovered =
    Cluster.run_until ~timeout_us:60_000_000.0 c (fun () ->
        if not (Client.busy (Cluster.client c 0)) then begin
          incr i;
          Client.invoke (Cluster.client c 0)
            ~op:(Printf.sprintf "put k%d v%d" !i !i)
            (fun ~result:_ ~latency_us:_ -> ())
        end;
        not (Replica.is_recovering (Cluster.replica c 2)))
  in
  Alcotest.(check bool) "recovery completed" true recovered;
  Alcotest.(check bool) "fetched repaired state" true
    ((Replica.counters (Cluster.replica c 2)).Replica.n_state_transfers >= 1);
  ignore (Cluster.run_until ~timeout_us:5_000_000.0 c (fun () -> not (Client.busy (Cluster.client c 0))));
  ignore (Cluster.invoke_sync ~timeout_us:30_000_000.0 c ~client:0 "put last one");
  ignore (Cluster.run_until ~timeout_us:10_000_000.0 c (fun () ->
      Replica.last_executed (Cluster.replica c 2) >= Replica.committed_upto (Cluster.replica c 0)));
  Alcotest.(check bool) "state repaired" true (all_equal_states c [ 0; 2 ])

let test_recovery_of_healthy_replica_harmless () =
  (* proactive recovery of a non-faulty replica must not disturb safety or
     drop its state (Section 4.1) *)
  let _, c = make ~k:8 ~service:counter () in
  for _ = 1 to 10 do
    ignore (Cluster.invoke_sync c ~client:0 "inc")
  done;
  Replica.force_recovery (Cluster.replica c 1);
  let n = ref 10 in
  let recovered =
    Cluster.run_until ~timeout_us:60_000_000.0 c (fun () ->
        if not (Client.busy (Cluster.client c 0)) then begin
          incr n;
          Client.invoke (Cluster.client c 0) ~op:"inc" (fun ~result:_ ~latency_us:_ -> ())
        end;
        not (Replica.is_recovering (Cluster.replica c 1)))
  in
  Alcotest.(check bool) "recovered" true recovered;
  ignore (Cluster.run_until ~timeout_us:5_000_000.0 c (fun () -> not (Client.busy (Cluster.client c 0))));
  let v = Cluster.invoke_sync ~timeout_us:30_000_000.0 c ~client:0 "get" in
  Alcotest.(check bool) "no lost increments" true (int_of_string v > 10);
  Alcotest.(check bool) "consistent" true (Cluster.committed_histories_consistent c)

(* --- load behaviour: batching, window, fairness --- *)

let test_batching_aggregates_under_load () =
  (* with a window of 1, concurrent requests must accumulate at the primary
     and be batched (Section 5.1.4) *)
  let cfg = Config.make ~window:1 ~f:1 () in
  let c = Cluster.create ~seed:7L ~num_clients:12 cfg in
  let completed = ref 0 in
  let rec pump k ~result:_ ~latency_us:_ =
    incr completed;
    if !completed < 240 then
      Client.invoke (Cluster.client c k) ~op:(null_op ()) (pump k)
  in
  for k = 0 to 11 do
    Client.invoke (Cluster.client c k) ~op:(null_op ()) (pump k)
  done;
  ignore (Cluster.run_until ~timeout_us:30_000_000.0 c (fun () -> !completed >= 240));
  let counters = Replica.counters (Cluster.replica c 0) in
  let avg = float_of_int counters.Replica.n_executed /. float_of_int counters.Replica.n_batches in
  Alcotest.(check bool) (Printf.sprintf "avg batch %.1f > 2" avg) true (avg > 2.0)

let test_no_batching_means_singleton_batches () =
  let cfg = Config.make ~batching:false ~f:1 () in
  let c = Cluster.create ~seed:7L ~num_clients:6 cfg in
  let completed = ref 0 in
  let rec pump k ~result:_ ~latency_us:_ =
    incr completed;
    if !completed < 60 then Client.invoke (Cluster.client c k) ~op:(null_op ()) (pump k)
  in
  for k = 0 to 5 do
    Client.invoke (Cluster.client c k) ~op:(null_op ()) (pump k)
  done;
  ignore (Cluster.run_until ~timeout_us:30_000_000.0 c (fun () -> !completed >= 60));
  let counters = Replica.counters (Cluster.replica c 0) in
  Alcotest.(check int) "one request per batch" counters.Replica.n_executed
    counters.Replica.n_batches

let test_fairness_no_client_starves () =
  (* FIFO scheduling at the primary (Section 5.5): all clients make steady
     progress under sustained contention *)
  let _, c = make ~service:counter ~clients:4 () in
  let per_client = Array.make 4 0 in
  let rec pump k ~result:_ ~latency_us:_ =
    per_client.(k) <- per_client.(k) + 1;
    Client.invoke (Cluster.client c k) ~op:"inc" (pump k)
  in
  for k = 0 to 3 do
    Client.invoke (Cluster.client c k) ~op:"inc" (pump k)
  done;
  Cluster.run ~timeout_us:200_000.0 c;
  Array.iteri
    (fun k n ->
      Alcotest.(check bool) (Printf.sprintf "client %d progressed (%d)" k n) true (n >= 10))
    per_client;
  let mn = Array.fold_left min max_int per_client
  and mx = Array.fold_left max 0 per_client in
  Alcotest.(check bool)
    (Printf.sprintf "balanced %d..%d" mn mx)
    true
    (float_of_int mn >= 0.5 *. float_of_int mx)

let test_read_only_with_crashed_replica () =
  (* 2f+1 matching read-only replies still assemble with one replica down *)
  let _, c = make ~service:kv () in
  ignore (Cluster.invoke_sync c ~client:0 "put k v");
  Bft_net.Network.crash (Cluster.network c) ~id:2;
  Alcotest.(check string) "ro with 3/4 replicas" "v"
    (Cluster.invoke_sync ~timeout_us:20_000_000.0 c ~client:0 ~read_only:true "get k")

let test_client_single_outstanding () =
  let _, c = make () in
  Client.invoke (Cluster.client c 0) ~op:(null_op ()) (fun ~result:_ ~latency_us:_ -> ());
  Alcotest.check_raises "second invoke rejected"
    (Invalid_argument "Client.invoke: request already outstanding") (fun () ->
      Client.invoke (Cluster.client c 0) ~op:(null_op ()) (fun ~result:_ ~latency_us:_ -> ()));
  Cluster.run ~timeout_us:100_000.0 c

(* --- linearizability --- *)

let check_lin name c service =
  match Cluster.check_linearizable c ~service with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" name e

let test_linearizable_counter_basic () =
  let _, c = make ~service:counter ~clients:3 () in
  let pending = ref 0 in
  for _round = 1 to 10 do
    for k = 0 to 2 do
      incr pending;
      Client.invoke (Cluster.client c k) ~op:"inc" (fun ~result:_ ~latency_us:_ -> decr pending)
    done;
    ignore (Cluster.run_until ~timeout_us:5_000_000.0 c (fun () -> !pending = 0))
  done;
  check_lin "counter" c counter

let test_linearizable_under_loss () =
  let _, c = make ~service:counter () in
  Bft_net.Network.set_loss_rate (Cluster.network c) 0.1;
  Bft_net.Network.set_jitter_us (Cluster.network c) 200.0;
  for _ = 1 to 15 do
    ignore (Cluster.invoke_sync ~timeout_us:30_000_000.0 c ~client:0 "inc")
  done;
  check_lin "counter under loss" c counter

let test_linearizable_across_view_change () =
  let _, c = make ~service:kv () in
  for i = 1 to 5 do
    ignore (Cluster.invoke_sync c ~client:0 (Printf.sprintf "put k%d v%d" i i))
  done;
  Replica.mute (Cluster.replica c 0) true;
  for i = 6 to 10 do
    ignore (Cluster.invoke_sync ~timeout_us:30_000_000.0 c ~client:0 (Printf.sprintf "put k%d v%d" i i))
  done;
  (* replica 0 muted: check against replica 1's history instead is not
     supported; unmute and let 0 catch up first *)
  Replica.mute (Cluster.replica c 0) false;
  ignore (Cluster.run_until ~timeout_us:10_000_000.0 c (fun () ->
      Replica.committed_upto (Cluster.replica c 0) >= Replica.committed_upto (Cluster.replica c 1)));
  check_lin "kv across view change" c kv

let test_linearizable_mixed_ops () =
  let _, c = make ~service:kv ~clients:2 () in
  let script =
    [ (0, "put a 1"); (1, "put b 2"); (0, "cas a 1 3"); (1, "cas a 1 9"); (0, "del b");
      (1, "put a 4"); (0, "get a"); (1, "size") ]
  in
  List.iter (fun (k, op) -> ignore (Cluster.invoke_sync c ~client:k op)) script;
  check_lin "kv mixed" c kv

(* --- linearizability-flavoured randomized check --- *)

let prop_random_faults_keep_histories_consistent =
  QCheck.Test.make ~name:"random faults preserve agreement" ~count:8
    QCheck.(pair (int_range 0 10_000) (int_range 0 2))
    (fun (seed, victim_kind) ->
      let cfg = Config.make ~f:1 ~checkpoint_interval:8 ~vc_timeout_us:30_000.0 () in
      let c =
        Cluster.create ~seed:(Int64.of_int (seed + 1)) ~service:counter ~num_clients:2 cfg
      in
      Bft_net.Network.set_loss_rate (Cluster.network c) 0.05;
      (match victim_kind with
      | 0 -> Bft_net.Network.crash (Cluster.network c) ~id:3
      | 1 ->
          Replica.byzantine_equivocate (Cluster.replica c 0) true;
          Cluster.correct_replicas c := [ 1; 2; 3 ]
      | _ -> Replica.mute (Cluster.replica c 1) true);
      (match victim_kind with
      | 0 -> Cluster.correct_replicas c := [ 0; 1; 2 ]
      | 1 -> ()
      | _ -> Cluster.correct_replicas c := [ 0; 2; 3 ]);
      let completed = ref 0 in
      for _ = 1 to 6 do
        match
          Cluster.invoke_sync ~timeout_us:60_000_000.0 c ~client:0 "inc"
        with
        | _ -> incr completed
        | exception Failure _ -> ()
      done;
      !completed >= 1 && Cluster.committed_histories_consistent c)

let suites =
  [
    ( "integration.normal",
      [
        Alcotest.test_case "single request" `Quick test_single_request;
        Alcotest.test_case "request sequence" `Quick test_sequence_of_requests;
        Alcotest.test_case "concurrent clients" `Quick test_multiple_clients_interleaved;
        Alcotest.test_case "exactly-once (dup)" `Quick test_exactly_once_under_duplication;
        Alcotest.test_case "exactly-once (loss)" `Slow test_exactly_once_under_loss;
        Alcotest.test_case "separate request transmission" `Quick test_large_argument_separate_transmission;
        Alcotest.test_case "digest replies" `Quick test_large_result_digest_replies;
        Alcotest.test_case "digest replies save bytes" `Quick test_digest_replies_save_bytes;
        Alcotest.test_case "read-only reads writes" `Quick test_read_only_sees_committed_writes;
        Alcotest.test_case "read-only mutation rejected" `Quick test_read_only_mutation_rejected;
        Alcotest.test_case "access control" `Quick test_access_control;
        Alcotest.test_case "access revocation" `Quick test_access_revocation_consistent;
        Alcotest.test_case "agreed non-determinism" `Quick test_nondeterminism_agreed;
        Alcotest.test_case "checkpoint GC" `Quick test_checkpoint_stability_and_gc;
        Alcotest.test_case "f=2 cluster" `Quick test_f2_cluster;
        Alcotest.test_case "BFT-PK mode" `Slow test_bft_pk_mode;
        Alcotest.test_case "no tentative execution" `Quick test_no_tentative_execution_mode;
        Alcotest.test_case "no batching" `Quick test_no_batching_mode;
      ] );
    ( "integration.faults",
      [
        Alcotest.test_case "f crashed backups" `Quick test_tolerates_f_crashed_backups;
        Alcotest.test_case "crashed primary" `Quick test_view_change_on_crashed_primary;
        Alcotest.test_case "muted primary rejoins" `Quick test_view_change_muted_primary;
        Alcotest.test_case "successive view changes" `Slow test_successive_view_changes;
        Alcotest.test_case "view change preserves commits" `Quick test_view_change_preserves_committed;
        Alcotest.test_case "byzantine primary safety" `Slow test_byzantine_primary_safety;
        Alcotest.test_case "byzantine primary view change" `Slow
          test_byzantine_primary_view_change_linearizable;
        Alcotest.test_case "byzantine client" `Quick test_byzantine_client_partial_auth;
        Alcotest.test_case "forged signature rejected" `Quick test_forged_signature_rejected;
        Alcotest.test_case "partition then heal" `Slow test_partition_blocks_then_heals;
      ] );
    ( "integration.load",
      [
        Alcotest.test_case "batching aggregates" `Quick test_batching_aggregates_under_load;
        Alcotest.test_case "no-batching singletons" `Quick test_no_batching_means_singleton_batches;
        Alcotest.test_case "fairness" `Quick test_fairness_no_client_starves;
        Alcotest.test_case "read-only with crash" `Quick test_read_only_with_crashed_replica;
        Alcotest.test_case "single outstanding" `Quick test_client_single_outstanding;
      ] );
    ( "integration.linearizability",
      [
        Alcotest.test_case "counter basic" `Quick test_linearizable_counter_basic;
        Alcotest.test_case "under loss" `Quick test_linearizable_under_loss;
        Alcotest.test_case "across view change" `Quick test_linearizable_across_view_change;
        Alcotest.test_case "mixed kv ops" `Quick test_linearizable_mixed_ops;
      ] );
    ( "integration.recovery",
      [
        Alcotest.test_case "state transfer" `Quick test_lagging_replica_state_transfer;
        Alcotest.test_case "recover corrupt replica" `Slow test_recovery_of_corrupt_replica;
        Alcotest.test_case "corrupt snapshot rejected loudly" `Slow test_corrupt_state_rejected_loudly;
        Alcotest.test_case "recover healthy replica" `Slow test_recovery_of_healthy_replica_harmless;
        QCheck_alcotest.to_alcotest prop_random_faults_keep_histories_consistent;
      ] );
  ]

(* Client cohorts and adaptive batching: the pairwise cohort must be
   event-for-event identical to the per-client driver it replaced, derived
   cohorts must commit their workload through group-derived keys, and the
   adaptive batch sizer must stay deterministic (and invisible when off). *)

open Bft_check
module Obs = Bft_obs.Obs
module Hist = Bft_obs.Hist
module Keychain = Bft_crypto.Keychain

let params ?(seed = 1) ?(clients = 2) ?(ops = 10) () =
  { (Runner.default_params ~seed ~f:1) with Runner.clients; ops_per_client = ops }

let clean_run ?obs p =
  let r = Runner.run_schedule ?obs p [] in
  if r.Runner.failures <> [] then
    Alcotest.failf "oracles failed: %s" (String.concat "; " r.Runner.failures);
  r

(* --- pairwise equivalence --- *)

let test_pairwise_spec_matches_default () =
  (* an explicit pairwise spec and the default driver are the same code
     path by construction; this pins them together against future drift *)
  let base = clean_run (params ~seed:7 ~clients:3 ~ops:6 ()) in
  let spec = Cohort.default_closed ~k:3 ~ops_per_client:6 in
  let cohorted =
    clean_run { (params ~seed:7 ~clients:3 ~ops:6 ()) with Runner.cohort = Some spec }
  in
  Alcotest.(check string)
    "identical committed-history digest" base.Runner.history_digest
    cohorted.Runner.history_digest;
  Alcotest.(check int) "identical op count" base.Runner.completed_ops
    cohorted.Runner.completed_ops

let test_pairwise_rejects_oversized_k () =
  let p =
    {
      (params ~clients:2 ())
      with
      Runner.cohort = Some (Cohort.default_closed ~k:64 ~ops_per_client:1);
    }
  in
  Alcotest.check_raises "k beyond real clients"
    (Invalid_argument "Cohort.drive: pairwise cohort needs k real clients") (fun () ->
      ignore (Runner.run_schedule p []))

let test_pairwise_rejects_open_loop () =
  let spec =
    { Cohort.k = 2; arrival = Open { rate_per_sec = 1000.0; total_ops = 10 }; keys = Pairwise }
  in
  Alcotest.check_raises "open loop needs derived keys"
    (Invalid_argument
       "Cohort.drive: open-loop arrivals need derived keys (a real client admits one \
        outstanding request)") (fun () ->
      ignore (Runner.run_schedule { (params ()) with Runner.cohort = Some spec } []))

(* --- derived cohorts --- *)

let test_derived_closed_completes () =
  let spec =
    {
      Cohort.k = 8;
      arrival = Closed { think_us = 100.0; ops_per_client = 5 };
      keys = Derived;
    }
  in
  let r = clean_run { (params ~seed:3 ()) with Runner.cohort = Some spec } in
  Alcotest.(check int) "all 40 synthesized ops commit" 40 r.Runner.completed_ops

let test_derived_open_loop_completes () =
  (* 300 arrivals round-robin over 1000 synthesized clients: every client
     issues at most one op, so no same-client reordering can orphan any *)
  let spec =
    {
      Cohort.k = 1000;
      arrival = Open { rate_per_sec = 20_000.0; total_ops = 300 };
      keys = Derived;
    }
  in
  let r = clean_run { (params ~seed:5 ()) with Runner.cohort = Some spec } in
  Alcotest.(check int) "all 300 open-loop ops commit" 300 r.Runner.completed_ops

let test_derived_bursty_completes () =
  let spec =
    {
      Cohort.k = 500;
      arrival =
        Bursty
          {
            base_per_sec = 2_000.0;
            peak_per_sec = 40_000.0;
            period_us = 10_000.0;
            total_ops = 200;
          };
      keys = Derived;
    }
  in
  let r = clean_run { (params ~seed:9 ()) with Runner.cohort = Some spec } in
  Alcotest.(check int) "all 200 bursty ops commit" 200 r.Runner.completed_ops

let test_derived_deterministic () =
  let spec =
    {
      Cohort.k = 64;
      arrival = Open { rate_per_sec = 10_000.0; total_ops = 100 };
      keys = Derived;
    }
  in
  let run () =
    clean_run { (params ~seed:11 ()) with Runner.cohort = Some spec }
  in
  let a = run () and b = run () in
  Alcotest.(check string) "same digest on same seed" a.Runner.history_digest
    b.Runner.history_digest

let test_derived_rejects_sig_auth () =
  (* derived cohorts synthesize MAC authenticators; there is no way to
     stand in for per-client signing keys *)
  let cluster =
    Bft_core.Cluster.create
      (Bft_core.Config.make ~auth_mode:Bft_core.Config.Sig_auth ~f:1 ())
  in
  let spec =
    { Cohort.k = 4; arrival = Closed { think_us = 100.0; ops_per_client = 1 }; keys = Derived }
  in
  Alcotest.check_raises "derived needs Mac_auth"
    (Invalid_argument "Cohort.drive: derived cohorts require Mac_auth") (fun () ->
      ignore
        (Cohort.drive cluster spec ~on_complete:(fun ~client:_ ~op:_ ~result:_ -> ())))

(* --- qcheck: cohort-vs-k-clients op counts --- *)

let prop_op_counts =
  QCheck.Test.make ~count:4 ~name:"derived cohort commits k*ops like k real clients"
    QCheck.(pair (int_range 1 3) (int_range 1 4))
    (fun (k, ops) ->
      let pairwise = clean_run (params ~seed:(13 + k) ~clients:k ~ops ()) in
      let spec =
        {
          Cohort.k;
          arrival = Closed { think_us = 100.0; ops_per_client = ops };
          keys = Derived;
        }
      in
      let derived =
        clean_run { (params ~seed:(13 + k) ()) with Runner.cohort = Some spec }
      in
      pairwise.Runner.completed_ops = k * ops
      && derived.Runner.completed_ops = k * ops
      && derived.Runner.total_ops = Cohort.total_ops spec)

let prop_arrival_roundtrip =
  let gen =
    QCheck.Gen.(
      oneof
        [
          map2
            (fun t o -> Cohort.Closed { think_us = float_of_int t; ops_per_client = o })
            (int_range 0 10_000) (int_range 0 1000);
          map2
            (fun r o -> Cohort.Open { rate_per_sec = float_of_int r; total_ops = o })
            (int_range 1 1_000_000) (int_range 0 1000);
          map
            (fun (b, p, per, o) ->
              Cohort.Bursty
                {
                  base_per_sec = float_of_int b;
                  peak_per_sec = float_of_int (b + p);
                  period_us = float_of_int per;
                  total_ops = o;
                })
            (quad (int_range 1 100_000) (int_range 0 100_000) (int_range 1 1_000_000)
               (int_range 0 1000));
        ])
  in
  QCheck.Test.make ~count:200 ~name:"arrival strings round-trip"
    (QCheck.make ~print:Cohort.arrival_to_string gen)
    (fun a -> Cohort.parse_arrival (Cohort.arrival_to_string a) = Ok a)

(* --- adaptive batching --- *)

let test_adaptive_deterministic_and_safe () =
  (* a real generated fault schedule, twice, with the sizer on: identical
     digests and clean oracles *)
  let p =
    { (params ~seed:21 ~clients:3 ~ops:8 ()) with Runner.adaptive_batch = true }
  in
  let sched = Runner.generate p in
  let a = Runner.run_schedule p sched and b = Runner.run_schedule p sched in
  if a.Runner.failures <> [] then
    Alcotest.failf "oracles failed under adaptive batching: %s"
      (String.concat "; " a.Runner.failures);
  Alcotest.(check string) "adaptive batching is deterministic" a.Runner.history_digest
    b.Runner.history_digest

let test_adaptive_off_is_identity () =
  (* the flag default must leave the classic path untouched (the pinned
     golden digests in the fuzz suite enforce the absolute values; this
     checks the field plumbing specifically) *)
  let base = clean_run (params ~seed:2 ()) in
  let off = clean_run { (params ~seed:2 ()) with Runner.adaptive_batch = false } in
  Alcotest.(check string) "off = default" base.Runner.history_digest
    off.Runner.history_digest

let test_adaptive_feeds_occupancy_hist () =
  let obs = Obs.registry () in
  let spec =
    {
      Cohort.k = 256;
      arrival = Open { rate_per_sec = 50_000.0; total_ops = 200 };
      keys = Derived;
    }
  in
  let _ =
    clean_run ~obs
      { (params ~seed:4 ()) with Runner.cohort = Some spec; adaptive_batch = true }
  in
  let batches =
    List.fold_left
      (fun acc (_, o) -> acc + Hist.count (Obs.batch_occupancy_hist o))
      0 (Obs.nodes obs)
  in
  Alcotest.(check bool)
    (Printf.sprintf "batch occupancy recorded (%d)" batches)
    true (batches > 0)

let test_group_derivations_observed () =
  (* replicas must actually use on-demand group derivation for cohort
     clients (not pairwise keys, which do not exist for them) *)
  let spec =
    { Cohort.k = 16; arrival = Closed { think_us = 100.0; ops_per_client = 2 }; keys = Derived }
  in
  let p = { (params ~seed:6 ()) with Runner.cohort = Some spec } in
  let lv = Runner.prepare p [] in
  ignore
    (Bft_core.Cluster.run_until ~timeout_us:1_000_000.0 lv.Runner.lv_cluster (fun () ->
         !(lv.Runner.lv_n_completed) >= lv.Runner.lv_total_ops));
  let r = Runner.finish lv in
  if r.Runner.failures <> [] then
    Alcotest.failf "oracles failed: %s" (String.concat "; " r.Runner.failures);
  Alcotest.(check int) "workload committed" 32 r.Runner.completed_ops;
  let g =
    match Keychain.group_of (Bft_core.Replica.keychain (Bft_core.Cluster.replica lv.Runner.lv_cluster 0)) with
    | Some g -> g
    | None -> Alcotest.fail "no group installed on replica 0"
  in
  Alcotest.(check bool)
    (Printf.sprintf "on-demand derivations happened (%d)" (Keychain.group_derivations g))
    true
    (Keychain.group_derivations g > 0)

let suites =
  [
    ( "cohort",
      [
        Alcotest.test_case "pairwise spec = default driver" `Quick
          test_pairwise_spec_matches_default;
        Alcotest.test_case "pairwise k bound" `Quick test_pairwise_rejects_oversized_k;
        Alcotest.test_case "pairwise open-loop rejected" `Quick
          test_pairwise_rejects_open_loop;
        Alcotest.test_case "derived closed loop" `Quick test_derived_closed_completes;
        Alcotest.test_case "derived open loop" `Quick test_derived_open_loop_completes;
        Alcotest.test_case "derived bursty" `Quick test_derived_bursty_completes;
        Alcotest.test_case "derived deterministic" `Quick test_derived_deterministic;
        Alcotest.test_case "derived rejects signatures" `Quick
          test_derived_rejects_sig_auth;
        Alcotest.test_case "group derivations observed" `Quick
          test_group_derivations_observed;
        QCheck_alcotest.to_alcotest prop_op_counts;
        QCheck_alcotest.to_alcotest prop_arrival_roundtrip;
      ] );
    ( "adaptive-batch",
      [
        Alcotest.test_case "deterministic and safe" `Quick
          test_adaptive_deterministic_and_safe;
        Alcotest.test_case "off is identity" `Quick test_adaptive_off_is_identity;
        Alcotest.test_case "occupancy histogram" `Quick test_adaptive_feeds_occupancy_hist;
      ] );
  ]

(* Tests for the bft_obs tracing/metrics layer and for the bugs it exposed:
   - ring-buffer wraparound and histogram bucketing
   - trace inertness: enabling tracing never changes protocol behaviour
     (pinned fuzz-seed committed-history digests are byte-identical), and
     the disabled sink records nothing
   - regression tests for the client retransmission bugs (unbounded
     exponential backoff; replies discarded on retransmit) and for the
     result-returning Fs.restore / invoke_sync APIs. *)

module Engine = Bft_sim.Engine
module Network = Bft_net.Network
module Obs = Bft_obs.Obs
module Hist = Bft_obs.Hist
module Ring = Bft_obs.Ring
module Runner = Bft_check.Runner
open Bft_core

(* ------------------------------------------------------------------ *)
(* Ring                                                                *)
(* ------------------------------------------------------------------ *)

let test_ring_wraparound () =
  let r = Ring.create 8 in
  Alcotest.(check int) "empty length" 0 (Ring.length r);
  for i = 0 to 19 do
    Ring.push r i
  done;
  Alcotest.(check int) "length capped at capacity" 8 (Ring.length r);
  Alcotest.(check int) "total counts overwritten pushes" 20 (Ring.total r);
  Alcotest.(check (list int)) "holds most recent, oldest first"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (Ring.to_list r);
  Ring.clear r;
  Alcotest.(check int) "cleared" 0 (Ring.length r);
  Alcotest.(check (list int)) "cleared list" [] (Ring.to_list r)

let test_ring_partial () =
  let r = Ring.create 8 in
  Ring.push r 1;
  Ring.push r 2;
  Ring.push r 3;
  Alcotest.(check int) "partial length" 3 (Ring.length r);
  Alcotest.(check (list int)) "partial order" [ 1; 2; 3 ] (Ring.to_list r)

(* ------------------------------------------------------------------ *)
(* Hist                                                                *)
(* ------------------------------------------------------------------ *)

let test_hist_buckets () =
  Alcotest.(check int) "sub-us in bucket 0" 0 (Hist.bucket_index 0.5);
  Alcotest.(check int) "1us starts bucket 1" 1 (Hist.bucket_index 1.0);
  Alcotest.(check int) "1.9us still bucket 1" 1 (Hist.bucket_index 1.9);
  Alcotest.(check int) "2us starts bucket 2" 2 (Hist.bucket_index 2.0);
  Alcotest.(check int) "1000us" 10 (Hist.bucket_index 1000.0);
  Alcotest.(check int) "huge values land in the last bucket"
    (Hist.num_buckets - 1)
    (Hist.bucket_index 1.0e30)

let test_hist_stats () =
  let h = Hist.create () in
  Alcotest.(check (float 0.0)) "empty mean" 0.0 (Hist.mean_us h);
  Alcotest.(check (float 0.0)) "empty percentile" 0.0 (Hist.percentile_us h 0.99);
  List.iter (Hist.add h) [ 10.0; 20.0; 30.0; 40.0 ];
  Alcotest.(check int) "count" 4 (Hist.count h);
  Alcotest.(check (float 1e-6)) "mean" 25.0 (Hist.mean_us h);
  Alcotest.(check (float 1e-6)) "max exact" 40.0 (Hist.max_us h);
  (* p50 of {10,20,30,40}: crosses in the bucket of 20 (16,32] -> upper 32 *)
  Alcotest.(check (float 1e-6)) "p50 bucket upper" 32.0 (Hist.percentile_us h 0.5);
  (* the top bucket reports the exact max, not the bucket bound *)
  Alcotest.(check (float 1e-6)) "p99 capped at max" 40.0 (Hist.percentile_us h 0.99)

let test_hist_merge () =
  let a = Hist.create () and b = Hist.create () in
  List.iter (Hist.add a) [ 1.0; 2.0 ];
  List.iter (Hist.add b) [ 100.0; 200.0 ];
  Hist.merge_into a b;
  Alcotest.(check int) "merged count" 4 (Hist.count a);
  Alcotest.(check (float 1e-6)) "merged mean" 75.75 (Hist.mean_us a);
  Alcotest.(check (float 1e-6)) "merged max" 200.0 (Hist.max_us a);
  Alcotest.(check int) "src untouched" 2 (Hist.count b)

(* ------------------------------------------------------------------ *)
(* Trace inertness                                                     *)
(* ------------------------------------------------------------------ *)

(* The digests pinned in test_hotpath.ml: tracing must not perturb them. *)
let golden_seed_1 = "43c8b1c432b84d0dd523fa7c9a137e15a0f978c4a8534b528625884e84e50676"

let traced_and_plain seed =
  let params = Runner.default_params ~seed ~f:1 in
  let sched = Runner.generate params in
  let plain = Runner.run_schedule params sched in
  let reg = Obs.registry () in
  let traced = Runner.run_schedule ~obs:reg params sched in
  (plain, traced, reg)

let test_inert_pinned_seeds () =
  List.iter
    (fun seed ->
      let plain, traced, reg = traced_and_plain seed in
      Alcotest.(check string)
        (Printf.sprintf "seed %d: digest identical with tracing on" seed)
        plain.Runner.history_digest traced.Runner.history_digest;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: completions identical" seed)
        plain.Runner.completed_ops traced.Runner.completed_ops;
      (* the traced run actually recorded something *)
      let o = Obs.for_node reg 0 in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: replica 0 trace non-empty" seed)
        true
        (Obs.events o <> []))
    [ 1; 2; 3; 46 ];
  let plain, _, _ = traced_and_plain 1 in
  Alcotest.(check string) "seed 1 matches the pinned golden digest" golden_seed_1
    plain.Runner.history_digest

let prop_inert_random_seeds =
  QCheck.Test.make ~name:"tracing is inert (random seeds)" ~count:6
    QCheck.(int_range 100 10_000)
    (fun seed ->
      let plain, traced, _ = traced_and_plain seed in
      String.equal plain.Runner.history_digest traced.Runner.history_digest
      && plain.Runner.completed_ops = traced.Runner.completed_ops
      && plain.Runner.view_changes = traced.Runner.view_changes)

let test_null_sink_records_nothing () =
  let o = Obs.null in
  Alcotest.(check bool) "disabled" false (Obs.enabled o);
  Obs.request_arrival o ~now:1L ~client:4 ~digest:"d";
  Obs.phase o ~now:2L Obs.Preprepared ~view:0 ~seq:1;
  Obs.reply_sent o ~now:3L ~client:4 ~seq:1 ~digest:"d" ~tentative:false;
  Obs.snapshot_rejected o ~reason:"x";
  Alcotest.(check bool) "no events" true (Obs.events o = []);
  Alcotest.(check int) "no samples" 0 (Hist.count (Obs.e2e_hist o));
  Alcotest.(check int) "no rejections" 0 (Obs.snapshot_rejections o)

(* ------------------------------------------------------------------ *)
(* Bug regression: unbounded client backoff                            *)
(* ------------------------------------------------------------------ *)

(* With every replica crashed, the client's retransmission delay must
   plateau at [client_retry_max_us] instead of doubling forever: the old
   [2.0 ** retries] overflowed to infinity, after which the client never
   retried again and the request hung even once the replicas came back. *)
let test_bounded_backoff () =
  let cfg = Config.make ~f:1 ~client_retry_us:1.0 ~client_retry_max_us:50.0 () in
  let cluster = Cluster.create ~seed:5L cfg in
  let net = Cluster.network cluster in
  List.iter (fun i -> Network.crash net ~id:i) (Config.replica_ids cfg);
  let cl = Cluster.client cluster 0 in
  let result = ref None in
  Client.invoke cl ~op:"hello" (fun ~result:r ~latency_us:_ -> result := Some r);
  ignore (Cluster.run_until ~timeout_us:10_000.0 cluster (fun () -> !result <> None));
  Alcotest.(check bool) "still pending while replicas are down" true (!result = None);
  (* 10ms of virtual time at a 50us delay cap: ~200 retries. The uncapped
     code manages ~13 (the sum of doubling delays exhausts the window). *)
  Alcotest.(check bool)
    (Printf.sprintf "retransmissions kept flowing (%d)" (Client.retransmissions cl))
    true
    (Client.retransmissions cl > 100);
  List.iter (fun i -> Network.restart net ~id:i) (Config.replica_ids cfg);
  Alcotest.(check bool) "completes after replicas return" true
    (Cluster.run_until ~timeout_us:1_000_000.0 cluster (fun () -> !result <> None))

(* ------------------------------------------------------------------ *)
(* Bug regression: replies discarded on retransmission                 *)
(* ------------------------------------------------------------------ *)

(* An adversary lets only replica 0's reply through at first, then only
   replica 1's. No single round ever delivers the f+1 = 2 matching replies
   a weak certificate needs, so completion requires combining replies
   collected across retransmissions — the old client reset its reply set
   on every retransmission and could never finish under this schedule. *)
let test_replies_survive_retransmit () =
  let cfg =
    Config.make ~f:1 ~tentative_execution:false ~digest_replies:false
      ~client_retry_us:1000.0 ()
  in
  let cluster = Cluster.create ~seed:9L cfg in
  let net = Cluster.network cluster in
  let engine = Cluster.engine cluster in
  let client_id = cfg.Config.n in
  let cutover = Engine.of_us_float 1500.0 in
  Network.set_adversary net (fun ~src ~dst msg ->
      match msg.Message.body with
      | Message.Reply _ when dst = client_id ->
          let keep = if Int64.compare (Engine.now engine) cutover < 0 then 0 else 1 in
          if src = keep then `Pass else `Drop
      | _ -> `Pass);
  let cl = Cluster.client cluster 0 in
  let result = ref None in
  Client.invoke cl ~op:"put k v" (fun ~result:r ~latency_us:_ -> result := Some r);
  Alcotest.(check bool) "completes by combining replies across retransmissions" true
    (Cluster.run_until ~timeout_us:60_000.0 cluster (fun () -> !result <> None));
  Alcotest.(check bool)
    (Printf.sprintf "few retransmissions needed (%d)" (Client.retransmissions cl))
    true
    (Client.retransmissions cl <= 5)

(* ------------------------------------------------------------------ *)
(* Bug regression: restore and invoke_sync return results              *)
(* ------------------------------------------------------------------ *)

let test_fs_restore_atomic () =
  let fs = Bft_bfs.Fs.create () in
  (match Bft_bfs.Fs.mkdir fs ~dir:Bft_bfs.Fs.root ~name:"d" ~mtime:7L with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "mkdir");
  let snap = Bft_bfs.Fs.snapshot fs in
  (match Bft_bfs.Fs.restore fs "total garbage" with
  | Ok () -> Alcotest.fail "malformed snapshot accepted"
  | Error msg ->
      Alcotest.(check bool) "error names the stage" true
        (String.length msg > 0));
  Alcotest.(check string) "image untouched after failed restore" snap
    (Bft_bfs.Fs.snapshot fs);
  (* a half-valid snapshot (good header, bad line) must also leave the
     image untouched, not partially applied *)
  let truncated = snap ^ "inode \xff\n" in
  (match Bft_bfs.Fs.restore fs truncated with
  | Ok () -> Alcotest.fail "corrupt tail accepted"
  | Error _ -> ());
  Alcotest.(check string) "image untouched after corrupt tail" snap
    (Bft_bfs.Fs.snapshot fs)

let test_service_counts_rejected_snapshots () =
  let reg = Obs.registry () in
  let o = Obs.for_node reg 0 in
  let s = Bft_bfs.Bfs_service.create ~obs:o () in
  let _ = s.Bft_sm.Service.execute ~client:4 ~op:"mkdir 1 sub" ~nondet:"11" in
  let snap = s.Bft_sm.Service.snapshot () in
  s.Bft_sm.Service.restore "not a snapshot";
  Alcotest.(check int) "rejection counted" 1 (Obs.snapshot_rejections o);
  Alcotest.(check string) "state preserved" snap (s.Bft_sm.Service.snapshot ());
  s.Bft_sm.Service.restore snap;
  Alcotest.(check int) "valid restore not counted" 1 (Obs.snapshot_rejections o)

let test_invoke_sync_timeout_as_result () =
  let reg = Obs.registry () in
  let cfg = Config.make ~f:1 () in
  let cluster = Cluster.create ~seed:3L ~num_clients:2 ~obs:reg cfg in
  let net = Cluster.network cluster in
  List.iter (fun i -> Network.crash net ~id:i) (Config.replica_ids cfg);
  (match Cluster.try_invoke_sync ~timeout_us:2_000.0 cluster ~client:0 "op" with
  | Ok _ -> Alcotest.fail "completed against a crashed cluster"
  | Error msg -> Alcotest.(check bool) "error mentions timeout" true
      (String.length msg > 0));
  let o = Obs.for_node reg cfg.Config.n in
  Alcotest.(check int) "timeout counted in client metrics" 1 (Obs.timeouts o);
  (* the raising wrapper still raises for callers that want that (a fresh
     client: the timed-out request above is still outstanding on client 0) *)
  (match Cluster.invoke_sync ~timeout_us:1_000.0 cluster ~client:1 "op2" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "wrapper did not raise")

let test_baseline_timeout_as_result () =
  let b = Baseline.create ~num_clients:2 () in
  (match Baseline.try_invoke_sync ~timeout_us:0.0 b ~client:0 "x" with
  | Ok _ -> Alcotest.fail "zero-timeout invoke completed"
  | Error _ -> ());
  match Baseline.try_invoke_sync b ~client:1 "y" with
  | Ok (_, latency) ->
      Alcotest.(check bool) "completes normally with a latency" true (latency >= 0.0)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
        Alcotest.test_case "ring partial fill" `Quick test_ring_partial;
        Alcotest.test_case "hist bucket boundaries" `Quick test_hist_buckets;
        Alcotest.test_case "hist stats" `Quick test_hist_stats;
        Alcotest.test_case "hist merge" `Quick test_hist_merge;
        Alcotest.test_case "null sink records nothing" `Quick test_null_sink_records_nothing;
        Alcotest.test_case "tracing inert on pinned seeds" `Slow test_inert_pinned_seeds;
        QCheck_alcotest.to_alcotest prop_inert_random_seeds;
      ] );
    ( "obs bug regressions",
      [
        Alcotest.test_case "client backoff is bounded" `Quick test_bounded_backoff;
        Alcotest.test_case "replies survive retransmission" `Quick
          test_replies_survive_retransmit;
        Alcotest.test_case "Fs.restore is atomic on malformed input" `Quick
          test_fs_restore_atomic;
        Alcotest.test_case "service counts rejected snapshots" `Quick
          test_service_counts_rejected_snapshots;
        Alcotest.test_case "cluster invoke_sync timeout as result" `Quick
          test_invoke_sync_timeout_as_result;
        Alcotest.test_case "baseline invoke_sync timeout as result" `Quick
          test_baseline_timeout_as_result;
      ] );
  ]

(* Hot-path invariants for the encode-once pipeline (PR 2):

   - an envelope's cached wire bytes, size and digest are byte-identical to
     a fresh [Wire.encode] / [Sha256.digest] for every message constructor;
   - the digest/size memo tables never change answers;
   - the heap-based engine counts only live events in [pending_events] while
     preserving the clock semantics of cancelled events;
   - precomputed HMAC midstates produce bit-identical tags;
   - pinned fuzz seeds still produce the exact committed histories recorded
     before the optimization (golden digests). *)

module Engine = Bft_sim.Engine
module Runner = Bft_check.Runner
module Sha256 = Bft_crypto.Sha256
module Hmac = Bft_crypto.Hmac
open Bft_core

let test_cached_envelope_matches_fresh_encode () =
  for seed = 1 to 20 do
    let rng = Bft_util.Rng.create (Int64.of_int (seed * 104729)) in
    for k = 0 to Test_codec.R.n_constructors - 1 do
      let m = Test_codec.R.message rng k in
      (* fresh values with every memo table dropped *)
      Wire.clear_memos ();
      let fresh_bytes = Wire.encode m in
      let fresh_digest = Sha256.digest fresh_bytes in
      let env = Message.envelope ~sender:1 ~auth:Message.Auth_none m in
      let cached = Wire.envelope_bytes env in
      if not (String.equal cached fresh_bytes) then
        Alcotest.failf "constructor %s: cached bytes <> fresh encode" (Message.tag m);
      (* second access serves the same cached string: physical equality is
         exactly what this test asserts *)
      if not ((Wire.envelope_bytes env == cached) [@lint.allow "digest-compare"]) then
        Alcotest.failf "constructor %s: second access re-encoded" (Message.tag m);
      if not (String.equal (Wire.envelope_digest env) fresh_digest) then
        Alcotest.failf "constructor %s: cached digest <> fresh digest" (Message.tag m);
      let expect_size = 8 + String.length fresh_bytes + Wire.auth_size env.Message.auth in
      if Wire.envelope_size env <> expect_size then
        Alcotest.failf "constructor %s: envelope_size %d <> %d" (Message.tag m)
          (Wire.envelope_size env) expect_size;
      if Wire.size m <> String.length fresh_bytes then
        Alcotest.failf "constructor %s: memoized size <> encode length" (Message.tag m)
    done
  done

let test_digest_memos_are_stable () =
  let rng = Bft_util.Rng.create 31415926535L in
  for _ = 1 to 200 do
    let m = Test_codec.R.message rng 0 in
    match m with
    | Message.Request r ->
        let first = Wire.request_digest r in
        let hit = Wire.request_digest r in
        Wire.clear_memos ();
        let fresh = Wire.request_digest r in
        Alcotest.(check string) "request digest memo hit" first hit;
        Alcotest.(check string) "request digest after clear" first fresh
    | _ -> ()
  done;
  let rng = Bft_util.Rng.create 2718281828L in
  for _ = 1 to 50 do
    let batch = [ Test_codec.R.batch_elem rng; Test_codec.R.batch_elem rng ] in
    let first = Wire.batch_digest batch "nondet" in
    Wire.clear_memos ();
    Alcotest.(check string) "batch digest after clear" first (Wire.batch_digest batch "nondet")
  done

let test_pending_events_counts_live_only () =
  let e = Engine.create ~seed:5L () in
  let fired = ref 0 in
  let handles =
    List.init 10 (fun i ->
        Engine.schedule e ~delay:(Engine.us (i + 1)) (fun () -> incr fired))
  in
  Alcotest.(check int) "all live" 10 (Engine.pending_events e);
  List.iteri (fun i h -> if i mod 2 = 0 then Engine.cancel h) handles;
  Alcotest.(check int) "after cancelling half" 5 (Engine.pending_events e);
  (* double cancel is a no-op for the counter *)
  Engine.cancel (List.hd handles);
  Alcotest.(check int) "double cancel" 5 (Engine.pending_events e);
  Engine.run e;
  Alcotest.(check int) "only live thunks fired" 5 !fired;
  Alcotest.(check int) "drained" 0 (Engine.pending_events e)

let test_cancelled_events_keep_clock_semantics () =
  (* a cancelled event still occupies its slot in virtual time: stepping past
     it advances the clock exactly as the Map-based engine did *)
  let e = Engine.create ~seed:5L () in
  let h = Engine.schedule e ~delay:(Engine.us 5) (fun () -> Alcotest.fail "fired") in
  ignore (Engine.schedule e ~delay:(Engine.us 10) (fun () -> ()));
  Engine.cancel h;
  Alcotest.(check bool) "step pops cancelled event" true (Engine.step e);
  Alcotest.(check int64) "clock advanced to cancelled slot" (Engine.us 5) (Engine.now e);
  Alcotest.(check bool) "step fires live event" true (Engine.step e);
  Alcotest.(check int64) "clock at live slot" (Engine.us 10) (Engine.now e);
  Alcotest.(check bool) "empty" false (Engine.step e)

let test_heap_order_matches_schedule_order () =
  (* same-time events fire in schedule order (FIFO tie-break by seq) *)
  let e = Engine.create ~seed:5L () in
  let order = ref [] in
  for i = 1 to 50 do
    ignore (Engine.schedule e ~delay:(Engine.us 7) (fun () -> order := i :: !order))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "FIFO among equal times" (List.init 50 (fun i -> i + 1))
    (List.rev !order)

let test_hmac_precomputed_bit_identical () =
  let rng = Bft_util.Rng.create 987654321L in
  for _ = 1 to 100 do
    let key = String.init (1 + Bft_util.Rng.int rng 90) (fun _ ->
        Char.chr (Bft_util.Rng.int rng 256))
    in
    let msg = String.init (Bft_util.Rng.int rng 300) (fun _ ->
        Char.chr (Bft_util.Rng.int rng 256))
    in
    let pre = Hmac.precompute ~key in
    Alcotest.(check string) "precomputed = one-shot" (Hmac.mac ~key msg)
      (Hmac.mac_precomputed pre msg);
    Alcotest.(check string) "truncated precomputed = one-shot"
      (Hmac.mac_truncated ~key 10 msg)
      (Hmac.mac_truncated_precomputed pre 10 msg)
  done

(* Golden committed-history digests recorded from the pre-optimization seed
   build: the encode-once pipeline, memo tables, heap engine and SHA-256
   rewrite must not perturb a single committed operation on any of these
   pinned fuzz schedules. *)
let golden_histories =
  [
    (1, "43c8b1c432b84d0dd523fa7c9a137e15a0f978c4a8534b528625884e84e50676");
    (2, "2e0e9f315914849bcd8c50fbf61b3dacacc23d370261b74689afbe686dd6f60f");
    (3, "2e0e9f315914849bcd8c50fbf61b3dacacc23d370261b74689afbe686dd6f60f");
    (46, "7ddda45eb9535a7b32bbbac06d595d0e2604e5d249b1f131672ef2d3ed4f6e5e");
  ]

let test_pinned_seed_histories () =
  List.iter
    (fun (seed, expected) ->
      let r = Runner.run_seed (Runner.default_params ~seed ~f:1) in
      Alcotest.(check (list string)) (Printf.sprintf "seed %d safety" seed) [] r.Runner.failures;
      Alcotest.(check string) (Printf.sprintf "seed %d history digest" seed) expected
        r.Runner.history_digest)
    golden_histories

let suites =
  [
    ( "hotpath",
      [
        Alcotest.test_case "cached envelope = fresh encode (all constructors)" `Quick
          test_cached_envelope_matches_fresh_encode;
        Alcotest.test_case "digest memos stable across clears" `Quick
          test_digest_memos_are_stable;
        Alcotest.test_case "pending_events counts live only" `Quick
          test_pending_events_counts_live_only;
        Alcotest.test_case "cancelled events keep clock semantics" `Quick
          test_cancelled_events_keep_clock_semantics;
        Alcotest.test_case "heap preserves FIFO tie-break" `Quick
          test_heap_order_matches_schedule_order;
        Alcotest.test_case "precomputed HMAC bit-identical" `Quick
          test_hmac_precomputed_bit_identical;
        Alcotest.test_case "pinned fuzz seeds: committed histories unchanged" `Slow
          test_pinned_seed_histories;
      ] );
  ]

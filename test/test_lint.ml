(* bft_lint: every rule in the catalogue has a fixture that triggers it
   (exact ids and lines asserted), suppression works, and — the merge
   gate — the repo's own lib/ tree lints clean. *)

module Lint = Bft_lint.Lint
module Finding = Bft_lint.Finding
module Rule = Bft_lint.Rule

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_fixture name =
  let path = Filename.concat "lint_fixtures" name in
  Lint.lint_source ~filename:path (read_file path)

let contains = Bft_util.Strutil.contains_sub

(* (fixture, does the assertion need the typed pass?, expected (rule, line)s).
   Fixtures that reference Unix do not typecheck against the initial env
   (Unix is not on the load path), so their typed pass is skipped; all
   their findings are syntactic anyway. *)
let corpus =
  [
    ("bad_unix.ml", false, [ (Rule.unix, 1) ]);
    ("bad_time.ml", false, [ (Rule.time, 1) ]);
    ("bad_getenv.ml", false, [ (Rule.getenv, 1) ]);
    ("bad_random.ml", false, [ (Rule.random, 1); (Rule.random, 2) ]);
    (* cohort arrival processes must draw from seeded Rng streams and the
       virtual clock; both escape hatches trip the determinism fence *)
    ( "bad_cohort_arrival.ml",
      false,
      [ (Rule.random, 5); (Rule.random, 6); (Rule.unix, 7) ] );
    ("bad_marshal.ml", false, [ (Rule.marshal, 1) ]);
    ("bad_hashtbl_hash.ml", false, [ (Rule.hashtbl_hash, 1) ]);
    ("bad_hashtbl_order.ml", false, [ (Rule.hashtbl_order, 3) ]);
    ("bad_swallow.ml", false, [ (Rule.swallowed_exception, 1) ]);
    ("bad_ignored_result.ml", true, [ (Rule.ignored_result, 1) ]);
    ( "bad_digest_compare.ml",
      true,
      [ (Rule.digest_compare, 1); (Rule.digest_compare, 2); (Rule.digest_compare, 3) ] );
    ( "bad_handle_compare.ml",
      true,
      [
        (Rule.engine_handle_compare, 2);
        (Rule.engine_handle_compare, 3);
        (Rule.engine_handle_compare, 4);
      ] );
    ("bad_unsafe.ml", false, [ (Rule.unsafe_op, 1); (Rule.unsafe_op, 2) ]);
    ( "bad_domain.ml",
      false,
      [
        (Rule.domain_containment, 1);
        (Rule.domain_containment, 2);
        (Rule.domain_containment, 3);
        (Rule.domain_containment, 4);
      ] );
    ("allowed_suppress.ml", false, []);
    (* interprocedural: the seed's syntactic report is allowed at its use
       site, then laundered through two modules — only the whole-program
       effect pass can flag the protocol-reachable root *)
    ("bad_transitive_nondet.ml", true, [ (Rule.transitive_nondet, 13) ]);
    (* the [ok] scratch-buffer case in the same file must stay silent *)
    ("bad_pool_escape.ml", true, [ (Rule.pool_escape, 10) ]);
    ("bad_mutable_global.ml", true, [ (Rule.mutable_global, 10) ]);
  ]

let test_fixture (name, needs_typed, expected) () =
  let findings, typechecked = lint_fixture name in
  (if needs_typed then
     match typechecked with
     | Ok () -> ()
     | Error e -> Alcotest.failf "%s: typed pass did not run: %s" name e);
  let got = List.map (fun f -> (f.Finding.rule, f.Finding.line)) findings in
  Alcotest.(check (list (pair string int))) name expected got

let test_catalogue_covered () =
  (* every rule id in the catalogue is exercised by at least one fixture *)
  let covered =
    List.concat_map (fun (_, _, expected) -> List.map fst expected) corpus
  in
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "rule %s has a fixture" id)
        true
        (List.exists (String.equal id) covered))
    Rule.ids

(* the corpus and the on-disk fixture directory stay in sync: a fixture
   nobody asserts on is dead weight, and a corpus entry without a file is
   a typo the fixture tests would silently skip *)
let test_corpus_matches_disk () =
  let on_disk =
    Sys.readdir "lint_fixtures" |> Array.to_list
    |> List.filter (String.ends_with ~suffix:".ml")
    |> List.sort String.compare
  in
  let in_corpus = List.sort String.compare (List.map (fun (n, _, _) -> n) corpus) in
  Alcotest.(check (list string)) "fixture corpus = lint_fixtures/*.ml" on_disk in_corpus

(* the --why witness: the exact call path from the flagged root to the
   effect seed, outermost first, each hop carrying its source location *)
let test_why_witness () =
  let findings, typechecked = lint_fixture "bad_transitive_nondet.ml" in
  (match typechecked with
  | Ok () -> ()
  | Error e -> Alcotest.failf "typed pass did not run: %s" e);
  match findings with
  | [ f ] ->
      let file = "lint_fixtures/bad_transitive_nondet.ml" in
      Alcotest.(check (list string))
        "witness hops"
        [
          Printf.sprintf "handle_request (%s:13)" file;
          Printf.sprintf "Jitter.next (%s:10)" file;
          Printf.sprintf "Entropy.sample (%s:6)" file;
          Printf.sprintf "Random (global PRNG state) (%s:6)" file;
        ]
        f.Finding.witness;
      Alcotest.(check (list string))
        "--why rendering"
        [
          Printf.sprintf "  why: handle_request (%s:13)" file;
          Printf.sprintf "    -> Jitter.next (%s:10)" file;
          Printf.sprintf "    -> Entropy.sample (%s:6)" file;
          Printf.sprintf "    -> Random (global PRNG state) (%s:6)" file;
        ]
        (Finding.why_lines f)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

(* a malformed or unknown --allow spec must be a hard usage error, not a
   warning the gate shrugs off (regression: it used to warn and exit 0) *)
let test_parse_allow () =
  let ok spec =
    match Lint.parse_allow spec with
    | Ok pr -> pr
    | Error e -> Alcotest.failf "parse_allow %S: unexpected error %s" spec e
  in
  let err spec =
    match Lint.parse_allow spec with
    | Ok _ -> Alcotest.failf "parse_allow %S: expected an error" spec
    | Error e -> e
  in
  Alcotest.(check (pair string string))
    "well-formed" ("bench/", Rule.unix)
    (ok ("bench/:" ^ Rule.unix));
  Alcotest.(check bool) "no colon" true (contains (err "bench") "malformed");
  Alcotest.(check bool) "empty prefix" true (contains (err (":" ^ Rule.unix)) "malformed");
  Alcotest.(check bool) "empty rule" true (contains (err "bench/:") "malformed");
  Alcotest.(check bool) "unknown rule" true (contains (err "bench/:not-a-rule") "unknown rule")

let test_sarif_output () =
  let findings, _ = lint_fixture "bad_transitive_nondet.ml" in
  let sarif = Finding.list_to_sarif ~rules:Rule.all findings in
  Alcotest.(check bool) "sarif version" true (contains sarif "\"version\": \"2.1.0\"");
  Alcotest.(check bool) "names the rule" true
    (contains sarif (Printf.sprintf "\"ruleId\": \"%s\"" Rule.transitive_nondet));
  Alcotest.(check bool) "catalogue rules present" true
    (List.for_all (fun (id, _, _) -> contains sarif (Printf.sprintf "\"id\": \"%s\"" id)) Rule.all);
  Alcotest.(check bool) "witness rides in properties" true (contains sarif "\"witness\": [\"")

let test_findings_carry_locations () =
  let findings, _ = lint_fixture "bad_unix.ml" in
  match findings with
  | [ f ] ->
      Alcotest.(check string) "file" "lint_fixtures/bad_unix.ml" f.Finding.file;
      Alcotest.(check bool) "column present" true (f.Finding.col >= 0);
      Alcotest.(check bool) "message nonempty" true (String.length f.Finding.msg > 0)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_json_output () =
  let findings, _ = lint_fixture "bad_unix.ml" in
  let json = Finding.list_to_json findings in
  Alcotest.(check bool) "has count" true (contains json "\"count\": 1");
  Alcotest.(check bool) "names the rule" true (contains json Rule.unix)

(* the merge gate: the repo's own sources (and their cmts, when built)
   produce zero findings and zero errors — lib/ plus the bin/bench/test
   drivers the @lint alias scans *)
let test_repo_lints_clean () =
  if not (Sys.file_exists "../lib" && Sys.is_directory "../lib") then
    Alcotest.skip ()
  else begin
    let run = Lint.lint_tree ~root:".." [ "lib"; "bin"; "bench"; "test" ] in
    List.iter (fun e -> Printf.eprintf "lint error: %s\n" e) run.Lint.errors;
    List.iter
      (fun f -> Printf.eprintf "finding: %s\n" (Finding.to_string f))
      run.Lint.findings;
    Alcotest.(check (list string)) "no errors" [] run.Lint.errors;
    Alcotest.(check int) "no findings" 0 (List.length run.Lint.findings);
    Alcotest.(check bool) "scanned the tree" true (run.Lint.files_scanned >= 30)
  end

let suites =
  [
    ( "lint.fixtures",
      List.map
        (fun ((name, _, _) as case) -> Alcotest.test_case name `Quick (test_fixture case))
        corpus
      @ [
          Alcotest.test_case "catalogue covered" `Quick test_catalogue_covered;
          Alcotest.test_case "corpus matches disk" `Quick test_corpus_matches_disk;
          Alcotest.test_case "why witness" `Quick test_why_witness;
          Alcotest.test_case "parse --allow" `Quick test_parse_allow;
          Alcotest.test_case "finding locations" `Quick test_findings_carry_locations;
          Alcotest.test_case "json output" `Quick test_json_output;
          Alcotest.test_case "sarif output" `Quick test_sarif_output;
        ] );
    ("lint.repo", [ Alcotest.test_case "tree lints clean" `Quick test_repo_lints_clean ]);
  ]

(* bft_lint: every rule in the catalogue has a fixture that triggers it
   (exact ids and lines asserted), suppression works, and — the merge
   gate — the repo's own lib/ tree lints clean. *)

module Lint = Bft_lint.Lint
module Finding = Bft_lint.Finding
module Rule = Bft_lint.Rule

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_fixture name =
  let path = Filename.concat "lint_fixtures" name in
  Lint.lint_source ~filename:path (read_file path)

let contains hay sub =
  let lh = String.length hay and ls = String.length sub in
  let rec go i = i + ls <= lh && (String.equal (String.sub hay i ls) sub || go (i + 1)) in
  go 0

(* (fixture, does the assertion need the typed pass?, expected (rule, line)s).
   Fixtures that reference Unix do not typecheck against the initial env
   (Unix is not on the load path), so their typed pass is skipped; all
   their findings are syntactic anyway. *)
let corpus =
  [
    ("bad_unix.ml", false, [ (Rule.unix, 1) ]);
    ("bad_time.ml", false, [ (Rule.time, 1) ]);
    ("bad_getenv.ml", false, [ (Rule.getenv, 1) ]);
    ("bad_random.ml", false, [ (Rule.random, 1); (Rule.random, 2) ]);
    (* cohort arrival processes must draw from seeded Rng streams and the
       virtual clock; both escape hatches trip the determinism fence *)
    ( "bad_cohort_arrival.ml",
      false,
      [ (Rule.random, 5); (Rule.random, 6); (Rule.unix, 7) ] );
    ("bad_marshal.ml", false, [ (Rule.marshal, 1) ]);
    ("bad_hashtbl_hash.ml", false, [ (Rule.hashtbl_hash, 1) ]);
    ("bad_hashtbl_order.ml", false, [ (Rule.hashtbl_order, 3) ]);
    ("bad_swallow.ml", false, [ (Rule.swallowed_exception, 1) ]);
    ("bad_ignored_result.ml", true, [ (Rule.ignored_result, 1) ]);
    ( "bad_digest_compare.ml",
      true,
      [ (Rule.digest_compare, 1); (Rule.digest_compare, 2); (Rule.digest_compare, 3) ] );
    ( "bad_handle_compare.ml",
      true,
      [
        (Rule.engine_handle_compare, 2);
        (Rule.engine_handle_compare, 3);
        (Rule.engine_handle_compare, 4);
      ] );
    ("bad_unsafe.ml", false, [ (Rule.unsafe_op, 1); (Rule.unsafe_op, 2) ]);
    ( "bad_domain.ml",
      false,
      [
        (Rule.domain_containment, 1);
        (Rule.domain_containment, 2);
        (Rule.domain_containment, 3);
        (Rule.domain_containment, 4);
      ] );
    ("allowed_suppress.ml", false, []);
  ]

let test_fixture (name, needs_typed, expected) () =
  let findings, typechecked = lint_fixture name in
  (if needs_typed then
     match typechecked with
     | Ok () -> ()
     | Error e -> Alcotest.failf "%s: typed pass did not run: %s" name e);
  let got = List.map (fun f -> (f.Finding.rule, f.Finding.line)) findings in
  Alcotest.(check (list (pair string int))) name expected got

let test_catalogue_covered () =
  (* every rule id in the catalogue is exercised by at least one fixture *)
  let covered =
    List.concat_map (fun (_, _, expected) -> List.map fst expected) corpus
  in
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "rule %s has a fixture" id)
        true
        (List.exists (String.equal id) covered))
    Rule.ids

let test_findings_carry_locations () =
  let findings, _ = lint_fixture "bad_unix.ml" in
  match findings with
  | [ f ] ->
      Alcotest.(check string) "file" "lint_fixtures/bad_unix.ml" f.Finding.file;
      Alcotest.(check bool) "column present" true (f.Finding.col >= 0);
      Alcotest.(check bool) "message nonempty" true (String.length f.Finding.msg > 0)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_json_output () =
  let findings, _ = lint_fixture "bad_unix.ml" in
  let json = Finding.list_to_json findings in
  Alcotest.(check bool) "has count" true (contains json "\"count\": 1");
  Alcotest.(check bool) "names the rule" true (contains json Rule.unix)

(* the merge gate: the repo's own sources (and their cmts, when built)
   produce zero findings and zero errors *)
let test_repo_lints_clean () =
  if not (Sys.file_exists "../lib" && Sys.is_directory "../lib") then
    Alcotest.skip ()
  else begin
    let run = Lint.lint_tree ~root:".." [ "lib" ] in
    List.iter (fun e -> Printf.eprintf "lint error: %s\n" e) run.Lint.errors;
    List.iter
      (fun f -> Printf.eprintf "finding: %s\n" (Finding.to_string f))
      run.Lint.findings;
    Alcotest.(check (list string)) "no errors" [] run.Lint.errors;
    Alcotest.(check int) "no findings" 0 (List.length run.Lint.findings);
    Alcotest.(check bool) "scanned the tree" true (run.Lint.files_scanned >= 30)
  end

let suites =
  [
    ( "lint.fixtures",
      List.map
        (fun ((name, _, _) as case) -> Alcotest.test_case name `Quick (test_fixture case))
        corpus
      @ [
          Alcotest.test_case "catalogue covered" `Quick test_catalogue_covered;
          Alcotest.test_case "finding locations" `Quick test_findings_carry_locations;
          Alcotest.test_case "json output" `Quick test_json_output;
        ] );
    ("lint.repo", [ Alcotest.test_case "lib/ lints clean" `Quick test_repo_lints_clean ]);
  ]

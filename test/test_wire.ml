(* Wire encoding: digests, sizes, and injectivity properties. *)

open Bft_core
open Message

let req ?(op = "op") ?(ts = 1L) ?(client = 100) ?(ro = false) ?(replier = 0) () =
  { op; timestamp = ts; client; read_only = ro; replier }

let test_request_digest_distinguishes_fields () =
  let base = Wire.request_digest (req ()) in
  let differs r = not (String.equal base (Wire.request_digest r)) in
  Alcotest.(check bool) "op" true (differs (req ~op:"other" ()));
  Alcotest.(check bool) "timestamp" true (differs (req ~ts:2L ()));
  Alcotest.(check bool) "client" true (differs (req ~client:101 ()));
  Alcotest.(check bool) "read_only" true (differs (req ~ro:true ()));
  Alcotest.(check bool) "stable" true
    (String.equal base (Wire.request_digest (req ())))

let test_batch_digest_ignores_tokens () =
  let r = req () in
  let tok1 = Auth_none in
  let tok2 =
    Auth_mac { Bft_crypto.Auth.tag = String.make 8 'x'; epoch = 1 }
  in
  let d1 = Wire.batch_digest [ Inline (r, tok1) ] "nd" in
  let d2 = Wire.batch_digest [ Inline (r, tok2) ] "nd" in
  Alcotest.(check bool) "token-independent" true (String.equal d1 d2);
  (* the by-digest form is equivalent to the inline form *)
  let d3 = Wire.batch_digest [ By_digest (Wire.request_digest r) ] "nd" in
  Alcotest.(check bool) "inline = by-digest" true (String.equal d1 d3)

let test_batch_digest_sensitive () =
  let r1 = req () and r2 = req ~op:"other" () in
  let d1 = Wire.batch_digest [ Inline (r1, Auth_none) ] "nd" in
  Alcotest.(check bool) "different request" true
    (not (String.equal d1 (Wire.batch_digest [ Inline (r2, Auth_none) ] "nd")));
  Alcotest.(check bool) "different nondet" true
    (not (String.equal d1 (Wire.batch_digest [ Inline (r1, Auth_none) ] "nd2")));
  Alcotest.(check bool) "order matters" true
    (not
       (String.equal
          (Wire.batch_digest [ Inline (r1, Auth_none); Inline (r2, Auth_none) ] "nd")
          (Wire.batch_digest [ Inline (r2, Auth_none); Inline (r1, Auth_none) ] "nd")))

let test_null_batch_digest_unique () =
  let d = Wire.batch_digest [] "nd" in
  Alcotest.(check bool) "empty batch is not the null batch" true
    (not (String.equal d Wire.null_batch_digest))

let test_size_scales_with_op () =
  let small = Wire.size (Request (req ~op:"" ())) in
  let big = Wire.size (Request (req ~op:(String.make 1000 'x') ())) in
  Alcotest.(check int) "1000 bytes difference" 1000 (big - small)

let test_envelope_size_includes_auth () =
  let body = Request (req ()) in
  let none = Wire.envelope_size (Message.envelope ~sender:0 ~auth:Auth_none body) in
  let auth =
    Auth_vector
      (List.init 3 (fun i -> (i, { Bft_crypto.Auth.tag = String.make 8 't'; epoch = 1 })))
  in
  let vec = Wire.envelope_size (Message.envelope ~sender:0 ~auth body) in
  Alcotest.(check int) "8 + 8*3 authenticator bytes" (8 + 24) (vec - none);
  let signed =
    Wire.envelope_size
      (Message.envelope ~sender:0
         ~auth:(Auth_sig (Bft_crypto.Signature.forge ~signer_id:0))
         body)
  in
  Alcotest.(check int) "128-byte signature" 128 (signed - none)

let test_encoding_distinct_across_types () =
  (* two messages with identical numeric content must encode differently *)
  let p = Prepare { pr_view = 1; pr_seq = 2; pr_digest = String.make 32 'd'; pr_replica = 3 } in
  let c = Commit { cm_view = 1; cm_seq = 2; cm_digest = String.make 32 'd'; cm_replica = 3 } in
  Alcotest.(check bool) "prepare <> commit encoding" true
    (not (String.equal (Wire.encode p) (Wire.encode c)))

let test_view_change_digest_covers_psets () =
  let vc =
    {
      vc_view = 1;
      vc_h = 0;
      vc_cset = [ (0, String.make 32 'c') ];
      vc_pset = [];
      vc_qset = [];
      vc_replica = 2;
    }
  in
  let d1 = Wire.view_change_digest vc in
  let vc2 =
    { vc with vc_pset = [ { pe_seq = 1; pe_digest = String.make 32 'p'; pe_view = 0 } ] }
  in
  Alcotest.(check bool) "pset changes digest" true
    (not (String.equal d1 (Wire.view_change_digest vc2)))

let prop_encode_injective_on_requests =
  QCheck.Test.make ~name:"request encodings distinct" ~count:200
    QCheck.(pair (pair small_string small_nat) (pair small_string small_nat))
    (fun ((op1, c1), (op2, c2)) ->
      let r1 = req ~op:op1 ~client:c1 () and r2 = req ~op:op2 ~client:c2 () in
      if String.equal op1 op2 && c1 = c2 then true
      else not (String.equal (Wire.encode (Request r1)) (Wire.encode (Request r2))))

let prop_size_equals_encode_length =
  QCheck.Test.make ~name:"size = encode length" ~count:100 QCheck.small_string (fun op ->
      let m = Request (req ~op ()) in
      Wire.size m = String.length (Wire.encode m))

let suites =
  [
    ( "core.wire",
      [
        Alcotest.test_case "request digest fields" `Quick test_request_digest_distinguishes_fields;
        Alcotest.test_case "batch digest ignores tokens" `Quick test_batch_digest_ignores_tokens;
        Alcotest.test_case "batch digest sensitive" `Quick test_batch_digest_sensitive;
        Alcotest.test_case "null batch digest unique" `Quick test_null_batch_digest_unique;
        Alcotest.test_case "size scales with op" `Quick test_size_scales_with_op;
        Alcotest.test_case "envelope auth sizes" `Quick test_envelope_size_includes_auth;
        Alcotest.test_case "distinct across types" `Quick test_encoding_distinct_across_types;
        Alcotest.test_case "vc digest covers pset" `Quick test_view_change_digest_covers_psets;
        QCheck_alcotest.to_alcotest prop_encode_injective_on_requests;
        QCheck_alcotest.to_alcotest prop_size_equals_encode_length;
      ] );
  ]

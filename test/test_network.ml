(* Simulated network: delivery, faults, CPU accounting. *)

module Engine = Bft_sim.Engine
module Network = Bft_net.Network
module Costs = Bft_net.Costs

let setup ?(costs = Costs.free) ?(seed = 1L) n =
  let engine = Engine.create ~seed () in
  let net = Network.create ~engine ~costs ~rng:(Bft_util.Rng.create 7L) () in
  let inboxes = Array.make n [] in
  for i = 0 to n - 1 do
    Network.add_node net ~id:i ~handler:(fun msg -> inboxes.(i) <- msg :: inboxes.(i))
  done;
  (engine, net, inboxes)

let test_point_to_point () =
  let engine, net, inboxes = setup 2 in
  Network.send net ~src:0 ~dst:1 ~size:100 "hello";
  Engine.run engine;
  Alcotest.(check (list string)) "delivered" [ "hello" ] inboxes.(1);
  Alcotest.(check (list string)) "not to sender" [] inboxes.(0);
  Alcotest.(check int) "stat sent" 1 (Network.stats net).Network.sent;
  Alcotest.(check int) "stat delivered" 1 (Network.stats net).Network.delivered;
  Alcotest.(check int) "stat bytes" 100 (Network.stats net).Network.bytes_sent

let test_multicast_with_self () =
  let engine, net, inboxes = setup 3 in
  Network.multicast net ~src:0 ~dsts:[ 0; 1; 2 ] ~size:10 "m";
  Engine.run engine;
  Array.iteri
    (fun i inbox -> Alcotest.(check int) (Printf.sprintf "node %d" i) 1 (List.length inbox))
    inboxes

let test_unknown_node_rejected () =
  let _, net, _ = setup 1 in
  Alcotest.check_raises "unknown" (Invalid_argument "Network: unknown node 9") (fun () ->
      Network.send net ~src:0 ~dst:9 ~size:1 "x")

let test_loss () =
  let engine, net, inboxes = setup 2 in
  Network.set_loss_rate net 1.0;
  for _ = 1 to 20 do
    Network.send net ~src:0 ~dst:1 ~size:1 "x"
  done;
  Engine.run engine;
  Alcotest.(check int) "all lost" 0 (List.length inboxes.(1));
  Alcotest.(check int) "dropped counted" 20 (Network.stats net).Network.dropped

let test_duplication () =
  let engine, net, inboxes = setup 2 in
  Network.set_dup_rate net 1.0;
  Network.send net ~src:0 ~dst:1 ~size:1 "x";
  Engine.run engine;
  Alcotest.(check int) "delivered twice" 2 (List.length inboxes.(1))

let test_partition_and_heal () =
  let engine, net, inboxes = setup 4 in
  Network.partition net [ 0; 1 ] [ 2; 3 ];
  Network.send net ~src:0 ~dst:2 ~size:1 "blocked";
  Network.send net ~src:0 ~dst:1 ~size:1 "same-side";
  Engine.run engine;
  Alcotest.(check int) "across partition blocked" 0 (List.length inboxes.(2));
  Alcotest.(check int) "same side ok" 1 (List.length inboxes.(1));
  Network.heal net;
  Network.send net ~src:0 ~dst:2 ~size:1 "after-heal";
  Engine.run engine;
  Alcotest.(check int) "after heal" 1 (List.length inboxes.(2))

let test_crash_restart () =
  let engine, net, inboxes = setup 2 in
  Network.crash net ~id:1;
  Alcotest.(check bool) "crashed" true (Network.is_crashed net ~id:1);
  Network.send net ~src:0 ~dst:1 ~size:1 "lost";
  Network.send net ~src:1 ~dst:0 ~size:1 "suppressed";
  Engine.run engine;
  Alcotest.(check int) "to crashed lost" 0 (List.length inboxes.(1));
  Alcotest.(check int) "from crashed suppressed" 0 (List.length inboxes.(0));
  Network.restart net ~id:1;
  Network.send net ~src:0 ~dst:1 ~size:1 "back";
  Engine.run engine;
  Alcotest.(check int) "after restart" 1 (List.length inboxes.(1))

let test_adversary () =
  let engine, net, inboxes = setup 3 in
  Network.set_adversary net (fun ~src:_ ~dst msg ->
      if dst = 1 then `Drop else if String.equal msg "slow" then `Delay 1000.0 else `Pass);
  Network.send net ~src:0 ~dst:1 ~size:1 "x";
  Network.send net ~src:0 ~dst:2 ~size:1 "slow";
  Engine.run engine;
  Alcotest.(check int) "adversary drop" 0 (List.length inboxes.(1));
  Alcotest.(check int) "adversary delay still delivers" 1 (List.length inboxes.(2));
  Alcotest.(check bool) "delay applied" true (Engine.to_us (Engine.now engine) >= 1000.0);
  Network.clear_adversary net;
  Network.send net ~src:0 ~dst:1 ~size:1 "y";
  Engine.run engine;
  Alcotest.(check int) "cleared" 1 (List.length inboxes.(1))

let test_wire_time_scales_with_size () =
  let costs = { Costs.free with Costs.wire_latency_us = 10.0; wire_per_byte_us = 1.0 } in
  let engine, net, _ = setup ~costs 2 in
  Network.send net ~src:0 ~dst:1 ~size:100 "big";
  Engine.run engine;
  (* arrival at 10 + 100*1 us *)
  Alcotest.(check (float 0.001)) "wire time" 110.0 (Engine.to_us (Engine.now engine))

let test_cpu_serialization () =
  (* two back-to-back deliveries to a node whose handler charges CPU must
     be processed sequentially (single-server queue) *)
  let costs = { Costs.free with Costs.recv_fixed_us = 0.0 } in
  let engine = Engine.create () in
  let net = Network.create ~engine ~costs ~rng:(Bft_util.Rng.create 1L) () in
  let times = ref [] in
  Network.add_node net ~id:0 ~handler:(fun () -> ());
  Network.add_node net ~id:1
    ~handler:(fun () ->
      times := Engine.to_us (Engine.now engine) :: !times;
      Network.charge net ~id:1 50.0);
  Network.send net ~src:0 ~dst:1 ~size:0 ();
  Network.send net ~src:0 ~dst:1 ~size:0 ();
  Engine.run engine;
  match List.rev !times with
  | [ t1; t2 ] ->
      Alcotest.(check bool) "second waits for cpu" true (t2 -. t1 >= 50.0)
  | l -> Alcotest.failf "expected 2 deliveries, got %d" (List.length l)

let test_charge_monotone () =
  let engine, net, _ = setup 1 in
  Network.charge net ~id:0 100.0;
  let b1 = Network.busy_until net ~id:0 in
  Network.charge net ~id:0 50.0;
  let b2 = Network.busy_until net ~id:0 in
  Alcotest.(check bool) "accumulates" true (Int64.compare b2 b1 > 0);
  Alcotest.(check (float 0.01)) "sum" 150.0 (Engine.to_us b2);
  ignore engine

let test_reordering_with_jitter () =
  (* with jitter enabled, a burst of messages can arrive out of order *)
  let costs = { Costs.free with Costs.jitter_us = 100.0 } in
  let engine, net, inboxes = setup ~costs ~seed:5L 2 in
  for i = 0 to 19 do
    Network.send net ~src:0 ~dst:1 ~size:0 (string_of_int i)
  done;
  Engine.run engine;
  let received = List.rev_map int_of_string inboxes.(1) in
  Alcotest.(check int) "all arrived" 20 (List.length received);
  Alcotest.(check bool) "some reordering happened" true
    (received <> List.sort compare received)

let suites =
  [
    ( "net.network",
      [
        Alcotest.test_case "point to point" `Quick test_point_to_point;
        Alcotest.test_case "multicast with self" `Quick test_multicast_with_self;
        Alcotest.test_case "unknown node" `Quick test_unknown_node_rejected;
        Alcotest.test_case "loss" `Quick test_loss;
        Alcotest.test_case "duplication" `Quick test_duplication;
        Alcotest.test_case "partition/heal" `Quick test_partition_and_heal;
        Alcotest.test_case "crash/restart" `Quick test_crash_restart;
        Alcotest.test_case "adversary" `Quick test_adversary;
        Alcotest.test_case "wire time" `Quick test_wire_time_scales_with_size;
        Alcotest.test_case "cpu serialization" `Quick test_cpu_serialization;
        Alcotest.test_case "charge monotone" `Quick test_charge_monotone;
        Alcotest.test_case "jitter reordering" `Quick test_reordering_with_jitter;
      ] );
  ]

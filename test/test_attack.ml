(* Adversary-profile regressions: each attack profile paired with the
   replica-side defense that ships with it (client_flood -> per-client
   admission quota, mac_storm -> per-peer retransmission budget,
   slow_primary -> primary performance watchdog), plus the client
   adaptive-timeout regression and the schedule encoding of the new
   attack actions. Attack runs are plain [Runner] executions, so every
   safety oracle stays armed throughout. *)

open Bft_check
module Replica = Bft_core.Replica
module Cluster = Bft_core.Cluster
module Client = Bft_core.Client

let sched_of s =
  match Schedule.of_string s with
  | Ok x -> x
  | Error e -> Alcotest.failf "bad schedule %S: %s" s e

(* Run an explicit schedule with the given defenses and return the live
   harness (for counter inspection) along with the oracle report. *)
let run_attack ?client_quota ?retransmit_budget ?(perf_watchdog = false) ?(ops = 25)
    ?(seed = 3) s =
  let params =
    {
      (Runner.default_params ~seed ~f:1) with
      Runner.ops_per_client = ops;
      client_quota;
      retransmit_budget;
      perf_watchdog;
    }
  in
  let lv = Runner.prepare params (sched_of s) in
  ignore
    (Cluster.run_until
       ~timeout_us:(params.Runner.horizon_us +. params.Runner.drain_us)
       lv.Runner.lv_cluster
       (fun () -> !(lv.Runner.lv_n_completed) >= lv.Runner.lv_total_ops));
  let r = Runner.finish lv in
  if r.Runner.failures <> [] then
    Alcotest.failf "attack run violated: %s" (String.concat "; " r.Runner.failures);
  (lv, r)

let sum_counter lv f =
  Array.fold_left
    (fun acc rep -> acc + f (Replica.counters rep))
    0
    (Cluster.replicas lv.Runner.lv_cluster)

(* --- client_flood vs the admission quota --- *)

let test_flood_dropped_and_counted () =
  let lv, r =
    run_attack ~client_quota:8 ~retransmit_budget:8 "0@flood:0:40;0@flood:1:40"
  in
  (* the flooding clients must be shed... *)
  let dropped = sum_counter lv (fun c -> c.Replica.n_admission_dropped) in
  Alcotest.(check bool)
    (Printf.sprintf "admission dropped (%d) > 0" dropped)
    true (dropped > 0);
  (* ...while the closed-loop clients complete their whole workload *)
  Alcotest.(check int) "workload completed" r.Runner.total_ops r.Runner.completed_ops

let test_clean_run_admits_everything () =
  (* closed-loop clients never approach the quota: nothing is dropped even
     at an aggressive setting *)
  let lv, r = run_attack ~client_quota:8 "" in
  Alcotest.(check int) "no admission drops" 0
    (sum_counter lv (fun c -> c.Replica.n_admission_dropped));
  Alcotest.(check int) "workload completed" r.Runner.total_ops r.Runner.completed_ops

(* --- mac_storm vs the retransmission budget --- *)

let test_wrong_mac_exhausts_budget () =
  let lv, r = run_attack ~retransmit_budget:2 "0@wmac:1" in
  let suppressed = sum_counter lv (fun c -> c.Replica.n_retransmit_suppressed) in
  Alcotest.(check bool)
    (Printf.sprintf "retransmissions suppressed (%d) > 0" suppressed)
    true (suppressed > 0);
  Alcotest.(check int) "workload completed" r.Runner.total_ops r.Runner.completed_ops

(* --- slow_primary vs the performance watchdog --- *)

let test_slow_primary_view_changed_away () =
  (* primary CPU inflated 40x from 20ms on: the silence-based timer never
     fires (the primary still answers), the performance watchdog must *)
  let lv, r =
    run_attack ~perf_watchdog:true ~ops:50 "20000@cpu:0:40"
  in
  let fired = sum_counter lv (fun c -> c.Replica.n_slowness_vc) in
  Alcotest.(check bool)
    (Printf.sprintf "slowness view changes (%d) >= 1" fired)
    true (fired >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "view advanced (max %d)" r.Runner.max_view)
    true (r.Runner.max_view >= 1);
  Alcotest.(check int) "workload completed" r.Runner.total_ops r.Runner.completed_ops

let test_fast_primary_watchdog_silent () =
  let lv, r = run_attack ~perf_watchdog:true ~ops:50 "" in
  Alcotest.(check int) "no slowness view changes" 0
    (sum_counter lv (fun c -> c.Replica.n_slowness_vc));
  Alcotest.(check int) "workload completed" r.Runner.total_ops r.Runner.completed_ops

(* --- client adaptive timeout across a view change --- *)

let test_client_timeout_stable_across_view_change () =
  (* Mute the primary mid-run: clients must ride the view change without
     timeout thrash — the SRTT clamp keeps one outlier latency (the
     view-change gap) from collapsing or exploding the smoothed estimate,
     and the retry exponent resets when the new view's replies arrive. *)
  let lv, r = run_attack ~ops:20 "10000@mute:0" in
  Alcotest.(check int) "workload completed" r.Runner.total_ops r.Runner.completed_ops;
  Alcotest.(check bool) "view changed" true (r.Runner.max_view >= 1);
  let cluster = lv.Runner.lv_cluster in
  for k = 0 to 1 do
    let c = Cluster.client cluster k in
    Alcotest.(check (option int))
      (Printf.sprintf "client %d idle at end" k)
      None (Client.pending_retries c);
    let srtt = Client.srtt_us c in
    Alcotest.(check bool)
      (Printf.sprintf "client %d srtt %.1fus sane" k srtt)
      true
      (srtt > 0.0 && srtt < 30_000.0);
    (* thrash bound: without the clamp/reset a single view-change gap sent
       the backoff to its cap and every later op into repeated timeouts *)
    let rtx = Client.retransmissions c in
    Alcotest.(check bool)
      (Printf.sprintf "client %d retransmissions %d bounded" k rtx)
      true
      (rtx <= 3 * Client.completed c)
  done

(* --- encoding of the attack actions and profiles --- *)

let test_attack_actions_roundtrip () =
  let s = "0@flood:0:40;0@wmac:1;5000@cpu:0:20;30000@floodstop:0;40000@wmacoff:1" in
  let t = sched_of s in
  Alcotest.(check string) "round-trips" (Schedule.to_string t)
    (Schedule.to_string (sched_of (Schedule.to_string t)))

let test_profiles_expand_and_roundtrip () =
  List.iter
    (fun p ->
      let events = p.Schedule.pr_events ~f:1 ~n:4 ~horizon_us:60_000.0 in
      Alcotest.(check bool)
        (Printf.sprintf "profile %s nonempty" p.Schedule.pr_name)
        true (events <> []);
      let s = Schedule.to_string events in
      match Schedule.of_string s with
      | Error e -> Alcotest.failf "profile %s: %s does not parse: %s" p.Schedule.pr_name s e
      | Ok back ->
          Alcotest.(check string)
            (Printf.sprintf "profile %s round-trips" p.Schedule.pr_name)
            s (Schedule.to_string back))
    Schedule.profiles;
  (* mac_storm's wrong-MAC replicas are fault victims for the oracles *)
  (match Schedule.find_profile "mac_storm" with
  | None -> Alcotest.fail "mac_storm profile missing"
  | Some p ->
      let victims = Schedule.victims (p.Schedule.pr_events ~f:1 ~n:4 ~horizon_us:60_000.0) in
      Alcotest.(check (list int)) "mac_storm victims" [ 1 ] victims);
  Alcotest.(check bool) "unknown profile rejected" true
    (Option.is_none (Schedule.find_profile "bogus"))

let test_malformed_attack_actions_rejected () =
  List.iter
    (fun s ->
      match Schedule.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed schedule %S" s)
    [
      "10@cpu"; "10@cpu:0"; "10@cpu:x:2"; "10@cpu:0:x"; "10@flood:0"; "10@flood:x:40";
      "10@flood:0:x"; "10@floodstop"; "10@floodstop:x"; "10@wmac"; "10@wmac:x";
      "10@wmacoff"; "10@wmacoff:x";
    ]

(* --- profiles off => byte-identical schedules and histories --- *)

let test_no_profile_means_no_change () =
  (* an unset profile merges nothing into the generated schedule... *)
  let base = Runner.default_params ~seed:7 ~f:1 in
  Alcotest.(check string) "schedule unchanged"
    (Schedule.to_string (Runner.generate { base with Runner.profile = None }))
    (Schedule.to_string (Runner.generate base));
  (* ...and on a fault-free run the defenses are pure bookkeeping: enabling
     every one of them leaves the committed history byte-identical *)
  let digest ~client_quota ~retransmit_budget ~perf_watchdog =
    let _, r =
      run_attack ?client_quota ?retransmit_budget ~perf_watchdog ~seed:11 ""
    in
    r.Runner.history_digest
  in
  Alcotest.(check string) "defenses inert on clean runs"
    (digest ~client_quota:None ~retransmit_budget:None ~perf_watchdog:false)
    (digest ~client_quota:(Some 8) ~retransmit_budget:(Some 4) ~perf_watchdog:true)

let suites =
  [
    ( "attack",
      [
        Alcotest.test_case "flood dropped and counted" `Quick test_flood_dropped_and_counted;
        Alcotest.test_case "clean run admits everything" `Quick test_clean_run_admits_everything;
        Alcotest.test_case "wrong-MAC peer exhausts budget" `Quick test_wrong_mac_exhausts_budget;
        Alcotest.test_case "slow primary view-changed away" `Quick
          test_slow_primary_view_changed_away;
        Alcotest.test_case "fast primary: watchdog silent" `Quick
          test_fast_primary_watchdog_silent;
        Alcotest.test_case "client timeout stable across vc" `Quick
          test_client_timeout_stable_across_view_change;
        Alcotest.test_case "attack actions round-trip" `Quick test_attack_actions_roundtrip;
        Alcotest.test_case "profiles expand and round-trip" `Quick
          test_profiles_expand_and_roundtrip;
        Alcotest.test_case "malformed attack actions rejected" `Quick
          test_malformed_attack_actions_rejected;
        Alcotest.test_case "profiles off: byte-identical" `Quick test_no_profile_means_no_change;
      ] );
  ]

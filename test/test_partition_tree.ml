(* Hierarchical partition tree: digests, copy-on-write, geometry. *)

open Bft_core

let build ?prev ?(seq = 1) ?(page_size = 16) ?(branching = 4) s =
  Partition_tree.build ?prev ~seq ~page_size ~branching s

let test_empty_state () =
  let t = build "" in
  Alcotest.(check int) "one page" 1 (Partition_tree.num_pages t);
  Alcotest.(check int) "two levels" 2 (Partition_tree.depth t);
  Alcotest.(check string) "page empty" "" (Partition_tree.page t 0).Partition_tree.data;
  Alcotest.(check string) "snapshot" "" (Partition_tree.snapshot t)

let test_snapshot_roundtrip () =
  List.iter
    (fun len ->
      let s = String.init len (fun i -> Char.chr (i mod 256)) in
      let t = build s in
      Alcotest.(check string) (Printf.sprintf "len=%d" len) s (Partition_tree.snapshot t))
    [ 0; 1; 15; 16; 17; 64; 65; 255; 1024 ]

let test_page_count () =
  Alcotest.(check int) "17 bytes -> 2 pages" 2 (Partition_tree.num_pages (build (String.make 17 'a')));
  Alcotest.(check int) "16 bytes -> 1 page" 1 (Partition_tree.num_pages (build (String.make 16 'a')));
  (* 5 pages with branching 4 -> pages, one meta level of 2, root: depth 3 *)
  let t = build (String.make 80 'a') in
  Alcotest.(check int) "80 bytes -> 5 pages" 5 (Partition_tree.num_pages t);
  Alcotest.(check int) "depth 3" 3 (Partition_tree.depth t)

let test_root_digest_changes_with_content () =
  let t1 = build (String.make 64 'a') in
  let t2 = build (String.make 64 'b') in
  Alcotest.(check bool) "different content different root" true
    (not (String.equal (Partition_tree.root_digest t1) (Partition_tree.root_digest t2)));
  let t3 = build (String.make 64 'a') in
  Alcotest.(check string) "deterministic"
    (Bft_util.Hex.encode (Partition_tree.root_digest t1))
    (Bft_util.Hex.encode (Partition_tree.root_digest t3))

let test_copy_on_write_reuse () =
  let s1 = String.make 64 'a' in
  let t1 = build ~seq:1 s1 in
  (* change only the second page *)
  let s2 = String.sub s1 0 16 ^ String.make 16 'X' ^ String.sub s1 32 32 in
  let t2 = build ~prev:t1 ~seq:2 s2 in
  Alcotest.(check int) "only 16 bytes re-digested" 16 (Partition_tree.digested_bytes t2);
  (* unchanged pages keep their lm from the earlier checkpoint *)
  Alcotest.(check int) "page 0 lm" 1 (Partition_tree.page t2 0).Partition_tree.lm;
  Alcotest.(check int) "page 1 lm" 2 (Partition_tree.page t2 1).Partition_tree.lm;
  (* physical sharing *)
  Alcotest.(check bool) "page 0 shared" true
    (Partition_tree.page t2 0 == Partition_tree.page t1 0)

let test_incremental_equals_scratch () =
  (* a tree built incrementally must hash identically to one built from
     scratch at the same sequence number *)
  let s1 = String.make 64 'a' in
  let s2 = String.sub s1 0 48 ^ String.make 16 'z' in
  let t1 = build ~seq:1 s1 in
  let incr = build ~prev:t1 ~seq:2 s2 in
  (* from scratch, the unchanged pages must carry lm = 1, which a fresh
     build cannot know; so compare against a fresh chain instead *)
  let fresh1 = build ~seq:1 s1 in
  let fresh2 = build ~prev:fresh1 ~seq:2 s2 in
  Alcotest.(check string) "same root"
    (Bft_util.Hex.encode (Partition_tree.root_digest incr))
    (Bft_util.Hex.encode (Partition_tree.root_digest fresh2))

let test_children_consistent_with_node_info () =
  let t = build (String.make 300 'q') in
  (* walk every interior level and recheck children lists *)
  for level = 0 to Partition_tree.depth t - 2 do
    let width = if level = 0 then 1 else List.length (Partition_tree.children t ~level:(level - 1) ~index:0) in
    ignore width;
    let children = Partition_tree.children t ~level ~index:0 in
    Alcotest.(check bool) (Printf.sprintf "level %d nonempty" level) true (children <> []);
    List.iter
      (fun (idx, lm, d) ->
        let lm', d' = Partition_tree.node_info t ~level:(level + 1) ~index:idx in
        Alcotest.(check int) "lm matches" lm lm';
        Alcotest.(check bool) "digest matches" true (String.equal d d'))
      children
  done

let test_rebuild_page_matches () =
  let t = build ~seq:5 (String.make 40 'k') in
  let p = Partition_tree.page t 1 in
  let r = Partition_tree.rebuild_page ~index:1 ~lm:p.Partition_tree.lm ~data:p.Partition_tree.data in
  Alcotest.(check bool) "digest reproducible" true
    (String.equal p.Partition_tree.digest r.Partition_tree.digest);
  (* lm participates in the digest: state transfer detects stale pages *)
  let r' = Partition_tree.rebuild_page ~index:1 ~lm:(p.Partition_tree.lm + 1) ~data:p.Partition_tree.data in
  Alcotest.(check bool) "lm in digest" true
    (not (String.equal p.Partition_tree.digest r'.Partition_tree.digest))

let test_page_index_in_digest () =
  let a = Partition_tree.rebuild_page ~index:0 ~lm:1 ~data:"same" in
  let b = Partition_tree.rebuild_page ~index:1 ~lm:1 ~data:"same" in
  Alcotest.(check bool) "index in digest" true
    (not (String.equal a.Partition_tree.digest b.Partition_tree.digest))

let test_growth_and_shrink () =
  let t1 = build ~seq:1 (String.make 32 'a') in
  let t2 = build ~prev:t1 ~seq:2 (String.make 64 'a') in
  Alcotest.(check int) "grown to 4 pages" 4 (Partition_tree.num_pages t2);
  Alcotest.(check string) "snapshot grown" (String.make 64 'a') (Partition_tree.snapshot t2);
  let t3 = build ~prev:t2 ~seq:3 (String.make 8 'a') in
  Alcotest.(check int) "shrunk to 1 page" 1 (Partition_tree.num_pages t3);
  Alcotest.(check string) "snapshot shrunk" (String.make 8 'a') (Partition_tree.snapshot t3)

let test_invalid_args () =
  Alcotest.check_raises "page_size" (Invalid_argument "Partition_tree.build: page_size")
    (fun () -> ignore (Partition_tree.build ~seq:0 ~page_size:0 ~branching:4 ""));
  Alcotest.check_raises "branching" (Invalid_argument "Partition_tree.build: branching")
    (fun () -> ignore (Partition_tree.build ~seq:0 ~page_size:4 ~branching:1 ""));
  let t = build "abc" in
  Alcotest.check_raises "page range" (Invalid_argument "Partition_tree.page") (fun () ->
      ignore (Partition_tree.page t 5))

let prop_snapshot_roundtrip =
  QCheck.Test.make ~name:"snapshot roundtrip (random)" ~count:100
    QCheck.(pair (string_of_size QCheck.Gen.(0 -- 500)) (int_range 1 64))
    (fun (s, page_size) ->
      let t = Partition_tree.build ~seq:1 ~page_size ~branching:3 s in
      String.equal (Partition_tree.snapshot t) s)

let prop_cow_digest_stable =
  QCheck.Test.make ~name:"unchanged state keeps root digest" ~count:50
    (QCheck.string_of_size QCheck.Gen.(0 -- 300))
    (fun s ->
      let t1 = Partition_tree.build ~seq:1 ~page_size:16 ~branching:4 s in
      let t2 = Partition_tree.build ~prev:t1 ~seq:2 ~page_size:16 ~branching:4 s in
      String.equal (Partition_tree.root_digest t1) (Partition_tree.root_digest t2)
      && Partition_tree.digested_bytes t2 = 0)

(* --- incremental update (O(dirty) checkpointing) --- *)

let build_chunks ?prev ~seq ~page_size ~branching chunks =
  Partition_tree.build_pages ?prev ~seq ~page_size ~branching chunks

let test_update_noop () =
  let chunks = [| String.make 16 'a'; String.make 16 'b'; "tail" |] in
  let t1 = build_chunks ~seq:1 ~page_size:16 ~branching:2 chunks in
  let t2 = Partition_tree.update t1 ~seq:2 ~pages:chunks ~dirty:[ 0; 2 ] in
  Alcotest.(check int) "nothing digested" 0 (Partition_tree.digested_bytes t2);
  Alcotest.(check int) "seq advanced" 2 (Partition_tree.seq t2);
  Alcotest.(check string) "root unchanged"
    (Bft_util.Hex.encode (Partition_tree.root_digest t1))
    (Bft_util.Hex.encode (Partition_tree.root_digest t2))

let test_update_sparse_digest_cost () =
  (* 64 pages, one dirtied: exactly one page's bytes are re-hashed *)
  let chunks = Array.init 64 (fun i -> String.make 16 (Char.chr (Char.code 'a' + (i mod 26)))) in
  let t1 = build_chunks ~seq:1 ~page_size:16 ~branching:4 chunks in
  chunks.(17) <- String.make 16 'Z';
  let t2 = Partition_tree.update t1 ~seq:2 ~pages:chunks ~dirty:[ 17 ] in
  Alcotest.(check int) "one page digested" 16 (Partition_tree.digested_bytes t2);
  Alcotest.(check int) "write set of seq 2" 1 (Partition_tree.pages_modified_at t2 ~seq:2);
  (* clean pages and untouched interior subtrees are physically shared *)
  Alcotest.(check bool) "clean page shared" true
    (Partition_tree.page t2 0 == Partition_tree.page t1 0);
  let fresh1 = build_chunks ~seq:1 ~page_size:16 ~branching:4
      (Array.init 64 (fun i -> String.make 16 (Char.chr (Char.code 'a' + (i mod 26))))) in
  let fresh2 = build_chunks ~prev:fresh1 ~seq:2 ~page_size:16 ~branching:4 chunks in
  Alcotest.(check string) "root = from-scratch chain"
    (Bft_util.Hex.encode (Partition_tree.root_digest fresh2))
    (Bft_util.Hex.encode (Partition_tree.root_digest t2))

let test_update_geometry_fallback () =
  let chunks = [| String.make 16 'a'; "bb" |] in
  let t1 = build_chunks ~seq:1 ~page_size:16 ~branching:2 chunks in
  let grown = [| String.make 16 'a'; String.make 16 'b'; "cc" |] in
  let t2 = Partition_tree.update t1 ~seq:2 ~pages:grown ~dirty:[] in
  Alcotest.(check int) "grown to 3 pages" 3 (Partition_tree.num_pages t2);
  let r2 = build_chunks ~prev:t1 ~seq:2 ~page_size:16 ~branching:2 grown in
  Alcotest.(check string) "fallback = build_pages ~prev"
    (Bft_util.Hex.encode (Partition_tree.root_digest r2))
    (Bft_util.Hex.encode (Partition_tree.root_digest t2))

let test_update_invalid () =
  let chunks = [| String.make 16 'a'; "bb" |] in
  let t1 = build_chunks ~seq:1 ~page_size:16 ~branching:2 chunks in
  Alcotest.check_raises "dirty out of range"
    (Invalid_argument "Partition_tree.update: dirty index") (fun () ->
      ignore (Partition_tree.update t1 ~seq:2 ~pages:chunks ~dirty:[ 7 ]));
  Alcotest.check_raises "short interior page"
    (Invalid_argument "Partition_tree.update: short interior page") (fun () ->
      ignore (Partition_tree.update t1 ~seq:2 ~pages:[| "short"; "bb" |] ~dirty:[ 0 ]))

let test_of_pages_mixed_lm () =
  (* state transfer: reassembling pages with their own (older) lms must
     reproduce the incrementally-built root digest *)
  let chunks = Array.init 9 (fun i -> String.make 8 (Char.chr (Char.code 'a' + i))) in
  let t1 = build_chunks ~seq:1 ~page_size:8 ~branching:3 chunks in
  chunks.(4) <- String.make 8 'Q';
  let t2 = Partition_tree.update t1 ~seq:2 ~pages:chunks ~dirty:[ 4 ] in
  let pages = Array.init (Partition_tree.num_pages t2) (Partition_tree.page t2) in
  let re = Partition_tree.of_pages ~seq:2 ~page_size:8 ~branching:3 pages in
  Alcotest.(check string) "root reproduced"
    (Bft_util.Hex.encode (Partition_tree.root_digest t2))
    (Bft_util.Hex.encode (Partition_tree.root_digest re));
  (* a from-scratch build stamps every page with the target seq and cannot
     reproduce it: pages 0..3,5..8 still carry lm = 1 *)
  let scratch = Partition_tree.build ~seq:2 ~page_size:8 ~branching:3 (Partition_tree.snapshot t2) in
  Alcotest.(check bool) "scratch build differs" true
    (not (String.equal (Partition_tree.root_digest scratch) (Partition_tree.root_digest t2)))

let prop_update_equals_build =
  (* random op sequences and (over-approximated) dirty sets: the
     incrementally-updated tree must be byte-identical to the
     copy-on-write from-scratch chain at every node of every level *)
  QCheck.Test.make ~name:"update = build chain (random ops/dirty sets)" ~count:80
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 6))
    (fun (seed, steps) ->
      let st = Random.State.make [| seed |] in
      let page_size = 8 + Random.State.int st 24 in
      let branching = 2 + Random.State.int st 4 in
      let n = 1 + Random.State.int st 40 in
      let last_len = 1 + Random.State.int st page_size in
      let mk_page len = String.init len (fun _ -> Char.chr (Random.State.int st 256)) in
      let pages =
        Array.init n (fun i -> mk_page (if i = n - 1 then last_len else page_size))
      in
      let t_upd = ref (build_chunks ~seq:1 ~page_size ~branching pages) in
      let t_ref = ref (build_chunks ~seq:1 ~page_size ~branching pages) in
      let ok = ref true in
      for s = 2 to 1 + steps do
        let before = Array.copy pages in
        let dirty = ref [] in
        for _ = 1 to 1 + Random.State.int st (max 1 (n / 2)) do
          let i = Random.State.int st n in
          (* sometimes listed dirty without actually changing: the update
             must byte-compare and keep the old record *)
          if Random.State.bool st then pages.(i) <- mk_page (String.length pages.(i));
          dirty := i :: !dirty
        done;
        for _ = 1 to Random.State.int st 3 do
          dirty := Random.State.int st n :: !dirty
        done;
        let chunks = Array.copy pages in
        let prev_u = !t_upd in
        let u = Partition_tree.update prev_u ~seq:s ~pages:chunks ~dirty:!dirty in
        let r = build_chunks ~prev:!t_ref ~seq:s ~page_size ~branching chunks in
        ok :=
          !ok
          && String.equal (Partition_tree.root_digest u) (Partition_tree.root_digest r)
          && Partition_tree.digested_bytes u = Partition_tree.digested_bytes r
          && Partition_tree.depth u = Partition_tree.depth r;
        for level = 0 to Partition_tree.depth u - 1 do
          ok := !ok && Partition_tree.level_width u level = Partition_tree.level_width r level;
          for idx = 0 to Partition_tree.level_width u level - 1 do
            let lmu, du = Partition_tree.node_info u ~level ~index:idx in
            let lmr, dr = Partition_tree.node_info r ~level ~index:idx in
            ok := !ok && lmu = lmr && String.equal du dr
          done
        done;
        (* unchanged pages keep their physical record *)
        for i = 0 to n - 1 do
          if String.equal before.(i) pages.(i) then
            ok := !ok && Partition_tree.page u i == Partition_tree.page prev_u i
        done;
        t_upd := u;
        t_ref := r
      done;
      !ok)

let suites =
  [
    ( "core.partition_tree",
      [
        Alcotest.test_case "empty state" `Quick test_empty_state;
        Alcotest.test_case "snapshot roundtrip" `Quick test_snapshot_roundtrip;
        Alcotest.test_case "page count" `Quick test_page_count;
        Alcotest.test_case "root digest content" `Quick test_root_digest_changes_with_content;
        Alcotest.test_case "copy-on-write reuse" `Quick test_copy_on_write_reuse;
        Alcotest.test_case "incremental = scratch" `Quick test_incremental_equals_scratch;
        Alcotest.test_case "children consistent" `Quick test_children_consistent_with_node_info;
        Alcotest.test_case "rebuild page" `Quick test_rebuild_page_matches;
        Alcotest.test_case "index in digest" `Quick test_page_index_in_digest;
        Alcotest.test_case "growth and shrink" `Quick test_growth_and_shrink;
        Alcotest.test_case "invalid args" `Quick test_invalid_args;
        Alcotest.test_case "update: no-op" `Quick test_update_noop;
        Alcotest.test_case "update: sparse digest cost" `Quick test_update_sparse_digest_cost;
        Alcotest.test_case "update: geometry fallback" `Quick test_update_geometry_fallback;
        Alcotest.test_case "update: invalid args" `Quick test_update_invalid;
        Alcotest.test_case "of_pages: mixed lm" `Quick test_of_pages_mixed_lm;
        QCheck_alcotest.to_alcotest prop_snapshot_roundtrip;
        QCheck_alcotest.to_alcotest prop_cow_digest_stable;
        QCheck_alcotest.to_alcotest prop_update_equals_build;
      ] );
  ]

(* Incremental checkpointing: the paged record arena, dirty-aware services,
   hardened replica snapshot restore, and paged end-to-end clusters. *)

open Bft_core
module Img = Bft_sm.Paged_image

(* --- paged record arena --- *)

let test_image_roundtrip () =
  let a = Img.create ~page_size:64 () in
  Img.set a ~key:"alpha" ~value:"1";
  Img.set a ~key:"beta" ~value:"two";
  Img.set a ~key:"alpha" ~value:"9";
  Alcotest.(check (option string)) "updated" (Some "9") (Img.find a ~key:"alpha");
  Alcotest.(check (option string)) "other" (Some "two") (Img.find a ~key:"beta");
  Alcotest.(check bool) "remove" true (Img.remove a ~key:"beta");
  Alcotest.(check bool) "remove again" false (Img.remove a ~key:"beta");
  Alcotest.(check (option string)) "gone" None (Img.find a ~key:"beta");
  let seen = ref [] in
  Img.iter a (fun k v -> seen := (k, v) :: !seen);
  Alcotest.(check (list (pair string string))) "iter" [ ("alpha", "9") ] !seen;
  Alcotest.(check string) "image = concat pages"
    (String.concat "" (Array.to_list (Img.pages a)))
    (Img.image a);
  (* restore into a fresh arena reproduces the exact bytes *)
  let b = Img.create ~page_size:64 () in
  (match Img.restore b (Img.image a) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "restore failed: %s" e);
  Alcotest.(check string) "restored image" (Img.image a) (Img.image b)

let test_image_page_shape_and_sharing () =
  let a = Img.create ~page_size:32 () in
  for i = 1 to 40 do
    Img.set a ~key:(Printf.sprintf "k%03d" i) ~value:(Printf.sprintf "v%03d" i)
  done;
  let ps = Img.pages a in
  Array.iter (fun p -> Alcotest.(check int) "full page" 32 (String.length p)) ps;
  (* a second call returns physically identical strings *)
  let ps' = Img.pages a in
  Array.iteri
    (fun i p ->
      Alcotest.(check bool) "shared" true ((p == ps'.(i)) [@lint.allow "digest-compare"]))
    ps;
  (* an in-place overwrite leaves untouched pages physically shared *)
  Img.set a ~key:"k001" ~value:"V001";
  let ps'' = Img.pages a in
  let shared = ref 0 in
  (* physical sharing is the property under test *)
  Array.iteri
    (fun i p ->
      if i < Array.length ps && ((p == ps.(i)) [@lint.allow "digest-compare"]) then incr shared)
    ps'';
  Alcotest.(check bool)
    (Printf.sprintf "most pages shared (%d/%d)" !shared (Array.length ps''))
    true
    (!shared >= Array.length ps'' - 2)

let test_image_dirty_tracking () =
  let a = Img.create ~page_size:32 () in
  ignore (Img.drain_dirty a);
  Alcotest.(check (list int)) "clean after drain" [] (Img.drain_dirty a);
  (* push the record of interest past page 0 so header and record pages
     are distinguishable *)
  Img.set a ~key:"filler" ~value:(String.make 40 'f');
  Img.set a ~key:"k" ~value:(String.make 32 'a');
  ignore (Img.drain_dirty a);
  (* rewriting a record with identical bytes dirties nothing *)
  Img.set a ~key:"k" ~value:(String.make 32 'a');
  Alcotest.(check (list int)) "identical rewrite" [] (Img.drain_dirty a);
  (* a same-length in-place change dirties only the record's pages, not the
     header (no allocation) *)
  Img.set a ~key:"k" ~value:(String.make 32 'b');
  let d = Img.drain_dirty a in
  Alcotest.(check bool) "no header page" true (not (List.mem 0 d));
  Alcotest.(check bool) "some page dirty" true (d <> []);
  (* an allocation moves the bump pointer: page 0 is dirty again *)
  Img.set a ~key:"k2" ~value:"fresh";
  Alcotest.(check bool) "header dirty on alloc" true (List.mem 0 (Img.drain_dirty a))

let test_image_determinism_across_restore () =
  (* a replica that restored mid-history must produce byte-identical
     images from the same subsequent operations *)
  let ops1 = List.init 20 (fun i -> (Printf.sprintf "k%d" i, Printf.sprintf "v%d" i)) in
  let ops2 = List.init 10 (fun i -> (Printf.sprintf "k%d" (2 * i), Printf.sprintf "w%d" i)) in
  let a = Img.create ~page_size:64 () in
  List.iter (fun (k, v) -> Img.set a ~key:k ~value:v) ops1;
  let b = Img.create ~page_size:64 () in
  (match Img.restore b (Img.image a) with Ok _ -> () | Error e -> Alcotest.fail e);
  List.iter
    (fun (k, v) ->
      Img.set a ~key:k ~value:v;
      Img.set b ~key:k ~value:v)
    ops2;
  ignore (Img.remove a ~key:"k3");
  ignore (Img.remove b ~key:"k3");
  Alcotest.(check string) "identical images" (Img.image a) (Img.image b)

let test_image_decode_malformed () =
  let a = Img.create ~page_size:32 () in
  Img.set a ~key:"key" ~value:"value";
  let good = Img.image a in
  let corrupt pos c = String.mapi (fun i ch -> if i = pos then c else ch) good in
  let is_err s =
    match Img.decode ~page_size:32 s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "good decodes" false (is_err good);
  Alcotest.(check bool) "garbage" true (is_err "nonsense");
  Alcotest.(check bool) "empty" true (is_err "");
  Alcotest.(check bool) "bad header" true (is_err (corrupt 6 'x'));
  Alcotest.(check bool) "bad record" true (is_err (corrupt 20 '\255'));
  Alcotest.(check bool) "truncated" true (is_err (String.sub good 0 (String.length good - 1)));
  Alcotest.(check bool) "nonzero tail" true
    (is_err (corrupt (String.length good - 1) 'x'));
  (* restore is atomic: a rejected image leaves the arena untouched *)
  (match Img.restore a (corrupt 20 '\255') with
  | Ok _ -> Alcotest.fail "corrupt image accepted"
  | Error _ -> ());
  Alcotest.(check string) "arena untouched" good (Img.image a);
  Alcotest.(check (option string)) "record intact" (Some "value") (Img.find a ~key:"key")

(* --- paged key-value service --- *)

let exec (s : Bft_sm.Service.t) ?(client = 5) ?(nondet = "") op =
  s.Bft_sm.Service.execute ~client ~op ~nondet

let kv_ops =
  [ "put a 1"; "put b 2"; "put c 3"; "cas a 1 10"; "cas b 9 x"; "del c";
    "touch t"; "put a 11"; "get a"; "get b"; "get c"; "size"; "del nope" ]

let test_kv_paged_equiv_flat () =
  let flat = Bft_sm.Kv_service.create () in
  let paged = Bft_sm.Kv_service.create ~paged:64 () in
  List.iter
    (fun op ->
      Alcotest.(check string) op (exec flat ~nondet:"42" op) (exec paged ~nondet:"42" op))
    kv_ops;
  Alcotest.(check bool) "paged interface present" true
    (paged.Bft_sm.Service.paged <> None);
  Alcotest.(check bool) "flat has none" true (flat.Bft_sm.Service.paged = None)

let test_kv_paged_snapshot_roundtrip () =
  let s = Bft_sm.Kv_service.create ~paged:64 () in
  List.iter (fun op -> ignore (exec s op)) kv_ops;
  let snap = s.Bft_sm.Service.snapshot () in
  let s2 = Bft_sm.Kv_service.create ~paged:64 () in
  s2.Bft_sm.Service.restore snap;
  Alcotest.(check string) "snapshot stable" snap (s2.Bft_sm.Service.snapshot ());
  Alcotest.(check string) "value restored" "11" (exec s2 "get a");
  Alcotest.(check string) "deleted stays deleted" "ENOENT" (exec s2 "get c")

let test_kv_paged_restore_rejects_malformed () =
  let s = Bft_sm.Kv_service.create ~paged:64 () in
  ignore (exec s "put a 1");
  let before = s.Bft_sm.Service.snapshot () in
  (* corrupt arena: rejected, state untouched *)
  s.Bft_sm.Service.restore
    (String.mapi (fun i c -> if i = 25 then '\255' else c) before);
  Alcotest.(check string) "corrupt rejected" before (s.Bft_sm.Service.snapshot ());
  (* structurally valid arena that is not a kv image (no ACL record) *)
  let alien = Img.create ~page_size:64 () in
  Img.set alien ~key:"Bk" ~value:"v";
  s.Bft_sm.Service.restore (Img.image alien);
  Alcotest.(check string) "alien rejected" before (s.Bft_sm.Service.snapshot ());
  Alcotest.(check string) "still serves" "1" (exec s "get a")

let test_kv_paged_acl_sync () =
  let mk () = Bft_sm.Kv_service.create ~paged:64 ~restrict:[ 5 ] () in
  let s = mk () in
  Alcotest.(check string) "acl denies" Bft_sm.Service.denied (exec s ~client:6 "put x 1");
  ignore (exec s ~client:0 "grant 6");
  Alcotest.(check string) "granted" "ok" (exec s ~client:6 "put x 1");
  (* the grant travels through the arena image *)
  let s2 = mk () in
  s2.Bft_sm.Service.restore (s.Bft_sm.Service.snapshot ());
  Alcotest.(check string) "acl restored" "ok" (exec s2 ~client:6 "put y 2")

(* --- paged BFS --- *)

let test_bfs_paged_equiv_flat () =
  let flat = Bft_bfs.Bfs_service.create () in
  let paged = Bft_bfs.Bfs_service.create ~paged:128 () in
  let both op =
    let a = exec flat ~nondet:"7" op and b = exec paged ~nondet:"7" op in
    Alcotest.(check string) op a b;
    a
  in
  ignore (both "mkdir 1 src");
  ignore (both "create 2 main.c");
  ignore (both (Bft_bfs.Bfs_service.op_write ~ino:3 ~off:0 "hello paged world"));
  ignore (both "mkdir 1 doc");
  ignore (both "create 4 readme");
  ignore (both (Bft_bfs.Bfs_service.op_write ~ino:5 ~off:0 (String.make 300 'z')));
  ignore (both "rename 1 src 1 lib");
  ignore (both "truncate 5 100");
  ignore (both "remove 2 main.c");
  ignore (both "readdir 1");
  ignore (both "getattr 5");
  ignore (both (Bft_bfs.Bfs_service.op_read ~ino:5 ~off:0 ~len:100));
  (* paged snapshot roundtrip: byte-identical arena *)
  let snap = paged.Bft_sm.Service.snapshot () in
  let fresh = Bft_bfs.Bfs_service.create ~paged:128 () in
  fresh.Bft_sm.Service.restore snap;
  Alcotest.(check string) "arena roundtrip" snap (fresh.Bft_sm.Service.snapshot ());
  (* a flat snapshot restores into a paged service (canonical rebuild) *)
  let flat_snap = flat.Bft_sm.Service.snapshot () in
  let from_flat = Bft_bfs.Bfs_service.create ~paged:128 () in
  from_flat.Bft_sm.Service.restore flat_snap;
  Alcotest.(check string) "content preserved across formats"
    (exec paged (Bft_bfs.Bfs_service.op_read ~ino:5 ~off:0 ~len:100))
    (exec from_flat (Bft_bfs.Bfs_service.op_read ~ino:5 ~off:0 ~len:100));
  Alcotest.(check string) "directory preserved" (exec paged "readdir 1")
    (exec from_flat "readdir 1")

(* --- replica snapshot hardening --- *)

let make ?(f = 1) ?(seed = 42L) ?service ?(clients = 1) ?(k = 8) ?page_size () =
  let cfg = Config.make ~checkpoint_interval:k ~vc_timeout_us:30_000.0 ~f () in
  (cfg, Cluster.create ~seed ?service ?page_size ~num_clients:clients cfg)

let test_replica_restore_malformed () =
  let _, c = make ~service:(fun () -> Bft_sm.Kv_service.create ()) () in
  for i = 1 to 3 do
    ignore (Cluster.invoke_sync c ~client:0 (Printf.sprintf "put k%d v%d" i i))
  done;
  let r = Cluster.replica c 0 in
  let good = Replica.full_snapshot r in
  Alcotest.(check bool) "has reply records" true
    (String.length good > String.length (Replica.service_state r) + 8);
  let state = Replica.service_state r in
  let expect_error name s =
    (match Replica.restore_snapshot r s with
    | Ok () -> Alcotest.failf "%s: malformed snapshot accepted" name
    | Error _ -> ());
    Alcotest.(check string) (name ^ ": service untouched") state (Replica.service_state r);
    Alcotest.(check string) (name ^ ": snapshot untouched") good (Replica.full_snapshot r)
  in
  expect_error "no header" "";
  expect_error "non-numeric header" ("xyz\n" ^ String.sub good 4 (String.length good - 4));
  expect_error "length past end" ("999999999\n" ^ good);
  expect_error "truncated reply record" (String.sub good 0 (String.length good - 2));
  expect_error "unterminated reply header" (good ^ "1 2 3");
  expect_error "malformed reply header" (good ^ "1 2\nx");
  expect_error "bad reply ints" (good ^ "a b c d\n");
  expect_error "bad paged header" "PAGED 10 10\n";
  (* the canonical snapshot still restores *)
  (match Replica.restore_snapshot r good with
  | Ok () -> ()
  | Error e -> Alcotest.failf "good snapshot rejected: %s" e);
  Alcotest.(check string) "roundtrip" good (Replica.full_snapshot r)

(* --- paged clusters end-to-end --- *)

let paged_kv () = Bft_sm.Kv_service.create ~paged:256 ()

let test_paged_cluster_checkpoints () =
  (* checkpoint digests over the paged image must agree across replicas:
     stability requires a quorum of matching roots *)
  let _, c = make ~service:paged_kv ~page_size:256 () in
  for i = 1 to 30 do
    Alcotest.(check string) "put" "ok"
      (Cluster.invoke_sync c ~client:0 (Printf.sprintf "put key%d value%d" i i))
  done;
  ignore
    (Cluster.run_until ~timeout_us:10_000_000.0 c (fun () ->
         Array.for_all (fun r -> Replica.stable_checkpoint r >= 24) (Cluster.replicas c)));
  Array.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "replica %d stabilized paged checkpoints" (Replica.id r))
        true
        (Replica.stable_checkpoint r >= 24))
    (Cluster.replicas c);
  Alcotest.(check bool) "consistent" true (Cluster.committed_histories_consistent c);
  Alcotest.(check string) "reads served from paged state" "value7"
    (Cluster.invoke_sync c ~client:0 "get key7")

let test_paged_cluster_state_transfer () =
  (* a rebooted replica fetches a paged checkpoint whose clean pages carry
     older lm values — the rebuilt tree must still match the quorum root *)
  let _, c = make ~service:paged_kv ~page_size:256 () in
  Bft_net.Network.crash (Cluster.network c) ~id:3;
  for i = 1 to 30 do
    ignore (Cluster.invoke_sync c ~client:0 (Printf.sprintf "put k%d v%d" i i))
  done;
  Bft_net.Network.restart (Cluster.network c) ~id:3;
  Replica.crash_reboot (Cluster.replica c 3);
  let caught =
    Cluster.run_until ~timeout_us:20_000_000.0 c (fun () ->
        Replica.last_executed (Cluster.replica c 3)
        >= Replica.stable_checkpoint (Cluster.replica c 0))
  in
  Alcotest.(check bool) "caught up" true caught;
  Alcotest.(check bool) "used state transfer" true
    ((Replica.counters (Cluster.replica c 3)).Replica.n_state_transfers >= 1);
  Alcotest.(check string) "transferred state serves reads" "v3"
    (Cluster.invoke_sync ~timeout_us:30_000_000.0 c ~client:0 "get k3")

let test_paged_cluster_view_change () =
  let _, c = make ~service:paged_kv ~page_size:256 () in
  ignore (Cluster.invoke_sync c ~client:0 "put survived yes");
  Replica.mute (Cluster.replica c 0) true;
  ignore (Cluster.invoke_sync ~timeout_us:30_000_000.0 c ~client:0 "put extra 1");
  Alcotest.(check string) "committed data preserved across views" "yes"
    (Cluster.invoke_sync ~timeout_us:30_000_000.0 c ~client:0 "get survived");
  Alcotest.(check bool) "consistent" true (Cluster.committed_histories_consistent c)

let suites =
  [
    ( "sm.paged_image",
      [
        Alcotest.test_case "record roundtrip" `Quick test_image_roundtrip;
        Alcotest.test_case "page shape and sharing" `Quick test_image_page_shape_and_sharing;
        Alcotest.test_case "dirty tracking" `Quick test_image_dirty_tracking;
        Alcotest.test_case "determinism across restore" `Quick test_image_determinism_across_restore;
        Alcotest.test_case "malformed images rejected" `Quick test_image_decode_malformed;
      ] );
    ( "sm.paged_services",
      [
        Alcotest.test_case "kv: paged = flat" `Quick test_kv_paged_equiv_flat;
        Alcotest.test_case "kv: snapshot roundtrip" `Quick test_kv_paged_snapshot_roundtrip;
        Alcotest.test_case "kv: malformed restore rejected" `Quick test_kv_paged_restore_rejects_malformed;
        Alcotest.test_case "kv: acl through arena" `Quick test_kv_paged_acl_sync;
        Alcotest.test_case "bfs: paged = flat" `Quick test_bfs_paged_equiv_flat;
      ] );
    ( "core.paged_replica",
      [
        Alcotest.test_case "restore_snapshot rejects malformed" `Quick test_replica_restore_malformed;
        Alcotest.test_case "paged checkpoints stabilize" `Quick test_paged_cluster_checkpoints;
        Alcotest.test_case "paged state transfer" `Quick test_paged_cluster_state_transfer;
        Alcotest.test_case "paged view change" `Quick test_paged_cluster_view_change;
      ] );
  ]

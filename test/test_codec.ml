(* Wire codec round-trip: decode (encode m) = m for every message type,
   with randomized contents, plus malformed-input rejection. *)

open Bft_core
open Message

(* QCheck generators for protocol messages *)
module Gen = struct
  open QCheck.Gen

  let digest = map (fun c -> String.make 32 c) printable
  let short_string = string_size ~gen:printable (0 -- 40)
  let seqno = 0 -- 10_000
  let view = 0 -- 50
  let replica = 0 -- 6
  let client = 100 -- 120
  let ts = map Int64.of_int (0 -- 1_000_000)

  let request =
    map
      (fun (op, (timestamp, client, read_only, replier)) ->
        { op; timestamp; client; read_only; replier })
      (pair short_string (quad ts client bool replica))

  let batch_elem =
    frequency
      [ (3, map (fun r -> Inline (r, Auth_none)) request); (1, map (fun d -> By_digest d) digest) ]

  let pset_entry =
    map (fun (pe_seq, pe_digest, pe_view) -> { pe_seq; pe_digest; pe_view })
      (triple seqno digest view)

  let qset_entry =
    map (fun (qe_seq, qe_entries) -> { qe_seq; qe_entries })
      (pair seqno (list_size (1 -- 3) (pair digest view)))

  let message =
    frequency
      [
        (3, map (fun r -> Request r) request);
        ( 2,
          map
            (fun ((v, t, c), (r, tent, res)) ->
              Reply
                {
                  rp_view = v;
                  rp_timestamp = t;
                  rp_client = c;
                  rp_replica = r;
                  rp_tentative = tent;
                  rp_result = res;
                })
            (pair (triple view ts client)
               (triple replica bool
                  (frequency
                     [
                       (2, map (fun s -> Full s) short_string);
                       (1, map (fun d -> Result_digest d) digest);
                     ]))) );
        ( 3,
          map
            (fun (v, n, batch, nd) ->
              Pre_prepare { pp_view = v; pp_seq = n; pp_batch = batch; pp_nondet = nd })
            (quad view seqno (list_size (0 -- 4) batch_elem) short_string) );
        ( 2,
          map
            (fun (v, n, d, i) -> Prepare { pr_view = v; pr_seq = n; pr_digest = d; pr_replica = i })
            (quad view seqno digest replica) );
        ( 2,
          map
            (fun (v, n, d, i) -> Commit { cm_view = v; cm_seq = n; cm_digest = d; cm_replica = i })
            (quad view seqno digest replica) );
        ( 1,
          map (fun (n, d, i) -> Checkpoint { ck_seq = n; ck_digest = d; ck_replica = i })
            (triple seqno digest replica) );
        ( 2,
          map
            (fun ((v, h, i), (cset, pset, qset)) ->
              View_change
                { vc_view = v; vc_h = h; vc_cset = cset; vc_pset = pset; vc_qset = qset; vc_replica = i })
            (pair (triple view seqno replica)
               (triple
                  (list_size (0 -- 3) (pair seqno digest))
                  (list_size (0 -- 3) pset_entry)
                  (list_size (0 -- 3) qset_entry))) );
        ( 1,
          map
            (fun (v, i, o, d) ->
              View_change_ack { va_view = v; va_replica = i; va_origin = o; va_digest = d })
            (quad view replica replica digest) );
        ( 1,
          map
            (fun ((v, vcs), (st, d, chosen)) ->
              New_view
                { nv_view = v; nv_vcs = vcs; nv_start = st; nv_start_digest = d; nv_chosen = chosen })
            (pair
               (pair view (list_size (0 -- 3) (pair replica digest)))
               (triple seqno digest
                  (list_size (0 -- 3) (map (fun (n, d) -> { nc_seq = n; nc_digest = d }) (pair seqno digest))))) );
        ( 1,
          map
            (fun ((l, i, lc), (rc, rep, me)) ->
              Fetch { ft_level = l; ft_index = i; ft_lc = lc; ft_rc = rc; ft_replier = rep; ft_replica = me })
            (pair (triple (0 -- 4) (0 -- 500) seqno) (triple seqno replica replica)) );
        ( 1,
          map
            (fun ((ck, l, i), (subs, me)) ->
              Meta_data { md_checkpoint = ck; md_level = l; md_index = i; md_subparts = subs; md_replica = me })
            (pair (triple seqno (0 -- 4) (0 -- 100))
               (pair (list_size (0 -- 4) (triple (0 -- 100) seqno digest)) replica)) );
        ( 1,
          map (fun (i, lm, page) -> Data { dt_index = i; dt_lm = lm; dt_page = page })
            (triple (0 -- 100) seqno short_string) );
        ( 1,
          map
            (fun ((i, v, h), (le, p, cm)) ->
              Status_active
                { sa_replica = i; sa_view = v; sa_h = h; sa_last_exec = le; sa_prepared = p; sa_committed = cm })
            (pair (triple replica view seqno)
               (triple seqno (list_size (0 -- 4) seqno) (list_size (0 -- 4) seqno))) );
        ( 1,
          map
            (fun ((i, v, h), (le, hn, seen)) ->
              Status_pending
                { sp_replica = i; sp_view = v; sp_h = h; sp_last_exec = le; sp_has_new_view = hn; sp_vcs_seen = seen })
            (pair (triple replica view seqno) (triple seqno bool (list_size (0 -- 4) replica))) );
        ( 1,
          map
            (fun (i, keys, t) -> New_key { nk_replica = i; nk_keys = keys; nk_counter = t })
            (triple replica
               (list_size (0 -- 3)
                  (map
                     (fun (p, (s, e)) -> (p, { Bft_crypto.Keychain.secret = s; epoch = e }))
                     (pair replica (pair short_string (0 -- 5)))))
               ts) );
        (1, map (fun (i, n) -> Query_stable { qs_replica = i; qs_nonce = n }) (pair replica ts));
        ( 1,
          map
            (fun (c, p, i, n) ->
              Reply_stable { rs_checkpoint = c; rs_prepared = p; rs_replica = i; rs_nonce = n })
            (quad seqno seqno replica ts) );
        (1, map (fun (d, i) -> Fetch_batch { fb_digest = d; fb_replica = i }) (pair digest replica));
        ( 1,
          map
            (fun (d, batch, nd) -> Batch_data { bd_digest = d; bd_batch = batch; bd_nondet = nd })
            (triple digest (list_size (0 -- 3) batch_elem) short_string) );
        (1, map (fun (d, i) -> Fetch_request { fr_digest = d; fr_replica = i }) (pair digest replica));
      ]
end

let arb_message = QCheck.make ~print:Message.tag Gen.message

let prop_roundtrip =
  QCheck.Test.make ~name:"wire roundtrip decode(encode m) = m" ~count:1000 arb_message
    (fun m ->
      match Wire.decode (Wire.encode m) with
      | Ok m' -> m = m'
      | Error e -> QCheck.Test.fail_reportf "decode error: %s" e)

let prop_size_consistent =
  QCheck.Test.make ~name:"wire size = length" ~count:300 arb_message (fun m ->
      Wire.size m = String.length (Wire.encode m))

let prop_truncation_rejected =
  QCheck.Test.make ~name:"truncated input rejected" ~count:300 arb_message (fun m ->
      let s = Wire.encode m in
      String.length s < 2
      ||
      let cut = String.sub s 0 (String.length s / 2) in
      match Wire.decode cut with Error _ -> true | Ok _ -> false)

let prop_trailing_rejected =
  QCheck.Test.make ~name:"trailing bytes rejected" ~count:300 arb_message (fun m ->
      match Wire.decode (Wire.encode m ^ "x") with Error _ -> true | Ok _ -> false)

let test_garbage_rejected () =
  List.iter
    (fun s ->
      match Wire.decode s with
      | Error _ -> ()
      | Ok m -> Alcotest.failf "garbage decoded as %s" (Message.tag m))
    [ ""; "\xff"; "\x01"; "\x01abc"; String.make 7 '\x00'; "\x63hello" ]

(* Rng-driven round-trips: the same splitmix64 stream that drives the
   fuzzer builds one instance of every constructor per seed, with sizes
   biased toward encoding boundaries (empty, 1, 255, 256, 4KB). This
   complements the QCheck properties with deterministic, replayable
   coverage of all message types. *)
module R = struct
  module Rng = Bft_util.Rng

  let boundary_sizes = [| 0; 1; 2; 255; 256; 1024; 4096 |]

  let size rng =
    if Rng.bool rng then boundary_sizes.(Rng.int rng (Array.length boundary_sizes))
    else Rng.int rng 64

  let str rng = Rng.bytes rng (size rng)
  let digest rng = Rng.bytes rng 32
  let seqno rng = Rng.int rng 10_001
  let view rng = Rng.int rng 51
  let replica rng = Rng.int rng 7
  let client rng = 100 + Rng.int rng 21
  let ts rng = Int64.of_int (Rng.int rng 1_000_001)
  let list rng ~max f = List.init (Rng.int rng (max + 1)) (fun _ -> f rng)

  let request rng =
    {
      op = str rng;
      timestamp = ts rng;
      client = client rng;
      read_only = Rng.bool rng;
      replier = replica rng;
    }

  let batch_elem rng =
    if Rng.int rng 4 < 3 then Inline (request rng, Auth_none) else By_digest (digest rng)

  let message rng = function
    | 0 -> Request (request rng)
    | 1 ->
        Reply
          {
            rp_view = view rng;
            rp_timestamp = ts rng;
            rp_client = client rng;
            rp_replica = replica rng;
            rp_tentative = Rng.bool rng;
            rp_result = (if Rng.bool rng then Full (str rng) else Result_digest (digest rng));
          }
    | 2 ->
        Pre_prepare
          {
            pp_view = view rng;
            pp_seq = seqno rng;
            pp_batch = list rng ~max:4 batch_elem;
            pp_nondet = str rng;
          }
    | 3 ->
        Prepare
          { pr_view = view rng; pr_seq = seqno rng; pr_digest = digest rng; pr_replica = replica rng }
    | 4 ->
        Commit
          { cm_view = view rng; cm_seq = seqno rng; cm_digest = digest rng; cm_replica = replica rng }
    | 5 -> Checkpoint { ck_seq = seqno rng; ck_digest = digest rng; ck_replica = replica rng }
    | 6 ->
        View_change
          {
            vc_view = view rng;
            vc_h = seqno rng;
            vc_cset = list rng ~max:3 (fun rng -> (seqno rng, digest rng));
            vc_pset =
              list rng ~max:3 (fun rng ->
                  { pe_seq = seqno rng; pe_digest = digest rng; pe_view = view rng });
            vc_qset =
              list rng ~max:3 (fun rng ->
                  {
                    qe_seq = seqno rng;
                    qe_entries =
                      (fun rng -> (digest rng, view rng)) rng
                      :: list rng ~max:2 (fun rng -> (digest rng, view rng));
                  });
            vc_replica = replica rng;
          }
    | 7 ->
        View_change_ack
          {
            va_view = view rng;
            va_replica = replica rng;
            va_origin = replica rng;
            va_digest = digest rng;
          }
    | 8 ->
        New_view
          {
            nv_view = view rng;
            nv_vcs = list rng ~max:3 (fun rng -> (replica rng, digest rng));
            nv_start = seqno rng;
            nv_start_digest = digest rng;
            nv_chosen =
              list rng ~max:3 (fun rng -> { nc_seq = seqno rng; nc_digest = digest rng });
          }
    | 9 ->
        Fetch
          {
            ft_level = Rng.int rng 5;
            ft_index = Rng.int rng 501;
            ft_lc = seqno rng;
            ft_rc = seqno rng;
            ft_replier = replica rng;
            ft_replica = replica rng;
          }
    | 10 ->
        Meta_data
          {
            md_checkpoint = seqno rng;
            md_level = Rng.int rng 5;
            md_index = Rng.int rng 101;
            md_subparts = list rng ~max:4 (fun rng -> (Rng.int rng 101, seqno rng, digest rng));
            md_replica = replica rng;
          }
    | 11 -> Data { dt_index = Rng.int rng 101; dt_lm = seqno rng; dt_page = str rng }
    | 12 ->
        Status_active
          {
            sa_replica = replica rng;
            sa_view = view rng;
            sa_h = seqno rng;
            sa_last_exec = seqno rng;
            sa_prepared = list rng ~max:4 seqno;
            sa_committed = list rng ~max:4 seqno;
          }
    | 13 ->
        Status_pending
          {
            sp_replica = replica rng;
            sp_view = view rng;
            sp_h = seqno rng;
            sp_last_exec = seqno rng;
            sp_has_new_view = Rng.bool rng;
            sp_vcs_seen = list rng ~max:4 replica;
          }
    | 14 ->
        New_key
          {
            nk_replica = replica rng;
            nk_keys =
              list rng ~max:3 (fun rng ->
                  ( replica rng,
                    { Bft_crypto.Keychain.secret = str rng; epoch = Rng.int rng 6 } ));
            nk_counter = ts rng;
          }
    | 15 -> Query_stable { qs_replica = replica rng; qs_nonce = ts rng }
    | 16 ->
        Reply_stable
          {
            rs_checkpoint = seqno rng;
            rs_prepared = seqno rng;
            rs_replica = replica rng;
            rs_nonce = ts rng;
          }
    | 17 -> Fetch_batch { fb_digest = digest rng; fb_replica = replica rng }
    | 18 ->
        Batch_data
          { bd_digest = digest rng; bd_batch = list rng ~max:3 batch_elem; bd_nondet = str rng }
    | _ -> Fetch_request { fr_digest = digest rng; fr_replica = replica rng }

  let n_constructors = 20
end

let test_rng_roundtrip_all_constructors () =
  for seed = 1 to 25 do
    let rng = Bft_util.Rng.create (Int64.of_int (seed * 7919)) in
    for k = 0 to R.n_constructors - 1 do
      let m = R.message rng k in
      match Wire.decode (Wire.encode m) with
      | Ok m' ->
          if m <> m' then
            Alcotest.failf "seed %d constructor %s: decode(encode m) <> m" seed (Message.tag m)
      | Error e ->
          Alcotest.failf "seed %d constructor %s: decode error: %s" seed (Message.tag m) e
    done
  done

let test_rng_roundtrip_boundary_payloads () =
  (* force the boundary sizes directly: op/result/page payloads of exactly
     0, 1, 255, 256 and 4096 bytes must survive the length encoding *)
  let rng = Bft_util.Rng.create 424242L in
  List.iter
    (fun n ->
      let payload = Bft_util.Rng.bytes rng n in
      List.iter
        (fun m ->
          match Wire.decode (Wire.encode m) with
          | Ok m' ->
              if m <> m' then Alcotest.failf "size %d: %s corrupted" n (Message.tag m)
          | Error e -> Alcotest.failf "size %d: %s: %s" n (Message.tag m) e)
        [
          Request
            { op = payload; timestamp = 1L; client = 100; read_only = false; replier = 0 };
          Reply
            {
              rp_view = 0;
              rp_timestamp = 1L;
              rp_client = 100;
              rp_replica = 0;
              rp_tentative = false;
              rp_result = Full payload;
            };
          Data { dt_index = 0; dt_lm = 0; dt_page = payload };
        ])
    [ 0; 1; 255; 256; 4096 ]

let suites =
  [
    ( "core.codec",
      [
        QCheck_alcotest.to_alcotest prop_roundtrip;
        QCheck_alcotest.to_alcotest prop_size_consistent;
        QCheck_alcotest.to_alcotest prop_truncation_rejected;
        QCheck_alcotest.to_alcotest prop_trailing_rejected;
        Alcotest.test_case "garbage rejected" `Quick test_garbage_rejected;
        Alcotest.test_case "rng roundtrip all constructors" `Quick
          test_rng_roundtrip_all_constructors;
        Alcotest.test_case "rng roundtrip boundary payloads" `Quick
          test_rng_roundtrip_boundary_payloads;
      ] );
  ]

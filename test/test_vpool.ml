(* Verification pool: deterministic merge vs the sequential path.

   The contract under test is the one every pinned digest depends on:
   [Auth.verify_batch] (and [Vpool.run] under it) must return, for every
   item, exactly the verdict the sequential [Auth.verify_mac] /
   [Auth.verify_authenticator] / digest-compare path returns, in submission
   order, at every domain count. The qcheck property throws random batches
   with faulty-MAC mixes (corrupt tags, stale epochs, missing entries,
   unknown senders, wrong digests) at pools with 1, 2 and 4 domains. *)

module Sha256 = Bft_crypto.Sha256
module Hmac = Bft_crypto.Hmac
module Keychain = Bft_crypto.Keychain
module Auth = Bft_crypto.Auth
module Vpool = Bft_crypto.Vpool

(* One receiver (id 0) with session keys from senders 5..8; sender 7 has no
   key at all (never exchanged), so its items must come back false. *)
let receiver_id = 0
let keyed_senders = [ 5; 6; 8 ]
let unkeyed_sender = 7

let make_keychains () =
  let rng = Bft_util.Rng.create 0xBEEFL in
  let recv = Keychain.create ~my_id:receiver_id in
  let senders =
    List.map
      (fun s ->
        let kc = Keychain.create ~my_id:s in
        let key = Keychain.fresh_in_key recv rng ~peer:s in
        assert (Keychain.install_out_key kc ~peer:receiver_id key);
        (s, kc))
      keyed_senders
  in
  let senders = (unkeyed_sender, Keychain.create ~my_id:unkeyed_sender) :: senders in
  (recv, senders)

let recv_kc, sender_kcs = make_keychains ()
let sender_kc s = List.assoc s sender_kcs

(* Pools are created once and torn down by the final test case. *)
let pools = lazy (List.map (fun d -> (d, Vpool.create ~domains:d)) [ 1; 2; 4 ])

let corrupt_tag (m : Auth.mac) =
  { m with Auth.tag = String.map (fun c -> Char.chr (Char.code c lxor 0x55)) m.Auth.tag }

let stale_epoch (m : Auth.mac) = { m with Auth.epoch = m.Auth.epoch + 1 }

(* A test item: the batch entry plus how the faulty variants were derived,
   for the printer. *)
type spec =
  | S_mac of int * int * bool * bool (* sender, msg#, corrupt?, stale? *)
  | S_auth of int * int * bool * bool (* sender, msg#, corrupt-our-entry?, drop-our-entry? *)
  | S_digest of int * bool (* msg#, wrong? *)

let spec_to_string = function
  | S_mac (s, m, c, st) -> Printf.sprintf "mac(s=%d,m=%d,corrupt=%b,stale=%b)" s m c st
  | S_auth (s, m, c, d) -> Printf.sprintf "auth(s=%d,m=%d,corrupt=%b,drop=%b)" s m c d
  | S_digest (m, w) -> Printf.sprintf "digest(m=%d,wrong=%b)" m w

let messages =
  Array.init 16 (fun i -> Printf.sprintf "payload-%d-%s" i (String.make (i * 7) 'x'))

let item_of_spec spec : Auth.batch_item =
  match spec with
  | S_mac (s, m, corrupt, stale) ->
      let msg = messages.(m) in
      let mac =
        match Auth.compute_mac (sender_kc s) ~peer:receiver_id msg with
        | Some mac -> mac
        | None -> { Auth.tag = String.make Auth.tag_size '\x00'; epoch = 1 }
      in
      let mac = if corrupt then corrupt_tag mac else mac in
      let mac = if stale then stale_epoch mac else mac in
      Auth.Item_mac { peer = s; mac; msg }
  | S_auth (s, m, corrupt, drop) ->
      let msg = messages.(m) in
      let auth =
        Auth.compute_authenticator (sender_kc s) ~receivers:[ receiver_id; 1; 2; 3 ] msg
      in
      let auth = if corrupt then Auth.corrupt_entry auth receiver_id else auth in
      let auth = if drop then List.remove_assoc receiver_id auth else auth in
      Auth.Item_auth { peer = s; auth; msg }
  | S_digest (m, wrong) ->
      let msg = messages.(m) in
      let expect = Sha256.digest msg in
      let expect =
        if wrong then String.mapi (fun i c -> if i = 0 then Char.chr (Char.code c lxor 1) else c) expect
        else expect
      in
      Auth.Item_digest { expect; msg }

(* The sequential oracle: the exact pre-pool code path. *)
let sequential_verdict (item : Auth.batch_item) =
  match item with
  | Auth.Item_mac { peer; mac; msg } -> Auth.verify_mac recv_kc ~peer mac msg
  | Auth.Item_auth { peer; auth; msg } -> Auth.verify_authenticator recv_kc ~peer auth msg
  | Auth.Item_digest { expect; msg } -> String.equal expect (Sha256.digest msg)

let gen_spec =
  let open QCheck.Gen in
  let sender = oneofl (unkeyed_sender :: keyed_senders) in
  let msg = int_bound (Array.length messages - 1) in
  oneof
    [
      (fun st -> S_mac (sender st, msg st, bool st, bool st));
      (fun st -> S_auth (sender st, msg st, bool st, bool st));
      (fun st -> S_digest (msg st, bool st));
    ]

let arb_batch =
  QCheck.make
    ~print:(fun specs -> String.concat "; " (List.map spec_to_string specs))
    QCheck.Gen.(list_size (int_bound 24) gen_spec)

let prop_pool_matches_sequential =
  QCheck.Test.make ~name:"pool batch-verify = sequential verify (domains 1/2/4)" ~count:120
    arb_batch (fun specs ->
      let items = Array.of_list (List.map item_of_spec specs) in
      let expected = Array.map sequential_verdict items in
      List.for_all
        (fun (d, pool) ->
          let got = Auth.verify_batch ~pool recv_kc items in
          if got <> expected then
            QCheck.Test.fail_reportf "domains=%d: pool %s <> sequential %s" d
              (String.concat ""
                 (Array.to_list (Array.map (fun b -> if b then "1" else "0") got)))
              (String.concat ""
                 (Array.to_list (Array.map (fun b -> if b then "1" else "0") expected)))
          else true)
        (Lazy.force pools))

let test_merge_order_is_submission_order () =
  (* a batch whose jobs have wildly different costs still merges by
     submission index, not completion order *)
  let big = String.make 200_000 'b' and small = "s" in
  let items =
    [|
      Auth.Item_digest { expect = Sha256.digest big; msg = big };
      Auth.Item_digest { expect = Sha256.digest small; msg = Printf.sprintf "%s!" small };
      Auth.Item_digest { expect = Sha256.digest small; msg = small };
      Auth.Item_digest { expect = Sha256.digest big; msg = Printf.sprintf "%s!" big };
    |]
  in
  List.iter
    (fun (d, pool) ->
      let got = Auth.verify_batch ~pool recv_kc items in
      Alcotest.(check (array bool))
        (Printf.sprintf "domains=%d" d)
        [| true; false; true; false |]
        got)
    (Lazy.force pools)

let test_digest_parallel_safety () =
  (* the one-shot Sha256 scratch is domain-local: hammer a 4-domain pool
     with digest checks and confirm every verdict (any shared scratch would
     corrupt digests under contention) *)
  let pool = List.assoc 4 (Lazy.force pools) in
  for round = 1 to 25 do
    let jobs =
      Array.init 64 (fun i ->
          let msg = Printf.sprintf "round%d-item%d-%s" round i (String.make (i * 13) 'p') in
          Vpool.Check_digest { expect = Sha256.digest msg; msg })
    in
    let got = Vpool.run pool jobs in
    Array.iteri
      (fun i ok -> if not ok then Alcotest.failf "round %d item %d: digest mismatch" round i)
      got
  done

let test_stats_counters () =
  let pool = Vpool.create ~domains:1 in
  let job msg = Vpool.Check_digest { expect = Sha256.digest msg; msg } in
  ignore (Vpool.run pool [| job "a"; job "b"; job "c" |]);
  ignore (Vpool.run pool [| job "d" |]);
  ignore (Vpool.run pool [||]);
  let st = Vpool.stats pool in
  Alcotest.(check int) "batches" 3 st.Vpool.st_batches;
  Alcotest.(check int) "items" 4 st.Vpool.st_items;
  Alcotest.(check int) "merge hwm" 3 st.Vpool.st_merge_hwm;
  Alcotest.(check int) "helped (all inline at 1 domain)" 4 st.Vpool.st_helped;
  Alcotest.(check int) "parallel batches" 0 st.Vpool.st_parallel_batches;
  Alcotest.(check (float 0.0001)) "worker fraction" 0.0 (Vpool.worker_fraction st);
  Vpool.reset_stats pool;
  Alcotest.(check int) "reset" 0 (Vpool.stats pool).Vpool.st_batches;
  Vpool.shutdown pool

let test_default_pool_reconfigures () =
  Vpool.set_default_domains 2;
  Alcotest.(check int) "requested" 2 (Vpool.default_domains ());
  let p = Vpool.default () in
  Alcotest.(check int) "created with 2" 2 (Vpool.domains p);
  Vpool.set_default_domains 1;
  let p' = Vpool.default () in
  Alcotest.(check int) "recreated with 1" 1 (Vpool.domains p');
  Alcotest.(check bool) "fresh pool" false (p == p')

let test_low_core_fallback () =
  (* on a host without real parallelism a multi-domain pool must spawn no
     workers and run every batch sequentially (the 1-core smoke baseline
     showed 2/4-domain pools at 0.60/0.68x the sequential rate); on a
     multi-core host the same pool parallelizes — either way the verdicts
     match the sequential oracle *)
  let pool = Vpool.create ~domains:4 in
  let job msg = Vpool.Check_digest { expect = Sha256.digest msg; msg } in
  let jobs = Array.init 8 (fun i -> job (Printf.sprintf "fallback-%d" i)) in
  let got = Vpool.run pool jobs in
  Alcotest.(check (array bool)) "verdicts" (Array.make 8 true) got;
  let st = Vpool.stats pool in
  Alcotest.(check int) "reports requested width" 4 (Vpool.domains pool);
  if (Domain.recommended_domain_count [@lint.allow "domain-containment"]) () < 2 then begin
    Alcotest.(check int) "no parallel batches on a 1-core host" 0
      st.Vpool.st_parallel_batches;
    Alcotest.(check int) "submitter ran the whole batch" 8 st.Vpool.st_helped
  end
  else Alcotest.(check int) "parallel batch on a multi-core host" 1 st.Vpool.st_parallel_batches;
  Vpool.shutdown pool

let test_shutdown_pools () =
  (* also exercises shutdown idempotence and run-after-shutdown *)
  List.iter
    (fun (_, pool) ->
      Vpool.shutdown pool;
      Vpool.shutdown pool;
      let got =
        Vpool.run pool [| Vpool.Check_digest { expect = Sha256.digest "z"; msg = "z" } |]
      in
      Alcotest.(check (array bool)) "inline after shutdown" [| true |] got)
    (Lazy.force pools)

let suites =
  [
    ( "vpool",
      [
        QCheck_alcotest.to_alcotest prop_pool_matches_sequential;
        Alcotest.test_case "merge order = submission order" `Quick
          test_merge_order_is_submission_order;
        Alcotest.test_case "parallel digest checks (domain-local scratch)" `Quick
          test_digest_parallel_safety;
        Alcotest.test_case "stats counters" `Quick test_stats_counters;
        Alcotest.test_case "default pool reconfigures" `Quick test_default_pool_reconfigures;
        Alcotest.test_case "low-core fallback (sequential path)" `Quick test_low_core_fallback;
        Alcotest.test_case "shutdown (idempotent, inline fallback)" `Quick test_shutdown_pools;
      ] );
  ]

(* Statistics accumulator and cost-model helpers. *)

let test_stats_basic () =
  let s = Bft_util.Stats.create () in
  List.iter (Bft_util.Stats.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  Alcotest.(check int) "count" 5 (Bft_util.Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Bft_util.Stats.mean s);
  Alcotest.(check (float 1e-9)) "median" 3.0 (Bft_util.Stats.median s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Bft_util.Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Bft_util.Stats.max s);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.0) (Bft_util.Stats.stddev s);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Bft_util.Stats.percentile s 0.0);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Bft_util.Stats.percentile s 1.0);
  Alcotest.(check (float 1e-9)) "p25 interpolated" 2.0 (Bft_util.Stats.percentile s 0.25)

let test_stats_empty () =
  let s = Bft_util.Stats.create () in
  Alcotest.(check string) "summary" "n=0" (Bft_util.Stats.summary s);
  Alcotest.check_raises "percentile on empty" (Invalid_argument "Stats.percentile: empty")
    (fun () -> ignore (Bft_util.Stats.median s))

let prop_percentile_monotone_and_bounded =
  QCheck.Test.make ~name:"percentiles monotone within min/max" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_range 0.0 1000.0))
    (fun xs ->
      let s = Bft_util.Stats.create () in
      List.iter (Bft_util.Stats.add s) xs;
      let ps = List.map (Bft_util.Stats.percentile s) [ 0.1; 0.5; 0.9; 0.99 ] in
      let sorted = List.sort compare ps in
      ps = sorted
      && List.for_all (fun p -> p >= Bft_util.Stats.min s && p <= Bft_util.Stats.max s) ps)

let test_strutil_contains_sub () =
  let c = Bft_util.Strutil.contains_sub in
  Alcotest.(check bool) "middle" true (c "abcdef" "cde");
  Alcotest.(check bool) "prefix" true (c "abcdef" "abc");
  Alcotest.(check bool) "suffix" true (c "abcdef" "def");
  Alcotest.(check bool) "whole" true (c "abc" "abc");
  Alcotest.(check bool) "absent" false (c "abcdef" "ace");
  Alcotest.(check bool) "longer needle" false (c "ab" "abc");
  Alcotest.(check bool) "empty needle" true (c "abc" "");
  Alcotest.(check bool) "empty hay, empty needle" true (c "" "");
  Alcotest.(check bool) "empty hay" false (c "" "a");
  Alcotest.(check bool) "overlapping near-miss" true (c "aab" "ab")

let prop_strutil_agrees_with_spec =
  (* reference: substring occurs iff some window equals the needle *)
  QCheck.Test.make ~name:"contains_sub agrees with window spec" ~count:500
    QCheck.(pair (string_of_size Gen.(0 -- 20)) (string_of_size Gen.(0 -- 4)))
    (fun (hay, sub) ->
      let spec =
        let lh = String.length hay and ls = String.length sub in
        let rec go i = i + ls <= lh && (String.equal (String.sub hay i ls) sub || go (i + 1)) in
        go 0
      in
      Bool.equal (Bft_util.Strutil.contains_sub hay sub) spec)

let test_costs_helpers () =
  let c = Bft_net.Costs.default in
  Alcotest.(check (float 1e-9)) "digest fixed" c.Bft_net.Costs.digest_fixed_us
    (Bft_net.Costs.digest_us c 0);
  Alcotest.(check bool) "digest grows" true
    (Bft_net.Costs.digest_us c 4096 > Bft_net.Costs.digest_us c 64);
  Alcotest.(check (float 1e-9)) "auth linear in n"
    (4.0 *. c.Bft_net.Costs.mac_us)
    (Bft_net.Costs.auth_gen_us c 4);
  Alcotest.(check bool) "wire grows" true
    (Bft_net.Costs.wire_us c 1000 > Bft_net.Costs.wire_us c 0);
  Alcotest.(check bool) "sig >> mac (3 orders)" true
    (c.Bft_net.Costs.sig_gen_us >= 1000.0 *. c.Bft_net.Costs.mac_us)

let test_costs_free_is_causal () =
  (* the free model keeps a strictly positive wire hop so message causality
     is preserved even in logical-time tests *)
  Alcotest.(check bool) "positive wire latency" true
    (Bft_net.Costs.free.Bft_net.Costs.wire_latency_us > 0.0)

let suites =
  [
    ( "util.stats",
      [
        Alcotest.test_case "basic" `Quick test_stats_basic;
        Alcotest.test_case "empty" `Quick test_stats_empty;
        QCheck_alcotest.to_alcotest prop_percentile_monotone_and_bounded;
      ] );
    ( "util.strutil",
      [
        Alcotest.test_case "contains_sub" `Quick test_strutil_contains_sub;
        QCheck_alcotest.to_alcotest prop_strutil_agrees_with_spec;
      ] );
    ( "net.costs",
      [
        Alcotest.test_case "helpers" `Quick test_costs_helpers;
        Alcotest.test_case "free model causal" `Quick test_costs_free_is_causal;
      ] );
  ]

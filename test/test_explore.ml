(* Bounded exhaustive explorer: pinned exhaustive configuration, search-order
   and POR invariance of the distinct-state fingerprint counts, liveness
   oracles against handcrafted livelocks and the injected no-VC-timer bug,
   and codec round-trips for explorer-emitted schedules. *)

open Bft_check
open Bft_explore.Explore

let sched_of s =
  match Schedule.of_string s with
  | Ok sc -> sc
  | Error e -> Alcotest.failf "bad schedule %S: %s" s e

(* The pinned exhaustive configuration: n=4, one client, one op, view bound
   2, backup 3 network-crashed, 15ms tick horizon. Small enough to exhaust
   in ~2s, large enough to interleave the full pre-prepare/prepare/commit/
   reply exchange across three live replicas. *)
let pinned ?(strategy = Dfs) ?(por = true) () =
  {
    (default_config ~seed:42) with
    tick_horizon_us = 15_000.0;
    max_states = 20_000;
    max_wall_s = 240.0;
    strategy;
    por;
    prefix = sched_of "0@crash:3";
  }

(* --- pinned exhaustive run: full coverage, no violations --- *)

let test_pinned_exhaustive () =
  let o = run (pinned ()) in
  Alcotest.(check bool) "exhausted" true o.o_exhausted;
  Alcotest.(check int) "no violations" 0 (List.length o.o_violations);
  (* distinct canonical states and distinct maximal states of the pinned
     configuration: a change here means the protocol's reachable state
     space changed (or the fingerprint leaked path-dependent noise) *)
  Alcotest.(check int) "distinct states" 694 o.o_stats.states_visited;
  Alcotest.(check int) "terminal states" 64 o.o_stats.terminals;
  Alcotest.(check int) "states built" 1911 o.o_stats.states_built;
  Alcotest.(check int) "no horizon cuts" 0 o.o_stats.cuts;
  Alcotest.(check int) "no unschedulable slots" 0 o.o_stats.slot_skipped;
  Alcotest.(check bool) "POR pruned something" true (o.o_stats.por_pruned > 0)

(* --- determinism: identical runs, identical statistics --- *)

let test_deterministic () =
  let a = run (pinned ()) and b = run (pinned ()) in
  Alcotest.(check (list int)) "same statistics"
    [
      a.o_stats.states_built;
      a.o_stats.states_visited;
      a.o_stats.states_expanded;
      a.o_stats.transitions;
      a.o_stats.por_pruned;
      a.o_stats.hash_pruned;
      a.o_stats.terminals;
      a.o_stats.max_depth_seen;
    ]
    [
      b.o_stats.states_built;
      b.o_stats.states_visited;
      b.o_stats.states_expanded;
      b.o_stats.transitions;
      b.o_stats.por_pruned;
      b.o_stats.hash_pruned;
      b.o_stats.terminals;
      b.o_stats.max_depth_seen;
    ]

(* --- search-order / POR invariance of the canonical fingerprint ---

   The distinct-state and distinct-terminal counts are properties of the
   protocol, not of the search: BFS vs DFS and POR on vs off must agree
   exactly. This is the regression net for fingerprint leaks — any state
   component that depends on the path taken (absolute times, residual CPU
   busyness, RNG draws) shows up as a count that wobbles across orders.
   It also checks the sleep-set machinery loses no states and actually
   prunes work. *)

let test_order_and_por_invariance () =
  let dfs = run (pinned ()) in
  let bfs = run (pinned ~strategy:Bfs ()) in
  let nopor = run (pinned ~por:false ()) in
  List.iter
    (fun (name, o) ->
      Alcotest.(check bool) (name ^ " exhausted") true o.o_exhausted;
      Alcotest.(check int) (name ^ " distinct states") dfs.o_stats.states_visited
        o.o_stats.states_visited;
      Alcotest.(check int) (name ^ " terminals") dfs.o_stats.terminals o.o_stats.terminals)
    [ ("bfs", bfs); ("no-por", nopor) ];
  Alcotest.(check bool)
    (Printf.sprintf "POR builds fewer states (%d < %d)" dfs.o_stats.states_built
       nopor.o_stats.states_built)
    true
    (dfs.o_stats.states_built < nopor.o_stats.states_built)

(* --- injected bug: exploration finds a liveness counterexample --- *)

let test_injected_bug_found_and_replays () =
  let c =
    {
      (default_config ~seed:42) with
      tick_horizon_us = 15_000.0;
      max_states = 5_000;
      max_wall_s = 120.0;
      strategy = Dfs;
      suppress_vc_timer = true;
      prefix = sched_of "0@mute:0";
    }
  in
  let o = run c in
  match List.find_opt (fun v -> v.v_kind = `Liveness) o.o_violations with
  | None -> Alcotest.fail "no liveness violation found with the VC timer suppressed"
  | Some v ->
      Alcotest.(check bool) "names liveness-progress" true
        (List.exists
           (fun f -> String.starts_with ~prefix:"liveness-progress" f)
           v.v_failures);
      (* the counterexample must survive the schedule codec and reproduce
         the identical failure through the ordinary replay entry point *)
      let encoded = Schedule.to_string v.v_schedule in
      (match Schedule.of_string encoded with
      | Error e -> Alcotest.failf "counterexample does not round-trip: %s" e
      | Ok sched ->
          Alcotest.(check string) "codec round-trip" encoded (Schedule.to_string sched);
          let r = Runner.run_schedule v.v_params sched in
          Alcotest.(check (list string)) "replay reproduces" v.v_failures r.Runner.failures);
      (* the same schedule on the unbroken build recovers via view change *)
      let fixed = { v.v_params with Runner.suppress_vc_timer = false } in
      let r = Runner.run_schedule fixed v.v_schedule in
      Alcotest.(check (list string)) "clean build passes" [] r.Runner.failures;
      Alcotest.(check int) "clean build commits" r.Runner.total_ops r.Runner.completed_ops

(* --- handcrafted livelocks straight through the runner --- *)

let liveness_params ~seed =
  {
    (Runner.default_params ~seed ~f:1) with
    Runner.horizon_us = 15_000.0;
    drain_us = 2_000_000.0;
    check_liveness = true;
    view_bound = Some 2;
    quiesce = false;
  }

let test_livelock_progress () =
  (* fail-silent primary plus the injected bug: nobody ever starts a view
     change, so the op never commits — liveness-progress must flag it *)
  let p = { (liveness_params ~seed:7) with Runner.suppress_vc_timer = true } in
  let r = Runner.run_schedule p (sched_of "0@mute:0") in
  Alcotest.(check bool) "liveness-progress fails" true
    (List.exists
       (fun f -> String.starts_with ~prefix:"liveness-progress" f)
       r.Runner.failures);
  Alcotest.(check int) "nothing committed" 0 r.Runner.completed_ops

let test_livelock_view_bound () =
  (* fail-silent primary of view 0 and an unreachable primary of view 1:
     only two replicas can vote, no view ever forms a quorum, and the view
     number climbs without progress — the view-bound oracle must flag it *)
  let r = Runner.run_schedule (liveness_params ~seed:7) (sched_of "0@mute:0;0@crash:1") in
  Alcotest.(check bool) "liveness-view-bound fails" true
    (List.exists
       (fun f -> String.starts_with ~prefix:"liveness-view-bound" f)
       r.Runner.failures);
  Alcotest.(check bool)
    (Printf.sprintf "view climbed past the bound (%d)" r.Runner.max_view)
    true (r.Runner.max_view > 2)

let test_livelock_clean_counterpart () =
  (* the same muted primary without the injected bug: the view change
     rescues the workload, so neither liveness oracle may fire *)
  let r = Runner.run_schedule (liveness_params ~seed:7) (sched_of "0@mute:0") in
  Alcotest.(check (list string)) "no failures" [] r.Runner.failures;
  Alcotest.(check int) "workload committed" r.Runner.total_ops r.Runner.completed_ops;
  Alcotest.(check bool) "via a view change" true (r.Runner.view_changes > 0)

(* --- qcheck: gate-action schedules survive the codec --- *)

let gen_gate_schedule =
  let open QCheck.Gen in
  let cls =
    oneofl
      [
        Schedule.Pre_prepares;
        Schedule.Prepares;
        Schedule.Commits;
        Schedule.Checkpoints;
        Schedule.View_changes;
        Schedule.New_views;
        Schedule.Replies;
        Schedule.Requests;
        Schedule.Any;
      ]
  in
  let endpoint = oneof [ return None; map (fun i -> Some i) (int_bound 6) ] in
  let action =
    frequency
      [
        (1, return Schedule.Hold_all);
        (1, return Schedule.Release_all);
        (4, map (fun ((c, s), (d, n)) -> Schedule.Release (c, s, d, n))
             (pair (pair cls endpoint) (pair endpoint (int_bound 12))));
      ]
  in
  (* times in the explorer's slot domain: fractional microseconds with
     nanosecond precision, exactly what release slots look like *)
  let time = map (fun ns -> float_of_int ns /. 1000.0) (int_bound 1_000_000_000) in
  list_size (int_bound 12) (pair time action)
  |> map (fun evs ->
         List.map (fun (at_us, action) -> { Schedule.at_us; action })
           (List.sort (fun (a, _) (b, _) -> compare a b) evs))

let arb_gate_schedule = QCheck.make ~print:Schedule.to_string gen_gate_schedule

let qcheck_gate_roundtrip =
  QCheck.Test.make ~name:"gate schedules round-trip through the codec" ~count:500
    arb_gate_schedule (fun s ->
      match Schedule.of_string (Schedule.to_string s) with
      | Error e -> QCheck.Test.fail_reportf "of_string: %s" e
      | Ok s' ->
          (* structural equality, not just string equality: the codec must
             preserve classes, endpoints, indices, and exact times *)
          s = s')

let suites =
  [
    ( "explore",
      [
        Alcotest.test_case "pinned config exhausts" `Slow test_pinned_exhaustive;
        Alcotest.test_case "statistics deterministic" `Slow test_deterministic;
        Alcotest.test_case "order/POR invariance" `Slow test_order_and_por_invariance;
        Alcotest.test_case "injected bug yields replayable counterexample" `Quick
          test_injected_bug_found_and_replays;
      ] );
    ( "explore.liveness",
      [
        Alcotest.test_case "livelock: progress oracle" `Quick test_livelock_progress;
        Alcotest.test_case "livelock: view-bound oracle" `Quick test_livelock_view_bound;
        Alcotest.test_case "clean counterpart passes" `Quick test_livelock_clean_counterpart;
      ] );
    ( "explore.codec",
      [ QCheck_alcotest.to_alcotest ~long:false qcheck_gate_roundtrip ] );
  ]

(* An arrival process written the tempting-but-wrong way: self-seeded
   randomness for the Poisson gaps and wall-clock time for the burst
   phase. Either one makes a cohort workload unreplayable — the fence is
   the determinism rules; the fix is Bft_util.Rng + Engine.now. *)
let () = Random.self_init ()
let poisson_gap_us rate = -.log (Random.float 1.0) /. rate *. 1e6
let burst_phase period_us = Float.rem (Unix.gettimeofday () *. 1e6) period_us
let _ = (poisson_gap_us, burst_phase)

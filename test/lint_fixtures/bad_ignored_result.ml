let drop (r : (int, string) result) = ignore r
let fine (n : int) = ignore n

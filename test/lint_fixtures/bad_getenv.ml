let home () = Sys.getenv_opt "HOME"

type handle = { cancelled : bool ref; callback : unit -> unit }
let stopped (h : handle option) = h = None
let same (a : handle) (b : handle) = a = b
let ordered (l : handle list) = List.sort compare l
let is_none_is_fine (h : handle option) = Option.is_none h

let encode (x : int) = Marshal.to_string x []

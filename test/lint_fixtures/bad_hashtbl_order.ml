let encode_table (h : (string, string) Hashtbl.t) =
  let b = Buffer.create 16 in
  Hashtbl.iter (fun k v -> Buffer.add_string b (k ^ "=" ^ v)) h;
  Buffer.contents b

(* sorted before use: iteration order cannot reach the bytes *)
let encode_sorted (h : (string, string) Hashtbl.t) =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) h [])

(* not an encoder context: order-insensitive counting is fine *)
let count_table (h : (string, string) Hashtbl.t) =
  Hashtbl.fold (fun _ _ acc -> acc + 1) h 0

let digest_of (x : string) = Hashtbl.hash x

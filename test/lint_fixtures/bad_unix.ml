let now () = Unix.gettimeofday ()

let elapsed () = Sys.time ()

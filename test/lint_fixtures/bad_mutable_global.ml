(* the closure itself captures nothing mutable — but a function it calls
   writes a top-level ref, which the effect fixpoint propagates across
   the pool boundary *)
module Vpool = struct
  let submit f = f ()
end

let total = ref 0
let bump n = total := !total + n
let handle_flush () = Vpool.submit (fun () -> bump 1)

let worker = Domain.spawn (fun () -> 42)
let counter = Atomic.make 0
let m = Mutex.create ()
let cv = Condition.create ()

let eq (a : string) (b : string) = a = b
let ne (a : string) (b : string) = a <> b
let sorted (l : string list) = List.sort compare l
let ints_are_fine (a : int) (b : int) = a = b

let quietly f = (try f () with _ -> ()) [@lint.allow "swallowed-exception"]

[@@@lint.allow "determinism-random"]

let roll () = Random.int 6

let () = Random.self_init ()
let roll () = Random.int 6
let ok_seeded () = Random.State.make [| 42 |]

(* a closure crossing the verification-pool boundary must not capture
   mutable state; *scratch*-named pre-submission buffers are the one
   documented exemption (the [ok] case below must stay silent) *)
module Vpool = struct
  let submit f = f ()
end

let bad () =
  let hits = ref 0 in
  Vpool.submit (fun () -> incr hits)

let ok () =
  let scratch = Bytes.make 8 'x' in
  Vpool.submit (fun () -> Bytes.length scratch)

(* the nondet seed is allowed (suppressing the syntactic report) at its
   use site, then laundered through a second module: only the
   whole-program effect pass sees that the protocol-reachable root still
   inherits it *)
module Entropy = struct
  let sample () = (Random.float [@lint.allow "determinism-random"]) 1.0
end

module Jitter = struct
  let next () = Entropy.sample () +. 0.5
end

let handle_request _req = Jitter.next ()

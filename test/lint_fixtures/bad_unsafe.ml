let first (a : int array) = Array.unsafe_get a 0
let cast (x : int) : bool = Obj.magic x

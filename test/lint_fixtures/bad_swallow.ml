let quietly f = try f () with _ -> ()
let specific f = try f () with Not_found -> ()

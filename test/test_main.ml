(* BFT_DOMAINS sizes the default verification pool for the whole suite
   (CI runs it at 1 and at 4 and diffs the pinned digests — parallelism
   must be wall-clock only). Env access is confined to entry points like
   this one; lib/ is lint-banned from getenv. *)
let () =
  (match (Sys.getenv_opt [@lint.allow "determinism-getenv"]) "BFT_DOMAINS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> Bft_crypto.Vpool.set_default_domains n
      | _ -> ())
  | None -> ());
  Alcotest.run "bft"
    (Test_crypto.suites @ Test_vpool.suites @ Test_sim.suites @ Test_wire.suites @ Test_partition_tree.suites
   @ Test_log.suites @ Test_nv_decision.suites @ Test_codec.suites @ Test_baseline.suites @ Test_util.suites @ Test_checkpoint_store.suites @ Test_config.suites
   @ Test_services.suites @ Test_fs.suites @ Test_paged.suites @ Test_network.suites @ Test_perf.suites
   @ Test_integration.suites @ Test_fuzz.suites @ Test_cohort.suites @ Test_attack.suites @ Test_explore.suites @ Test_hotpath.suites @ Test_obs.suites
   @ Test_lint.suites)

let () =
  Alcotest.run "bft"
    (Test_crypto.suites @ Test_sim.suites @ Test_wire.suites @ Test_partition_tree.suites
   @ Test_log.suites @ Test_nv_decision.suites @ Test_codec.suites @ Test_baseline.suites @ Test_util.suites @ Test_checkpoint_store.suites @ Test_config.suites
   @ Test_services.suites @ Test_fs.suites @ Test_paged.suites @ Test_network.suites @ Test_perf.suites
   @ Test_integration.suites @ Test_fuzz.suites @ Test_explore.suites @ Test_hotpath.suites @ Test_obs.suites
   @ Test_lint.suites)

(* Tests for bft_crypto: FIPS/RFC vectors plus structural properties. *)

open Bft_crypto

let check_hex msg expected actual = Alcotest.(check string) msg expected (Bft_util.Hex.encode actual)

(* --- SHA-256: FIPS 180-4 / NIST vectors --- *)

let test_sha256_empty () =
  check_hex "sha256('')"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.digest "")

let test_sha256_abc () =
  check_hex "sha256('abc')"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.digest "abc")

let test_sha256_two_blocks () =
  check_hex "sha256(448-bit msg)"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")

let test_sha256_fox () =
  check_hex "sha256(fox)"
    "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"
    (Sha256.digest "The quick brown fox jumps over the lazy dog")

let test_sha256_million_a () =
  let ctx = Sha256.init () in
  let chunk = String.make 1000 'a' in
  for _ = 1 to 1000 do
    Sha256.feed ctx chunk
  done;
  check_hex "sha256(10^6 * 'a')"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.finalize ctx)

let test_sha256_incremental_matches_oneshot () =
  let msg = String.init 3000 (fun i -> Char.chr (i mod 251)) in
  let one_shot = Sha256.digest msg in
  (* feed in irregular chunk sizes crossing block boundaries *)
  let sizes = [ 1; 63; 64; 65; 127; 128; 500; 2052 ] in
  let ctx = Sha256.init () in
  let pos = ref 0 in
  List.iter
    (fun sz ->
      let len = min sz (String.length msg - !pos) in
      Sha256.feed_sub ctx msg !pos len;
      pos := !pos + len)
    sizes;
  Sha256.feed_sub ctx msg !pos (String.length msg - !pos);
  Alcotest.(check string) "incremental = one-shot" one_shot (Sha256.finalize ctx)

let test_sha256_boundary_lengths () =
  (* padding edge cases: lengths around the 55/56/63/64 block boundaries *)
  List.iter
    (fun len ->
      let msg = String.make len 'x' in
      let d1 = Sha256.digest msg in
      let ctx = Sha256.init () in
      String.iter (fun c -> Sha256.feed ctx (String.make 1 c)) msg;
      let d2 = Sha256.finalize ctx in
      Alcotest.(check string)
        (Printf.sprintf "len=%d byte-at-a-time" len)
        (Bft_util.Hex.encode d1) (Bft_util.Hex.encode d2))
    [ 0; 1; 54; 55; 56; 57; 63; 64; 65; 119; 120; 128; 129 ]

(* --- HMAC-SHA256: RFC 4231 vectors --- *)

let test_hmac_rfc4231_case1 () =
  check_hex "hmac case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.mac ~key:(String.make 20 '\x0b') "Hi There")

let test_hmac_rfc4231_case2 () =
  check_hex "hmac case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.mac ~key:"Jefe" "what do ya want for nothing?")

let test_hmac_rfc4231_case3 () =
  check_hex "hmac case 3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Hmac.mac ~key:(String.make 20 '\xaa') (String.make 50 '\xdd'))

let test_hmac_rfc4231_case6 () =
  check_hex "hmac case 6 (oversized key)"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hmac.mac
       ~key:(String.make 131 '\xaa')
       "Test Using Larger Than Block-Size Key - Hash Key First")

let test_hmac_truncated_verify () =
  let key = "secret-key" and msg = "payload" in
  let tag = Hmac.mac_truncated ~key 8 msg in
  Alcotest.(check int) "tag length" 8 (String.length tag);
  Alcotest.(check bool) "verifies" true (Hmac.verify ~key ~tag msg);
  Alcotest.(check bool) "wrong msg" false (Hmac.verify ~key ~tag "payload2");
  Alcotest.(check bool) "wrong key" false (Hmac.verify ~key:"other" ~tag msg)

(* --- Hex --- *)

let test_hex_known () =
  Alcotest.(check string) "encode" "00ff10" (Bft_util.Hex.encode "\x00\xff\x10");
  Alcotest.(check string) "decode" "\x00\xff\x10" (Bft_util.Hex.decode "00ff10");
  Alcotest.(check string) "decode upper" "\xab" (Bft_util.Hex.decode "AB")

let test_hex_errors () =
  Alcotest.check_raises "odd length" (Invalid_argument "Hex.decode: odd length") (fun () ->
      ignore (Bft_util.Hex.decode "abc"));
  Alcotest.check_raises "bad char" (Invalid_argument "Hex.decode: non-hex character")
    (fun () -> ignore (Bft_util.Hex.decode "zz"))

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:200
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s -> String.equal (Bft_util.Hex.decode (Bft_util.Hex.encode s)) s)

(* --- AdHash --- *)

let rand_digest rng () = Adhash.of_digest (Sha256.digest (Bft_util.Rng.bytes rng 20))

let test_adhash_group_laws () =
  let rng = Bft_util.Rng.create 7L in
  let d = rand_digest rng in
  for _ = 1 to 50 do
    let a = d () and b = d () and c = d () in
    Alcotest.(check bool) "commutative" true (Adhash.equal (Adhash.add a b) (Adhash.add b a));
    Alcotest.(check bool) "associative" true
      (Adhash.equal (Adhash.add a (Adhash.add b c)) (Adhash.add (Adhash.add a b) c));
    Alcotest.(check bool) "identity" true (Adhash.equal (Adhash.add a Adhash.zero) a);
    Alcotest.(check bool) "inverse" true (Adhash.equal (Adhash.sub (Adhash.add a b) b) a)
  done

let test_adhash_incremental_update () =
  (* replacing one element of a sum gives the same result as recomputing *)
  let rng = Bft_util.Rng.create 9L in
  let d = rand_digest rng in
  let elems = Array.init 10 (fun _ -> d ()) in
  let total = Array.fold_left Adhash.add Adhash.zero elems in
  let replacement = d () in
  let updated = Adhash.add (Adhash.sub total elems.(3)) replacement in
  elems.(3) <- replacement;
  let recomputed = Array.fold_left Adhash.add Adhash.zero elems in
  Alcotest.(check bool) "incremental = recomputed" true (Adhash.equal updated recomputed)

(* --- Keychain + authenticators --- *)

let make_pair () =
  let rng = Bft_util.Rng.create 42L in
  let kc0 = Keychain.create ~my_id:0 and kc1 = Keychain.create ~my_id:1 in
  (* 1 generates the key 0 must use to reach 1, and ships it to 0 *)
  let k01 = Keychain.fresh_in_key kc1 rng ~peer:0 in
  assert (Keychain.install_out_key kc0 ~peer:1 k01);
  let k10 = Keychain.fresh_in_key kc0 rng ~peer:1 in
  assert (Keychain.install_out_key kc1 ~peer:0 k10);
  (rng, kc0, kc1)

let test_mac_roundtrip () =
  let _, kc0, kc1 = make_pair () in
  let msg = "pre-prepare v0 n1" in
  match Auth.compute_mac kc0 ~peer:1 msg with
  | None -> Alcotest.fail "no out key"
  | Some mac ->
      Alcotest.(check bool) "verifies at 1" true (Auth.verify_mac kc1 ~peer:0 mac msg);
      Alcotest.(check bool) "wrong msg" false (Auth.verify_mac kc1 ~peer:0 mac "other")

let test_mac_stale_epoch_rejected () =
  let rng, kc0, kc1 = make_pair () in
  let msg = "checkpoint n100" in
  let mac = Option.get (Auth.compute_mac kc0 ~peer:1 msg) in
  (* 1 refreshes the key 0 should use: old-epoch MACs must now be rejected *)
  let _new_key = Keychain.fresh_in_key kc1 rng ~peer:0 in
  Alcotest.(check bool) "stale epoch rejected" false (Auth.verify_mac kc1 ~peer:0 mac msg)

let test_stale_new_key_rejected () =
  let rng, _, kc1 = make_pair () in
  let kc0 = Keychain.create ~my_id:0 in
  let k_new = Keychain.fresh_in_key kc1 rng ~peer:0 in
  Alcotest.(check bool) "fresh accepted" true (Keychain.install_out_key kc0 ~peer:1 k_new);
  Alcotest.(check bool) "replay rejected" false (Keychain.install_out_key kc0 ~peer:1 k_new)

let test_authenticator () =
  let rng = Bft_util.Rng.create 5L in
  let n = 4 in
  let chains = Array.init n (fun i -> Keychain.create ~my_id:i) in
  (* full pairwise key establishment *)
  for receiver = 0 to n - 1 do
    for sender = 0 to n - 1 do
      if sender <> receiver then begin
        let k = Keychain.fresh_in_key chains.(receiver) rng ~peer:sender in
        assert (Keychain.install_out_key chains.(sender) ~peer:receiver k)
      end
    done
  done;
  let msg = "view-change v3" in
  let receivers = List.init n Fun.id in
  let auth = Auth.compute_authenticator chains.(0) ~receivers msg in
  Alcotest.(check int) "n-1 entries" (n - 1) (List.length auth);
  Alcotest.(check int) "wire size 8+8(n-1)" (8 + (8 * (n - 1))) (Auth.size auth);
  for i = 1 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "replica %d verifies" i)
      true
      (Auth.verify_authenticator chains.(i) ~peer:0 auth msg)
  done;
  (* corrupting replica 2's entry breaks only replica 2's check *)
  let corrupt = Auth.corrupt_entry auth 2 in
  Alcotest.(check bool) "2 rejects" false (Auth.verify_authenticator chains.(2) ~peer:0 corrupt msg);
  Alcotest.(check bool) "1 still accepts" true
    (Auth.verify_authenticator chains.(1) ~peer:0 corrupt msg)

(* --- Group-derived keys (million-client cohorts) --- *)

let test_group_keys () =
  let g = Keychain.group ~first:100 ~last:1_000_099 ~secret:"group-secret" in
  let replica = Keychain.create ~my_id:1 in
  Keychain.set_group replica g;
  (* a virtual client in range sends to replica 1: both sides derive the
     same directional key, so the MAC round-trips *)
  let client = 100_000 in
  let key, pre = Keychain.group_derive g ~src:client ~dst:1 in
  let msg = "put k v" in
  let tag = Hmac.mac_truncated_precomputed pre Auth.tag_size msg in
  let mac = { Auth.tag; epoch = key.Keychain.epoch } in
  Alcotest.(check bool) "replica verifies derived mac" true
    (Auth.verify_mac replica ~peer:client mac msg);
  Alcotest.(check bool) "out of range has no key" false
    (Auth.verify_mac replica ~peer:99 mac msg);
  Alcotest.(check int) "derived epoch is 1" 1 (Keychain.in_epoch replica ~peer:client);
  (* explicitly installed pairwise keys win over the group fallback *)
  let rng = Bft_util.Rng.create 9L in
  let k = Keychain.fresh_in_key replica rng ~peer:client in
  Alcotest.(check bool) "pairwise key shadows group" false
    (Auth.verify_mac replica ~peer:client mac msg);
  ignore k

let test_group_derivation_shared_across_flush () =
  (* satellite: one key-block derivation per sender per verify_batch flush —
     the per-flush memo must reuse the derived midstates for every item *)
  let g = Keychain.group ~first:10 ~last:9_999 ~secret:"s" in
  let replica = Keychain.create ~my_id:0 in
  Keychain.set_group replica g;
  let sender = 4_242 in
  let _, pre = Keychain.group_derive g ~src:sender ~dst:0 in
  let items =
    Array.init 8 (fun i ->
        let msg = Printf.sprintf "op-%d" i in
        let mac =
          { Auth.tag = Hmac.mac_truncated_precomputed pre Auth.tag_size msg; epoch = 1 }
        in
        Auth.Item_mac { peer = sender; mac; msg })
  in
  let before = Keychain.group_derivations g in
  let verdicts = Auth.verify_batch replica items in
  Alcotest.(check (array bool)) "all verify" (Array.make 8 true) verdicts;
  Alcotest.(check int) "one derivation for the whole flush" (before + 1)
    (Keychain.group_derivations g);
  (* single-item fast path still derives exactly once *)
  let one = [| items.(0) |] in
  Alcotest.(check (array bool)) "singleton verifies" [| true |] (Auth.verify_batch replica one);
  Alcotest.(check int) "singleton derives once" (before + 2) (Keychain.group_derivations g)

(* --- Signatures --- *)

let test_signature_roundtrip () =
  let rng = Bft_util.Rng.create 11L in
  let reg = Signature.create_registry () in
  let s0 = Signature.register reg rng 0 in
  let s1 = Signature.register reg rng 1 in
  let msg = "new-key i=0 t=5" in
  let sig0 = Signature.sign s0 msg in
  Alcotest.(check bool) "valid" true (Signature.verify reg sig0 msg);
  Alcotest.(check bool) "wrong msg" false (Signature.verify reg sig0 "tampered");
  let sig1 = Signature.sign s1 msg in
  Alcotest.(check bool) "other signer valid" true (Signature.verify reg sig1 msg);
  Alcotest.(check bool) "claimed id mismatch" false
    (Signature.verify reg { sig1 with signer_id = 0 } msg)

let test_signature_forgery_fails () =
  let rng = Bft_util.Rng.create 13L in
  let reg = Signature.create_registry () in
  let _ = Signature.register reg rng 0 in
  Alcotest.(check bool) "forgery rejected" false
    (Signature.verify reg (Signature.forge ~signer_id:0) "request")

let test_signature_unregistered () =
  let reg = Signature.create_registry () in
  Alcotest.(check bool) "unknown signer" false
    (Signature.verify reg (Signature.forge ~signer_id:9) "x")

(* --- Rng sanity --- *)

let test_rng_determinism () =
  let a = Bft_util.Rng.create 99L and b = Bft_util.Rng.create 99L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Bft_util.Rng.int64 a) (Bft_util.Rng.int64 b)
  done

let test_rng_split_independent () =
  let a = Bft_util.Rng.create 99L in
  let c = Bft_util.Rng.split a in
  let x = Bft_util.Rng.int64 c and y = Bft_util.Rng.int64 a in
  Alcotest.(check bool) "streams differ" true (x <> y)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"rng int within bounds" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let rng = Bft_util.Rng.create (Int64.of_int seed) in
      let v = Bft_util.Rng.int rng bound in
      v >= 0 && v < bound)

let suites =
  [
    ( "crypto.sha256",
      [
        Alcotest.test_case "empty" `Quick test_sha256_empty;
        Alcotest.test_case "abc" `Quick test_sha256_abc;
        Alcotest.test_case "two blocks" `Quick test_sha256_two_blocks;
        Alcotest.test_case "fox" `Quick test_sha256_fox;
        Alcotest.test_case "million a" `Slow test_sha256_million_a;
        Alcotest.test_case "incremental" `Quick test_sha256_incremental_matches_oneshot;
        Alcotest.test_case "boundary lengths" `Quick test_sha256_boundary_lengths;
      ] );
    ( "crypto.hmac",
      [
        Alcotest.test_case "rfc4231 case1" `Quick test_hmac_rfc4231_case1;
        Alcotest.test_case "rfc4231 case2" `Quick test_hmac_rfc4231_case2;
        Alcotest.test_case "rfc4231 case3" `Quick test_hmac_rfc4231_case3;
        Alcotest.test_case "rfc4231 case6" `Quick test_hmac_rfc4231_case6;
        Alcotest.test_case "truncated verify" `Quick test_hmac_truncated_verify;
      ] );
    ( "crypto.hex",
      [
        Alcotest.test_case "known" `Quick test_hex_known;
        Alcotest.test_case "errors" `Quick test_hex_errors;
        QCheck_alcotest.to_alcotest prop_hex_roundtrip;
      ] );
    ( "crypto.adhash",
      [
        Alcotest.test_case "group laws" `Quick test_adhash_group_laws;
        Alcotest.test_case "incremental update" `Quick test_adhash_incremental_update;
      ] );
    ( "crypto.auth",
      [
        Alcotest.test_case "mac roundtrip" `Quick test_mac_roundtrip;
        Alcotest.test_case "stale epoch rejected" `Quick test_mac_stale_epoch_rejected;
        Alcotest.test_case "stale new-key rejected" `Quick test_stale_new_key_rejected;
        Alcotest.test_case "authenticator" `Quick test_authenticator;
        Alcotest.test_case "group-derived keys" `Quick test_group_keys;
        Alcotest.test_case "group derivation shared per flush" `Quick
          test_group_derivation_shared_across_flush;
      ] );
    ( "crypto.signature",
      [
        Alcotest.test_case "roundtrip" `Quick test_signature_roundtrip;
        Alcotest.test_case "forgery fails" `Quick test_signature_forgery_fails;
        Alcotest.test_case "unregistered" `Quick test_signature_unregistered;
      ] );
    ( "util.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        QCheck_alcotest.to_alcotest prop_rng_int_bounds;
      ] );
  ]

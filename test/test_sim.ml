(* Tests for the discrete-event engine. *)

open Bft_sim

let test_empty_run () =
  let e = Engine.create () in
  Engine.run e;
  Alcotest.(check int64) "time stays 0" 0L (Engine.now e)

let test_ordering () =
  let e = Engine.create () in
  let order = ref [] in
  let record tag () = order := tag :: !order in
  ignore (Engine.schedule e ~delay:(Engine.us 30) (record "c"));
  ignore (Engine.schedule e ~delay:(Engine.us 10) (record "a"));
  ignore (Engine.schedule e ~delay:(Engine.us 20) (record "b"));
  Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !order);
  Alcotest.(check int64) "final clock" (Engine.us 30) (Engine.now e)

let test_same_time_fifo () =
  let e = Engine.create () in
  let order = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~delay:(Engine.us 10) (fun () -> order := i :: !order))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo at equal times" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:(Engine.us 10) (fun () -> fired := true) in
  Alcotest.(check bool) "pending" true (Engine.is_pending h);
  Engine.cancel h;
  Alcotest.(check bool) "not pending" false (Engine.is_pending h);
  Engine.run e;
  Alcotest.(check bool) "cancelled does not fire" false !fired;
  Engine.cancel h (* idempotent *)

let test_nested_scheduling () =
  let e = Engine.create () in
  let times = ref [] in
  ignore
    (Engine.schedule e ~delay:(Engine.us 5) (fun () ->
         times := Engine.now e :: !times;
         ignore
           (Engine.schedule e ~delay:(Engine.us 7) (fun () ->
                times := Engine.now e :: !times))));
  Engine.run e;
  Alcotest.(check (list int64)) "nested times" [ Engine.us 5; Engine.us 12 ] (List.rev !times)

let test_run_until_deadline () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    ignore (Engine.schedule e ~delay:(Engine.ms 1) tick)
  in
  ignore (Engine.schedule e ~delay:0L tick);
  Engine.run ~until:(Engine.ms 10) e;
  (* ticks at 0,1,...,10 ms = 11 events *)
  Alcotest.(check int) "ticks" 11 !count;
  Alcotest.(check bool) "queue still has next tick" true (Engine.pending_events e > 0)

let test_run_while () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    ignore (Engine.schedule e ~delay:(Engine.ms 1) tick)
  in
  ignore (Engine.schedule e ~delay:0L tick);
  let exhausted = Engine.run_while e (fun () -> !count < 5) in
  Alcotest.(check bool) "condition reached" false exhausted;
  Alcotest.(check int) "stopped at 5" 5 !count

let test_schedule_at_past_clamped () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:(Engine.us 10) (fun () -> ()));
  Engine.run e;
  let fired_at = ref (-1L) in
  ignore (Engine.schedule_at e 0L (fun () -> fired_at := Engine.now e));
  Engine.run e;
  Alcotest.(check int64) "clamped to now" (Engine.us 10) !fired_at

let test_negative_delay_rejected () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      ignore (Engine.schedule e ~delay:(-1L) (fun () -> ())))

let test_determinism_same_seed () =
  (* identical program + seed produces identical event interleavings and
     rng draws *)
  let run seed =
    let e = Engine.create ~seed () in
    let rng = Engine.rng e in
    let log = Buffer.create 64 in
    for i = 1 to 20 do
      let delay = Engine.us (Bft_util.Rng.int rng 100) in
      ignore
        (Engine.schedule e ~delay (fun () ->
             Buffer.add_string log (Printf.sprintf "%d@%Ld;" i (Engine.now e))))
    done;
    Engine.run e;
    Buffer.contents log
  in
  Alcotest.(check string) "same seed same trace" (run 123L) (run 123L);
  Alcotest.(check bool) "different seed different trace" true
    (not (String.equal (run 123L) (run 124L)))

let test_time_helpers () =
  Alcotest.(check int64) "us" 1_000L (Engine.us 1);
  Alcotest.(check int64) "ms" 1_000_000L (Engine.ms 1);
  Alcotest.(check int64) "sec" 1_000_000_000L (Engine.sec 1);
  Alcotest.(check (float 1e-9)) "to_us" 1.5 (Engine.to_us 1_500L);
  Alcotest.(check int64) "of_us_float" 2_500L (Engine.of_us_float 2.5)

let suites =
  [
    ( "sim.engine",
      [
        Alcotest.test_case "empty run" `Quick test_empty_run;
        Alcotest.test_case "ordering" `Quick test_ordering;
        Alcotest.test_case "same-time fifo" `Quick test_same_time_fifo;
        Alcotest.test_case "cancel" `Quick test_cancel;
        Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
        Alcotest.test_case "run until deadline" `Quick test_run_until_deadline;
        Alcotest.test_case "run while" `Quick test_run_while;
        Alcotest.test_case "schedule_at clamped" `Quick test_schedule_at_past_clamped;
        Alcotest.test_case "negative delay" `Quick test_negative_delay_rejected;
        Alcotest.test_case "determinism" `Quick test_determinism_same_seed;
        Alcotest.test_case "time helpers" `Quick test_time_helpers;
      ] );
  ]

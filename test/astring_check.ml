(* Tiny substring helper for tests — the shared scanner under a test-local name. *)

let contains = Bft_util.Strutil.contains_sub

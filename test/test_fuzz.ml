(* Fault-schedule fuzzer: bounded smoke fuzz, a pinned regression seed that
   exercises a view change, and a self-test of the shrinker via the planted
   expect-no-view-change pseudo-oracle. *)

open Bft_check

let params ?(seed = 1) () = Runner.default_params ~seed ~f:1

(* --- schedule determinism and encoding --- *)

let test_generation_deterministic () =
  for seed = 1 to 20 do
    let s1 = Runner.generate (params ~seed ())
    and s2 = Runner.generate (params ~seed ()) in
    Alcotest.(check string)
      (Printf.sprintf "seed %d generates the same schedule twice" seed)
      (Schedule.to_string s1) (Schedule.to_string s2)
  done

let test_schedule_string_roundtrip () =
  for seed = 1 to 50 do
    let s = Runner.generate (params ~seed ()) in
    match Schedule.of_string (Schedule.to_string s) with
    | Error e -> Alcotest.failf "seed %d: of_string failed: %s" seed e
    | Ok s' ->
        Alcotest.(check string)
          (Printf.sprintf "seed %d round-trips" seed)
          (Schedule.to_string s) (Schedule.to_string s')
  done

let test_victim_budget () =
  (* replica faults are confined to at most f victims (Section 2.1) *)
  for seed = 1 to 100 do
    let p = params ~seed () in
    let victims = Schedule.victims (Runner.generate p) in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: %d victims <= f" seed (List.length victims))
      true
      (List.length victims <= p.Runner.f)
  done

let test_bad_schedule_strings_rejected () =
  List.iter
    (fun s ->
      match Schedule.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed schedule %S" s)
    [
      "nonsense"; "10@"; "@crash:0"; "10@crash:x"; "10@loss"; "10@drop:zz:*:*"; "x@heal";
      (* gate actions (hold / release / release-all) *)
      "10@rel"; "10@rel:pp"; "10@rel:pp:0:1"; "10@rel:zz:0:1:0"; "10@rel:pp:x:1:0";
      "10@rel:pp:0:1:x"; "10@hold:1"; "10@relall:0";
    ]

(* --- smoke fuzz --- *)

let test_smoke_fuzz () =
  let outcome = Runner.fuzz (params ()) ~seeds:50 in
  List.iter
    (fun (seed, r) ->
      Alcotest.failf "seed %d violated %s\nschedule: %s" seed
        (String.concat "; " r.Runner.failures)
        (Schedule.to_string r.Runner.schedule))
    outcome.Runner.failing;
  Alcotest.(check int) "all seeds ran" 50 outcome.Runner.seeds_run;
  (* the tuned generator must actually stress the protocol: across 50 seeds
     some schedules must displace the primary *)
  Alcotest.(check bool)
    (Printf.sprintf "view changes explored (%d)" outcome.Runner.total_view_changes)
    true
    (outcome.Runner.total_view_changes > 0)

(* --- liveness oracles in fuzz mode (behind the check_liveness flag) --- *)

let test_liveness_flag_clean_seeds () =
  (* An adversarial schedule is free to starve progress, so the liveness
     oracles are opt-in for fuzzing. They must stay silent exactly on the
     runs that do commit their whole workload: re-running a completing seed
     with [check_liveness] on may not introduce failures. *)
  let qualified = ref 0 in
  for seed = 1 to 15 do
    let base = Runner.run_seed (params ~seed ()) in
    if base.Runner.completed_ops = base.Runner.total_ops then begin
      incr qualified;
      let p =
        { (params ~seed ()) with Runner.check_liveness = true; view_bound = Some 64 }
      in
      let r = Runner.run_seed p in
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d clean under liveness oracles" seed)
        [] r.Runner.failures
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "some seeds completed their workload (%d)" !qualified)
    true (!qualified > 0)

(* --- pinned regression: a seed whose schedule forces a view change --- *)

let regression_seed = 46

let test_view_change_seed_regression () =
  let r = Runner.run_seed (params ~seed:regression_seed ()) in
  Alcotest.(check (list string)) "no oracle failures" [] r.Runner.failures;
  Alcotest.(check bool)
    (Printf.sprintf "view changes occurred (%d)" r.Runner.view_changes)
    true (r.Runner.view_changes > 0);
  Alcotest.(check int) "every request committed" r.Runner.total_ops r.Runner.completed_ops

let test_regression_seed_replays_from_string () =
  (* the replay path (--schedule) must reproduce the seeded run exactly *)
  let p = params ~seed:regression_seed () in
  let sched = Runner.generate p in
  let encoded = Schedule.to_string sched in
  match Schedule.of_string encoded with
  | Error e -> Alcotest.failf "of_string: %s" e
  | Ok sched' ->
      let a = Runner.run_schedule p sched and b = Runner.run_schedule p sched' in
      Alcotest.(check int) "same completions" a.Runner.completed_ops b.Runner.completed_ops;
      Alcotest.(check int) "same view changes" a.Runner.view_changes b.Runner.view_changes;
      Alcotest.(check (list string)) "same failures" a.Runner.failures b.Runner.failures

(* --- shrinker self-test --- *)

let test_shrinker_minimizes () =
  (* plant a failure: seed 46's schedule crashes the primary, so the
     expect-no-view-change pseudo-oracle must fail — and the shrinker must
     strip the schedule down to the events that force the view change *)
  let p = { (params ~seed:regression_seed ()) with Runner.expect_no_view_change = true } in
  let original = Runner.generate p in
  let r = Runner.run_schedule p original in
  Alcotest.(check bool) "planted oracle fails" true (Runner.failed r);
  let shrunk, shrunk_run = Runner.shrink p original in
  Alcotest.(check bool) "shrunk schedule still fails" true (Runner.failed shrunk_run);
  Alcotest.(check bool)
    (Printf.sprintf "shrunk %d -> %d events" (List.length original) (List.length shrunk))
    true
    (List.length shrunk <= List.length original && List.length shrunk >= 1);
  (* the minimal counterexample must be replayable: encode, decode, re-run *)
  (match Schedule.of_string (Schedule.to_string shrunk) with
  | Error e -> Alcotest.failf "shrunk schedule does not round-trip: %s" e
  | Ok s ->
      Alcotest.(check bool) "decoded shrunk schedule still fails" true
        (Runner.failed (Runner.run_schedule p s)));
  let line = Runner.replay_line p shrunk in
  Alcotest.(check bool) "replay line names the seed" true
    (Bft_util.Strutil.contains_sub line (Printf.sprintf "--seed %d" regression_seed))

let suites =
  [
    ( "check.schedule",
      [
        Alcotest.test_case "generation deterministic" `Quick test_generation_deterministic;
        Alcotest.test_case "string roundtrip" `Quick test_schedule_string_roundtrip;
        Alcotest.test_case "victim budget" `Quick test_victim_budget;
        Alcotest.test_case "malformed strings rejected" `Quick test_bad_schedule_strings_rejected;
      ] );
    ( "check.fuzz",
      [
        Alcotest.test_case "smoke fuzz (50 seeds)" `Slow test_smoke_fuzz;
        Alcotest.test_case "liveness oracles on clean seeds" `Slow
          test_liveness_flag_clean_seeds;
        Alcotest.test_case "view-change seed regression" `Quick test_view_change_seed_regression;
        Alcotest.test_case "replay from schedule string" `Quick test_regression_seed_replays_from_string;
        Alcotest.test_case "shrinker minimizes" `Slow test_shrinker_minimizes;
      ] );
  ]

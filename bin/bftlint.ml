(* bftlint — static-analysis gate over this repo's lib/ sources.

   Syntactic rules run on a parse of each .ml file; type-aware rules run
   on the .cmt files dune emits, so run it from a tree where the
   libraries are built (dune build @lint does exactly that). Exit codes:
   0 clean, 1 findings, 2 scan errors. *)

open Cmdliner

let run root paths format out allows =
  let allow =
    List.filter_map
      (fun spec ->
        match String.index_opt spec ':' with
        | Some i ->
            Some
              ( String.sub spec 0 i,
                String.sub spec (i + 1) (String.length spec - i - 1) )
        | None ->
            Printf.eprintf "bftlint: ignoring malformed --allow %S (want PREFIX:RULE)\n" spec;
            None)
      allows
  in
  let r = Bft_lint.Lint.lint_tree ~allow ~root paths in
  let json = Bft_lint.Finding.list_to_json r.findings in
  (match out with
  | Some file ->
      let oc = open_out file in
      output_string oc json;
      output_char oc '\n';
      close_out oc
  | None -> ());
  (match format with
  | `Json -> print_endline json
  | `Text ->
      List.iter (fun f -> print_endline (Bft_lint.Finding.to_string f)) r.findings;
      Printf.printf "bftlint: %d finding%s in %d files (+%d cmt)\n" (List.length r.findings)
        (if List.length r.findings = 1 then "" else "s")
        r.files_scanned r.cmts_scanned);
  List.iter (fun e -> Printf.eprintf "bftlint: error: %s\n" e) r.errors;
  if r.errors <> [] then 2 else if r.findings <> [] then 1 else 0

let root =
  let doc = "Tree to lint (the build tree, so .cmt files are visible)." in
  Arg.(value & opt string "." & info [ "root" ] ~docv:"DIR" ~doc)

let paths =
  let doc = "Paths under $(b,--root) to scan." in
  Arg.(value & pos_all string [ "lib" ] & info [] ~docv:"PATH" ~doc)

let format =
  let doc = "Output format: $(b,text) or $(b,json)." in
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc)

let out =
  let doc = "Also write the JSON findings to $(docv) (written even when clean)." in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)

let allows =
  let doc =
    "Extend the per-directory allowlist with $(i,PREFIX):$(i,RULE) (repeatable). Files whose \
     path contains $(i,PREFIX) are exempt from $(i,RULE)."
  in
  Arg.(value & opt_all string [] & info [ "allow" ] ~docv:"PREFIX:RULE" ~doc)

let cmd =
  let info =
    Cmd.info "bftlint" ~doc:"determinism / fault-hygiene static analysis for the bft repo"
  in
  Cmd.v info Term.(const run $ root $ paths $ format $ out $ allows)

let () = exit (Cmd.eval' cmd)

(* bftlint — static-analysis gate over this repo's sources.

   Syntactic rules run on a parse of each .ml file; type-aware and
   whole-program (call-graph / effect / Vpool-escape) rules run on the
   .cmt files dune emits, so run it from a tree where the libraries are
   built (dune build @lint does exactly that). Exit codes: 0 clean,
   1 findings, 2 scan errors or usage errors (e.g. malformed --allow). *)

open Cmdliner

let run root paths format out sarif_out why allows =
  let allow, bad =
    List.partition_map
      (fun spec ->
        match Bft_lint.Lint.parse_allow spec with
        | Ok pr -> Left pr
        | Error e -> Right e)
      allows
  in
  if bad <> [] then begin
    List.iter (fun e -> Printf.eprintf "bftlint: %s\n" e) bad;
    2
  end
  else begin
    let r = Bft_lint.Lint.lint_tree ~allow ~root paths in
    let json = Bft_lint.Finding.list_to_json r.findings in
    let sarif () = Bft_lint.Finding.list_to_sarif ~rules:Bft_lint.Rule.all r.findings in
    let write_file file s =
      let oc = open_out file in
      output_string oc s;
      output_char oc '\n';
      close_out oc
    in
    Option.iter (fun file -> write_file file json) out;
    Option.iter (fun file -> write_file file (sarif ())) sarif_out;
    (match format with
    | `Json -> print_endline json
    | `Sarif -> print_endline (sarif ())
    | `Text ->
        List.iter
          (fun f ->
            print_endline (Bft_lint.Finding.to_string f);
            if why then List.iter print_endline (Bft_lint.Finding.why_lines f))
          r.findings;
        Printf.printf "bftlint: %d finding%s in %d files (+%d cmt)\n" (List.length r.findings)
          (if List.length r.findings = 1 then "" else "s")
          r.files_scanned r.cmts_scanned);
    List.iter (fun e -> Printf.eprintf "bftlint: error: %s\n" e) r.errors;
    if r.errors <> [] then 2 else if r.findings <> [] then 1 else 0
  end

let root =
  let doc = "Tree to lint (the build tree, so .cmt files are visible)." in
  Arg.(value & opt string "." & info [ "root" ] ~docv:"DIR" ~doc)

let paths =
  let doc = "Paths under $(b,--root) to scan." in
  Arg.(value & pos_all string [ "lib" ] & info [] ~docv:"PATH" ~doc)

let format =
  let doc = "Output format: $(b,text), $(b,json) or $(b,sarif)." in
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc)

let out =
  let doc = "Also write the JSON findings to $(docv) (written even when clean)." in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)

let sarif_out =
  let doc = "Also write SARIF 2.1.0 findings to $(docv) (written even when clean)." in
  Arg.(value & opt (some string) None & info [ "sarif-out" ] ~docv:"FILE" ~doc)

let why =
  let doc =
    "With $(b,--format text): print the call-path witness under each interprocedural finding \
     (how the flagged root reaches the effect seed)."
  in
  Arg.(value & flag & info [ "why" ] ~doc)

let allows =
  let doc =
    "Extend the per-directory allowlist with $(i,PREFIX):$(i,RULE) (repeatable). Files whose \
     path contains $(i,PREFIX) are exempt from $(i,RULE). A malformed spec or unknown rule id \
     is a usage error (exit 2)."
  in
  Arg.(value & opt_all string [] & info [ "allow" ] ~docv:"PREFIX:RULE" ~doc)

let cmd =
  let info =
    Cmd.info "bftlint" ~doc:"determinism / fault-hygiene static analysis for the bft repo"
  in
  Cmd.v info Term.(const run $ root $ paths $ format $ out $ sarif_out $ why $ allows)

let () = exit (Cmd.eval' cmd)

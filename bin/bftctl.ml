(* bftctl: command-line driver for the BFT simulator.

   Subcommands run self-contained scenarios:
     run        closed-loop clients against a replicated service
     latency    single-request latency for an arg/result size point
     andrew     the Andrew-like BFS workload, replicated vs unreplicated
     viewchange kill the primary under load, report failover latency
     recover    corrupt a replica and run proactive recovery
     model      print analytic performance-model predictions *)

open Cmdliner
open Bft_core

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable protocol debug logging.")

let f_arg =
  Arg.(value & opt int 1 & info [ "f" ] ~docv:"F" ~doc:"Faults tolerated; n = 3f+1.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.")

let auth_arg =
  Arg.(
    value
    & opt (enum [ ("mac", Config.Mac_auth); ("sig", Config.Sig_auth) ]) Config.Mac_auth
    & info [ "auth" ] ~doc:"mac (BFT) or sig (BFT-PK).")

let service_arg =
  Arg.(
    value
    & opt (enum [ ("null", `Null); ("counter", `Counter); ("kv", `Kv); ("bfs", `Bfs) ]) `Kv
    & info [ "service" ] ~doc:"Replicated service: null, counter, kv, bfs.")

let make_service = function
  | `Null -> fun () -> Bft_sm.Null_service.create ()
  | `Counter -> fun () -> Bft_sm.Counter_service.create ()
  | `Kv -> fun () -> Bft_sm.Kv_service.create ()
  | `Bfs -> fun () -> Bft_bfs.Bfs_service.create ()

let mk_cluster ~f ~seed ~auth ~service ~clients =
  let cfg = Config.make ~auth_mode:auth ~f () in
  (cfg, Cluster.create ~seed:(Int64.of_int seed) ~service:(make_service service) ~num_clients:clients cfg)

(* --- run --- *)

let run_cmd =
  let ops_arg = Arg.(value & opt int 100 & info [ "ops" ] ~doc:"Operations per client.") in
  let clients_arg = Arg.(value & opt int 2 & info [ "clients" ] ~doc:"Closed-loop clients.") in
  let run verbose f seed auth service ops clients =
    setup_logs verbose;
    let _, c = mk_cluster ~f ~seed ~auth ~service ~clients in
    let stats = Bft_util.Stats.create () in
    let t0 = Bft_sim.Engine.now (Cluster.engine c) in
    for round = 1 to ops do
      for k = 0 to clients - 1 do
        let op =
          match service with
          | `Counter -> "inc"
          | `Kv -> Printf.sprintf "put key%d-%d value%d" k round round
          | `Null -> Bft_sm.Null_service.op ~read_only:false ~arg_size:16 ~result_size:16
          | `Bfs -> Printf.sprintf "create 1 f%d-%d" k round
        in
        let _, l = Cluster.invoke_sync_latency ~timeout_us:60_000_000.0 c ~client:k op in
        Bft_util.Stats.add stats l
      done
    done;
    let elapsed = Bft_sim.Engine.to_ms (Int64.sub (Bft_sim.Engine.now (Cluster.engine c)) t0) in
    Printf.printf "completed %d ops in %.1f virtual ms\n" (ops * clients) elapsed;
    Printf.printf "latency (us): %s\n" (Bft_util.Stats.summary stats);
    Printf.printf "histories consistent: %b\n" (Cluster.committed_histories_consistent c)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run closed-loop clients against a replicated service.")
    Term.(const run $ verbose $ f_arg $ seed_arg $ auth_arg $ service_arg $ ops_arg $ clients_arg)

(* --- latency --- *)

let latency_cmd =
  let arg_size = Arg.(value & opt int 0 & info [ "arg" ] ~doc:"Argument bytes.") in
  let res_size = Arg.(value & opt int 0 & info [ "result" ] ~doc:"Result bytes.") in
  let ro = Arg.(value & flag & info [ "read-only" ] ~doc:"Use the read-only optimization.") in
  let run verbose f seed auth arg_size res_size ro =
    setup_logs verbose;
    let cfg = Config.make ~auth_mode:auth ~f () in
    let c = Cluster.create ~seed:(Int64.of_int seed) ~num_clients:1 cfg in
    ignore (Cluster.invoke_sync ~timeout_us:120_000_000.0 c ~client:0 (Bft_sm.Null_service.op ~read_only:false ~arg_size:0 ~result_size:0));
    let stats = Bft_util.Stats.create () in
    for _ = 1 to 20 do
      let _, l =
        Cluster.invoke_sync_latency ~timeout_us:120_000_000.0 c ~client:0 ~read_only:ro
          (Bft_sm.Null_service.op ~read_only:ro ~arg_size ~result_size:res_size)
      in
      Bft_util.Stats.add stats l
    done;
    let w = { Bft_perf.Perf_model.arg_size; result_size = res_size; read_only = ro; batch = 1 } in
    Printf.printf "measured: %s\n" (Bft_util.Stats.summary stats);
    Printf.printf "model:    %.1f us\n"
      (Bft_perf.Perf_model.latency_us ~costs:Bft_net.Costs.default ~cfg w)
  in
  Cmd.v (Cmd.info "latency" ~doc:"Measure request latency and compare with the analytic model.")
    Term.(const run $ verbose $ f_arg $ seed_arg $ auth_arg $ arg_size $ res_size $ ro)

(* --- andrew --- *)

let andrew_cmd =
  let scale = Arg.(value & opt int 1 & info [ "scale" ] ~doc:"Workload scale (AndrewN).") in
  let run verbose f seed auth scale =
    setup_logs verbose;
    let steps = Bft_bfs.Andrew.script ~scale () in
    let cfg = Config.make ~auth_mode:auth ~f () in
    let c =
      Cluster.create ~seed:(Int64.of_int seed)
        ~service:(fun () -> Bft_bfs.Bfs_service.create ())
        ~num_clients:1 cfg
    in
    let t0 = Bft_sim.Engine.now (Cluster.engine c) in
    List.iter
      (fun (s : Bft_bfs.Andrew.step) ->
        ignore (Cluster.invoke_sync ~timeout_us:120_000_000.0 c ~client:0 ~read_only:s.Bft_bfs.Andrew.read_only s.Bft_bfs.Andrew.op))
      steps;
    let bft_ms = Bft_sim.Engine.to_ms (Int64.sub (Bft_sim.Engine.now (Cluster.engine c)) t0) in
    let b = Baseline.create ~seed:(Int64.of_int seed) ~service:(fun () -> Bft_bfs.Bfs_service.create ()) () in
    let t0 = Bft_sim.Engine.now (Baseline.engine b) in
    List.iter (fun (s : Bft_bfs.Andrew.step) -> ignore (Baseline.invoke_sync b ~client:0 s.Bft_bfs.Andrew.op)) steps;
    let base_ms = Bft_sim.Engine.to_ms (Int64.sub (Bft_sim.Engine.now (Baseline.engine b)) t0) in
    Printf.printf "andrew x%d: %d ops\n" scale (List.length steps);
    Printf.printf "BFS (replicated):   %8.2f virtual ms\n" bft_ms;
    Printf.printf "NFS (unreplicated): %8.2f virtual ms\n" base_ms;
    Printf.printf "protocol overhead:  %8.1f%%\n" (100.0 *. ((bft_ms /. base_ms) -. 1.0))
  in
  Cmd.v (Cmd.info "andrew" ~doc:"Run the Andrew-like BFS workload, replicated vs unreplicated.")
    Term.(const run $ verbose $ f_arg $ seed_arg $ auth_arg $ scale)

(* --- viewchange --- *)

let viewchange_cmd =
  let run verbose f seed auth =
    setup_logs verbose;
    let cfg = Config.make ~auth_mode:auth ~vc_timeout_us:30_000.0 ~f () in
    let c =
      Cluster.create ~seed:(Int64.of_int seed)
        ~service:(fun () -> Bft_sm.Counter_service.create ())
        ~num_clients:1 cfg
    in
    for _ = 1 to 5 do
      ignore (Cluster.invoke_sync ~timeout_us:60_000_000.0 c ~client:0 "inc")
    done;
    let t_kill = Bft_sim.Engine.now (Cluster.engine c) in
    Bft_net.Network.crash (Cluster.network c) ~id:0;
    let r, _ = Cluster.invoke_sync_latency ~timeout_us:60_000_000.0 c ~client:0 "inc" in
    let t_done = Bft_sim.Engine.now (Cluster.engine c) in
    Printf.printf "primary killed; next op result=%s\n" r;
    Printf.printf "failover (kill -> next committed op): %.2f virtual ms\n"
      (Bft_sim.Engine.to_ms (Int64.sub t_done t_kill));
    Printf.printf "new view: %d\n" (Replica.view (Cluster.replica c 1))
  in
  Cmd.v (Cmd.info "viewchange" ~doc:"Kill the primary under load and measure failover.")
    Term.(const run $ verbose $ f_arg $ seed_arg $ auth_arg)

(* --- recover --- *)

let recover_cmd =
  let run verbose f seed =
    setup_logs verbose;
    let cfg = Config.make ~checkpoint_interval:8 ~f () in
    let c =
      Cluster.create ~seed:(Int64.of_int seed)
        ~service:(fun () -> Bft_sm.Kv_service.create ())
        ~num_clients:1 cfg
    in
    for i = 1 to 20 do
      ignore (Cluster.invoke_sync ~timeout_us:60_000_000.0 c ~client:0 (Printf.sprintf "put k%d v%d" i i))
    done;
    Replica.corrupt_state (Cluster.replica c 1);
    Replica.force_recovery (Cluster.replica c 1);
    let t0 = Bft_sim.Engine.now (Cluster.engine c) in
    let i = ref 20 in
    let recovered =
      Cluster.run_until ~timeout_us:60_000_000.0 c (fun () ->
          if not (Client.busy (Cluster.client c 0)) then begin
            incr i;
            Client.invoke (Cluster.client c 0)
              ~op:(Printf.sprintf "put k%d v%d" !i !i)
              (fun ~result:_ ~latency_us:_ -> ())
          end;
          not (Replica.is_recovering (Cluster.replica c 1)))
    in
    Printf.printf "recovered: %b in %.1f virtual ms (%d state transfers, %d bytes fetched)\n"
      recovered
      (Bft_sim.Engine.to_ms (Int64.sub (Bft_sim.Engine.now (Cluster.engine c)) t0))
      (Replica.counters (Cluster.replica c 1)).Replica.n_state_transfers
      (Replica.counters (Cluster.replica c 1)).Replica.bytes_fetched
  in
  Cmd.v (Cmd.info "recover" ~doc:"Corrupt a replica's state and run proactive recovery.")
    Term.(const run $ verbose $ f_arg $ seed_arg)

(* --- fuzz --- *)

let fuzz_cmd =
  let seeds_arg =
    Arg.(value & opt int 100 & info [ "seeds" ] ~doc:"Number of consecutive seeds to explore.")
  in
  let clients_arg = Arg.(value & opt int 2 & info [ "clients" ] ~doc:"Closed-loop clients.") in
  let ops_arg = Arg.(value & opt int 8 & info [ "ops" ] ~doc:"Operations per client.") in
  let horizon_arg =
    Arg.(
      value & opt float 60_000.0
      & info [ "horizon-us" ] ~doc:"Fault-injection window in virtual microseconds.")
  in
  let schedule_arg =
    Arg.(
      value & opt (some string) None
      & info [ "schedule" ] ~docv:"SCHED"
          ~doc:
            "Replay an explicit fault schedule (the encoding printed for failing runs) \
             instead of generating one from the seed.")
  in
  let no_vc_arg =
    Arg.(
      value & flag
      & info [ "expect-no-view-change" ]
          ~doc:
            "Debug oracle: treat any view change as a failure. View changes are expected \
             under fault injection — this deliberately plants failures to demonstrate \
             that shrinking reports a minimal replayable schedule.")
  in
  let drain_arg =
    Arg.(
      value & opt float 60_000_000.0
      & info [ "drain-us" ] ~doc:"Post-quiesce virtual time allowed for completion.")
  in
  let ckpt_arg =
    Arg.(value & opt int 8 & info [ "checkpoint-interval" ] ~doc:"Checkpoint every K seqnos.")
  in
  let vc_timeout_arg =
    Arg.(
      value & opt float 30_000.0
      & info [ "vc-timeout-us" ] ~doc:"Initial view-change timeout (doubles).")
  in
  let status_arg =
    Arg.(
      value & opt float 10_000.0
      & info [ "status-us" ] ~doc:"Replica status-retransmission interval.")
  in
  let liveness_arg =
    Arg.(
      value & flag
      & info [ "check-liveness" ]
          ~doc:
            "Fail runs that do not commit every issued operation (liveness oracles; used \
             when replaying explorer counterexamples).")
  in
  let view_bound_arg =
    Arg.(
      value & opt (some int) None
      & info [ "view-bound" ] ~docv:"V"
          ~doc:"Liveness: fail if the view passes V without the workload completing.")
  in
  let free_costs_arg =
    Arg.(
      value & flag
      & info [ "free-costs" ]
          ~doc:"Zero CPU costs and constant 1us wire delay (explorer replay conditions).")
  in
  let no_quiesce_arg =
    Arg.(
      value & flag
      & info [ "no-quiesce" ]
          ~doc:"Do not heal faults at the horizon; replica faults persist to the end.")
  in
  let inject_arg =
    Arg.(
      value & flag
      & info [ "inject-no-vc-timer" ]
          ~doc:
            "Injected bug: backups never arm the view-change timer (validates that the \
             liveness oracles catch a real stall).")
  in
  let profile_arg =
    Arg.(
      value & opt (some string) None
      & info [ "profile" ] ~docv:"NAME"
          ~doc:
            "Merge a named adversary profile (slow_primary, client_flood, mac_storm) into \
             every generated schedule. Replay lines carry the expanded events in the \
             schedule string, never the profile name.")
  in
  let quota_arg =
    Arg.(
      value & opt (some int) None
      & info [ "quota" ] ~docv:"N"
          ~doc:"Per-client in-flight admission quota at each replica (default 64).")
  in
  let retx_budget_arg =
    Arg.(
      value & opt (some int) None
      & info [ "retx-budget" ] ~docv:"B"
          ~doc:
            "Per-peer retransmission budget per status interval (with exponential refill \
             backoff); unset preserves the paper's unbounded retransmission.")
  in
  let perf_vc_arg =
    Arg.(
      value & flag
      & info [ "perf-vc" ]
          ~doc:
            "Enable the primary performance watchdog: backups view-change a primary whose \
             smoothed request latency degrades well beyond the observed baseline.")
  in
  let adaptive_batch_arg =
    Arg.(
      value & flag
      & info [ "adaptive-batch" ]
          ~doc:
            "Enable the queue-depth-tracking batch sizer at the primary (deterministic; \
             changes batch boundaries, so pinned digests do not apply).")
  in
  let cohort_k_arg =
    Arg.(
      value & opt (some int) None
      & info [ "cohort-k" ] ~docv:"K"
          ~doc:
            "Replace the per-client drivers with one K-client cohort (O(1) memory in K). \
             Requires --arrival; pairwise cohorts need K <= --clients.")
  in
  let arrival_arg =
    Arg.(
      value & opt (some string) None
      & info [ "arrival" ] ~docv:"SPEC"
          ~doc:
            "Cohort arrival process: closed:<think_us>:<ops_per_client>, \
             open:<rate_per_sec>:<total_ops>, or \
             bursty:<base>:<peak>:<period_us>:<total_ops>. Open/bursty need \
             --cohort-keys derived.")
  in
  let cohort_keys_arg =
    Arg.(
      value & opt string "pairwise"
      & info [ "cohort-keys" ] ~docv:"MODE"
          ~doc:
            "Cohort key mode: 'pairwise' drives real clients; 'derived' synthesizes \
             clients over group-derived MAC keys (supports millions of clients).")
  in
  let print_failure params (r : Bft_check.Runner.run_result) =
    Printf.printf "FAILED oracles:\n";
    List.iter (fun f -> Printf.printf "  %s\n" f) r.Bft_check.Runner.failures;
    Printf.printf "minimal schedule (%d events):\n" (List.length r.Bft_check.Runner.schedule);
    Format.printf "  @[<v>%a@]@." Bft_check.Schedule.pp r.Bft_check.Runner.schedule;
    Printf.printf "replay: %s\n" (Bft_check.Runner.replay_line params r.Bft_check.Runner.schedule);
    (* replay the shrunk schedule with tracing enabled and dump each node's
       recent protocol events — the counterexample's story, node by node *)
    let reg = Bft_obs.Obs.registry () in
    ignore (Bft_check.Runner.run_schedule ~obs:reg params r.Bft_check.Runner.schedule);
    Printf.printf "trace dump (last 25 events per node):\n";
    List.iter
      (fun (id, o) ->
        Printf.printf "  node %d (%s):\n" id
          (if id < (3 * params.Bft_check.Runner.f) + 1 then "replica" else "client");
        List.iter
          (fun e -> Printf.printf "    %s\n" (Bft_obs.Obs.entry_to_string e))
          (Bft_obs.Obs.events ~last:25 o))
      (Bft_obs.Obs.nodes reg)
  in
  let run verbose f seed seeds clients ops horizon_us schedule expect_no_view_change
      drain_us checkpoint_interval vc_timeout_us status_interval_us check_liveness
      view_bound free_costs no_quiesce inject_no_vc_timer profile client_quota
      retransmit_budget perf_watchdog adaptive_batch cohort_k arrival cohort_keys =
    setup_logs verbose;
    let bad msg =
      Printf.eprintf "%s\n" msg;
      exit 2
    in
    let cohort =
      match (cohort_k, arrival) with
      | None, None -> None
      | None, Some _ -> bad "--arrival requires --cohort-k"
      | Some _, None -> bad "--cohort-k requires --arrival"
      | Some k, Some a -> (
          match
            ( Bft_check.Cohort.parse_arrival a,
              Bft_check.Cohort.parse_keys cohort_keys )
          with
          | Error e, _ | _, Error e -> bad e
          | Ok arrival, Ok keys -> Some { Bft_check.Cohort.k; arrival; keys })
    in
    (match profile with
    | Some name when Option.is_none (Bft_check.Schedule.find_profile name) ->
        Printf.eprintf "unknown --profile %S (have: %s)\n" name
          (String.concat ", "
             (List.map
                (fun p -> p.Bft_check.Schedule.pr_name)
                Bft_check.Schedule.profiles));
        exit 2
    | _ -> ());
    let params =
      {
        (Bft_check.Runner.default_params ~seed ~f) with
        clients;
        ops_per_client = ops;
        horizon_us;
        expect_no_view_change;
        drain_us;
        checkpoint_interval;
        vc_timeout_us;
        status_interval_us;
        check_liveness;
        view_bound;
        free_costs;
        quiesce = not no_quiesce;
        suppress_vc_timer = inject_no_vc_timer;
        profile;
        client_quota;
        retransmit_budget;
        perf_watchdog;
        adaptive_batch;
        cohort;
      }
    in
    match schedule with
    | Some s -> (
        match Bft_check.Schedule.of_string s with
        | Error e ->
            Printf.eprintf "bad --schedule: %s\n" e;
            exit 2
        | Ok sched ->
            let r = Bft_check.Runner.run_schedule params sched in
            Printf.printf "seed %d: %d/%d ops, %d view change(s), max view %d\n" seed
              r.Bft_check.Runner.completed_ops r.Bft_check.Runner.total_ops
              r.Bft_check.Runner.view_changes r.Bft_check.Runner.max_view;
            List.iter
              (fun o ->
                Printf.printf "  %-25s %s\n" o.Bft_check.Oracle.name
                  (match o.Bft_check.Oracle.result with Ok () -> "ok" | Error e -> "FAIL: " ^ e))
              r.Bft_check.Runner.report;
            if Bft_check.Runner.failed r then begin
              let sched', r' = Bft_check.Runner.shrink params sched in
              ignore sched';
              print_failure params r';
              exit 1
            end)
    | None ->
        let progress ~seed (r : Bft_check.Runner.run_result) =
          if verbose then
            Printf.printf "seed %d: %d/%d ops, %d vc, %s  [%s]\n%!" seed r.completed_ops
              r.total_ops r.view_changes
              (if Bft_check.Runner.failed r then "FAIL" else "ok")
              (Bft_check.Schedule.to_string r.schedule)
          else if (seed - params.Bft_check.Runner.seed + 1) mod 25 = 0 then
            Printf.printf "... %d seeds\n%!" (seed - params.Bft_check.Runner.seed + 1)
        in
        let outcome = Bft_check.Runner.fuzz ~progress params ~seeds in
        Printf.printf
          "%d seeds: %d failing, %d completed ops, %d view changes explored, %d runs \
           timed out live\n"
          outcome.Bft_check.Runner.seeds_run
          (List.length outcome.Bft_check.Runner.failing)
          outcome.Bft_check.Runner.total_completed outcome.Bft_check.Runner.total_view_changes
          outcome.Bft_check.Runner.live_incomplete;
        List.iter
          (fun (seed, r) ->
            Printf.printf "--- seed %d ---\n" seed;
            print_failure { params with seed } r)
          outcome.Bft_check.Runner.failing;
        if outcome.Bft_check.Runner.failing <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Randomized Byzantine fault-schedule fuzzing with safety oracles and shrinking.")
    Term.(
      const run $ verbose $ f_arg $ seed_arg $ seeds_arg $ clients_arg $ ops_arg $ horizon_arg
      $ schedule_arg $ no_vc_arg $ drain_arg $ ckpt_arg $ vc_timeout_arg $ status_arg
      $ liveness_arg $ view_bound_arg $ free_costs_arg $ no_quiesce_arg $ inject_arg
      $ profile_arg $ quota_arg $ retx_budget_arg $ perf_vc_arg $ adaptive_batch_arg
      $ cohort_k_arg $ arrival_arg $ cohort_keys_arg)

(* --- explore --- *)

let explore_cmd =
  let clients_arg = Arg.(value & opt int 1 & info [ "clients" ] ~doc:"Closed-loop clients.") in
  let ops_arg = Arg.(value & opt int 1 & info [ "ops" ] ~doc:"Operations per client.") in
  let view_bound_arg =
    Arg.(
      value & opt int 2
      & info [ "view-bound" ] ~docv:"V"
          ~doc:"Liveness: flag executions whose view passes V without completing.")
  in
  let vc_timeout_arg =
    Arg.(
      value & opt float 30_000.0
      & info [ "vc-timeout-us" ] ~doc:"Initial view-change timeout (doubles).")
  in
  let ckpt_arg =
    Arg.(value & opt int 8 & info [ "checkpoint-interval" ] ~doc:"Checkpoint every K seqnos.")
  in
  let horizon_arg =
    Arg.(
      value & opt float 250_000.0
      & info [ "tick-horizon-us" ]
          ~doc:"Virtual-time bound on ticks; cuts infinite retransmission chains.")
  in
  let depth_arg =
    Arg.(value & opt int 60 & info [ "max-depth" ] ~doc:"Per-path choice bound.")
  in
  let states_arg =
    Arg.(value & opt int 50_000 & info [ "max-states" ] ~doc:"State-build budget.")
  in
  let wall_arg =
    Arg.(value & opt float 300.0 & info [ "max-wall-s" ] ~doc:"Wall-clock budget, seconds.")
  in
  let dfs_arg = Arg.(value & flag & info [ "dfs" ] ~doc:"Depth-first frontier (default BFS).") in
  let no_por_arg =
    Arg.(value & flag & info [ "no-por" ] ~doc:"Disable sleep-set partial-order reduction.")
  in
  let no_fifo_arg =
    Arg.(
      value & flag
      & info [ "no-fifo" ]
          ~doc:
            "Explore arbitrary per-link reordering instead of per-link FIFO delivery \
             (rarely exhaustible).")
  in
  let keep_going_arg =
    Arg.(
      value & flag
      & info [ "keep-going" ] ~doc:"Collect every violation instead of stopping at the first.")
  in
  let inject_arg =
    Arg.(
      value & flag
      & info [ "inject-no-vc-timer" ]
          ~doc:"Injected bug: backups never arm the view-change timer.")
  in
  let prefix_arg =
    Arg.(
      value & opt (some string) None
      & info [ "prefix" ] ~docv:"SCHED"
          ~doc:"Fault schedule injected before exploration (e.g. '0@mute:1').")
  in
  let stats_json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE" ~doc:"Write the statistics report as JSON.")
  in
  let run verbose f seed clients ops view_bound vc_timeout_us checkpoint_interval
      tick_horizon_us max_depth max_states max_wall_s dfs no_por no_fifo keep_going
      inject_no_vc_timer prefix stats_json =
    setup_logs verbose;
    let prefix =
      match prefix with
      | None -> []
      | Some s -> (
          match Bft_check.Schedule.of_string s with
          | Ok sched -> sched
          | Error e ->
              Printf.eprintf "bad --prefix: %s\n" e;
              exit 2)
    in
    let c =
      {
        (Bft_explore.Explore.default_config ~seed) with
        Bft_explore.Explore.f;
        clients;
        ops_per_client = ops;
        view_bound;
        vc_timeout_us;
        checkpoint_interval;
        tick_horizon_us;
        max_depth;
        max_states;
        max_wall_s;
        strategy = (if dfs then Bft_explore.Explore.Dfs else Bft_explore.Explore.Bfs);
        por = not no_por;
        fifo_links = not no_fifo;
        stop_on_violation = not keep_going;
        suppress_vc_timer = inject_no_vc_timer;
        prefix;
      }
    in
    let o = Bft_explore.Explore.run ~log:(fun m -> Printf.printf "%s\n%!" m) c in
    Format.printf "%a@." Bft_explore.Explore.pp_stats o.Bft_explore.Explore.o_stats;
    Printf.printf "exhausted: %b\n" o.Bft_explore.Explore.o_exhausted;
    (match stats_json with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (Bft_explore.Explore.stats_json o.Bft_explore.Explore.o_stats);
        output_char oc '\n';
        close_out oc);
    List.iter
      (fun (v : Bft_explore.Explore.violation) ->
        Printf.printf "VIOLATION (%s) at depth %d:\n"
          (match v.Bft_explore.Explore.v_kind with `Safety -> "safety" | `Liveness -> "liveness")
          v.Bft_explore.Explore.v_depth;
        List.iter (fun fl -> Printf.printf "  %s\n" fl) v.Bft_explore.Explore.v_failures;
        Printf.printf "schedule: %s\n" (Bft_check.Schedule.to_string v.Bft_explore.Explore.v_schedule);
        Printf.printf "replay: %s\n" v.Bft_explore.Explore.v_replay)
      o.Bft_explore.Explore.o_violations;
    if o.Bft_explore.Explore.o_violations <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Bounded exhaustive exploration of delivery/timer interleavings with safety and \
          liveness oracles (small configs; POR + state hashing).")
    Term.(
      const run $ verbose $ f_arg $ seed_arg $ clients_arg $ ops_arg $ view_bound_arg
      $ vc_timeout_arg $ ckpt_arg $ horizon_arg $ depth_arg $ states_arg $ wall_arg $ dfs_arg
      $ no_por_arg $ no_fifo_arg $ keep_going_arg $ inject_arg $ prefix_arg $ stats_json_arg)

(* --- trace / metrics --- *)

(* Shared by [trace] and [metrics]: run one fuzz-style scenario (seed-derived
   or explicit schedule) with per-node tracing attached. *)
let traced_run ~seed ~f ~clients ~ops ~horizon_us ~schedule =
  let params =
    {
      (Bft_check.Runner.default_params ~seed ~f) with
      clients;
      ops_per_client = ops;
      horizon_us;
    }
  in
  let sched =
    match schedule with
    | None -> Bft_check.Runner.generate params
    | Some s -> (
        match Bft_check.Schedule.of_string s with
        | Ok sched -> sched
        | Error e ->
            Printf.eprintf "bad --schedule: %s\n" e;
            exit 2)
  in
  let reg = Bft_obs.Obs.registry () in
  let r = Bft_check.Runner.run_schedule ~obs:reg params sched in
  (params, r, reg)

let sched_arg_of ~doc = Arg.(value & opt (some string) None & info [ "schedule" ] ~docv:"SCHED" ~doc)
let clients_trace_arg = Arg.(value & opt int 2 & info [ "clients" ] ~doc:"Closed-loop clients.")
let ops_trace_arg = Arg.(value & opt int 8 & info [ "ops" ] ~doc:"Operations per client.")

let horizon_trace_arg =
  Arg.(
    value & opt float 60_000.0
    & info [ "horizon-us" ] ~doc:"Fault-injection window in virtual microseconds.")

let trace_cmd =
  let last_arg =
    Arg.(value & opt int 40 & info [ "last" ] ~docv:"K" ~doc:"Events shown per node.")
  in
  let run verbose f seed clients ops horizon_us schedule last =
    setup_logs verbose;
    let params, r, reg = traced_run ~seed ~f ~clients ~ops ~horizon_us ~schedule in
    Printf.printf "seed %d: %d/%d ops, %d view change(s), max view %d, digest %s\n" seed
      r.Bft_check.Runner.completed_ops r.Bft_check.Runner.total_ops
      r.Bft_check.Runner.view_changes r.Bft_check.Runner.max_view
      (String.sub r.Bft_check.Runner.history_digest 0 12);
    List.iter
      (fun (id, o) ->
        Printf.printf "--- node %d (%s), %d events ---\n" id
          (if id < (3 * params.Bft_check.Runner.f) + 1 then "replica" else "client")
          (List.length (Bft_obs.Obs.events o));
        List.iter
          (fun e -> Printf.printf "  %s\n" (Bft_obs.Obs.entry_to_string e))
          (Bft_obs.Obs.events ~last o))
      (Bft_obs.Obs.nodes reg)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a fuzz scenario with tracing enabled and print per-node event traces.")
    Term.(
      const run $ verbose $ f_arg $ seed_arg $ clients_trace_arg $ ops_trace_arg
      $ horizon_trace_arg
      $ sched_arg_of ~doc:"Explicit fault schedule to replay instead of the seed-derived one."
      $ last_arg)

let metrics_cmd =
  let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Emit the metrics as JSON.") in
  let run verbose f seed clients ops horizon_us schedule json =
    setup_logs verbose;
    let params, r, reg = traced_run ~seed ~f ~clients ~ops ~horizon_us ~schedule in
    let sim = r.Bft_check.Runner.sim in
    let hwm_str sep fmt =
      String.concat sep
        (List.map (fun (i, d) -> Printf.sprintf fmt i d) sim.Bft_check.Runner.sc_backlog_hwm)
    in
    (* the verification pool's global counters for the run just traced
       (per-node submission counts live in each node's registry entry) *)
    let vst = Bft_crypto.Vpool.stats (Bft_crypto.Vpool.default ()) in
    if json then
      (* wrap the per-node registry with the system-level counters *)
      Printf.printf
        "{ \"sim\": { \"dropped\": %d, \"duplicated\": %d, \"events_fired\": %d, \
         \"max_heap\": %d, \"backlog_hwm\": { %s } },\n\
         \"vpool\": { \"domains\": %d, \"batches\": %d, \"parallel_batches\": %d, \
         \"items\": %d, \"helped\": %d, \"merge_hwm\": %d, \"worker_fraction\": %.3f },\n\
         \"nodes\": %s }\n"
        sim.Bft_check.Runner.sc_dropped sim.Bft_check.Runner.sc_duplicated
        sim.Bft_check.Runner.sc_events_fired sim.Bft_check.Runner.sc_max_heap
        (hwm_str ", " "\"node%d\": %d")
        vst.Bft_crypto.Vpool.st_domains vst.Bft_crypto.Vpool.st_batches
        vst.Bft_crypto.Vpool.st_parallel_batches vst.Bft_crypto.Vpool.st_items
        vst.Bft_crypto.Vpool.st_helped vst.Bft_crypto.Vpool.st_merge_hwm
        (Bft_crypto.Vpool.worker_fraction vst)
        (Bft_obs.Obs.registry_to_json reg)
    else begin
      Printf.printf "seed %d: %d/%d ops, %d view change(s), max view %d\n" seed
        r.Bft_check.Runner.completed_ops r.Bft_check.Runner.total_ops
        r.Bft_check.Runner.view_changes r.Bft_check.Runner.max_view;
      Printf.printf
        "network: dropped=%d duplicated=%d; engine: events=%d max_heap=%d\n\
         cpu backlog high-water marks: %s\n"
        sim.Bft_check.Runner.sc_dropped sim.Bft_check.Runner.sc_duplicated
        sim.Bft_check.Runner.sc_events_fired sim.Bft_check.Runner.sc_max_heap
        (hwm_str " " "%d:%d");
      Printf.printf
        "vpool: domains=%d batches=%d (parallel %d) items=%d helped=%d merge_hwm=%d \
         worker_share=%.0f%%\n"
        vst.Bft_crypto.Vpool.st_domains vst.Bft_crypto.Vpool.st_batches
        vst.Bft_crypto.Vpool.st_parallel_batches vst.Bft_crypto.Vpool.st_items
        vst.Bft_crypto.Vpool.st_helped vst.Bft_crypto.Vpool.st_merge_hwm
        (Bft_crypto.Vpool.worker_fraction vst *. 100.0);
      List.iter
        (fun (id, o) ->
          Printf.printf "node %d (%s):\n" id
            (if id < (3 * params.Bft_check.Runner.f) + 1 then "replica" else "client");
          List.iter print_endline (Bft_obs.Obs.summary_lines o))
        (Bft_obs.Obs.nodes reg)
    end
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run a fuzz scenario with tracing enabled and print per-node latency histograms \
          and counters.")
    Term.(
      const run $ verbose $ f_arg $ seed_arg $ clients_trace_arg $ ops_trace_arg
      $ horizon_trace_arg
      $ sched_arg_of ~doc:"Explicit fault schedule to replay instead of the seed-derived one."
      $ json_arg)

(* --- model --- *)

let model_cmd =
  let run f auth =
    let cfg = Config.make ~auth_mode:auth ~f () in
    let costs = Bft_net.Costs.default in
    Printf.printf "%-12s %-6s %12s %14s %s\n" "op (arg/res)" "ro" "latency(us)" "tput(ops/s)" "bottleneck";
    List.iter
      (fun (a, r, ro, batch) ->
        let w = { Bft_perf.Perf_model.arg_size = a; result_size = r; read_only = ro; batch } in
        let p = Bft_perf.Perf_model.predict ~costs ~cfg w in
        Printf.printf "%5d/%-6d %-6b %12.1f %14.0f %s\n" a r ro
          p.Bft_perf.Perf_model.latency_us p.Bft_perf.Perf_model.throughput_ops
          p.Bft_perf.Perf_model.bottleneck)
      [ (0, 0, false, 16); (0, 4096, false, 16); (4096, 0, false, 16); (0, 0, true, 1) ]
  in
  Cmd.v (Cmd.info "model" ~doc:"Print analytic performance-model predictions (Chapter 7).")
    Term.(const run $ f_arg $ auth_arg)

let () =
  (* BFT_DOMAINS sizes the default verification pool (entry-point-only env
     access; lib/ is lint-banned from getenv). Parallelism is wall-clock
     only, so every subcommand's output is identical at any setting. *)
  (match (Sys.getenv_opt [@lint.allow "determinism-getenv"]) "BFT_DOMAINS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> Bft_crypto.Vpool.set_default_domains n
      | _ -> ())
  | None -> ());
  let info = Cmd.info "bftctl" ~version:"1.0" ~doc:"Practical Byzantine Fault Tolerance simulator." in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            latency_cmd;
            andrew_cmd;
            viewchange_cmd;
            recover_cmd;
            model_cmd;
            fuzz_cmd;
            explore_cmd;
            trace_cmd;
            metrics_cmd;
          ]))

(* Wall-clock benchmark baseline: measures real seconds (not virtual time)
   across the hot paths that gate how many fuzz seeds and experiment points
   a CI run can afford. Emits BENCH_wallclock.json.

   Usage: dune exec bench/wallclock.exe -- [--smoke|--full] [--out PATH]
            [--check BASELINE.json] [--digests] [--metrics-out PATH]

   --check fails (exit 1) if fuzz seeds/sec regressed more than 2x below
   the baseline JSON, the CI regression gate. --digests prints the pinned
   fuzz-seed committed-history digests used by the determinism tests.
   --metrics-out writes the traced run's full per-node metrics registry
   as JSON (the per-phase breakdown below is its replica-merged view). *)

module Engine = Bft_sim.Engine
module Runner = Bft_check.Runner
module Schedule = Bft_check.Schedule
module Sha256 = Bft_crypto.Sha256
module Obs = Bft_obs.Obs
module Hist = Bft_obs.Hist
open Bft_core

(* bench/ measures real elapsed time by definition; the determinism fence
   (no wall clock, no env, no bare domains) applies to lib/ only. *)
let wall () = Unix.gettimeofday () [@@lint.allow "determinism-unix"]

type metric = { label : string; units : float; seconds : float }

let rate m = m.units /. m.seconds

(* ------------------------------------------------------------------ *)
(* encode + digest throughput                                          *)
(* ------------------------------------------------------------------ *)

let sample_messages () =
  let req i =
    {
      Message.op = Printf.sprintf "put key%04d %s" i (String.make 64 'v');
      timestamp = Int64.of_int (1000 + i);
      client = 4 + (i mod 3);
      read_only = false;
      replier = i mod 4;
    }
  in
  let batch =
    List.init 8 (fun i -> Message.Inline (req i, Message.Auth_none))
  in
  [
    Message.Request (req 0);
    Message.Pre_prepare { pp_view = 1; pp_seq = 42; pp_batch = batch; pp_nondet = "1234" };
    Message.Prepare { pr_view = 1; pr_seq = 42; pr_digest = String.make 32 'd'; pr_replica = 2 };
    Message.Commit { cm_view = 1; cm_seq = 42; cm_digest = String.make 32 'd'; cm_replica = 2 };
    Message.Reply
      {
        rp_view = 1;
        rp_timestamp = 77L;
        rp_client = 5;
        rp_replica = 1;
        rp_tentative = false;
        rp_result = Message.Full (String.make 128 'r');
      };
  ]

let bench_encode_digest ~iters =
  let msgs = Array.of_list (sample_messages ()) in
  let bytes = ref 0 in
  let t0 = wall () in
  for i = 1 to iters do
    let m = msgs.(i mod Array.length msgs) in
    let s = Wire.encode m in
    let d = Sha256.digest s in
    bytes := !bytes + String.length s + String.length d
  done;
  let dt = wall () -. t0 in
  { label = "encode_digest"; units = float_of_int !bytes /. 1.0e6; seconds = dt }

(* Message-lifetime pipeline throughput. In the protocol a message's wire
   bytes are needed several times per lifetime -- sender authentication,
   envelope sizing, and verification at each of the 3f other replicas -- and
   its digest a couple more. Pre-PR each access re-serialized (Wire.size
   was [String.length (encode m)] and every receiver's verify re-encoded
   the body); the encode-once pipeline pays a single encode + digest per
   lifetime and serves the rest from the envelope cache. [~cached:false]
   measures the pre-PR access pattern with the same primitives, so the
   cached/uncached ratio isolates the pipeline change (and understates it,
   since the primitives themselves also got faster). *)

let bytes_accesses_per_lifetime = 5 (* auth + size + 3 receiver verifies *)
let digest_accesses_per_lifetime = 2 (* e.g. request digest at pre-prepare + prepare *)

let bench_pipeline ~iters ~cached =
  let msgs = Array.of_list (sample_messages ()) in
  let bytes = ref 0 in
  let t0 = wall () in
  for i = 1 to iters do
    let m = msgs.(i mod Array.length msgs) in
    if cached then begin
      let env = Message.envelope ~sender:0 ~auth:Message.Auth_none m in
      for _ = 1 to bytes_accesses_per_lifetime do
        ignore (Wire.envelope_bytes env)
      done;
      for _ = 1 to digest_accesses_per_lifetime do
        ignore (Wire.envelope_digest env)
      done;
      bytes := !bytes + String.length (Wire.envelope_bytes env)
    end
    else begin
      let last = ref "" in
      for _ = 1 to bytes_accesses_per_lifetime do
        last := Wire.encode m
      done;
      for _ = 1 to digest_accesses_per_lifetime do
        ignore (Sha256.digest !last)
      done;
      bytes := !bytes + String.length !last
    end
  done;
  let dt = wall () -. t0 in
  {
    label = (if cached then "pipeline_cached" else "pipeline_uncached");
    units = float_of_int !bytes /. 1.0e6;
    seconds = dt;
  }

(* ------------------------------------------------------------------ *)
(* simulator event throughput                                          *)
(* ------------------------------------------------------------------ *)

let bench_sim_events ~events =
  let e = Engine.create ~seed:7L () in
  let fired = ref 0 in
  let chains = 64 in
  let per_chain = events / chains in
  let rec tick remaining () =
    incr fired;
    (* exercise lazy cancellation: schedule a decoy and cancel half of them *)
    let decoy = Engine.schedule e ~delay:(Engine.us 9) (fun () -> incr fired) in
    if !fired land 1 = 0 then Engine.cancel decoy;
    if remaining > 0 then ignore (Engine.schedule e ~delay:(Engine.us 3) (tick (remaining - 1)))
  in
  for c = 1 to chains do
    ignore (Engine.schedule e ~delay:(Engine.us c) (tick per_chain))
  done;
  let t0 = wall () in
  Engine.run e;
  let dt = wall () -. t0 in
  { label = "sim_events"; units = float_of_int !fired; seconds = dt }

(* ------------------------------------------------------------------ *)
(* fuzz seed throughput                                                *)
(* ------------------------------------------------------------------ *)

let bench_fuzz ~seeds =
  let params = Runner.default_params ~seed:1 ~f:1 in
  let t0 = wall () in
  let outcome = Runner.fuzz params ~seeds in
  let dt = wall () -. t0 in
  if outcome.Runner.failing <> [] then begin
    List.iter
      (fun (seed, r) ->
        Printf.eprintf "wallclock: fuzz seed %d FAILED: %s\n%!" seed
          (String.concat "; " r.Runner.failures))
      outcome.Runner.failing;
    exit 2
  end;
  { label = "fuzz"; units = float_of_int seeds; seconds = dt }

(* ------------------------------------------------------------------ *)
(* end-to-end protocol requests/sec (wall) at f = 1..3                 *)
(* ------------------------------------------------------------------ *)

let bench_e2e ~f ~requests =
  let cfg = Config.make ~f () in
  let cluster =
    Cluster.create ~seed:11L ~service:(fun () -> Bft_sm.Null_service.create ()) cfg
  in
  (* warm-up request to finish any start-of-run work *)
  ignore (Cluster.invoke_sync cluster ~client:0 "warm");
  let t0 = wall () in
  for i = 1 to requests do
    ignore (Cluster.invoke_sync cluster ~client:0 (Printf.sprintf "op%d" i))
  done;
  let dt = wall () -. t0 in
  { label = Printf.sprintf "e2e_f%d" f; units = float_of_int requests; seconds = dt }

(* ------------------------------------------------------------------ *)
(* checkpoint cost: incremental paged digests vs flat rebuild          *)
(* ------------------------------------------------------------------ *)

(* Sweeps state size x write locality over two kv services fed identical
   operations: a flat one whose checkpoints take the pre-PR path (snapshot
   string -> [Partition_tree.build ~prev]; the sorted-line format shifts on
   any write, defeating page reuse) and a paged one whose arena image is
   page-stable and checkpointed with [Partition_tree.update] over the
   drained dirty set, digesting O(modified pages). Each iteration also
   times a CoW [build_pages ~prev] over the same arena pages -- the
   paged-image-without-dirty-tracking middle ground -- and cross-checks
   that its root digest matches the incremental tree's. *)

type ckpt_row = {
  ck_state_bytes : int;
  ck_pages : int;
  ck_dirty_frac : float;
  ck_dirty_pages : float; (* avg pages re-digested per checkpoint *)
  ck_flat_us : float; (* per checkpoint: flat snapshot + build ~prev *)
  ck_rebuild_us : float; (* per checkpoint: CoW build_pages over arena *)
  ck_incr_us : float; (* per checkpoint: pages + drain + update *)
  ck_flat_mb : float; (* MB digested per checkpoint, flat path *)
  ck_incr_mb : float; (* MB digested per checkpoint, incremental path *)
}

let ck_speedup r = r.ck_flat_us /. r.ck_incr_us

let bench_checkpoint ~sizes ~fracs ~iters =
  let page_size = 4096 and branching = 16 in
  let vlen = 1024 in
  List.concat_map
    (fun total ->
      let n_keys = max 4 (total / (vlen + 16)) in
      List.map
        (fun frac ->
          let flat_svc = Bft_sm.Kv_service.create () in
          let paged_svc = Bft_sm.Kv_service.create ~paged:page_size () in
          let put i c =
            let op = Printf.sprintf "put key%06d %s" i (String.make vlen c) in
            ignore (flat_svc.Bft_sm.Service.execute ~client:0 ~op ~nondet:"");
            ignore (paged_svc.Bft_sm.Service.execute ~client:0 ~op ~nondet:"")
          in
          for i = 0 to n_keys - 1 do put i 'a' done;
          let pg =
            match paged_svc.Bft_sm.Service.paged with
            | Some p -> p
            | None -> assert false
          in
          let pages0 = pg.Bft_sm.Service.pg_pages () in
          ignore (pg.Bft_sm.Service.pg_drain_dirty ());
          let incr_prev =
            ref (Partition_tree.build_pages ~seq:0 ~page_size ~branching pages0)
          in
          let flat_prev =
            ref
              (Partition_tree.build ~seq:0 ~page_size ~branching
                 (flat_svc.Bft_sm.Service.snapshot ()))
          in
          let dirty_keys = max 1 (int_of_float (frac *. float_of_int n_keys)) in
          let flat_t = ref 0.0 and rebuild_t = ref 0.0 and incr_t = ref 0.0 in
          let flat_b = ref 0 and incr_b = ref 0 and dirty_n = ref 0 in
          for it = 1 to iters do
            (* contiguous write locality: a rotating window of dirty keys *)
            let base = it * dirty_keys mod n_keys in
            let c = Char.chr (Char.code 'b' + (it mod 24)) in
            for k = 0 to dirty_keys - 1 do
              put ((base + k) mod n_keys) c
            done;
            (* don't bill the put loop's garbage to the first timed window *)
            Gc.major ();
            (* incremental: drain the dirty set, re-digest only those pages *)
            let prev_tree = !incr_prev in
            let t0 = wall () in
            let pages = pg.Bft_sm.Service.pg_pages () in
            let dirty = pg.Bft_sm.Service.pg_drain_dirty () in
            let tree = Partition_tree.update prev_tree ~seq:it ~pages ~dirty in
            incr_t := !incr_t +. (wall () -. t0);
            incr_b := !incr_b + Partition_tree.digested_bytes tree;
            dirty_n := !dirty_n + List.length dirty;
            incr_prev := tree;
            (* middle ground: CoW rebuild over the same page-stable image *)
            let t0 = wall () in
            let rtree =
              Partition_tree.build_pages ~prev:prev_tree ~seq:it ~page_size
                ~branching pages
            in
            rebuild_t := !rebuild_t +. (wall () -. t0);
            (* pre-PR path: flat snapshot string, CoW defeated by shifting *)
            let t0 = wall () in
            let ftree =
              Partition_tree.build ~prev:!flat_prev ~seq:it ~page_size ~branching
                (flat_svc.Bft_sm.Service.snapshot ())
            in
            flat_t := !flat_t +. (wall () -. t0);
            flat_b := !flat_b + Partition_tree.digested_bytes ftree;
            flat_prev := ftree;
            if Partition_tree.root_digest tree <> Partition_tree.root_digest rtree
            then begin
              Printf.eprintf
                "wallclock: checkpoint digest mismatch (size=%d frac=%.2f it=%d)\n"
                total frac it;
              exit 2
            end
          done;
          let per x = x /. float_of_int iters in
          {
            ck_state_bytes = total;
            ck_pages = Partition_tree.num_pages !incr_prev;
            ck_dirty_frac = frac;
            ck_dirty_pages = per (float_of_int !dirty_n);
            ck_flat_us = per (!flat_t *. 1.0e6);
            ck_rebuild_us = per (!rebuild_t *. 1.0e6);
            ck_incr_us = per (!incr_t *. 1.0e6);
            ck_flat_mb = per (float_of_int !flat_b /. 1.0e6);
            ck_incr_mb = per (float_of_int !incr_b /. 1.0e6);
          })
        fracs)
    sizes

let print_checkpoint rows =
  print_endline
    "checkpoint cost per interval (flat rebuild vs paged CoW vs incremental):";
  List.iter
    (fun r ->
      Printf.printf
        "  %6.2fMB %5d pages %4.0f%% dirty: flat %9.1fus (%6.3fMB) cow %9.1fus \
         incr %9.1fus (%6.3fMB, %6.1f pages) speedup %6.2fx\n"
        (float_of_int r.ck_state_bytes /. 1.0e6)
        r.ck_pages
        (r.ck_dirty_frac *. 100.0)
        r.ck_flat_us r.ck_flat_mb r.ck_rebuild_us r.ck_incr_us r.ck_incr_mb
        r.ck_dirty_pages (ck_speedup r))
    rows

(* ------------------------------------------------------------------ *)
(* parallel MAC/digest verification throughput across the pool         *)
(* ------------------------------------------------------------------ *)

(* One receiver, four keyed senders, 64-item flushes of 16 KB messages
   (MACs with an Item_digest mixed in every 8th slot) pushed through
   [Auth.verify_batch] at each domain count. The messages are long enough
   that per-item pool overhead amortizes away, so the single-domain row
   approximates raw HMAC-SHA256 throughput and the multi-domain rows
   isolate the pool's scaling. Every verdict must come back true — the
   MACs are genuine — which doubles as an end-to-end merge check. *)

type pv_row = {
  pv_domains : int;
  pv_mb : float;
  pv_seconds : float;
  pv_worker_frac : float; (* share of items executed by spawned workers *)
}

let pv_rate r = r.pv_mb /. r.pv_seconds

let bench_parallel_verify ~domains_list ~iters =
  let receiver = Bft_crypto.Keychain.create ~my_id:0 in
  let rng = Bft_util.Rng.create 0x5eedL in
  let senders =
    List.map
      (fun peer ->
        let kc = Bft_crypto.Keychain.create ~my_id:peer in
        let key = Bft_crypto.Keychain.fresh_in_key receiver rng ~peer in
        ignore (Bft_crypto.Keychain.install_out_key kc ~peer:0 key);
        (peer, kc))
      [ 1; 2; 3; 4 ]
  in
  let msg_len = 16_384 and batch_size = 64 in
  let items =
    Array.init batch_size (fun i ->
        let peer, kc = List.nth senders (i mod List.length senders) in
        let msg = String.init msg_len (fun j -> Char.chr (((i * 131) + (j * 7)) land 0xff)) in
        if i mod 8 = 7 then Bft_crypto.Auth.Item_digest { expect = Sha256.digest msg; msg }
        else
          let mac = Option.get (Bft_crypto.Auth.compute_mac kc ~peer:0 msg) in
          Bft_crypto.Auth.Item_mac { peer; mac; msg })
  in
  let mb_per_iter = float_of_int (batch_size * msg_len) /. 1.0e6 in
  List.map
    (fun d ->
      let pool = Bft_crypto.Vpool.create ~domains:d in
      (* warm-up flush: domain spawns and first-touch misses off the clock *)
      ignore (Bft_crypto.Auth.verify_batch ~pool receiver items);
      Bft_crypto.Vpool.reset_stats pool;
      let t0 = wall () in
      for _ = 1 to iters do
        Array.iteri
          (fun i ok ->
            if not ok then begin
              Printf.eprintf "wallclock: parallel_verify rejected genuine item %d\n" i;
              exit 2
            end)
          (Bft_crypto.Auth.verify_batch ~pool receiver items)
      done;
      let dt = wall () -. t0 in
      let st = Bft_crypto.Vpool.stats pool in
      Bft_crypto.Vpool.shutdown pool;
      {
        pv_domains = d;
        pv_mb = float_of_int iters *. mb_per_iter;
        pv_seconds = dt;
        pv_worker_frac = Bft_crypto.Vpool.worker_fraction st;
      })
    domains_list

let print_parallel_verify ~cores rows =
  Printf.printf "parallel MAC/digest verification (pool, %d core(s) available):\n" cores;
  let base = match rows with r :: _ -> pv_rate r | [] -> 0.0 in
  let costs = Bft_net.Costs.default in
  let model d =
    (* the analytic model's prediction for a 64-item flush, for contrast
       with the measured scaling (it assumes d independent cores) *)
    Bft_net.Costs.verify_batch_us costs ~domains:1 64
    /. Bft_net.Costs.verify_batch_us costs ~domains:d 64
  in
  List.iter
    (fun r ->
      Printf.printf
        "  domains=%d: %7.2f MB/s (%.2fx vs 1 domain, model %.2fx, worker share %.0f%%)\n"
        r.pv_domains (pv_rate r)
        (pv_rate r /. base)
        (model r.pv_domains)
        (r.pv_worker_frac *. 100.0))
    rows

(* ------------------------------------------------------------------ *)
(* per-phase virtual-time latency breakdown                            *)
(* ------------------------------------------------------------------ *)

(* The timing benches above run untraced (tracing disabled is the hot-path
   configuration). This separate run attaches an [Obs] registry to a
   fuzz-style f = 1 scenario and merges the phase histograms across the
   four replicas (end-to-end across the clients), giving the virtual-time
   cost of each protocol stage rather than wall seconds. *)
let bench_phases () =
  let params = Runner.default_params ~seed:1 ~f:1 in
  let reg = Obs.registry () in
  ignore (Runner.run_schedule ~obs:reg params (Runner.generate params));
  let n = (3 * params.Runner.f) + 1 in
  let merged = Array.init 5 (fun _ -> Hist.create ()) in
  let e2e = Hist.create () in
  List.iter
    (fun (id, o) ->
      if id < n then
        Array.iteri (fun i h -> Hist.merge_into h (Obs.phase_hist o i)) merged
      else Hist.merge_into e2e (Obs.e2e_hist o))
    (Obs.nodes reg);
  (reg, merged, e2e)

let phase_rows merged e2e =
  Array.to_list (Array.mapi (fun i h -> (Obs.phase_name i, h)) merged)
  @ [ ("request->reply", e2e) ]

let print_phases merged e2e =
  print_endline "per-phase virtual-time latency (replicas merged; e2e from clients):";
  List.iter
    (fun (name, h) ->
      Printf.printf "  %-20s count=%-6d mean=%9.1fus p50=%9.1fus p99=%9.1fus max=%9.1fus\n"
        name (Hist.count h) (Hist.mean_us h)
        (Hist.percentile_us h 0.50)
        (Hist.percentile_us h 0.99)
        (Hist.max_us h))
    (phase_rows merged e2e)

(* ------------------------------------------------------------------ *)
(* throughput under attack (virtual time)                              *)
(* ------------------------------------------------------------------ *)

(* Unlike the wall-clock rows above, the attack scenarios measure
   committed operations per *virtual* second: the attacked-vs-clean
   ratio is a pure function of (params, schedule), so the
   bounded-degradation gate below cannot flake on a loaded CI runner.
   Each run enables the defenses that ship with the profiles (per-peer
   retransmission budget, primary performance watchdog; the per-client
   admission quota is always on) and injects exactly one profile's
   events — no random fault schedule on top — so a row isolates that
   attack's residual cost after the fixes. *)

type attack_row = {
  at_name : string;
  at_completed : int;
  at_total : int;
  at_vsecs : float; (* virtual seconds until the workload completed *)
  at_ops_per_vsec : float;
  at_view_changes : int;
}

let attack_run profile =
  let params =
    {
      (Runner.default_params ~seed:3 ~f:1) with
      Runner.ops_per_client = 25;
      client_quota = Some 8;
      retransmit_budget = Some 8;
      perf_watchdog = true;
    }
  in
  let sched =
    match profile with
    | None -> []
    | Some name -> (
        match Schedule.find_profile name with
        | Some p ->
            p.Schedule.pr_events ~f:params.Runner.f
              ~n:((3 * params.Runner.f) + 1)
              ~horizon_us:params.Runner.horizon_us
        | None ->
            Printf.eprintf "wallclock: unknown attack profile %s\n" name;
            exit 64)
  in
  let lv = Runner.prepare params sched in
  ignore
    (Cluster.run_until
       ~timeout_us:(params.Runner.horizon_us +. params.Runner.drain_us)
       lv.Runner.lv_cluster
       (fun () -> !(lv.Runner.lv_n_completed) >= lv.Runner.lv_total_ops));
  let r = Runner.finish lv in
  let name = Option.value profile ~default:"clean" in
  if r.Runner.failures <> [] then begin
    Printf.eprintf "wallclock: attack %s violated safety: %s\n" name
      (String.concat "; " r.Runner.failures);
    exit 2
  end;
  let vsecs =
    Engine.to_us (Engine.now (Cluster.engine lv.Runner.lv_cluster)) /. 1.0e6
  in
  {
    at_name = name;
    at_completed = r.Runner.completed_ops;
    at_total = r.Runner.total_ops;
    at_vsecs = vsecs;
    at_ops_per_vsec = float_of_int r.Runner.completed_ops /. vsecs;
    at_view_changes = r.Runner.view_changes;
  }

let bench_attacks () =
  let clean = attack_run None in
  let rows =
    List.map (fun p -> attack_run (Some p.Schedule.pr_name)) Schedule.profiles
  in
  (clean, rows)

let attack_ratio clean r = r.at_ops_per_vsec /. clean.at_ops_per_vsec

let print_attacks clean rows =
  print_endline
    "throughput under attack (virtual time; quota + retx budget + perf watchdog on):";
  let line r =
    Printf.printf
      "  %-13s %3d/%-3d ops in %8.1f vms  %8.1f ops/vsec  (%.2fx clean)  vc=%d\n"
      r.at_name r.at_completed r.at_total (r.at_vsecs *. 1000.0)
      r.at_ops_per_vsec (attack_ratio clean r) r.at_view_changes
  in
  line clean;
  List.iter line rows

(* ------------------------------------------------------------------ *)
(* million-client workload: latency vs offered load (virtual time)     *)
(* ------------------------------------------------------------------ *)

(* Open-loop Poisson arrivals over a derived-key cohort of 10^6
   synthesized clients, swept across offered rates until committed
   throughput stops following the offered rate — the saturation knee.
   Virtual-time quantities: the curve is a pure function of (params,
   rates), so the peak committed-ops/vsec gate cannot flake on a loaded
   runner. Arrivals round-robin over the cohort, so with total_ops <<
   clients every synthesized client issues at most one request and the
   whole workload must complete. Adaptive batching is on — this is the
   scenario it exists for (deep queues at overload want big batches;
   light load wants small ones). *)

type wl_row = {
  wl_offered : float; (* offered arrivals per virtual second *)
  wl_ops : int;
  wl_vsecs : float;
  wl_committed : float; (* committed ops per virtual second *)
  wl_mean_us : float;
  wl_p50_us : float;
  wl_p99_us : float;
}

let workload_clients = 1_000_000

let workload_run ~rate ~total_ops =
  let params =
    {
      (Runner.default_params ~seed:2 ~f:1) with
      Runner.adaptive_batch = true;
      cohort =
        Some
          {
            Bft_check.Cohort.k = workload_clients;
            arrival = Open { rate_per_sec = rate; total_ops };
            keys = Derived;
          };
    }
  in
  let lv = Runner.prepare params [] in
  ignore
    (Cluster.run_until
       ~timeout_us:(params.Runner.horizon_us +. params.Runner.drain_us)
       lv.Runner.lv_cluster
       (fun () -> !(lv.Runner.lv_n_completed) >= lv.Runner.lv_total_ops));
  let r = Runner.finish lv in
  if r.Runner.failures <> [] then begin
    Printf.eprintf "wallclock: workload rate %.0f violated safety: %s\n" rate
      (String.concat "; " r.Runner.failures);
    exit 2
  end;
  if r.Runner.completed_ops < r.Runner.total_ops then begin
    Printf.eprintf "wallclock: workload rate %.0f: only %d/%d ops completed\n" rate
      r.Runner.completed_ops r.Runner.total_ops;
    exit 2
  end;
  let vsecs =
    Engine.to_us (Engine.now (Cluster.engine lv.Runner.lv_cluster)) /. 1.0e6
  in
  let h = Bft_check.Cohort.latency_hist lv.Runner.lv_cohort in
  {
    wl_offered = rate;
    wl_ops = r.Runner.completed_ops;
    wl_vsecs = vsecs;
    wl_committed = float_of_int r.Runner.completed_ops /. vsecs;
    wl_mean_us = Hist.mean_us h;
    wl_p50_us = Hist.percentile_us h 0.50;
    wl_p99_us = Hist.percentile_us h 0.99;
  }

let bench_workload ~smoke =
  let rates =
    if smoke then [ 2_000.0; 5_000.0; 10_000.0; 20_000.0; 50_000.0 ]
    else [ 1_000.0; 2_000.0; 5_000.0; 10_000.0; 20_000.0; 50_000.0; 100_000.0 ]
  in
  let total_ops = if smoke then 250 else 1_000 in
  List.map (fun rate -> workload_run ~rate ~total_ops) rates

let wl_peak rows = List.fold_left (fun a r -> Float.max a r.wl_committed) 0.0 rows

let print_workload rows =
  Printf.printf
    "latency vs offered load (%d-client derived cohort, open-loop Poisson, adaptive \
     batching):\n"
    workload_clients;
  List.iter
    (fun r ->
      Printf.printf
        "  offered %8.0f/vs: committed %8.1f/vs in %7.1f vms  mean %8.1fus p50 %8.1fus \
         p99 %8.1fus\n"
        r.wl_offered r.wl_committed (r.wl_vsecs *. 1000.0) r.wl_mean_us r.wl_p50_us
        r.wl_p99_us)
    rows;
  Printf.printf "  peak committed throughput: %.1f ops/vsec\n" (wl_peak rows)

let workload_json rows =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "  \"workload\": { \"simulated_clients\": %d, \"peak_ops_per_vsec\": %.1f, \
        \"curve\": [\n"
       workload_clients (wl_peak rows));
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"offered_per_vsec\": %.0f, \"ops\": %d, \"virtual_seconds\": %.4f, \
            \"committed_per_vsec\": %.1f, \"mean_us\": %.1f, \"p50_us\": %.1f, \
            \"p99_us\": %.1f }%s\n"
           r.wl_offered r.wl_ops r.wl_vsecs r.wl_committed r.wl_mean_us r.wl_p50_us
           r.wl_p99_us
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ] }";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* pinned-seed determinism digests                                     *)
(* ------------------------------------------------------------------ *)

let pinned_seeds = [ 1; 2; 3; 46 ]

let print_digests () =
  List.iter
    (fun seed ->
      let r = Runner.run_seed (Runner.default_params ~seed ~f:1) in
      Printf.printf "seed %d history %s\n%!" seed r.Runner.history_digest)
    pinned_seeds

(* ------------------------------------------------------------------ *)
(* JSON output and the regression gate                                 *)
(* ------------------------------------------------------------------ *)

let emit_json ~mode ~cores ~fuzz ~sim ~enc ~pipe_cached ~pipe_uncached ~pv ~e2e ~phases
    ~ckpt ~atk_clean ~atk_rows ~wl path =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"mode\": %S,\n" mode);
  Buffer.add_string b (Printf.sprintf "  \"cores\": %d,\n" cores);
  Buffer.add_string b
    (Printf.sprintf
       "  \"fuzz\": { \"seeds\": %.0f, \"seconds\": %.3f, \"seeds_per_sec\": %.3f },\n"
       fuzz.units fuzz.seconds (rate fuzz));
  Buffer.add_string b
    (Printf.sprintf
       "  \"sim\": { \"events\": %.0f, \"seconds\": %.3f, \"events_per_sec\": %.0f },\n"
       sim.units sim.seconds (rate sim));
  Buffer.add_string b
    (Printf.sprintf
       "  \"encode_digest\": { \"megabytes\": %.2f, \"seconds\": %.3f, \"mb_per_sec\": \
        %.2f },\n"
       enc.units enc.seconds (rate enc));
  Buffer.add_string b
    (Printf.sprintf
       "  \"pipeline\": { \"megabytes\": %.2f, \"cached_mb_per_sec\": %.2f, \
        \"uncached_mb_per_sec\": %.2f, \"speedup\": %.2f },\n"
       pipe_cached.units (rate pipe_cached) (rate pipe_uncached)
       (rate pipe_cached /. rate pipe_uncached));
  let pv_base = match pv with r :: _ -> pv_rate r | [] -> 0.0 in
  Buffer.add_string b "  \"parallel_verify\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"domains\": %d, \"megabytes\": %.2f, \"seconds\": %.3f, \
            \"mb_per_sec\": %.2f, \"speedup_vs_1\": %.2f, \"worker_fraction\": %.3f }%s\n"
           r.pv_domains r.pv_mb r.pv_seconds (pv_rate r)
           (pv_rate r /. pv_base)
           r.pv_worker_frac
           (if i = List.length pv - 1 then "" else ",")))
    pv;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"phases\": {\n";
  List.iteri
    (fun i (name, h) ->
      Buffer.add_string b
        (Printf.sprintf
           "    %S: { \"count\": %d, \"mean_us\": %.1f, \"p50_us\": %.1f, \"p99_us\": \
            %.1f, \"max_us\": %.1f }%s\n"
           name (Hist.count h) (Hist.mean_us h)
           (Hist.percentile_us h 0.50)
           (Hist.percentile_us h 0.99)
           (Hist.max_us h)
           (if i = List.length phases - 1 then "" else ",")))
    phases;
  Buffer.add_string b "  },\n";
  let best =
    List.fold_left (fun a r -> max a (ck_speedup r)) 0.0 ckpt
  in
  Buffer.add_string b
    (Printf.sprintf "  \"checkpoint\": { \"best_speedup\": %.2f, \"rows\": [\n" best);
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"state_bytes\": %d, \"pages\": %d, \"dirty_frac\": %.2f, \
            \"dirty_pages\": %.1f, \"flat_us\": %.1f, \"cow_us\": %.1f, \"incr_us\": \
            %.1f, \"flat_mb\": %.4f, \"incr_mb\": %.4f, \"speedup\": %.2f }%s\n"
           r.ck_state_bytes r.ck_pages r.ck_dirty_frac r.ck_dirty_pages r.ck_flat_us
           r.ck_rebuild_us r.ck_incr_us r.ck_flat_mb r.ck_incr_mb (ck_speedup r)
           (if i = List.length ckpt - 1 then "" else ",")))
    ckpt;
  Buffer.add_string b "  ] },\n";
  Buffer.add_string b "  \"e2e\": [\n";
  List.iteri
    (fun i (f, m) ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"f\": %d, \"requests\": %.0f, \"seconds\": %.3f, \
            \"requests_per_sec\": %.2f }%s\n"
           f m.units m.seconds (rate m)
           (if i = List.length e2e - 1 then "" else ",")))
    e2e;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"attack\": [\n";
  let atk_all = atk_clean :: atk_rows in
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"name\": %S, \"completed\": %d, \"total\": %d, \"virtual_seconds\": \
            %.4f, \"ops_per_vsec\": %.2f, \"ratio_vs_clean\": %.3f, \"view_changes\": \
            %d }%s\n"
           r.at_name r.at_completed r.at_total r.at_vsecs r.at_ops_per_vsec
           (attack_ratio atk_clean r) r.at_view_changes
           (if i = List.length atk_all - 1 then "" else ",")))
    atk_all;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b (workload_json wl);
  Buffer.add_string b "\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc;
  print_string (Buffer.contents b)

(* minimal scan for "<key>": <float> in a baseline JSON *)
let baseline_float path name =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  let key = Printf.sprintf "\"%s\":" name in
  let rec find i =
    if i + String.length key > String.length s then None
    else if String.sub s i (String.length key) = key then Some (i + String.length key)
    else find (i + 1)
  in
  match find 0 with
  | None -> failwith (Printf.sprintf "no %s in %s" name path)
  | Some i ->
      let j = ref i in
      while !j < String.length s && (s.[!j] = ' ' || s.[!j] = '\t') do incr j done;
      let k = ref !j in
      while
        !k < String.length s
        && (match s.[!k] with '0' .. '9' | '.' | '-' | 'e' | '+' -> true | _ -> false)
      do
        incr k
      done;
      float_of_string (String.sub s !j (!k - !j))

let () =
  let mode = ref "smoke" in
  let out = ref "BENCH_wallclock.json" in
  let check = ref "" in
  let digests = ref false in
  let metrics_out = ref "" in
  let latency_out = ref "" in
  (* the verification pool's domain count: --domains beats BFT_DOMAINS
     beats the single-domain default; also caps the parallel_verify sweep *)
  let domains =
    ref
      (match (Sys.getenv_opt [@lint.allow "determinism-getenv"]) "BFT_DOMAINS" with
      | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 4)
      | None -> 4)
  in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest -> mode := "smoke"; parse rest
    | "--full" :: rest -> mode := "full"; parse rest
    | "--digests" :: rest -> digests := true; parse rest
    | "--out" :: p :: rest -> out := p; parse rest
    | "--check" :: p :: rest -> check := p; parse rest
    | "--metrics-out" :: p :: rest -> metrics_out := p; parse rest
    | "--latency-out" :: p :: rest -> latency_out := p; parse rest
    | "--domains" :: n :: rest -> (
        match int_of_string_opt n with
        | Some d when d >= 1 -> domains := d; parse rest
        | _ -> Printf.eprintf "wallclock: bad --domains %s\n" n; exit 64)
    | a :: _ -> Printf.eprintf "wallclock: unknown argument %s\n" a; exit 64
  in
  parse (List.tl (Array.to_list Sys.argv));
  Bft_crypto.Vpool.set_default_domains !domains;
  if !digests then print_digests ()
  else begin
    let smoke = !mode = "smoke" in
    let cores = (Domain.recommended_domain_count [@lint.allow "domain-containment"]) () in
    let fuzz = bench_fuzz ~seeds:(if smoke then 8 else 40) in
    let sim = bench_sim_events ~events:(if smoke then 200_000 else 1_000_000) in
    let enc = bench_encode_digest ~iters:(if smoke then 200_000 else 1_000_000) in
    let pipe_iters = if smoke then 50_000 else 250_000 in
    let pipe_cached = bench_pipeline ~iters:pipe_iters ~cached:true in
    let pipe_uncached = bench_pipeline ~iters:pipe_iters ~cached:false in
    let pv_sweep =
      List.sort_uniq compare (1 :: List.filter (fun d -> d <= !domains) [ 2; 4; 8 ])
    in
    let pv = bench_parallel_verify ~domains_list:pv_sweep ~iters:(if smoke then 8 else 32) in
    print_parallel_verify ~cores pv;
    let reqs = if smoke then 30 else 150 in
    let e2e = List.map (fun f -> (f, bench_e2e ~f ~requests:reqs)) [ 1; 2; 3 ] in
    let ckpt =
      if smoke then
        bench_checkpoint ~sizes:[ 262_144; 1_048_576 ] ~fracs:[ 0.01; 0.10 ] ~iters:3
      else
        bench_checkpoint
          ~sizes:[ 262_144; 1_048_576; 4_194_304 ]
          ~fracs:[ 0.01; 0.05; 0.10; 0.50 ] ~iters:8
    in
    print_checkpoint ckpt;
    let reg, merged, phase_e2e = bench_phases () in
    print_phases merged phase_e2e;
    let atk_clean, atk_rows = bench_attacks () in
    print_attacks atk_clean atk_rows;
    let wl = bench_workload ~smoke in
    print_workload wl;
    if !latency_out <> "" then begin
      let oc = open_out !latency_out in
      output_string oc ("{\n" ^ workload_json wl ^ "\n}\n");
      close_out oc;
      Printf.printf "latency curve written to %s\n" !latency_out
    end;
    if !metrics_out <> "" then begin
      let oc = open_out !metrics_out in
      output_string oc (Obs.registry_to_json reg);
      close_out oc;
      Printf.printf "metrics registry written to %s\n" !metrics_out
    end;
    emit_json ~mode:!mode ~cores ~fuzz ~sim ~enc ~pipe_cached ~pipe_uncached ~pv ~e2e
      ~phases:(phase_rows merged phase_e2e) ~ckpt ~atk_clean ~atk_rows ~wl !out;
    if !check <> "" then begin
      let base = baseline_float !check "seeds_per_sec" in
      let cur = rate fuzz in
      Printf.printf "regression gate: current %.3f seeds/sec vs baseline %.3f (floor %.3f)\n"
        cur base (base /. 2.0);
      if cur < base /. 2.0 then begin
        Printf.eprintf
          "wallclock: FAIL — fuzz seeds/sec regressed more than 2x below baseline\n";
        exit 1
      end;
      (* incremental checkpointing must keep a healthy lead over the flat
         rebuild: compare best sweep speedups, floored at a quarter of the
         baseline's (smoke sweeps a smaller state grid than the checked-in
         full-mode run) and never below 2x. *)
      let ck_base = baseline_float !check "best_speedup" in
      let ck_cur = List.fold_left (fun a r -> max a (ck_speedup r)) 0.0 ckpt in
      let floor = Float.max 2.0 (ck_base /. 4.0) in
      Printf.printf
        "regression gate: current checkpoint speedup %.2fx vs baseline %.2fx (floor %.2fx)\n"
        ck_cur ck_base floor;
      if ck_cur < floor then begin
        Printf.eprintf
          "wallclock: FAIL — incremental checkpoint speedup regressed below baseline floor\n";
        exit 1
      end;
      (* verification-pool gates, live on hosts with >= 4 cores (the CI
         runners): single-domain throughput keeps a 100 MB/s floor (raw
         HMAC-SHA256 speed must not rot) and the 4-domain pool must
         deliver >= 2x the single-domain rate. Smaller hosts — a throttled
         1-core container spinning 4 domains proves nothing about the
         pool and sits inside the floor's noise band — print the measured
         rates but stay ungated. *)
      let pv1 = List.find_opt (fun r -> r.pv_domains = 1) pv in
      let pv4 = List.find_opt (fun r -> r.pv_domains = 4) pv in
      (match pv1 with
      | Some r1 when cores >= 4 ->
          Printf.printf "regression gate: parallel_verify 1-domain %.2f MB/s (floor 100.00)\n"
            (pv_rate r1);
          if pv_rate r1 < 100.0 then begin
            Printf.eprintf
              "wallclock: FAIL — single-domain verification below 100 MB/s\n";
            exit 1
          end;
          (match pv4 with
          | Some r4 ->
              let speedup = pv_rate r4 /. pv_rate r1 in
              Printf.printf
                "regression gate: parallel_verify 4-domain speedup %.2fx (floor 2.00x, %d cores)\n"
                speedup cores;
              if speedup < 2.0 then begin
                Printf.eprintf
                  "wallclock: FAIL — 4-domain verification under 2x the single-domain rate\n";
                exit 1
              end
          | None -> ())
      | Some r1 ->
          Printf.printf
            "regression gate: parallel_verify skipped (%d core(s) < 4; 1-domain measured \
             %.2f MB/s)\n"
            cores (pv_rate r1)
      | None -> ());
      (* bounded degradation under attack: with the defenses on, every
         adversary profile must complete the full workload and retain a
         per-profile fraction of clean committed throughput. The ratio is
         a virtual-time quantity — deterministic across hosts — so the
         floors are absolute rather than baseline-relative. mac_storm's
         0.25 is the headline gate (the retransmission budget defuses the
         re-send storm almost entirely); client_flood's floor is lower
         because a flooding client still costs each replica the arrival
         processing (digest + MAC check) of every dropped request, plus
         one bounded view rotation over divergently-admitted requests. *)
      let attack_floor = function
        | "slow_primary" -> 0.35
        | "client_flood" -> 0.10
        | _ -> 0.25
      in
      List.iter
        (fun r ->
          let ratio = attack_ratio atk_clean r in
          let floor = attack_floor r.at_name in
          Printf.printf
            "regression gate: attack %s throughput %.2fx of clean (floor %.2fx)\n"
            r.at_name ratio floor;
          if r.at_completed < r.at_total then begin
            Printf.eprintf "wallclock: FAIL — attack %s: only %d/%d ops completed\n"
              r.at_name r.at_completed r.at_total;
            exit 1
          end;
          if ratio < floor then begin
            Printf.eprintf
              "wallclock: FAIL — attack %s degraded committed throughput below the \
               %.2fx floor\n"
              r.at_name floor;
            exit 1
          end)
        atk_rows;
      (* peak committed throughput of the million-client workload sweep: a
         virtual-time quantity, so the floor is baseline-relative only to
         absorb intentional protocol-cost changes, not host noise *)
      let wl_base = baseline_float !check "peak_ops_per_vsec" in
      let wl_cur = wl_peak wl in
      Printf.printf
        "regression gate: workload peak %.1f ops/vsec vs baseline %.1f (floor %.1f)\n"
        wl_cur wl_base (wl_base /. 2.0);
      if wl_cur < wl_base /. 2.0 then begin
        Printf.eprintf
          "wallclock: FAIL — workload peak committed throughput regressed more than 2x \
           below baseline\n";
        exit 1
      end
    end
  end

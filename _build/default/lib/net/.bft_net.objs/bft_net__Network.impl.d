lib/net/network.ml: Bft_sim Bft_util Costs Hashtbl Int64 List Printf Queue

lib/net/costs.ml:

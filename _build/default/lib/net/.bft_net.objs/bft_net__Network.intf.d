lib/net/network.mli: Bft_sim Bft_util Costs

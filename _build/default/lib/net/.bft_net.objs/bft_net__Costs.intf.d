lib/net/costs.mli:

(** Per-sequence-number message log with water marks and certificate
    tracking (Sections 2.3.3-2.3.4).

    The log keeps, for every sequence number between the low water mark [h]
    (exclusive) and [h + L] (inclusive), the accepted pre-prepare and the
    prepare/commit messages collected for it, and answers the certificate
    questions the protocol asks: is the batch {e prepared} (pre-prepare +
    2f matching prepares from distinct backups), is it {e committed} (2f+1
    matching commits)? Garbage collection truncates everything at or below
    a new stable checkpoint. *)

type digest = string

type entry = {
  seq : int;
  mutable pp : Message.pre_prepare option;  (** accepted pre-prepare *)
  mutable pp_digest : digest option;  (** its batch digest *)
  mutable pp_view : int;  (** view of the accepted pre-prepare *)
  mutable self_preprepared : bool;
      (** this replica sent the pre-prepare or a prepare for it *)
  prepares : (int, int * digest) Hashtbl.t;  (** backup -> (view, digest) *)
  commits : (int, int * digest) Hashtbl.t;  (** replica -> (view, digest) *)
  mutable executed : bool;
  mutable exec_tentative : bool;  (** executed tentatively, not yet committed *)
}

type t

val create : Config.t -> t
val low_mark : t -> int
val config : t -> Config.t

val entry : t -> int -> entry option
(** [None] when the sequence number is outside the water marks. *)

val find : t -> int -> entry
(** Like {!entry} but creates the entry; raises [Invalid_argument] outside
    the water marks. *)

val in_window : t -> int -> bool

val accept_pre_prepare : t -> view:int -> Message.pre_prepare -> digest -> bool
(** Record an accepted pre-prepare. Returns [false] (no change) if a
    different digest was already accepted for this view and sequence. *)

val add_prepare : t -> Message.prepare -> unit
val add_commit : t -> Message.commit -> unit

val prepared : t -> view:int -> seq:int -> bool
(** Prepared certificate in the given view (Section 2.3.3). *)

val committed : t -> view:int -> seq:int -> bool
(** Committed certificate: prepared plus 2f+1 matching commits. The view of
    commits may trail the current view after a view change, so commits are
    matched on digest and sequence only. *)

val commit_count : t -> seq:int -> digest -> int

val truncate : t -> int -> unit
(** [truncate t n]: new low water mark [n]; drop entries [<= n]. *)

val iter_window : t -> (entry -> unit) -> unit
(** Iterate existing entries in increasing sequence order. *)

val clear_entries : t -> unit
(** Drop every entry but keep the low water mark (used when a view-change
    message is sent: the paper's "clears its log"). *)

type digest = string

type entry = {
  seq : int;
  mutable pp : Message.pre_prepare option;
  mutable pp_digest : digest option;
  mutable pp_view : int;
  mutable self_preprepared : bool;
  prepares : (int, int * digest) Hashtbl.t;
  commits : (int, int * digest) Hashtbl.t;
  mutable executed : bool;
  mutable exec_tentative : bool;
}

type t = { cfg : Config.t; mutable h : int; entries : (int, entry) Hashtbl.t }

let create cfg = { cfg; h = 0; entries = Hashtbl.create 64 }
let low_mark t = t.h
let config t = t.cfg
let in_window t n = Config.in_window t.cfg ~h:t.h n
let entry t n = if in_window t n then Hashtbl.find_opt t.entries n else None

let find t n =
  if not (in_window t n) then
    invalid_arg (Printf.sprintf "Log.find: seq %d outside window (h=%d)" n t.h);
  match Hashtbl.find_opt t.entries n with
  | Some e -> e
  | None ->
      let e =
        {
          seq = n;
          pp = None;
          pp_digest = None;
          pp_view = -1;
          self_preprepared = false;
          prepares = Hashtbl.create 8;
          commits = Hashtbl.create 8;
          executed = false;
          exec_tentative = false;
        }
      in
      Hashtbl.replace t.entries n e;
      e

let accept_pre_prepare t ~view pp d =
  let e = find t pp.Message.pp_seq in
  match e.pp_digest with
  | Some d' when e.pp_view = view && not (String.equal d' d) -> false
  | _ ->
      e.pp <- Some pp;
      e.pp_digest <- Some d;
      e.pp_view <- view;
      true

(* Prepares and commits may arrive before the pre-prepare is accepted
   (out-of-order delivery, deferred authentication): create the entry. *)
let add_prepare t (p : Message.prepare) =
  if in_window t p.pr_seq then
    Hashtbl.replace (find t p.pr_seq).prepares p.pr_replica (p.pr_view, p.pr_digest)

let add_commit t (c : Message.commit) =
  if in_window t c.cm_seq then
    Hashtbl.replace (find t c.cm_seq).commits c.cm_replica (c.cm_view, c.cm_digest)

let prepared t ~view ~seq =
  match entry t seq with
  | None -> false
  | Some e -> (
      match e.pp_digest with
      | Some d when e.pp_view = view ->
          let primary = Config.primary t.cfg ~view in
          let matching =
            Hashtbl.fold
              (fun replica (v, d') acc ->
                if replica <> primary && v = view && String.equal d' d then acc + 1
                else acc)
              e.prepares 0
          in
          matching >= 2 * t.cfg.Config.f
      | _ -> false)

let commit_count t ~seq d =
  match entry t seq with
  | None -> 0
  | Some e ->
      Hashtbl.fold
        (fun _ (_, d') acc -> if String.equal d' d then acc + 1 else acc)
        e.commits 0

let committed t ~view ~seq =
  prepared t ~view ~seq
  &&
  match entry t seq with
  | None -> false
  | Some e -> (
      match e.pp_digest with
      | None -> false
      | Some d -> commit_count t ~seq d >= Config.quorum t.cfg)

let truncate t n =
  if n > t.h then begin
    t.h <- n;
    Hashtbl.iter
      (fun seq _ -> if seq <= n then Hashtbl.remove t.entries seq)
      (Hashtbl.copy t.entries)
  end

let iter_window t f =
  let seqs = Hashtbl.fold (fun seq _ acc -> seq :: acc) t.entries [] in
  List.iter (fun seq -> f (Hashtbl.find t.entries seq)) (List.sort compare seqs)

let clear_entries t = Hashtbl.reset t.entries

(** Canonical wire encoding of protocol messages.

    The encoding serves three purposes:
    - the byte string over which MACs, authenticators and signatures are
      computed (injective per message type, so authenticating the encoding
      authenticates the message);
    - the basis for message digests (request digests, batch digests,
      view-change digests);
    - the size model: the simulated network charges wire and CPU time per
      encoded byte, plus the authentication token's own size.

    Integers are 8-byte little-endian; variable-size fields are
    length-prefixed; every message starts with a distinct tag byte. *)

val encode : Message.t -> string

val decode : string -> (Message.t, string) result
(** Inverse of {!encode}: a message encodes/decodes to itself exactly
    (authentication tokens inside inline batch elements are not part of the
    wire image and decode as [Auth_none]). Malformed input yields a
    human-readable [Error]. *)

val size : Message.t -> int
(** [size m = String.length (encode m)], computed without allocation of the
    intermediate string where it matters. *)

val auth_size : Message.auth_token -> int
val envelope_size : Message.envelope -> int

val request_digest : Message.request -> Message.digest
(** Digest identifying a request: covers client, timestamp, operation and
    flags. *)

val batch_digest : Message.batch_elem list -> string -> Message.digest
(** [batch_digest batch nondet] identifies the ordered content of a
    pre-prepare independently of its view/sequence assignment, so a
    re-proposal in a later view keeps the same digest. Inline requests
    contribute their request digest. *)

val null_batch_digest : Message.digest
(** Digest of the null request batch chosen for gaps in new views. *)

val view_change_digest : Message.view_change -> Message.digest
val checkpoint_value_digest : string -> Message.digest
val result_digest : string -> Message.digest

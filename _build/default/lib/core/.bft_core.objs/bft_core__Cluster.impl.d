lib/core/cluster.ml: Array Bft_crypto Bft_net Bft_sim Bft_sm Bft_util Client Config Fun Hashtbl Int64 List Message Option Printf Replica String

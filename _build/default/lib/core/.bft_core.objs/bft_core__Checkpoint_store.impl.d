lib/core/checkpoint_store.ml: Config Hashtbl List Message Option Partition_tree String

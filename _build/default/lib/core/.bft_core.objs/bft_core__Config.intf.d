lib/core/config.mli:

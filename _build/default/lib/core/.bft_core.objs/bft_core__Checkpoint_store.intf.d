lib/core/checkpoint_store.mli: Config Message Partition_tree

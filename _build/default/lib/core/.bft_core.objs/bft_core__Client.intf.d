lib/core/client.mli: Bft_crypto Bft_net Bft_util Config Message

lib/core/client.ml: Bft_crypto Bft_net Bft_sim Bft_util Config Float Hashtbl Int64 List Message String Wire

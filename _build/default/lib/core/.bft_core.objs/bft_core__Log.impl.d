lib/core/log.ml: Config Hashtbl List Message Printf String

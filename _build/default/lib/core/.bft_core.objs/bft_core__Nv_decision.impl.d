lib/core/nv_decision.ml: Config List Message String Wire

lib/core/message.ml: Bft_crypto

lib/core/baseline.ml: Array Bft_crypto Bft_net Bft_sim Bft_sm Bft_util Hashtbl Int64 Message Option Wire

lib/core/wire.ml: Bft_crypto Buffer Char Int64 List Message String

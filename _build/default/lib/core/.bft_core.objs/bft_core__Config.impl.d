lib/core/config.ml: Fun List

lib/core/nv_decision.mli: Config Message

lib/core/wire.mli: Message

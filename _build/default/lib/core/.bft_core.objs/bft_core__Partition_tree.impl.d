lib/core/partition_tree.ml: Array Bft_crypto Buffer List String

lib/core/replica.mli: Bft_crypto Bft_net Bft_sm Bft_util Config Message

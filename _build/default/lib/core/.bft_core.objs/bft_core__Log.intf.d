lib/core/log.mli: Config Hashtbl Message

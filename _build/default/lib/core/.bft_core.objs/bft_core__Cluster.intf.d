lib/core/cluster.mli: Bft_net Bft_sim Bft_sm Client Config Message Replica

lib/core/replica.ml: Bft_crypto Bft_net Bft_sim Bft_sm Bft_util Buffer Checkpoint_store Config Hashtbl Int64 List Log Logs Message Nv_decision Option Partition_tree Printf String Wire

lib/core/baseline.mli: Bft_net Bft_sim Bft_sm

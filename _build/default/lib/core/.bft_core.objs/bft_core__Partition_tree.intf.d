lib/core/partition_tree.mli:

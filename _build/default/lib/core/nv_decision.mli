(** The new-view decision procedure (paper Fig 3-3).

    Given the set S of acknowledged view-change messages, the new primary
    chooses (and every backup re-derives and checks):
    - the start checkpoint: the highest [(n, d)] such that 2f+1 messages
      have [h <= n] and f+1 messages vouch for [(n, d)] in their C
      component;
    - for every sequence number after it, either a batch digest that might
      have committed in an earlier view (condition A: proposed in some P
      component, not contradicted by a quorum (A1), supported by f+1 Q
      entries (A2), and with the batch body available (A3)), or the null
      batch when a quorum shows nothing prepared (condition B).

    The procedure returns [`Wait] when the information is insufficient to
    decide — more view-change messages or batch bodies are needed. *)

type result =
  | Wait
  | Decision of {
      start : int;
      start_digest : Message.digest;
      chosen : Message.nv_choice list;  (** ascending, start+1 .. max *)
    }

val decide :
  Config.t ->
  (int * Message.view_change) list ->
  has_batch:(Message.digest -> bool) ->
  result
(** The association list maps each sender to its (acknowledged)
    view-change message; at most one entry per sender. *)

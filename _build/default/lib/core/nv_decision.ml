open Message

type result =
  | Wait
  | Decision of {
      start : int;
      start_digest : Message.digest;
      chosen : Message.nv_choice list;
    }

let decide cfg (vcs : (int * view_change) list) ~has_batch =
  let quorum = Config.quorum cfg and weak = Config.weak cfg in
  let msgs = List.map snd vcs in
  (* checkpoint selection *)
  let candidates =
    List.concat_map (fun m -> m.vc_cset) msgs
    |> List.sort_uniq compare
    |> List.filter (fun (n, d) ->
           List.length (List.filter (fun m -> m.vc_h <= n) msgs) >= quorum
           && List.length
                (List.filter (fun m -> List.exists (fun cd -> cd = (n, d)) m.vc_cset) msgs)
              >= weak)
  in
  match List.rev (List.sort compare candidates) with
  | [] -> Wait
  | (start, start_digest) :: _ -> (
      let max_n =
        List.fold_left
          (fun acc m ->
            List.fold_left (fun acc e -> max acc e.pe_seq) acc m.vc_pset)
          start msgs
      in
      let decide_one n =
        (* A: a prepared batch proposed for n *)
        let proposals =
          List.concat_map
            (fun m -> List.filter (fun e -> e.pe_seq = n) m.vc_pset)
            msgs
          |> List.sort (fun a b -> compare (b.pe_view, b.pe_digest) (a.pe_view, a.pe_digest))
        in
        let verifies e =
          let a1 =
            List.length
              (List.filter
                 (fun m ->
                   m.vc_h < n
                   && List.for_all
                        (fun e' ->
                          e'.pe_seq <> n || e'.pe_view < e.pe_view
                          || (e'.pe_view = e.pe_view && String.equal e'.pe_digest e.pe_digest))
                        m.vc_pset)
                 msgs)
            >= quorum
          in
          let a2 =
            List.length
              (List.filter
                 (fun m ->
                   List.exists
                     (fun q ->
                       q.qe_seq = n
                       && List.exists
                            (fun (d, v) -> String.equal d e.pe_digest && v >= e.pe_view)
                            q.qe_entries)
                     m.vc_qset)
                 msgs)
            >= weak
          in
          a1 && a2 && has_batch e.pe_digest
        in
        match List.find_opt verifies proposals with
        | Some e -> `Chosen e.pe_digest
        | None ->
            (* B: 2f+1 messages with h < n and no P entry for n *)
            let b =
              List.length
                (List.filter
                   (fun m -> m.vc_h < n && List.for_all (fun e -> e.pe_seq <> n) m.vc_pset)
                   msgs)
              >= quorum
            in
            if b then `Chosen Wire.null_batch_digest else `Wait
      in
      let rec go n acc =
        if n > max_n then Decision { start; start_digest; chosen = List.rev acc }
        else
          match decide_one n with
          | `Chosen d -> go (n + 1) ({ nc_seq = n; nc_digest = d } :: acc)
          | `Wait -> Wait
      in
      go (start + 1) [])


type digest = string
type page = { data : string; lm : int; digest : digest }
type node = { n_lm : int; n_digest : digest }

type t = {
  seq : int;
  page_size : int;
  branching : int;
  pages : page array;
  interior : node array array; (* interior.(l) for levels 0 .. depth-2 *)
  digested_bytes : int;
}

let page_digest ~index ~lm ~data =
  let b = Buffer.create (String.length data + 24) in
  Buffer.add_string b "PAGE";
  Buffer.add_string b (string_of_int index);
  Buffer.add_char b ':';
  Buffer.add_string b (string_of_int lm);
  Buffer.add_char b ':';
  Buffer.add_string b data;
  Bft_crypto.Sha256.digest (Buffer.contents b)

let rebuild_page ~index ~lm ~data = { data; lm; digest = page_digest ~index ~lm ~data }

let split_pages page_size s =
  let len = String.length s in
  let n = max 1 ((len + page_size - 1) / page_size) in
  Array.init n (fun i ->
      let off = i * page_size in
      let l = min page_size (len - off) in
      if l <= 0 then "" else String.sub s off l)

(* Combine children of one interior node: AdHash of child digests, tagged
   with the node's coordinates and lm. *)
let interior_digest ~level ~index ~lm children_digests =
  let acc =
    List.fold_left
      (fun acc d -> Bft_crypto.Adhash.add acc (Bft_crypto.Adhash.of_digest d))
      Bft_crypto.Adhash.zero children_digests
  in
  let b = Buffer.create 64 in
  Buffer.add_string b "META";
  Buffer.add_string b (string_of_int level);
  Buffer.add_char b ':';
  Buffer.add_string b (string_of_int index);
  Buffer.add_char b ':';
  Buffer.add_string b (string_of_int lm);
  Buffer.add_char b ':';
  Buffer.add_string b (Bft_crypto.Adhash.to_string acc);
  Bft_crypto.Sha256.digest (Buffer.contents b)

let num_interior_levels ~branching ~num_pages =
  (* levels above the page level, at least 1 (the root) *)
  let rec go width acc = if width <= 1 then acc else go ((width + branching - 1) / branching) (acc + 1) in
  max 1 (go num_pages 0)

let build ?prev ~seq ~page_size ~branching snapshot =
  if page_size <= 0 then invalid_arg "Partition_tree.build: page_size";
  if branching < 2 then invalid_arg "Partition_tree.build: branching";
  let chunks = split_pages page_size snapshot in
  let digested = ref 0 in
  let reuse =
    match prev with
    | Some p when p.page_size = page_size && p.branching = branching -> Some p
    | _ -> None
  in
  let pages =
    Array.mapi
      (fun i data ->
        match reuse with
        | Some p when i < Array.length p.pages && String.equal p.pages.(i).data data ->
            p.pages.(i)
        | _ ->
            digested := !digested + String.length data;
            { data; lm = seq; digest = page_digest ~index:i ~lm:seq ~data })
      chunks
  in
  (* interior levels, bottom-up; level depth-2 groups pages *)
  let n_int = num_interior_levels ~branching ~num_pages:(Array.length pages) in
  let interior = Array.make n_int [||] in
  let lower_lm_digest = ref (Array.map (fun p -> (p.lm, p.digest)) pages) in
  for l = n_int - 1 downto 0 do
    let lower = !lower_lm_digest in
    let width = (Array.length lower + branching - 1) / branching in
    let width = max 1 width in
    let nodes =
      Array.init width (fun i ->
          let first = i * branching in
          let last = min ((i + 1) * branching) (Array.length lower) - 1 in
          let lm = ref 0 and ds = ref [] in
          for c = last downto first do
            let clm, cd = lower.(c) in
            if clm > !lm then lm := clm;
            ds := cd :: !ds
          done;
          { n_lm = !lm; n_digest = interior_digest ~level:l ~index:i ~lm:!lm !ds })
    in
    interior.(l) <- nodes;
    lower_lm_digest := Array.map (fun n -> (n.n_lm, n.n_digest)) nodes
  done;
  assert (Array.length interior.(0) = 1);
  { seq; page_size; branching; pages; interior; digested_bytes = !digested }

let seq t = t.seq
let root_digest t = t.interior.(0).(0).n_digest
let num_pages t = Array.length t.pages
let depth t = Array.length t.interior + 1

let page t i =
  if i < 0 || i >= Array.length t.pages then invalid_arg "Partition_tree.page";
  t.pages.(i)

let node_info t ~level ~index =
  let page_level = Array.length t.interior in
  if level = page_level then begin
    let p = page t index in
    (p.lm, p.digest)
  end
  else begin
    if level < 0 || level > page_level then invalid_arg "Partition_tree.node_info";
    let n = t.interior.(level).(index) in
    (n.n_lm, n.n_digest)
  end

let child_range t ~level ~index =
  let page_level = Array.length t.interior in
  if level >= page_level then invalid_arg "Partition_tree.child_range: page level";
  let lower_width =
    if level + 1 = page_level then Array.length t.pages
    else Array.length t.interior.(level + 1)
  in
  let first = index * t.branching in
  let last = min ((index + 1) * t.branching) lower_width - 1 in
  (first, last)

let children t ~level ~index =
  let first, last = child_range t ~level ~index in
  let infos = ref [] in
  for c = last downto first do
    let lm, d = node_info t ~level:(level + 1) ~index:c in
    infos := (c, lm, d) :: !infos
  done;
  !infos

let snapshot t =
  let b = Buffer.create (Array.length t.pages * t.page_size) in
  Array.iter (fun p -> Buffer.add_string b p.data) t.pages;
  Buffer.contents b

let digested_bytes t = t.digested_bytes
let page_size t = t.page_size
let branching t = t.branching

(** Hierarchical state partitions for checkpoint management (Section 5.3.1).

    The service state (a snapshot byte string) is split into fixed-size
    pages, the leaves of a tree in which each interior partition has up to
    [branching] children. Each node stores the last checkpoint sequence
    number at which it was modified ([lm]) and a digest; page digests hash
    (index, lm, value) and interior digests combine child digests with
    AdHash, so the digests of a new checkpoint are computed incrementally
    from the previous one: only modified pages are re-hashed. The root
    digest is the checkpoint digest carried by CHECKPOINT messages, and it
    commits the values of all sub-partitions, which is what lets state
    transfer verify fetched partitions top-down without certificates
    (Section 5.3.2). *)

type digest = string

type page = { data : string; lm : int; digest : digest }

type t

val build : ?prev:t -> seq:int -> page_size:int -> branching:int -> string -> t
(** [build ?prev ~seq ~page_size ~branching snapshot] constructs the tree
    for the checkpoint with sequence number [seq]. When [prev] is given and
    has the same geometry, unchanged pages share their records (and their
    [lm] and digests) with [prev] — the copy-on-write of the paper. *)

val seq : t -> int
val root_digest : t -> digest
val num_pages : t -> int
val depth : t -> int
(** Number of levels; level 0 is the root, level [depth - 1] the pages. *)

val page : t -> int -> page
(** Raises [Invalid_argument] on out-of-range index. *)

val node_info : t -> level:int -> index:int -> int * digest
(** [(lm, digest)] of an interior node or page. *)

val children : t -> level:int -> index:int -> (int * int * digest) list
(** [(child_index, lm, digest)] list for an interior partition — the
    contents of a META-DATA reply. [level] must be an interior level. *)

val child_range : t -> level:int -> index:int -> int * int
(** Child index range [(first, last)] of an interior node. *)

val snapshot : t -> string
(** Reassemble the full state string. *)

val digested_bytes : t -> int
(** Bytes actually re-hashed when this tree was built (for CPU-cost
    accounting: unchanged pages cost nothing). *)

val page_size : t -> int
val branching : t -> int

val rebuild_page : index:int -> lm:int -> data:string -> page
(** Recompute a page record (used by the fetching side of state transfer to
    verify received DATA messages against known digests). *)

(** The null service used by the latency/throughput micro-benchmarks
    (Section 8.3): operations carry [a] bytes of argument and return [r]
    bytes of result, with a no-op transition.

    Operation encoding: ["ro:<r>:<pad>"] or ["rw:<r>:<pad>"] where [<r>] is
    the requested result size in bytes and [<pad>] is argument padding.
    [op ~read_only ~arg_size ~result_size] builds one. *)

val op : read_only:bool -> arg_size:int -> result_size:int -> string

val create : ?exec_cost_us:float -> unit -> Service.t
(** The service counts executed operations in its state (so checkpoints are
    not all identical), but results depend only on the requested size. *)

lib/statemachine/service.mli:

lib/statemachine/null_service.mli: Service

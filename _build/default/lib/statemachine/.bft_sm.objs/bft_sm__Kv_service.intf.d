lib/statemachine/kv_service.mli: Service

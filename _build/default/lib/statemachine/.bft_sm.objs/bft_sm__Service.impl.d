lib/statemachine/service.ml:

lib/statemachine/null_service.ml: Printf Service String

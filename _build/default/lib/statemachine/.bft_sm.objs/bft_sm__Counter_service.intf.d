lib/statemachine/counter_service.mli: Service

lib/statemachine/kv_service.ml: Buffer Hashtbl List Printf Service String

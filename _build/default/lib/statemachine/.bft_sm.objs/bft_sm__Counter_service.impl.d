lib/statemachine/counter_service.ml: Service String

type t = {
  name : string;
  execute : client:int -> op:string -> nondet:string -> string;
  is_read_only : string -> bool;
  has_access : client:int -> string -> bool;
  exec_cost_us : string -> float;
  snapshot : unit -> string;
  restore : string -> unit;
}

let denied = "EACCES"
let invalid = "EINVAL"

(** A tiny counter service, convenient for linearizability tests.

    Operations: ["inc"] (returns new value), ["add <n>"] (returns new
    value), ["get"] (read-only, returns value), ["set <n>"]. Malformed
    operations return {!Service.invalid}. *)

val create : unit -> Service.t
val value : Service.t -> int
(** Current counter value (test helper, reads via a "get" execution). *)

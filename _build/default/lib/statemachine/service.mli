(** Deterministic state-machine service instances (paper Definition 2.4.1
    and the library interface of Section 6.2).

    A service executes opaque operation byte strings. The transition
    function must be total and deterministic: the result and new state are
    completely determined by the current state, the operation bytes, the
    client identity, and the non-deterministic choice string agreed through
    the protocol (Section 5.4). Invalid operations must return an error
    result rather than raise.

    [snapshot]/[restore] capture the full service state for checkpointing
    and state transfer; they must satisfy [restore (snapshot ()) = identity]
    on observable behaviour. *)

type t = {
  name : string;
  execute : client:int -> op:string -> nondet:string -> string;
      (** Total transition function; never raises. *)
  is_read_only : string -> bool;
      (** Service-specific upcall used by the read-only optimization
          (Section 5.1.3): a faulty client may mark a mutating request
          read-only, so the service itself vets it. *)
  has_access : client:int -> string -> bool;
      (** Access control (Section 2.2): deny before execution. *)
  exec_cost_us : string -> float;
      (** Virtual CPU cost of executing the operation, charged by the
          simulator. *)
  snapshot : unit -> string;
  restore : string -> unit;
}

val denied : string
(** Canonical result returned when [has_access] fails. *)

val invalid : string
(** Canonical result for malformed operations. *)

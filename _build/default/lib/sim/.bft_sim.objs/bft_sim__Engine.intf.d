lib/sim/engine.mli: Bft_util

lib/sim/engine.ml: Bft_util Int64 Map

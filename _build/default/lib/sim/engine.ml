type time = int64

module Key = struct
  type t = time * int (* fire time, scheduling sequence (tie break) *)

  let compare (t1, s1) (t2, s2) =
    match Int64.compare t1 t2 with 0 -> compare s1 s2 | c -> c
end

module Queue = Map.Make (Key)

type handle = { key : Key.t; mutable state : [ `Pending | `Fired | `Cancelled ] }

type t = {
  mutable clock : time;
  mutable queue : (handle * (unit -> unit)) Queue.t;
  mutable seq : int;
  rng : Bft_util.Rng.t;
}

let create ?(seed = 1L) () =
  { clock = 0L; queue = Queue.empty; seq = 0; rng = Bft_util.Rng.create seed }

let now t = t.clock
let rng t = t.rng

let schedule_at t at thunk =
  let at = if Int64.compare at t.clock < 0 then t.clock else at in
  let key = (at, t.seq) in
  t.seq <- t.seq + 1;
  let handle = { key; state = `Pending } in
  t.queue <- Queue.add key (handle, thunk) t.queue;
  handle

let schedule t ~delay thunk =
  if Int64.compare delay 0L < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t (Int64.add t.clock delay) thunk

let cancel handle = if handle.state = `Pending then handle.state <- `Cancelled
let is_pending handle = handle.state = `Pending
let pending_events t = Queue.cardinal t.queue

let step t =
  match Queue.min_binding_opt t.queue with
  | None -> false
  | Some (key, (handle, thunk)) ->
      t.queue <- Queue.remove key t.queue;
      let at, _ = key in
      t.clock <- at;
      if handle.state = `Pending then begin
        handle.state <- `Fired;
        thunk ()
      end;
      true

let default_max_events = 100_000_000

let next_time t =
  match Queue.min_binding_opt t.queue with None -> None | Some ((at, _), _) -> Some at

let run ?until ?(max_events = default_max_events) t =
  let rec loop remaining =
    if remaining <= 0 then ()
    else
      match next_time t with
      | None -> ()
      | Some at ->
          let past_deadline =
            match until with None -> false | Some u -> Int64.compare at u > 0
          in
          if past_deadline then ()
          else if step t then loop (remaining - 1)
  in
  loop max_events

let run_while t ?until pred =
  let rec loop () =
    if not (pred ()) then false
    else
      match next_time t with
      | None -> true
      | Some at ->
          let past_deadline =
            match until with None -> false | Some u -> Int64.compare at u > 0
          in
          if past_deadline then true
          else begin
            ignore (step t);
            loop ()
          end
  in
  loop ()

let ns n = Int64.of_int n
let us n = Int64.of_int (n * 1_000)
let ms n = Int64.of_int (n * 1_000_000)
let sec n = Int64.of_int (n * 1_000_000_000)
let of_us_float f = Int64.of_float (f *. 1_000.0)
let to_us t = Int64.to_float t /. 1_000.0
let to_ms t = Int64.to_float t /. 1_000_000.0

lib/bfs/andrew.ml: Bfs_service Bft_util Fs List Printf

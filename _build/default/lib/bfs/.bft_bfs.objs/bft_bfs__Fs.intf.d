lib/bfs/fs.mli:

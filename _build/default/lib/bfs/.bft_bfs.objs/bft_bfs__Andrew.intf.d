lib/bfs/andrew.mli:

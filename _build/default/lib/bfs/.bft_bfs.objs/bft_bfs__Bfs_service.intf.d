lib/bfs/bfs_service.mli: Bft_sm

lib/bfs/bfs_service.ml: Bft_sm Bft_util Fs Int64 List Printf Result String

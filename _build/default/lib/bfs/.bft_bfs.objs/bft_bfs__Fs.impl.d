lib/bfs/fs.ml: Bft_util Buffer Bytes Hashtbl Int64 List Printf String

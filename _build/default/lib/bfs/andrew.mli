(** Andrew-benchmark-style workload over the BFS operation set
    (Section 8.6: the paper evaluates BFS with the Andrew benchmark and a
    scaled-up Andrew100).

    The workload is a deterministic script of (phase, op, read_only) steps
    mirroring Andrew's five phases:
    1. [Mkdir]  — create a directory tree
    2. [Copy]   — create and write source files
    3. [Stat]   — getattr every file (read-only)
    4. [Read]   — read every file in full (read-only)
    5. [Make]   — read all sources, write a few outputs (compile stand-in)

    [scale] multiplies the number of directories/files, like AndrewN in the
    paper. The script uses dynamic inode discovery: steps are generated
    lazily against a shadow file system so inode numbers match execution
    order on the replicated service. *)

type phase = Mkdir | Copy | Stat | Read | Make

val phase_name : phase -> string
val phases : phase list

type step = { phase : phase; op : string; read_only : bool }

val script : ?scale:int -> ?file_size:int -> ?seed:int64 -> unit -> step list
(** Deterministic operation script. Defaults: [scale = 1] (5 directories,
    10 files), [file_size = 1024] bytes. *)

val ops_per_phase : step list -> (phase * int) list

module Costs = Bft_net.Costs
module Config = Bft_core.Config
module Message = Bft_core.Message
module Wire = Bft_core.Wire

type workload = { arg_size : int; result_size : int; read_only : bool; batch : int }

type prediction = { latency_us : float; throughput_ops : float; bottleneck : string }

(* Representative messages, encoded with the real wire codec so the model
   and the simulator agree on sizes exactly. *)

let sample_request ~arg_size =
  {
    Message.op = String.make (max 0 arg_size) 'x';
    timestamp = 1L;
    client = 1000;
    read_only = false;
    replier = 0;
  }

let auth_bytes ~cfg =
  match cfg.Config.auth_mode with
  | Config.Sig_auth -> 128
  | Config.Mac_auth -> 8 + (8 * cfg.Config.n)

let request_size ~cfg ~arg_size =
  8 + Wire.size (Message.Request (sample_request ~arg_size)) + auth_bytes ~cfg

let reply_size ~cfg:_ ~result_size ~full =
  let payload =
    if full then Message.Full (String.make (max 0 result_size) 'y')
    else Message.Result_digest (String.make 32 'd')
  in
  8
  + Wire.size
      (Message.Reply
         {
           rp_view = 0;
           rp_timestamp = 1L;
           rp_client = 1000;
           rp_replica = 0;
           rp_tentative = true;
           rp_result = payload;
         })
  + (8 + 8) (* single MAC *)

let pre_prepare_size ~cfg ~arg_size ~batch =
  let elem =
    if arg_size > cfg.Config.separate_tx_threshold then
      Message.By_digest (String.make 32 'd')
    else Message.Inline (sample_request ~arg_size, Message.Auth_none)
  in
  let pp =
    {
      Message.pp_view = 0;
      pp_seq = 1;
      pp_batch = List.init (max 1 batch) (fun _ -> elem);
      pp_nondet = "123456789012";
    }
  in
  8 + Wire.size (Message.Pre_prepare pp) + auth_bytes ~cfg
  (* inline client tokens travel inside the pre-prepare *)
  + if arg_size > cfg.Config.separate_tx_threshold then 0
    else max 1 batch * (8 + (8 * cfg.Config.n))

let prepare_size ~cfg =
  8
  + Wire.size
      (Message.Prepare
         { pr_view = 0; pr_seq = 1; pr_digest = String.make 32 'd'; pr_replica = 0 })
  + auth_bytes ~cfg

(* Crypto cost of authenticating / verifying one message. *)
let gen_auth_us ~costs ~cfg =
  match cfg.Config.auth_mode with
  | Config.Sig_auth -> costs.Costs.sig_gen_us
  | Config.Mac_auth -> Costs.auth_gen_us costs cfg.Config.n

let verify_auth_us ~costs ~cfg =
  match cfg.Config.auth_mode with
  | Config.Sig_auth -> costs.Costs.sig_verify_us
  | Config.Mac_auth -> costs.Costs.mac_us

let gen_mac_us ~costs ~cfg =
  match cfg.Config.auth_mode with
  | Config.Sig_auth -> costs.Costs.sig_gen_us
  | Config.Mac_auth -> costs.Costs.mac_us

(* One-way message time: sender CPU + wire. Receiver CPU is accounted at
   the receiving stage. *)
let hop ~costs size = Costs.send_cpu_us costs size +. Costs.wire_us costs size

let latency_us ~costs ~cfg (w : workload) =
  let f = cfg.Config.f in
  let req_sz = request_size ~cfg ~arg_size:w.arg_size in
  let full_reply = reply_size ~cfg ~result_size:w.result_size ~full:true in
  let exec = costs.Costs.exec_null_us in
  let digest_req = Costs.digest_us costs req_sz in
  (* client prepares and sends the request *)
  let t_client_send = digest_req +. gen_auth_us ~costs ~cfg +. hop ~costs req_sz in
  if w.read_only then begin
    (* single round trip (Section 7.3.1): request multicast, replicas
       execute and reply; the client needs 2f+1 matching replies and the
       full result, so the critical path is one replica's reply plus
       verifying 2f+1 replies *)
    let replica =
      Costs.recv_cpu_us costs req_sz +. verify_auth_us ~costs ~cfg +. digest_req +. exec
      +. gen_mac_us ~costs ~cfg +. hop ~costs full_reply
    in
    let client_recv =
      Costs.recv_cpu_us costs full_reply
      +. float_of_int (2 * f)
         *. (Costs.recv_cpu_us costs (reply_size ~cfg ~result_size:w.result_size ~full:false)
            +. costs.Costs.mac_us)
      +. costs.Costs.mac_us
      +. Costs.digest_us costs w.result_size
    in
    t_client_send +. replica +. client_recv
  end
  else begin
    let pp_sz = pre_prepare_size ~cfg ~arg_size:w.arg_size ~batch:1 in
    let prep_sz = prepare_size ~cfg in
    (* primary: receive request, verify, assign and multicast pre-prepare *)
    let t_primary =
      Costs.recv_cpu_us costs req_sz +. verify_auth_us ~costs ~cfg +. digest_req
      +. Costs.digest_us costs pp_sz +. gen_auth_us ~costs ~cfg +. hop ~costs pp_sz
    in
    (* backup: receive pre-prepare, verify (authenticator + request MAC +
       digest), multicast prepare *)
    let t_backup =
      Costs.recv_cpu_us costs pp_sz +. verify_auth_us ~costs ~cfg
      +. costs.Costs.mac_us (* inline request token *)
      +. Costs.digest_us costs pp_sz +. gen_auth_us ~costs ~cfg +. hop ~costs prep_sz
    in
    (* collect 2f prepares, execute tentatively, reply (Section 7.3.2 with
       the tentative-execution optimization: 4 message delays) *)
    let t_prepare_collect =
      float_of_int (2 * f) *. (Costs.recv_cpu_us costs prep_sz +. verify_auth_us ~costs ~cfg)
    in
    let commit_round =
      if cfg.Config.tentative_execution then 0.0
      else
        (* one extra round: multicast commit, collect 2f+1 commits *)
        gen_auth_us ~costs ~cfg +. hop ~costs prep_sz
        +. float_of_int ((2 * f) + 1)
           *. (Costs.recv_cpu_us costs prep_sz +. verify_auth_us ~costs ~cfg)
    in
    let t_reply =
      exec
      +. (if
            cfg.Config.digest_replies
            && w.result_size > cfg.Config.digest_replies_threshold
          then Costs.digest_us costs w.result_size
          else 0.0)
      +. gen_mac_us ~costs ~cfg +. hop ~costs full_reply
    in
    let needed = if cfg.Config.tentative_execution then (2 * f) + 1 else f + 1 in
    let client_recv =
      Costs.recv_cpu_us costs full_reply
      +. float_of_int (needed - 1)
         *. (Costs.recv_cpu_us costs (reply_size ~cfg ~result_size:w.result_size ~full:false)
            +. costs.Costs.mac_us)
      +. costs.Costs.mac_us
      +. Costs.digest_us costs w.result_size
    in
    t_client_send +. t_primary +. t_backup +. t_prepare_collect +. commit_round
    +. t_reply +. client_recv
  end

(* Saturation throughput (Section 7.4): per-request CPU cost at the primary
   and at a backup, with protocol costs amortized over the batch; the
   network is modelled by per-byte serialization at the sender link. *)
let throughput ~costs ~cfg (w : workload) =
  let n = cfg.Config.n in
  let b = float_of_int (max 1 w.batch) in
  let req_sz = request_size ~cfg ~arg_size:w.arg_size in
  let reply_full = reply_size ~cfg ~result_size:w.result_size ~full:true in
  let reply_digest = reply_size ~cfg ~result_size:w.result_size ~full:false in
  let exec = costs.Costs.exec_null_us in
  let digest_req = Costs.digest_us costs req_sz in
  if w.read_only then begin
    let per_req =
      Costs.recv_cpu_us costs req_sz +. verify_auth_us ~costs ~cfg +. digest_req +. exec
      +. gen_mac_us ~costs ~cfg
      +. Costs.send_cpu_us costs reply_full
    in
    (1_000_000.0 /. per_req, "replica cpu")
  end
  else begin
    let pp_sz = pre_prepare_size ~cfg ~arg_size:w.arg_size ~batch:w.batch in
    let prep_sz = prepare_size ~cfg in
    let per_batch_primary =
      Costs.digest_us costs pp_sz +. gen_auth_us ~costs ~cfg
      +. Costs.send_cpu_us costs pp_sz
      (* prepares and commits from backups *)
      +. float_of_int (n - 1)
         *. (Costs.recv_cpu_us costs prep_sz +. verify_auth_us ~costs ~cfg)
      +. float_of_int n *. (Costs.recv_cpu_us costs prep_sz +. verify_auth_us ~costs ~cfg)
      +. gen_auth_us ~costs ~cfg +. Costs.send_cpu_us costs prep_sz (* own commit *)
    in
    let reply_cost avg_replier =
      exec +. gen_mac_us ~costs ~cfg
      +. Costs.send_cpu_us costs (if avg_replier then reply_full else reply_digest)
    in
    let per_req_primary =
      Costs.recv_cpu_us costs req_sz +. verify_auth_us ~costs ~cfg +. digest_req
      +. (per_batch_primary /. b)
      +. reply_cost (not cfg.Config.digest_replies)
    in
    let per_batch_backup =
      Costs.recv_cpu_us costs pp_sz +. verify_auth_us ~costs ~cfg
      +. Costs.digest_us costs pp_sz
      +. gen_auth_us ~costs ~cfg +. Costs.send_cpu_us costs prep_sz (* prepare *)
      +. float_of_int (n - 1)
         *. (Costs.recv_cpu_us costs prep_sz +. verify_auth_us ~costs ~cfg)
      +. float_of_int n *. (Costs.recv_cpu_us costs prep_sz +. verify_auth_us ~costs ~cfg)
      +. gen_auth_us ~costs ~cfg +. Costs.send_cpu_us costs prep_sz (* commit *)
    in
    let per_req_backup =
      (* backups also verify the inline client token *)
      (costs.Costs.mac_us +. (per_batch_backup /. b)) +. reply_cost false
      (* request body also reaches backups when transmitted separately *)
      +. (if w.arg_size > cfg.Config.separate_tx_threshold then
            Costs.recv_cpu_us costs req_sz +. verify_auth_us ~costs ~cfg +. digest_req
          else 0.0)
    in
    (* network: bytes serialized per request at the busiest link (client
       requests + reply) *)
    let wire_bytes =
      float_of_int req_sz
      +. (float_of_int pp_sz /. b)
      +. (2.0 *. float_of_int prep_sz)
      +. float_of_int reply_full
    in
    let per_req_wire = wire_bytes *. costs.Costs.wire_per_byte_us in
    let cpu = max per_req_primary per_req_backup in
    if per_req_wire > cpu then (1_000_000.0 /. per_req_wire, "network")
    else if per_req_primary >= per_req_backup then
      (1_000_000.0 /. per_req_primary, "primary cpu")
    else (1_000_000.0 /. per_req_backup, "backup cpu")
  end

let throughput_ops ~costs ~cfg w = fst (throughput ~costs ~cfg w)

let predict ~costs ~cfg w =
  let tput, bottleneck = throughput ~costs ~cfg w in
  { latency_us = latency_us ~costs ~cfg w; throughput_ops = tput; bottleneck }

lib/perfmodel/perf_model.mli: Bft_core Bft_net

lib/perfmodel/perf_model.ml: Bft_core Bft_net List String

(** Analytic performance model (Chapter 7 of the paper).

    Predicts operation latency and system throughput from the component
    models of Section 7.1 — digest computation, MAC computation and
    communication, all affine in message size — and the protocol's message
    pattern. The same {!Bft_net.Costs.t} parameters drive both this model
    and the simulator, so predicted and "measured" (simulated) values can
    be compared point-by-point, reproducing the model-validation tables of
    Section 8.3. Discrepancies come from queueing, retransmission and
    checkpoint effects the model ignores (as in the paper). *)

type workload = {
  arg_size : int;  (** operation argument bytes *)
  result_size : int;  (** operation result bytes *)
  read_only : bool;
  batch : int;  (** requests per batch (throughput model), >= 1 *)
}

type prediction = {
  latency_us : float;  (** client-observed latency for an isolated request *)
  throughput_ops : float;  (** saturation throughput, operations/second *)
  bottleneck : string;  (** which resource saturates first *)
}

val predict :
  costs:Bft_net.Costs.t -> cfg:Bft_core.Config.t -> workload -> prediction

val latency_us : costs:Bft_net.Costs.t -> cfg:Bft_core.Config.t -> workload -> float
val throughput_ops : costs:Bft_net.Costs.t -> cfg:Bft_core.Config.t -> workload -> float

(** {2 Message-size helpers} *)

val request_size : cfg:Bft_core.Config.t -> arg_size:int -> int
val reply_size : cfg:Bft_core.Config.t -> result_size:int -> full:bool -> int
val pre_prepare_size : cfg:Bft_core.Config.t -> arg_size:int -> batch:int -> int
val prepare_size : cfg:Bft_core.Config.t -> int

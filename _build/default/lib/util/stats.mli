(** Small statistics accumulator for benchmark reporting. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val min : t -> float
val max : t -> float
val stddev : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [0,1]; interpolated. Raises
    [Invalid_argument] on an empty accumulator. *)

val median : t -> float

val summary : t -> string
(** One-line ["mean=.. p50=.. p99=.. min=.. max=.. n=.."] rendering. *)

type t = {
  mutable samples : float list;
  mutable n : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable mn : float;
  mutable mx : float;
  mutable sorted : float array option; (* cache invalidated by add *)
}

let create () =
  { samples = []; n = 0; sum = 0.0; sumsq = 0.0; mn = infinity; mx = neg_infinity; sorted = None }

let add t x =
  t.samples <- x :: t.samples;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  t.sumsq <- t.sumsq +. (x *. x);
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x;
  t.sorted <- None

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n
let min t = t.mn
let max t = t.mx

let stddev t =
  if t.n < 2 then 0.0
  else
    let m = mean t in
    let var = (t.sumsq /. float_of_int t.n) -. (m *. m) in
    sqrt (Stdlib.max 0.0 var)

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
      let a = Array.of_list t.samples in
      Array.sort compare a;
      t.sorted <- Some a;
      a

let percentile t p =
  if t.n = 0 then invalid_arg "Stats.percentile: empty";
  let a = sorted t in
  let n = Array.length a in
  if n = 1 then a.(0)
  else
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

let median t = percentile t 0.5

let summary t =
  if t.n = 0 then "n=0"
  else
    Printf.sprintf "mean=%.2f p50=%.2f p99=%.2f min=%.2f max=%.2f n=%d"
      (mean t) (median t) (percentile t 0.99) t.mn t.mx t.n

(** Hexadecimal encoding of binary strings. *)

val encode : string -> string
(** [encode s] is the lowercase hex rendering of [s], two characters per
    byte. *)

val decode : string -> string
(** [decode h] inverts {!encode}. Raises [Invalid_argument] if [h] has odd
    length or contains a non-hex character. *)

val short : ?len:int -> string -> string
(** [short d] is a truncated hex prefix of digest [d], for logs. Default
    [len] is 8 hex characters. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let copy t = { state = t.state }

(* splitmix64 finalizer: well-distributed even for sequential seeds. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = int64 t in
  create (mix (Int64.logxor s 0xA5A5A5A5A5A5A5A5L))

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (int64 t) land max_int in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (v /. 9007199254740992.0)

let bool t = Int64.logand (int64 t) 1L = 1L
let bernoulli t p = float t 1.0 < p

let exponential t mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let bytes t n =
  String.init n (fun _ -> Char.chr (int t 256))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

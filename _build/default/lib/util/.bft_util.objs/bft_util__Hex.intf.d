lib/util/hex.mli:

lib/util/stats.mli:

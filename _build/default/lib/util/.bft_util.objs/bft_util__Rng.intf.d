lib/util/rng.mli:

(** Deterministic pseudo-random number generator (splitmix64).

    Every source of randomness in the simulator flows through an explicit
    [Rng.t] so that a run is fully determined by its seed. *)

type t

val create : int64 -> t
(** [create seed] is a fresh generator. *)

val copy : t -> t
(** Independent copy with the same current state. *)

val split : t -> t
(** [split t] derives a new independent stream and advances [t]. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential distribution. *)

val bytes : t -> int -> string
(** [bytes t n] is an [n]-byte pseudo-random string. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

(** SHA-256 (FIPS 180-4), implemented from scratch.

    The paper uses MD5 for message and state digests; we substitute SHA-256
    (see DESIGN.md). Digest cost is charged separately by the network cost
    model, so the choice of hash does not affect reproduced performance
    shapes. *)

type ctx

val digest_size : int
(** 32 bytes. *)

val init : unit -> ctx
val feed : ctx -> string -> unit
val feed_sub : ctx -> string -> int -> int -> unit

val finalize : ctx -> string
(** Returns the 32-byte digest. The context must not be reused. *)

val digest : string -> string
(** One-shot digest of a full string. *)

val hexdigest : string -> string

(** AdHash incremental collision-resistant hashing (Bellare-Micciancio).

    Used for meta-data partition digests (Section 5.3.1): the digest of a
    partition is a function of the {e sum modulo 2^256} of its
    sub-partitions' digests, so it can be updated incrementally when one
    sub-partition changes: [add (sub acc old) new]. *)

type t
(** A 32-byte accumulator (sum modulo 2^256). *)

val zero : t
val of_digest : string -> t
(** Interpret a 32-byte SHA-256 digest as an accumulator element. Raises
    [Invalid_argument] on wrong length. *)

val add : t -> t -> t
val sub : t -> t -> t
val equal : t -> t -> bool
val to_string : t -> string
(** 32-byte little-endian representation, suitable for feeding to a hash. *)

type signer = { id : int; secret : string }
type registry = (int, string) Hashtbl.t
type t = { signer_id : int; tag : string }

let create_registry () : registry = Hashtbl.create 16

let register registry rng id =
  let secret = Bft_util.Rng.bytes rng 32 in
  Hashtbl.replace registry id secret;
  { id; secret }

let sign signer msg = { signer_id = signer.id; tag = Hmac.mac ~key:signer.secret msg }
let signer_id signer = signer.id

let verify registry t msg =
  match Hashtbl.find_opt registry t.signer_id with
  | None -> false
  | Some secret -> Hmac.verify ~key:secret ~tag:t.tag msg

let forge ~signer_id = { signer_id; tag = String.make 32 '\x00' }

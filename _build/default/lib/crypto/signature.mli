(** Simulated public-key signatures.

    The paper's BFT-PK variant signs every protocol message with a
    Rabin-Williams 1024-bit scheme; BFT retains signatures only for new-key
    messages and recovery requests. We simulate signatures with HMAC under a
    per-node private secret plus a public registry used for verification.

    Unforgeability is enforced structurally: producing a signature requires
    the node's {!signer} handle, which only that node's automaton holds. A
    Byzantine node in the simulator can forge its own signatures (it holds
    its handle) but not those of correct nodes — exactly the adversary of
    Section 2.1. The cost model charges the paper's measured
    signature-generation and verification latencies, so BFT-PK vs BFT
    performance comparisons reproduce. *)

type signer
(** Private signing handle for one node. *)

type registry
(** Public-key registry shared by all nodes of a simulation. *)

type t = { signer_id : int; tag : string }

val create_registry : unit -> registry

val register : registry -> Bft_util.Rng.t -> int -> signer
(** Create and register the signing identity for a node id. Re-registering
    an id replaces its key (used to model key loss on recovery tests). *)

val sign : signer -> string -> t
val signer_id : signer -> int

val verify : registry -> t -> string -> bool
(** Check that the signature was produced by [t.signer_id] over the message. *)

val forge : signer_id:int -> t
(** A structurally invalid signature, for fault-injection tests: it never
    verifies (with overwhelming probability) because the forger does not
    know the private key. *)

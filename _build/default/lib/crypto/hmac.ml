let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  if String.length key = block_size then key
  else key ^ String.make (block_size - String.length key) '\x00'

let xor_pad key byte =
  String.map (fun c -> Char.chr (Char.code c lxor byte)) key

let mac ~key msg =
  let key = normalize_key key in
  let inner = Sha256.init () in
  Sha256.feed inner (xor_pad key 0x36);
  Sha256.feed inner msg;
  let inner_digest = Sha256.finalize inner in
  let outer = Sha256.init () in
  Sha256.feed outer (xor_pad key 0x5c);
  Sha256.feed outer inner_digest;
  Sha256.finalize outer

let mac_truncated ~key n msg =
  let t = mac ~key msg in
  if n >= String.length t then t else String.sub t 0 n

let constant_time_eq a b =
  String.length a = String.length b
  && begin
       let acc = ref 0 in
       String.iteri (fun i c -> acc := !acc lor (Char.code c lxor Char.code b.[i])) a;
       !acc = 0
     end

let verify ~key ~tag msg =
  let n = String.length tag in
  constant_time_eq tag (mac_truncated ~key n msg)

(* Accumulator = 32 bytes little-endian, arithmetic modulo 2^256. *)

type t = string

let width = 32
let zero = String.make width '\x00'

let of_digest d =
  if String.length d <> width then invalid_arg "Adhash.of_digest: need 32 bytes";
  d

let add a b =
  let out = Bytes.create width in
  let carry = ref 0 in
  for i = 0 to width - 1 do
    let s = Char.code a.[i] + Char.code b.[i] + !carry in
    Bytes.set out i (Char.chr (s land 0xff));
    carry := s lsr 8
  done;
  Bytes.unsafe_to_string out

let sub a b =
  let out = Bytes.create width in
  let borrow = ref 0 in
  for i = 0 to width - 1 do
    let s = Char.code a.[i] - Char.code b.[i] - !borrow in
    if s < 0 then begin
      Bytes.set out i (Char.chr (s + 256));
      borrow := 1
    end
    else begin
      Bytes.set out i (Char.chr s);
      borrow := 0
    end
  done;
  Bytes.unsafe_to_string out

let equal = String.equal
let to_string t = t

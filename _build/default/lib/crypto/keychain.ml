type key = { secret : string; epoch : int }

type t = {
  my_id : int;
  in_keys : (int, key) Hashtbl.t; (* peer -> key peer uses to send to us *)
  out_keys : (int, key) Hashtbl.t; (* peer -> key we use to send to peer *)
  (* highest epoch ever issued per peer; survives drop_all_in_keys so that
     post-recovery refreshed keys supersede the dropped ones *)
  issued_epochs : (int, int) Hashtbl.t;
}

let create ~my_id =
  {
    my_id;
    in_keys = Hashtbl.create 16;
    out_keys = Hashtbl.create 16;
    issued_epochs = Hashtbl.create 16;
  }
let my_id t = t.my_id

let fresh_in_key t rng ~peer =
  let epoch =
    (match Hashtbl.find_opt t.issued_epochs peer with Some e -> e | None -> 0) + 1
  in
  Hashtbl.replace t.issued_epochs peer epoch;
  let key = { secret = Bft_util.Rng.bytes rng 16; epoch } in
  Hashtbl.replace t.in_keys peer key;
  key

let install_out_key t ~peer key =
  let current_epoch =
    match Hashtbl.find_opt t.out_keys peer with Some k -> k.epoch | None -> 0
  in
  if key.epoch > current_epoch then begin
    Hashtbl.replace t.out_keys peer key;
    true
  end
  else false

let out_key t ~peer = Hashtbl.find_opt t.out_keys peer
let in_key t ~peer = Hashtbl.find_opt t.in_keys peer

let in_epoch t ~peer =
  match Hashtbl.find_opt t.in_keys peer with Some k -> k.epoch | None -> 0

let drop_all_in_keys t = Hashtbl.reset t.in_keys

let peers_with_out_keys t =
  Hashtbl.fold (fun peer _ acc -> peer :: acc) t.out_keys []
  |> List.sort_uniq compare

(** HMAC-SHA256 (RFC 2104). *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte HMAC-SHA256 tag. *)

val mac_truncated : key:string -> int -> string -> string
(** [mac_truncated ~key n msg] is the first [n] bytes of the tag. The BFT
    library uses 8-byte tags (UMAC32-sized) in authenticators. *)

val verify : key:string -> tag:string -> string -> bool
(** Constant-time comparison of [tag] against the recomputed (possibly
    truncated) tag of the message. *)

(** Message authentication: single MACs and authenticators.

    An authenticator is a vector of MACs, one per receiving replica, each
    computed with the pairwise session key for that receiver (Section 3.2.1
    of the paper). The receiver verifies only its own entry. Tags carry the
    key epoch they were generated under so that receivers can enforce
    authentication freshness (Section 4.3.1). *)

val tag_size : int
(** 8 bytes, matching the UMAC32 tags of the paper's implementation. *)

type mac = { tag : string; epoch : int }

type authenticator = (int * mac) list
(** Association list from receiver id to its MAC entry. *)

val compute_mac : Keychain.t -> peer:int -> string -> mac option
(** MAC over the message with the current out-key for [peer]. [None] when no
    session key is established yet. *)

val verify_mac : Keychain.t -> peer:int -> mac -> string -> bool
(** Verify a MAC from [peer] against our current in-key for them. Fails if
    the epoch is stale (key was refreshed since) or the tag is wrong. *)

val compute_authenticator :
  Keychain.t -> receivers:int list -> string -> authenticator
(** One MAC per receiver (skipping self and receivers without keys). *)

val verify_authenticator :
  Keychain.t -> peer:int -> authenticator -> string -> bool
(** Verify our own entry in an authenticator sent by [peer]. *)

val corrupt_entry : authenticator -> int -> authenticator
(** Testing/fault-injection helper: flip bits in the MAC destined for the
    given receiver, leaving other entries intact (models the faulty-client
    partial-authenticator attacks of Section 3.2.2). *)

val size : authenticator -> int
(** Wire size contribution: 8 bytes of nonce plus [tag_size] per entry,
    matching the paper's 8n-byte authenticators. *)

lib/crypto/adhash.mli:

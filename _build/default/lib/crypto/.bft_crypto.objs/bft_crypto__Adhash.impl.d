lib/crypto/adhash.ml: Bytes Char String

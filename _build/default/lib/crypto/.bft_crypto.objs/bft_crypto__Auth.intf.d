lib/crypto/auth.mli: Keychain

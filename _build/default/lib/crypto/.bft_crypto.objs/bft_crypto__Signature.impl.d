lib/crypto/signature.ml: Bft_util Hashtbl Hmac String

lib/crypto/sha256.ml: Array Bft_util Bytes Char Int64 String

lib/crypto/hmac.mli:

lib/crypto/keychain.ml: Bft_util Hashtbl List

lib/crypto/keychain.mli: Bft_util

lib/crypto/auth.ml: Char Hmac Keychain List String

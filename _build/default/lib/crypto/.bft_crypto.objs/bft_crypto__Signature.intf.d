lib/crypto/signature.mli: Bft_util

(* Configuration invariants: quorum arithmetic, primary rotation, windows. *)

open Bft_core

let test_group_sizes () =
  List.iter
    (fun f ->
      let cfg = Config.make ~f () in
      Alcotest.(check int) (Printf.sprintf "n for f=%d" f) ((3 * f) + 1) cfg.Config.n;
      Alcotest.(check int) "quorum" ((2 * f) + 1) (Config.quorum cfg);
      Alcotest.(check int) "weak" (f + 1) (Config.weak cfg);
      (* quorum intersection: any two quorums share >= f+1 replicas, so at
         least one correct one (Section 2.3.1) *)
      Alcotest.(check bool) "intersection has a correct replica" true
        ((2 * Config.quorum cfg) - cfg.Config.n >= f + 1);
      (* availability: a quorum exists among the n - f non-faulty replicas *)
      Alcotest.(check bool) "availability" true (cfg.Config.n - f >= Config.quorum cfg))
    [ 1; 2; 3; 4; 10 ]

let test_primary_rotation () =
  let cfg = Config.make ~f:1 () in
  Alcotest.(check int) "view 0" 0 (Config.primary cfg ~view:0);
  Alcotest.(check int) "view 3" 3 (Config.primary cfg ~view:3);
  Alcotest.(check int) "view 4 wraps" 0 (Config.primary cfg ~view:4);
  (* the primary cannot be the same replica for more than 1 consecutive
     view in a 4-replica group *)
  Alcotest.(check bool) "rotation" true
    (Config.primary cfg ~view:7 <> Config.primary cfg ~view:8);
  Alcotest.(check bool) "is_primary" true (Config.is_primary cfg ~view:5 ~id:1)

let test_in_window () =
  let cfg = Config.make ~f:1 ~checkpoint_interval:10 () in
  Alcotest.(check int) "default log size 2K" 20 cfg.Config.log_size;
  Alcotest.(check bool) "h excluded" false (Config.in_window cfg ~h:5 5);
  Alcotest.(check bool) "h+1" true (Config.in_window cfg ~h:5 6);
  Alcotest.(check bool) "h+L" true (Config.in_window cfg ~h:5 25);
  Alcotest.(check bool) "h+L+1" false (Config.in_window cfg ~h:5 26)

let test_validation () =
  Alcotest.check_raises "f >= 1" (Invalid_argument "Config.make: f must be >= 1") (fun () ->
      ignore (Config.make ~f:0 ()));
  Alcotest.check_raises "log size"
    (Invalid_argument "Config.make: log_size must be >= checkpoint_interval") (fun () ->
      ignore (Config.make ~f:1 ~checkpoint_interval:10 ~log_size:5 ()))

let test_replica_ids () =
  let cfg = Config.make ~f:2 () in
  Alcotest.(check (list int)) "ids" [ 0; 1; 2; 3; 4; 5; 6 ] (Config.replica_ids cfg)

let suites =
  [
    ( "core.config",
      [
        Alcotest.test_case "group sizes" `Quick test_group_sizes;
        Alcotest.test_case "primary rotation" `Quick test_primary_rotation;
        Alcotest.test_case "in window" `Quick test_in_window;
        Alcotest.test_case "validation" `Quick test_validation;
        Alcotest.test_case "replica ids" `Quick test_replica_ids;
      ] );
  ]

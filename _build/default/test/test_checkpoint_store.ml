(* Checkpoint store: stability certificates, pruning, certified digests. *)

open Bft_core

let mk ?(auth = Config.Mac_auth) () =
  let cfg = Config.make ~auth_mode:auth ~f:1 () in
  (cfg, Checkpoint_store.create cfg ~page_size:16 ~branching:4)

let ck ~seq ~digest replica = { Message.ck_seq = seq; ck_digest = digest; ck_replica = replica }

let test_take_and_lookup () =
  let _, st = mk () in
  let t0 = Checkpoint_store.take st ~seq:0 ~snapshot:"genesis" in
  Alcotest.(check bool) "tree at 0" true (Checkpoint_store.tree_at st 0 <> None);
  Alcotest.(check bool) "latest" true
    (match Checkpoint_store.latest st with
    | Some t -> Partition_tree.seq t = 0
    | None -> false);
  let t10 = Checkpoint_store.take st ~seq:10 ~snapshot:"state10" in
  Alcotest.(check bool) "distinct digests" true
    (not (String.equal (Partition_tree.root_digest t0) (Partition_tree.root_digest t10)));
  Alcotest.(check (list (pair int string))) "held ascending"
    [ (0, Partition_tree.root_digest t0); (10, Partition_tree.root_digest t10) ]
    (Checkpoint_store.held st)

let test_stabilize_quorum_mac_mode () =
  let _, st = mk () in
  let t = Checkpoint_store.take st ~seq:10 ~snapshot:"s" in
  let d = Partition_tree.root_digest t in
  Checkpoint_store.add_message st (ck ~seq:10 ~digest:d 0);
  Checkpoint_store.add_message st (ck ~seq:10 ~digest:d 1);
  Alcotest.(check bool) "2 votes insufficient under MACs" true
    (Checkpoint_store.try_stabilize st = None);
  Checkpoint_store.add_message st (ck ~seq:10 ~digest:d 2);
  (match Checkpoint_store.try_stabilize st with
  | Some (10, _) -> ()
  | _ -> Alcotest.fail "expected stabilization at 10");
  Alcotest.(check int) "stable seq" 10 (Checkpoint_store.stable_seq st)

let test_stabilize_weak_sig_mode () =
  let _, st = mk ~auth:Config.Sig_auth () in
  let t = Checkpoint_store.take st ~seq:10 ~snapshot:"s" in
  let d = Partition_tree.root_digest t in
  Checkpoint_store.add_message st (ck ~seq:10 ~digest:d 0);
  Alcotest.(check bool) "1 vote insufficient" true (Checkpoint_store.try_stabilize st = None);
  Checkpoint_store.add_message st (ck ~seq:10 ~digest:d 1);
  Alcotest.(check bool) "f+1 suffices under signatures" true
    (Checkpoint_store.try_stabilize st <> None)

let test_stabilize_requires_matching_tree () =
  let _, st = mk () in
  ignore (Checkpoint_store.take st ~seq:10 ~snapshot:"local-divergent");
  let d = String.make 32 'x' in
  List.iter (fun i -> Checkpoint_store.add_message st (ck ~seq:10 ~digest:d i)) [ 0; 1; 2 ];
  Alcotest.(check bool) "digest mismatch: no stabilization" true
    (Checkpoint_store.try_stabilize st = None)

let test_stabilize_prunes () =
  let _, st = mk () in
  ignore (Checkpoint_store.take st ~seq:0 ~snapshot:"a");
  ignore (Checkpoint_store.take st ~seq:10 ~snapshot:"b");
  let t20 = Checkpoint_store.take st ~seq:20 ~snapshot:"c" in
  let d = Partition_tree.root_digest t20 in
  List.iter (fun i -> Checkpoint_store.add_message st (ck ~seq:20 ~digest:d i)) [ 0; 1; 2 ];
  ignore (Checkpoint_store.try_stabilize st);
  Alcotest.(check bool) "older trees pruned" true (Checkpoint_store.tree_at st 0 = None);
  Alcotest.(check bool) "10 pruned" true (Checkpoint_store.tree_at st 10 = None);
  Alcotest.(check bool) "stable kept" true (Checkpoint_store.tree_at st 20 <> None)

let test_stabilize_picks_newest () =
  let _, st = mk () in
  let t10 = Checkpoint_store.take st ~seq:10 ~snapshot:"b" in
  let t20 = Checkpoint_store.take st ~seq:20 ~snapshot:"c" in
  List.iter
    (fun i ->
      Checkpoint_store.add_message st (ck ~seq:10 ~digest:(Partition_tree.root_digest t10) i);
      Checkpoint_store.add_message st (ck ~seq:20 ~digest:(Partition_tree.root_digest t20) i))
    [ 0; 1; 2 ];
  (match Checkpoint_store.try_stabilize st with
  | Some (20, _) -> ()
  | _ -> Alcotest.fail "expected 20")

let test_certified_digest () =
  let _, st = mk () in
  let d = String.make 32 'z' in
  Checkpoint_store.add_message st (ck ~seq:30 ~digest:d 1);
  Alcotest.(check bool) "1 vote not certified" true
    (Checkpoint_store.certified_digest st ~threshold:2 = None);
  Checkpoint_store.add_message st (ck ~seq:30 ~digest:d 2);
  (match Checkpoint_store.certified_digest st ~threshold:2 with
  | Some (30, d') -> Alcotest.(check bool) "digest" true (String.equal d d')
  | _ -> Alcotest.fail "expected certified 30");
  (* conflicting votes from different replicas do not combine *)
  let d2 = String.make 32 'w' in
  Checkpoint_store.add_message st (ck ~seq:40 ~digest:d2 1);
  Checkpoint_store.add_message st (ck ~seq:40 ~digest:(String.make 32 'v') 2);
  (match Checkpoint_store.certified_digest st ~threshold:2 with
  | Some (30, _) -> ()
  | _ -> Alcotest.fail "40 must not be certified with split votes")

let test_duplicate_votes_deduplicated () =
  let _, st = mk () in
  let d = String.make 32 'd' in
  Checkpoint_store.add_message st (ck ~seq:10 ~digest:d 1);
  Checkpoint_store.add_message st (ck ~seq:10 ~digest:d 1);
  Alcotest.(check int) "same replica counted once" 1
    (Checkpoint_store.proof_count st ~seq:10 ~digest:d)

let test_drop_above () =
  let _, st = mk () in
  ignore (Checkpoint_store.take st ~seq:10 ~snapshot:"a");
  ignore (Checkpoint_store.take st ~seq:20 ~snapshot:"b");
  Checkpoint_store.drop_above st 15;
  Alcotest.(check bool) "20 dropped" true (Checkpoint_store.tree_at st 20 = None);
  Alcotest.(check bool) "10 kept" true (Checkpoint_store.tree_at st 10 <> None)

let test_install () =
  let _, st = mk () in
  let tree = Partition_tree.build ~seq:50 ~page_size:16 ~branching:4 "fetched" in
  Checkpoint_store.install st tree;
  Alcotest.(check bool) "installed" true (Checkpoint_store.tree_at st 50 <> None)

let suites =
  [
    ( "core.checkpoint_store",
      [
        Alcotest.test_case "take and lookup" `Quick test_take_and_lookup;
        Alcotest.test_case "quorum stability (MAC)" `Quick test_stabilize_quorum_mac_mode;
        Alcotest.test_case "weak stability (sig)" `Quick test_stabilize_weak_sig_mode;
        Alcotest.test_case "needs matching tree" `Quick test_stabilize_requires_matching_tree;
        Alcotest.test_case "stabilize prunes" `Quick test_stabilize_prunes;
        Alcotest.test_case "picks newest" `Quick test_stabilize_picks_newest;
        Alcotest.test_case "certified digest" `Quick test_certified_digest;
        Alcotest.test_case "votes deduplicated" `Quick test_duplicate_votes_deduplicated;
        Alcotest.test_case "drop above" `Quick test_drop_above;
        Alcotest.test_case "install" `Quick test_install;
      ] );
  ]

(* Analytic performance model (Chapter 7): structural properties and
   agreement with the simulator. *)

module PM = Bft_perf.Perf_model
module Costs = Bft_net.Costs
open Bft_core

let costs = Costs.default
let cfg = Config.make ~f:1 ()
let w ?(arg = 0) ?(res = 0) ?(ro = false) ?(batch = 1) () =
  { PM.arg_size = arg; result_size = res; read_only = ro; batch }

let test_read_only_cheaper () =
  let rw = PM.latency_us ~costs ~cfg (w ()) in
  let ro = PM.latency_us ~costs ~cfg (w ~ro:true ()) in
  Alcotest.(check bool) "ro < rw" true (ro < rw);
  Alcotest.(check bool) "roughly half (one round trip vs four hops)" true
    (ro < 0.7 *. rw)

let test_latency_monotone_in_sizes () =
  let base = PM.latency_us ~costs ~cfg (w ()) in
  Alcotest.(check bool) "arg grows latency" true
    (PM.latency_us ~costs ~cfg (w ~arg:4096 ()) > base);
  Alcotest.(check bool) "result grows latency" true
    (PM.latency_us ~costs ~cfg (w ~res:4096 ()) > base)

let test_sig_mode_much_slower () =
  let pk_cfg = Config.make ~auth_mode:Config.Sig_auth ~f:1 () in
  let mac = PM.latency_us ~costs ~cfg (w ()) in
  let pk = PM.latency_us ~costs ~cfg:pk_cfg (w ()) in
  Alcotest.(check bool) "BFT-PK an order of magnitude slower" true (pk > 10.0 *. mac)

let test_batching_improves_throughput () =
  let t1 = PM.throughput_ops ~costs ~cfg (w ~batch:1 ()) in
  let t16 = PM.throughput_ops ~costs ~cfg (w ~batch:16 ()) in
  Alcotest.(check bool) "batch 16 > batch 1" true (t16 > 1.5 *. t1)

let test_tentative_execution_saves_a_round () =
  let no_tent = Config.make ~f:1 ~tentative_execution:false () in
  Alcotest.(check bool) "commit round costs latency" true
    (PM.latency_us ~costs ~cfg:no_tent (w ()) > PM.latency_us ~costs ~cfg (w ()));
  ignore no_tent

let test_latency_grows_with_f () =
  let l1 = PM.latency_us ~costs ~cfg (w ()) in
  let l3 = PM.latency_us ~costs ~cfg:(Config.make ~f:3 ()) (w ()) in
  Alcotest.(check bool) "more replicas cost more" true (l3 > l1);
  Alcotest.(check bool) "but only mildly (constant phases)" true (l3 < 3.0 *. l1)

let test_sizes_sane () =
  Alcotest.(check bool) "request size includes auth" true
    (PM.request_size ~cfg ~arg_size:0 > 8 + (8 * cfg.Config.n));
  Alcotest.(check int) "arg adds bytes 1:1"
    (PM.request_size ~cfg ~arg_size:100 - PM.request_size ~cfg ~arg_size:0)
    100;
  Alcotest.(check bool) "digest reply smaller than full 4K reply" true
    (PM.reply_size ~cfg ~result_size:4096 ~full:false
    < PM.reply_size ~cfg ~result_size:4096 ~full:true);
  Alcotest.(check bool) "separate-tx pre-prepare stays small" true
    (PM.pre_prepare_size ~cfg ~arg_size:4096 ~batch:1
    < PM.pre_prepare_size ~cfg ~arg_size:255 ~batch:1 + 4096)

(* Model vs simulator (Section 8.3 style validation): predictions within
   30% of simulated measurements for the 0/0 operations. *)
let simulate_latency ~ro =
  let cluster = Cluster.create ~seed:11L ~num_clients:1 cfg in
  (* warm up *)
  ignore (Cluster.invoke_sync cluster ~client:0 (Bft_sm.Null_service.op ~read_only:false ~arg_size:0 ~result_size:0));
  let samples = Bft_util.Stats.create () in
  for _ = 1 to 10 do
    let _, l =
      Cluster.invoke_sync_latency cluster ~client:0 ~read_only:ro
        (Bft_sm.Null_service.op ~read_only:ro ~arg_size:0 ~result_size:0)
    in
    Bft_util.Stats.add samples l
  done;
  Bft_util.Stats.median samples

let test_model_matches_simulator_rw () =
  let predicted = PM.latency_us ~costs ~cfg (w ()) in
  let measured = simulate_latency ~ro:false in
  let err = abs_float (predicted -. measured) /. measured in
  if err > 0.3 then
    Alcotest.failf "model %f vs measured %f (err %.0f%%)" predicted measured (100. *. err)

let test_model_matches_simulator_ro () =
  let predicted = PM.latency_us ~costs ~cfg (w ~ro:true ()) in
  let measured = simulate_latency ~ro:true in
  let err = abs_float (predicted -. measured) /. measured in
  if err > 0.3 then
    Alcotest.failf "model %f vs measured %f (err %.0f%%)" predicted measured (100. *. err)

let test_bottleneck_shifts_to_network () =
  (* large results saturate the wire first *)
  let p = PM.predict ~costs ~cfg (w ~res:8192 ~batch:16 ()) in
  Alcotest.(check string) "network bound" "network" p.PM.bottleneck

let suites =
  [
    ( "perf.model",
      [
        Alcotest.test_case "read-only cheaper" `Quick test_read_only_cheaper;
        Alcotest.test_case "monotone in sizes" `Quick test_latency_monotone_in_sizes;
        Alcotest.test_case "signatures much slower" `Quick test_sig_mode_much_slower;
        Alcotest.test_case "batching helps" `Quick test_batching_improves_throughput;
        Alcotest.test_case "tentative saves a round" `Quick test_tentative_execution_saves_a_round;
        Alcotest.test_case "latency vs f" `Quick test_latency_grows_with_f;
        Alcotest.test_case "message sizes" `Quick test_sizes_sane;
        Alcotest.test_case "model vs sim (rw)" `Slow test_model_matches_simulator_rw;
        Alcotest.test_case "model vs sim (ro)" `Slow test_model_matches_simulator_ro;
        Alcotest.test_case "network bottleneck" `Quick test_bottleneck_shifts_to_network;
      ] );
  ]

(* The unreplicated baseline server: plain request/reply with the same cost
   model, used to isolate replication overhead in every comparison bench. *)

open Bft_core

let null a r = Bft_sm.Null_service.op ~read_only:false ~arg_size:a ~result_size:r

let test_basic_request () =
  let b = Baseline.create () in
  let result, latency = Baseline.invoke_sync b ~client:0 (null 0 16) in
  Alcotest.(check int) "result size" 16 (String.length result);
  Alcotest.(check bool) "positive latency" true (latency > 0.0)

let test_sequence_and_state () =
  let b = Baseline.create ~service:(fun () -> Bft_sm.Counter_service.create ()) () in
  for i = 1 to 10 do
    Alcotest.(check string) "inc" (string_of_int i) (fst (Baseline.invoke_sync b ~client:0 "inc"))
  done

let test_multiple_clients () =
  let b = Baseline.create ~service:(fun () -> Bft_sm.Counter_service.create ()) ~num_clients:3 () in
  let results = ref [] in
  for round = 1 to 4 do
    for k = 0 to 2 do
      Baseline.invoke b ~client:k "inc" (fun ~result ~latency_us:_ ->
          results := int_of_string result :: !results)
    done;
    ignore
      (Baseline.run_until ~timeout_us:1_000_000.0 b (fun () ->
           List.length !results >= 3 * round))
  done;
  ignore (Baseline.run_until ~timeout_us:1_000_000.0 b (fun () -> List.length !results = 12));
  Alcotest.(check (list int)) "all increments distinct" (List.init 12 (fun i -> i + 1))
    (List.sort compare !results);
  Alcotest.(check int) "per-client completion" 4 (Baseline.client_completed b 0)

let test_latency_below_bft () =
  let b = Baseline.create () in
  ignore (Baseline.invoke_sync b ~client:0 (null 0 0));
  let _, base = Baseline.invoke_sync b ~client:0 (null 0 0) in
  let cfg = Config.make ~f:1 () in
  let c = Cluster.create ~num_clients:1 cfg in
  ignore (Cluster.invoke_sync c ~client:0 (null 0 0));
  let _, bft = Cluster.invoke_sync_latency c ~client:0 (null 0 0) in
  Alcotest.(check bool)
    (Printf.sprintf "baseline %.0f < bft %.0f" base bft)
    true (base < bft)

let test_latency_scales_with_size () =
  let b = Baseline.create () in
  ignore (Baseline.invoke_sync b ~client:0 (null 0 0));
  let _, small = Baseline.invoke_sync b ~client:0 (null 0 0) in
  let _, big = Baseline.invoke_sync b ~client:0 (null 8192 0) in
  Alcotest.(check bool) "8KB arg slower" true (big > small +. 100.0)

let test_single_outstanding () =
  let b = Baseline.create () in
  Baseline.invoke b ~client:0 (null 0 0) (fun ~result:_ ~latency_us:_ -> ());
  Alcotest.check_raises "second invoke rejected"
    (Invalid_argument "Baseline.invoke: request outstanding") (fun () ->
      Baseline.invoke b ~client:0 (null 0 0) (fun ~result:_ ~latency_us:_ -> ()));
  ignore (Baseline.run_until ~timeout_us:100_000.0 b (fun () -> false))

let suites =
  [
    ( "core.baseline",
      [
        Alcotest.test_case "basic request" `Quick test_basic_request;
        Alcotest.test_case "sequence" `Quick test_sequence_and_state;
        Alcotest.test_case "multiple clients" `Quick test_multiple_clients;
        Alcotest.test_case "cheaper than BFT" `Quick test_latency_below_bft;
        Alcotest.test_case "size scaling" `Quick test_latency_scales_with_size;
        Alcotest.test_case "single outstanding" `Quick test_single_outstanding;
      ] );
  ]

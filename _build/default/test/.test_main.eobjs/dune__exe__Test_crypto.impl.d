test/test_crypto.ml: Adhash Alcotest Array Auth Bft_crypto Bft_util Char Fun Gen Hmac Int64 Keychain List Option Printf QCheck QCheck_alcotest Sha256 Signature String

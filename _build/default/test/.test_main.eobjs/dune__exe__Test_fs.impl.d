test/test_fs.ml: Alcotest Andrew Astring_check Bfs_service Bft_bfs Bft_sm Fs Gen Int64 List Option Printf QCheck QCheck_alcotest String

test/test_wire.ml: Alcotest Bft_core Bft_crypto List Message QCheck QCheck_alcotest String Wire

test/test_perf.ml: Alcotest Bft_core Bft_net Bft_perf Bft_sm Bft_util Cluster Config

test/test_sim.ml: Alcotest Bft_sim Bft_util Buffer Engine List Printf

test/test_nv_decision.ml: Alcotest Bft_core Config List Message Nv_decision String Wire

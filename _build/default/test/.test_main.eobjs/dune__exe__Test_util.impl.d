test/test_util.ml: Alcotest Bft_net Bft_util Gen List QCheck QCheck_alcotest

test/test_codec.ml: Alcotest Bft_core Bft_crypto Int64 List Message QCheck QCheck_alcotest String Wire

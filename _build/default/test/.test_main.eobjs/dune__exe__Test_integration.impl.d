test/test_integration.ml: Alcotest Array Bft_core Bft_crypto Bft_net Bft_sm Client Cluster Config Int64 List Message Printf QCheck QCheck_alcotest Replica String Wire

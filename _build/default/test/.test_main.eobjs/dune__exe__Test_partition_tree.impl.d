test/test_partition_tree.ml: Alcotest Bft_core Bft_util Char List Partition_tree Printf QCheck QCheck_alcotest String

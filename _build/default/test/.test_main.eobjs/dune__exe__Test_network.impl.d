test/test_network.ml: Alcotest Array Bft_net Bft_sim Bft_util Int64 List Printf

test/test_services.ml: Alcotest Bft_sm Gen List Printf QCheck QCheck_alcotest String

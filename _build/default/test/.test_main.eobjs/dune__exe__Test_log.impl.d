test/test_log.ml: Alcotest Bft_core Config List Log Message String

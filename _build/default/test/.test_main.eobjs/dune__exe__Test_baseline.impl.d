test/test_baseline.ml: Alcotest Baseline Bft_core Bft_sm Cluster Config List Printf String

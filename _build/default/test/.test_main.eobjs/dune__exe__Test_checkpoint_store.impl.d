test/test_checkpoint_store.ml: Alcotest Bft_core Checkpoint_store Config List Message Partition_tree String

test/test_config.ml: Alcotest Bft_core Config List Printf
